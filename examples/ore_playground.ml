(* ORE playground: SORE next to the ORE/OPE families it descends from —
   what each scheme's ciphertext looks like, what comparison costs, and
   what it leaks. This is the didactic companion to the ablation bench.

     dune exec examples/ore_playground.exe *)

let () =
  Printf.printf "== Order-revealing encryption, four ways ==\n\n";
  let width = 8 in
  let rng = Drbg.create ~seed:"playground" in
  let x = 105 and y = 179 in
  Printf.printf "Plaintexts: x = %d, y = %d (width %d bits)\n\n" x y width;

  (* SORE: b PRF slices; comparison = one common slice. *)
  let sore_key = Sore.keygen ~rng in
  let ct = Sore.encrypt ~rng sore_key ~width y in
  let tk_lt = Sore.token ~rng sore_key ~width x Bitvec.Lt in
  let tk_gt = Sore.token ~rng sore_key ~width x Bitvec.Gt in
  Printf.printf "SORE (this paper)\n";
  Printf.printf "  ciphertext: %d slices x 16 bytes = %d bytes\n" width (Sore.ciphertext_bytes ct);
  Printf.printf "  compare(x < y): %b   compare(x > y): %b\n" (Sore.compare_ct ct tk_lt)
    (Sore.compare_ct ct tk_gt);
  Printf.printf "  leakage per comparison: the single matched slice (bit index hidden by shuffle)\n\n";

  (* Chenette et al.: Z3 symbol per bit; leaks first differing bit. *)
  let ck = Chenette.keygen ~rng in
  let cx = Chenette.encrypt ck ~width x and cy = Chenette.encrypt ck ~width y in
  Printf.printf "Chenette-Lewi-Weis-Wu (FSE'16)\n";
  Printf.printf "  ciphertext: %d bytes packed\n" (Chenette.ciphertext_bytes cx);
  Printf.printf "  compare: %d   leaked first-diff index: %s\n\n" (Chenette.compare_ct cx cy)
    (match Chenette.first_diff_index cx cy with Some i -> string_of_int i | None -> "-");

  (* Lewi-Wu: left/right, constant comparisons, huge right ciphertexts. *)
  let lw = Lewi_wu.keygen ~rng in
  let l = Lewi_wu.encrypt_left lw ~width x in
  let r = Lewi_wu.encrypt_right ~rng lw ~width y in
  Printf.printf "Lewi-Wu left/right (CCS'16), small-domain\n";
  Printf.printf "  left ct: %d bytes   right ct: %d bytes (domain-sized!)\n" (Lewi_wu.left_bytes l)
    (Lewi_wu.right_bytes r);
  Printf.printf "  compare: %d\n\n" (Lewi_wu.compare_ct l r);

  (* OPE: ciphertexts are just ordered numbers — everyone sees the order. *)
  let ope = Ope.keygen ~rng in
  let ox = Ope.encrypt ope ~width x and oy = Ope.encrypt ope ~width y in
  Printf.printf "Boldyreva-style OPE (the CryptDB approach)\n";
  Printf.printf "  ciphertexts: %d vs %d (order visible to anyone)\n" ox oy;
  Printf.printf "  compare: %d\n\n" (Ope.compare_ct ox oy);

  (* Why SORE fits the SSE protocol: the match IS a keyword. *)
  Printf.printf "Why Slicer uses SORE: the matched slice is an exact keyword, so a range\n";
  Printf.printf "condition becomes %d keyword searches over the forward-secure index —\n" width;
  Printf.printf "and each keyword's result multiset gets its own constant-size RSA witness.\n"
