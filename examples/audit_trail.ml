(* Audit trail: the extension APIs in one scenario — deletion and update
   via the dual-instance construction (paper Section V-F), interval
   queries, and batched settlement.

   A payment processor keeps an encrypted ledger of transaction amounts;
   disputed transactions are deleted; auditors run verified interval
   queries over what remains.

     dune exec examples/audit_trail.exe *)

let txn id amount = Slicer_types.record_of_value id amount

let show label (out : Dual.search_outcome) =
  Printf.printf "%-44s -> [%s]%s\n" label
    (String.concat "; " (List.sort compare out.Dual.ids))
    (if out.Dual.verified then "" else "  (VERIFICATION FAILED)")

let () =
  Printf.printf "== Deletable encrypted audit trail ==\n\n";

  let initial =
    [ txn "tx-1001" 120; txn "tx-1002" 250; txn "tx-1003" 80;
      txn "tx-1004" 250; txn "tx-1005" 40 ]
  in
  let trail = Dual.setup ~width:10 ~seed:"audit" initial in
  Printf.printf "Processor outsources %d encrypted transactions (live: %d)\n\n"
    (List.length initial) (Dual.live_count trail);

  show "amounts = 250" (Dual.search trail (Slicer_types.query 250 Slicer_types.Eq));
  show "amounts > 100  (query (100,'<'))" (Dual.search trail (Slicer_types.query 100 Slicer_types.Lt));

  Printf.printf "\ntx-1002 is disputed and removed; tx-1004 is corrected to 275:\n\n";
  Dual.delete trail [ txn "tx-1002" 250 ];
  Dual.update trail ~old_record:(txn "tx-1004" 250) (txn "tx-1004v2" 275);

  show "amounts = 250 (both 250s gone)" (Dual.search trail (Slicer_types.query 250 Slicer_types.Eq));
  show "amounts = 275 (the correction)" (Dual.search trail (Slicer_types.query 275 Slicer_types.Eq));
  Printf.printf "live transactions: %d\n\n" (Dual.live_count trail);

  (* Interval queries and batched settlement run on a plain instance. *)
  Printf.printf "Auditor-side extras on a fresh single-instance system:\n";
  let system =
    Protocol.setup ~width:10 ~seed:"audit-extras"
      [ txn "a" 120; txn "b" 250; txn "c" 80; txn "d" 275; txn "e" 40 ]
  in
  let between = Protocol.search_between system ~lo:100 ~hi:260 () in
  Printf.printf "  100 < amount < 260 -> [%s] (verified: %b)\n"
    (String.concat "; " (List.sort compare between.Protocol.so_ids))
    between.Protocol.so_verified;
  let batched = Protocol.search_batched system (Slicer_types.query 1023 Slicer_types.Gt) in
  Printf.printf "  batched order search: %d tokens, ONE %dB verification object (verified: %b)\n"
    batched.Protocol.so_token_count batched.Protocol.so_vo_bytes batched.Protocol.so_verified
