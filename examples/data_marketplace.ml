(* Data marketplace: the fairness story of Section IV — mutually
   distrusting data users and clouds settle search fees through the
   smart contract's escrow. A quasi-honest user cannot deny correct
   results to dodge the fee; a dishonest cloud cannot collect for
   wrong ones.

     dune exec examples/data_marketplace.exe *)

let () =
  Printf.printf "== Fair search settlement on a data marketplace ==\n\n";

  let rng = Drbg.create ~seed:"marketplace-data" in
  let listings = Gen.uniform_records ~rng ~width:8 60 in
  let system = Protocol.setup ~width:8 ~seed:"marketplace" listings in
  Cloud.precompute_witnesses (Protocol.cloud system);

  let show_balances label =
    Printf.printf "%-38s user=%7d   cloud=%7d\n" label (Protocol.user_balance system)
      (Protocol.cloud_balance system)
  in
  show_balances "initial balances:";

  (* The paper's convention: a query (v, oc) matches records a with
     "v oc a", so 'value < 100' is issued as (100, '>'). *)
  let query = Slicer_types.query 100 Slicer_types.Gt in

  (* Round 1: honest cloud. The user cannot repudiate — settlement is
     decided by the contract, not by the user's local verification. *)
  Printf.printf "\n[round 1] honest cloud answers 'value < 100'\n";
  let out = Protocol.search system query in
  Printf.printf "  results: %d records, verification %s\n" (List.length out.Protocol.so_ids)
    (if out.Protocol.so_verified then "PASSED -> fee released to cloud" else "failed");
  show_balances "after honest round:";

  (* Round 2: the cloud pads the result set with a fabricated record. *)
  Printf.printf "\n[round 2] cloud injects a fabricated record\n";
  Protocol.set_cloud_behavior system Cloud.Inject_result;
  let out = Protocol.search system query in
  Printf.printf "  verification %s\n"
    (if out.Protocol.so_verified then "passed (!!)" else "FAILED -> fee refunded to user");
  show_balances "after cheating round:";

  (* Round 3: the cloud answers from a stale snapshot after an update. *)
  Printf.printf "\n[round 3] owner inserts fresh listings; cloud replays stale state\n";
  Protocol.set_cloud_behavior system Cloud.Honest;
  Protocol.insert system
    [ Slicer_types.record_of_value "hot-deal-1" 10; Slicer_types.record_of_value "hot-deal-2" 20 ];
  Protocol.set_cloud_behavior system Cloud.Stale_results;
  let out = Protocol.search system query in
  Printf.printf "  freshness check %s\n"
    (if out.Protocol.so_verified then "passed (!!)" else "FAILED -> refund (results were stale)");
  show_balances "after stale round:";

  (* Round 4: honesty pays. *)
  Printf.printf "\n[round 4] cloud back to honest\n";
  Protocol.set_cloud_behavior system Cloud.Honest;
  let out = Protocol.search system query in
  Printf.printf "  results now include the fresh listings: %b\n"
    (List.mem "hot-deal-1" out.Protocol.so_ids && List.mem "hot-deal-2" out.Protocol.so_ids);
  show_balances "final balances:";

  Printf.printf "\nEvery settlement above is a sealed, validated block:\n";
  match Ledger.validate (Protocol.ledger system) with
  | Ok () -> Printf.printf "  chain of %d blocks validates end-to-end.\n"
               (Ledger.height (Protocol.ledger system) + 1)
  | Error e -> Printf.printf "  chain INVALID: %s\n" e
