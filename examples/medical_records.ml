(* Medical records: the paper's motivating scenario — a hospital
   outsources encrypted patient records with multiple numerical
   attributes (age, systolic blood pressure), and a research group runs
   range queries without ever revealing patient data to the cloud.

     dune exec examples/medical_records.exe *)

let patient id age systolic =
  { Slicer_types.id; fields = [ ("age", age); ("systolic", systolic) ] }

let () =
  Printf.printf "== Encrypted medical-records search ==\n\n";

  let records =
    [ patient "patient-ada" 34 118;
      patient "patient-bob" 61 145;
      patient "patient-cam" 47 132;
      patient "patient-dee" 72 160;
      patient "patient-eve" 29 110;
      patient "patient-fay" 55 139;
      patient "patient-gil" 68 151 ]
  in
  Printf.printf "Hospital outsources %d records with attributes {age, systolic}\n"
    (List.length records);

  let system = Protocol.setup ~width:8 ~seed:"medical" records in
  Printf.printf "  encrypted index: %d entries, %d bytes\n"
    (Cloud.index_entries (Protocol.cloud system))
    (Cloud.index_bytes (Protocol.cloud system));
  Printf.printf "  ADS (prime list): %d primes, %d bytes\n\n"
    (Cloud.prime_count (Protocol.cloud system))
    (Cloud.ads_bytes (Protocol.cloud system));

  let run label query =
    let out = Protocol.search system query in
    Printf.printf "%-42s -> [%s]%s\n" label
      (String.concat "; " (List.sort compare out.Protocol.so_ids))
      (if out.Protocol.so_verified then "  (verified on-chain)" else "  (VERIFICATION FAILED)")
  in

  (* Cohort selection by range, per attribute. *)
  run "age > 60" (Slicer_types.query ~attr:"age" 60 Slicer_types.Lt);
  run "age < 40" (Slicer_types.query ~attr:"age" 40 Slicer_types.Gt);
  run "systolic > 140 (hypertension)" (Slicer_types.query ~attr:"systolic" 140 Slicer_types.Lt);
  run "age = 47" (Slicer_types.query ~attr:"age" 47 Slicer_types.Eq);

  (* Note the deliberate reading: the paper's query (v, oc) asks for
     records whose value a satisfies "v oc a", so "age > 60" is issued
     as (60, '<') — value 60 is less than the record's age. *)

  (* Conjunctive cohort: elderly AND hypertensive, each predicate
     independently verified on chain. *)
  let conj =
    Protocol.search_conj system
      [ Slicer_types.query ~attr:"age" 60 Slicer_types.Lt;
        Slicer_types.query ~attr:"systolic" 140 Slicer_types.Lt ]
  in
  Printf.printf "%-42s -> [%s]%s\n" "age > 60 AND systolic > 140"
    (String.concat "; " (List.sort compare conj.Protocol.so_ids))
    (if conj.Protocol.so_verified then "  (verified on-chain)" else "  (VERIFICATION FAILED)");

  Printf.printf "\nNew admission arrives (forward-secure insert):\n";
  Protocol.insert system [ patient "patient-hal" 63 148 ];
  run "age > 60 (now includes patient-hal)" (Slicer_types.query ~attr:"age" 60 Slicer_types.Lt);

  Printf.printf "\nWhat the cloud learned: PRF positions and masked payloads only.\n";
  Printf.printf "What the chain learned: one 512-bit accumulation value per update.\n"
