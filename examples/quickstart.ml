(* Quickstart: the whole Slicer pipeline in one page.

   A data owner outsources encrypted numerical records; a data user runs
   an encrypted range query; the cloud answers with results and a
   constant-size proof; the blockchain's smart contract verifies the
   proof and settles the payment.

     dune exec examples/quickstart.exe *)

let () =
  Printf.printf "== Slicer quickstart ==\n\n";

  (* 1. The data owner's plaintext database: record IDs and values. *)
  let db =
    [ ("invoice-001", 120); ("invoice-002", 75); ("invoice-003", 230);
      ("invoice-004", 75); ("invoice-005", 12) ]
    |> List.map (fun (id, v) -> Slicer_types.record_of_value id v)
  in
  Printf.printf "Owner builds encrypted index + ADS over %d records (8-bit values)\n"
    (List.length db);

  (* 2. Build everything: encrypted index to the cloud, accumulation
        value to the chain, keys + trapdoor state to the user. *)
  let system = Protocol.setup ~width:8 ~seed:"quickstart" db in
  Printf.printf "  index entries: %d   keywords: %d   on-chain Ac: present\n\n"
    (Cloud.index_entries (Protocol.cloud system))
    (Owner.keyword_count (Protocol.owner system));

  (* 3. An encrypted range query: all records with value < 100. *)
  let run label query =
    let out = Protocol.search system query in
    Printf.printf "%s\n" label;
    Printf.printf "  tokens sent: %d   results: [%s]\n" out.Protocol.so_token_count
      (String.concat "; " (List.sort compare out.Protocol.so_ids));
    Printf.printf "  on-chain verification: %s   settlement gas: %d\n\n"
      (if out.Protocol.so_verified then "PASS (cloud paid)" else "FAIL (user refunded)")
      out.Protocol.so_gas_used
  in
  run "Query: value < 100 (issued as (100, '>'))" (Slicer_types.query 100 Slicer_types.Gt);
  run "Query: value = 75" (Slicer_types.query 75 Slicer_types.Eq);

  (* 4. Forward-secure insertion: new data, fresh trapdoor generation,
        refreshed on-chain accumulation value. *)
  Printf.printf "Owner inserts invoice-006 (value 42)\n\n";
  Protocol.insert system [ Slicer_types.record_of_value "invoice-006" 42 ];
  run "Query again: value < 100 (sees the new record)" (Slicer_types.query 100 Slicer_types.Gt);

  (* 5. A malicious cloud drops a result: the contract catches it. *)
  Printf.printf "Cloud turns malicious (drops one result)...\n\n";
  Protocol.set_cloud_behavior system Cloud.Drop_result;
  run "Query: value < 100 against the cheating cloud" (Slicer_types.query 100 Slicer_types.Gt);

  (* 6. The chain itself is tamper-evident. *)
  (match Ledger.validate (Protocol.ledger system) with
   | Ok () -> Printf.printf "Ledger validation: OK (%d blocks)\n" (Ledger.height (Protocol.ledger system) + 1)
   | Error e -> Printf.printf "Ledger validation FAILED: %s\n" e)
