(* The domain pool and every parallel consumer must be invisible to
   observers: the same bytes come out at every pool size. Unit tests
   cover the pool combinators (including nesting and exceptions);
   properties pin parallel == sequential for the accumulator and
   prime-representative hot paths across domains 1, 2 and 4. *)

let with_domains d f =
  Parallel.set_domains d;
  Fun.protect ~finally:(fun () -> Parallel.set_domains 1) f

let domain_counts = [ 1; 2; 4 ]

(* --- pool combinators ------------------------------------------------- *)

let test_map () =
  List.iter
    (fun d ->
      let pool = Parallel.Pool.create ~domains:d () in
      Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) @@ fun () ->
      let arr = Array.init 37 (fun i -> i) in
      Alcotest.(check (array int))
        (Printf.sprintf "map squares, %d domains" d)
        (Array.map (fun x -> x * x) arr)
        (Parallel.Pool.map pool (fun x -> x * x) arr);
      Alcotest.(check (array int)) "map empty" [||] (Parallel.Pool.map pool (fun x -> x) [||]);
      Alcotest.(check (list int)) "map_list" [ 2; 4; 6 ]
        (Parallel.Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]))
    domain_counts

let test_reduce () =
  List.iter
    (fun d ->
      let pool = Parallel.Pool.create ~domains:d () in
      Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) @@ fun () ->
      let arr = Array.init 100 (fun i -> i + 1) in
      Alcotest.(check int)
        (Printf.sprintf "reduce sum, %d domains" d)
        5050
        (Parallel.Pool.reduce pool ( + ) 0 arr);
      (* Associative but not commutative: the fixed bracketing must keep
         operands in input order at every pool size. *)
      let words = Array.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
      Alcotest.(check string)
        (Printf.sprintf "reduce concat in order, %d domains" d)
        "abcdefghijklmnopqrstuvwxyz"
        (Parallel.Pool.reduce pool ( ^ ) "" words);
      Alcotest.(check int) "reduce empty = id" 42 (Parallel.Pool.reduce pool ( + ) 42 [||]))
    domain_counts

let test_both_and_nesting () =
  List.iter
    (fun d ->
      let pool = Parallel.Pool.create ~domains:d () in
      Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) @@ fun () ->
      let a, b = Parallel.Pool.both pool (fun () -> 1 + 1) (fun () -> "x" ^ "y") in
      Alcotest.(check int) "both left" 2 a;
      Alcotest.(check string) "both right" "xy" b;
      (* Nested fork-join: every task itself fans out on the same pool.
         Work-helping must keep this deadlock-free. *)
      let thunks =
        Array.init 16 (fun i () ->
            Array.fold_left ( + ) 0 (Parallel.Pool.map pool (fun x -> x * i) (Array.init 20 Fun.id)))
      in
      let got = Parallel.Pool.run_all pool thunks in
      Alcotest.(check (array int))
        (Printf.sprintf "nested run_all, %d domains" d)
        (Array.init 16 (fun i -> 190 * i))
        got)
    domain_counts

let test_exceptions () =
  List.iter
    (fun d ->
      let pool = Parallel.Pool.create ~domains:d () in
      Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) @@ fun () ->
      Alcotest.check_raises
        (Printf.sprintf "map propagates, %d domains" d)
        (Failure "boom")
        (fun () ->
          ignore (Parallel.Pool.map pool (fun x -> if x = 13 then failwith "boom" else x) (Array.init 32 Fun.id)));
      Alcotest.check_raises "both propagates right" (Failure "right") (fun () ->
          ignore (Parallel.Pool.both pool (fun () -> 1) (fun () -> failwith "right")));
      (* The pool must stay usable after an exception. *)
      Alcotest.(check int) "pool alive after raise" 10
        (Parallel.Pool.reduce pool ( + ) 0 (Array.init 5 Fun.id)))
    domain_counts

let test_global_pool () =
  Alcotest.(check int) "default sequential" 1 (Parallel.domains ());
  with_domains 3 (fun () ->
      Alcotest.(check int) "configured" 3 (Parallel.domains ());
      Alcotest.(check int) "pool size follows" 3 (Parallel.Pool.size (Parallel.pool ())));
  Alcotest.(check int) "restored" 1 (Parallel.domains ());
  Alcotest.(check int) "pool recreated" 1 (Parallel.Pool.size (Parallel.pool ()))

(* --- parallel == sequential for the ADS hot paths ---------------------- *)

let params =
  lazy (Rsa_acc.setup ~rng:(Drbg.create ~seed:"test-parallel-acc") ~bits:512 ())

(* A fixed pool of genuine prime representatives; lists drawn from it
   contain duplicates, exercising the multiset semantics. *)
let prime_pool =
  lazy (Array.of_list (Prime_rep.to_primes (List.init 12 (Printf.sprintf "test-parallel-p%d"))))

let gen_prime_list =
  let open QCheck2.Gen in
  list_size (int_range 0 10) (int_range 0 11)
  |> map (fun idxs ->
         let pool = Lazy.force prime_pool in
         List.map (fun i -> pool.(i)) idxs)

let prop name ?(count = 20) gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen p)

let across_domains compute check =
  let reference = compute () in
  List.for_all
    (fun d -> with_domains d (fun () -> check reference (compute ())))
    domain_counts

let acc_props =
  [ prop "accumulate == sequential add fold" gen_prime_list (fun xs ->
        let params = Lazy.force params in
        (* Independent reference: the one-at-a-time fold the owner used
           before batching. *)
        let naive =
          List.fold_left (fun ac x -> Rsa_acc.add params ac x) params.Rsa_acc.generator xs
        in
        across_domains
          (fun () -> Rsa_acc.accumulate params xs)
          (fun a b -> Bigint.equal a b && Bigint.equal a naive));
    prop "all_witnesses == naive per-element witnesses" gen_prime_list (fun xs ->
        let params = Lazy.force params in
        let remove_one x xs =
          let rec go = function
            | [] -> []
            | y :: rest -> if Bigint.equal y x then rest else y :: go rest
          in
          go xs
        in
        let naive =
          List.map
            (fun x ->
              ( x,
                List.fold_left
                  (fun ac y -> Rsa_acc.add params ac y)
                  params.Rsa_acc.generator (remove_one x xs) ))
            xs
        in
        across_domains
          (fun () -> Rsa_acc.all_witnesses params xs)
          (fun a b ->
            let eq l1 l2 =
              List.length l1 = List.length l2
              && List.for_all2
                   (fun (x1, w1) (x2, w2) -> Bigint.equal x1 x2 && Bigint.equal w1 w2)
                   l1 l2
            in
            eq a b && eq a naive));
    prop "ctx witnesses == mem/batch witnesses" gen_prime_list (fun xs ->
        let params = Lazy.force params in
        match xs with
        | [] -> true
        | x :: _ ->
          across_domains
            (fun () ->
              let ctx = Rsa_acc.context params xs in
              (Rsa_acc.ctx_ac ctx, Rsa_acc.ctx_witness ctx x, Rsa_acc.ctx_batch_witness ctx [ x ]))
            (fun (ac, w, bw) (ac', w', bw') ->
              Bigint.equal ac ac' && Bigint.equal w w' && Bigint.equal bw bw'
              && Bigint.equal ac (Rsa_acc.accumulate params xs)
              && Bigint.equal w (Rsa_acc.mem_witness params xs x)
              && Bigint.equal w bw
              && Rsa_acc.verify_mem params ~ac ~x ~witness:w));
    prop "witness tree == rebuild at every pool size" ~count:15 gen_prime_list (fun xs ->
        let params = Lazy.force params in
        match xs with
        | [] -> true
        | x :: _ ->
          let distinct = List.sort_uniq Bigint.compare xs in
          across_domains
            (fun () ->
              (* A fresh maintained index per pool size, fed in two
                 appends with a query in between so the spine recompute,
                 the lazy re-base and the pool-parallel warm_all all run
                 at this domain count. *)
              let wt = Witness_tree.create params in
              let k = List.length xs / 2 in
              let l = List.filteri (fun i _ -> i < k) xs
              and r = List.filteri (fun i _ -> i >= k) xs in
              Witness_tree.append wt l;
              ignore (Witness_tree.witness wt x);
              Witness_tree.append wt r;
              Witness_tree.warm_all wt;
              ( Witness_tree.ac wt,
                (match Witness_tree.witness wt x with Some w -> w | None -> Bigint.zero),
                Witness_tree.batch_witness wt distinct ))
            (fun (ac, w, bw) (ac', w', bw') ->
              Bigint.equal ac ac' && Bigint.equal w w' && Bigint.equal bw bw'
              && Bigint.equal ac (Rsa_acc.accumulate params xs)
              && Bigint.equal w (Rsa_acc.mem_witness params xs x)
              && Bigint.equal bw (Rsa_acc.batch_witness params xs distinct)));
    prop "to_primes == map to_prime (with duplicates)" ~count:15
      QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 1_000_000))
      (fun seeds ->
        (* Fresh-ish strings so some walks actually run; duplicates are
           injected by doubling the list. *)
        let ss = List.map (Printf.sprintf "tp-batch-%d") (seeds @ seeds) in
        let reference = List.map Prime_rep.to_prime ss in
        List.for_all
          (fun d ->
            with_domains d (fun () ->
                List.for_all2 Bigint.equal reference (Prime_rep.to_primes ss)))
          domain_counts)
  ]

(* --- Build/Insert determinism across pool sizes ------------------------ *)

(* The owner's fan-out (record slicing, G1/G2 derivation, per-keyword
   entry jobs) must be invisible: index entries, prime representatives
   and Ac come out bit-identical at every pool size. *)
let build_and_insert () =
  let rng = Drbg.create ~seed:"test-parallel-owner" in
  let keys = Keys.generate ~tdp_bits:512 ~rng () in
  let acc_params = Rsa_acc.setup ~rng ~bits:512 () in
  let owner = Owner.create ~width:6 ~rng ~acc_params ~keys () in
  let records = Gen.uniform_records ~rng ~width:6 40 in
  let built = Owner.build owner records in
  let inserts =
    List.init 10 (fun i -> Slicer_types.record_of_value (Printf.sprintf "ins-%d" i) (i * 5 mod 64))
  in
  let inserted = Owner.insert owner inserts in
  (built, inserted, Owner.current_ac owner)

let shipment_eq (a : Owner.shipment) (b : Owner.shipment) =
  List.length a.Owner.sh_entries = List.length b.Owner.sh_entries
  && List.for_all2
       (fun (l1, d1) (l2, d2) -> String.equal l1 l2 && String.equal d1 d2)
       a.Owner.sh_entries b.Owner.sh_entries
  && List.length a.Owner.sh_primes = List.length b.Owner.sh_primes
  && List.for_all2 Bigint.equal a.Owner.sh_primes b.Owner.sh_primes
  && Bigint.equal a.Owner.sh_ac b.Owner.sh_ac

let test_owner_determinism () =
  let ref_built, ref_inserted, ref_ac = build_and_insert () in
  Alcotest.(check bool) "build produced entries" true (ref_built.Owner.sh_entries <> []);
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let built, inserted, ac = build_and_insert () in
          Alcotest.(check bool)
            (Printf.sprintf "build shipment identical, %d domains" d)
            true (shipment_eq ref_built built);
          Alcotest.(check bool)
            (Printf.sprintf "insert shipment identical, %d domains" d)
            true (shipment_eq ref_inserted inserted);
          Alcotest.(check bool)
            (Printf.sprintf "Ac identical, %d domains" d)
            true (Bigint.equal ref_ac ac)))
    domain_counts

(* --- prime-rep cache consistency --------------------------------------- *)

let test_cache_consistency () =
  let s = "cache-consistency-probe" in
  let first = Prime_rep.to_prime s in
  (* Repeats, batched lookups and parallel batches must all return the
     exact first representative: a cache can never change an answer. *)
  Alcotest.(check bool) "repeat hit equal" true (Bigint.equal first (Prime_rep.to_prime s));
  with_domains 4 (fun () ->
      List.iter
        (fun x -> Alcotest.(check bool) "batched equal" true (Bigint.equal first x))
        (Prime_rep.to_primes [ s; s; s ]));
  Alcotest.(check bool) "is_representative_of" true (Prime_rep.is_representative_of first s);
  let stats = Prime_rep.cache_stats () in
  Alcotest.(check bool) "cache populated" true (stats.Prime_rep.cs_entries > 0);
  Alcotest.(check bool) "hits recorded" true (stats.Prime_rep.cs_hits > 0);
  Alcotest.(check bool) "bounded" true (stats.Prime_rep.cs_entries <= stats.Prime_rep.cs_limit)

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "both and nesting" `Quick test_both_and_nesting;
          Alcotest.test_case "exceptions" `Quick test_exceptions;
          Alcotest.test_case "global pool" `Quick test_global_pool ] );
      ("determinism", acc_props);
      ( "owner determinism",
        [ Alcotest.test_case "Build/Insert across pool sizes" `Quick test_owner_determinism ] );
      ("prime-rep cache", [ Alcotest.test_case "cache consistency" `Quick test_cache_consistency ]) ]
