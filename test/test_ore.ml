(* Tests for the ORE layer: SORE (Theorem 1 correctness, the
   at-most-one-common-slice invariant, the paper's Fig. 2 worked
   example) and the three ablation baselines. *)

let rng () = Drbg.create ~seed:"ore-tests"

let prop name ?(count = 300) gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen p)

let sore_key = Sore.key_of_bytes "0123456789abcdef"

(* --- Bitvec -------------------------------------------------------------- *)

let test_bits () =
  (* 5 = 0101 at width 4: bits (MSB-first) are 0,1,0,1. *)
  Alcotest.(check (list int)) "bits of 5" [ 0; 1; 0; 1 ] (List.init 4 (fun i -> Bitvec.bit ~width:4 5 (i + 1)));
  Alcotest.(check string) "prefix 0" "" (Bitvec.prefix ~width:4 5 0);
  Alcotest.(check string) "prefix 3" "010" (Bitvec.prefix ~width:4 5 3);
  Alcotest.(check string) "full prefix" "0101" (Bitvec.prefix ~width:4 5 4)

let test_bitvec_bounds () =
  Alcotest.check_raises "value too large" (Invalid_argument "Bitvec: value out of range") (fun () ->
      Bitvec.check_value ~width:4 16);
  Alcotest.check_raises "negative" (Invalid_argument "Bitvec: value out of range") (fun () ->
      Bitvec.check_value ~width:4 (-1));
  Alcotest.check_raises "width" (Invalid_argument "Bitvec: width out of range") (fun () ->
      Bitvec.check_value ~width:31 0)

let test_tuple_distinctness () =
  (* All tuples of all values at width 4 under both conditions: token
     tuples of (v, oc) must match cipher tuples of y iff v oc y. *)
  let all_cipher v = Bitvec.cipher_tuples ~width:4 v in
  let all_token v oc = Bitvec.token_tuples ~width:4 v oc in
  let common a b = List.length (List.filter (fun x -> List.mem x b) a) in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let c_gt = common (all_token x Bitvec.Gt) (all_cipher y) in
      let c_lt = common (all_token x Bitvec.Lt) (all_cipher y) in
      Alcotest.(check int) (Printf.sprintf "gt %d vs %d" x y) (if x > y then 1 else 0) c_gt;
      Alcotest.(check int) (Printf.sprintf "lt %d vs %d" x y) (if x < y then 1 else 0) c_lt
    done
  done

let test_attr_separates () =
  let a = Bitvec.cipher_tuples ~attr:"age" ~width:8 42 in
  let b = Bitvec.cipher_tuples ~attr:"salary" ~width:8 42 in
  Alcotest.(check bool) "attributes disjoint" true (List.for_all (fun t -> not (List.mem t b)) a)

let test_equality_keyword () =
  Alcotest.(check bool) "same value same keyword" true
    (String.equal (Bitvec.equality_keyword ~width:8 7) (Bitvec.equality_keyword ~width:8 7));
  Alcotest.(check bool) "different values differ" false
    (String.equal (Bitvec.equality_keyword ~width:8 7) (Bitvec.equality_keyword ~width:8 8));
  Alcotest.(check bool) "attr separates" false
    (String.equal (Bitvec.equality_keyword ~attr:"a" ~width:8 7) (Bitvec.equality_keyword ~attr:"b" ~width:8 7))

(* --- SORE ----------------------------------------------------------------- *)

(* The paper's Fig. 2 example: plaintexts 5 and 8, queries (6, oc) and
   (4, oc) at width 4. *)
let test_fig2_example () =
  let r = rng () in
  let ct5 = Sore.encrypt ~rng:r sore_key ~width:4 5 in
  let ct8 = Sore.encrypt ~rng:r sore_key ~width:4 8 in
  let tk6_gt = Sore.token ~rng:r sore_key ~width:4 6 Bitvec.Gt in
  let tk6_lt = Sore.token ~rng:r sore_key ~width:4 6 Bitvec.Lt in
  let tk4_gt = Sore.token ~rng:r sore_key ~width:4 4 Bitvec.Gt in
  let tk4_lt = Sore.token ~rng:r sore_key ~width:4 4 Bitvec.Lt in
  Alcotest.(check bool) "6 > 5" true (Sore.compare_ct ct5 tk6_gt);
  Alcotest.(check bool) "6 < 5 false" false (Sore.compare_ct ct5 tk6_lt);
  Alcotest.(check bool) "6 < 8" true (Sore.compare_ct ct8 tk6_lt);
  Alcotest.(check bool) "6 > 8 false" false (Sore.compare_ct ct8 tk6_gt);
  Alcotest.(check bool) "4 < 5" true (Sore.compare_ct ct5 tk4_lt);
  Alcotest.(check bool) "4 > 5 false" false (Sore.compare_ct ct5 tk4_gt)

let test_sore_exhaustive_width4 () =
  let r = rng () in
  for x = 0 to 15 do
    let tk_gt = Sore.token ~rng:r sore_key ~width:4 x Bitvec.Gt in
    let tk_lt = Sore.token ~rng:r sore_key ~width:4 x Bitvec.Lt in
    for y = 0 to 15 do
      let ct = Sore.encrypt ~rng:r sore_key ~width:4 y in
      if Sore.compare_ct ct tk_gt <> (x > y) then Alcotest.failf "gt mismatch at %d,%d" x y;
      if Sore.compare_ct ct tk_lt <> (x < y) then Alcotest.failf "lt mismatch at %d,%d" x y
    done
  done

let test_sore_slice_count () =
  let r = rng () in
  let ct = Sore.encrypt ~rng:r sore_key ~width:16 12345 in
  Alcotest.(check int) "b slices" 16 (List.length ct.Sore.ct_slices);
  Alcotest.(check int) "16 bytes each" 16 (String.length (List.hd ct.Sore.ct_slices));
  Alcotest.(check int) "ciphertext bytes" 256 (Sore.ciphertext_bytes ct)

let test_sore_key_separation () =
  let r = rng () in
  let other_key = Sore.key_of_bytes "fedcba9876543210" in
  let ct = Sore.encrypt ~rng:r sore_key ~width:8 10 in
  let tk = Sore.token ~rng:r other_key ~width:8 20 Bitvec.Gt in
  Alcotest.(check bool) "cross-key never matches" false (Sore.compare_ct ct tk)

let test_sore_width_mismatch () =
  let r = rng () in
  let ct = Sore.encrypt ~rng:r sore_key ~width:8 10 in
  let tk = Sore.token ~rng:r sore_key ~width:16 20 Bitvec.Gt in
  Alcotest.check_raises "width mismatch" (Invalid_argument "Sore: width mismatch") (fun () ->
      ignore (Sore.compare_ct ct tk))

let test_sore_slices_distinct () =
  (* The b slices of one ciphertext are pairwise distinct (distinct
     tuples through an injective-whp PRF). *)
  let r = rng () in
  for v = 0 to 40 do
    let ct = Sore.encrypt ~rng:r sore_key ~width:16 (v * 1601 land 0xffff) in
    let sorted = List.sort_uniq compare ct.Sore.ct_slices in
    if List.length sorted <> 16 then Alcotest.failf "duplicate slice for %d" v
  done

let test_lewi_wu_width_cap () =
  let key = Lewi_wu.keygen ~rng:(rng ()) in
  Alcotest.check_raises "width cap" (Invalid_argument "Lewi_wu: width must be in [1, 12]")
    (fun () -> ignore (Lewi_wu.encrypt_left key ~width:13 0))

let test_ope_monotone_sweep () =
  (* Exhaustive monotonicity on a full small domain. *)
  let key = Ope.keygen ~rng:(rng ()) in
  let prev = ref (-1) in
  for v = 0 to 63 do
    let c = Ope.encrypt key ~width:6 v in
    if c <= !prev then Alcotest.failf "not strictly increasing at %d" v;
    prev := c
  done

let test_shuffle_preserves_elements () =
  let r = rng () in
  let xs = List.init 50 string_of_int in
  let shuffled = Sore.shuffle ~rng:r xs in
  Alcotest.(check (list string)) "same multiset" (List.sort compare xs) (List.sort compare shuffled)

(* --- properties ------------------------------------------------------------ *)

let gen_pair_width =
  let open QCheck2.Gen in
  let* width = int_range 2 24 in
  let* x = int_range 0 ((1 lsl width) - 1) in
  let* y = int_range 0 ((1 lsl width) - 1) in
  return (width, x, y)

let gen_pair_small =
  let open QCheck2.Gen in
  let* width = int_range 2 10 in
  let* x = int_range 0 ((1 lsl width) - 1) in
  let* y = int_range 0 ((1 lsl width) - 1) in
  return (width, x, y)

let sore_props =
  [ prop "theorem 1: compare = order (gt)" gen_pair_width (fun (width, x, y) ->
        let r = Drbg.create ~seed:(Printf.sprintf "t1-%d-%d-%d" width x y) in
        let ct = Sore.encrypt ~rng:r sore_key ~width y in
        let tk = Sore.token ~rng:r sore_key ~width x Bitvec.Gt in
        Sore.compare_ct ct tk = (x > y));
    prop "theorem 1: compare = order (lt)" gen_pair_width (fun (width, x, y) ->
        let r = Drbg.create ~seed:(Printf.sprintf "t2-%d-%d-%d" width x y) in
        let ct = Sore.encrypt ~rng:r sore_key ~width y in
        let tk = Sore.token ~rng:r sore_key ~width x Bitvec.Lt in
        Sore.compare_ct ct tk = (x < y));
    prop "at most one common slice" gen_pair_width (fun (width, x, y) ->
        let r = Drbg.create ~seed:(Printf.sprintf "t3-%d-%d-%d" width x y) in
        let ct = Sore.encrypt ~rng:r sore_key ~width y in
        let tk = Sore.token ~rng:r sore_key ~width x Bitvec.Gt in
        Sore.common_slices ct tk <= 1);
    prop "equality matches neither direction" (QCheck2.Gen.int_range 0 65535) (fun v ->
        let r = Drbg.create ~seed:(Printf.sprintf "t4-%d" v) in
        let ct = Sore.encrypt ~rng:r sore_key ~width:16 v in
        (not (Sore.compare_ct ct (Sore.token ~rng:r sore_key ~width:16 v Bitvec.Gt)))
        && not (Sore.compare_ct ct (Sore.token ~rng:r sore_key ~width:16 v Bitvec.Lt)))
  ]

let baseline_props =
  [ prop "chenette agrees with integer compare" gen_pair_width (fun (width, x, y) ->
        let key = Chenette.keygen ~rng:(Drbg.create ~seed:"ck") in
        Chenette.compare_ct (Chenette.encrypt key ~width x) (Chenette.encrypt key ~width y) = compare x y);
    prop "chenette leaks first differing bit" gen_pair_width (fun (width, x, y) ->
        let key = Chenette.keygen ~rng:(Drbg.create ~seed:"ck") in
        let leak = Chenette.first_diff_index (Chenette.encrypt key ~width x) (Chenette.encrypt key ~width y) in
        let rec first_diff i = if i > width then None else if Bitvec.bit ~width x i <> Bitvec.bit ~width y i then Some i else first_diff (i + 1) in
        leak = first_diff 1);
    prop "lewi-wu agrees with integer compare" ~count:100 gen_pair_small (fun (width, x, y) ->
        let r = Drbg.create ~seed:"lw" in
        let key = Lewi_wu.keygen ~rng:r in
        let l = Lewi_wu.encrypt_left key ~width x in
        let rt = Lewi_wu.encrypt_right ~rng:r key ~width y in
        Lewi_wu.compare_ct l rt = compare x y);
    prop "ope preserves order" gen_pair_width (fun (width, x, y) ->
        let key = Ope.keygen ~rng:(Drbg.create ~seed:"ope") in
        let cx = Ope.encrypt key ~width x and cy = Ope.encrypt key ~width y in
        Ope.compare_ct cx cy = compare x y);
    prop "ope deterministic" gen_pair_width (fun (width, x, _) ->
        let key = Ope.keygen ~rng:(Drbg.create ~seed:"ope") in
        Ope.encrypt key ~width x = Ope.encrypt key ~width x)
  ]

let () =
  Alcotest.run "ore"
    [ ( "bitvec",
        [ Alcotest.test_case "bits and prefixes" `Quick test_bits;
          Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
          Alcotest.test_case "tuple match = order (exhaustive w4)" `Quick test_tuple_distinctness;
          Alcotest.test_case "attributes separate" `Quick test_attr_separates;
          Alcotest.test_case "equality keyword" `Quick test_equality_keyword ] );
      ( "sore",
        [ Alcotest.test_case "paper Fig. 2 example" `Quick test_fig2_example;
          Alcotest.test_case "exhaustive width 4" `Quick test_sore_exhaustive_width4;
          Alcotest.test_case "slice count and size" `Quick test_sore_slice_count;
          Alcotest.test_case "key separation" `Quick test_sore_key_separation;
          Alcotest.test_case "width mismatch" `Quick test_sore_width_mismatch;
          Alcotest.test_case "slices distinct" `Quick test_sore_slices_distinct;
          Alcotest.test_case "lewi-wu width cap" `Quick test_lewi_wu_width_cap;
          Alcotest.test_case "ope monotone sweep" `Quick test_ope_monotone_sweep;
          Alcotest.test_case "shuffle preserves elements" `Quick test_shuffle_preserves_elements ] );
      ("sore properties", sore_props);
      ("baseline properties", baseline_props) ]
