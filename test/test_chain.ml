(* Tests for the blockchain substrate: gas schedule, metered VM with
   revert semantics, blocks, PoA ledger validation, and the Slicer
   verification contract with its escrow fairness flow. *)

let alice = Vm.address_of_name "alice"
let bob = Vm.address_of_name "bob"
let carol = Vm.address_of_name "carol"

let fresh_ledger () =
  let ledger = Ledger.create ~validators:[ "v1"; "v2"; "v3" ] in
  Vm.fund (Ledger.state ledger) alice 10_000_000;
  Vm.fund (Ledger.state ledger) bob 10_000_000;
  ledger

(* --- gas schedule ------------------------------------------------------- *)

let test_gas_calldata () =
  Alcotest.(check int) "zeros" 8 (Gas.calldata "\000\000");
  Alcotest.(check int) "nonzero" 32 (Gas.calldata "ab");
  Alcotest.(check int) "mixed" 20 (Gas.calldata "a\000")

let test_gas_hash () =
  Alcotest.(check int) "empty" 30 (Gas.hash 0);
  Alcotest.(check int) "one word" 36 (Gas.hash 32);
  Alcotest.(check int) "33 bytes = 2 words" 42 (Gas.hash 33)

let test_gas_modexp () =
  (* EIP-2565 floor. *)
  Alcotest.(check int) "floor" 200 (Gas.modexp ~base_len:1 ~exp:Bigint.two ~mod_len:1);
  (* 1024-bit modulus, 272-bit exponent: 16^2 words^2 * 271 / 3. *)
  Alcotest.(check int) "rsa verify"
    (256 * 271 / 3)
    (Gas.modexp ~base_len:128 ~exp:(Bigint.shift_left Bigint.one 271) ~mod_len:128)

let test_gasmeter () =
  let m = Gasmeter.create ~limit:1000 () in
  Gasmeter.charge m ~label:"a" 300;
  Gasmeter.charge m ~label:"b" 200;
  Gasmeter.charge m ~label:"a" 100;
  Alcotest.(check int) "used" 600 (Gasmeter.used m);
  Alcotest.(check (list (pair string int))) "breakdown" [ ("a", 400); ("b", 200) ] (Gasmeter.breakdown m);
  Alcotest.(check bool) "out of gas raises" true
    (try
       Gasmeter.charge m ~label:"c" 500;
       false
     with Gasmeter.Out_of_gas _ -> true)

(* --- VM ------------------------------------------------------------------ *)

let test_transfer () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  let r = Ledger.submit_and_seal ledger (Vm.make_transfer state ~sender:alice ~to_:carol ~value:1234) in
  Alcotest.(check bool) "ok" true (Result.is_ok r.Vm.r_output);
  Alcotest.(check int) "carol credited" 1234 (Vm.balance state carol);
  Alcotest.(check int) "gas = base" Gas.tx_base r.Vm.r_gas_used

let test_transfer_insufficient () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  let r = Ledger.submit_and_seal ledger (Vm.make_transfer state ~sender:carol ~to_:alice ~value:5) in
  Alcotest.(check bool) "fails" true (Result.is_error r.Vm.r_output);
  Alcotest.(check int) "alice unchanged" 10_000_000 (Vm.balance state alice)

let counter_contract =
  { Vm.cd_name = "counter";
    cd_code = String.make 100 'c';
    cd_methods =
      [ ( "inc",
          fun ctx _args ->
            let v = match Vm.sload ctx "n" with Some s -> int_of_string s | None -> 0 in
            Vm.sstore ctx "n" (string_of_int (v + 1));
            Ok [ string_of_int (v + 1) ] );
        ( "fail_after_write",
          fun ctx _args ->
            Vm.sstore ctx "n" "999";
            Error "deliberate revert" ) ]
  }

let test_contract_call_and_revert () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  let deploy_txn = Vm.make_deploy state ~sender:alice counter_contract [] in
  let dr = Ledger.submit_and_seal ledger deploy_txn in
  Alcotest.(check bool) "deploy ok" true (Result.is_ok dr.Vm.r_output);
  let addr = deploy_txn.Vm.tx_to in
  let r1 = Ledger.submit_and_seal ledger (Vm.make_call state ~sender:alice ~to_:addr "inc" []) in
  (match r1.Vm.r_output with
   | Ok [ "1" ] -> ()
   | _ -> Alcotest.fail "first inc should return 1");
  let r2 = Ledger.submit_and_seal ledger (Vm.make_call state ~sender:bob ~to_:addr "inc" []) in
  (match r2.Vm.r_output with
   | Ok [ "2" ] -> ()
   | _ -> Alcotest.fail "second inc should return 2");
  (* A reverting call must roll the write back. *)
  let r3 = Ledger.submit_and_seal ledger (Vm.make_call state ~sender:bob ~to_:addr "fail_after_write" []) in
  Alcotest.(check bool) "reverted" true (Result.is_error r3.Vm.r_output);
  let r4 = Ledger.submit_and_seal ledger (Vm.make_call state ~sender:alice ~to_:addr "inc" []) in
  (match r4.Vm.r_output with
   | Ok [ "3" ] -> ()
   | _ -> Alcotest.fail "revert must not persist the 999 write")

let test_revert_restores_value () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  let deploy_txn = Vm.make_deploy state ~sender:alice counter_contract [] in
  ignore (Ledger.submit_and_seal ledger deploy_txn);
  let before = Vm.balance state bob in
  let r =
    Ledger.submit_and_seal ledger
      (Vm.make_call state ~sender:bob ~to_:deploy_txn.Vm.tx_to ~value:5000 "fail_after_write" [])
  in
  Alcotest.(check bool) "reverted" true (Result.is_error r.Vm.r_output);
  Alcotest.(check int) "value returned" before (Vm.balance state bob)

let test_bad_nonce_rejected () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  let txn = Vm.make_transfer state ~sender:alice ~to_:bob ~value:1 in
  ignore (Ledger.submit_and_seal ledger txn);
  (* Replaying the same transaction must fail on the nonce. *)
  let r = Ledger.submit_and_seal ledger txn in
  (match r.Vm.r_output with
   | Error "bad nonce" -> ()
   | _ -> Alcotest.fail "replay must be rejected")

let test_unknown_method () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  let deploy_txn = Vm.make_deploy state ~sender:alice counter_contract [] in
  ignore (Ledger.submit_and_seal ledger deploy_txn);
  let r = Ledger.submit_and_seal ledger (Vm.make_call state ~sender:alice ~to_:deploy_txn.Vm.tx_to "nope" []) in
  Alcotest.(check bool) "unknown method fails" true (Result.is_error r.Vm.r_output)

(* --- blocks and ledger ---------------------------------------------------- *)

let test_chain_grows_and_validates () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  for i = 1 to 5 do
    ignore (Ledger.submit_and_seal ledger (Vm.make_transfer state ~sender:alice ~to_:bob ~value:i))
  done;
  Alcotest.(check int) "height" 5 (Ledger.height ledger);
  (match Ledger.validate ledger with
   | Ok () -> ()
   | Error e -> Alcotest.failf "chain invalid: %s" e)

let test_tamper_detected () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  ignore (Ledger.submit_and_seal ledger (Vm.make_transfer state ~sender:alice ~to_:bob ~value:42));
  Alcotest.(check bool) "tampering detected" true (Ledger.tamper_check_demo ledger ~block_index:1)

let test_tx_inclusion_proof () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  let txn = Vm.make_transfer state ~sender:alice ~to_:bob ~value:7 in
  Ledger.submit ledger txn;
  let block = Ledger.seal_block ledger in
  let proof = Block.prove_inclusion block 0 in
  Alcotest.(check bool) "inclusion verifies" true (Block.verify_inclusion block txn proof);
  let other = Vm.make_transfer state ~sender:alice ~to_:bob ~value:8 in
  Alcotest.(check bool) "other tx rejected" false (Block.verify_inclusion block other proof)

let test_receipt_lookup () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  let txn = Vm.make_transfer state ~sender:alice ~to_:bob ~value:9 in
  ignore (Ledger.submit_and_seal ledger txn);
  (match Ledger.receipt_of ledger (Vm.txn_hash txn) with
   | Some r -> Alcotest.(check bool) "found and ok" true (Result.is_ok r.Vm.r_output)
   | None -> Alcotest.fail "receipt missing")

(* --- Slicer contract ------------------------------------------------------- *)

let acc_params = Rsa_acc.setup ~rng:(Drbg.create ~seed:"chain-acc") ~bits:512 ()

let prime_of s = Prime_rep.to_prime s

(* Build a tiny honest scenario: one keyword with a result multiset, its
   prime in the accumulator. *)
let scenario () =
  let token = Bytesutil.concat [ "trapdoor"; "0"; "g1"; "g2" ] in
  let results = [ "enc-record-1"; "enc-record-2" ] in
  let h = Mset_hash.of_list results in
  let x = prime_of (Bytesutil.concat [ token; Mset_hash.to_bytes h ]) in
  let other = prime_of "some-other-keyword" in
  let xs = [ x; other ] in
  let ac = Rsa_acc.accumulate acc_params xs in
  let witness = Rsa_acc.mem_witness acc_params xs x in
  (token, results, witness, ac)

let deployed () =
  let ledger = fresh_ledger () in
  let token, results, witness, ac = scenario () in
  let contract, dr =
    Slicer_contract.deploy ledger ~owner:alice ~modulus:acc_params.Rsa_acc.modulus
      ~generator:acc_params.Rsa_acc.generator ~initial_ac:ac
  in
  (ledger, contract, dr, token, results, witness)

let test_deploy_and_read_ac () =
  let ledger, contract, dr, _, _, _ = deployed () in
  Alcotest.(check bool) "deploy ok" true (Result.is_ok dr.Vm.r_output);
  (match Slicer_contract.stored_ac ledger ~contract with
   | Some _ -> ()
   | None -> Alcotest.fail "Ac must be on chain")

let test_honest_cloud_gets_paid () =
  let ledger, contract, _, token, results, witness = deployed () in
  let state = Ledger.state ledger in
  let cloud_before = Vm.balance state bob in
  let rr =
    Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:"req-1"
      ~tokens:[ token ] ~payment:5000
  in
  Alcotest.(check bool) "request ok" true (Result.is_ok rr.Vm.r_output);
  (* Cloud retrieves tokens from the chain. *)
  (match Slicer_contract.stored_tokens ledger ~contract ~request_id:"req-1" with
   | Some [ t ] -> Alcotest.(check string) "token readable" token t
   | _ -> Alcotest.fail "tokens must be retrievable from events");
  let claims = [ { Slicer_contract.token_bytes = token; results; witness } ] in
  let sr = Slicer_contract.submit_result ledger ~cloud:bob ~contract ~request_id:"req-1" claims in
  (match sr.Vm.r_output with
   | Ok [ "paid" ] -> ()
   | Ok other -> Alcotest.failf "unexpected output [%s]" (String.concat ";" other)
   | Error e -> Alcotest.failf "submit failed: %s" e);
  Alcotest.(check int) "cloud paid" (cloud_before + 5000) (Vm.balance state bob);
  Alcotest.(check (option string)) "status" (Some "paid")
    (Slicer_contract.request_status ledger ~contract ~request_id:"req-1")

let test_tampered_results_refunded () =
  let ledger, contract, _, token, results, witness = deployed () in
  let state = Ledger.state ledger in
  let user_before = Vm.balance state alice in
  ignore
    (Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:"req-2"
       ~tokens:[ token ] ~payment:7000);
  (* Cloud drops a record from the result set. *)
  let claims =
    [ { Slicer_contract.token_bytes = token; results = List.tl results; witness } ]
  in
  let sr = Slicer_contract.submit_result ledger ~cloud:bob ~contract ~request_id:"req-2" claims in
  (match sr.Vm.r_output with
   | Ok [ "refunded" ] -> ()
   | _ -> Alcotest.fail "tampered result must refund");
  Alcotest.(check int) "user refunded" user_before (Vm.balance state alice);
  Alcotest.(check (option string)) "status" (Some "refunded")
    (Slicer_contract.request_status ledger ~contract ~request_id:"req-2")

let test_forged_witness_refunded () =
  let ledger, contract, _, token, results, witness = deployed () in
  ignore
    (Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:"req-3"
       ~tokens:[ token ] ~payment:100);
  let forged = Bigint.mod_mul witness Bigint.two acc_params.Rsa_acc.modulus in
  let claims = [ { Slicer_contract.token_bytes = token; results; witness = forged } ] in
  let sr = Slicer_contract.submit_result ledger ~cloud:bob ~contract ~request_id:"req-3" claims in
  (match sr.Vm.r_output with
   | Ok [ "refunded" ] -> ()
   | _ -> Alcotest.fail "forged witness must refund")

let test_wrong_token_set_rejected () =
  let ledger, contract, _, token, results, witness = deployed () in
  ignore
    (Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:"req-4"
       ~tokens:[ token ] ~payment:100);
  let claims = [ { Slicer_contract.token_bytes = token ^ "x"; results; witness } ] in
  let sr = Slicer_contract.submit_result ledger ~cloud:bob ~contract ~request_id:"req-4" claims in
  Alcotest.(check bool) "token mismatch is an error" true (Result.is_error sr.Vm.r_output);
  (* The escrow stays pending: the right cloud can still answer. *)
  Alcotest.(check (option string)) "still pending" (Some "pending")
    (Slicer_contract.request_status ledger ~contract ~request_id:"req-4")

let test_update_ac_only_owner () =
  let ledger, contract, _, _, _, _ = deployed () in
  let r = Slicer_contract.update_ac ledger ~owner:bob ~contract Bigint.one in
  Alcotest.(check bool) "non-owner rejected" true (Result.is_error r.Vm.r_output);
  let r2 = Slicer_contract.update_ac ledger ~owner:alice ~contract (Bigint.of_int 424242) in
  Alcotest.(check bool) "owner ok" true (Result.is_ok r2.Vm.r_output);
  (match Slicer_contract.stored_ac ledger ~contract with
   | Some ac -> Alcotest.(check string) "ac updated" "424242" (Bigint.to_string ac)
   | None -> Alcotest.fail "ac missing")

let test_claims_roundtrip () =
  let claims =
    [ { Slicer_contract.token_bytes = "tok-a"; results = [ "r1"; "r2" ]; witness = Bigint.of_int 99 };
      { Slicer_contract.token_bytes = "tok-b"; results = []; witness = Bigint.of_string "123456789012345678901234567890" } ]
  in
  match Slicer_contract.decode_claims (Slicer_contract.encode_claims claims) with
  | None -> Alcotest.fail "decode failed"
  | Some decoded ->
    Alcotest.(check int) "count" 2 (List.length decoded);
    List.iter2
      (fun a b ->
        Alcotest.(check string) "token" a.Slicer_contract.token_bytes b.Slicer_contract.token_bytes;
        Alcotest.(check (list string)) "results" a.Slicer_contract.results b.Slicer_contract.results;
        Alcotest.(check bool) "witness" true (Bigint.equal a.Slicer_contract.witness b.Slicer_contract.witness))
      claims decoded

let test_batched_contract_path () =
  let ledger, contract, _, token, results, witness = deployed () in
  (* Build the batch witness for the single claim: equal to the plain
     membership witness here. *)
  ignore
    (Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:"b-1"
       ~tokens:[ token ] ~payment:400);
  let claims = [ { Slicer_contract.token_bytes = token; results; witness = Bigint.one } ] in
  let sr =
    Slicer_contract.submit_result_batched ledger ~cloud:bob ~contract ~request_id:"b-1" claims
      ~witness
  in
  (match sr.Vm.r_output with
   | Ok [ "paid" ] -> ()
   | Ok o -> Alcotest.failf "unexpected [%s]" (String.concat ";" o)
   | Error e -> Alcotest.failf "batched submit failed: %s" e);
  (* A poisoned batch witness refunds. *)
  ignore
    (Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:"b-2"
       ~tokens:[ token ] ~payment:400);
  let bad = Bigint.mod_mul witness Bigint.two acc_params.Rsa_acc.modulus in
  let sr2 =
    Slicer_contract.submit_result_batched ledger ~cloud:bob ~contract ~request_id:"b-2" claims
      ~witness:bad
  in
  (match sr2.Vm.r_output with
   | Ok [ "refunded" ] -> ()
   | _ -> Alcotest.fail "bad batch witness must refund")

let test_out_of_gas_reverts () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  let hog =
    { Vm.cd_name = "gas-hog";
      cd_code = "hog";
      cd_methods =
        [ ( "burn",
            fun ctx _args ->
              Vm.sstore ctx "started" "yes";
              (* Greater than the 30M block limit. *)
              Gasmeter.charge ctx.Vm.meter ~label:"burn" 50_000_000;
              Ok [] );
          ( "read",
            fun ctx _args ->
              Ok [ Option.value ~default:"unset" (Vm.sload ctx "started") ] ) ] }
  in
  let deploy_txn = Vm.make_deploy state ~sender:alice hog [] in
  ignore (Ledger.submit_and_seal ledger deploy_txn);
  let r = Ledger.submit_and_seal ledger (Vm.make_call state ~sender:alice ~to_:deploy_txn.Vm.tx_to "burn" []) in
  (match r.Vm.r_output with
   | Error "out of gas" -> ()
   | _ -> Alcotest.fail "must run out of gas");
  (* The write before the gas exhaustion must have been rolled back. *)
  let r2 = Ledger.submit_and_seal ledger (Vm.make_call state ~sender:alice ~to_:deploy_txn.Vm.tx_to "read" []) in
  (match r2.Vm.r_output with
   | Ok [ "unset" ] -> ()
   | Ok o -> Alcotest.failf "storage not rolled back: [%s]" (String.concat ";" o)
   | Error e -> Alcotest.failf "read failed: %s" e)

let test_events_in_receipts () =
  let ledger, contract, _, token, _, _ = deployed () in
  let rr =
    Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:"ev-1"
      ~tokens:[ token ] ~payment:10
  in
  Alcotest.(check bool) "request emitted an event" true (rr.Vm.r_events <> []);
  (match rr.Vm.r_events with
   | ev :: _ ->
     (match Bytesutil.split ev with
      | Some ("SearchRequested" :: id :: _) -> Alcotest.(check string) "id" "ev-1" id
      | _ -> Alcotest.fail "malformed event")
   | [] -> ())

let test_forged_seal_detected () =
  let ledger = fresh_ledger () in
  let state = Ledger.state ledger in
  ignore (Ledger.submit_and_seal ledger (Vm.make_transfer state ~sender:alice ~to_:bob ~value:1));
  (* A validator outside the registry cannot produce acceptable seals:
     rebuild the head block with a wrong secret and check validation
     would reject it. We use tamper_check_demo's machinery indirectly by
     verifying the chain currently validates, then corrupting. *)
  (match Ledger.validate ledger with
   | Ok () -> ()
   | Error e -> Alcotest.failf "chain should validate: %s" e);
  Alcotest.(check bool) "tamper detected" true (Ledger.tamper_check_demo ledger ~block_index:1)

let gen_claims =
  let open QCheck2.Gen in
  let gen_claim =
    let* token_bytes = string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 1 40) in
    let* results = list_size (int_range 0 5) (string_size ~gen:(map Char.chr (int_range 0 255)) (return 16)) in
    let* w = int_range 1 1_000_000 in
    return { Slicer_contract.token_bytes; results; witness = Bigint.of_int w }
  in
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 6) gen_claim

let claims_props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"claims wire roundtrip" ~count:150 gen_claims (fun claims ->
           match Slicer_contract.decode_claims (Slicer_contract.encode_claims claims) with
           | None -> false
           | Some back ->
             List.length back = List.length claims
             && List.for_all2
                  (fun a b ->
                    String.equal a.Slicer_contract.token_bytes b.Slicer_contract.token_bytes
                    && a.Slicer_contract.results = b.Slicer_contract.results
                    && Bigint.equal a.Slicer_contract.witness b.Slicer_contract.witness)
                  claims back));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"gas model monotonic" ~count:100
         QCheck2.Gen.(pair (int_range 1 2000) (int_range 1 2000))
         (fun (a, b) ->
           let lo = Stdlib.min a b and hi = Stdlib.max a b in
           Gas.h_prime ~input_len:lo <= Gas.h_prime ~input_len:hi
           && Gas.hash lo <= Gas.hash hi
           && Gas.modexp ~base_len:64 ~exp:(Bigint.shift_left Bigint.one lo) ~mod_len:64
              <= Gas.modexp ~base_len:64 ~exp:(Bigint.shift_left Bigint.one hi) ~mod_len:64)) ]

let test_decode_claims_malformed () =
  Alcotest.(check bool) "garbage" true (Slicer_contract.decode_claims "\x00\x00\x00\x09abc" = None);
  Alcotest.(check bool) "truncated inner" true
    (Slicer_contract.decode_claims (Bytesutil.concat [ "not-a-claim" ]) = None);
  Alcotest.(check bool) "empty is zero claims" true (Slicer_contract.decode_claims "" = Some [])

(* --- batched optimistic settlement -------------------------------------- *)

(* A two-request batch against the standard scenario: both requests
   escrowed, receipts committed under one Merkle root. Returns
   everything a lifecycle test needs to finalize or dispute it. *)
let committed_batch ?(deposit = 50_000) ?(payment = 400) () =
  let ledger, contract, _, token, results, witness = deployed () in
  let dr = Slicer_contract.post_deposit ledger ~cloud:bob ~contract ~amount:deposit in
  (match dr.Vm.r_output with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "deposit failed: %s" e);
  let requests = [ "ba-1"; "ba-2" ] in
  List.iter
    (fun id ->
      match
        (Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:id
           ~tokens:[ token ] ~payment)
          .Vm.r_output
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "escrow %s failed: %s" id e)
    requests;
  let claims = [ { Slicer_contract.token_bytes = token; results; witness } ] in
  let leaf_of id =
    Slicer_contract.encode_leaf
      { Slicer_contract.rl_client = "tester";
        rl_request = id;
        rl_claim_hash = Sha256.digest (Slicer_contract.encode_claims claims);
        rl_witness_digest = Slicer_contract.witness_digest ~claims ~batch_witness:None }
  in
  let leaves = List.map leaf_of requests in
  let tree = Merkle.build leaves in
  let cr =
    Slicer_contract.commit_batch ledger ~cloud:bob ~contract ~batch_id:"batch-0"
      ~root:(Merkle.root tree) ~requests
  in
  (match cr.Vm.r_output with
   | Ok [ "committed" ] -> ()
   | Ok o -> Alcotest.failf "unexpected commit output [%s]" (String.concat ";" o)
   | Error e -> Alcotest.failf "commit failed: %s" e);
  (ledger, contract, claims, leaves, tree)

(* Seal empty-ish blocks (plain transfers) until [n] more exist. *)
let advance_blocks ledger n =
  for _ = 1 to n do
    ignore
      (Ledger.submit_and_seal ledger
         (Vm.make_transfer (Ledger.state ledger) ~sender:alice ~to_:carol ~value:1))
  done

let test_batch_commit_and_finalize () =
  let ledger, contract, _, _, _ = committed_batch () in
  Alcotest.(check (option string)) "committed" (Some "committed")
    (Slicer_contract.batch_status ledger ~contract ~batch_id:"batch-0");
  (* Too early: the dispute window (4 blocks) still runs. *)
  let early = Slicer_contract.finalize_batch ledger ~cloud:bob ~contract ~batch_id:"batch-0" in
  Alcotest.(check bool) "early finalize reverts" true (Result.is_error early.Vm.r_output);
  advance_blocks ledger 4;
  let cloud_before = Vm.balance (Ledger.state ledger) bob in
  let fr = Slicer_contract.finalize_batch ledger ~cloud:bob ~contract ~batch_id:"batch-0" in
  (match fr.Vm.r_output with
   | Ok [ "finalized"; total ] -> Alcotest.(check string) "payout total" "800" total
   | Ok o -> Alcotest.failf "unexpected finalize output [%s]" (String.concat ";" o)
   | Error e -> Alcotest.failf "finalize failed: %s" e);
  Alcotest.(check int) "cloud paid both escrows" (cloud_before + 800)
    (Vm.balance (Ledger.state ledger) bob);
  Alcotest.(check (option string)) "final" (Some "final")
    (Slicer_contract.batch_status ledger ~contract ~batch_id:"batch-0");
  (* Wholesale settlement is once-only. *)
  let again = Slicer_contract.finalize_batch ledger ~cloud:bob ~contract ~batch_id:"batch-0" in
  Alcotest.(check bool) "double finalize reverts" true (Result.is_error again.Vm.r_output)

let test_batch_requires_deposit_and_escrow () =
  let ledger, contract, _, token, results, witness = deployed () in
  ignore (token, results, witness);
  (* No deposit: the commitment has nothing slashable behind it. *)
  let cr =
    Slicer_contract.commit_batch ledger ~cloud:bob ~contract ~batch_id:"nb" ~root:"r"
      ~requests:[ "nope" ]
  in
  Alcotest.(check bool) "commit without deposit reverts" true (Result.is_error cr.Vm.r_output);
  ignore (Slicer_contract.post_deposit ledger ~cloud:bob ~contract ~amount:1000);
  (* Member that was never escrowed. *)
  let cr2 =
    Slicer_contract.commit_batch ledger ~cloud:bob ~contract ~batch_id:"nb" ~root:"r"
      ~requests:[ "nope" ]
  in
  Alcotest.(check bool) "unescrowed member reverts" true (Result.is_error cr2.Vm.r_output)

let test_batch_double_commit_refused () =
  let ledger, contract, claims, _, tree = committed_batch () in
  ignore claims;
  (* Same id again... *)
  let cr =
    Slicer_contract.commit_batch ledger ~cloud:bob ~contract ~batch_id:"batch-0"
      ~root:(Merkle.root tree) ~requests:[ "ba-1" ]
  in
  Alcotest.(check bool) "batch id reuse reverts" true (Result.is_error cr.Vm.r_output);
  (* ...and the members are no longer "pending", so a second batch over
     them is refused too. *)
  let cr2 =
    Slicer_contract.commit_batch ledger ~cloud:bob ~contract ~batch_id:"batch-1"
      ~root:(Merkle.root tree) ~requests:[ "ba-1"; "ba-2" ]
  in
  Alcotest.(check bool) "already-batched member reverts" true (Result.is_error cr2.Vm.r_output)

let test_batch_dispute_good_leaf_rejected () =
  let ledger, contract, claims, leaves, tree = committed_batch () in
  let dr =
    Slicer_contract.dispute_leaf ledger ~disputer:alice ~contract ~batch_id:"batch-0" ~index:0
      ~leaf:(List.nth leaves 0) ~proof:(Merkle.prove tree 0)
      ~claims_blob:(Slicer_contract.encode_claims claims) ~batch_witness:None
  in
  (match dr.Vm.r_output with
   | Error e ->
     Alcotest.(check bool) "names the rejection" true
       (String.length e >= 16 && String.sub e 0 16 = "dispute rejected")
   | Ok o -> Alcotest.failf "good leaf must not slash (got [%s])" (String.concat ";" o));
  Alcotest.(check (option string)) "still committed" (Some "committed")
    (Slicer_contract.batch_status ledger ~contract ~batch_id:"batch-0")

let test_batch_dispute_bad_leaf_slashes () =
  let deposit = 50_000 in
  let ledger, contract, _, token, results, witness = deployed () in
  ignore (Slicer_contract.post_deposit ledger ~cloud:bob ~contract ~amount:deposit);
  let requests = [ "bd-1"; "bd-2" ] in
  List.iter
    (fun id ->
      ignore
        (Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:id
           ~tokens:[ token ] ~payment:400))
    requests;
  (* An honest leaf for bd-1, a tampered one for bd-2: right token set
     (so the escrow binding holds) but a forged witness — exactly what a
     cloud that skipped the work would commit. *)
  let good = [ { Slicer_contract.token_bytes = token; results; witness } ] in
  let bad =
    [ { Slicer_contract.token_bytes = token; results;
        witness = Bigint.mod_mul witness Bigint.two acc_params.Rsa_acc.modulus } ]
  in
  let leaf_of id claims =
    Slicer_contract.encode_leaf
      { Slicer_contract.rl_client = "tester";
        rl_request = id;
        rl_claim_hash = Sha256.digest (Slicer_contract.encode_claims claims);
        rl_witness_digest = Slicer_contract.witness_digest ~claims ~batch_witness:None }
  in
  let leaves = [ leaf_of "bd-1" good; leaf_of "bd-2" bad ] in
  let tree = Merkle.build leaves in
  let cr =
    Slicer_contract.commit_batch ledger ~cloud:bob ~contract ~batch_id:"bd"
      ~root:(Merkle.root tree) ~requests
  in
  (match cr.Vm.r_output with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "commit failed: %s" e);
  let state = Ledger.state ledger in
  let alice_before = Vm.balance state alice in
  let dr =
    Slicer_contract.dispute_leaf ledger ~disputer:alice ~contract ~batch_id:"bd" ~index:1
      ~leaf:(List.nth leaves 1) ~proof:(Merkle.prove tree 1)
      ~claims_blob:(Slicer_contract.encode_claims bad) ~batch_witness:None
  in
  (match dr.Vm.r_output with
   | Ok [ "slashed" ] -> ()
   | Ok o -> Alcotest.failf "unexpected dispute output [%s]" (String.concat ";" o)
   | Error e -> Alcotest.failf "dispute failed: %s" e);
  Alcotest.(check (option string)) "slashed" (Some "slashed")
    (Slicer_contract.batch_status ledger ~contract ~batch_id:"bd");
  (* Bounty (whole deposit) + both escrows refunded to alice, minus the
     double-move of the escrow she paid (she is also the user here). *)
  Alcotest.(check int) "bounty + refunds" (alice_before + deposit + 800)
    (Vm.balance state alice);
  Alcotest.(check int) "deposit gone" 0
    (Slicer_contract.stored_deposit ledger ~contract ~who:bob);
  (* The slashed batch can be neither finalized nor re-disputed. *)
  advance_blocks ledger 4;
  let fr = Slicer_contract.finalize_batch ledger ~cloud:bob ~contract ~batch_id:"bd" in
  Alcotest.(check bool) "slashed batch cannot finalize" true (Result.is_error fr.Vm.r_output)

let test_batch_dispute_window_closes () =
  let ledger, contract, claims, leaves, tree = committed_batch () in
  advance_blocks ledger 4;
  let dr =
    Slicer_contract.dispute_leaf ledger ~disputer:alice ~contract ~batch_id:"batch-0" ~index:0
      ~leaf:(List.nth leaves 0) ~proof:(Merkle.prove tree 0)
      ~claims_blob:(Slicer_contract.encode_claims claims) ~batch_witness:None
  in
  Alcotest.(check bool) "late dispute reverts" true (Result.is_error dr.Vm.r_output)

let test_batch_dispute_foreign_proof_rejected () =
  let ledger, contract, claims, leaves, tree = committed_batch () in
  (* An inclusion proof for leaf 1 cannot vouch for leaf 0 — the index
     binding inside Merkle.verify refuses the splice. *)
  let wrong = { (Merkle.prove tree 1) with Merkle.index = 0 } in
  let dr =
    Slicer_contract.dispute_leaf ledger ~disputer:alice ~contract ~batch_id:"batch-0" ~index:0
      ~leaf:(List.nth leaves 0) ~proof:wrong
      ~claims_blob:(Slicer_contract.encode_claims claims) ~batch_witness:None
  in
  Alcotest.(check bool) "spliced proof reverts" true (Result.is_error dr.Vm.r_output)

let test_leaf_codec_roundtrip () =
  let leaf =
    { Slicer_contract.rl_client = "c";
      rl_request = "r/1";
      rl_claim_hash = String.make 32 'h';
      rl_witness_digest = String.make 32 'w' }
  in
  (match Slicer_contract.decode_leaf (Slicer_contract.encode_leaf leaf) with
   | Some back -> Alcotest.(check bool) "roundtrip" true (back = leaf)
   | None -> Alcotest.fail "leaf failed to decode");
  Alcotest.(check bool) "garbage rejected" true (Slicer_contract.decode_leaf "junk" = None)

let test_gas_regime () =
  (* Table II sanity: deployment in the hundreds of thousands, insertion
     and verification in the tens of thousands. *)
  let ledger, contract, dr, token, results, witness = deployed () in
  Alcotest.(check bool) "deploy ~ 0.6-0.9M gas" true (dr.Vm.r_gas_used > 600_000 && dr.Vm.r_gas_used < 900_000);
  let ur = Slicer_contract.update_ac ledger ~owner:alice ~contract (Bigint.of_int 5) in
  Alcotest.(check bool)
    (Printf.sprintf "insert ~ 25-35k gas (got %d)" ur.Vm.r_gas_used)
    true
    (ur.Vm.r_gas_used > 25_000 && ur.Vm.r_gas_used < 35_000);
  ignore
    (Slicer_contract.request_search ledger ~user:alice ~contract ~request_id:"g" ~tokens:[ token ]
       ~payment:10);
  let claims = [ { Slicer_contract.token_bytes = token; results; witness } ] in
  let sr = Slicer_contract.submit_result ledger ~cloud:bob ~contract ~request_id:"g" claims in
  Alcotest.(check bool)
    (Printf.sprintf "verify ~ 60-160k gas (got %d)" sr.Vm.r_gas_used)
    true
    (sr.Vm.r_gas_used > 60_000 && sr.Vm.r_gas_used < 160_000)

let () =
  Alcotest.run "chain"
    [ ( "gas",
        [ Alcotest.test_case "calldata" `Quick test_gas_calldata;
          Alcotest.test_case "hash" `Quick test_gas_hash;
          Alcotest.test_case "modexp" `Quick test_gas_modexp;
          Alcotest.test_case "meter" `Quick test_gasmeter ] );
      ( "vm",
        [ Alcotest.test_case "transfer" `Quick test_transfer;
          Alcotest.test_case "insufficient balance" `Quick test_transfer_insufficient;
          Alcotest.test_case "call and revert" `Quick test_contract_call_and_revert;
          Alcotest.test_case "revert restores value" `Quick test_revert_restores_value;
          Alcotest.test_case "bad nonce" `Quick test_bad_nonce_rejected;
          Alcotest.test_case "unknown method" `Quick test_unknown_method ] );
      ( "ledger",
        [ Alcotest.test_case "grows and validates" `Quick test_chain_grows_and_validates;
          Alcotest.test_case "tamper detected" `Quick test_tamper_detected;
          Alcotest.test_case "tx inclusion proof" `Quick test_tx_inclusion_proof;
          Alcotest.test_case "receipt lookup" `Quick test_receipt_lookup ] );
      ( "slicer_contract",
        [ Alcotest.test_case "deploy and read Ac" `Quick test_deploy_and_read_ac;
          Alcotest.test_case "honest cloud paid" `Quick test_honest_cloud_gets_paid;
          Alcotest.test_case "tampered results refunded" `Quick test_tampered_results_refunded;
          Alcotest.test_case "forged witness refunded" `Quick test_forged_witness_refunded;
          Alcotest.test_case "wrong token set rejected" `Quick test_wrong_token_set_rejected;
          Alcotest.test_case "updateAc only owner" `Quick test_update_ac_only_owner;
          Alcotest.test_case "claims roundtrip" `Quick test_claims_roundtrip;
          Alcotest.test_case "batched contract path" `Quick test_batched_contract_path;
          Alcotest.test_case "out of gas reverts" `Quick test_out_of_gas_reverts;
          Alcotest.test_case "events in receipts" `Quick test_events_in_receipts;
          Alcotest.test_case "forged seal detected" `Quick test_forged_seal_detected;
          Alcotest.test_case "malformed claims rejected" `Quick test_decode_claims_malformed;
          Alcotest.test_case "gas regime (Table II shape)" `Quick test_gas_regime ] );
      ( "settle_batch",
        [ Alcotest.test_case "commit and finalize" `Quick test_batch_commit_and_finalize;
          Alcotest.test_case "deposit and escrow required" `Quick
            test_batch_requires_deposit_and_escrow;
          Alcotest.test_case "double commit refused" `Quick test_batch_double_commit_refused;
          Alcotest.test_case "good-leaf dispute rejected" `Quick
            test_batch_dispute_good_leaf_rejected;
          Alcotest.test_case "bad-leaf dispute slashes" `Quick
            test_batch_dispute_bad_leaf_slashes;
          Alcotest.test_case "window closes" `Quick test_batch_dispute_window_closes;
          Alcotest.test_case "foreign proof rejected" `Quick
            test_batch_dispute_foreign_proof_rejected;
          Alcotest.test_case "leaf codec" `Quick test_leaf_codec_roundtrip ] );
      ("contract properties", claims_props) ]
