(* Unit and property tests for the arbitrary-precision integer substrate.
   Properties cross-check against native [int] arithmetic on small values
   and against algebraic identities on cryptographic-size values. *)

let bi = Bigint.of_int

let check_eq msg expected actual =
  Alcotest.(check string) msg (Bigint.to_string expected) (Bigint.to_string actual)

(* --- generators ---------------------------------------------------- *)

let gen_small = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

(* Random integer of up to [bits] bits, either sign. *)
let gen_big ?(bits = 512) () =
  let open QCheck2.Gen in
  let* nbytes = int_range 1 (bits / 8) in
  let* bytes_list = list_size (return nbytes) (int_range 0 255) in
  let* negative = bool in
  let s = String.init (List.length bytes_list) (fun i -> Char.chr (List.nth bytes_list i)) in
  let v = Bigint.of_bytes_be s in
  return (if negative then Bigint.neg v else v)

let gen_big_pos ?(bits = 512) () = QCheck2.Gen.map Bigint.abs (gen_big ~bits ())

let gen_big_pos_nonzero ?(bits = 512) () =
  QCheck2.Gen.map (fun x -> Bigint.add (Bigint.abs x) Bigint.one) (gen_big ~bits ())

let prop name ?(count = 300) gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen p)

(* --- unit tests ----------------------------------------------------- *)

let test_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check (option int)) "roundtrip" (Some n) (Bigint.to_int_opt (bi n)))
    [ 0; 1; -1; 42; -42; max_int; 1 lsl 40; -(1 lsl 40) ];
  Alcotest.(check string) "min_int" (string_of_int min_int) (Bigint.to_string (bi min_int))

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Bigint.to_string (Bigint.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-99999999999999999999999999999999999999";
      "340282366920938463463374607431768211456" (* 2^128 *) ]

let test_hex () =
  Alcotest.(check string) "ff" "ff" (Bigint.to_hex (bi 255));
  Alcotest.(check string) "deadbeef" "deadbeef" (Bigint.to_hex (Bigint.of_hex "deadbeef"));
  Alcotest.(check string) "big"
    "123456789abcdef0123456789abcdef"
    (Bigint.to_hex (Bigint.of_hex "0123456789abcdef0123456789abcdef"));
  check_eq "hex value" (bi 255) (Bigint.of_hex "FF")

let test_bytes () =
  let x = Bigint.of_hex "0102030405060708090a" in
  Alcotest.(check string) "to_bytes" "\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a" (Bigint.to_bytes_be x);
  check_eq "roundtrip" x (Bigint.of_bytes_be (Bigint.to_bytes_be x));
  Alcotest.(check string) "padded" "\x00\x00\xff" (Bigint.to_bytes_be ~len:3 (bi 255));
  Alcotest.(check string) "zero" "\x00" (Bigint.to_bytes_be Bigint.zero)

let test_arith_basics () =
  check_eq "add" (bi 579) (Bigint.add (bi 123) (bi 456));
  check_eq "sub neg" (bi (-333)) (Bigint.sub (bi 123) (bi 456));
  check_eq "mul" (bi 56088) (Bigint.mul (bi 123) (bi 456));
  check_eq "mul neg" (bi (-56088)) (Bigint.mul (bi (-123)) (bi 456));
  let big = Bigint.of_string "123456789012345678901234567890" in
  check_eq "square"
    (Bigint.of_string "15241578753238836750495351562536198787501905199875019052100")
    (Bigint.mul big big)

let test_divmod () =
  let q, r = Bigint.divmod (bi 17) (bi 5) in
  check_eq "q" (bi 3) q;
  check_eq "r" (bi 2) r;
  let q, r = Bigint.divmod (bi (-17)) (bi 5) in
  check_eq "negative dividend: q" (bi (-4)) q;
  check_eq "negative dividend: r" (bi 3) r;
  let q, r = Bigint.divmod (bi 17) (bi (-5)) in
  check_eq "negative divisor: q" (bi (-3)) q;
  check_eq "negative divisor: r" (bi 2) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod Bigint.one Bigint.zero))

let test_divmod_large () =
  (* Exercise the Knuth-D path, including the rare add-back branch via
     divisors with a high top limb. *)
  let a = Bigint.of_string "340282366920938463463374607431768211455" in
  let b = Bigint.of_string "18446744073709551616" in
  let q, r = Bigint.divmod a b in
  check_eq "q" (Bigint.of_string "18446744073709551615") q;
  check_eq "r" (Bigint.of_string "18446744073709551615") r

let test_shift () =
  check_eq "shl" (bi 1024) (Bigint.shift_left Bigint.one 10);
  check_eq "shr" (bi 1) (Bigint.shift_right (bi 1024) 10);
  check_eq "shr to zero" Bigint.zero (Bigint.shift_right (bi 1024) 11);
  check_eq "cross-limb" (Bigint.of_string "4835703278458516698824704") (Bigint.shift_left Bigint.one 82)

let test_bits () =
  Alcotest.(check int) "num_bits 0" 0 (Bigint.num_bits Bigint.zero);
  Alcotest.(check int) "num_bits 1" 1 (Bigint.num_bits Bigint.one);
  Alcotest.(check int) "num_bits 255" 8 (Bigint.num_bits (bi 255));
  Alcotest.(check int) "num_bits 256" 9 (Bigint.num_bits (bi 256));
  Alcotest.(check bool) "testbit" true (Bigint.testbit (bi 5) 2);
  Alcotest.(check bool) "testbit" false (Bigint.testbit (bi 5) 1);
  Alcotest.(check bool) "even" true (Bigint.is_even (bi 4));
  Alcotest.(check bool) "odd" true (Bigint.is_odd (bi 5))

let test_pow () =
  check_eq "2^10" (bi 1024) (Bigint.pow Bigint.two 10);
  check_eq "x^0" Bigint.one (Bigint.pow (bi 7) 0);
  check_eq "3^40" (Bigint.of_string "12157665459056928801") (Bigint.pow (bi 3) 40)

let test_mod_pow () =
  check_eq "small" (bi 445) (Bigint.mod_pow (bi 4) (bi 13) (bi 497));
  (* Fermat: a^(p-1) = 1 mod p for prime p. *)
  let p = Bigint.of_string "162259276829213363391578010288127" (* 2^107-1, prime *) in
  check_eq "fermat" Bigint.one (Bigint.mod_pow (bi 3) (Bigint.pred p) p);
  (* Even modulus path. *)
  check_eq "even modulus" (bi 4) (Bigint.mod_pow (bi 2) (bi 10) (bi 60));
  check_eq "zero exponent" Bigint.one (Bigint.mod_pow (bi 12345) Bigint.zero (bi 997))

let test_mod_inv () =
  (match Bigint.mod_inv (bi 3) (bi 11) with
   | Some inv -> check_eq "3^-1 mod 11" (bi 4) inv
   | None -> Alcotest.fail "inverse must exist");
  Alcotest.(check bool) "no inverse" true (Bigint.mod_inv (bi 6) (bi 9) = None)

let test_knuth_add_back () =
  (* Dividends engineered around q*v with v's top limb at the base
     boundary exercise the rare add-back branch of Algorithm D. *)
  let v = Bigint.pred (Bigint.shift_left Bigint.one 93) (* 3 limbs of all-ones *) in
  List.iter
    (fun (qs, rs) ->
      let q = Bigint.of_string qs and r = Bigint.of_string rs in
      let a = Bigint.add (Bigint.mul q v) r in
      let q', r' = Bigint.divmod a v in
      check_eq "quotient" q q';
      check_eq "remainder" r r')
    [ ("1", "0"); ("2147483647", "1"); ("9903520314283042199192993791", "9903520314283042199192993790");
      ("123456789123456789", "0") ]

let test_error_paths () =
  Alcotest.check_raises "negative pow" (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (Bigint.pow Bigint.two (-1)));
  Alcotest.check_raises "negative mod_pow exponent"
    (Invalid_argument "Bigint.mod_pow: negative exponent") (fun () ->
      ignore (Bigint.mod_pow Bigint.two Bigint.minus_one (bi 7)));
  Alcotest.check_raises "mod_pow modulus 1" (Invalid_argument "Bigint.mod_pow: modulus <= 1")
    (fun () -> ignore (Bigint.mod_pow Bigint.two Bigint.two Bigint.one));
  Alcotest.check_raises "to_bytes too small"
    (Invalid_argument "Bigint.to_bytes_be: value too large for len") (fun () ->
      ignore (Bigint.to_bytes_be ~len:1 (bi 65536)));
  Alcotest.check_raises "divmod_int zero" (Invalid_argument "Bigint.divmod_int: divisor out of range")
    (fun () -> ignore (Bigint.divmod_int Bigint.one 0));
  Alcotest.check_raises "negative shift" (Invalid_argument "Bigint.shift_left") (fun () ->
      ignore (Bigint.shift_left Bigint.one (-3)));
  (match Bigint.of_string "12x3" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "bad digit accepted")

let test_mod_pow_zero_base () =
  check_eq "0^e mod m" Bigint.zero (Bigint.mod_pow Bigint.zero (bi 5) (bi 97));
  check_eq "b = m" Bigint.zero (Bigint.mod_pow (bi 97) (bi 3) (bi 97));
  check_eq "b > m reduced" (bi 16) (Bigint.mod_pow (bi 100) (bi 2) (bi 96))

let test_gcd () =
  check_eq "gcd" (bi 6) (Bigint.gcd (bi 54) (bi 24));
  check_eq "gcd neg" (bi 6) (Bigint.gcd (bi (-54)) (bi 24));
  check_eq "gcd zero" (bi 7) (Bigint.gcd (bi 7) Bigint.zero)

(* --- properties ----------------------------------------------------- *)

let pair g1 g2 = QCheck2.Gen.pair g1 g2
let triple g1 g2 g3 = QCheck2.Gen.triple g1 g2 g3

let props =
  [ prop "int add matches" (pair gen_small gen_small) (fun (a, b) ->
        Bigint.equal (Bigint.add (bi a) (bi b)) (bi (a + b)));
    prop "int mul matches" (pair gen_small gen_small) (fun (a, b) ->
        Bigint.equal (Bigint.mul (bi a) (bi b)) (bi (a * b)));
    prop "string roundtrip" (gen_big ~bits:1024 ()) (fun x ->
        Bigint.equal x (Bigint.of_string (Bigint.to_string x)));
    prop "hex roundtrip (abs)" (gen_big_pos ~bits:1024 ()) (fun x ->
        Bigint.equal x (Bigint.of_hex (Bigint.to_hex x)));
    prop "bytes roundtrip (abs)" (gen_big_pos ~bits:1024 ()) (fun x ->
        Bigint.equal x (Bigint.of_bytes_be (Bigint.to_bytes_be x)));
    prop "add commutes" (pair (gen_big ()) (gen_big ())) (fun (a, b) ->
        Bigint.equal (Bigint.add a b) (Bigint.add b a));
    prop "add associates" (triple (gen_big ()) (gen_big ()) (gen_big ())) (fun (a, b, c) ->
        Bigint.equal (Bigint.add (Bigint.add a b) c) (Bigint.add a (Bigint.add b c)));
    prop "sub inverts add" (pair (gen_big ()) (gen_big ())) (fun (a, b) ->
        Bigint.equal a (Bigint.sub (Bigint.add a b) b));
    prop "mul commutes" (pair (gen_big ()) (gen_big ())) (fun (a, b) ->
        Bigint.equal (Bigint.mul a b) (Bigint.mul b a));
    prop "mul distributes" (triple (gen_big ()) (gen_big ()) (gen_big ())) (fun (a, b, c) ->
        Bigint.equal (Bigint.mul a (Bigint.add b c)) (Bigint.add (Bigint.mul a b) (Bigint.mul a c)));
    prop "divmod invariant" ~count:500
      (pair (gen_big ~bits:768 ()) (gen_big_pos_nonzero ~bits:384 ()))
      (fun (a, b) ->
        let q, r = Bigint.divmod a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        && Bigint.sign r >= 0
        && Bigint.compare r b < 0);
    prop "divmod_int matches divmod" (pair (gen_big ()) (QCheck2.Gen.int_range 1 1_000_000_000))
      (fun (a, d) ->
        let q1, r1 = Bigint.divmod_int a d in
        let q2, r2 = Bigint.divmod a (bi d) in
        Bigint.equal q1 q2 && Bigint.equal (bi r1) r2);
    prop "shift_left is mul by 2^k" (pair (gen_big ()) (QCheck2.Gen.int_range 0 200)) (fun (a, k) ->
        Bigint.equal (Bigint.shift_left a k) (Bigint.mul a (Bigint.pow Bigint.two k)));
    prop "shift_right is div of abs" (pair (gen_big_pos ()) (QCheck2.Gen.int_range 0 200)) (fun (a, k) ->
        Bigint.equal (Bigint.shift_right a k) (Bigint.div a (Bigint.pow Bigint.two k)));
    prop "mod_pow matches naive" ~count:100
      (triple (gen_big_pos ~bits:128 ()) (QCheck2.Gen.int_range 0 64) (gen_big_pos_nonzero ~bits:128 ()))
      (fun (b, e, m) ->
        let m = if Bigint.equal m Bigint.one then Bigint.two else m in
        let naive = Bigint.erem (Bigint.pow b e) m in
        Bigint.equal naive (Bigint.mod_pow b (bi e) m));
    prop "montgomery matches division-based ladder" ~count:60
      (triple (gen_big_pos ~bits:256 ()) (gen_big_pos ~bits:96 ()) (gen_big_pos ~bits:256 ()))
      (fun (b, e, m0) ->
        (* Reference ladder built on erem (Knuth division), fully
           independent of the Montgomery code path. *)
        let m = Bigint.add (Bigint.mul_int m0 2) (Bigint.of_int 3) in
        let reference =
          let bits = Bigint.num_bits e in
          let acc = ref Bigint.one in
          for i = bits - 1 downto 0 do
            acc := Bigint.mod_mul !acc !acc m;
            if Bigint.testbit e i then acc := Bigint.mod_mul !acc b m
          done;
          !acc
        in
        Bigint.equal reference (Bigint.mod_pow b e m));
    prop "mod_pow odd modulus homomorphism" ~count:60
      (triple (gen_big_pos ~bits:256 ()) (pair (gen_big_pos ~bits:64 ()) (gen_big_pos ~bits:64 ())) (gen_big_pos ~bits:256 ()))
      (fun (b, (e1, e2), m0) ->
        (* Force an odd modulus > 1 to pin the Montgomery path. *)
        let m = Bigint.add (Bigint.mul_int m0 2) (Bigint.of_int 3) in
        let lhs = Bigint.mod_pow b (Bigint.add e1 e2) m in
        let rhs = Bigint.mod_mul (Bigint.mod_pow b e1 m) (Bigint.mod_pow b e2 m) m in
        Bigint.equal lhs rhs);
    prop "mod_inv correct" ~count:200
      (pair (gen_big ~bits:256 ()) (gen_big_pos_nonzero ~bits:256 ()))
      (fun (a, m) ->
        let m = Bigint.add m Bigint.two in
        match Bigint.mod_inv a m with
        | None -> not (Bigint.equal (Bigint.gcd a m) Bigint.one)
        | Some inv -> Bigint.equal (Bigint.mod_mul a inv m) Bigint.one);
    prop "egcd bezout" (pair (gen_big ()) (gen_big ())) (fun (a, b) ->
        let g, x, y = Bigint.egcd a b in
        Bigint.equal g (Bigint.add (Bigint.mul a x) (Bigint.mul b y))
        && Bigint.equal g (Bigint.gcd a b));
    prop "compare antisymmetric" (pair (gen_big ()) (gen_big ())) (fun (a, b) ->
        Bigint.compare a b = -Bigint.compare b a);
    prop "num_bits bound" (gen_big_pos_nonzero ()) (fun x ->
        let n = Bigint.num_bits x in
        Bigint.compare x (Bigint.pow Bigint.two n) < 0
        && Bigint.compare x (Bigint.pow Bigint.two (n - 1)) >= 0);
    prop "erem in range" (pair (gen_big ()) (gen_big_pos_nonzero ())) (fun (a, m) ->
        let r = Bigint.erem a m in
        Bigint.sign r >= 0 && Bigint.compare r m < 0
        && Bigint.is_zero (Bigint.erem (Bigint.sub a r) m));
    (* Operand sizes well past the Karatsuba threshold (32 limbs ≈ 1000
       bits): division is an independent code path, so quotient/remainder
       recovery cross-checks the split-and-recombine multiply. *)
    prop "karatsuba mul inverts by divmod" ~count:30
      (pair (gen_big ~bits:40_000 ()) (gen_big_pos_nonzero ~bits:20_000 ()))
      (fun (a, b) ->
        (* a*b is an exact multiple of b, so floor division recovers a
           and a zero remainder for either sign of a. *)
        let q, r = Bigint.divmod (Bigint.mul a b) b in
        Bigint.equal q a && Bigint.is_zero r);
    prop "karatsuba distributes at large sizes" ~count:20
      (triple (gen_big ~bits:30_000 ()) (gen_big ~bits:30_000 ()) (gen_big ~bits:30_000 ()))
      (fun (a, b, c) ->
        Bigint.equal (Bigint.mul a (Bigint.add b c)) (Bigint.add (Bigint.mul a b) (Bigint.mul a c)));
    prop "fixed_base pow matches mod_pow" ~count:30
      (triple (gen_big_pos ~bits:256 ()) (gen_big_pos ~bits:2048 ()) (gen_big_pos ~bits:256 ()))
      (fun (b, e, m0) ->
        (* Odd modulus > 1; a small chunk makes the exponent span many
           anchors so the split/recombine is actually exercised. *)
        let m = Bigint.add (Bigint.mul_int m0 2) (Bigint.of_int 3) in
        let fb = Bigint.Fixed_base.create ~chunk_bits:96 ~modulus:m b in
        Bigint.equal (Bigint.Fixed_base.pow fb e) (Bigint.mod_pow b e m)
        && Bigint.equal (Bigint.Fixed_base.pow fb Bigint.zero) (Bigint.erem Bigint.one m)
        && Bigint.equal (Bigint.Fixed_base.pow fb Bigint.one) (Bigint.erem b m))
  ]

let () =
  Alcotest.run "bigint"
    [ ( "unit",
        [ Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "bytes" `Quick test_bytes;
          Alcotest.test_case "arith basics" `Quick test_arith_basics;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "divmod large" `Quick test_divmod_large;
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "mod_pow" `Quick test_mod_pow;
          Alcotest.test_case "mod_inv" `Quick test_mod_inv;
          Alcotest.test_case "knuth add-back" `Quick test_knuth_add_back;
          Alcotest.test_case "error paths" `Quick test_error_paths;
          Alcotest.test_case "mod_pow edge bases" `Quick test_mod_pow_zero_base;
          Alcotest.test_case "gcd" `Quick test_gcd ] );
      ("properties", props) ]
