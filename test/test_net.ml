(* The networked service, bottom-up: frame hygiene under corruption
   (qcheck), the typed codecs, the backoff schedule, idempotent
   settlement, and loopback end-to-end runs — concurrent clients against
   one server, byte-identical to the in-process protocol, surviving a
   server kill/restart mid-load and refusing a tampering cloud. *)

module Wire = Net.Wire

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let q = Slicer_types.query
let sorted = List.sort String.compare

let check_ids msg expected actual =
  Alcotest.(check (list string)) msg (sorted expected) (sorted actual)

let width = 6

let db =
  let rng = Drbg.create ~seed:"net-db" in
  Gen.uniform_records ~rng ~width 40

(* The served system and its in-process mirror: [Protocol.setup] is
   deterministic per seed, so these are twins — same keys, same index,
   same chain genesis. The mirror answers every query the way the
   server must. *)
let service_system =
  lazy
    (let s = Protocol.setup ~width ~seed:"net-twin" db in
     Cloud.precompute_witnesses (Protocol.cloud s);
     s)

let mirror_system =
  lazy
    (let s = Protocol.setup ~width ~seed:"net-twin" db in
     Cloud.precompute_witnesses (Protocol.cloud s);
     s)

let service = lazy (Net.Service.of_protocol (Lazy.force service_system))

let server =
  lazy
    (let srv = Net.Server.start (Net.Service.handle (Lazy.force service)) in
     at_exit (fun () -> Net.Server.stop srv);
     srv)

let endpoint () = Net.Server.endpoint (Lazy.force server)

let client ?(attempts = 5) ?(backoff = 0.02) name =
  let config =
    { Net.Client.default_config with
      max_attempts = attempts;
      backoff_base = backoff;
      request_timeout = 20. }
  in
  match Net.Client.connect ~config ~name (endpoint ()) with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect %s: %s" name (Net.Client.error_to_string e)

(* --- frame layer ----------------------------------------------------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun (tag, payload) ->
      let frame = Net.Frame.encode ~tag payload in
      match Net.Frame.decode frame with
      | Ok (msg, consumed) ->
        Alcotest.(check int) "tag" tag msg.Net.Frame.tag;
        Alcotest.(check string) "payload" payload msg.Net.Frame.payload;
        Alcotest.(check int) "consumed" (String.length frame) consumed
      | Error e -> Alcotest.failf "decode: %s" (Net.Frame.error_to_string e))
    [ (0, ""); (1, "x"); (255, String.make 1000 '\xff'); (7, "hello \x00 world") ]

let test_frame_stream () =
  let frames = [ (1, "first"); (2, ""); (3, "third message") ] in
  let stream = String.concat "" (List.map (fun (tag, p) -> Net.Frame.encode ~tag p) frames) in
  let rec go off acc =
    if off >= String.length stream then List.rev acc
    else
      match Net.Frame.decode ~off stream with
      | Ok (msg, off') -> go off' ((msg.Net.Frame.tag, msg.Net.Frame.payload) :: acc)
      | Error e -> Alcotest.failf "stream decode at %d: %s" off (Net.Frame.error_to_string e)
  in
  Alcotest.(check (list (pair int string))) "all frames" frames (go 0 [])

let test_frame_limits () =
  Alcotest.(check bool) "tag range" true
    (try ignore (Net.Frame.encode ~tag:256 "x"); false with Invalid_argument _ -> true);
  (* A declared length beyond the reader's limit is refused before any
     payload is buffered. *)
  let frame = Net.Frame.encode ~tag:1 (String.make 4096 'a') in
  (match Net.Frame.decode ~max_payload:64 frame with
   | Error (Net.Frame.Oversized n) -> Alcotest.(check int) "declared length" 4096 n
   | Ok _ -> Alcotest.fail "oversized frame accepted"
   | Error e -> Alcotest.failf "expected Oversized, got %s" (Net.Frame.error_to_string e))

let test_frame_length_lies () =
  let frame = Bytes.of_string (Net.Frame.encode ~tag:1 "honest payload") in
  (* Lie upward: the declared length runs past the available bytes. *)
  Bytes.set frame 9 (Char.chr 0xff);
  (match Net.Frame.decode (Bytes.to_string frame) with
   | Error (Net.Frame.Truncated | Net.Frame.Bad_checksum | Net.Frame.Oversized _) -> ()
   | Ok _ -> Alcotest.fail "length-lying frame parsed"
   | Error e -> Alcotest.failf "unexpected: %s" (Net.Frame.error_to_string e));
  (* Lie downward: the checksum (computed over the true length) fails. *)
  let frame = Bytes.of_string (Net.Frame.encode ~tag:1 "honest payload") in
  Bytes.set frame 9 '\x02';
  (match Net.Frame.decode (Bytes.to_string frame) with
   | Error Net.Frame.Bad_checksum -> ()
   | Ok _ -> Alcotest.fail "short-length frame parsed"
   | Error e -> Alcotest.failf "expected Bad_checksum, got %s" (Net.Frame.error_to_string e))

let sample_payloads =
  [ ""; "a"; "some payload bytes"; String.make 300 '\x17'; "trailing \x00\x01\x02" ]

let flip_bit s bit =
  let b = Bytes.of_string s in
  let i = bit / 8 mod Bytes.length b in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

let frame_corruption_props =
  [ prop "any single bit flip is rejected" ~count:400
      QCheck2.Gen.(pair (int_range 0 4) nat)
      (fun (which, bit) ->
        let frame = Net.Frame.encode ~tag:1 (List.nth sample_payloads which) in
        match Net.Frame.decode (flip_bit frame bit) with
        | Error _ -> true
        | Ok (msg, _) ->
          (* The flipped frame may only parse if the flip never landed
             (impossible: we always flip one bit). *)
          QCheck2.Test.fail_reportf "parsed tag %d, %d payload bytes" msg.Net.Frame.tag
            (String.length msg.Net.Frame.payload));
    prop "any strict prefix is rejected" ~count:200
      QCheck2.Gen.(pair (int_range 0 4) nat)
      (fun (which, cut) ->
        let frame = Net.Frame.encode ~tag:1 (List.nth sample_payloads which) in
        let cut = cut mod String.length frame in
        match Net.Frame.decode (String.sub frame 0 cut) with
        | Error (Net.Frame.Truncated | Net.Frame.Bad_magic) -> true
        | Error e -> QCheck2.Test.fail_reportf "unexpected: %s" (Net.Frame.error_to_string e)
        | Ok _ -> QCheck2.Test.fail_reportf "truncated frame parsed");
    prop "garbage never parses, never raises" ~count:300
      QCheck2.Gen.(string_size (int_range 0 64))
      (fun s ->
        match Net.Frame.decode s with
        | Error _ -> true
        | Ok _ -> String.length s >= Net.Frame.header_bytes && String.sub s 0 4 = "SLNP") ]

(* --- wire codecs ------------------------------------------------------------ *)

(* Real protocol artifacts to push through the codecs. *)
let sample_tokens =
  lazy
    (let m = Lazy.force mirror_system in
     User.gen_tokens ~rng:(Protocol.rng m) (Protocol.user m) (q 32 Slicer_types.Lt))

let sample_requests =
  lazy
    (* A dedicated little owner, so building sample shipments never
       perturbs the mirror system the e2e answers come from. *)
    (let rng = Drbg.create ~seed:"wire-samples" in
     let keys = Keys.generate ~tdp_bits:512 ~rng () in
     let acc_params = Rsa_acc.setup ~rng ~bits:512 () in
     let owner = Owner.create ~width ~rng ~acc_params ~keys () in
     let shipment = Owner.build owner (Gen.uniform_records ~rng ~width 5) in
     [ Wire.Hello { client = "alice"; proto = Wire.proto_version };
       Wire.Search
         { client = "alice"; request_id = "alice#7"; batched = true;
           tokens = Lazy.force sample_tokens; trace = None };
       Wire.Build
         { client = "owner"; request_id = "owner#1";
           width;
           payment = 1000;
           acc = Owner.acc_params owner;
           tdp_n = keys.Keys.tdp_public.Rsa_tdp.pn;
           tdp_e = keys.Keys.tdp_public.Rsa_tdp.e;
           user_k = (Keys.for_user keys).Keys.u_k;
           user_k_r = (Keys.for_user keys).Keys.u_k_r;
           shipment;
           trapdoor = Owner.export_trapdoor_state owner; trace = None };
       Wire.Insert
         { client = "owner"; request_id = "owner#2";
           shipment; trapdoor = Owner.export_trapdoor_state owner; trace = None };
       Wire.Ping;
       Wire.Stats ])

let trapdoor_list (t : Owner.trapdoor_state) =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])

let token_blobs ts = List.map Slicer_types.token_bytes ts

let check_request_roundtrip (req : Wire.request) =
  match Wire.decode_request (Wire.encode_request req) with
  | None -> Alcotest.fail "request did not round-trip"
  | Some req' ->
    (match (req, req') with
     | Wire.Hello a, Wire.Hello b -> Alcotest.(check string) "client" a.client b.client
     | Wire.Ping, Wire.Ping -> ()
     | Wire.Stats, Wire.Stats -> ()
     | Wire.Search a, Wire.Search b ->
       Alcotest.(check string) "client" a.client b.client;
       Alcotest.(check string) "request id" a.request_id b.request_id;
       Alcotest.(check bool) "batched" a.batched b.batched;
       Alcotest.(check (list string)) "tokens" (token_blobs a.tokens) (token_blobs b.tokens)
     | Wire.Build a, Wire.Build b ->
       Alcotest.(check string) "client" a.client b.client;
       Alcotest.(check string) "request id" a.request_id b.request_id;
       Alcotest.(check int) "width" a.width b.width;
       Alcotest.(check int) "payment" a.payment b.payment;
       Alcotest.(check bool) "acc modulus" true
         (Bigint.equal a.acc.Rsa_acc.modulus b.acc.Rsa_acc.modulus);
       Alcotest.(check bool) "tdp n" true (Bigint.equal a.tdp_n b.tdp_n);
       Alcotest.(check string) "user k" a.user_k b.user_k;
       Alcotest.(check bool) "shipment ac" true
         (Bigint.equal a.shipment.Owner.sh_ac b.shipment.Owner.sh_ac);
       Alcotest.(check int) "shipment entries" (List.length a.shipment.Owner.sh_entries)
         (List.length b.shipment.Owner.sh_entries);
       Alcotest.(check bool) "trapdoor state" true
         (trapdoor_list a.trapdoor = trapdoor_list b.trapdoor)
     | Wire.Insert a, Wire.Insert b ->
       Alcotest.(check string) "client" a.client b.client;
       Alcotest.(check string) "request id" a.request_id b.request_id;
       Alcotest.(check bool) "shipment ac" true
         (Bigint.equal a.shipment.Owner.sh_ac b.shipment.Owner.sh_ac);
       Alcotest.(check bool) "trapdoor state" true
         (trapdoor_list a.trapdoor = trapdoor_list b.trapdoor)
     | _ -> Alcotest.fail "request decoded to a different constructor")

let test_request_roundtrips () = List.iter check_request_roundtrip (Lazy.force sample_requests)

(* A genuine search reply, produced by the service itself. *)
let sample_found =
  lazy
    (let svc = Lazy.force service in
     match Net.Service.handle svc (Wire.Hello { client = "codec-probe"; proto = Wire.proto_version }) with
     | Wire.Welcome _ ->
       (match
          Net.Service.handle svc
            (Wire.Search
               { client = "codec-probe"; request_id = "codec-probe#1"; batched = false;
                 tokens = Lazy.force sample_tokens; trace = None })
        with
        | Wire.Found _ as r -> r
        | r -> Alcotest.failf "expected Found, got %s" (String.sub (Wire.encode_response r) 0 8))
     | _ -> Alcotest.fail "hello refused")

let test_response_roundtrips () =
  (* Found: claims, receipt and Ac all survive; canonical bytes agree. *)
  let found = Lazy.force sample_found in
  let bytes = Wire.encode_response found in
  (match Wire.decode_response bytes with
   | Some (Wire.Found r) ->
     Alcotest.(check string) "request id" "codec-probe#1" r.Wire.sr_request_id;
     Alcotest.(check string) "re-encoding is canonical" bytes
       (Wire.encode_response (Wire.Found r));
     (match r.Wire.sr_receipt.Vm.r_output with
      | Ok [ "paid" ] -> ()
      | _ -> Alcotest.fail "settlement output lost in transit")
   | _ -> Alcotest.fail "Found did not round-trip");
  (* The simple constructors. *)
  List.iter
    (fun resp ->
      match Wire.decode_response (Wire.encode_response resp) with
      | Some resp' -> Alcotest.(check bool) "simple response" true (resp = resp')
      | None -> Alcotest.fail "simple response did not round-trip")
    [ Wire.Pong;
      Wire.Accepted { generation = 3 };
      Wire.Stats_reply { st_json = "{\"counters\": {}}"; st_text = "# TYPE x counter\nx 1\n" };
      Wire.Stats_reply { st_json = ""; st_text = "" };
      Wire.Refused { code = Wire.Busy; detail = "over capacity" };
      Wire.Refused { code = Wire.Bad_request; detail = "" };
      Wire.Refused { code = Wire.Not_ready; detail = "no database" };
      Wire.Refused { code = Wire.Already_built; detail = "x" };
      Wire.Refused { code = Wire.Unknown_user; detail = "who" };
      Wire.Refused { code = Wire.Internal; detail = "boom" } ]

let codec_corruption_props =
  (* Every codec's encoding rides inside a frame; flipping any bit of
     that frame — or truncating it, or lying about its length — must
     yield a decode error, never an exception and never a parse. *)
  let framed =
    lazy
      (Wire.encode_response (Lazy.force sample_found)
       :: List.map Wire.encode_request (Lazy.force sample_requests)
       |> List.map (fun payload -> Net.Frame.encode ~tag:Wire.request_tag payload))
  in
  [ prop "framed messages: bit flips rejected" ~count:300
      QCheck2.Gen.(pair (int_range 0 6) nat)
      (fun (which, bit) ->
        let frame = List.nth (Lazy.force framed) which in
        Result.is_error (Net.Frame.decode (flip_bit frame bit)));
    prop "framed messages: truncation rejected" ~count:150
      QCheck2.Gen.(pair (int_range 0 6) nat)
      (fun (which, cut) ->
        let frame = List.nth (Lazy.force framed) which in
        Result.is_error (Net.Frame.decode (String.sub frame 0 (cut mod String.length frame))));
    prop "framed messages: length lies rejected" ~count:150
      QCheck2.Gen.(pair (int_range 0 6) (int_range 6 9))
      (fun (which, len_byte) ->
        let frame = Bytes.of_string (List.nth (Lazy.force framed) which) in
        Bytes.set frame len_byte
          (Char.chr (Char.code (Bytes.get frame len_byte) lxor 0xff));
        Result.is_error (Net.Frame.decode (Bytes.to_string frame)));
    (* Below the frame (no checksum): decoders must never raise, on any
       input, and mutations of valid encodings must decode all-or-nothing. *)
    prop "bare codecs never raise" ~count:400
      QCheck2.Gen.(pair (int_range 0 7) (pair nat (string_size (int_range 0 80))))
      (fun (which, (bit, garbage)) ->
        let reqs = Lazy.force sample_requests in
        let subject =
          if which < List.length reqs then
            flip_bit (Wire.encode_request (List.nth reqs which)) bit
          else if which = 6 then flip_bit (Wire.encode_response (Lazy.force sample_found)) bit
          else garbage
        in
        ignore (Wire.decode_request subject);
        ignore (Wire.decode_response subject);
        ignore (Persist.tokens_of_bytes subject);
        ignore (Persist.claims_of_bytes subject);
        ignore (Persist.receipt_of_bytes subject);
        ignore (Persist.query_of_bytes subject);
        true) ]

let test_persist_message_codecs () =
  (* The satellite codecs on their own: query, tokens, claims, receipt. *)
  List.iter
    (fun query ->
      match Persist.query_of_bytes (Persist.query_to_bytes query) with
      | Some query' -> Alcotest.(check bool) "query" true (query = query')
      | None -> Alcotest.fail "query did not round-trip")
    [ q 0 Slicer_types.Eq; q 63 Slicer_types.Gt; q ~attr:"dose" 17 Slicer_types.Lt ];
  let tokens = Lazy.force sample_tokens in
  (match Persist.tokens_of_bytes (Persist.tokens_to_bytes tokens) with
   | Some tokens' ->
     Alcotest.(check (list string)) "tokens" (token_blobs tokens) (token_blobs tokens')
   | None -> Alcotest.fail "tokens did not round-trip");
  let m = Lazy.force mirror_system in
  let claims = Cloud.search (Protocol.cloud m) tokens in
  (match Persist.claims_of_bytes (Persist.claims_to_bytes claims) with
   | Some claims' ->
     Alcotest.(check string) "claims" (Slicer_contract.encode_claims claims)
       (Slicer_contract.encode_claims claims')
   | None -> Alcotest.fail "claims did not round-trip");
  List.iter
    (fun (output : (string list, string) result) ->
      let receipt =
        { Vm.r_txn_hash = "\x01\xffhash"; r_gas_used = 12345;
          r_events = [ "Settled(paid)"; "" ]; r_output = output }
      in
      match Persist.receipt_of_bytes (Persist.receipt_to_bytes receipt) with
      | Some r -> Alcotest.(check bool) "receipt" true (r = receipt)
      | None -> Alcotest.fail "receipt did not round-trip")
    [ Ok [ "paid" ]; Ok []; Error "no pending request" ]

(* --- backoff schedule ------------------------------------------------------- *)

let test_backoff_schedule () =
  let cfg =
    { Net.Client.default_config with backoff_base = 0.1; backoff_max = 1.0; jitter = 0.5 }
  in
  (* Midpoint of the jitter band doubles cleanly, then caps. *)
  List.iter
    (fun (attempt, expected) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "attempt %d" attempt)
        expected
        (Net.Client.backoff_delay cfg ~rand:0.5 ~attempt))
    [ (1, 0.1); (2, 0.2); (3, 0.4); (4, 0.8); (5, 1.0); (9, 1.0) ]

let backoff_props =
  [ prop "delay stays inside the jitter band" ~count:300
      QCheck2.Gen.(pair (int_range 1 12) (float_bound_exclusive 1.0))
      (fun (attempt, rand) ->
        let cfg = Net.Client.default_config in
        let d = Net.Client.backoff_delay cfg ~rand ~attempt in
        let nominal =
          Float.min cfg.Net.Client.backoff_max
            (cfg.Net.Client.backoff_base *. (2. ** float_of_int (attempt - 1)))
        in
        d >= nominal *. 0.75 -. 1e-9 && d <= nominal *. 1.25 +. 1e-9) ]

(* --- service semantics (transport-free) ------------------------------------- *)

let test_idempotent_settlement () =
  let svc = Lazy.force service in
  let m = Lazy.force mirror_system in
  (match Net.Service.handle svc (Wire.Hello { client = "idem"; proto = Wire.proto_version }) with
   | Wire.Welcome _ -> ()
   | _ -> Alcotest.fail "hello refused");
  let tokens = User.gen_tokens ~rng:(Protocol.rng m) (Protocol.user m) (q 20 Slicer_types.Gt) in
  let req =
    Wire.Search { client = "idem"; request_id = "idem#1"; batched = false; tokens; trace = None }
  in
  let settled_before = Net.Service.searches_settled svc in
  let first = Net.Service.handle svc req in
  let again = Net.Service.handle svc req in
  (match first with
   | Wire.Found r ->
     Alcotest.(check string) "id echoed" "idem#1" r.Wire.sr_request_id;
     (match r.Wire.sr_receipt.Vm.r_output with
      | Ok [ "paid" ] -> ()
      | _ -> Alcotest.fail "first settlement not paid")
   | _ -> Alcotest.fail "search refused");
  (* The retry replays the cached settlement: identical bytes, and the
     escrow was only touched once. *)
  Alcotest.(check string) "replayed reply is byte-identical"
    (Wire.encode_response first) (Wire.encode_response again);
  Alcotest.(check int) "settled exactly once" (settled_before + 1)
    (Net.Service.searches_settled svc)

let test_replay_confined_to_client () =
  let svc = Lazy.force service in
  let m = Lazy.force mirror_system in
  (match Net.Service.handle svc (Wire.Hello { client = "replay-a"; proto = Wire.proto_version }) with
   | Wire.Welcome _ -> ()
   | _ -> Alcotest.fail "hello refused");
  let tokens =
    User.gen_tokens ~rng:(Protocol.rng m) (Protocol.user m) (q 40 Slicer_types.Lt)
  in
  let search client request_id =
    Net.Service.handle svc (Wire.Search { client; request_id; batched = false; tokens; trace = None })
  in
  (match search "replay-a" "shared#1" with
   | Wire.Found _ -> ()
   | _ -> Alcotest.fail "victim search refused");
  (* An un-helloed stranger replaying the victim's predictable request
     id is turned away before the cache is even consulted. *)
  (match search "replay-mallory" "shared#1" with
   | Wire.Refused { code = Wire.Unknown_user; _ } -> ()
   | Wire.Found _ -> Alcotest.fail "stranger was handed a cached settlement"
   | _ -> Alcotest.fail "unexpected reply to the stranger");
  (* A registered *other* client re-using the id gets its own fresh
     settlement (the cache key includes the client), not the replay. *)
  (match Net.Service.handle svc (Wire.Hello { client = "replay-b"; proto = Wire.proto_version }) with
   | Wire.Welcome _ -> ()
   | _ -> Alcotest.fail "hello refused");
  let settled_before = Net.Service.searches_settled svc in
  (match search "replay-b" "shared#1" with
   | Wire.Found _ -> ()
   | _ -> Alcotest.fail "other client's search refused");
  Alcotest.(check int) "fresh settlement, not a replay" (settled_before + 1)
    (Net.Service.searches_settled svc)

let test_idempotent_build_and_insert () =
  (* A private service bootstrapped over the wire messages alone, so the
     retries here cannot perturb the shared loopback fixtures. *)
  let svc = Net.Service.create () in
  let rng = Drbg.create ~seed:"idem-owner" in
  let keys = Keys.generate ~tdp_bits:512 ~rng () in
  let acc_params = Rsa_acc.setup ~rng ~bits:512 () in
  let owner = Owner.create ~width ~rng ~acc_params ~keys () in
  let records = Gen.uniform_records ~rng ~width 12 in
  let shipment = Owner.build owner records in
  let build_req request_id =
    Wire.Build
      { client = "idem-owner"; request_id; width; payment = 500; acc = acc_params;
        tdp_n = keys.Keys.tdp_public.Rsa_tdp.pn; tdp_e = keys.Keys.tdp_public.Rsa_tdp.e;
        user_k = (Keys.for_user keys).Keys.u_k; user_k_r = (Keys.for_user keys).Keys.u_k_r;
        shipment; trapdoor = Owner.export_trapdoor_state owner; trace = None }
  in
  (match Net.Service.handle svc (build_req "o#1") with
   | Wire.Accepted { generation } -> Alcotest.(check int) "built" 1 generation
   | _ -> Alcotest.fail "build refused");
  (* Lost-reply retry: the same id replays the accept, not Already_built. *)
  (match Net.Service.handle svc (build_req "o#1") with
   | Wire.Accepted { generation } -> Alcotest.(check int) "retry replayed the accept" 1 generation
   | Wire.Refused { code = Wire.Already_built; _ } -> Alcotest.fail "retried Build refused"
   | _ -> Alcotest.fail "unexpected reply to the retried Build");
  (* A genuinely new Build is still refused. *)
  (match Net.Service.handle svc (build_req "o#2") with
   | Wire.Refused { code = Wire.Already_built; _ } -> ()
   | _ -> Alcotest.fail "a second distinct Build was not refused");
  (* Insert applies once; the retry must not re-append the shipment's
     primes or double-bump the generation. *)
  let shipment2 = Owner.insert owner [ Slicer_types.record_of_value "idem-new" 3 ] in
  let insert_req =
    Wire.Insert
      { client = "idem-owner"; request_id = "o#3"; shipment = shipment2;
        trapdoor = Owner.export_trapdoor_state owner; trace = None }
  in
  (match Net.Service.handle svc insert_req with
   | Wire.Accepted { generation } -> Alcotest.(check int) "insert applied" 2 generation
   | _ -> Alcotest.fail "insert refused");
  (match Net.Service.handle svc insert_req with
   | Wire.Accepted { generation } -> Alcotest.(check int) "retry did not re-apply" 2 generation
   | _ -> Alcotest.fail "retried insert refused");
  Alcotest.(check int) "generation bumped exactly once" 2 (Net.Service.generation svc);
  (* Decisive: the cloud's prime multiset still matches the on-chain Ac.
     Had the retry re-applied the shipment, this settlement would be
     refused payment on chain. *)
  match Net.Service.handle svc (Wire.Hello { client = "idem-user"; proto = Wire.proto_version }) with
  | Wire.Welcome p ->
    let user =
      User.create ~keys:p.Wire.pv_user_keys ~width:p.Wire.pv_width p.Wire.pv_trapdoor
    in
    let tokens = User.gen_tokens ~rng user (q 3 Slicer_types.Eq) in
    (match
       Net.Service.handle svc
         (Wire.Search { client = "idem-user"; request_id = "u#1"; batched = false; tokens; trace = None })
     with
     | Wire.Found r ->
       (match r.Wire.sr_receipt.Vm.r_output with
        | Ok [ "paid" ] -> ()
        | _ -> Alcotest.fail "post-retry search was not paid: primes corrupted?")
     | _ -> Alcotest.fail "post-retry search refused")
  | _ -> Alcotest.fail "hello refused"

let test_stats_counters_advance () =
  (* A retried Search through the service moves the Obs counters the
     way the admin endpoint reports: 2 requests, 1 settlement, 1
     idempotent replay. *)
  let svc = Lazy.force service in
  let m = Lazy.force mirror_system in
  (match Net.Service.handle svc (Wire.Hello { client = "stats-user"; proto = Wire.proto_version }) with
   | Wire.Welcome _ -> ()
   | _ -> Alcotest.fail "hello refused");
  let tokens =
    User.gen_tokens ~rng:(Protocol.rng m) (Protocol.user m) (q 12 Slicer_types.Gt)
  in
  let req =
    Wire.Search { client = "stats-user"; request_id = "stats-user#1"; batched = false; tokens; trace = None }
  in
  let requests0 = Obs.counter_value "slicer_net_requests_total" in
  let settled0 = Obs.counter_value "slicer_net_searches_settled_total" in
  let replays0 = Obs.counter_value "slicer_net_idempotent_replays_total" in
  (match Net.Service.handle svc req with
   | Wire.Found _ -> ()
   | _ -> Alcotest.fail "search refused");
  (match Net.Service.handle svc req with
   | Wire.Found _ -> ()
   | _ -> Alcotest.fail "retry refused");
  Alcotest.(check int) "both attempts counted as requests" (requests0 + 2)
    (Obs.counter_value "slicer_net_requests_total");
  Alcotest.(check int) "settled exactly once" (settled0 + 1)
    (Obs.counter_value "slicer_net_searches_settled_total");
  Alcotest.(check int) "the retry counted as a replay" (replays0 + 1)
    (Obs.counter_value "slicer_net_idempotent_replays_total")

let test_service_refusals () =
  let empty = Net.Service.create () in
  (match Net.Service.handle empty (Wire.Hello { client = "early"; proto = Wire.proto_version }) with
   | Wire.Refused { code = Wire.Not_ready; _ } -> ()
   | _ -> Alcotest.fail "hello before Build should be Not_ready");
  let svc = Lazy.force service in
  (match
     Net.Service.handle svc
       (Wire.Search
          { client = "never-registered"; request_id = "n#1"; batched = false;
            tokens = Lazy.force sample_tokens; trace = None })
   with
   | Wire.Refused { code = Wire.Unknown_user; _ } -> ()
   | _ -> Alcotest.fail "search without Hello should be Unknown_user")

(* --- loopback end-to-end ----------------------------------------------------- *)

let e2e_queries =
  [ q 32 Slicer_types.Lt; q 10 Slicer_types.Gt; q 63 Slicer_types.Lt; q 5 Slicer_types.Eq ]

let test_concurrent_clients_match_protocol () =
  ignore (Lazy.force server);
  let m = Lazy.force mirror_system in
  (* The in-process answers, from the twin system. *)
  let expected =
    List.map
      (fun query ->
        let out = Protocol.search m query in
        Alcotest.(check bool) "mirror verified" true out.Protocol.so_verified;
        (query, sorted out.Protocol.so_ids))
      e2e_queries
  in
  let results = Array.make 4 [] in
  let errors = Array.make 4 None in
  let worker i () =
    let c = client (Printf.sprintf "e2e-%d" i) in
    (try
       results.(i) <-
         List.map
           (fun query ->
             match Net.Client.search c query with
             | Ok out ->
               if not out.Protocol.so_verified then errors.(i) <- Some "unverified";
               sorted out.Protocol.so_ids
             | Error e ->
               errors.(i) <- Some (Net.Client.error_to_string e);
               [])
           e2e_queries
     with exn -> errors.(i) <- Some (Printexc.to_string exn));
    Net.Client.close c
  in
  let threads = List.init 4 (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  Array.iteri
    (fun i err ->
      match err with
      | Some e -> Alcotest.failf "client %d: %s" i e
      | None ->
        List.iteri
          (fun j ids ->
            let query, expected_ids = List.nth expected j in
            check_ids
              (Format.asprintf "client %d: %a %d" i Slicer_types.pp_condition
                 query.Slicer_types.q_cond query.Slicer_types.q_value)
              expected_ids ids)
          results.(i))
    errors;
  (* Batched settlement over the wire agrees too. *)
  let c = client "e2e-batched" in
  (match Net.Client.search ~batched:true c (q 32 Slicer_types.Lt) with
   | Ok out ->
     Alcotest.(check bool) "batched verified" true out.Protocol.so_verified;
     check_ids "batched ids" (snd (List.hd expected)) out.Protocol.so_ids
   | Error e -> Alcotest.failf "batched search: %s" (Net.Client.error_to_string e));
  Net.Client.close c

let station_exn () =
  match Net.Service.station (Lazy.force service) with
  | Some st -> st
  | None -> Alcotest.fail "service has no station"

let balance addr =
  Vm.balance (Ledger.state (Station.ledger (station_exn ()))) addr

let test_tampering_server_refused_payment () =
  ignore (Lazy.force server);
  let st = station_exn () in
  let c = client "fair-1" in
  let query = q 32 Slicer_types.Lt in
  let payment = Net.Client.payment c in
  (* Honest first: the fee moves from the user's escrow to the cloud. *)
  let user_before = balance (Net.Client.user_address c) in
  let cloud_before = balance (Station.cloud_addr st) in
  (match Net.Client.search c query with
   | Ok out -> Alcotest.(check bool) "honest verified" true out.Protocol.so_verified
   | Error e -> Alcotest.failf "honest search: %s" (Net.Client.error_to_string e));
  Alcotest.(check int) "user paid" (user_before - payment) (balance (Net.Client.user_address c));
  Alcotest.(check int) "cloud earned" (cloud_before + payment) (balance (Station.cloud_addr st));
  (* Now the server's cloud flips a result byte: the chain refuses
     payment and the client surfaces the rejection. *)
  Cloud.set_behavior (Station.cloud st) Cloud.Tamper_result;
  Fun.protect
    ~finally:(fun () -> Cloud.set_behavior (Station.cloud st) Cloud.Honest)
    (fun () ->
      let user_before = balance (Net.Client.user_address c) in
      let cloud_before = balance (Station.cloud_addr st) in
      match Net.Client.search c query with
      | Ok out ->
        Alcotest.(check bool) "tampered rejected" false out.Protocol.so_verified;
        Alcotest.(check int) "user refunded" user_before (balance (Net.Client.user_address c));
        Alcotest.(check int) "cloud unpaid" cloud_before (balance (Station.cloud_addr st))
      | Error e -> Alcotest.failf "tampered search: %s" (Net.Client.error_to_string e));
  Net.Client.close c

let test_malformed_frames_get_structured_errors () =
  ignore (Lazy.force server);
  let ep = match endpoint () with
    | Net.Server.Tcp (h, p) -> Unix.ADDR_INET (Net.Server.resolve_host h, p)
    | Net.Server.Unix_socket p -> Unix.ADDR_UNIX p
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd ep;
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* A valid frame with an unparseable payload: refused, but the
         connection survives (framing is still synchronized)... *)
      Net.Frame.write fd ~tag:Wire.request_tag "complete gibberish";
      (match Net.Frame.read ~timeout:5. fd with
       | Ok { Net.Frame.payload; _ } ->
         (match Wire.decode_response payload with
          | Some (Wire.Refused { code = Wire.Bad_request; _ }) -> ()
          | _ -> Alcotest.fail "expected a Bad_request refusal")
       | Error e -> Alcotest.failf "no reply to bad payload: %s" (Net.Frame.error_to_string e));
      (* ...and the very same connection still answers a valid Ping. *)
      Net.Frame.write fd ~tag:Wire.request_tag (Wire.encode_request Wire.Ping);
      (match Net.Frame.read ~timeout:5. fd with
       | Ok { Net.Frame.payload; _ } ->
         (match Wire.decode_response payload with
          | Some Wire.Pong -> ()
          | _ -> Alcotest.fail "expected Pong after recovery")
       | Error e -> Alcotest.failf "no pong: %s" (Net.Frame.error_to_string e));
      (* Raw garbage that is not a frame at all: structured refusal,
         then the server closes the unsyncable stream. *)
      ignore (Unix.write_substring fd "this is not a frame at all...." 0 30);
      (match Net.Frame.read ~timeout:5. fd with
       | Ok { Net.Frame.payload; _ } ->
         (match Wire.decode_response payload with
          | Some (Wire.Refused { code = Wire.Bad_request; _ }) -> ()
          | _ -> Alcotest.fail "expected a framing refusal")
       | Error e -> Alcotest.failf "no framing refusal: %s" (Net.Frame.error_to_string e));
      match Net.Frame.read ~timeout:5. fd with
      | Error (Net.Frame.Closed | Net.Frame.Truncated) -> ()
      | Ok _ -> Alcotest.fail "server kept an unsyncable stream open"
      | Error e -> Alcotest.failf "expected close, got %s" (Net.Frame.error_to_string e))

let test_busy_refusal_exhausts () =
  (* A zero-capacity server refuses every request with Busy; the client
     retries with backoff and finally reports exhaustion. *)
  let config = { Net.Server.default_config with max_inflight = 0 } in
  let srv = Net.Server.start ~config (Net.Service.handle (Lazy.force service)) in
  Fun.protect
    ~finally:(fun () -> Net.Server.stop srv)
    (fun () ->
      let ccfg =
        { Net.Client.default_config with max_attempts = 3; backoff_base = 0.01 }
      in
      match Net.Client.connect ~config:ccfg ~name:"busy-probe" ~provision:false
              (Net.Server.endpoint srv)
      with
      | Error e -> Alcotest.failf "connect: %s" (Net.Client.error_to_string e)
      | Ok c ->
        (match Net.Client.ping c with
         | Error (Net.Client.Exhausted { attempts; _ }) ->
           Alcotest.(check int) "used every attempt" 3 attempts
         | Error e -> Alcotest.failf "expected exhaustion, got %s" (Net.Client.error_to_string e)
         | Ok _ -> Alcotest.fail "zero-capacity server answered");
        Net.Client.close c)

let test_kill_restart_mid_load () =
  (* Four clients under sustained load; the server dies mid-flight and
     comes back on the same port with the same service state. Every
     search must eventually succeed, verified, with oracle-correct ids. *)
  let small_db = List.filteri (fun i _ -> i < 25) db in
  let system = Protocol.setup ~width ~seed:"net-restart" small_db in
  Cloud.precompute_witnesses (Protocol.cloud system);
  let svc = Net.Service.of_protocol system in
  let listener = Net.Server.bind_endpoint (Net.Server.Tcp ("127.0.0.1", 0)) in
  let port = Net.Server.bound_port listener in
  let config =
    { Net.Server.default_config with endpoint = Net.Server.Tcp ("127.0.0.1", port) }
  in
  let srv = ref (Net.Server.start ~config ~listener (Net.Service.handle svc)) in
  let queries = [ q 32 Slicer_types.Lt; q 10 Slicer_types.Gt; q 50 Slicer_types.Lt ] in
  let expected = List.map (fun query -> Slicer_types.reference_search small_db query) queries in
  let failures = Array.make 4 None in
  let worker i () =
    let ccfg =
      { Net.Client.default_config with
        max_attempts = 15; backoff_base = 0.05; backoff_max = 0.4; request_timeout = 20. }
    in
    match Net.Client.connect ~config:ccfg ~name:(Printf.sprintf "restart-%d" i)
            (Net.Server.Tcp ("127.0.0.1", port))
    with
    | Error e -> failures.(i) <- Some ("connect: " ^ Net.Client.error_to_string e)
    | Ok c ->
      List.iteri
        (fun round _ ->
          List.iteri
            (fun j query ->
              match Net.Client.search c query with
              | Ok out ->
                if not out.Protocol.so_verified then
                  failures.(i) <- Some (Printf.sprintf "round %d unverified" round)
                else if sorted out.Protocol.so_ids <> sorted (List.nth expected j) then
                  failures.(i) <- Some (Printf.sprintf "round %d wrong ids" round)
              | Error e ->
                failures.(i) <-
                  Some (Printf.sprintf "round %d: %s" round (Net.Client.error_to_string e)))
            queries)
        [ (); (); () ];
      Net.Client.close c
  in
  let threads = List.init 4 (fun i -> Thread.create (worker i) ()) in
  (* Kill the server mid-load, hold it down briefly, then restart it on
     the same port with the same (stateful) service. *)
  Thread.delay 0.35;
  Net.Server.stop !srv;
  Thread.delay 0.25;
  let rec rebind tries =
    match Net.Server.bind_endpoint (Net.Server.Tcp ("127.0.0.1", port)) with
    | l -> l
    | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) when tries > 0 ->
      Thread.delay 0.2;
      rebind (tries - 1)
  in
  let listener2 = rebind 20 in
  srv := Net.Server.start ~config ~listener:listener2 (Net.Service.handle svc);
  List.iter Thread.join threads;
  Net.Server.stop !srv;
  Array.iteri
    (fun i f -> match f with
       | Some msg -> Alcotest.failf "client %d: %s" i msg
       | None -> ())
    failures;
  Alcotest.(check bool) "service state survived the restart" true
    (Net.Service.searches_settled svc >= 12)

let test_build_and_insert_over_the_wire () =
  (* An owner bootstraps an *empty* server entirely over the wire, then
     a user provisions against it and searches. *)
  let svc = Net.Service.create () in
  let srv = Net.Server.start (Net.Service.handle svc) in
  Fun.protect
    ~finally:(fun () -> Net.Server.stop srv)
    (fun () ->
      let rng = Drbg.create ~seed:"wire-owner" in
      let keys = Keys.generate ~tdp_bits:512 ~rng () in
      let acc_params = Rsa_acc.setup ~rng ~bits:512 () in
      let owner = Owner.create ~width ~rng ~acc_params ~keys () in
      let records = Gen.uniform_records ~rng ~width 15 in
      let shipment = Owner.build owner records in
      let ep = Net.Server.endpoint srv in
      (match Net.Client.connect ~name:"wire-owner" ~provision:false ep with
       | Error e -> Alcotest.failf "owner connect: %s" (Net.Client.error_to_string e)
       | Ok oc ->
         (match
            Net.Client.build oc ~width ~payment:500 ~acc:acc_params
              ~tdp_public:keys.Keys.tdp_public ~user_keys:(Keys.for_user keys) ~shipment
              ~trapdoor:(Owner.export_trapdoor_state owner)
          with
          | Ok generation -> Alcotest.(check int) "built at generation 1" 1 generation
          | Error e -> Alcotest.failf "build: %s" (Net.Client.error_to_string e));
         (* A second Build must be refused: the database exists now. *)
         (match
            Net.Client.build oc ~width ~payment:500 ~acc:acc_params
              ~tdp_public:keys.Keys.tdp_public ~user_keys:(Keys.for_user keys) ~shipment
              ~trapdoor:(Owner.export_trapdoor_state owner)
          with
          | Error (Net.Client.Refused (Wire.Already_built, _)) -> ()
          | Ok _ -> Alcotest.fail "double Build accepted"
          | Error e -> Alcotest.failf "double build: %s" (Net.Client.error_to_string e));
         (* The user side: provision over the wire, search, verify. *)
         (match Net.Client.connect ~name:"wire-user" ep with
          | Error e -> Alcotest.failf "user connect: %s" (Net.Client.error_to_string e)
          | Ok uc ->
            let query = q 30 Slicer_types.Lt in
            (match Net.Client.search uc query with
             | Ok out ->
               Alcotest.(check bool) "verified" true out.Protocol.so_verified;
               check_ids "wire-built ids" (Slicer_types.reference_search records query)
                 out.Protocol.so_ids
             | Error e -> Alcotest.failf "search: %s" (Net.Client.error_to_string e));
            (* Insert over the wire; a refreshed user sees the new record. *)
            let fresh = Slicer_types.record_of_value "net-new" 3 in
            let shipment2 = Owner.insert owner [ fresh ] in
            (match
               Net.Client.insert oc ~shipment:shipment2
                 ~trapdoor:(Owner.export_trapdoor_state owner)
             with
             | Ok generation -> Alcotest.(check int) "generation bumped" 2 generation
             | Error e -> Alcotest.failf "insert: %s" (Net.Client.error_to_string e));
            (match Net.Client.refresh uc with
             | Ok () -> ()
             | Error e -> Alcotest.failf "refresh: %s" (Net.Client.error_to_string e));
            Alcotest.(check int) "client saw the new generation" 2 (Net.Client.generation uc);
            (match Net.Client.search uc (q 3 Slicer_types.Eq) with
             | Ok out ->
               Alcotest.(check bool) "verified after insert" true out.Protocol.so_verified;
               Alcotest.(check bool) "insert visible over the wire" true
                 (List.mem "net-new" out.Protocol.so_ids)
             | Error e -> Alcotest.failf "post-insert search: %s" (Net.Client.error_to_string e));
            Net.Client.close uc);
         Net.Client.close oc))

let test_read_timeout_kicks_idlers () =
  let config = { Net.Server.default_config with read_timeout = 0.3 } in
  let srv = Net.Server.start ~config (Net.Service.handle (Lazy.force service)) in
  Fun.protect
    ~finally:(fun () -> Net.Server.stop srv)
    (fun () ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (match Net.Server.endpoint srv with
       | Net.Server.Tcp (h, p) -> Unix.connect fd (Unix.ADDR_INET (Net.Server.resolve_host h, p))
       | Net.Server.Unix_socket p -> Unix.connect fd (Unix.ADDR_UNIX p));
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Say nothing; the server must hang up on us. *)
          match Net.Frame.read ~timeout:5. fd with
          | Error Net.Frame.Closed -> ()
          | Ok _ -> Alcotest.fail "idle connection answered?"
          | Error e -> Alcotest.failf "expected server hangup, got %s" (Net.Frame.error_to_string e)))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_stats_over_the_wire () =
  (* The admin endpoint end to end: an unprovisioned client scrapes the
     live server and gets back both encodings of the same registry. *)
  ignore (Lazy.force server);
  match Net.Client.connect ~name:"stats-scrape" ~provision:false (endpoint ()) with
  | Error e -> Alcotest.failf "connect: %s" (Net.Client.error_to_string e)
  | Ok c ->
    let r = Net.Client.stats c in
    Net.Client.close c;
    (match r with
     | Error e -> Alcotest.failf "stats: %s" (Net.Client.error_to_string e)
     | Ok (st_json, st_text) ->
       Alcotest.(check bool) "prometheus text names the settled counter" true
         (contains st_text "slicer_net_searches_settled_total");
       Alcotest.(check bool) "frame traffic is visible" true
         (contains st_text "slicer_net_bytes_in_total");
       Alcotest.(check bool) "json is a snapshot object" true
         (String.length st_json > 0 && st_json.[0] = '{' && contains st_json "\"histograms\"");
       (* The scrape itself rode the counted transport: a second scrape
          must observe strictly more inbound bytes. *)
       (match Net.Client.connect ~name:"stats-scrape-2" ~provision:false (endpoint ()) with
        | Error e -> Alcotest.failf "reconnect: %s" (Net.Client.error_to_string e)
        | Ok c2 ->
          let r2 = Net.Client.stats c2 in
          Net.Client.close c2;
          (match r2 with
           | Error e -> Alcotest.failf "second stats: %s" (Net.Client.error_to_string e)
           | Ok (_, st_text2) ->
             let v text =
               String.split_on_char '\n' text
               |> List.find_map (fun line ->
                      match String.split_on_char ' ' line with
                      | [ n; x ] when n = "slicer_net_bytes_in_total" -> int_of_string_opt x
                      | _ -> None)
               |> Option.value ~default:0
             in
             Alcotest.(check bool) "bytes_in advanced between scrapes" true
               (v st_text2 > v st_text && v st_text > 0))))

(* --- event loop: incremental decoding, pipelining, backpressure ------------ *)

let test_decoder_byte_at_a_time () =
  (* Feeding a frame stream one byte at a time yields exactly the frames
     the pure decoder sees, and the views alias the live arena. *)
  let frames = [ (1, "first"); (2, ""); (9, String.make 300 '\x7f'); (3, "third") ] in
  let stream = String.concat "" (List.map (fun (tag, p) -> Net.Frame.encode ~tag p) frames) in
  let d = Net.Frame.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      Net.Frame.Decoder.feed d (String.make 1 c);
      match Net.Frame.Decoder.next d with
      | Ok None -> ()
      | Ok (Some v) ->
        Alcotest.(check bool) "view aliases the arena" true
          (v.Net.Frame.Decoder.v_buf == Net.Frame.Decoder.buffer d);
        got := (v.Net.Frame.Decoder.v_tag, Net.Frame.Decoder.payload_string d v) :: !got
      | Error e -> Alcotest.failf "decoder: %s" (Net.Frame.error_to_string e))
    stream;
  Alcotest.(check (list (pair int string))) "all frames, in order" frames (List.rev !got);
  Alcotest.(check int) "frames counted" (List.length frames) (Net.Frame.Decoder.frames d);
  Alcotest.(check int) "nothing left buffered" 0 (Net.Frame.Decoder.buffered d)

let test_decoder_zero_copy () =
  (* One big chunk in, several frames out: the only payload copies are
     the counted [payload_string] extractions — parsing itself copies
     nothing. *)
  let payloads = List.init 5 (fun i -> String.make (100 * (i + 1)) (Char.chr (65 + i))) in
  let stream = String.concat "" (List.map (Net.Frame.encode ~tag:7) payloads) in
  let d = Net.Frame.Decoder.create () in
  Net.Frame.Decoder.feed d stream;
  let rec drain acc =
    match Net.Frame.Decoder.next d with
    | Ok None -> List.rev acc
    | Ok (Some v) -> drain (v :: acc)
    | Error e -> Alcotest.failf "decoder: %s" (Net.Frame.error_to_string e)
  in
  let views = drain [] in
  Alcotest.(check int) "parsed all frames" (List.length payloads) (List.length views);
  Alcotest.(check int) "parsing made zero payload copies" 0 (Net.Frame.Decoder.extractions d);
  (* Extract only the middle one: exactly one copy happens. *)
  let v = List.nth views 2 in
  Alcotest.(check string) "extracted payload" (List.nth payloads 2)
    (Net.Frame.Decoder.payload_string d v);
  Alcotest.(check int) "one counted extraction" 1 (Net.Frame.Decoder.extractions d)

let test_decoder_rejects_corruption () =
  (* The streaming checksum catches a flipped payload bit exactly like
     the pure decoder does. *)
  let frame = Bytes.of_string (Net.Frame.encode ~tag:1 "an honest payload") in
  Bytes.set frame 20 (Char.chr (Char.code (Bytes.get frame 20) lxor 4));
  let d = Net.Frame.Decoder.create () in
  Net.Frame.Decoder.feed d (Bytes.to_string frame);
  (match Net.Frame.Decoder.next d with
   | Error Net.Frame.Bad_checksum -> ()
   | Ok _ -> Alcotest.fail "corrupt frame parsed"
   | Error e -> Alcotest.failf "expected Bad_checksum, got %s" (Net.Frame.error_to_string e))

let connect_raw srv =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match Net.Server.endpoint srv with
   | Net.Server.Tcp (h, p) -> Unix.connect fd (Unix.ADDR_INET (Net.Server.resolve_host h, p))
   | Net.Server.Unix_socket p -> Unix.connect fd (Unix.ADDR_UNIX p));
  fd

let write_raw fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let test_pipelined_requests_in_order () =
  (* Many requests in one burst, answered strictly in order even though
     the worker pool may complete them out of order — with a malformed
     payload mid-stream answered (with a refusal) in its slot. *)
  ignore (Lazy.force server);
  let fd = connect_raw (Lazy.force server) in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = 12 in
      let burst =
        String.concat ""
          (List.init n (fun i ->
               if i = 5 then Net.Frame.encode ~tag:Wire.request_tag "not a request"
               else Net.Frame.encode ~tag:Wire.request_tag (Wire.encode_request Wire.Ping)))
      in
      write_raw fd burst;
      List.iter
        (fun i ->
          match Net.Frame.read ~timeout:10. fd with
          | Error e -> Alcotest.failf "reply %d: %s" i (Net.Frame.error_to_string e)
          | Ok { Net.Frame.payload; _ } ->
            (match Wire.decode_response payload, i with
             | Some (Wire.Refused { code = Wire.Bad_request; _ }), 5 -> ()
             | Some Wire.Pong, i when i <> 5 -> ()
             | Some _, _ -> Alcotest.failf "reply %d out of order or wrong" i
             | None, _ -> Alcotest.failf "reply %d undecodable" i))
        (List.init n (fun i -> i)))

let test_slowloris_swept_without_stalling () =
  (* A byte-trickler never completes a frame: the sweep kicks it even
     though bytes keep arriving, and a concurrent well-behaved client
     never notices. *)
  let config = { Net.Server.default_config with read_timeout = 0.5 } in
  let srv = Net.Server.start ~config (Net.Service.handle (Lazy.force service)) in
  Fun.protect
    ~finally:(fun () -> Net.Server.stop srv)
    (fun () ->
      let sly = connect_raw srv in
      Fun.protect
        ~finally:(fun () -> try Unix.close sly with Unix.Unix_error _ -> ())
        (fun () ->
          let frame = Net.Frame.encode ~tag:Wire.request_tag (Wire.encode_request Wire.Ping) in
          let kicked = ref false in
          (try
             (* One byte every 150 ms: a complete frame would take ~5 s,
                ten times the sweep deadline. *)
             for i = 0 to String.length frame - 1 do
               write_raw sly (String.make 1 frame.[i]);
               Unix.sleepf 0.15;
               if i = 3 then begin
                 (* Mid-trickle, a normal client gets served instantly. *)
                 match Net.Client.connect ~name:"not-slow" ~provision:false
                         (Net.Server.endpoint srv)
                 with
                 | Error e -> Alcotest.failf "victim connect: %s" (Net.Client.error_to_string e)
                 | Ok c ->
                   (match Net.Client.ping c with
                    | Ok _ -> ()
                    | Error e ->
                      Alcotest.failf "slowloris stalled a good client: %s"
                        (Net.Client.error_to_string e));
                   Net.Client.close c
               end
             done
           with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> kicked := true);
          (* Either the trickle write already failed, or the next read
             sees the server's hangup. *)
          if not !kicked then
            match Net.Frame.read ~timeout:5. sly with
            | Error (Net.Frame.Closed | Net.Frame.Truncated) -> ()
            | Ok _ -> Alcotest.fail "slowloris connection was answered"
            | Error e -> Alcotest.failf "expected hangup, got %s" (Net.Frame.error_to_string e)))

let test_backpressure_throttles_non_reader () =
  (* A client that fires pipelined Stats requests (big replies) without
     reading gets its socket throttled — bounded server memory — and
     every reply, in order, once it finally drains. *)
  (* Tiny, pinned kernel buffers on both ends (explicit setsockopt
     disables autotuning; accepted sockets inherit the listener's), so
     the kernel can absorb almost nothing and the reply bytes must
     queue in the server's userspace — which is exactly what the
     backpressure cap bounds. *)
  let listener = Net.Server.bind_endpoint (Net.Server.Tcp ("127.0.0.1", 0)) in
  Unix.setsockopt_int listener Unix.SO_SNDBUF 4096;
  let port = Net.Server.bound_port listener in
  let config =
    { Net.Server.default_config with
      endpoint = Net.Server.Tcp ("127.0.0.1", port);
      max_queued_write = 2048 }
  in
  let srv = Net.Server.start ~config ~listener (Net.Service.handle (Lazy.force service)) in
  Fun.protect
    ~finally:(fun () -> Net.Server.stop srv)
    (fun () ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt_int fd Unix.SO_RCVBUF 4096;
      Unix.connect fd (Unix.ADDR_INET (Net.Server.resolve_host "127.0.0.1", port));
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let throttles_before = Obs.counter_value "slicer_net_backpressure_throttles_total" in
          let n = 40 in
          let burst =
            String.concat ""
              (List.init n (fun _ ->
                   Net.Frame.encode ~tag:Wire.request_tag (Wire.encode_request Wire.Stats)))
          in
          write_raw fd burst;
          (* Give the server time to queue far more reply bytes than
             [max_queued_write] while we refuse to read. *)
          Unix.sleepf 0.8;
          let throttles_after = Obs.counter_value "slicer_net_backpressure_throttles_total" in
          Alcotest.(check bool) "write backpressure engaged" true
            (throttles_after > throttles_before);
          (* Now drain: every reply arrives, in order, on the same
             connection. *)
          List.iter
            (fun i ->
              match Net.Frame.read ~timeout:20. fd with
              | Error e -> Alcotest.failf "reply %d: %s" i (Net.Frame.error_to_string e)
              | Ok { Net.Frame.payload; _ } ->
                (match Wire.decode_response payload with
                 | Some (Wire.Stats_reply _) -> ()
                 | _ -> Alcotest.failf "reply %d is not a stats reply" i))
            (List.init n (fun i -> i));
          (* The throttled connection recovered fully. *)
          Net.Frame.write fd ~tag:Wire.request_tag (Wire.encode_request Wire.Ping);
          match Net.Frame.read ~timeout:5. fd with
          | Ok { Net.Frame.payload; _ } ->
            (match Wire.decode_response payload with
             | Some Wire.Pong -> ()
             | _ -> Alcotest.fail "expected Pong after draining")
          | Error e -> Alcotest.failf "no pong after draining: %s" (Net.Frame.error_to_string e)))

let test_pre_handshake_garbage_dropped () =
  (* A peer whose very first bytes are not a valid frame gets dropped
     silently: no refusal, no oracle, just EOF. *)
  ignore (Lazy.force server);
  let fd = connect_raw (Lazy.force server) in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_raw fd "GET / HTTP/1.1\r\nHost: victim\r\n\r\n";
      let b = Bytes.create 256 in
      match Unix.read fd b 0 256 with
      | 0 -> ()
      | n -> Alcotest.failf "port-scanner got %d reply bytes" n
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ())

let test_swarm_holds_connections () =
  (* A few hundred keep-alive connections from one process: all confirm,
     the server's open-connection gauge sees them, and closing the swarm
     releases them. *)
  let srv = Net.Server.start (Net.Service.handle (Lazy.force service)) in
  Fun.protect
    ~finally:(fun () -> Net.Server.stop srv)
    (fun () ->
      let n = 300 in
      let sw = Net.Client.Swarm.open_ ~timeout:60. ~n (Net.Server.endpoint srv) in
      Fun.protect
        ~finally:(fun () -> Net.Client.Swarm.close sw)
        (fun () ->
          Alcotest.(check int) "every connection confirmed" n (Net.Client.Swarm.live sw);
          Alcotest.(check bool) "server sees the swarm" true
            (Net.Server.open_connections srv >= n);
          (* Keep-alives keep flowing on demand. *)
          Net.Client.Swarm.tick ~timeout_ms:200 sw;
          Alcotest.(check int) "still live after a tick" n (Net.Client.Swarm.live sw));
      (* After close, the loop reaps every socket promptly. *)
      let deadline = Unix.gettimeofday () +. 5. in
      let rec wait () =
        if Net.Server.open_connections srv = 0 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.failf "server still holds %d sockets after swarm close"
            (Net.Server.open_connections srv)
        else begin
          Unix.sleepf 0.05;
          wait ()
        end
      in
      wait ())

(* --- durability: WAL + snapshots across restarts --------------------------- *)

let fresh_state_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "slicer-net-dur-%d-%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* A dedicated little owner whose shipments populate durable services. *)
let durable_owner seed =
  let rng = Drbg.create ~seed in
  let keys = Keys.generate ~tdp_bits:512 ~rng () in
  let acc_params = Rsa_acc.setup ~rng ~bits:512 () in
  let owner = Owner.create ~width ~rng ~acc_params ~keys () in
  let records = Gen.uniform_records ~rng ~width 15 in
  let shipment = Owner.build owner records in
  (rng, keys, acc_params, owner, records, shipment)

let test_service_survives_restart () =
  (* The full acceptance loop in-process: an empty durable service is
     populated over wire messages (Build, Hello, Search, Insert), the
     store is closed as a stand-in for the process dying, and recovery
     must reproduce the state — generation, escrow, and above all the
     idempotency cache: the retried (client, request id) replays its
     settled reply byte-for-byte instead of paying twice. *)
  let dir = fresh_state_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { Store.dir; fsync = false; snapshot_bytes = max_int } in
  let rng, keys, acc_params, owner, _records, shipment = durable_owner "dur-owner" in
  let svc =
    match Net.Service.recover cfg with
    | Ok (svc, stats) ->
      Alcotest.(check bool) "fresh dir: nothing to replay" true
        (stats.Net.Service.rs_replayed = 0 && not (Net.Service.built svc));
      svc
    | Error e -> Alcotest.failf "initial recover: %s" e
  in
  (match
     Net.Service.handle svc
       (Wire.Build
          { client = "dur-owner"; request_id = "dur#1"; width; payment = 500;
            acc = acc_params; tdp_n = keys.Keys.tdp_public.Rsa_tdp.pn;
            tdp_e = keys.Keys.tdp_public.Rsa_tdp.e;
            user_k = (Keys.for_user keys).Keys.u_k;
            user_k_r = (Keys.for_user keys).Keys.u_k_r; shipment;
            trapdoor = Owner.export_trapdoor_state owner; trace = None })
   with
   | Wire.Accepted { generation } -> Alcotest.(check int) "built" 1 generation
   | _ -> Alcotest.fail "build refused");
  let user =
    match Net.Service.handle svc (Wire.Hello { client = "dur-user"; proto = Wire.proto_version }) with
    | Wire.Welcome p ->
      User.create ~keys:p.Wire.pv_user_keys ~width:p.Wire.pv_width p.Wire.pv_trapdoor
    | _ -> Alcotest.fail "hello refused"
  in
  let tokens = User.gen_tokens ~rng user (q 30 Slicer_types.Lt) in
  let search_req =
    Wire.Search { client = "dur-user"; request_id = "dur-user#1"; batched = false; tokens; trace = None }
  in
  let first =
    match Net.Service.handle svc search_req with
    | Wire.Found _ as r -> r
    | _ -> Alcotest.fail "search refused"
  in
  let shipment2 = Owner.insert owner [ Slicer_types.record_of_value "dur-new" 3 ] in
  (match
     Net.Service.handle svc
       (Wire.Insert
          { client = "dur-owner"; request_id = "dur#2"; shipment = shipment2;
            trapdoor = Owner.export_trapdoor_state owner; trace = None })
   with
   | Wire.Accepted { generation } -> Alcotest.(check int) "inserted" 2 generation
   | _ -> Alcotest.fail "insert refused");
  Option.iter Store.close (Net.Service.store svc);
  (* "Restart": rebuild from disk alone. *)
  match Net.Service.recover cfg with
  | Error e -> Alcotest.failf "recover after restart: %s" e
  | Ok (svc2, stats) ->
    Alcotest.(check int) "Build, Register, Search, Insert replayed" 4
      stats.Net.Service.rs_replayed;
    Alcotest.(check bool) "recovered service is built" true (Net.Service.built svc2);
    Alcotest.(check int) "generation survived" 2 (Net.Service.generation svc2);
    let settled = Net.Service.searches_settled svc2 in
    (* The acceptance criterion: a retried (client, request id) replays
       the pre-crash settlement byte-for-byte — escrow untouched. *)
    let again = Net.Service.handle svc2 search_req in
    Alcotest.(check string) "cached reply survives the restart"
      (Wire.encode_response first) (Wire.encode_response again);
    Alcotest.(check int) "the replay did not settle escrow again" settled
      (Net.Service.searches_settled svc2);
    (* Fresh traffic settles fresh, against the recovered (post-Insert)
       index, and is still paid — the recovered Ac agrees with chain. *)
    (match Net.Service.handle svc2 (Wire.Hello { client = "dur-user-2"; proto = Wire.proto_version }) with
     | Wire.Welcome p ->
       let u2 =
         User.create ~keys:p.Wire.pv_user_keys ~width:p.Wire.pv_width p.Wire.pv_trapdoor
       in
       let t2 = User.gen_tokens ~rng u2 (q 3 Slicer_types.Eq) in
       (match
          Net.Service.handle svc2
            (Wire.Search
               { client = "dur-user-2"; request_id = "du2#1"; batched = false; tokens = t2; trace = None })
        with
        | Wire.Found r ->
          (match r.Wire.sr_receipt.Vm.r_output with
           | Ok [ "paid" ] -> ()
           | _ -> Alcotest.fail "fresh post-recovery search was not paid")
        | _ -> Alcotest.fail "fresh post-recovery search refused")
     | _ -> Alcotest.fail "hello after recovery refused");
    Alcotest.(check int) "exactly one new settlement" (settled + 1)
      (Net.Service.searches_settled svc2);
    Option.iter Store.close (Net.Service.store svc2)

let test_witness_index_survives_restart () =
  (* The v2 snapshot carries the warm witness state: a restored service
     serves byte-identical VOs with its index already warm — zero cold
     recomputation, even for leaves that went stale across an Insert. *)
  let dir = fresh_state_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { Store.dir; fsync = false; snapshot_bytes = max_int } in
  let rng, keys, acc_params, owner, _records, shipment = durable_owner "windex-owner" in
  let svc =
    match Net.Service.recover cfg with
    | Ok (svc, _) -> svc
    | Error e -> Alcotest.failf "initial recover: %s" e
  in
  (match
     Net.Service.handle svc
       (Wire.Build
          { client = "windex-owner"; request_id = "wi#b"; width; payment = 500;
            acc = acc_params; tdp_n = keys.Keys.tdp_public.Rsa_tdp.pn;
            tdp_e = keys.Keys.tdp_public.Rsa_tdp.e;
            user_k = (Keys.for_user keys).Keys.u_k;
            user_k_r = (Keys.for_user keys).Keys.u_k_r; shipment;
            trapdoor = Owner.export_trapdoor_state owner; trace = None })
   with
   | Wire.Accepted _ -> ()
   | _ -> Alcotest.fail "build refused");
  let user =
    match Net.Service.handle svc (Wire.Hello { client = "windex-user"; proto = Wire.proto_version }) with
    | Wire.Welcome p ->
      User.create ~keys:p.Wire.pv_user_keys ~width:p.Wire.pv_width p.Wire.pv_trapdoor
    | _ -> Alcotest.fail "hello refused"
  in
  let tokens = User.gen_tokens ~rng user (q 30 Slicer_types.Lt) in
  let witnesses_of = function
    | Wire.Found f ->
      List.map (fun c -> Bigint.to_bytes_be c.Slicer_contract.witness) f.Wire.sr_claims
    | _ -> Alcotest.fail "search refused"
  in
  ignore
    (witnesses_of
       (Net.Service.handle svc
          (Wire.Search
             { client = "windex-user"; request_id = "wi#1"; batched = false; tokens; trace = None })));
  (* Insert so some warm leaves go stale, then query again: the second
     settlement re-bases them at the latest generation. *)
  let shipment2 = Owner.insert owner [ Slicer_types.record_of_value "wi-new" 3 ] in
  (match
     Net.Service.handle svc
       (Wire.Insert
          { client = "windex-owner"; request_id = "wi#i"; shipment = shipment2;
            trapdoor = Owner.export_trapdoor_state owner; trace = None })
   with
   | Wire.Accepted _ -> ()
   | _ -> Alcotest.fail "insert refused");
  let before =
    witnesses_of
      (Net.Service.handle svc
         (Wire.Search
            { client = "windex-user"; request_id = "wi#2"; batched = false; tokens; trace = None }))
  in
  Option.iter Store.close (Net.Service.store svc);
  (* Restart 1: WAL replay reconstructs (and re-warms) the index; the
     re-anchoring checkpoint then snapshots the warm state. *)
  (match Net.Service.recover cfg with
   | Error e -> Alcotest.failf "first recover: %s" e
   | Ok (svc2, _) -> Option.iter Store.close (Net.Service.store svc2));
  (* Restart 2: snapshot-only restore — nothing replayed, so any warmth
     must come from the snapshot's witness blob. *)
  match Net.Service.recover cfg with
  | Error e -> Alcotest.failf "second recover: %s" e
  | Ok (svc3, stats) ->
    Alcotest.(check int) "snapshot-only restore" 0 stats.Net.Service.rs_replayed;
    let cloud =
      match Net.Service.station svc3 with
      | Some st -> Station.cloud st
      | None -> Alcotest.fail "recovered service has no station"
    in
    (match Cloud.witness_index_stats cloud with
     | None -> Alcotest.fail "recovered cloud has no witness index"
     | Some ws ->
       Alcotest.(check bool) "restored leaves are cached" true
         (ws.Witness_tree.ws_cached > 0);
       Alcotest.(check int) "no cold work at restore" 0 ws.Witness_tree.ws_cold);
    let after =
      witnesses_of
        (Net.Service.handle svc3
           (Wire.Search
              { client = "windex-user"; request_id = "wi#3"; batched = false; tokens; trace = None }))
    in
    Alcotest.(check (list string)) "restored index serves identical witnesses" before after;
    (match Cloud.witness_index_stats cloud with
     | Some ws ->
       Alcotest.(check int) "served without full recomputation" 0 ws.Witness_tree.ws_cold
     | None -> Alcotest.fail "witness index vanished");
    Option.iter Store.close (Net.Service.store svc3)

(* The real thing: a separate slicer-server process, killed with
   SIGKILL mid-load, recovered from its state directory. *)

let server_exe () =
  List.find_opt Sys.file_exists
    [ "../bin/slicer_server.exe";
      "_build/default/bin/slicer_server.exe";
      "bin/slicer_server.exe" ]

let spawn_server ?(extra = []) ~exe ~dir () =
  let out_r, out_w = Unix.pipe () in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let argv =
    Array.of_list
      ([ exe; "--records"; "0"; "--port"; "0"; "--state-dir"; dir;
         "--log-level"; "quiet"; "--metrics-interval"; "0" ]
       @ extra)
  in
  let pid = Unix.create_process exe argv null out_w Unix.stderr in
  Unix.close out_w;
  Unix.close null;
  let ic = Unix.in_channel_of_descr out_r in
  (* The server prints "listening on HOST:PORT" once bound. *)
  let rec find_port () =
    match input_line ic with
    | line ->
      (match String.rindex_opt line ':' with
       | Some i
         when String.length line > 13 && String.sub line 0 13 = "listening on " ->
         (match int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) with
          | Some port -> port
          | None -> find_port ())
       | _ -> find_port ())
    | exception End_of_file ->
      ignore (Unix.kill pid Sys.sigkill);
      Alcotest.fail "server exited before listening"
  in
  let port = find_port () in
  (pid, out_r, port)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Net.Server.resolve_host "127.0.0.1", port));
  fd

let raw_request fd req =
  Net.Frame.write fd ~tag:Wire.request_tag (Wire.encode_request req);
  match Net.Frame.read ~timeout:20. fd with
  | Error e -> Alcotest.failf "raw read: %s" (Net.Frame.error_to_string e)
  | Ok { Net.Frame.payload; _ } ->
    (match Wire.decode_response payload with
     | Some resp -> resp
     | None -> Alcotest.fail "raw response did not decode")

let test_sigkill_mid_load_recovers () =
  match server_exe () with
  | None -> Alcotest.skip ()
  | Some exe ->
    let dir = fresh_state_dir () in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let pid, out_fd, port = spawn_server ~exe ~dir () in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        try Unix.close out_fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let ep = Net.Server.Tcp ("127.0.0.1", port) in
    let rng, keys, acc_params, owner, records, shipment = durable_owner "sigkill-owner" in
    (* The owner bootstraps the durable server over the wire. *)
    (match Net.Client.connect ~name:"sigkill-owner" ~provision:false ep with
     | Error e -> Alcotest.failf "owner connect: %s" (Net.Client.error_to_string e)
     | Ok oc ->
       (match
          Net.Client.build oc ~width ~payment:500 ~acc:acc_params
            ~tdp_public:keys.Keys.tdp_public ~user_keys:(Keys.for_user keys) ~shipment
            ~trapdoor:(Owner.export_trapdoor_state owner)
        with
        | Ok generation -> Alcotest.(check int) "built over the wire" 1 generation
        | Error e -> Alcotest.failf "build: %s" (Net.Client.error_to_string e));
       Net.Client.close oc);
    (* A pinned (client, request id) settles before the kill: the probe
       whose reply must replay byte-identically after recovery. *)
    let probe_req, probe_reply =
      let fd = raw_connect port in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      match raw_request fd (Wire.Hello { client = "sigkill-probe"; proto = Wire.proto_version }) with
      | Wire.Welcome p ->
        let user =
          User.create ~keys:p.Wire.pv_user_keys ~width:p.Wire.pv_width p.Wire.pv_trapdoor
        in
        let tokens = User.gen_tokens ~rng user (q 30 Slicer_types.Lt) in
        let req =
          Wire.Search
            { client = "sigkill-probe"; request_id = "sigkill-probe#1"; batched = false; trace = None;
              tokens }
        in
        (match raw_request fd req with
         | Wire.Found _ as reply -> (req, reply)
         | _ -> Alcotest.fail "probe search refused")
      | _ -> Alcotest.fail "probe hello refused"
    in
    (* Sustained load from a second client; SIGKILL lands mid-flight. *)
    let stop = ref false in
    let loader () =
      let ccfg =
        { Net.Client.default_config with
          max_attempts = 2; backoff_base = 0.02; request_timeout = 10. }
      in
      match Net.Client.connect ~config:ccfg ~name:"sigkill-load" ep with
      | Error _ -> ()
      | Ok c ->
        (try
           while not !stop do
             match Net.Client.search c (q 10 Slicer_types.Gt) with
             | Ok _ -> ()
             | Error _ -> raise Exit
           done
         with _ -> ());
        (try Net.Client.close c with _ -> ())
    in
    let th = Thread.create loader () in
    Thread.delay 0.3;
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    stop := true;
    Thread.join th;
    (* Recover from the survivor: the state directory. [recover] itself
       re-verifies that the recovered primes re-accumulate to the
       on-chain Ac — an Ok here is the accumulator acceptance check. *)
    let cfg = { Store.dir; fsync = true; snapshot_bytes = 4 * 1024 * 1024 } in
    (match Net.Service.recover cfg with
     | Error e -> Alcotest.failf "recovery after SIGKILL: %s" e
     | Ok (svc, _stats) ->
       Alcotest.(check bool) "recovered service is built" true (Net.Service.built svc);
       Alcotest.(check int) "generation survived the kill" 1 (Net.Service.generation svc);
       let settled = Net.Service.searches_settled svc in
       let again = Net.Service.handle svc probe_req in
       Alcotest.(check string) "probe reply replays byte-for-byte across the kill"
         (Wire.encode_response probe_reply) (Wire.encode_response again);
       Alcotest.(check int) "the probe retry did not settle twice" settled
         (Net.Service.searches_settled svc);
       (* Serve the recovered state and answer a fresh client correctly. *)
       let srv = Net.Server.start (Net.Service.handle svc) in
       Fun.protect
         ~finally:(fun () ->
           Net.Server.stop srv;
           Option.iter Store.close (Net.Service.store svc))
       @@ fun () ->
       match Net.Client.connect ~name:"sigkill-after" (Net.Server.endpoint srv) with
       | Error e -> Alcotest.failf "post-recovery connect: %s" (Net.Client.error_to_string e)
       | Ok c ->
         let query = q 30 Slicer_types.Lt in
         (match Net.Client.search c query with
          | Ok out ->
            Alcotest.(check bool) "post-recovery search verified" true
              out.Protocol.so_verified;
            check_ids "post-recovery ids match the oracle"
              (Slicer_types.reference_search records query) out.Protocol.so_ids
          | Error e -> Alcotest.failf "post-recovery search: %s" (Net.Client.error_to_string e));
         Net.Client.close c)

(* --- batched optimistic settlement over the wire ------------------------ *)

let settle_system seed ~settle =
  let small_db = List.filteri (fun i _ -> i < 25) db in
  let system = Protocol.setup ~width ~seed small_db in
  let svc = Net.Service.of_protocol ~settle system in
  let srv = Net.Server.start (Net.Service.handle svc) in
  (small_db, svc, srv)

let settle_client name srv =
  match Net.Client.connect ~name (Net.Server.endpoint srv) with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Net.Client.error_to_string e)

let rid_exn c = match Net.Client.last_request_id c with
  | Some id -> id
  | None -> Alcotest.fail "client has no last request id"

let test_batched_settlement_over_the_wire () =
  (* Size-2 batches, a 3-block dispute window, an effectively-off
     wall clock: the second search commits its batch inline, so its
     own reply already carries the Merkle coordinates the client
     verifies membership against. *)
  let settle =
    { Settle_batch.sb_size = 2; sb_window_ms = 1e9; sb_deposit = 100_000;
      sb_dispute_blocks = 3 }
  in
  let small_db, svc, srv = settle_system "net-settle" ~settle in
  Fun.protect ~finally:(fun () -> Net.Server.stop srv) @@ fun () ->
  let st = match Net.Service.station svc with
    | Some st -> st | None -> Alcotest.fail "no station"
  in
  let bal addr = Vm.balance (Ledger.state (Station.ledger st)) addr in
  let c = settle_client "settle-e2e" srv in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  let payment = Net.Client.payment c in
  let query = q 30 Slicer_types.Lt in
  let expected = Slicer_types.reference_search small_db query in
  (* Search 1: pending — verified on the leaf commitment alone. *)
  (match Net.Client.search c query with
   | Ok out ->
     Alcotest.(check bool) "pending search verified" true out.Protocol.so_verified;
     check_ids "pending ids" expected out.Protocol.so_ids
   | Error e -> Alcotest.failf "search 1: %s" (Net.Client.error_to_string e));
  let rid1 = rid_exn c in
  (match Net.Client.receipt c ~request_id:rid1 with
   | Ok (Wire.Rcp_pending _) -> ()
   | Ok _ -> Alcotest.fail "expected a pending receipt before the flush"
   | Error e -> Alcotest.failf "receipt 1: %s" (Net.Client.error_to_string e));
  (* Search 2 fills the batch: the inline commit means this reply
     carries root + inclusion proof, and so_verified now attests
     Merkle membership, not an on-chain payment. *)
  (match Net.Client.search c query with
   | Ok out -> Alcotest.(check bool) "committed search verified" true out.Protocol.so_verified
   | Error e -> Alcotest.failf "search 2: %s" (Net.Client.error_to_string e));
  let rid2 = rid_exn c in
  (match Net.Client.receipt c ~request_id:rid2 with
   | Ok (Wire.Rcp_committed si) ->
     (match (si.Wire.si_root, si.Wire.si_proof) with
      | Some root, Some proof ->
        Alcotest.(check int) "root is a digest" 32 (String.length root);
        Alcotest.(check int) "proof binds index 1" 1 proof.Merkle.index
      | _ -> Alcotest.fail "committed receipt without root/proof")
   | Ok _ -> Alcotest.fail "expected a committed receipt after the flush"
   | Error e -> Alcotest.failf "receipt 2: %s" (Net.Client.error_to_string e));
  let cloud_mid = bal (Station.cloud_addr st) in
  (* The window is measured in blocks and blocks only seal on
     transactions: keep searching (each escrow seals one) and forcing
     the timer until the first batch drops out of its dispute window
     and settles wholesale, paying both escrows at once. *)
  let rec drive tries =
    if tries = 0 then Alcotest.fail "first batch never finalized"
    else begin
      (match Net.Client.search c query with
       | Ok _ -> () | Error e -> Alcotest.failf "drive search: %s" (Net.Client.error_to_string e));
      Net.Service.settle_flush svc;
      match Net.Client.receipt c ~request_id:rid1 with
      | Ok (Wire.Rcp_final _) -> ()
      | Ok _ -> drive (tries - 1)
      | Error e -> Alcotest.failf "receipt final: %s" (Net.Client.error_to_string e)
    end
  in
  drive 8;
  Alcotest.(check bool) "finalize paid the batched escrows" true
    (bal (Station.cloud_addr st) >= cloud_mid + (2 * payment))

let test_batched_dispute_slashes_over_the_wire () =
  (* A tampering cloud commits a provably-bad leaf; the client's kept
     claims bytes are exactly the dispute evidence. The slash pays the
     whole deposit to the disputer and refunds the whole batch. *)
  let deposit = 60_000 in
  let settle =
    { Settle_batch.sb_size = 2; sb_window_ms = 1e9; sb_deposit = deposit;
      sb_dispute_blocks = 50 }
  in
  let _, svc, srv = settle_system "net-settle-bad" ~settle in
  Fun.protect ~finally:(fun () -> Net.Server.stop srv) @@ fun () ->
  let st = match Net.Service.station svc with
    | Some st -> st | None -> Alcotest.fail "no station"
  in
  let bal addr = Vm.balance (Ledger.state (Station.ledger st)) addr in
  let c = settle_client "settle-victim" srv in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  let payment = Net.Client.payment c in
  let query = q 30 Slicer_types.Lt in
  (match Net.Client.search c query with
   | Ok out -> Alcotest.(check bool) "honest leaf verified" true out.Protocol.so_verified
   | Error e -> Alcotest.failf "search 1: %s" (Net.Client.error_to_string e));
  Cloud.set_behavior (Station.cloud st) Cloud.Tamper_result;
  Fun.protect ~finally:(fun () -> Cloud.set_behavior (Station.cloud st) Cloud.Honest)
  @@ fun () ->
  (match Net.Client.search c query with
   | Ok out ->
     Alcotest.(check bool) "tampered results fail the local check" false
       out.Protocol.so_verified
   | Error e -> Alcotest.failf "search 2: %s" (Net.Client.error_to_string e));
  let rid2 = rid_exn c in
  let user_before = bal (Net.Client.user_address c) in
  (match Net.Client.dispute c ~request_id:rid2 with
   | Ok (slashed, receipt) ->
     Alcotest.(check bool) "dispute slashed the cloud" true slashed;
     (match receipt.Vm.r_output with
      | Ok [ "slashed" ] -> ()
      | _ -> Alcotest.fail "unexpected dispute receipt")
   | Error e -> Alcotest.failf "dispute: %s" (Net.Client.error_to_string e));
  (* Bounty (the whole deposit) + both refunded escrows land on the
     disputing client's chain address. *)
  Alcotest.(check int) "bounty and refunds" (user_before + deposit + (2 * payment))
    (bal (Net.Client.user_address c));
  (match Net.Client.receipt c ~request_id:rid2 with
   | Ok (Wire.Rcp_refunded _) -> ()
   | Ok _ -> Alcotest.fail "slashed batch should read refunded"
   | Error e -> Alcotest.failf "receipt: %s" (Net.Client.error_to_string e))

let settle_flags = [ "--settle-batch"; "2"; "--settle-window-ms"; "100000";
                     "--settle-dispute-window"; "1" ]

let test_batched_sigkill_between_commit_and_finalize () =
  (* The acceptance crash: SIGKILL lands after the batch commitment is
     on chain but before its dispute window lets it finalize. The
     restarted server replays the WAL (escrows, adds, the inline
     commit), and its settlement timer finalizes the recovered batch —
     exactly once, since there is exactly one recovered chain. *)
  match server_exe () with
  | None -> Alcotest.skip ()
  | Some exe ->
    let dir = fresh_state_dir () in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let pid, out_fd, port = spawn_server ~extra:settle_flags ~exe ~dir () in
    let killed = ref false in
    Fun.protect
      ~finally:(fun () ->
        if not !killed then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        end;
        try Unix.close out_fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let ep = Net.Server.Tcp ("127.0.0.1", port) in
    let rng, keys, acc_params, owner, records, shipment = durable_owner "skb-owner" in
    ignore rng;
    (match Net.Client.connect ~name:"skb-owner" ~provision:false ep with
     | Error e -> Alcotest.failf "owner connect: %s" (Net.Client.error_to_string e)
     | Ok oc ->
       (match
          Net.Client.build oc ~width ~payment:500 ~acc:acc_params
            ~tdp_public:keys.Keys.tdp_public ~user_keys:(Keys.for_user keys) ~shipment
            ~trapdoor:(Owner.export_trapdoor_state owner)
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "build: %s" (Net.Client.error_to_string e));
       Net.Client.close oc);
    let query = q 30 Slicer_types.Lt in
    let rid1, rid2 =
      match Net.Client.connect ~name:"skb-user" ep with
      | Error e -> Alcotest.failf "user connect: %s" (Net.Client.error_to_string e)
      | Ok c ->
        Fun.protect ~finally:(fun () -> try Net.Client.close c with _ -> ())
        @@ fun () ->
        (match Net.Client.search c query with
         | Ok out -> Alcotest.(check bool) "search 1 verified" true out.Protocol.so_verified
         | Error e -> Alcotest.failf "search 1: %s" (Net.Client.error_to_string e));
        let rid1 = rid_exn c in
        (match Net.Client.search c query with
         | Ok out -> Alcotest.(check bool) "search 2 verified" true out.Protocol.so_verified
         | Error e -> Alcotest.failf "search 2: %s" (Net.Client.error_to_string e));
        let rid2 = rid_exn c in
        (* The size-2 batch committed inline with search 2; its window
           (1 block) has not passed within the same tick cadence
           guarantee, so kill NOW — commit on chain, finality not. *)
        (rid1, rid2)
    in
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    killed := true;
    (try Unix.close out_fd with Unix.Unix_error _ -> ());
    (* Restart over the same state directory, same settlement flags. *)
    let pid2, out_fd2, port2 = spawn_server ~extra:settle_flags ~exe ~dir () in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid2) with Unix.Unix_error _ -> ());
        try Unix.close out_fd2 with Unix.Unix_error _ -> ())
    @@ fun () ->
    let ep2 = Net.Server.Tcp ("127.0.0.1", port2) in
    (match Net.Client.connect ~name:"skb-user" ep2 with
     | Error e -> Alcotest.failf "reconnect: %s" (Net.Client.error_to_string e)
     | Ok c ->
       Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
       match Net.Client.connect ~name:"skb-after" ep2 with
       | Error e -> Alcotest.failf "fresh connect: %s" (Net.Client.error_to_string e)
       | Ok c2 ->
         Fun.protect ~finally:(fun () -> Net.Client.close c2) @@ fun () ->
         (* The recovered service still settles fresh traffic... *)
         (match Net.Client.search c2 query with
          | Ok out ->
            Alcotest.(check bool) "post-recovery batched search verified" true
              out.Protocol.so_verified;
            check_ids "post-recovery ids" (Slicer_types.reference_search records query)
              out.Protocol.so_ids
          | Error e -> Alcotest.failf "post-recovery search: %s" (Net.Client.error_to_string e));
         (* ...and the recovered pre-kill batch finalizes under the
            server's own timer. The window is counted in blocks, so the
            fresh searches both prove liveness and seal the blocks that
            let the old batch out of its dispute window. *)
         let rec await rid tries =
           match Net.Client.receipt c ~request_id:rid with
           | Ok (Wire.Rcp_final _) -> ()
           | Ok _ when tries > 0 ->
             (match Net.Client.search c2 query with Ok _ | Error _ -> ());
             Thread.delay 0.3;
             await rid (tries - 1)
           | Ok _ -> Alcotest.failf "receipt %s never finalized after recovery" rid
           | Error e -> Alcotest.failf "receipt %s: %s" rid (Net.Client.error_to_string e)
         in
         await rid1 30;
         await rid2 5)

let () =
  Alcotest.run "net"
    [ ( "frame",
        [ Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "stream decoding" `Quick test_frame_stream;
          Alcotest.test_case "limits" `Quick test_frame_limits;
          Alcotest.test_case "length lies" `Quick test_frame_length_lies ]
        @ frame_corruption_props );
      ( "wire",
        [ Alcotest.test_case "request roundtrips" `Quick test_request_roundtrips;
          Alcotest.test_case "response roundtrips" `Quick test_response_roundtrips;
          Alcotest.test_case "persist message codecs" `Quick test_persist_message_codecs ]
        @ codec_corruption_props );
      ( "backoff",
        Alcotest.test_case "schedule" `Quick test_backoff_schedule :: backoff_props );
      ( "service",
        [ Alcotest.test_case "idempotent settlement" `Quick test_idempotent_settlement;
          Alcotest.test_case "replay confined to the settling client" `Quick
            test_replay_confined_to_client;
          Alcotest.test_case "idempotent build and insert" `Quick
            test_idempotent_build_and_insert;
          Alcotest.test_case "stats counters advance across a retry" `Quick
            test_stats_counters_advance;
          Alcotest.test_case "structured refusals" `Quick test_service_refusals ] );
      ( "loopback",
        [ Alcotest.test_case "concurrent clients match Protocol.search" `Quick
            test_concurrent_clients_match_protocol;
          Alcotest.test_case "tampering server refused payment" `Quick
            test_tampering_server_refused_payment;
          Alcotest.test_case "malformed frames get structured errors" `Quick
            test_malformed_frames_get_structured_errors;
          Alcotest.test_case "busy refusal exhausts retries" `Quick test_busy_refusal_exhausts;
          Alcotest.test_case "kill and restart mid-load" `Quick test_kill_restart_mid_load;
          Alcotest.test_case "build and insert over the wire" `Quick
            test_build_and_insert_over_the_wire;
          Alcotest.test_case "read timeout kicks idlers" `Quick test_read_timeout_kicks_idlers;
          Alcotest.test_case "stats over the wire" `Quick test_stats_over_the_wire ] );
      ( "event loop",
        [ Alcotest.test_case "decoder: byte-at-a-time" `Quick test_decoder_byte_at_a_time;
          Alcotest.test_case "decoder: zero-copy parsing" `Quick test_decoder_zero_copy;
          Alcotest.test_case "decoder: rejects corruption" `Quick
            test_decoder_rejects_corruption;
          Alcotest.test_case "pipelined requests answered in order" `Quick
            test_pipelined_requests_in_order;
          Alcotest.test_case "slowloris swept without stalling others" `Quick
            test_slowloris_swept_without_stalling;
          Alcotest.test_case "backpressure throttles a non-reader" `Quick
            test_backpressure_throttles_non_reader;
          Alcotest.test_case "pre-handshake garbage dropped silently" `Quick
            test_pre_handshake_garbage_dropped;
          Alcotest.test_case "swarm holds hundreds of sockets" `Quick
            test_swarm_holds_connections ] );
      ( "durability",
        [ Alcotest.test_case "state survives a restart" `Quick test_service_survives_restart;
          Alcotest.test_case "witness index survives a restart" `Quick
            test_witness_index_survives_restart;
          Alcotest.test_case "SIGKILL mid-load, recover, serve again" `Quick
            test_sigkill_mid_load_recovers ] );
      ( "settlement",
        [ Alcotest.test_case "batched settlement over the wire" `Quick
            test_batched_settlement_over_the_wire;
          Alcotest.test_case "dispute slashes a tampering cloud" `Quick
            test_batched_dispute_slashes_over_the_wire;
          Alcotest.test_case "SIGKILL between commit and finalize" `Quick
            test_batched_sigkill_between_commit_and_finalize ] ) ]
