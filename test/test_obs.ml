(* The observability layer: histogram bucketing invariants, the merge
   property (sharded/partitioned recording is snapshot-equivalent to
   recording everything into one instrument), golden exposition
   output, exact totals under domain parallelism, span semantics, and
   the percentile formula the load driver reports. *)

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- bucketing -------------------------------------------------------- *)

let bucket_props =
  [ prop "bucket bound bounds the value within ~6%" ~count:500
      QCheck2.Gen.(
        oneof
          [ int_range 0 1000; int_range 0 1_000_000_000; int_range 0 ((1 lsl 60) - 1) ])
      (fun v ->
        let b = Obs.Histogram.bucket_of v in
        let bound = Obs.Histogram.bucket_bound b in
        (* The bucket holds the value, and is not much wider than an
           HDR sub-bucket: bound <= v + v/16 + 1. *)
        bound >= v && bound <= v + (v asr 4) + 1);
    prop "values beyond the 2^60 clamp land in the top bucket" ~count:100
      QCheck2.Gen.(int_range (1 lsl 60) max_int)
      (fun v ->
        (* ~36 years in ns: anything this large saturates rather than
           overflowing or raising. *)
        Obs.Histogram.bucket_of v = Obs.Histogram.bucket_of max_int);
    prop "bucket_of is monotone" ~count:500
      QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
      (fun (a, b) ->
        let a, b = (min a b, max a b) in
        Obs.Histogram.bucket_of a <= Obs.Histogram.bucket_of b) ]

(* --- merge ------------------------------------------------------------ *)

let snapshot_eq (a : Obs.Histogram.snapshot) (b : Obs.Histogram.snapshot) =
  a.Obs.Histogram.sn_units = b.Obs.Histogram.sn_units
  && a.Obs.Histogram.sn_count = b.Obs.Histogram.sn_count
  && a.Obs.Histogram.sn_sum = b.Obs.Histogram.sn_sum
  && a.Obs.Histogram.sn_buckets = b.Obs.Histogram.sn_buckets

let merge_props =
  [ prop "partitioned recording merges to the direct snapshot" ~count:100
      QCheck2.Gen.(pair (int_range 1 5) (list_size (int_range 0 200) (int_range 0 100_000)))
      (fun (parts, values) ->
        let r = Obs.Registry.create () in
        let direct = Obs.histogram ~registry:r ~units:Obs.Histogram.Raw "direct" in
        let shards =
          Array.init parts (fun i ->
              Obs.histogram ~registry:r ~units:Obs.Histogram.Raw (Printf.sprintf "part-%d" i))
        in
        List.iteri
          (fun i v ->
            Obs.Histogram.record direct v;
            Obs.Histogram.record shards.(i mod parts) v)
          values;
        let merged = Obs.histogram ~registry:r ~units:Obs.Histogram.Raw "merged" in
        Array.iter (fun src -> Obs.Histogram.merge_into ~src ~dst:merged) shards;
        snapshot_eq (Obs.Histogram.snapshot direct) (Obs.Histogram.snapshot merged)) ]

let test_merge_units_mismatch () =
  let r = Obs.Registry.create () in
  let s = Obs.histogram ~registry:r ~units:Obs.Histogram.Seconds "s" in
  let g = Obs.histogram ~registry:r ~units:Obs.Histogram.Raw "g" in
  Alcotest.(check bool) "units mismatch raises" true
    (try Obs.Histogram.merge_into ~src:s ~dst:g; false with Invalid_argument _ -> true)

(* --- golden exposition ------------------------------------------------ *)

(* A tiny fixed registry, so the exact exposition bytes are pinned:
   format drift in either encoder is a deliberate, visible change. *)
let golden_registry () =
  let r = Obs.Registry.create () in
  let c = Obs.counter ~registry:r ~help:"requests served" "slicer_test_requests_total" in
  Obs.Counter.add c 3;
  let g = Obs.gauge ~registry:r "slicer_test_inflight" in
  Obs.Gauge.set g 7;
  let h = Obs.histogram ~registry:r ~help:"gas" ~units:Obs.Histogram.Raw "slicer_test_gas" in
  List.iter (Obs.Histogram.record h) [ 1; 1; 5; 200 ];
  r

let expected_prometheus =
  "# HELP slicer_test_gas gas\n\
   # TYPE slicer_test_gas histogram\n\
   slicer_test_gas_bucket{le=\"1\"} 2\n\
   slicer_test_gas_bucket{le=\"5\"} 3\n\
   slicer_test_gas_bucket{le=\"207\"} 4\n\
   slicer_test_gas_bucket{le=\"+Inf\"} 4\n\
   slicer_test_gas_sum 207\n\
   slicer_test_gas_count 4\n\
   # TYPE slicer_test_inflight gauge\n\
   slicer_test_inflight 7\n\
   # HELP slicer_test_requests_total requests served\n\
   # TYPE slicer_test_requests_total counter\n\
   slicer_test_requests_total 3\n"

let expected_json =
  "{\n\
  \  \"counters\": {\"slicer_test_requests_total\": 3},\n\
  \  \"gauges\": {\"slicer_test_inflight\": 7},\n\
  \  \"histograms\": {\n\
  \    \"slicer_test_gas\": {\"count\": 4, \"sum\": 207, \"p50\": 1, \"p95\": 207, \
   \"p99\": 207, \"buckets\": [[1, 2], [5, 1], [207, 1]]}\n\
  \  }\n\
   }\n"

let test_export_golden () =
  let r = golden_registry () in
  Alcotest.(check string) "prometheus text" expected_prometheus
    (Obs.Export.to_prometheus ~registry:r ());
  Alcotest.(check string) "json" expected_json (Obs.Export.to_json ~registry:r ())

(* --- exact totals under domain parallelism ----------------------------- *)

let test_parallel_totals_exact () =
  let r = Obs.Registry.create () in
  let c = Obs.counter ~registry:r "par_total" in
  let h = Obs.histogram ~registry:r ~units:Obs.Histogram.Raw "par_hist" in
  let domains = 4 and per_domain = 25_000 in
  let worker d =
    Domain.spawn (fun () ->
        for i = 1 to per_domain do
          Obs.Counter.incr c;
          Obs.Histogram.record h ((d * per_domain) + i)
        done)
  in
  let ds = List.init domains worker in
  List.iter Domain.join ds;
  Alcotest.(check int) "counter exact" (domains * per_domain) (Obs.Counter.value c);
  let sn = Obs.Histogram.snapshot h in
  Alcotest.(check int) "histogram count exact" (domains * per_domain) sn.Obs.Histogram.sn_count;
  let n = domains * per_domain in
  Alcotest.(check int) "histogram sum exact" (n * (n + 1) / 2) sn.Obs.Histogram.sn_sum;
  Alcotest.(check int) "bucket counts sum to the total" n
    (Array.fold_left (fun acc (_, k) -> acc + k) 0 sn.Obs.Histogram.sn_buckets)

(* --- spans ------------------------------------------------------------- *)

(* Spans land in the process-global default registry; reach the same
   instrument by name to observe them. *)
let span_count name =
  let h = Obs.histogram (Obs.metric_of_span name) in
  (Obs.Histogram.snapshot h).Obs.Histogram.sn_count

let test_span_records () =
  let before = span_count "test.alpha" in
  Alcotest.(check int) "span returns the thunk's value" 41
    (Obs.span "test.alpha" (fun () -> 41));
  Alcotest.(check int) "one observation" (before + 1) (span_count "test.alpha")

let test_span_records_on_raise () =
  let before = span_count "test.raiser" in
  (try Obs.span "test.raiser" (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check int) "exception still timed" (before + 1) (span_count "test.raiser")

let test_disabled_is_noop () =
  let before = span_count "test.off" in
  let r = Obs.Registry.create () in
  let c = Obs.counter ~registry:r "off_total" in
  Obs.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled true)
    (fun () ->
      Alcotest.(check int) "span still runs the thunk" 7 (Obs.span "test.off" (fun () -> 7));
      Obs.Counter.add c 5);
  Alcotest.(check int) "no span recorded" before (span_count "test.off");
  Alcotest.(check int) "no count recorded" 0 (Obs.Counter.value c)

let test_metric_of_span () =
  List.iter
    (fun (span, metric) -> Alcotest.(check string) span metric (Obs.metric_of_span span))
    [ ("core.build", "slicer_core_build_seconds");
      ("acc.prime-derive", "slicer_acc_prime_derive_seconds");
      ("search", "slicer_search_seconds") ]

let test_span_overhead_sane () =
  (* The real budget (< 1 us) is enforced by the Bechamel micro-suite;
     this is a coarse tripwire so a catastrophic regression (locks,
     allocation storms) fails fast even in `dune runtest`. *)
  let n = 200_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    ignore (Obs.span "test.overhead" (fun () -> ()))
  done;
  let per_span = (Unix.gettimeofday () -. t0) /. float_of_int n in
  if per_span > 20e-6 then
    Alcotest.failf "span overhead %.1f us/op is out of control" (per_span *. 1e6)

(* --- the percentile formula ------------------------------------------- *)

let test_percentile () =
  let a = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "p50" 2. (Obs.Summary.percentile a 50.);
  Alcotest.(check (float 1e-9)) "p95" 4. (Obs.Summary.percentile a 95.);
  Alcotest.(check (float 1e-9)) "p99" 4. (Obs.Summary.percentile a 99.);
  Alcotest.(check (float 1e-9)) "p25 of singleton" 9. (Obs.Summary.percentile [| 9. |] 25.);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Obs.Summary.percentile [||] 50.))

let test_counter_get_or_create () =
  let r = Obs.Registry.create () in
  let a = Obs.counter ~registry:r "shared_total" in
  let b = Obs.counter ~registry:r "shared_total" in
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  Alcotest.(check int) "same instrument by name" 2 (Obs.counter_value ~registry:r "shared_total");
  Alcotest.(check int) "absent counter reads 0" 0 (Obs.counter_value ~registry:r "absent");
  Alcotest.(check bool) "kind clash raises" true
    (try ignore (Obs.gauge ~registry:r "shared_total"); false with Invalid_argument _ -> true)

let () =
  Alcotest.run "obs"
    [ ("buckets", bucket_props);
      ( "merge",
        Alcotest.test_case "units mismatch" `Quick test_merge_units_mismatch :: merge_props );
      ("export", [ Alcotest.test_case "golden exposition" `Quick test_export_golden ]);
      ( "concurrency",
        [ Alcotest.test_case "4 domains, exact totals" `Quick test_parallel_totals_exact ] );
      ( "spans",
        [ Alcotest.test_case "records and returns" `Quick test_span_records;
          Alcotest.test_case "records on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "metric naming" `Quick test_metric_of_span;
          Alcotest.test_case "overhead tripwire" `Quick test_span_overhead_sane ] );
      ( "registry",
        [ Alcotest.test_case "percentile formula" `Quick test_percentile;
          Alcotest.test_case "get-or-create by name" `Quick test_counter_get_or_create ] ) ]
