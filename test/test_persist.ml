(* Tests for the wire codecs and file persistence: the owner → cloud and
   owner → user channels must round-trip exactly and reject malformed
   frames. *)

let prop name ?(count = 100) gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen p)

let gen_record =
  let open QCheck2.Gen in
  let* id = string_size ~gen:(char_range 'a' 'z') (int_range 1 15) in
  let* nfields = int_range 1 3 in
  let* fields =
    list_size (return nfields)
      (pair (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)) (int_range 0 65535))
  in
  return { Slicer_types.id; fields }

let gen_records = QCheck2.Gen.(list_size (int_range 0 20) gen_record)

let test_record_roundtrip () =
  let records =
    [ Slicer_types.record_of_value "simple" 42;
      { Slicer_types.id = "multi"; fields = [ ("age", 7); ("", 0); ("x", 1 lsl 29) ] } ]
  in
  match Persist.records_of_bytes (Persist.records_to_bytes records) with
  | Some back -> Alcotest.(check bool) "equal" true (records = back)
  | None -> Alcotest.fail "roundtrip failed"

let test_records_malformed () =
  Alcotest.(check bool) "garbage" true (Persist.records_of_bytes "\xff\xff" = None);
  Alcotest.(check bool) "odd fields" true
    (Persist.records_of_bytes (Bytesutil.concat [ Bytesutil.concat [ "id"; "attr" ] ]) = None);
  Alcotest.(check bool) "bad int" true
    (Persist.records_of_bytes (Bytesutil.concat [ Bytesutil.concat [ "id"; "a"; "NaN" ] ]) = None);
  Alcotest.(check bool) "empty list ok" true (Persist.records_of_bytes "" = Some [])

let owner_shipment () =
  let rng = Drbg.create ~seed:"persist" in
  let keys = Keys.generate ~tdp_bits:256 ~rng () in
  let acc_params = Rsa_acc.setup ~rng ~bits:256 () in
  let owner = Owner.create ~width:6 ~rng ~acc_params ~keys () in
  let shipment = Owner.build owner (Gen.uniform_records ~rng ~width:6 10) in
  (owner, shipment)

let test_shipment_roundtrip () =
  let _, shipment = owner_shipment () in
  match Persist.shipment_of_bytes (Persist.shipment_to_bytes shipment) with
  | None -> Alcotest.fail "roundtrip failed"
  | Some back ->
    Alcotest.(check bool) "entries" true (back.Owner.sh_entries = shipment.Owner.sh_entries);
    Alcotest.(check int) "primes" (List.length shipment.Owner.sh_primes) (List.length back.Owner.sh_primes);
    List.iter2
      (fun a b -> Alcotest.(check bool) "prime" true (Bigint.equal a b))
      shipment.Owner.sh_primes back.Owner.sh_primes;
    Alcotest.(check bool) "ac" true (Bigint.equal shipment.Owner.sh_ac back.Owner.sh_ac)

let test_shipment_feeds_cloud () =
  (* A shipment that crossed the wire must drive a cloud identically. *)
  let owner, shipment = owner_shipment () in
  let bytes = Persist.shipment_to_bytes shipment in
  match Persist.shipment_of_bytes bytes with
  | None -> Alcotest.fail "decode failed"
  | Some shipped ->
    let keys = Owner.keys owner in
    let cloud = Cloud.create ~acc_params:(Owner.acc_params owner) ~tdp_public:keys.Keys.tdp_public () in
    Cloud.install cloud shipped;
    Alcotest.(check int) "entry count" (List.length shipment.Owner.sh_entries) (Cloud.index_entries cloud);
    Alcotest.(check int) "prime count" (List.length shipment.Owner.sh_primes) (Cloud.prime_count cloud)

let test_trapdoor_state_roundtrip () =
  let owner, _ = owner_shipment () in
  let st = Owner.export_trapdoor_state owner in
  match Persist.trapdoor_state_of_bytes (Persist.trapdoor_state_to_bytes st) with
  | None -> Alcotest.fail "roundtrip failed"
  | Some back ->
    Alcotest.(check int) "size" (Hashtbl.length st) (Hashtbl.length back);
    Hashtbl.iter
      (fun w (t, j) ->
        match Hashtbl.find_opt back w with
        | Some (t', j') when String.equal t t' && j = j' -> ()
        | _ -> Alcotest.fail "binding lost")
      st

let test_file_roundtrip () =
  let path = Filename.temp_file "slicer-persist" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let payload = "\x00\x01binary\xffpayload" in
      Persist.save ~path payload;
      Alcotest.(check (option string)) "file roundtrip" (Some payload) (Persist.load ~path));
  Alcotest.(check (option string)) "missing file" None (Persist.load ~path:"/nonexistent/nope.bin")

let test_file_save_is_atomic () =
  (* [save] goes through a temp file + rename: overwriting never leaves
     a mix of old and new bytes, and no temp debris stays behind. *)
  let path = Filename.temp_file "slicer-persist" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Persist.save ~path "first generation";
      Persist.save ~path "second";
      Alcotest.(check (option string)) "overwrite is complete" (Some "second")
        (Persist.load ~path);
      let dir = Filename.dirname path and base = Filename.basename path in
      let debris =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun name ->
               name <> base
               && String.length name >= String.length base
               && String.sub name 0 (String.length base) = base)
      in
      Alcotest.(check (list string)) "no temp debris next to the file" [] debris;
      (* Truncation between writes is still a consistent (shorter) file
         — load reflects it rather than raising. *)
      let oc = open_out_bin path in
      output_string oc "second";
      close_out oc;
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      Unix.ftruncate fd 3;
      Unix.close fd;
      Alcotest.(check bool) "truncated file still loads its bytes" true
        (Persist.load ~path = Some "sec"))

let test_load_never_raises () =
  (* A directory where a file is expected: Sys_error territory. *)
  Alcotest.(check (option string)) "directory" None (Persist.load ~path:(Filename.get_temp_dir_name ()))

let test_token_bytes_roundtrip () =
  let st =
    { Slicer_types.st_trapdoor = String.make 64 '\x42'; st_updates = 3; st_g1 = String.make 16 'a'; st_g2 = String.make 16 'b' }
  in
  (match Slicer_types.token_of_bytes (Slicer_types.token_bytes st) with
   | Some back -> Alcotest.(check bool) "token roundtrip" true (st = back)
   | None -> Alcotest.fail "token roundtrip failed");
  Alcotest.(check bool) "malformed token" true (Slicer_types.token_of_bytes "junk" = None);
  Alcotest.(check bool) "negative generation" true
    (Slicer_types.token_of_bytes (Bytesutil.concat [ "t"; "-1"; "g1"; "g2" ]) = None)

let props =
  [ prop "records roundtrip" gen_records (fun records ->
        Persist.records_of_bytes (Persist.records_to_bytes records) = Some records);
    prop "records reject truncation" ~count:50 gen_records (fun records ->
        let b = Persist.records_to_bytes records in
        String.length b < 2 || Persist.records_of_bytes (String.sub b 0 (String.length b - 1)) = None)
  ]

let () =
  Alcotest.run "persist"
    [ ( "codecs",
        [ Alcotest.test_case "records roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "records malformed" `Quick test_records_malformed;
          Alcotest.test_case "shipment roundtrip" `Quick test_shipment_roundtrip;
          Alcotest.test_case "shipment feeds a cloud" `Quick test_shipment_feeds_cloud;
          Alcotest.test_case "trapdoor state roundtrip" `Quick test_trapdoor_state_roundtrip;
          Alcotest.test_case "token bytes roundtrip" `Quick test_token_bytes_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "file save is atomic" `Quick test_file_save_is_atomic;
          Alcotest.test_case "load never raises" `Quick test_load_never_raises ] );
      ("properties", props) ]
