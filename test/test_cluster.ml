(* The cluster layer, bottom-up: the pure shard-key partition function
   (range, prefix-determinism, uniformity within ±10% of even, golden
   stability across restarts), shipment splitting invariants against
   the accumulator, topology parsing and persistence, the deterministic
   sub-request-id derivation — and a live 2-shard cluster on loopback
   behind the router: results byte-identical to a single-server twin,
   exactly-once settlement across replays, and a clean busy refusal
   naming a dead shard. *)

module Wire = Net.Wire

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let q = Slicer_types.query
let sorted = List.sort String.compare

let check_ids msg expected actual =
  Alcotest.(check (list string)) msg (sorted expected) (sorted actual)

let resp_label = function
  | Wire.Welcome _ -> "Welcome"
  | Wire.Found _ -> "Found"
  | Wire.Accepted _ -> "Accepted"
  | Wire.Pong -> "Pong"
  | Wire.Stats_reply _ -> "Stats_reply"
  | Wire.Traces_reply _ -> "Traces_reply"
  | Wire.Receipt_reply _ -> "Receipt_reply"
  | Wire.Disputed _ -> "Disputed"
  | Wire.Refused { code; detail } ->
    Printf.sprintf "Refused %s (%s)" (Wire.err_code_to_string code) detail

let width = 6
let shard_counts = [ 2; 4; 8 ]

(* --- shard key ------------------------------------------------------------ *)

(* G1 keys are 16 uniform PRF bytes; the fold only reads the first 7. *)
let g1_gen = QCheck2.Gen.(string_size ~gen:char (int_range 7 32))

let shard_key_props =
  [ prop "shard in range, determined by the 7-byte prefix" ~count:500 g1_gen
      (fun g1 ->
        List.for_all
          (fun shards ->
            let s = Cluster.Shard_key.of_g1 ~shards g1 in
            let twin = String.sub g1 0 7 ^ "ignored tail bytes" in
            s >= 0 && s < shards && s = Cluster.Shard_key.of_g1 ~shards twin)
          (1 :: shard_counts));
    prop "sub-request ids are injective" ~count:500
      QCheck2.Gen.(pair (pair string (int_range 0 1024)) (pair string (int_range 0 1024)))
      (fun (((id1, s1) as p1), ((id2, s2) as p2)) ->
        QCheck2.assume (p1 <> p2);
        Cluster.Router.sub_id id1 s1 <> Cluster.Router.sub_id id2 s2) ]

(* ISSUE acceptance: over random PRF labels every shard count in
   {2,4,8} stays within ±10% of a perfectly even split. 20k labels put
   10% of the mean at >5 standard deviations, so a failure means the
   fold is biased, not that the draw was unlucky. *)
let test_shard_key_uniformity () =
  let n = 20_000 in
  let labels =
    let rng = Drbg.create ~seed:"shard-uniformity" in
    List.init n (fun _ -> Drbg.generate rng 16)
  in
  List.iter
    (fun shards ->
      let counts = Array.make shards 0 in
      List.iter
        (fun g1 ->
          let s = Cluster.Shard_key.of_g1 ~shards g1 in
          counts.(s) <- counts.(s) + 1)
        labels;
      let even = n / shards in
      Array.iteri
        (fun i c ->
          if abs (c - even) > even / 10 then
            Alcotest.failf "%d shards: shard %d got %d labels, even share is %d (±10%%)"
              shards i c even)
        counts)
    shard_counts

(* Routing must survive a process restart: it is a pure function of the
   key bytes, pinned here both by goldens (hand-computed from the
   56-bit big-endian prefix fold) and by recomputing a whole assignment
   from an identically-seeded generator. *)
let test_shard_key_stability () =
  let zeros = String.make 16 '\000' in
  let set i c = let b = Bytes.of_string zeros in Bytes.set b i c; Bytes.to_string b in
  let goldens =
    [ (zeros, [ (2, 0); (3, 0); (4, 0); (5, 0); (8, 0) ]);
      (* prefix56 = 1 *)
      (set 6 '\001', [ (2, 1); (3, 1); (4, 1); (5, 1); (8, 1) ]);
      (* prefix56 = 255 *)
      (set 6 '\255', [ (2, 1); (3, 0); (4, 3); (5, 0); (8, 7) ]);
      (* prefix56 = 2^48 *)
      (set 0 '\001', [ (2, 0); (3, 1); (4, 0); (5, 1); (8, 0) ]);
      (* prefix56 = 0x736c696365722 1 = "slicer!" *)
      ("slicer!-padding-", [ (2, 1); (3, 0); (4, 1); (5, 0); (8, 1) ]) ]
  in
  List.iter
    (fun (g1, expected) ->
      List.iter
        (fun (shards, shard) ->
          Alcotest.(check int)
            (Printf.sprintf "golden %S mod %d" g1 shards)
            shard
            (Cluster.Shard_key.of_g1 ~shards g1))
        expected)
    goldens;
  let assignment seed =
    let rng = Drbg.create ~seed in
    List.init 500 (fun _ ->
        let g1 = Drbg.generate rng 16 in
        List.map (fun shards -> Cluster.Shard_key.of_g1 ~shards g1) shard_counts)
  in
  Alcotest.(check bool) "identical across a restart" true
    (assignment "shard-restart" = assignment "shard-restart")

(* --- a built system shared by the pure splitting tests ------------------- *)

let shared =
  lazy
    (let rng = Drbg.create ~seed:"cluster-sys" in
     let keys = Keys.generate ~tdp_bits:512 ~rng () in
     let params = Rsa_acc.setup ~rng ~bits:512 () in
     let owner = Owner.create ~width ~rng ~acc_params:params ~keys () in
     let records = Gen.uniform_records ~rng ~width 30 in
     let shipment = Owner.build owner records in
     (owner, keys, params, records, shipment))

(* Tokens and data must route identically with no shared state: every
   search token's [st_g1] is some shipment group's [kg_g1], so the
   token lands on the shard holding that keyword's counter chain. *)
let test_tokens_route_with_their_group () =
  let owner, keys, _, _, shipment = Lazy.force shared in
  let user =
    User.create ~keys:(Keys.for_user keys) ~width (Owner.export_trapdoor_state owner)
  in
  let rng = Drbg.create ~seed:"route-tokens" in
  let group_keys =
    List.map (fun g -> g.Owner.kg_g1) shipment.Owner.sh_groups
  in
  List.iter
    (fun query ->
      let tokens = User.gen_tokens ~rng user query in
      Alcotest.(check bool) "query produced tokens" true (tokens <> []);
      List.iter
        (fun (t : Slicer_types.search_token) ->
          Alcotest.(check bool) "token key appears in the shipment groups" true
            (List.mem t.Slicer_types.st_g1 group_keys);
          List.iter
            (fun shards ->
              Alcotest.(check int)
                (Printf.sprintf "token and its group agree at %d shards" shards)
                (Cluster.Shard_key.of_g1 ~shards t.Slicer_types.st_g1)
                (Cluster.Shard_key.of_token ~shards t))
            shard_counts)
        tokens)
    [ q 10 Slicer_types.Gt; q 40 Slicer_types.Lt; q 17 Slicer_types.Eq ]

(* --- shipment splitting --------------------------------------------------- *)

let sorted_entries es = List.sort compare es
let prime_strings ps = sorted (List.map Bigint.to_string ps)

let test_split_invariants () =
  let _, _, params, _, shipment = Lazy.force shared in
  let k = 3 in
  let bases = Array.make k params.Rsa_acc.generator in
  match Cluster.Split.shipment ~params ~base_acs:bases shipment with
  | Error e -> Alcotest.failf "split: %s" e
  | Ok parts ->
    Alcotest.(check int) "one shipment per shard" k (Array.length parts);
    Array.iteri
      (fun i (part : Owner.shipment) ->
        List.iter
          (fun g ->
            Alcotest.(check int) "group routed to its own shard" i
              (Cluster.Shard_key.of_group ~shards:k g))
          part.Owner.sh_groups;
        Alcotest.(check (list (pair string string)))
          "per-shard entries are the concatenation of its groups"
          (List.concat_map (fun g -> g.Owner.kg_entries) part.Owner.sh_groups)
          part.Owner.sh_entries;
        Alcotest.(check (list string))
          "per-shard primes are its groups' primes, in order"
          (List.map (fun g -> Bigint.to_string g.Owner.kg_prime) part.Owner.sh_groups)
          (List.map Bigint.to_string part.Owner.sh_primes);
        (* Ac_i = g ^ (prod of this shard's primes): never another
           shard's — what keeps Algorithm-5 checks per-shard. *)
        Alcotest.(check bool) "per-shard accumulator lifts only its own primes" true
          (Bigint.equal part.Owner.sh_ac
             (Rsa_acc.add_batch params params.Rsa_acc.generator part.Owner.sh_primes)))
      parts;
    let flat f = Array.to_list parts |> List.concat_map f in
    Alcotest.(check (list (pair string string))) "no entry lost or duplicated"
      (sorted_entries shipment.Owner.sh_entries)
      (sorted_entries (flat (fun p -> p.Owner.sh_entries)));
    Alcotest.(check (list string)) "no prime lost or duplicated"
      (prime_strings shipment.Owner.sh_primes)
      (prime_strings (flat (fun p -> p.Owner.sh_primes)))

let test_split_degenerate_and_archive () =
  let _, _, params, _, shipment = Lazy.force shared in
  (* A 1-shard split is the identity: same entries in order, and the
     accumulation value the owner computed. *)
  (match Cluster.Split.shipment ~params ~base_acs:[| params.Rsa_acc.generator |] shipment with
   | Error e -> Alcotest.failf "1-shard split: %s" e
   | Ok [| only |] ->
     Alcotest.(check (list (pair string string))) "identity on entries"
       shipment.Owner.sh_entries only.Owner.sh_entries;
     Alcotest.(check bool) "identity on the accumulator" true
       (Bigint.equal shipment.Owner.sh_ac only.Owner.sh_ac)
   | Ok parts -> Alcotest.failf "1-shard split produced %d parts" (Array.length parts));
  (* Pre-cluster archive shipments carry no groups and cannot be split
     faithfully — that must be a structured error, not a guess. *)
  (match
     Cluster.Split.shipment ~params
       ~base_acs:(Array.make 2 params.Rsa_acc.generator)
       { shipment with Owner.sh_groups = [] }
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "groupless shipment with entries was split");
  (* ... while a genuinely empty shipment splits into empty slices with
     every shard's accumulator untouched. *)
  let empty =
    { Owner.sh_entries = []; sh_primes = []; sh_ac = shipment.Owner.sh_ac; sh_groups = [] }
  in
  let bases = [| shipment.Owner.sh_ac; params.Rsa_acc.generator |] in
  match Cluster.Split.shipment ~params ~base_acs:bases empty with
  | Error e -> Alcotest.failf "empty split: %s" e
  | Ok parts ->
    Array.iteri
      (fun i (p : Owner.shipment) ->
        Alcotest.(check bool) "empty slice leaves Ac_i unchanged" true
          (Bigint.equal bases.(i) p.Owner.sh_ac))
      parts

(* --- topology -------------------------------------------------------------- *)

let test_topology_endpoints () =
  let ok s expected =
    match Cluster.Topology.endpoint_of_string s with
    | Ok ep ->
      Alcotest.(check bool) (s ^ " parses") true (ep = expected);
      Alcotest.(check string) (s ^ " round-trips")
        (Cluster.Topology.endpoint_to_string ep)
        (Cluster.Topology.endpoint_to_string expected)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "127.0.0.1:7071" (Net.Server.Tcp ("127.0.0.1", 7071));
  ok "::1:7071" (Net.Server.Tcp ("::1", 7071));
  ok "[::1]:8080" (Net.Server.Tcp ("::1", 8080));
  ok "[fe80::2]:9000" (Net.Server.Tcp ("fe80::2", 9000));
  ok "unix:/tmp/slicer.sock" (Net.Server.Unix_socket "/tmp/slicer.sock");
  ok "unix:/var/run/sock:with:colons" (Net.Server.Unix_socket "/var/run/sock:with:colons");
  List.iter
    (fun s ->
      match Cluster.Topology.endpoint_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S parsed as an endpoint" s)
    [ "nohost"; "host:"; "host:notaport"; "host:0"; "host:70000"; ":7071"; "unix:";
      "[::1:8080"; "::1]:8080" ];
  Alcotest.(check bool) "empty topology refused" true
    (try ignore (Cluster.Topology.create []); false with Invalid_argument _ -> true)

(* The printer and the parser are exact inverses: any endpoint —
   hostnames, IPv6 literals (bracketed on print), unix paths with
   colons — survives a print/parse round trip structurally intact.
   [unix] is excluded from the host alphabet because a host literally
   named "unix" is genuinely ambiguous with the unix: scheme prefix. *)
let endpoint_gen =
  QCheck2.Gen.(
    let host =
      string_size ~gen:(oneofl [ 'a'; 'z'; '0'; '9'; '.'; ':'; '-' ]) (int_range 1 16)
    in
    let path =
      string_size ~gen:(oneofl [ '/'; 't'; 'm'; 'p'; '-'; '.'; ':'; '7' ]) (int_range 1 20)
    in
    oneof
      [ map2 (fun h p -> Net.Server.Tcp (h, p)) host (int_range 1 65535);
        map (fun p -> Net.Server.Unix_socket p) path ])

let topology_props =
  [ prop "endpoint strings round-trip" ~count:500 endpoint_gen (fun ep ->
        match
          Cluster.Topology.endpoint_of_string (Cluster.Topology.endpoint_to_string ep)
        with
        | Ok ep' -> ep' = ep
        | Error _ -> false) ]

let test_topology_save_load () =
  let dir = Filename.temp_file "slicer-topo" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "topology" in
      let topo =
        Cluster.Topology.create
          [ Net.Server.Tcp ("127.0.0.1", 7071);
            Net.Server.Unix_socket "/var/run/slicer-1.sock";
            Net.Server.Tcp ("10.0.0.7", 9000) ]
      in
      Cluster.Topology.save ~path topo;
      match Cluster.Topology.load ~path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok back ->
        Alcotest.(check int) "shard count survives" (Cluster.Topology.shards topo)
          (Cluster.Topology.shards back);
        Alcotest.(check (list string)) "shard order survives"
          (List.map Cluster.Topology.endpoint_to_string (Cluster.Topology.endpoints topo))
          (List.map Cluster.Topology.endpoint_to_string (Cluster.Topology.endpoints back));
        (* A corrupt file is a structured error, not a crash. *)
        let oc = open_out (Filename.concat dir "garbage") in
        output_string oc "not a topology";
        close_out oc;
        (match Cluster.Topology.load ~path:(Filename.concat dir "garbage") with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "garbage loaded as a topology"))

(* --- the live 2-shard cluster ---------------------------------------------- *)

(* Two shard services behind a router, and a lone single-server twin
   built from the same owner materials: every query must come back
   verified with the same ids from both, the router's merged reply must
   carry per-shard parts whose claims re-assemble the full answer, a
   replayed pinned request must not settle twice anywhere, and a killed
   shard must surface as a busy refusal naming it. *)
let test_cluster_end_to_end () =
  let rng = Drbg.create ~seed:"cluster-e2e" in
  let keys = Keys.generate ~tdp_bits:512 ~rng () in
  let acc_params = Rsa_acc.setup ~rng ~bits:512 () in
  let owner = Owner.create ~width ~rng ~acc_params ~keys () in
  let records = Gen.uniform_records ~rng ~width 40 in
  let shipment = Owner.build owner records in
  let svc_solo = Net.Service.create ~instance:"solo" () in
  let svc0 = Net.Service.create ~instance:"shard-0" ~shard:(0, 2) () in
  let svc1 = Net.Service.create ~instance:"shard-1" ~shard:(1, 2) () in
  let srv_solo = Net.Server.start (Net.Service.handle svc_solo) in
  let srv0 = Net.Server.start (Net.Service.handle svc0) in
  let srv1 = Net.Server.start (Net.Service.handle svc1) in
  let topo =
    Cluster.Topology.create [ Net.Server.endpoint srv0; Net.Server.endpoint srv1 ]
  in
  let router =
    Cluster.Router.create
      ~config:
        { Cluster.Router.default_config with
          client =
            { Net.Client.default_config with max_attempts = 2; backoff_base = 0.02 } }
      ~instance:"router-test" topo
  in
  let srv_router = Net.Server.start (Cluster.Router.handle router) in
  Fun.protect
    ~finally:(fun () ->
      Net.Server.stop srv_router;
      Cluster.Router.close router;
      (* srv1 may already be stopped by the dead-shard leg. *)
      (try Net.Server.stop srv1 with _ -> ());
      Net.Server.stop srv0;
      Net.Server.stop srv_solo)
    (fun () ->
      let connect ?(provision = true) name srv =
        match
          Net.Client.connect ~name ~provision (Net.Server.endpoint srv)
        with
        | Ok c -> c
        | Error e -> Alcotest.failf "connect %s: %s" name (Net.Client.error_to_string e)
      in
      let build c =
        Net.Client.build c ~width ~payment:500 ~acc:acc_params
          ~tdp_public:keys.Keys.tdp_public ~user_keys:(Keys.for_user keys) ~shipment
          ~trapdoor:(Owner.export_trapdoor_state owner)
      in
      (* One Build request to the router boots the whole cluster; the
         same shipment boots the twin. *)
      let oc_r = connect ~provision:false "e2e-owner" srv_router in
      (match build oc_r with
       | Ok g -> Alcotest.(check int) "cluster built at generation 1" 1 g
       | Error e -> Alcotest.failf "cluster build: %s" (Net.Client.error_to_string e));
      let oc_s = connect ~provision:false "e2e-owner" srv_solo in
      (match build oc_s with
       | Ok g -> Alcotest.(check int) "twin built at generation 1" 1 g
       | Error e -> Alcotest.failf "twin build: %s" (Net.Client.error_to_string e));
      (* The router's merged Welcome declares the topology; a stale
         protocol is refused before any fan-out. *)
      let uc_r = connect "e2e-user" srv_router in
      (match
         Net.Client.rpc uc_r (Wire.Hello { client = "e2e-user"; proto = Wire.proto_version })
       with
       | Ok (Wire.Welcome p) ->
         Alcotest.(check int) "welcome names both shards" 2 p.Wire.pv_shards;
         Alcotest.(check string) "welcome names the router" "router-test" p.Wire.pv_instance
       | Ok _ -> Alcotest.fail "hello through the router did not provision"
       | Error e -> Alcotest.failf "hello: %s" (Net.Client.error_to_string e));
      (match Cluster.Router.handle router (Wire.Hello { client = "old"; proto = 1 }) with
       | Wire.Refused { code = Wire.Version_mismatch; _ } -> ()
       | _ -> Alcotest.fail "protocol 1 hello not refused as a version mismatch");
      (* Merged stats name the router and its shard sections. *)
      (match Cluster.Router.handle router Wire.Stats with
       | Wire.Stats_reply { st_json; _ } ->
         let contains needle =
           let nh = String.length st_json and nn = String.length needle in
           let rec go i = i + nn <= nh && (String.sub st_json i nn = needle || go (i + 1)) in
           go 0
         in
         Alcotest.(check bool) "merged stats carry the shard list" true
           (contains "\"router\"" && contains "\"shards\"")
       | r -> Alcotest.failf "stats through the router: %s" (resp_label r));
      (* Every query: verified on both paths, identical id sets, and
         both equal to the plaintext reference. *)
      let uc_s = connect "e2e-user" srv_solo in
      List.iter
        (fun query ->
          match (Net.Client.search uc_r query, Net.Client.search uc_s query) with
          | Ok cluster, Ok solo ->
            Alcotest.(check bool) "cluster search verified" true cluster.Protocol.so_verified;
            Alcotest.(check bool) "solo search verified" true solo.Protocol.so_verified;
            check_ids "cluster matches the single server" solo.Protocol.so_ids
              cluster.Protocol.so_ids;
            check_ids "both match the reference"
              (Slicer_types.reference_search records query)
              cluster.Protocol.so_ids
          | Error e, _ -> Alcotest.failf "cluster search: %s" (Net.Client.error_to_string e)
          | _, Error e -> Alcotest.failf "solo search: %s" (Net.Client.error_to_string e))
        [ q 10 Slicer_types.Gt; q 20 Slicer_types.Lt; q 17 Slicer_types.Eq;
          q 55 Slicer_types.Gt ];
      (* A pinned raw search: the reply must carry per-shard parts whose
         merged claims cover every token, and replaying the same
         request id must not settle anywhere a second time. *)
      let user =
        User.create ~keys:(Keys.for_user keys) ~width (Owner.export_trapdoor_state owner)
      in
      let trng = Drbg.create ~seed:"e2e-tokens" in
      let tokens = User.gen_tokens ~rng:trng user (q 15 Slicer_types.Lt) in
      let pinned =
        Wire.Search
          { client = "e2e-user"; request_id = "pinned#1"; batched = false; tokens; trace = None }
      in
      let reply req =
        match Net.Client.rpc uc_r req with
        | Ok (Wire.Found r) -> r
        | Ok r -> Alcotest.failf "pinned search: %s" (resp_label r)
        | Error e -> Alcotest.failf "pinned search: %s" (Net.Client.error_to_string e)
      in
      let r1 = reply pinned in
      Alcotest.(check bool) "router reply carries shard parts" true (r1.Wire.sr_parts <> []);
      List.iter
        (fun (p : Wire.shard_part) ->
          Alcotest.(check bool) "part names a real shard" true
            (p.Wire.shp_shard = 0 || p.Wire.shp_shard = 1))
        r1.Wire.sr_parts;
      Alcotest.(check int) "one merged claim per token" (List.length tokens)
        (List.length r1.Wire.sr_claims);
      Alcotest.(check int) "parts re-assemble the full claim set"
        (List.length r1.Wire.sr_claims)
        (List.fold_left (fun n (p : Wire.shard_part) -> n + List.length p.Wire.shp_claims)
           0 r1.Wire.sr_parts);
      let settled () =
        ( Net.Service.searches_settled svc0,
          Net.Service.searches_settled svc1,
          Net.Service.searches_settled svc_solo )
      in
      let before = settled () in
      let r2 = reply pinned in
      Alcotest.(check bool) "replay settled nowhere" true (before = settled ());
      Alcotest.(check string) "replayed reply is for the pinned id" r1.Wire.sr_request_id
        r2.Wire.sr_request_id;
      Alcotest.(check int) "replayed claim count unchanged"
        (List.length r1.Wire.sr_claims) (List.length r2.Wire.sr_claims);
      Alcotest.(check bool) "replayed accumulator unchanged" true
        (Bigint.equal r1.Wire.sr_ac r2.Wire.sr_ac);
      (* Insert through the router: both shards bump together and the
         new record is searchable on both paths. *)
      let fresh = Slicer_types.record_of_value "cluster-new" 3 in
      let shipment2 = Owner.insert owner [ fresh ] in
      let insert c =
        Net.Client.insert c ~shipment:shipment2
          ~trapdoor:(Owner.export_trapdoor_state owner)
      in
      (match insert oc_r with
       | Ok g -> Alcotest.(check int) "cluster generation bumped" 2 g
       | Error e -> Alcotest.failf "cluster insert: %s" (Net.Client.error_to_string e));
      (match insert oc_s with
       | Ok g -> Alcotest.(check int) "twin generation bumped" 2 g
       | Error e -> Alcotest.failf "twin insert: %s" (Net.Client.error_to_string e));
      (match (Net.Client.refresh uc_r, Net.Client.refresh uc_s) with
       | Ok (), Ok () -> ()
       | Error e, _ | _, Error e ->
         Alcotest.failf "refresh: %s" (Net.Client.error_to_string e));
      Alcotest.(check int) "router provision sees the new generation" 2
        (Net.Client.generation uc_r);
      (match (Net.Client.search uc_r (q 3 Slicer_types.Eq), Net.Client.search uc_s (q 3 Slicer_types.Eq)) with
       | Ok cluster, Ok solo ->
         Alcotest.(check bool) "post-insert cluster search verified" true
           cluster.Protocol.so_verified;
         Alcotest.(check bool) "insert visible through the router" true
           (List.mem "cluster-new" cluster.Protocol.so_ids);
         check_ids "post-insert twins agree" solo.Protocol.so_ids cluster.Protocol.so_ids
       | Error e, _ | _, Error e ->
         Alcotest.failf "post-insert search: %s" (Net.Client.error_to_string e));
      (* One traced search: the scraped, reassembled tree must span the
         router fan-out, both shards' phases and the merge under a
         single trace id, with properly nested intervals. *)
      Trace.set_slow_ms (Some 0.);
      ignore (Trace.drain () : Trace.span list);
      Fun.protect
        ~finally:(fun () -> Trace.set_slow_ms None)
        (fun () ->
          match Net.Client.search uc_r (q 10 Slicer_types.Gt) with
          | Ok out ->
            Alcotest.(check bool) "traced search verified" true out.Protocol.so_verified
          | Error e -> Alcotest.failf "traced search: %s" (Net.Client.error_to_string e));
      let spans =
        match Net.Client.traces uc_r with
        | Ok spans -> spans
        | Error e -> Alcotest.failf "traces drain: %s" (Net.Client.error_to_string e)
      in
      (match Trace.Tree.assemble spans with
       | [ tree ] ->
         let all = ref [] in
         let rec walk parent node =
           let sp = node.Trace.Tree.n_span in
           all := sp :: !all;
           Alcotest.(check bool)
             (Printf.sprintf "span %s is monotone" sp.Trace.sp_name)
             true
             (sp.Trace.sp_start_ns <= sp.Trace.sp_end_ns);
           (match (parent : Trace.span option) with
            | Some p ->
              Alcotest.(check bool)
                (Printf.sprintf "span %s nests inside %s" sp.Trace.sp_name p.Trace.sp_name)
                true
                (p.Trace.sp_start_ns <= sp.Trace.sp_start_ns
                && sp.Trace.sp_end_ns <= p.Trace.sp_end_ns)
            | None -> ());
           List.iter (walk (Some sp)) node.Trace.Tree.n_children
         in
         List.iter (walk None) tree.Trace.Tree.t_roots;
         let named n = List.filter (fun sp -> sp.Trace.sp_name = n) !all in
         Alcotest.(check int) "one router root span" 1
           (List.length (named "router.search"));
         Alcotest.(check int) "one merge span" 1 (List.length (named "router.merge"));
         let shard_tags name =
           List.sort compare
             (List.filter_map
                (fun sp -> List.assoc_opt "shard" sp.Trace.sp_tags)
                (named name))
         in
         Alcotest.(check (list string)) "fan-out hit both shards" [ "0"; "1" ]
           (shard_tags "router.shard");
         Alcotest.(check (list string)) "both shards recorded their search phase"
           [ "0"; "1" ] (shard_tags "service.search")
       | l -> Alcotest.failf "expected one assembled trace, got %d trees" (List.length l));
      (* Kill shard 1. A search whose tokens touch it must come back as
         a busy refusal naming the shard — never a half answer. *)
      Net.Server.stop srv1;
      let user2 =
        User.create ~keys:(Keys.for_user keys) ~width (Owner.export_trapdoor_state owner)
      in
      let krng = Drbg.create ~seed:"e2e-kill-tokens" in
      let rec tokens_for_shard1 v =
        if v >= 1 lsl width then Alcotest.fail "no query routed to shard 1"
        else
          let ts = User.gen_tokens ~rng:krng user2 (q v Slicer_types.Eq) in
          if List.exists (fun t -> Cluster.Shard_key.of_token ~shards:2 t = 1) ts then ts
          else tokens_for_shard1 (v + 1)
      in
      let ts = tokens_for_shard1 0 in
      (match
         Cluster.Router.handle router
           (Wire.Search
              { client = "e2e-user"; request_id = "down#1"; batched = false; tokens = ts; trace = None })
       with
       | Wire.Refused { code = Wire.Busy; detail } ->
         let contains needle =
           let nh = String.length detail and nn = String.length needle in
           let rec go i = i + nn <= nh && (String.sub detail i nn = needle || go (i + 1)) in
           go 0
         in
         Alcotest.(check bool)
           (Printf.sprintf "refusal names the dead shard (got %S)" detail)
           true (contains "shard 1")
       | Wire.Refused { code; detail } ->
         Alcotest.failf "dead shard refused as %s (%s), wanted busy"
           (Wire.err_code_to_string code) detail
       | _ -> Alcotest.fail "search touching a dead shard was answered");
      Net.Client.close uc_s;
      Net.Client.close uc_r;
      Net.Client.close oc_s;
      Net.Client.close oc_r)

let () =
  Alcotest.run "cluster"
    [ ("shard key",
       [ Alcotest.test_case "uniform within 10% at 2/4/8 shards" `Quick
           test_shard_key_uniformity;
         Alcotest.test_case "stable across restarts (goldens)" `Quick
           test_shard_key_stability;
         Alcotest.test_case "tokens route with their keyword group" `Quick
           test_tokens_route_with_their_group ]
       @ shard_key_props);
      ("split",
       [ Alcotest.test_case "invariants at 3 shards" `Quick test_split_invariants;
         Alcotest.test_case "degenerate and archive shipments" `Quick
           test_split_degenerate_and_archive ]);
      ("topology",
       [ Alcotest.test_case "endpoint parsing" `Quick test_topology_endpoints;
         Alcotest.test_case "save and load" `Quick test_topology_save_load ]
       @ topology_props);
      ("router",
       [ Alcotest.test_case "2-shard cluster end to end" `Quick test_cluster_end_to_end ]) ]
