(* Tests for the ServeDB-style baseline: dyadic decomposition
   correctness, end-to-end verified range search against a plaintext
   oracle, tamper detection, and completeness via absence proofs. *)

let prop name ?(count = 200) gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen p)

let key = Servedb.keygen ~rng:(Drbg.create ~seed:"servedb-key")

(* --- dyadic ------------------------------------------------------------- *)

let test_cover_basics () =
  let width = 4 in
  (* Full domain: one level-0 segment. *)
  (match Dyadic.cover ~width ~lo:0 ~hi:15 with
   | [ seg ] -> Alcotest.(check int) "level 0" 0 seg.Dyadic.seg_level
   | _ -> Alcotest.fail "full domain should be one segment");
  (* Single value: one level-width segment. *)
  (match Dyadic.cover ~width ~lo:7 ~hi:7 with
   | [ seg ] ->
     Alcotest.(check int) "leaf level" width seg.Dyadic.seg_level;
     Alcotest.(check int) "leaf lo" 7 seg.Dyadic.seg_lo
   | _ -> Alcotest.fail "single value should be one segment");
  Alcotest.check_raises "bad range" (Invalid_argument "Dyadic.cover: invalid range") (fun () ->
      ignore (Dyadic.cover ~width ~lo:5 ~hi:4))

let test_segments_of_value () =
  let segs = Dyadic.segments_of_value ~width:4 5 in
  Alcotest.(check int) "width+1 levels" 5 (List.length segs);
  List.iter
    (fun seg -> Alcotest.(check bool) "contains value" true (Dyadic.mem ~width:4 seg 5))
    segs

let dyadic_props =
  [ prop "cover is exact and disjoint"
      QCheck2.Gen.(
        let* width = int_range 2 12 in
        let* a = int_range 0 ((1 lsl width) - 1) in
        let* b = int_range 0 ((1 lsl width) - 1) in
        return (width, Stdlib.min a b, Stdlib.max a b))
      (fun (width, lo, hi) ->
        let segs = Dyadic.cover ~width ~lo ~hi in
        (* Exactness: v covered iff lo <= v <= hi; disjointness: never
           covered twice. *)
        let ok = ref true in
        for v = 0 to (1 lsl width) - 1 do
          let hits = List.length (List.filter (fun s -> Dyadic.mem ~width s v) segs) in
          let expected = if v >= lo && v <= hi then 1 else 0 in
          if hits <> expected then ok := false
        done;
        !ok && List.length segs <= (2 * width) + 1);
    prop "value segments match labels"
      QCheck2.Gen.(
        let* width = int_range 2 12 in
        let* v = int_range 0 ((1 lsl width) - 1) in
        return (width, v))
      (fun (width, v) ->
        List.for_all
          (fun seg -> String.equal (Dyadic.label ~width seg) (Bitvec.prefix ~width v seg.Dyadic.seg_level))
          (Dyadic.segments_of_value ~width v))
  ]

(* --- servedb end-to-end --------------------------------------------------- *)

let width = 6

let db =
  let rng = Drbg.create ~seed:"servedb-db" in
  List.init 40 (fun i -> (Printf.sprintf "R%d" i, Drbg.uniform_int rng (1 lsl width)))

let server = Servedb.build key ~width db

let oracle lo hi = List.filter_map (fun (id, v) -> if v >= lo && v <= hi then Some id else None) db

let run_range lo hi =
  let rsp = Servedb.search key server ~width ~lo ~hi in
  Servedb.verify_and_decrypt key ~root:(Servedb.root server) ~width ~lo ~hi rsp

let test_range_oracle () =
  List.iter
    (fun (lo, hi) ->
      match run_range lo hi with
      | None -> Alcotest.failf "verification failed for [%d,%d]" lo hi
      | Some ids ->
        Alcotest.(check (list string))
          (Printf.sprintf "[%d,%d]" lo hi)
          (List.sort compare (oracle lo hi))
          (List.sort compare ids))
    [ (0, 63); (0, 0); (63, 63); (10, 20); (31, 32); (5, 58); (42, 42) ]

let test_empty_range_absence () =
  (* A range with no matching records must still verify (completeness
     via absence proofs) and return nothing. *)
  let empty =
    let rec find lo = if oracle lo lo = [] then lo else find (lo + 1) in
    find 0
  in
  match run_range empty empty with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "expected no results"
  | None -> Alcotest.fail "absence proofs must verify"

let test_tamper_detected () =
  let lo, hi = (10, 50) in
  let rsp = Servedb.search key server ~width ~lo ~hi in
  (* Drop one present leaf entirely: the missing cover tag has neither
     inclusion nor absence evidence. *)
  (match rsp.Servedb.rsp_present with
   | _ :: rest ->
     let tampered = { rsp with Servedb.rsp_present = rest } in
     (match Servedb.verify_and_decrypt key ~root:(Servedb.root server) ~width ~lo ~hi tampered with
      | None -> ()
      | Some _ -> Alcotest.fail "dropped leaf must be detected")
   | [] -> Alcotest.fail "expected at least one present leaf");
  (* Tamper with the IDs inside a leaf: the Merkle proof breaks. *)
  (match rsp.Servedb.rsp_present with
   | ev :: rest ->
     let forged = { ev with Servedb.ev_ids = List.tl ev.Servedb.ev_ids } in
     let tampered = { rsp with Servedb.rsp_present = forged :: rest } in
     (match Servedb.verify_and_decrypt key ~root:(Servedb.root server) ~width ~lo ~hi tampered with
      | None -> ()
      | Some _ -> Alcotest.fail "forged leaf must be detected")
   | [] -> ())

let test_wrong_root_rejected () =
  let lo, hi = (0, 63) in
  let rsp = Servedb.search key server ~width ~lo ~hi in
  let other = Servedb.build key ~width [ ("X", 1) ] in
  match Servedb.verify_and_decrypt key ~root:(Servedb.root other) ~width ~lo ~hi rsp with
  | None -> ()
  | Some _ -> Alcotest.fail "stale root must be rejected"

let test_insert_rebuilds () =
  let server' = Servedb.insert key server ~width [ ("fresh", 33) ] in
  Alcotest.(check bool) "root changed" false (String.equal (Servedb.root server) (Servedb.root server'));
  let rsp = Servedb.search key server' ~width ~lo:33 ~hi:33 in
  match Servedb.verify_and_decrypt key ~root:(Servedb.root server') ~width ~lo:33 ~hi:33 rsp with
  | Some ids -> Alcotest.(check bool) "fresh found" true (List.mem "fresh" ids)
  | None -> Alcotest.fail "post-insert verification failed"

let servedb_props =
  [ prop "random ranges match oracle" ~count:60
      QCheck2.Gen.(
        let* a = int_range 0 ((1 lsl width) - 1) in
        let* b = int_range 0 ((1 lsl width) - 1) in
        return (Stdlib.min a b, Stdlib.max a b))
      (fun (lo, hi) ->
        match run_range lo hi with
        | None -> false
        | Some ids -> List.sort compare ids = List.sort compare (oracle lo hi)) ]

let () =
  Alcotest.run "servedb"
    [ ( "dyadic",
        [ Alcotest.test_case "cover basics" `Quick test_cover_basics;
          Alcotest.test_case "segments of value" `Quick test_segments_of_value ] );
      ("dyadic properties", dyadic_props);
      ( "servedb",
        [ Alcotest.test_case "range oracle" `Quick test_range_oracle;
          Alcotest.test_case "empty range absence" `Quick test_empty_range_absence;
          Alcotest.test_case "tamper detected" `Quick test_tamper_detected;
          Alcotest.test_case "wrong root rejected" `Quick test_wrong_root_rejected;
          Alcotest.test_case "insert rebuilds" `Quick test_insert_rebuilds ] );
      ("servedb properties", servedb_props) ]
