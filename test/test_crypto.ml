(* Known-answer tests (FIPS 180-4, RFC 4231, FIPS 197) and properties for
   the crypto substrate. *)

let hex = Bytesutil.of_hex

let check_hex msg expected actual =
  Alcotest.(check string) msg expected (Bytesutil.to_hex actual)

let prop name ?(count = 200) gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen p)

let gen_bytes ?(max_len = 200) () =
  let open QCheck2.Gen in
  let* n = int_range 0 max_len in
  map (fun l -> String.init (List.length l) (List.nth l)) (list_size (return n) (map Char.chr (int_range 0 255)))

let gen_block = QCheck2.Gen.map (fun s -> s) (gen_bytes ~max_len:0 ())

(* --- Bytesutil ------------------------------------------------------ *)

let test_hex_roundtrip () =
  Alcotest.(check string) "hex" "00ff10" (Bytesutil.to_hex "\x00\xff\x10");
  Alcotest.(check string) "unhex" "\x00\xff\x10" (Bytesutil.of_hex "00ff10");
  Alcotest.check_raises "odd" (Invalid_argument "Bytesutil.of_hex: odd length") (fun () ->
      ignore (Bytesutil.of_hex "abc"))

let test_xor () =
  Alcotest.(check string) "xor" "\x01\x01" (Bytesutil.xor "\x00\xff" "\x01\xfe");
  Alcotest.(check string) "self-inverse" "ab" (Bytesutil.xor (Bytesutil.xor "ab" "xy") "xy")

let test_const_equal () =
  Alcotest.(check bool) "eq" true (Bytesutil.const_equal "abc" "abc");
  Alcotest.(check bool) "neq" false (Bytesutil.const_equal "abc" "abd");
  Alcotest.(check bool) "len" false (Bytesutil.const_equal "abc" "ab")

let test_concat_injective () =
  (* ("ab","c") and ("a","bc") must encode differently. *)
  Alcotest.(check bool) "no collision" false
    (String.equal (Bytesutil.concat [ "ab"; "c" ]) (Bytesutil.concat [ "a"; "bc" ]))

(* --- SHA-256 (FIPS 180-4 + NIST CAVS vectors) ----------------------- *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" (Sha256.digest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (Sha256.digest "abc");
  check_hex "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'));
  (* Lengths around the 55/56/64-byte padding boundaries. *)
  check_hex "55 bytes"
    "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
    (Sha256.digest (String.make 55 'a'));
  check_hex "56 bytes"
    "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
    (Sha256.digest (String.make 56 'a'));
  check_hex "64 bytes"
    "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
    (Sha256.digest (String.make 64 'a'))

let test_sha256_streaming () =
  let whole = Sha256.digest "hello streaming world" in
  let ctx = Sha256.init () in
  Sha256.update ctx "hello ";
  Sha256.update ctx "streaming";
  Sha256.update ctx " world";
  Alcotest.(check string) "streamed = one-shot" (Bytesutil.to_hex whole)
    (Bytesutil.to_hex (Sha256.finalize ctx))

let test_sha256_copy () =
  (* A copied context forks the stream: both sides must finalize to the
     digest of their own full input, independently. *)
  let ctx = Sha256.init () in
  Sha256.update ctx "common prefix|";
  let fork = Sha256.copy ctx in
  Sha256.update ctx "left";
  Sha256.update fork "right branch that is much longer than one block ";
  Sha256.update fork (String.make 100 'r');
  check_hex "left" (Bytesutil.to_hex (Sha256.digest "common prefix|left")) (Sha256.finalize ctx);
  check_hex "right"
    (Bytesutil.to_hex
       (Sha256.digest
          ("common prefix|right branch that is much longer than one block " ^ String.make 100 'r')))
    (Sha256.finalize fork)

let test_sha256_finalize_trunc () =
  let full = Sha256.digest "truncate me" in
  List.iter
    (fun n ->
      let ctx = Sha256.init () in
      Sha256.update ctx "truncate me";
      Alcotest.(check string)
        (Printf.sprintf "trunc %d" n)
        (Bytesutil.to_hex (String.sub full 0 n))
        (Bytesutil.to_hex (Sha256.finalize_trunc ctx n)))
    [ 1; 16; 31; 32 ];
  Alcotest.check_raises "trunc 0" (Invalid_argument "Sha256.finalize_trunc: need 1 <= n <= 32")
    (fun () -> ignore (Sha256.finalize_trunc (Sha256.init ()) 0))

(* --- HMAC-SHA256 (RFC 4231) ----------------------------------------- *)

let test_hmac_vectors () =
  (* RFC 4231 test case 1 *)
  check_hex "tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There");
  (* test case 2 *)
  check_hex "tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?");
  (* test case 3 *)
  check_hex "tc3" "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.sha256 ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'));
  (* test case 4 *)
  check_hex "tc4" "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
    (Hmac.sha256
       ~key:(hex "0102030405060708090a0b0c0d0e0f10111213141516171819")
       (String.make 50 '\xcd'));
  (* test case 6: key longer than the block size *)
  check_hex "tc6" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.sha256 ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First");
  (* truncated PRF variant *)
  Alcotest.(check int) "prf128 length" 16 (String.length (Hmac.prf128 ~key:"k" "m"))

(* The same RFC 4231 vectors through a reusable keyed context — and the
   context must stay reusable: evaluating other messages in between must
   not perturb later tags. *)
let test_hmac_keyed_vectors () =
  let cases =
    [ ( String.make 20 '\x0b',
        "Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" );
      ( "Jefe",
        "what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" );
      ( String.make 20 '\xaa',
        String.make 50 '\xdd',
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" );
      ( String.make 131 '\xaa',
        "Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" ) ]
  in
  List.iter
    (fun (key, msg, expected) ->
      let kd = Hmac.create ~key in
      check_hex "keyed tc" expected (Hmac.sha256_keyed kd msg);
      ignore (Hmac.sha256_keyed kd "interleaved message");
      ignore (Hmac.prf128_keyed kd "another");
      check_hex "keyed tc repeat" expected (Hmac.sha256_keyed kd msg);
      check_hex "keyed prf128 = prefix" (Bytesutil.to_hex (String.sub (Bytesutil.of_hex expected) 0 16))
        (Hmac.prf128_keyed kd msg))
    cases

(* --- AES-128 (FIPS 197 appendix + NIST SP 800-38A) ------------------ *)

let test_aes_fips197 () =
  let key = Aes128.expand (hex "000102030405060708090a0b0c0d0e0f") in
  let ct = Aes128.encrypt_block key (hex "00112233445566778899aabbccddeeff") in
  check_hex "fips197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" ct;
  check_hex "decrypt" "00112233445566778899aabbccddeeff" (Aes128.decrypt_block key ct)

let test_aes_sp80038a_ecb () =
  let key = Aes128.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let blocks =
    [ ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97");
      ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf");
      ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688");
      ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4") ]
  in
  List.iter
    (fun (pt, expected) -> check_hex pt expected (Aes128.encrypt_block key (hex pt)))
    blocks

let test_aes_sp80038a_ctr () =
  let key = Aes128.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let nonce = hex "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  let pt =
    hex
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
  in
  let expected =
    "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff5ae4df3edbd5d35e5b4f09020db03eab1e031dda2fbe03d1792170a0f3009cee"
  in
  check_hex "ctr" expected (Aes128.ctr_encrypt key ~nonce pt)

let test_aes_string_padding () =
  let key = Aes128.expand (String.make 16 'k') in
  List.iter
    (fun s ->
      let ct = Aes128.encrypt_string key s in
      Alcotest.(check int) "one block" 16 (String.length ct);
      Alcotest.(check string) ("roundtrip " ^ s) s (Aes128.decrypt_string key ct))
    [ ""; "a"; "record-7"; String.make 15 'x' ];
  Alcotest.check_raises "too long" (Invalid_argument "Aes128.encrypt_string: at most 15 bytes")
    (fun () -> ignore (Aes128.encrypt_string key (String.make 16 'y')))

(* --- DRBG ------------------------------------------------------------ *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed-1" and b = Drbg.create ~seed:"seed-1" in
  Alcotest.(check string) "same seed, same stream"
    (Bytesutil.to_hex (Drbg.generate a 64))
    (Bytesutil.to_hex (Drbg.generate b 64));
  let c = Drbg.create ~seed:"seed-2" in
  Alcotest.(check bool) "different seed, different stream" false
    (String.equal (Drbg.generate (Drbg.create ~seed:"seed-1") 64) (Drbg.generate c 64))

let test_drbg_reseed () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  Drbg.reseed a "extra";
  Alcotest.(check bool) "reseed diverges" false
    (String.equal (Drbg.generate a 32) (Drbg.generate b 32))

let test_uniform_int_range () =
  let rng = Drbg.create ~seed:"u" in
  for _ = 1 to 500 do
    let v = Drbg.uniform_int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of range"
  done;
  Alcotest.(check int) "bound 1" 0 (Drbg.uniform_int rng 1)

let test_bits_width () =
  let rng = Drbg.create ~seed:"b" in
  List.iter
    (fun n -> Alcotest.(check int) (Printf.sprintf "%d bits" n) n (Bigint.num_bits (Drbg.bits rng n)))
    [ 1; 2; 8; 31; 32; 64; 127; 256 ]

(* --- properties ------------------------------------------------------ *)

let props =
  [ prop "hex roundtrip" (gen_bytes ()) (fun s -> String.equal s (Bytesutil.of_hex (Bytesutil.to_hex s)));
    prop "xor involutive" (QCheck2.Gen.pair (gen_bytes ~max_len:64 ()) (gen_bytes ~max_len:64 ()))
      (fun (a, b) ->
        let n = Stdlib.min (String.length a) (String.length b) in
        let a = String.sub a 0 n and b = String.sub b 0 n in
        String.equal a (Bytesutil.xor (Bytesutil.xor a b) b));
    prop "sha256 streaming split-invariant" (QCheck2.Gen.pair (gen_bytes ~max_len:300 ()) (QCheck2.Gen.int_range 0 300))
      (fun (s, k) ->
        let k = Stdlib.min k (String.length s) in
        let ctx = Sha256.init () in
        Sha256.update ctx (String.sub s 0 k);
        Sha256.update ctx (String.sub s k (String.length s - k));
        String.equal (Sha256.finalize ctx) (Sha256.digest s));
    (* incremental (random 3-way split), one-shot, and copied-context
       digests must all agree. *)
    prop "sha256 incremental/one-shot/copy agree"
      (QCheck2.Gen.triple (gen_bytes ~max_len:300 ()) (QCheck2.Gen.int_range 0 300) (QCheck2.Gen.int_range 0 300))
      (fun (s, i, j) ->
        let n = String.length s in
        let i = Stdlib.min i n in
        let j = Stdlib.min (Stdlib.max i j) n in
        let ctx = Sha256.init () in
        Sha256.update ctx (String.sub s 0 i);
        let fork = Sha256.copy ctx in
        Sha256.update ctx (String.sub s i (j - i));
        Sha256.update ctx (String.sub s j (n - j));
        Sha256.update fork (String.sub s i (n - i));
        let d = Sha256.digest s in
        String.equal (Sha256.finalize ctx) d && String.equal (Sha256.finalize fork) d);
    prop "hmac keyed-context/one-shot/truncation agree"
      (QCheck2.Gen.pair (gen_bytes ~max_len:200 ()) (gen_bytes ~max_len:200 ()))
      (fun (key, msg) ->
        let kd = Hmac.create ~key in
        let tag = Hmac.sha256 ~key msg in
        String.equal (Hmac.sha256_keyed kd msg) tag
        && String.equal (Hmac.prf128_keyed kd msg) (String.sub tag 0 16)
        && String.equal (Hmac.prf128 ~key msg) (String.sub tag 0 16)
        (* a second evaluation under the same context is unperturbed *)
        && String.equal (Hmac.sha256_keyed kd msg) tag);
    prop "aes block roundtrip" (gen_bytes ~max_len:64 ()) (fun seed ->
        let key = Aes128.expand (Sha256.digest seed |> fun d -> String.sub d 0 16) in
        let block = String.sub (Sha256.digest ("b" ^ seed)) 0 16 in
        String.equal block (Aes128.decrypt_block key (Aes128.encrypt_block key block)));
    prop "aes ctr roundtrip" (gen_bytes ~max_len:200 ()) (fun msg ->
        let key = Aes128.expand (String.make 16 '\x42') in
        let nonce = String.make 16 '\x01' in
        String.equal msg (Aes128.ctr_encrypt key ~nonce (Aes128.ctr_encrypt key ~nonce msg)));
    prop "uniform_bigint below bound" (QCheck2.Gen.int_range 1 1_000_000) (fun b ->
        let rng = Drbg.create ~seed:(string_of_int b) in
        let bound = Bigint.of_int b in
        let v = Drbg.uniform_bigint rng bound in
        Bigint.sign v >= 0 && Bigint.compare v bound < 0)
  ]

let () =
  ignore gen_block;
  Alcotest.run "crypto"
    [ ( "bytesutil",
        [ Alcotest.test_case "hex" `Quick test_hex_roundtrip;
          Alcotest.test_case "xor" `Quick test_xor;
          Alcotest.test_case "const_equal" `Quick test_const_equal;
          Alcotest.test_case "concat injective" `Quick test_concat_injective ] );
      ( "sha256",
        [ Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "streaming" `Quick test_sha256_streaming;
          Alcotest.test_case "copy forks the stream" `Quick test_sha256_copy;
          Alcotest.test_case "finalize_trunc" `Quick test_sha256_finalize_trunc ] );
      ( "hmac",
        [ Alcotest.test_case "RFC 4231" `Quick test_hmac_vectors;
          Alcotest.test_case "RFC 4231 keyed contexts" `Quick test_hmac_keyed_vectors ] );
      ( "aes128",
        [ Alcotest.test_case "FIPS 197" `Quick test_aes_fips197;
          Alcotest.test_case "SP 800-38A ECB" `Quick test_aes_sp80038a_ecb;
          Alcotest.test_case "SP 800-38A CTR" `Quick test_aes_sp80038a_ctr;
          Alcotest.test_case "string padding" `Quick test_aes_string_padding ] );
      ( "drbg",
        [ Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "reseed" `Quick test_drbg_reseed;
          Alcotest.test_case "uniform_int range" `Quick test_uniform_int_range;
          Alcotest.test_case "bits width" `Quick test_bits_width ] );
      ("properties", props) ]
