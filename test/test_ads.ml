(* Tests for the authenticated-data-structure substrates: multiset hash,
   prime representatives, RSA accumulator, Merkle tree, and the RSA
   trapdoor permutation. *)

let rng () = Drbg.create ~seed:"ads-tests"

let prop name ?(count = 100) gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen p)

let gen_strings =
  let open QCheck2.Gen in
  let* n = int_range 0 12 in
  list_size (return n) (string_size ~gen:printable (int_range 0 8))

(* Small test parameters keep exponentiations fast. *)
let small_params = Rsa_acc.setup ~rng:(Drbg.create ~seed:"acc-params") ~bits:256 ()

(* --- multiset hash ---------------------------------------------------- *)

let test_mset_identity () =
  Alcotest.(check bool) "H(M) = H(M)" true (Mset_hash.equal (Mset_hash.of_list [ "a"; "b" ]) (Mset_hash.of_list [ "a"; "b" ]));
  Alcotest.(check bool) "empty" true (Mset_hash.equal Mset_hash.empty (Mset_hash.of_list []))

let test_mset_order_independent () =
  Alcotest.(check bool) "permutation" true
    (Mset_hash.equal (Mset_hash.of_list [ "a"; "b"; "c" ]) (Mset_hash.of_list [ "c"; "a"; "b" ]))

let test_mset_multiplicity () =
  Alcotest.(check bool) "multiset, not set" false
    (Mset_hash.equal (Mset_hash.of_list [ "a" ]) (Mset_hash.of_list [ "a"; "a" ]))

let test_mset_union_homomorphism () =
  let m = [ "x"; "y" ] and n = [ "y"; "z"; "z" ] in
  Alcotest.(check bool) "H(M∪N) = H(M)+H(N)" true
    (Mset_hash.equal (Mset_hash.of_list (m @ n)) (Mset_hash.combine (Mset_hash.of_list m) (Mset_hash.of_list n)))

let test_mset_remove () =
  let h = Mset_hash.of_list [ "a"; "b"; "b" ] in
  Alcotest.(check bool) "remove one" true (Mset_hash.equal (Mset_hash.remove h "b") (Mset_hash.of_list [ "a"; "b" ]));
  Alcotest.(check bool) "remove to empty" true
    (Mset_hash.equal (Mset_hash.remove (Mset_hash.of_list [ "q" ]) "q") Mset_hash.empty)

let test_mset_bytes () =
  let h = Mset_hash.of_list [ "serialize"; "me" ] in
  Alcotest.(check int) "32 bytes" 32 (String.length (Mset_hash.to_bytes h));
  Alcotest.(check bool) "roundtrip" true (Mset_hash.equal h (Mset_hash.of_bytes (Mset_hash.to_bytes h)))

let test_mset_distinct () =
  Alcotest.(check bool) "different multisets differ" false
    (Mset_hash.equal (Mset_hash.of_list [ "a" ]) (Mset_hash.of_list [ "b" ]))

(* --- prime representatives -------------------------------------------- *)

let test_prime_rep_prime () =
  List.iter
    (fun s ->
      let x = Prime_rep.to_prime s in
      Alcotest.(check bool) ("prime for " ^ s) true (Primegen.is_prime_det x);
      Alcotest.(check int) "width" (256 + Prime_rep.counter_bits) (Bigint.num_bits x))
    [ ""; "a"; "token-1"; String.make 100 'z' ]

let test_prime_rep_deterministic () =
  Alcotest.(check bool) "same input same prime" true
    (Bigint.equal (Prime_rep.to_prime "det") (Prime_rep.to_prime "det"));
  Alcotest.(check bool) "is_representative_of" true (Prime_rep.is_representative_of (Prime_rep.to_prime "det") "det");
  Alcotest.(check bool) "wrong claim rejected" false (Prime_rep.is_representative_of (Prime_rep.to_prime "det") "other")

let test_prime_rep_distinct () =
  Alcotest.(check bool) "distinct inputs distinct primes" false
    (Bigint.equal (Prime_rep.to_prime "input-a") (Prime_rep.to_prime "input-b"))

(* --- RSA accumulator --------------------------------------------------- *)

let primes_of n seed =
  List.init n (fun i -> Prime_rep.to_prime (Printf.sprintf "%s-%d" seed i))

let test_acc_member_verifies () =
  let xs = primes_of 6 "m" in
  let ac = Rsa_acc.accumulate small_params xs in
  List.iter
    (fun x ->
      let w = Rsa_acc.mem_witness small_params xs x in
      Alcotest.(check bool) "member verifies" true (Rsa_acc.verify_mem small_params ~ac ~x ~witness:w))
    xs

let test_acc_nonmember_fails () =
  let xs = primes_of 5 "n" in
  let ac = Rsa_acc.accumulate small_params xs in
  let outsider = Prime_rep.to_prime "outsider" in
  let w = Rsa_acc.mem_witness small_params xs (List.hd xs) in
  Alcotest.(check bool) "outsider fails" false (Rsa_acc.verify_mem small_params ~ac ~x:outsider ~witness:w)

let test_acc_wrong_witness_fails () =
  let xs = primes_of 5 "w" in
  let ac = Rsa_acc.accumulate small_params xs in
  let x0 = List.nth xs 0 and x1 = List.nth xs 1 in
  let w1 = Rsa_acc.mem_witness small_params xs x1 in
  Alcotest.(check bool) "mismatched witness fails" false (Rsa_acc.verify_mem small_params ~ac ~x:x0 ~witness:w1)

let test_acc_order_independent () =
  let xs = primes_of 5 "o" in
  Alcotest.(check bool) "permutation invariant" true
    (Bigint.equal (Rsa_acc.accumulate small_params xs) (Rsa_acc.accumulate small_params (List.rev xs)))

let test_acc_incremental_add () =
  let xs = primes_of 4 "i" in
  let extra = Prime_rep.to_prime "i-extra" in
  let direct = Rsa_acc.accumulate small_params (xs @ [ extra ]) in
  let incremental = Rsa_acc.add small_params (Rsa_acc.accumulate small_params xs) extra in
  Alcotest.(check bool) "incremental = direct" true (Bigint.equal direct incremental)

let test_acc_all_witnesses () =
  let xs = primes_of 9 "aw" in
  let ac = Rsa_acc.accumulate small_params xs in
  let pairs = Rsa_acc.all_witnesses small_params xs in
  Alcotest.(check int) "count" (List.length xs) (List.length pairs);
  List.iter2
    (fun x (x', w) ->
      Alcotest.(check bool) "order kept" true (Bigint.equal x x');
      Alcotest.(check bool) "verifies" true (Rsa_acc.verify_mem small_params ~ac ~x ~witness:w);
      Alcotest.(check bool) "matches naive" true (Bigint.equal w (Rsa_acc.mem_witness small_params xs x)))
    xs pairs

let test_acc_batch_witness () =
  let xs = primes_of 8 "batch" in
  let ac = Rsa_acc.accumulate small_params xs in
  let subset = [ List.nth xs 1; List.nth xs 4; List.nth xs 6 ] in
  let w = Rsa_acc.batch_witness small_params xs subset in
  Alcotest.(check bool) "batch verifies" true (Rsa_acc.verify_mem_batch small_params ~ac ~xs:subset ~witness:w);
  Alcotest.(check bool) "order-insensitive" true
    (Rsa_acc.verify_mem_batch small_params ~ac ~xs:(List.rev subset) ~witness:w);
  (* A subset with a non-member prime cannot verify. *)
  let outsider = Prime_rep.to_prime "batch-outsider" in
  Alcotest.(check bool) "outsider poisons batch" false
    (Rsa_acc.verify_mem_batch small_params ~ac ~xs:(outsider :: subset) ~witness:w);
  (* Dropping an element of the subset breaks the exponent product. *)
  Alcotest.(check bool) "partial subset fails" false
    (Rsa_acc.verify_mem_batch small_params ~ac ~xs:(List.tl subset) ~witness:w);
  (* Full-set batch = the accumulation itself from g. *)
  let w_all = Rsa_acc.batch_witness small_params xs xs in
  Alcotest.(check bool) "full-set witness is g" true (Bigint.equal w_all small_params.Rsa_acc.generator);
  Alcotest.(check bool) "full-set verifies" true (Rsa_acc.verify_mem_batch small_params ~ac ~xs ~witness:w_all);
  (* Singleton batch agrees with the plain witness. *)
  let x0 = List.hd xs in
  Alcotest.(check bool) "singleton = mem_witness" true
    (Bigint.equal (Rsa_acc.batch_witness small_params xs [ x0 ]) (Rsa_acc.mem_witness small_params xs x0));
  Alcotest.check_raises "missing element" (Invalid_argument "Rsa_acc.batch_witness: element not in set")
    (fun () -> ignore (Rsa_acc.batch_witness small_params xs [ outsider ]))

let test_acc_non_membership () =
  let xs = primes_of 6 "nonmem" in
  let ac = Rsa_acc.accumulate small_params xs in
  let outsider = Prime_rep.to_prime "nonmem-outsider" in
  let w = Rsa_acc.non_mem_witness small_params xs outsider in
  Alcotest.(check bool) "non-member verifies" true
    (Rsa_acc.verify_non_mem small_params ~ac ~x:outsider ~witness:w);
  (* A member cannot get a non-membership witness. *)
  Alcotest.(check bool) "member rejected at creation" true
    (try ignore (Rsa_acc.non_mem_witness small_params xs (List.hd xs)); false
     with Invalid_argument _ -> true);
  (* The witness is bound to its element. *)
  let other = Prime_rep.to_prime "nonmem-other" in
  Alcotest.(check bool) "wrong element fails" false
    (Rsa_acc.verify_non_mem small_params ~ac ~x:other ~witness:w);
  (* Tampered witness components fail. *)
  let bad = { w with Rsa_acc.nw_d = Bigint.mod_mul w.Rsa_acc.nw_d Bigint.two small_params.Rsa_acc.modulus } in
  Alcotest.(check bool) "tampered d fails" false
    (Rsa_acc.verify_non_mem small_params ~ac ~x:outsider ~witness:bad);
  (* Empty set: everything is absent. *)
  let ac0 = Rsa_acc.accumulate small_params [] in
  let w0 = Rsa_acc.non_mem_witness small_params [] outsider in
  Alcotest.(check bool) "absent from empty set" true
    (Rsa_acc.verify_non_mem small_params ~ac:ac0 ~x:outsider ~witness:w0)

let test_acc_tampered_ac_fails () =
  let xs = primes_of 3 "t" in
  let ac = Rsa_acc.accumulate small_params xs in
  let bad_ac = Bigint.mod_mul ac Bigint.two small_params.Rsa_acc.modulus in
  let x = List.hd xs in
  let w = Rsa_acc.mem_witness small_params xs x in
  Alcotest.(check bool) "tampered Ac fails" false (Rsa_acc.verify_mem small_params ~ac:bad_ac ~x ~witness:w)

(* --- witness tree (persistent witness index) ---------------------------- *)

let test_wt_matches_rebuild () =
  (* Incremental appends with interleaved queries (so bases exist at
     many different generations) must agree with a from-scratch
     all_witnesses rebuild and the direct accumulation. *)
  let batches = [ primes_of 3 "wt-a"; primes_of 1 "wt-b"; primes_of 5 "wt-c"; primes_of 2 "wt-d" ] in
  let wt = Witness_tree.create small_params in
  List.iter
    (fun batch ->
      Witness_tree.append wt batch;
      (* Touch one element so its cached base goes stale on the next append. *)
      ignore (Witness_tree.witness wt (List.hd batch)))
    batches;
  let all = List.concat batches in
  Alcotest.(check int) "leaf count" (List.length all) (Witness_tree.leaf_count wt);
  Alcotest.(check bool) "ac matches accumulate" true
    (Bigint.equal (Witness_tree.ac wt) (Rsa_acc.accumulate small_params all));
  List.iter2
    (fun x (x', w_rebuild) ->
      Alcotest.(check bool) "rebuild order" true (Bigint.equal x x');
      match Witness_tree.witness wt x with
      | None -> Alcotest.fail "member prime missing from index"
      | Some w -> Alcotest.(check bool) "witness = all_witnesses" true (Bigint.equal w w_rebuild))
    all
    (Rsa_acc.all_witnesses small_params all);
  Alcotest.(check bool) "non-member misses" true (Witness_tree.witness wt (Prime_rep.to_prime "wt-outsider") = None)

let test_wt_warm_all () =
  let xs = primes_of 11 "wt-warm" in
  let wt = Witness_tree.create small_params in
  Witness_tree.append wt xs;
  Witness_tree.warm_all wt;
  let stats = Witness_tree.stats wt in
  Alcotest.(check int) "all leaves cached" (List.length xs) stats.Witness_tree.ws_cached;
  Alcotest.(check int) "all leaves fresh" (List.length xs) stats.Witness_tree.ws_fresh;
  List.iter2
    (fun x (_, w_rebuild) ->
      match Witness_tree.witness wt x with
      | None -> Alcotest.fail "missing after warm_all"
      | Some w -> Alcotest.(check bool) "warm witness identical" true (Bigint.equal w w_rebuild))
    xs
    (Rsa_acc.all_witnesses small_params xs);
  (* Every query after warm_all must be a pure cache hit. *)
  let stats' = Witness_tree.stats wt in
  Alcotest.(check int) "queries were hits" (List.length xs) (stats'.Witness_tree.ws_hits - stats.Witness_tree.ws_hits);
  Alcotest.(check int) "no refresh after warm" stats.Witness_tree.ws_refreshes stats'.Witness_tree.ws_refreshes

let test_wt_batch_witness () =
  let xs = primes_of 8 "wt-batch" in
  let wt = Witness_tree.create small_params in
  Witness_tree.append wt xs;
  let ctx = Rsa_acc.context small_params xs in
  let subset = [ List.nth xs 1; List.nth xs 4; List.nth xs 6 ] in
  Alcotest.(check bool) "batch = ctx_batch_witness" true
    (Bigint.equal (Witness_tree.batch_witness wt subset) (Rsa_acc.ctx_batch_witness ctx subset));
  Alcotest.(check bool) "singleton = mem_witness" true
    (Bigint.equal (Witness_tree.batch_witness wt [ List.hd xs ]) (Rsa_acc.mem_witness small_params xs (List.hd xs)));
  Alcotest.(check bool) "empty subset = Ac" true
    (Bigint.equal (Witness_tree.batch_witness wt []) (Rsa_acc.accumulate small_params xs));
  Alcotest.(check bool) "full set = g" true
    (Bigint.equal (Witness_tree.batch_witness wt xs) small_params.Rsa_acc.generator);
  Alcotest.check_raises "missing element" (Invalid_argument "Rsa_acc.batch_witness: element not in set")
    (fun () -> ignore (Witness_tree.batch_witness wt [ Prime_rep.to_prime "wt-batch-outsider" ]));
  (* Duplicates: both in the multiset and in the subset (the division
     fallback path), mirroring ctx_batch_witness's multiset semantics. *)
  let dup = List.hd xs in
  let wt2 = Witness_tree.create small_params in
  Witness_tree.append wt2 (xs @ [ dup ]);
  let ctx2 = Rsa_acc.context small_params (xs @ [ dup ]) in
  Alcotest.(check bool) "duplicate subset = ctx" true
    (Bigint.equal (Witness_tree.batch_witness wt2 [ dup; dup ]) (Rsa_acc.ctx_batch_witness ctx2 [ dup; dup ]));
  Alcotest.(check bool) "subset over multiset = ctx" true
    (Bigint.equal (Witness_tree.batch_witness wt2 subset) (Rsa_acc.ctx_batch_witness ctx2 subset))

let test_wt_export_absorb () =
  let batches = [ primes_of 6 "wt-snap"; primes_of 3 "wt-snap2" ] in
  let all = List.concat batches in
  let wt = Witness_tree.create small_params in
  List.iter (Witness_tree.append wt) batches;
  Witness_tree.warm_all wt;
  let blob = Witness_tree.export wt in
  (* Restore: rebuild products from the primes, graft the witnesses. *)
  let wt' = Witness_tree.create small_params in
  Witness_tree.append wt' all;
  (match Witness_tree.absorb wt' blob with
   | Some n -> Alcotest.(check int) "all leaves absorbed" (List.length all) n
   | None -> Alcotest.fail "export blob rejected");
  let before = Witness_tree.stats wt' in
  List.iter
    (fun x ->
      match (Witness_tree.witness wt x, Witness_tree.witness wt' x) with
      | Some w, Some w' -> Alcotest.(check bool) "restored witness identical" true (Bigint.equal w w')
      | _ -> Alcotest.fail "missing witness after restore")
    all;
  let after = Witness_tree.stats wt' in
  Alcotest.(check int) "restored tree served without cold recompute" before.Witness_tree.ws_cold
    after.Witness_tree.ws_cold;
  Alcotest.(check bool) "garbage blob rejected" true (Witness_tree.absorb wt' "not-a-snapshot" = None)

(* --- Merkle tree -------------------------------------------------------- *)

let test_merkle_roundtrip () =
  let leaves = List.init 7 (fun i -> Printf.sprintf "leaf-%d" i) in
  let t = Merkle.build leaves in
  Alcotest.(check int) "leaf count" 7 (Merkle.leaf_count t);
  List.iteri
    (fun i leaf ->
      let proof = Merkle.prove t i in
      Alcotest.(check bool) (Printf.sprintf "proof %d" i) true (Merkle.verify ~root:(Merkle.root t) ~leaf proof))
    leaves

let test_merkle_rejects () =
  let t = Merkle.build [ "a"; "b"; "c"; "d" ] in
  let proof = Merkle.prove t 1 in
  Alcotest.(check bool) "wrong leaf" false (Merkle.verify ~root:(Merkle.root t) ~leaf:"z" proof);
  let t2 = Merkle.build [ "a"; "b"; "c"; "e" ] in
  Alcotest.(check bool) "wrong root" false (Merkle.verify ~root:(Merkle.root t2) ~leaf:"b" proof)

let test_merkle_single_and_empty () =
  let t1 = Merkle.build [ "only" ] in
  Alcotest.(check bool) "single leaf" true
    (Merkle.verify ~root:(Merkle.root t1) ~leaf:"only" (Merkle.prove t1 0));
  let t0 = Merkle.build [] in
  Alcotest.(check int) "empty count" 0 (Merkle.leaf_count t0);
  Alcotest.(check int) "root is 32 bytes" 32 (String.length (Merkle.root t0))

let test_merkle_out_of_bounds () =
  let t = Merkle.build [ "a" ] in
  Alcotest.check_raises "oob" (Invalid_argument "Merkle.prove: index out of bounds") (fun () ->
      ignore (Merkle.prove t 1))

(* --- trapdoor permutation ----------------------------------------------- *)

let tdp_keys = Rsa_tdp.keygen ~bits:256 ~rng:(Drbg.create ~seed:"tdp-params") ()

let test_tdp_roundtrip () =
  let pk, sk = tdp_keys in
  let r = rng () in
  for _ = 1 to 10 do
    let x = Drbg.uniform_bigint r pk.Rsa_tdp.pn in
    Alcotest.(check bool) "pk(sk^-1(x)) = x" true (Bigint.equal x (Rsa_tdp.forward pk (Rsa_tdp.inverse sk x)));
    Alcotest.(check bool) "sk^-1(pk(x)) = x" true (Bigint.equal x (Rsa_tdp.inverse sk (Rsa_tdp.forward pk x)))
  done

let test_tdp_bytes_roundtrip () =
  let pk, sk = tdp_keys in
  let r = rng () in
  let t0 = Rsa_tdp.random_element ~rng:r pk in
  Alcotest.(check int) "element width" (Rsa_tdp.element_bytes pk) (String.length t0);
  let advanced = Rsa_tdp.inverse_bytes sk pk t0 in
  Alcotest.(check string) "walk back" t0 (Rsa_tdp.forward_bytes pk advanced)

let test_tdp_chain () =
  (* The protocol's chain: owner goes backwards j times, cloud walks
     forward j times and recovers every past trapdoor. *)
  let pk, sk = tdp_keys in
  let r = rng () in
  let t0 = Rsa_tdp.random_element ~rng:r pk in
  let chain = List.fold_left (fun acc _ -> Rsa_tdp.inverse_bytes sk pk (List.hd acc) :: acc) [ t0 ] (List.init 5 Fun.id) in
  (* chain = [t5; t4; ...; t0]; walking forward from t5 must reproduce t4..t0. *)
  (match chain with
   | newest :: older ->
     let _ =
       List.fold_left
         (fun current expected ->
           let prev = Rsa_tdp.forward_bytes pk current in
           Alcotest.(check string) "chain step" expected prev;
           prev)
         newest older
     in
     ()
   | [] -> Alcotest.fail "chain empty")

(* --- properties ----------------------------------------------------------- *)

let props =
  [ prop "mset: concat = combine" gen_strings (fun xs ->
        let k = List.length xs / 2 in
        let l = List.filteri (fun i _ -> i < k) xs and r = List.filteri (fun i _ -> i >= k) xs in
        Mset_hash.equal (Mset_hash.of_list xs) (Mset_hash.combine (Mset_hash.of_list l) (Mset_hash.of_list r)));
    prop "mset: shuffle invariant" gen_strings (fun xs ->
        Mset_hash.equal (Mset_hash.of_list xs) (Mset_hash.of_list (List.rev xs)));
    prop "mset: add/remove cancel" gen_strings (fun xs ->
        let h = Mset_hash.of_list xs in
        Mset_hash.equal h (Mset_hash.remove (Mset_hash.add h "probe") "probe"));
    prop "prime_rep deterministic + prime" ~count:20 (QCheck2.Gen.string_size ~gen:QCheck2.Gen.printable (QCheck2.Gen.int_range 0 40))
      (fun s ->
        let x = Prime_rep.to_prime s in
        Primegen.is_prime_det x && Bigint.equal x (Prime_rep.to_prime s));
    prop "accumulator membership" ~count:10 (QCheck2.Gen.int_range 1 8) (fun n ->
        let xs = primes_of n (Printf.sprintf "p%d" n) in
        let ac = Rsa_acc.accumulate small_params xs in
        List.for_all
          (fun x -> Rsa_acc.verify_mem small_params ~ac ~x ~witness:(Rsa_acc.mem_witness small_params xs x))
          xs);
    prop "witness tree = from-scratch rebuild" ~count:15
      QCheck2.Gen.(list_size (int_range 1 5) (int_range 1 4))
      (fun batch_sizes ->
        (* Any interleaving of appends (with queries in between, so bases
           get stamped at many generations) serves exactly what a
           from-scratch all_witnesses rebuild computes. *)
        let wt = Witness_tree.create small_params in
        let all = ref [] in
        List.iteri
          (fun i n ->
            let batch = primes_of n (Printf.sprintf "wt-prop-%d-%d" i n) in
            Witness_tree.append wt batch;
            all := !all @ batch;
            ignore (Witness_tree.witness wt (List.hd batch)))
          batch_sizes;
        Bigint.equal (Witness_tree.ac wt) (Rsa_acc.accumulate small_params !all)
        && List.for_all2
             (fun x (_, w) ->
               match Witness_tree.witness wt x with
               | Some w' -> Bigint.equal w w'
               | None -> false)
             !all
             (Rsa_acc.all_witnesses small_params !all));
    prop "merkle proofs verify" ~count:30 (QCheck2.Gen.int_range 1 40) (fun n ->
        let leaves = List.init n (fun i -> Printf.sprintf "L%d" i) in
        let t = Merkle.build leaves in
        List.for_all
          (fun i -> Merkle.verify ~root:(Merkle.root t) ~leaf:(List.nth leaves i) (Merkle.prove t i))
          (List.init n Fun.id));
    (prop "merkle proof survives codec, corruption always fails closed" ~count:200
       QCheck2.Gen.(
         tup4 (int_range 2 32) (int_range 0 1000) (int_range 0 2) (int_range 0 10_000))
       (fun (n, pick, mode, bits) ->
         let leaves = List.init n (fun i -> Printf.sprintf "leaf-%d-payload" i) in
         let t = Merkle.build leaves in
         let root = Merkle.root t in
         let i = pick mod n in
         let leaf = List.nth leaves i in
         let proof = Merkle.prove t i in
         let codec_ok =
           match Merkle.proof_of_bytes (Merkle.proof_to_bytes proof) with
           | Some p -> p = proof && Merkle.verify ~root ~leaf p
           | None -> false
         in
         (* One targeted corruption — a flipped bit in the leaf bytes, a
            flipped bit in one path sibling, or a shifted index — must
            make verification return [false], never raise. *)
         let flip_bit s k =
           let b = Bytes.of_string s in
           let byte = k / 8 mod Bytes.length b in
           Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (k mod 8))));
           Bytes.to_string b
         in
         let corrupt_verifies =
           match mode with
           | 0 -> Merkle.verify ~root ~leaf:(flip_bit leaf bits) proof
           | 1 when proof.Merkle.path <> [] ->
             let target = bits mod List.length proof.Merkle.path in
             let path =
               List.mapi
                 (fun j (h, side) -> if j = target then (flip_bit h bits, side) else (h, side))
                 proof.Merkle.path
             in
             Merkle.verify ~root ~leaf { proof with Merkle.path }
           | 1 -> false (* single-leaf tree: no siblings to corrupt *)
           | _ ->
             let index = (proof.Merkle.index + 1 + (bits mod (n - 1))) mod n in
             Merkle.verify ~root ~leaf { proof with Merkle.index }
         in
         codec_ok && not corrupt_verifies))
  ]

let () =
  Alcotest.run "ads"
    [ ( "mset_hash",
        [ Alcotest.test_case "identity" `Quick test_mset_identity;
          Alcotest.test_case "order independent" `Quick test_mset_order_independent;
          Alcotest.test_case "multiplicity" `Quick test_mset_multiplicity;
          Alcotest.test_case "union homomorphism" `Quick test_mset_union_homomorphism;
          Alcotest.test_case "remove" `Quick test_mset_remove;
          Alcotest.test_case "bytes" `Quick test_mset_bytes;
          Alcotest.test_case "distinct" `Quick test_mset_distinct ] );
      ( "prime_rep",
        [ Alcotest.test_case "prime" `Quick test_prime_rep_prime;
          Alcotest.test_case "deterministic" `Quick test_prime_rep_deterministic;
          Alcotest.test_case "distinct" `Quick test_prime_rep_distinct ] );
      ( "rsa_acc",
        [ Alcotest.test_case "member verifies" `Quick test_acc_member_verifies;
          Alcotest.test_case "non-member fails" `Quick test_acc_nonmember_fails;
          Alcotest.test_case "wrong witness fails" `Quick test_acc_wrong_witness_fails;
          Alcotest.test_case "order independent" `Quick test_acc_order_independent;
          Alcotest.test_case "incremental add" `Quick test_acc_incremental_add;
          Alcotest.test_case "all_witnesses" `Quick test_acc_all_witnesses;
          Alcotest.test_case "batch witness" `Quick test_acc_batch_witness;
          Alcotest.test_case "non-membership" `Quick test_acc_non_membership;
          Alcotest.test_case "tampered Ac" `Quick test_acc_tampered_ac_fails ] );
      ( "witness_tree",
        [ Alcotest.test_case "matches rebuild" `Quick test_wt_matches_rebuild;
          Alcotest.test_case "warm_all" `Quick test_wt_warm_all;
          Alcotest.test_case "batch witness" `Quick test_wt_batch_witness;
          Alcotest.test_case "export/absorb" `Quick test_wt_export_absorb ] );
      ( "merkle",
        [ Alcotest.test_case "roundtrip" `Quick test_merkle_roundtrip;
          Alcotest.test_case "rejects" `Quick test_merkle_rejects;
          Alcotest.test_case "single and empty" `Quick test_merkle_single_and_empty;
          Alcotest.test_case "out of bounds" `Quick test_merkle_out_of_bounds ] );
      ( "rsa_tdp",
        [ Alcotest.test_case "roundtrip" `Quick test_tdp_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_tdp_bytes_roundtrip;
          Alcotest.test_case "chain walk" `Quick test_tdp_chain ] );
      ("properties", props) ]
