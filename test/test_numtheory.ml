(* Tests for the primality / prime-generation substrate. *)

let bi = Bigint.of_int
let rng () = Drbg.create ~seed:"numtheory-tests"

let prop name ?(count = 100) gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen p)

(* --- sieve ------------------------------------------------------------ *)

let test_primes_below () =
  Alcotest.(check (list int)) "below 30" [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29 ] (Sieve.primes_below 30);
  Alcotest.(check (list int)) "below 2" [] (Sieve.primes_below 2);
  Alcotest.(check int) "count below 1000" 168 (List.length (Sieve.primes_below 1000))

let test_is_small_prime () =
  Alcotest.(check bool) "2" true (Sieve.is_small_prime 2);
  Alcotest.(check bool) "8191 (mersenne)" true (Sieve.is_small_prime 8191);
  Alcotest.(check bool) "1" false (Sieve.is_small_prime 1);
  Alcotest.(check bool) "0" false (Sieve.is_small_prime 0);
  Alcotest.(check bool) "4096" false (Sieve.is_small_prime 4096)

(* --- primality --------------------------------------------------------- *)

let known_primes =
  [ "2"; "3"; "5"; "104729"; "2147483647" (* 2^31-1 *);
    "162259276829213363391578010288127" (* 2^107-1 *);
    "170141183460469231731687303715884105727" (* 2^127-1 *) ]

let known_composites =
  [ "1"; "4"; "104730"; "2147483649";
    "561"; "41041"; "825265" (* Carmichael numbers *);
    "3825123056546413051" (* strong pseudoprime to bases 2,3,5 *);
    "170141183460469231731687303715884105725" ]

let test_probable_prime () =
  let r = rng () in
  List.iter
    (fun s -> Alcotest.(check bool) ("prime " ^ s) true (Primality.is_probable_prime ~rng:r (Bigint.of_string s)))
    known_primes;
  List.iter
    (fun s -> Alcotest.(check bool) ("composite " ^ s) false (Primality.is_probable_prime ~rng:r (Bigint.of_string s)))
    known_composites

let test_is_prime_det () =
  List.iter
    (fun s -> Alcotest.(check bool) ("prime " ^ s) true (Primegen.is_prime_det (Bigint.of_string s)))
    known_primes;
  List.iter
    (fun s -> Alcotest.(check bool) ("composite " ^ s) false (Primegen.is_prime_det (Bigint.of_string s)))
    known_composites

let test_det_matches_sieve () =
  (* Exhaustive agreement with the sieve on [0, 4000). *)
  for n = 0 to 3999 do
    if Primegen.is_prime_det (bi n) <> Sieve.is_small_prime n then
      Alcotest.failf "disagreement at %d" n
  done

let test_next_prime () =
  let check n expected =
    Alcotest.(check string) (Printf.sprintf "next_prime %d" n) (string_of_int expected)
      (Bigint.to_string (Primegen.next_prime (bi n)))
  in
  check 0 2;
  check 2 2;
  check 3 3;
  check 4 5;
  check 14 17;
  check 8190 8191;
  check 524288 524309;
  Alcotest.(check string) "next_prime 2^64"
    "18446744073709551629"
    (Bigint.to_string (Primegen.next_prime (Bigint.of_string "18446744073709551616")))

let test_random_prime () =
  let r = rng () in
  List.iter
    (fun bits ->
      let p = Primegen.random_prime ~rng:r ~bits in
      Alcotest.(check int) (Printf.sprintf "%d-bit width" bits) bits (Bigint.num_bits p);
      Alcotest.(check bool) "is prime" true (Primegen.is_prime_det p))
    [ 16; 32; 64; 128; 256 ]

let test_random_safe_prime () =
  let r = rng () in
  let p = Primegen.random_safe_prime ~rng:r ~bits:48 in
  let q = Bigint.shift_right (Bigint.pred p) 1 in
  Alcotest.(check bool) "p prime" true (Primegen.is_prime_det p);
  Alcotest.(check bool) "(p-1)/2 prime" true (Primegen.is_prime_det q);
  Alcotest.(check int) "width" 48 (Bigint.num_bits p)

let test_rsa_modulus () =
  let r = rng () in
  let m = Primegen.random_rsa_modulus ~rng:r ~bits:256 () in
  Alcotest.(check bool) "n = p*q" true (Bigint.equal m.Primegen.n (Bigint.mul m.Primegen.p m.Primegen.q));
  Alcotest.(check bool) "p <> q" false (Bigint.equal m.Primegen.p m.Primegen.q);
  Alcotest.(check bool) "phi" true
    (Bigint.equal m.Primegen.phi (Bigint.mul (Bigint.pred m.Primegen.p) (Bigint.pred m.Primegen.q)));
  (* Euler: a^phi = 1 mod n for gcd(a, n) = 1. *)
  Alcotest.(check bool) "euler" true
    (Bigint.equal Bigint.one (Bigint.mod_pow (bi 7) m.Primegen.phi m.Primegen.n))

(* --- properties --------------------------------------------------------- *)

let props =
  [ prop "next_prime is prime and >= n" (QCheck2.Gen.int_range 0 1_000_000) (fun n ->
        let p = Primegen.next_prime (bi n) in
        Primegen.is_prime_det p && Bigint.compare p (bi n) >= 0);
    prop "no prime skipped by next_prime" ~count:50 (QCheck2.Gen.int_range 2 7000) (fun n ->
        (* next_prime n <= the sieve's smallest prime >= n. *)
        let p = Bigint.to_int_exn (Primegen.next_prime (bi n)) in
        let rec sieve_next m = if m >= 8192 then p else if Sieve.is_small_prime m then m else sieve_next (m + 1) in
        p = sieve_next n);
    prop "fermat holds for generated primes" ~count:10 (QCheck2.Gen.int_range 20 80) (fun bits ->
        let r = Drbg.create ~seed:(string_of_int bits) in
        let p = Primegen.random_prime ~rng:r ~bits in
        Bigint.equal Bigint.one (Bigint.mod_pow Bigint.two (Bigint.pred p) p))
  ]

let () =
  Alcotest.run "numtheory"
    [ ( "sieve",
        [ Alcotest.test_case "primes_below" `Quick test_primes_below;
          Alcotest.test_case "is_small_prime" `Quick test_is_small_prime ] );
      ( "primality",
        [ Alcotest.test_case "probable prime" `Quick test_probable_prime;
          Alcotest.test_case "deterministic" `Quick test_is_prime_det;
          Alcotest.test_case "matches sieve" `Quick test_det_matches_sieve ] );
      ( "primegen",
        [ Alcotest.test_case "next_prime" `Quick test_next_prime;
          Alcotest.test_case "random prime" `Quick test_random_prime;
          Alcotest.test_case "safe prime" `Slow test_random_safe_prime;
          Alcotest.test_case "rsa modulus" `Quick test_rsa_modulus ] );
      ("properties", props) ]
