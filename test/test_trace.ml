(* Distributed tracing, bottom-up: root/child semantics and the
   publication gates (sampling, slow threshold, remote adoption), ring
   drain accounting under domain parallelism, the revision-3 wire codec
   (an absent trace piece must be byte-identical to revision 2), tree
   assembly with its render/Chrome exports, histogram exemplars, and
   the merged stats JSON the CLI prints for repeated --addr. *)

module Wire = Net.Wire

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains msg needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: %S not found in:\n%s" msg needle hay

(* Every test starts from empty rings; the config setters are global,
   so each test restores the defaults (rate 0, no slow threshold). *)
let clear () = ignore (Trace.drain () : Trace.span list)

let with_slow ms f =
  Trace.set_slow_ms ms;
  Fun.protect ~finally:(fun () -> Trace.set_slow_ms None) f

let with_sample p f =
  Trace.set_sample_rate p;
  Fun.protect ~finally:(fun () -> Trace.set_sample_rate 0.) f

(* --- root/child semantics ---------------------------------------------- *)

let test_off_is_passthrough () =
  clear ();
  Alcotest.(check int) "root returns the thunk's value" 42
    (Trace.root "test.off" (fun () -> 42));
  Alcotest.(check bool) "no context inside an unsampled root" true
    (Trace.root "test.off" (fun () -> Trace.current () = None));
  Alcotest.(check int) "child without a root returns too" 7
    (Trace.child "test.off.child" (fun () -> 7));
  Alcotest.(check int) "nothing published" 0 (List.length (Trace.drain ()))

let span_named name spans =
  match List.find_opt (fun sp -> sp.Trace.sp_name = name) spans with
  | Some sp -> sp
  | None -> Alcotest.failf "no span named %S drained" name

let test_nesting_tags_publish () =
  clear ();
  with_slow (Some 0.) (fun () ->
      Alcotest.(check int) "value flows through" 7
        (Trace.root "test.root" (fun () ->
             Trace.tag "who" "root";
             Trace.child ~tags:[ ("shard", "2") ] "test.child" (fun () ->
                 Trace.tag "gas" "1234";
                 7))));
  let spans = Trace.drain () in
  Alcotest.(check int) "both spans published at root close" 2 (List.length spans);
  let root = span_named "test.root" spans in
  let child = span_named "test.child" spans in
  Alcotest.(check bool) "same trace" true (root.Trace.sp_trace = child.Trace.sp_trace);
  Alcotest.(check int) "root is parentless" 0 root.Trace.sp_parent;
  Alcotest.(check int) "child hangs off the root" root.Trace.sp_id child.Trace.sp_parent;
  Alcotest.(check (list (pair string string))) "root keeps its tag"
    [ ("who", "root") ] root.Trace.sp_tags;
  Alcotest.(check (list (pair string string))) "child keeps call tags and ~tags"
    [ ("gas", "1234"); ("shard", "2") ] child.Trace.sp_tags;
  Alcotest.(check bool) "intervals are monotone and nested" true
    (root.Trace.sp_start_ns <= child.Trace.sp_start_ns
    && child.Trace.sp_start_ns <= child.Trace.sp_end_ns
    && child.Trace.sp_end_ns <= root.Trace.sp_end_ns)

let test_slow_threshold_gates () =
  clear ();
  with_slow (Some 60_000.) (fun () ->
      ignore (Trace.root "test.fast" (fun () -> ())));
  Alcotest.(check int) "a fast request under the threshold stays local" 0
    (List.length (Trace.drain ()))

let test_publishes_on_raise () =
  clear ();
  with_slow (Some 0.) (fun () ->
      try Trace.root "test.raiser" (fun () -> raise Exit) with Exit -> ());
  let spans = Trace.drain () in
  Alcotest.(check int) "exception still publishes the tree" 1 (List.length spans);
  Alcotest.(check string) "and it is the root" "test.raiser"
    (List.hd spans).Trace.sp_name

let test_remote_adoption () =
  clear ();
  (* rate 0, no slow threshold: only the upstream context forces this *)
  ignore
    (Trace.root ~remote:{ Trace.w_trace = 0xabcL; w_parent = 77 } "test.remote"
       (fun () -> ()));
  match Trace.drain () with
  | [ sp ] ->
    Alcotest.(check int64) "adopts the upstream trace id" 0xabcL sp.Trace.sp_trace;
    Alcotest.(check int) "parents under the remote span" 77 sp.Trace.sp_parent
  | l -> Alcotest.failf "expected 1 span, drained %d" (List.length l)

let test_nested_root_is_child () =
  clear ();
  with_sample 1. (fun () ->
      ignore
        (Trace.root "test.outer" (fun () ->
             Trace.root "test.inner" (fun () -> ()))));
  let spans = Trace.drain () in
  Alcotest.(check int) "one tree, two spans" 2 (List.length spans);
  let outer = span_named "test.outer" spans in
  let inner = span_named "test.inner" spans in
  Alcotest.(check int) "inner root became a child" outer.Trace.sp_id
    inner.Trace.sp_parent

let test_current_context () =
  clear ();
  with_sample 1. (fun () ->
      ignore
        (Trace.root "test.ctx" (fun () ->
             let at_root = Trace.current () in
             let in_child =
               Trace.child "test.ctx.child" (fun () -> Trace.current ())
             in
             match (at_root, in_child) with
             | Some a, Some b ->
               Alcotest.(check int64) "one trace id" a.Trace.w_trace b.Trace.w_trace;
               Alcotest.(check bool) "parent follows the innermost span" true
                 (a.Trace.w_parent <> b.Trace.w_parent)
             | _ -> Alcotest.fail "no context inside a sampled root")));
  clear ()

let test_resume_across_threads () =
  clear ();
  with_slow (Some 0.) (fun () ->
      Trace.root "test.fan" (fun () ->
          let carrier = Trace.capture () in
          let helper =
            Thread.create
              (fun () ->
                Trace.resume carrier (fun () ->
                    Trace.child "test.helper" (fun () -> ())))
              ()
          in
          Thread.join helper));
  let spans = Trace.drain () in
  Alcotest.(check int) "helper span joined the tree" 2 (List.length spans);
  let fan = span_named "test.fan" spans in
  let helper = span_named "test.helper" spans in
  Alcotest.(check bool) "same trace across threads" true
    (fan.Trace.sp_trace = helper.Trace.sp_trace);
  Alcotest.(check int) "helper parents under the fan root" fan.Trace.sp_id
    helper.Trace.sp_parent

(* --- ring accounting ---------------------------------------------------- *)

let dropped () = Obs.counter_value "slicer_trace_spans_dropped_total"

let test_ring_overflow_accounting () =
  clear ();
  let before = dropped () in
  let n = 5_000 in
  (* all on one thread, hence one ring (2048 slots): must overflow *)
  with_sample 1. (fun () ->
      for _ = 1 to n do
        ignore (Trace.root "test.flood" (fun () -> ()))
      done);
  let drained = List.length (Trace.drain ()) in
  let lost = dropped () - before in
  Alcotest.(check bool) "overflow actually dropped spans" true (lost > 0);
  Alcotest.(check int) "drained + dropped = published" n (drained + lost)

let test_ring_accounting_concurrent_domains () =
  clear ();
  let before = dropped () in
  let domains = 4 and per_domain = 1_500 in
  with_sample 1. (fun () ->
      let ds =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  ignore
                    (Trace.root "test.domains" (fun () ->
                         Trace.child "test.domains.child" (fun () -> ())))
                done))
      in
      List.iter Domain.join ds);
  let drained = List.length (Trace.drain ()) in
  let lost = dropped () - before in
  Alcotest.(check int) "drained + dropped = published, exactly"
    (domains * per_domain * 2)
    (drained + lost)

let test_unsampled_overhead_sane () =
  (* The real budget (< 150 ns) is enforced by the Bechamel micro-suite
     behind @smoke; this is a coarse tripwire so a catastrophic
     regression (locks, allocation storms) fails plain `dune runtest`. *)
  clear ();
  let n = 200_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    ignore (Trace.root "test.overhead" (fun () -> ()))
  done;
  let per = (Unix.gettimeofday () -. t0) /. float_of_int n in
  if per > 5e-6 then
    Alcotest.failf "unsampled root costs %.2f us/op" (per *. 1e6)

(* --- ids and the wire codec --------------------------------------------- *)

let test_id_strings () =
  Alcotest.(check string) "hex form" "0000000000c0ffee" (Trace.id_to_string 0xc0ffeeL);
  Alcotest.(check (option int64)) "negative ids survive" (Some (-1L))
    (Trace.id_of_string "ffffffffffffffff");
  Alcotest.(check (option int64)) "garbage refused" None (Trace.id_of_string "xyz");
  Alcotest.(check (option int64)) "empty refused" None (Trace.id_of_string "");
  Alcotest.(check (option int64)) "too long refused" None
    (Trace.id_of_string "00000000000000000")

let gen_id64 =
  QCheck2.Gen.(
    map2
      (fun hi lo ->
        let v =
          Int64.logor (Int64.shift_left (Int64.of_int hi) 31) (Int64.of_int lo)
        in
        if v = 0L then 1L else v)
      (int_range 0 ((1 lsl 31) - 1))
      (int_range 0 ((1 lsl 31) - 1)))

let id_props =
  [ prop "trace id hex round-trips" ~count:300 gen_id64 (fun id ->
        Trace.id_of_string (Trace.id_to_string id) = Some id) ]

let gen_bytes = QCheck2.Gen.(string_size (int_range 0 12))

let gen_token =
  QCheck2.Gen.(
    map
      (fun (((td, ups), g1), g2) ->
        { Slicer_types.st_trapdoor = td; st_updates = ups; st_g1 = g1; st_g2 = g2 })
      (pair (pair (pair gen_bytes small_nat) gen_bytes) gen_bytes))

let gen_trace_ctx =
  QCheck2.Gen.(
    opt (map2 (fun t p -> { Trace.w_trace = t; w_parent = p }) gen_id64 small_nat))

let gen_search =
  QCheck2.Gen.(
    map
      (fun ((((client, request_id), batched), tokens), trace) ->
        Wire.Search { client; request_id; batched; tokens; trace })
      (pair
         (pair (pair (pair gen_bytes gen_bytes) bool) (list_size (int_range 0 4) gen_token))
         gen_trace_ctx))

let search_props =
  [ prop "Search round-trips with and without a trace context" ~count:200 gen_search
      (fun req -> Wire.decode_request (Wire.encode_request req) = Some req) ]

let test_v2_byte_identity () =
  let tokens =
    [ { Slicer_types.st_trapdoor = "td-0"; st_updates = 3; st_g1 = "g1"; st_g2 = "g2" } ]
  in
  let req =
    Wire.Search
      { client = "alice"; request_id = "req-1"; batched = true; tokens; trace = None }
  in
  let legacy =
    Bytesutil.concat
      [ "search"; "alice"; "req-1"; "1"; Persist.tokens_to_bytes tokens ]
  in
  Alcotest.(check string) "trace-less Search is the revision-2 bytes" legacy
    (Wire.encode_request req);
  Alcotest.(check bool) "revision-2 bytes decode with no trace" true
    (Wire.decode_request legacy = Some req);
  let ctx = { Trace.w_trace = 0xdeadbeefL; w_parent = 42 } in
  let stamped = Wire.with_trace (Some ctx) req in
  Alcotest.(check bool) "stamping changes the bytes" true
    (Wire.encode_request stamped <> legacy);
  Alcotest.(check bool) "stamped request round-trips" true
    (Wire.decode_request (Wire.encode_request stamped) = Some stamped);
  Alcotest.(check bool) "with_trace on Ping is the identity" true
    (Wire.with_trace (Some ctx) Wire.Ping = Wire.Ping);
  Alcotest.(check string) "Traces is a bare admin verb"
    (Bytesutil.concat [ "traces" ])
    (Wire.encode_request Wire.Traces)

let gen_span =
  QCheck2.Gen.(
    map
      (fun ((((trace, (id, parent)), name), inst), ((s, e), tags)) ->
        { Trace.sp_trace = trace;
          sp_id = id + 1;
          sp_parent = parent;
          sp_name = name;
          sp_instance = inst;
          sp_start_ns = s;
          sp_end_ns = s + e;
          sp_tags = tags })
      (pair
         (pair (pair (pair gen_id64 (pair small_nat small_nat)) gen_bytes) gen_bytes)
         (pair
            (pair (int_range 0 1_000_000) (int_range 0 1_000_000))
            (list_size (int_range 0 3) (pair gen_bytes gen_bytes)))))

let span_props =
  [ prop "Traces_reply span lists round-trip" ~count:200
      QCheck2.Gen.(list_size (int_range 0 5) gen_span)
      (fun tr_spans ->
        let resp = Wire.Traces_reply { tr_spans } in
        Wire.decode_response (Wire.encode_response resp) = Some resp) ]

let test_span_codec_rejects_zero_ids () =
  let bad id trace =
    Wire.Traces_reply
      { tr_spans =
          [ { Trace.sp_trace = trace; sp_id = id; sp_parent = 0; sp_name = "x";
              sp_instance = ""; sp_start_ns = 0; sp_end_ns = 1; sp_tags = [] } ] }
  in
  Alcotest.(check bool) "zero span id refused" true
    (Wire.decode_response (Wire.encode_response (bad 0 1L)) = None);
  Alcotest.(check bool) "zero trace id refused" true
    (Wire.decode_response (Wire.encode_response (bad 1 0L)) = None)

(* --- tree assembly and exports ------------------------------------------ *)

let sp ?(trace = 7L) ?(parent = 0) ?(inst = "") ?(tags = []) ~id ~s ~e name =
  { Trace.sp_trace = trace; sp_id = id; sp_parent = parent; sp_name = name;
    sp_instance = inst; sp_start_ns = s; sp_end_ns = e; sp_tags = tags }

let names nodes = List.map (fun n -> n.Trace.Tree.n_span.Trace.sp_name) nodes

let test_assemble () =
  let spans =
    [ sp ~id:10 ~s:0 ~e:100 "root";
      sp ~id:11 ~parent:10 ~s:10 ~e:60 "mid";
      sp ~id:12 ~parent:11 ~s:20 ~e:40 "leaf";
      sp ~id:13 ~parent:999 ~s:70 ~e:90 "orphan";
      (* a racy ring read can surface a span twice *)
      sp ~id:11 ~parent:10 ~s:10 ~e:60 "mid";
      sp ~trace:9L ~id:20 ~s:200 ~e:260 "late" ]
  in
  match Trace.Tree.assemble spans with
  | [ a; b ] ->
    Alcotest.(check int64) "trees ordered by start" 7L a.Trace.Tree.t_trace;
    Alcotest.(check int64) "the later trace follows" 9L b.Trace.Tree.t_trace;
    Alcotest.(check int) "duplicate span deduped" 4 a.Trace.Tree.t_spans;
    Alcotest.(check int) "lo bound" 0 a.Trace.Tree.t_start_ns;
    Alcotest.(check int) "hi bound" 100 a.Trace.Tree.t_end_ns;
    Alcotest.(check (list string)) "undrained parent makes a second root"
      [ "root"; "orphan" ] (names a.Trace.Tree.t_roots);
    (match a.Trace.Tree.t_roots with
     | { Trace.Tree.n_children = [ mid ]; _ } :: _ ->
       Alcotest.(check (list string)) "chain root -> mid -> leaf" [ "leaf" ]
         (names mid.Trace.Tree.n_children)
     | _ -> Alcotest.fail "root lost its child");
    Alcotest.(check (float 1e-9)) "duration_ms" 1e-4 (Trace.Tree.duration_ms a)
  | l -> Alcotest.failf "expected 2 trees, got %d" (List.length l)

let test_render () =
  let trees =
    Trace.Tree.assemble
      [ sp ~id:10 ~s:0 ~e:2_000_000 "a";
        sp ~id:11 ~parent:10 ~inst:"s1" ~tags:[ ("x", "y") ] ~s:500_000 ~e:1_500_000 "b" ]
  in
  match trees with
  | [ t ] ->
    Alcotest.(check string) "indented timeline"
      ("trace 0000000000000007 — 2.000 ms, 2 spans\n"
      ^ "     0.000     +2.000  a\n"
      ^ "       0.500     +1.000  b [s1] x=y\n")
      (Trace.Tree.render t)
  | l -> Alcotest.failf "expected 1 tree, got %d" (List.length l)

let test_chrome_export () =
  let trees =
    Trace.Tree.assemble
      [ sp ~id:10 ~s:0 ~e:100_000 "root";
        (* overlapping, non-nested siblings must land on distinct lanes *)
        sp ~id:11 ~parent:10 ~s:10_000 ~e:60_000 "k1";
        sp ~id:12 ~parent:10 ~s:20_000 ~e:80_000 "k2";
        sp ~id:13 ~parent:10 ~inst:"s1" ~tags:[ ("shard", "1") ] ~s:15_000 ~e:55_000
          "remote" ]
  in
  let j = Trace.Tree.to_chrome trees in
  check_contains "event array" "{\"traceEvents\": [" j;
  check_contains "anonymous instance is named local"
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"args\": {\"name\": \"local\"}}"
    j;
  check_contains "remote instance gets its own pid"
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"args\": {\"name\": \"s1\"}}"
    j;
  check_contains "complete events" "\"ph\": \"X\"" j;
  check_contains "trace id rides in args" "\"trace\": \"0000000000000007\"" j;
  check_contains "tags ride in args" "\"shard\": \"1\"" j;
  check_contains "overlapping sibling spilled to a second lane" "\"tid\": 1" j;
  Alcotest.(check bool) "closes the document" true
    (String.length j > 4 && String.sub j (String.length j - 4) 4 = "\n]}\n")

(* --- exemplars ----------------------------------------------------------- *)

let test_exemplars () =
  let r = Obs.Registry.create () in
  let h = Obs.histogram ~registry:r ~units:Obs.Histogram.Raw "slicer_test_exemplar" in
  Alcotest.(check (list (pair int int64))) "empty until a trace publishes" []
    (Obs.Histogram.exemplars h);
  Obs.Histogram.record h 3;
  Obs.Histogram.set_exemplar h ~value:3 ~trace:0xabcL;
  Obs.Histogram.set_exemplar h ~value:3 ~trace:0xdefL;
  Obs.Histogram.set_exemplar h ~value:200 ~trace:0L;
  (match Obs.Histogram.exemplars h with
   | [ (bound, id) ] ->
     Alcotest.(check int) "bound holds the value" 3 bound;
     Alcotest.(check int64) "last writer wins" 0xdefL id
   | l -> Alcotest.failf "expected 1 exemplar, got %d" (List.length l));
  check_contains "exposed in the JSON snapshot"
    "\"exemplars\": [[3, \"0000000000000def\"]]"
    (Obs.Export.to_json ~registry:r ())

(* --- merged stats JSON ---------------------------------------------------- *)

let test_json_escape () =
  Alcotest.(check string) "escapes quotes, backslashes and control bytes"
    "a\\\"b\\\\c\\nd\\te\\r\\u0001"
    (Cluster.Scrape.json_escape "a\"b\\c\nd\te\r\001")

let test_instance_extraction () =
  Alcotest.(check (option string)) "leading instance field"
    (Some "shard-0")
    (Cluster.Scrape.instance_of_stats_json
       "{\n  \"instance\": \"shard-0\",\n  \"counters\": {}\n}");
  Alcotest.(check (option string)) "escapes in the name unescape"
    (Some "a\"b")
    (Cluster.Scrape.instance_of_stats_json "{\n  \"instance\": \"a\\\"b\",\n}");
  Alcotest.(check (option string)) "no instance field"
    None
    (Cluster.Scrape.instance_of_stats_json "{\n  \"counters\": {\"slicer_x\": 1}\n}");
  (* and against the real exporter, not a hand-written facsimile *)
  Obs.set_instance "shard-9";
  Fun.protect
    ~finally:(fun () -> Obs.set_instance "")
    (fun () ->
      Alcotest.(check (option string)) "real Obs.Export.to_json output"
        (Some "shard-9")
        (Cluster.Scrape.instance_of_stats_json
           (Obs.Export.to_json ~registry:(Obs.Registry.create ()) ())))

let test_merged_stats_json () =
  let shard0 = "{\n  \"instance\": \"shard-0\",\n  \"counters\": {}\n}" in
  let anon = "{\n  \"counters\": {}\n}" in
  let out =
    Cluster.Scrape.merged_stats_json
      [ ("127.0.0.1:7071", Ok shard0);
        ("unix:/tmp/s1", Ok anon);
        ("127.0.0.1:7072", Error "connect: \"refused\"") ]
  in
  Alcotest.(check string) "one valid JSON array keyed by instance"
    ("[{\"addr\":\"127.0.0.1:7071\",\"instance\":\"shard-0\",\"stats\":" ^ shard0
    ^ "},{\"addr\":\"unix:/tmp/s1\",\"instance\":\"unix:/tmp/s1\",\"stats\":" ^ anon
    ^ "},{\"addr\":\"127.0.0.1:7072\",\"instance\":\"127.0.0.1:7072\",\
       \"error\":\"connect: \\\"refused\\\"\"}]")
    out

(* Regression: two processes (or a fork pair) sharing a clock tick and
   a recycled pid used to derive the same id-generator seed, colliding
   their trace ids. The /dev/urandom word must separate seeds even when
   (now, pid) collide exactly. *)
let test_seed_entropy_separates () =
  let now_ns = 1_723_000_000_000_000_000 and pid = 4242 in
  let a = Trace.seed_of ~now_ns ~pid ~entropy:(Some 1L) in
  let b = Trace.seed_of ~now_ns ~pid ~entropy:(Some 2L) in
  let c = Trace.seed_of ~now_ns ~pid ~entropy:None in
  Alcotest.(check bool) "distinct entropy, distinct seeds" true (a <> b);
  Alcotest.(check bool) "entropy perturbs the fallback seed" true (a <> c && b <> c);
  let seen = Hashtbl.create 256 in
  for i = 1 to 256 do
    Hashtbl.replace seen (Trace.seed_of ~now_ns ~pid ~entropy:(Some (Int64.of_int i))) ()
  done;
  Alcotest.(check int) "256 entropy words, 256 seeds" 256 (Hashtbl.length seen);
  (* And the fallback still separates distinct (now, pid) pairs. *)
  Alcotest.(check bool) "clock separates seeds without entropy" true
    (Trace.seed_of ~now_ns ~pid ~entropy:None
     <> Trace.seed_of ~now_ns:(now_ns + 1) ~pid ~entropy:None)

let () =
  Alcotest.run "trace"
    [ ( "roots",
        [ Alcotest.test_case "off is a passthrough" `Quick test_off_is_passthrough;
          Alcotest.test_case "nesting, tags, publish" `Quick test_nesting_tags_publish;
          Alcotest.test_case "slow threshold gates" `Quick test_slow_threshold_gates;
          Alcotest.test_case "publishes on raise" `Quick test_publishes_on_raise;
          Alcotest.test_case "remote context adopted" `Quick test_remote_adoption;
          Alcotest.test_case "nested root is a child" `Quick test_nested_root_is_child;
          Alcotest.test_case "current follows the stack" `Quick test_current_context;
          Alcotest.test_case "capture/resume across threads" `Quick
            test_resume_across_threads ] );
      ( "rings",
        [ Alcotest.test_case "overflow accounting" `Quick test_ring_overflow_accounting;
          Alcotest.test_case "4 domains, exact accounting" `Quick
            test_ring_accounting_concurrent_domains;
          Alcotest.test_case "unsampled overhead tripwire" `Quick
            test_unsampled_overhead_sane ] );
      ( "wire",
        Alcotest.test_case "id strings" `Quick test_id_strings
        :: Alcotest.test_case "seed entropy separates processes" `Quick
             test_seed_entropy_separates
        :: Alcotest.test_case "revision-2 byte identity" `Quick test_v2_byte_identity
        :: Alcotest.test_case "zero ids refused" `Quick test_span_codec_rejects_zero_ids
        :: (id_props @ search_props @ span_props) );
      ( "trees",
        [ Alcotest.test_case "assemble" `Quick test_assemble;
          Alcotest.test_case "render timeline" `Quick test_render;
          Alcotest.test_case "chrome export" `Quick test_chrome_export ] );
      ("exemplars", [ Alcotest.test_case "bucket exemplars" `Quick test_exemplars ]);
      ( "scrape",
        [ Alcotest.test_case "json escaping" `Quick test_json_escape;
          Alcotest.test_case "instance extraction" `Quick test_instance_extraction;
          Alcotest.test_case "merged stats golden" `Quick test_merged_stats_json ] ) ]
