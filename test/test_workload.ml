(* Tests for the workload generators and a randomized end-to-end oracle
   property over the whole protocol stack. *)

let rng () = Drbg.create ~seed:"workload-tests"

let prop name ?(count = 50) gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen p)

(* --- generators ---------------------------------------------------------- *)

let test_uniform_records () =
  let records = Gen.uniform_records ~rng:(rng ()) ~width:8 100 in
  Alcotest.(check int) "count" 100 (List.length records);
  List.iter
    (fun r ->
      Slicer_types.check_record ~width:8 r;
      match r.Slicer_types.fields with
      | [ ("", v) ] -> if v < 0 || v > 255 then Alcotest.fail "value out of range"
      | _ -> Alcotest.fail "single anonymous field expected")
    records;
  let ids = List.map (fun r -> r.Slicer_types.id) records in
  Alcotest.(check int) "unique ids" 100 (List.length (List.sort_uniq compare ids))

let test_zipf_skew () =
  let records = Gen.zipf_records ~rng:(rng ()) ~width:8 2000 in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let v = List.assoc "" r.Slicer_types.fields in
      if v < 0 || v > 255 then Alcotest.fail "zipf value out of range";
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    records;
  let count v = Option.value ~default:0 (Hashtbl.find_opt counts v) in
  (* Rank 1 (value 0) must dominate a deep-tail value decisively. *)
  Alcotest.(check bool) "head beats tail" true (count 0 > 10 * Stdlib.max 1 (count 200));
  Alcotest.(check bool) "head is heavy" true (count 0 > 100)

let test_multiattr_shape () =
  let records = Gen.multiattr_records ~rng:(rng ()) ~width:10 ~attrs:[ "a"; "b"; "c" ] 20 in
  List.iter
    (fun r ->
      Alcotest.(check (list string)) "attrs" [ "a"; "b"; "c" ]
        (List.map fst r.Slicer_types.fields))
    records;
  Alcotest.check_raises "no attrs" (Invalid_argument "Gen.multiattr_records: need at least one attribute")
    (fun () -> ignore (Gen.multiattr_records ~rng:(rng ()) ~width:8 ~attrs:[] 5))

let test_query_generators () =
  let r = rng () in
  for _ = 1 to 100 do
    let q = Gen.random_query ~rng:r ~width:8 () in
    if q.Slicer_types.q_value < 0 || q.Slicer_types.q_value > 255 then
      Alcotest.fail "query value out of range"
  done;
  let eq = Gen.random_equality_query ~rng:r ~width:8 () in
  Alcotest.(check bool) "eq cond" true (eq.Slicer_types.q_cond = Slicer_types.Eq);
  let ord = Gen.random_order_query ~rng:r ~width:8 () in
  Alcotest.(check bool) "order cond" true
    (ord.Slicer_types.q_cond = Slicer_types.Gt || ord.Slicer_types.q_cond = Slicer_types.Lt)

(* --- randomized end-to-end oracle ---------------------------------------- *)

(* One shared system; queries randomized by qcheck. The off-chain path
   keeps the property fast while still exercising owner, cloud, SORE,
   ADS and local verification. *)
let oracle_width = 6

let oracle_db = Gen.uniform_records ~rng:(Drbg.create ~seed:"oracle-db") ~width:oracle_width 30

let oracle_system =
  lazy
    (let s = Protocol.setup ~width:oracle_width ~seed:"oracle" oracle_db in
     Cloud.precompute_witnesses (Protocol.cloud s);
     s)

let gen_query =
  let open QCheck2.Gen in
  let* v = int_range 0 ((1 lsl oracle_width) - 1) in
  let* cond = oneofl [ Slicer_types.Eq; Slicer_types.Gt; Slicer_types.Lt ] in
  return (Slicer_types.query v cond)

let oracle_props =
  [ prop "random queries match plaintext oracle" ~count:60 gen_query (fun q ->
        let s = Lazy.force oracle_system in
        let claims, verified = Protocol.search_offchain s q in
        let ids =
          List.concat_map (fun (c : Slicer_contract.claim) -> c.Slicer_contract.results) claims
          |> User.decrypt_results (Protocol.user s)
          |> List.sort compare
        in
        verified && ids = List.sort compare (Slicer_types.reference_search oracle_db q));
    prop "verification object count = token count" ~count:30 gen_query (fun q ->
        let s = Lazy.force oracle_system in
        let claims, _ = Protocol.search_offchain s q in
        let tokens = User.gen_tokens ~rng:(Protocol.rng s) (Protocol.user s) q in
        List.length claims = List.length tokens) ]

let () =
  Alcotest.run "workload"
    [ ( "generators",
        [ Alcotest.test_case "uniform records" `Quick test_uniform_records;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "multi-attribute shape" `Quick test_multiattr_shape;
          Alcotest.test_case "query generators" `Quick test_query_generators ] );
      ("end-to-end oracle", oracle_props) ]
