(* End-to-end tests of the Slicer core: Build/Insert/Search protocols
   against a plaintext oracle, forward security, the fairness escrow
   under every misbehaviour in the threat model, multi-attribute data,
   and the deletion extension. *)

let q = Slicer_types.query
let sorted = List.sort String.compare

let check_ids msg expected actual =
  Alcotest.(check (list string)) msg (sorted expected) (sorted actual)

(* One modest shared system (width 6, 40 records) with precomputed
   witnesses keeps the suite brisk; accumulator work is the bottleneck. *)
let width = 6

let db =
  let rng = Drbg.create ~seed:"protocol-db" in
  Gen.uniform_records ~rng ~width 40

let system =
  lazy
    (let s = Protocol.setup ~width ~seed:"protocol-tests" db in
     Cloud.precompute_witnesses (Protocol.cloud s);
     s)

let all_conditions v = [ q v Slicer_types.Eq; q v Slicer_types.Gt; q v Slicer_types.Lt ]

let test_oracle_equality () =
  let s = Lazy.force system in
  (* A value present in the data plus one absent. *)
  let present = (match db with r :: _ -> List.assoc "" r.Slicer_types.fields | [] -> 0) in
  List.iter
    (fun v ->
      let query = q v Slicer_types.Eq in
      let out = Protocol.search s query in
      Alcotest.(check bool) "verified" true out.Protocol.so_verified;
      check_ids (Printf.sprintf "= %d" v) (Slicer_types.reference_search db query) out.Protocol.so_ids)
    [ present; 63 ]

let test_oracle_order_sweep () =
  let s = Lazy.force system in
  List.iter
    (fun v ->
      List.iter
        (fun query ->
          let out = Protocol.search s query in
          Alcotest.(check bool) "verified" true out.Protocol.so_verified;
          check_ids
            (Format.asprintf "%d %a" v Slicer_types.pp_condition query.Slicer_types.q_cond)
            (Slicer_types.reference_search db query)
            out.Protocol.so_ids)
        (all_conditions v))
    [ 0; 1; 17; 31; 32; 62; 63 ]

let test_token_counts () =
  let s = Lazy.force system in
  let eq = Protocol.search s (q 17 Slicer_types.Eq) in
  Alcotest.(check bool) "equality: at most one token" true (eq.Protocol.so_token_count <= 1);
  let ord = Protocol.search s (q 17 Slicer_types.Gt) in
  Alcotest.(check bool) "order: at most width tokens" true (ord.Protocol.so_token_count <= width);
  Alcotest.(check bool) "order: at least one token" true (ord.Protocol.so_token_count >= 1)

let test_offchain_agrees () =
  let s = Lazy.force system in
  let query = q 30 Slicer_types.Lt in
  let claims, ok = Protocol.search_offchain s query in
  Alcotest.(check bool) "offchain verifies" true ok;
  let onchain = Protocol.search s query in
  Alcotest.(check bool) "onchain verifies" true onchain.Protocol.so_verified;
  let offchain_ids =
    User.decrypt_results (Protocol.user s)
      (List.concat_map (fun (c : Slicer_contract.claim) -> c.Slicer_contract.results) claims)
  in
  check_ids "same ids" onchain.Protocol.so_ids offchain_ids

let test_result_sizes () =
  let s = Lazy.force system in
  let query = q 40 Slicer_types.Lt in
  let out = Protocol.search s query in
  let n = List.length (Slicer_types.reference_search db query) in
  Alcotest.(check int) "16 bytes per result" (16 * n) out.Protocol.so_result_bytes;
  Alcotest.(check bool) "constant-size VOs" true
    (out.Protocol.so_vo_bytes <= 64 * out.Protocol.so_token_count)

(* --- fairness under the threat model ---------------------------------- *)

let fresh_system seed = Protocol.setup ~width ~seed (List.filteri (fun i _ -> i < 25) db)

let test_misbehaviors_refunded () =
  let s = fresh_system "misbehavior" in
  let small_db = List.filteri (fun i _ -> i < 25) db in
  (* Pick a populated query so tampering has something to tamper with. *)
  let query = q 32 Slicer_types.Lt in
  Alcotest.(check bool) "query has matches" true (Slicer_types.reference_search small_db query <> []);
  List.iter
    (fun (mode, name) ->
      Protocol.set_cloud_behavior s mode;
      let user_before = Protocol.user_balance s in
      let cloud_before = Protocol.cloud_balance s in
      let out = Protocol.search s query in
      Alcotest.(check bool) (name ^ ": rejected") false out.Protocol.so_verified;
      Alcotest.(check int) (name ^ ": user refunded") user_before (Protocol.user_balance s);
      Alcotest.(check int) (name ^ ": cloud unpaid") cloud_before (Protocol.cloud_balance s))
    [ (Cloud.Drop_result, "drop");
      (Cloud.Inject_result, "inject");
      (Cloud.Tamper_result, "tamper");
      (Cloud.Forge_witness, "forge") ];
  (* Honesty restored: payment flows. *)
  Protocol.set_cloud_behavior s Cloud.Honest;
  let user_before = Protocol.user_balance s in
  let cloud_before = Protocol.cloud_balance s in
  let out = Protocol.search s query in
  Alcotest.(check bool) "honest verified" true out.Protocol.so_verified;
  Alcotest.(check int) "user paid fee" (user_before - 1000) (Protocol.user_balance s);
  Alcotest.(check int) "cloud earned fee" (cloud_before + 1000) (Protocol.cloud_balance s)

let test_stale_cloud_rejected () =
  let s = fresh_system "stale" in
  let query = q 20 Slicer_types.Gt in
  ignore (Protocol.search s query);
  (* Insert matching data, then let the cloud answer from its pre-insert
     snapshot: freshness must be enforced. *)
  Protocol.insert s [ Slicer_types.record_of_value "fresh-1" 3; Slicer_types.record_of_value "fresh-2" 5 ];
  Protocol.set_cloud_behavior s Cloud.Stale_results;
  let out = Protocol.search s query in
  Alcotest.(check bool) "stale answer rejected" false out.Protocol.so_verified;
  Protocol.set_cloud_behavior s Cloud.Honest;
  let out2 = Protocol.search s query in
  Alcotest.(check bool) "fresh answer accepted" true out2.Protocol.so_verified;
  Alcotest.(check bool) "fresh records present" true
    (List.mem "fresh-1" out2.Protocol.so_ids && List.mem "fresh-2" out2.Protocol.so_ids)

(* --- dynamics ------------------------------------------------------------ *)

let test_insert_then_search () =
  let s = fresh_system "dynamics" in
  let small_db = List.filteri (fun i _ -> i < 25) db in
  let ac_before = Protocol.onchain_ac s in
  Protocol.insert s
    [ Slicer_types.record_of_value "new-a" 11; Slicer_types.record_of_value "new-b" 11 ];
  let ac_after = Protocol.onchain_ac s in
  (match (ac_before, ac_after) with
   | Some a, Some b -> Alcotest.(check bool) "on-chain Ac refreshed" false (Bigint.equal a b)
   | _ -> Alcotest.fail "Ac missing on chain");
  let out = Protocol.search s (q 11 Slicer_types.Eq) in
  Alcotest.(check bool) "verified" true out.Protocol.so_verified;
  let expected =
    Slicer_types.reference_search
      (small_db
      @ [ Slicer_types.record_of_value "new-a" 11; Slicer_types.record_of_value "new-b" 11 ])
      (q 11 Slicer_types.Eq)
  in
  check_ids "insert visible" expected out.Protocol.so_ids;
  (* Order search must also see the fresh records. *)
  let out2 = Protocol.search s (q 12 Slicer_types.Gt) in
  Alcotest.(check bool) "order verified" true out2.Protocol.so_verified;
  Alcotest.(check bool) "order sees inserts" true
    (List.mem "new-a" out2.Protocol.so_ids && List.mem "new-b" out2.Protocol.so_ids)

let test_forward_security_old_tokens_blind () =
  let s = fresh_system "forward-security" in
  (* Capture tokens for a query, then insert matching data. The old
     tokens walk only generations <= j, so the new entries stay
     invisible — the cloud learns nothing linking them to past queries. *)
  let query = q 2 Slicer_types.Eq in
  let old_tokens = User.gen_tokens ~rng:(Protocol.rng s) (Protocol.user s) query in
  let before = Cloud.search (Protocol.cloud s) old_tokens in
  let count_results claims =
    List.fold_left (fun n (c : Slicer_contract.claim) -> n + List.length c.Slicer_contract.results) 0 claims
  in
  Protocol.insert s [ Slicer_types.record_of_value "hidden" 2 ];
  let after = Cloud.search (Protocol.cloud s) old_tokens in
  Alcotest.(check int) "old tokens see nothing new" (count_results before) (count_results after);
  (* A fresh token (post-insert T) does see the record. *)
  let out = Protocol.search s query in
  Alcotest.(check bool) "fresh token finds it" true (List.mem "hidden" out.Protocol.so_ids)

let test_duplicate_id_rejected () =
  let s = fresh_system "dup" in
  Protocol.insert s [ Slicer_types.record_of_value "unique-1" 9 ];
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Owner: duplicate record id \"unique-1\"") (fun () ->
      Protocol.insert s [ Slicer_types.record_of_value "unique-1" 10 ])

(* --- multi-attribute ------------------------------------------------------ *)

let test_multiattr () =
  let rng = Drbg.create ~seed:"ma" in
  let records = Gen.multiattr_records ~rng ~width ~attrs:[ "age"; "dose" ] 25 in
  let s = Protocol.setup ~width ~seed:"multiattr" records in
  Cloud.precompute_witnesses (Protocol.cloud s);
  List.iter
    (fun query ->
      let out = Protocol.search s query in
      Alcotest.(check bool) "verified" true out.Protocol.so_verified;
      check_ids
        (Format.asprintf "%s %a %d" query.Slicer_types.q_attr Slicer_types.pp_condition
           query.Slicer_types.q_cond query.Slicer_types.q_value)
        (Slicer_types.reference_search records query)
        out.Protocol.so_ids)
    [ q ~attr:"age" 30 Slicer_types.Gt;
      q ~attr:"age" 30 Slicer_types.Lt;
      q ~attr:"dose" 30 Slicer_types.Gt;
      q ~attr:"dose" 12 Slicer_types.Eq ];
  (* Cross-attribute isolation: same value, different attribute. *)
  let age_ids = (Protocol.search s (q ~attr:"age" 20 Slicer_types.Lt)).Protocol.so_ids in
  let expected = Slicer_types.reference_search records (q ~attr:"age" 20 Slicer_types.Lt) in
  check_ids "attr isolation" expected age_ids

(* --- deletion extension ---------------------------------------------------- *)

let test_dual_delete () =
  let records =
    [ Slicer_types.record_of_value "a" 5;
      Slicer_types.record_of_value "b" 5;
      Slicer_types.record_of_value "c" 9 ]
  in
  let d = Dual.setup ~width ~seed:"dual" records in
  let out = Dual.search d (q 5 Slicer_types.Eq) in
  Alcotest.(check bool) "verified" true out.Dual.verified;
  check_ids "before delete" [ "a"; "b" ] out.Dual.ids;
  Dual.delete d [ Slicer_types.record_of_value "a" 5 ];
  let out2 = Dual.search d (q 5 Slicer_types.Eq) in
  Alcotest.(check bool) "verified after delete" true out2.Dual.verified;
  check_ids "after delete" [ "b" ] out2.Dual.ids;
  Alcotest.(check int) "live count" 2 (Dual.live_count d);
  (* Order search respects deletion too. *)
  let out3 = Dual.search d (q 6 Slicer_types.Lt) in
  check_ids "order after delete" [ "c" ] out3.Dual.ids

let test_dual_guards () =
  let d = Dual.setup ~width ~seed:"dual-guards" [ Slicer_types.record_of_value "a" 5 ] in
  Alcotest.(check bool) "delete unknown raises" true
    (try
       Dual.delete d [ Slicer_types.record_of_value "zz" 5 ];
       false
     with Invalid_argument _ -> true);
  Dual.delete d [ Slicer_types.record_of_value "a" 5 ];
  Alcotest.(check bool) "double delete raises" true
    (try
       Dual.delete d [ Slicer_types.record_of_value "a" 5 ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "reinsert deleted id raises" true
    (try
       Dual.insert d [ Slicer_types.record_of_value "a" 7 ];
       false
     with Invalid_argument _ -> true)

let test_dual_update () =
  let d = Dual.setup ~width ~seed:"dual-update" [ Slicer_types.record_of_value "v1" 5 ] in
  Dual.update d ~old_record:(Slicer_types.record_of_value "v1" 5)
    (Slicer_types.record_of_value "v2" 9);
  check_ids "old value gone" [] (Dual.search d (q 5 Slicer_types.Eq)).Dual.ids;
  check_ids "new value present" [ "v2" ] (Dual.search d (q 9 Slicer_types.Eq)).Dual.ids

let test_dual_update_rejects_replayed_id () =
  (* The natural "overwrite in place" mistake: updating a record while
     keeping its ID replays the old ID, which the paper's no-repeated-ID
     rule forbids. The rejection must be all-or-nothing — validation
     happens before either instance is touched, so the old record is
     still live and searchable afterwards. *)
  let d = Dual.setup ~width ~seed:"dual-replay" [ Slicer_types.record_of_value "v1" 5 ] in
  Alcotest.(check bool) "replayed old ID rejected" true
    (try
       Dual.update d ~old_record:(Slicer_types.record_of_value "v1" 5)
         (Slicer_types.record_of_value "v1" 9);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "previously used ID rejected" true
    (try
       Dual.insert d [ Slicer_types.record_of_value "other" 7 ];
       Dual.update d ~old_record:(Slicer_types.record_of_value "v1" 5)
         (Slicer_types.record_of_value "other" 9);
       false
     with Invalid_argument _ -> true);
  (* Nothing was half-applied: the old record still answers, the
     aborted new value does not. *)
  check_ids "old record untouched" [ "v1" ] (Dual.search d (q 5 Slicer_types.Eq)).Dual.ids;
  check_ids "aborted update left no trace" [] (Dual.search d (q 9 Slicer_types.Eq)).Dual.ids;
  Alcotest.(check int) "live count unchanged" 2 (Dual.live_count d)

(* --- extensions: batched settlement, interval search, leakage ------------- *)

let test_batched_search_agrees () =
  let s = Lazy.force system in
  let query = q 25 Slicer_types.Gt in
  let plain = Protocol.search s query in
  let batched = Protocol.search_batched s query in
  Alcotest.(check bool) "batched verified" true batched.Protocol.so_verified;
  check_ids "same ids" plain.Protocol.so_ids batched.Protocol.so_ids;
  Alcotest.(check bool) "one 64B VO instead of per-token" true
    (batched.Protocol.so_vo_bytes <= 64 && plain.Protocol.so_vo_bytes >= batched.Protocol.so_vo_bytes)

let test_batched_rejects_tampering () =
  let s = fresh_system "batched-tamper" in
  Protocol.set_cloud_behavior s Cloud.Drop_result;
  let out = Protocol.search_batched s (q 32 Slicer_types.Lt) in
  Alcotest.(check bool) "tampered batch refunded" false out.Protocol.so_verified;
  Protocol.set_cloud_behavior s Cloud.Forge_witness;
  let out2 = Protocol.search_batched s (q 32 Slicer_types.Lt) in
  Alcotest.(check bool) "forged batch witness refunded" false out2.Protocol.so_verified;
  Protocol.set_cloud_behavior s Cloud.Honest;
  let out3 = Protocol.search_batched s (q 32 Slicer_types.Lt) in
  Alcotest.(check bool) "honest batch paid" true out3.Protocol.so_verified

let test_no_witness_index_agrees () =
  (* The [--no-witness-index] escape hatch: two systems from one seed,
     index on and off, must settle the same results with the same VO
     size — the index is a cache, never a semantic change. And the
     threat model must survive the cache: misbehaviour is still caught
     with the index on. *)
  let records = List.filteri (fun i _ -> i < 25) db in
  let on = Protocol.setup ~width ~seed:"windex-onoff" records in
  let off = Protocol.setup ~width ~witness_index:false ~seed:"windex-onoff" records in
  let query = q 30 Slicer_types.Lt in
  let a = Protocol.search on query and b = Protocol.search off query in
  Alcotest.(check bool) "both verified" true (a.Protocol.so_verified && b.Protocol.so_verified);
  check_ids "same ids" a.Protocol.so_ids b.Protocol.so_ids;
  Alcotest.(check int) "same VO bytes" a.Protocol.so_vo_bytes b.Protocol.so_vo_bytes;
  let ab = Protocol.search_batched on query and bb = Protocol.search_batched off query in
  Alcotest.(check bool) "batched both verified" true
    (ab.Protocol.so_verified && bb.Protocol.so_verified);
  check_ids "batched same ids" ab.Protocol.so_ids bb.Protocol.so_ids;
  Protocol.set_cloud_behavior on Cloud.Forge_witness;
  Alcotest.(check bool) "forged witness refunded with index on" false
    (Protocol.search on query).Protocol.so_verified;
  Protocol.set_cloud_behavior on Cloud.Drop_result;
  Alcotest.(check bool) "dropped result refunded with index on" false
    (Protocol.search on query).Protocol.so_verified

let test_search_conj () =
  let rng = Drbg.create ~seed:"conj" in
  let records = Gen.multiattr_records ~rng ~width ~attrs:[ "age"; "dose" ] 30 in
  let s = Protocol.setup ~width ~seed:"conj" records in
  Cloud.precompute_witnesses (Protocol.cloud s);
  let q1 = q ~attr:"age" 30 Slicer_types.Gt and q2 = q ~attr:"dose" 30 Slicer_types.Lt in
  let out = Protocol.search_conj s [ q1; q2 ] in
  Alcotest.(check bool) "verified" true out.Protocol.so_verified;
  let expected =
    List.filter
      (fun id -> List.mem id (Slicer_types.reference_search records q2))
      (Slicer_types.reference_search records q1)
  in
  check_ids "conjunction oracle" expected out.Protocol.so_ids;
  Alcotest.check_raises "empty conjunction"
    (Invalid_argument "Protocol.search_conj: empty conjunction") (fun () ->
      ignore (Protocol.search_conj s []))

let test_search_between () =
  let s = Lazy.force system in
  let out = Protocol.search_between s ~lo:10 ~hi:40 () in
  Alcotest.(check bool) "verified" true out.Protocol.so_verified;
  let expected =
    List.filter
      (fun id -> List.mem id (Slicer_types.reference_search db (q 40 Slicer_types.Gt)))
      (Slicer_types.reference_search db (q 10 Slicer_types.Lt))
  in
  check_ids "interval oracle" expected out.Protocol.so_ids

let test_leakage_shape_only () =
  (* Forward security, stated as the paper states it: two same-shape
     insertions of different records produce identical insert leakage. *)
  let sa = fresh_system "leak-a" and sb = fresh_system "leak-b" in
  let batch_a = [ Slicer_types.record_of_value "alpha" 13; Slicer_types.record_of_value "beta" 13 ] in
  let batch_b = [ Slicer_types.record_of_value "gamma" 46; Slicer_types.record_of_value "delta" 46 ] in
  let ship_a = Owner.insert (Protocol.owner sa) batch_a in
  let ship_b = Owner.insert (Protocol.owner sb) batch_b in
  Alcotest.(check bool) "identical insert leakage" true
    (Leakage.equal_build (Leakage.of_shipment ship_a) (Leakage.of_shipment ship_b))

let test_leakage_search_counts () =
  let s = Lazy.force system in
  let query = q 20 Slicer_types.Lt in
  let tokens = User.gen_tokens ~rng:(Protocol.rng s) (Protocol.user s) query in
  let claims = Cloud.search (Protocol.cloud s) tokens in
  let leak = Leakage.of_search tokens claims in
  Alcotest.(check int) "token count matches" (List.length tokens) leak.Leakage.sl_token_count;
  Alcotest.(check int) "per-token counts" (List.length claims) (List.length leak.Leakage.sl_result_counts);
  Alcotest.(check int) "result width is one AES block" 128 leak.Leakage.sl_result_bits;
  let total = List.fold_left ( + ) 0 leak.Leakage.sl_result_counts in
  Alcotest.(check int) "counts sum to matches"
    (List.length (Slicer_types.reference_search db query)) total

let test_repeat_matrix () =
  let s = fresh_system "repeat" in
  (* Query two values that are certainly indexed: read them off the data. *)
  let v1, v2 =
    match
      List.sort_uniq compare
        (List.filter_map (fun r -> List.assoc_opt "" r.Slicer_types.fields)
           (List.filteri (fun i _ -> i < 25) db))
    with
    | a :: b :: _ -> (a, b)
    | _ -> Alcotest.fail "dataset too uniform"
  in
  let tokens q' = User.gen_tokens ~rng:(Protocol.rng s) (Protocol.user s) q' in
  let t1 = tokens (q v1 Slicer_types.Eq) in
  let t2 = tokens (q v1 Slicer_types.Eq) in
  let t3 = tokens (q v2 Slicer_types.Eq) in
  (match (t1, t2, t3) with
   | [ a ], [ b ], [ c ] ->
     let m = Leakage.repeat_matrix [ a; b; c ] in
     Alcotest.(check bool) "same query repeats" true m.(0).(1);
     Alcotest.(check bool) "diagonal" true m.(2).(2);
     Alcotest.(check bool) "different query distinct" false m.(0).(2)
   | _ -> Alcotest.fail "expected singleton token lists for indexed values")

let test_stale_user_sees_past () =
  (* The paper's freshness guarantee rides on the owner -> user channel:
     old primes stay in X (Alg. 2 line 24), so a user with a stale
     trapdoor state gets verifiably-correct *historical* results. A user
     with the updated state sees everything. This pins that faithful
     quirk of the design. *)
  let s = fresh_system "stale-user" in
  let stale_state = Owner.export_trapdoor_state (Protocol.owner s) in
  let keys = Keys.for_user (Owner.keys (Protocol.owner s)) in
  let stale_user = User.create ~keys ~width stale_state in
  Protocol.insert s [ Slicer_types.record_of_value "late" 3 ];
  let query = q 3 Slicer_types.Eq in
  let stale_tokens = User.gen_tokens ~rng:(Protocol.rng s) stale_user query in
  let claims = Cloud.search (Protocol.cloud s) stale_tokens in
  (* Old-generation claims still verify against the new Ac... *)
  Alcotest.(check bool) "historical claim verifies" true
    (Verifier.verify_claims (Owner.acc_params (Protocol.owner s))
       ~ac:(Owner.current_ac (Protocol.owner s)) claims);
  (* ...but do not contain the fresh record. *)
  let ids =
    User.decrypt_results stale_user
      (List.concat_map (fun (c : Slicer_contract.claim) -> c.Slicer_contract.results) claims)
  in
  Alcotest.(check bool) "fresh record invisible to stale user" false (List.mem "late" ids);
  (* After the owner re-exports T, the same user sees it. *)
  User.update_state stale_user (Owner.export_trapdoor_state (Protocol.owner s));
  let fresh_tokens = User.gen_tokens ~rng:(Protocol.rng s) stale_user query in
  let claims2 = Cloud.search (Protocol.cloud s) fresh_tokens in
  let ids2 =
    User.decrypt_results stale_user
      (List.concat_map (fun (c : Slicer_contract.claim) -> c.Slicer_contract.results) claims2)
  in
  Alcotest.(check bool) "fresh record visible after state update" true (List.mem "late" ids2)

let test_no_double_settlement () =
  let s = fresh_system "double" in
  let query = q 32 Slicer_types.Lt in
  let out = Protocol.search s query in
  Alcotest.(check bool) "first settles" true out.Protocol.so_verified;
  (* Replaying the settlement against the same request must fail: the
     escrow is gone and the status is no longer pending. *)
  let tokens = User.gen_tokens ~rng:(Protocol.rng s) (Protocol.user s) query in
  let claims = Cloud.search (Protocol.cloud s) tokens in
  let sr =
    Slicer_contract.submit_result (Protocol.ledger s) ~cloud:(Protocol.cloud_address s)
      ~contract:(Protocol.contract_address s) ~request_id:"req-1" claims
  in
  (match sr.Vm.r_output with
   | Error "no pending request" -> ()
   | Ok o -> Alcotest.failf "double settlement succeeded: [%s]" (String.concat ";" o)
   | Error e -> Alcotest.failf "unexpected error: %s" e)

let test_simulator_shapes () =
  (* The Theorem 2 structure, executably: transcripts fabricated from
     leakage alone are shape-identical to real ones. *)
  let s = fresh_system "simulator" in
  let rng = Drbg.create ~seed:"sim" in
  (* Build phase. *)
  let real_shipment = Owner.insert (Protocol.owner s) [ Slicer_types.record_of_value "sim-1" 9 ] in
  let leak = Leakage.of_shipment real_shipment in
  let fake_shipment = Simulator.simulate_build ~rng leak in
  Alcotest.(check bool) "build shapes agree" true
    (Leakage.equal_build leak (Leakage.of_shipment fake_shipment));
  (* Search phase. *)
  let query = q 32 Slicer_types.Lt in
  let tokens = User.gen_tokens ~rng:(Protocol.rng s) (Protocol.user s) query in
  let claims = Cloud.search (Protocol.cloud s) tokens in
  let sleak = Leakage.of_search tokens claims in
  let fake_tokens, fake_claims = Simulator.simulate_search ~rng sleak in
  let fake_leak = Leakage.of_search fake_tokens fake_claims in
  Alcotest.(check bool) "search shapes agree" true (sleak = fake_leak);
  (* And the fabricated transcript is not accidentally the real one. *)
  Alcotest.(check bool) "contents differ" false
    (List.equal
       (fun (a : Slicer_contract.claim) b ->
         String.equal a.Slicer_contract.token_bytes b.Slicer_contract.token_bytes)
       claims fake_claims
    && claims <> [])

(* --- soundness fuzzing ------------------------------------------------------ *)

(* Honest claims for a fixed populated query, mutated randomly: no
   mutation that changes the result multiset or the witness may verify,
   while permutations of the result list (a multiset no-op) must. *)
let soundness_claims =
  lazy
    (let s = Lazy.force system in
     let query = q 32 Slicer_types.Lt in
     let tokens = User.gen_tokens ~rng:(Protocol.rng s) (Protocol.user s) query in
     let claims = Cloud.search (Protocol.cloud s) tokens in
     let params = Owner.acc_params (Protocol.owner s) in
     let ac = Owner.current_ac (Protocol.owner s) in
     (claims, params, ac))

let mutate_claim ~kind ~index (c : Slicer_contract.claim) =
  let flip s i =
    if String.length s = 0 then s
    else String.mapi (fun k ch -> if k = i mod String.length s then Char.chr (Char.code ch lxor 0x40) else ch) s
  in
  match kind with
  | 0 -> { c with Slicer_contract.token_bytes = flip c.Slicer_contract.token_bytes index }
  | 1 ->
    { c with
      Slicer_contract.results =
        (match c.Slicer_contract.results with [] -> [ "ghost-entry-16b!" ] | _ :: rest -> rest) }
  | 2 -> { c with Slicer_contract.results = String.make 16 'Z' :: c.Slicer_contract.results }
  | 3 when c.Slicer_contract.results <> [] ->
    { c with
      Slicer_contract.results =
        List.mapi
          (fun i r -> if i = index mod List.length c.Slicer_contract.results then flip r 0 else r)
          c.Slicer_contract.results }
  | _ -> { c with Slicer_contract.witness = Bigint.add_int c.Slicer_contract.witness (1 + (index mod 5)) }

let soundness_props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"no mutated claim verifies" ~count:100
         QCheck2.Gen.(pair (int_range 0 4) (int_range 0 1000))
         (fun (kind, index) ->
           let claims, params, ac = Lazy.force soundness_claims in
           match claims with
           | [] -> true
           | first :: _ -> not (Verifier.verify_claim params ~ac (mutate_claim ~kind ~index first))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"result permutation still verifies (multiset)" ~count:20
         QCheck2.Gen.(int_range 0 1000)
         (fun _ ->
           let claims, params, ac = Lazy.force soundness_claims in
           List.for_all
             (fun (c : Slicer_contract.claim) ->
               Verifier.verify_claim params ~ac
                 { c with Slicer_contract.results = List.rev c.Slicer_contract.results })
             claims)) ]

(* --- misc ------------------------------------------------------------------ *)

let test_empty_query () =
  let s = Lazy.force system in
  (* Query an attribute that does not exist: no tokens, empty result,
     verification trivially passes. *)
  let out = Protocol.search s (q ~attr:"nope" 3 Slicer_types.Gt) in
  Alcotest.(check (list string)) "no ids" [] out.Protocol.so_ids;
  Alcotest.(check int) "no tokens" 0 out.Protocol.so_token_count;
  Alcotest.(check bool) "verified" true out.Protocol.so_verified

let test_features_table () =
  Alcotest.(check bool) "slicer row all yes" true
    Features.(
      slicer.dynamics = Yes && slicer.numerical = Yes && slicer.freshness = Yes
      && slicer.forward_security = Yes && slicer.public_verifiability = Yes);
  Alcotest.(check int) "twelve rows" 12 (List.length Features.all);
  let rendered = Features.render () in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions Ours" true (contains "Ours" rendered)

let test_reference_search () =
  let records =
    [ Slicer_types.record_of_value "x" 3;
      Slicer_types.record_of_value "y" 7;
      { Slicer_types.id = "z"; fields = [ ("other", 3) ] } ]
  in
  check_ids "eq" [ "x" ] (Slicer_types.reference_search records (q 3 Slicer_types.Eq));
  check_ids "gt" [ "x" ] (Slicer_types.reference_search records (q 5 Slicer_types.Gt));
  check_ids "lt" [ "y" ] (Slicer_types.reference_search records (q 5 Slicer_types.Lt));
  check_ids "attr" [ "z" ] (Slicer_types.reference_search records (q ~attr:"other" 3 Slicer_types.Eq))

let test_record_validation () =
  Alcotest.check_raises "long id" (Invalid_argument "Slicer_types: record id exceeds 15 bytes")
    (fun () -> Slicer_types.check_record ~width:8 (Slicer_types.record_of_value (String.make 16 'x') 1));
  Alcotest.check_raises "no fields" (Invalid_argument "Slicer_types: record has no fields")
    (fun () -> Slicer_types.check_record ~width:8 { Slicer_types.id = "a"; fields = [] })

let () =
  Alcotest.run "protocol"
    [ ( "search oracle",
        [ Alcotest.test_case "equality" `Quick test_oracle_equality;
          Alcotest.test_case "order sweep" `Quick test_oracle_order_sweep;
          Alcotest.test_case "token counts" `Quick test_token_counts;
          Alcotest.test_case "offchain agrees with onchain" `Quick test_offchain_agrees;
          Alcotest.test_case "result sizes" `Quick test_result_sizes;
          Alcotest.test_case "empty query" `Quick test_empty_query ] );
      ( "fairness",
        [ Alcotest.test_case "misbehaviours refunded" `Quick test_misbehaviors_refunded;
          Alcotest.test_case "stale cloud rejected" `Quick test_stale_cloud_rejected ] );
      ( "dynamics",
        [ Alcotest.test_case "insert then search" `Quick test_insert_then_search;
          Alcotest.test_case "forward security" `Quick test_forward_security_old_tokens_blind;
          Alcotest.test_case "duplicate id rejected" `Quick test_duplicate_id_rejected ] );
      ("multi-attribute", [ Alcotest.test_case "per-attribute queries" `Quick test_multiattr ]);
      ( "deletion",
        [ Alcotest.test_case "delete" `Quick test_dual_delete;
          Alcotest.test_case "guards" `Quick test_dual_guards;
          Alcotest.test_case "update" `Quick test_dual_update;
          Alcotest.test_case "update rejects a replayed ID" `Quick
            test_dual_update_rejects_replayed_id ] );
      ( "extensions",
        [ Alcotest.test_case "batched settlement agrees" `Quick test_batched_search_agrees;
          Alcotest.test_case "batched rejects tampering" `Quick test_batched_rejects_tampering;
          Alcotest.test_case "witness index on/off agree" `Quick test_no_witness_index_agrees;
          Alcotest.test_case "interval search" `Quick test_search_between;
          Alcotest.test_case "conjunctive search" `Quick test_search_conj;
          Alcotest.test_case "insert leakage is shape-only" `Quick test_leakage_shape_only;
          Alcotest.test_case "search leakage counts" `Quick test_leakage_search_counts;
          Alcotest.test_case "repeat matrix" `Quick test_repeat_matrix;
          Alcotest.test_case "stale user sees verified past" `Quick test_stale_user_sees_past;
          Alcotest.test_case "no double settlement" `Quick test_no_double_settlement;
          Alcotest.test_case "theorem-2 simulator shapes" `Quick test_simulator_shapes ] );
      ("soundness", soundness_props);
      ( "misc",
        [ Alcotest.test_case "features table" `Quick test_features_table;
          Alcotest.test_case "reference search" `Quick test_reference_search;
          Alcotest.test_case "record validation" `Quick test_record_validation ] ) ]
