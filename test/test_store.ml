(* The durability layer, bottom-up: the CRC kernel against its check
   value, the WAL's torn-tail discipline under truncation and bit rot
   (qcheck), group-commit under thread contention, atomic snapshot
   generations with fallback, and the Store-level crash-consistency
   property — corrupt the directory any way you like, recovery yields
   some prefix of the applied events and never an exception. *)

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- scratch directories ----------------------------------------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "slicer-store-%d-%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let file_size path = (Unix.stat path).Unix.st_size

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size > 0 then begin
        let off = off mod size in
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        let b = Bytes.create 1 in
        ignore (Unix.read fd b 0 1);
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl (off mod 8))));
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        ignore (Unix.write fd b 0 1)
      end)

let newest_snap dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         if String.length name > 9
            && String.sub name 0 5 = "snap-"
            && Filename.check_suffix name ".bin"
         then
           Option.map
             (fun seq -> (seq, Filename.concat dir name))
             (int_of_string_opt (String.sub name 5 (String.length name - 9)))
         else None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> function
  | (_, path) :: _ -> Some path
  | [] -> None

(* --- crc32 ------------------------------------------------------------------- *)

let test_crc_check_value () =
  Alcotest.(check int) "standard check value" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check bool) "order matters" true (Crc32.string "ab" <> Crc32.string "ba")

let crc_props =
  [ prop "chunked update agrees with one-shot" ~count:200
      QCheck2.Gen.(pair (string_size (int_range 0 100)) nat)
      (fun (s, cut) ->
        let n = String.length s in
        let cut = if n = 0 then 0 else cut mod (n + 1) in
        let chunked = Crc32.update (Crc32.update 0 s 0 cut) s cut (n - cut) in
        chunked = Crc32.string s) ]

(* --- wal --------------------------------------------------------------------- *)

let wal_events =
  [ (1, ""); (2, "register:alice"); (3, String.make 300 '\x7f'); (4, "bytes \x00\xff\x01") ]

let append_all wal = List.iter (fun (tag, p) -> ignore (Wal.append wal ~tag p)) wal_events

let check_events msg expected (actual : Wal.event list) =
  Alcotest.(check (list (triple int int string)))
    msg
    (List.mapi (fun i (tag, p) -> (i + 1, tag, p)) expected)
    (List.map (fun e -> (e.Wal.ev_seq, e.Wal.ev_tag, e.Wal.ev_payload)) actual)

let test_wal_roundtrip () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "wal.log" in
      let wal, events, dropped = Wal.open_ ~path ~fsync:true in
      Alcotest.(check bool) "fresh log is empty" true (events = [] && not dropped);
      append_all wal;
      Wal.sync wal;
      Alcotest.(check int) "everything synced" (Wal.size wal) (Wal.last_synced wal);
      Wal.close wal;
      let wal2, events, dropped = Wal.open_ ~path ~fsync:true in
      Alcotest.(check bool) "clean tail" false dropped;
      check_events "records survive reopen" wal_events events;
      (* Appends continue the sequence, not restart it. *)
      let seq = Wal.append wal2 ~tag:9 "more" in
      Alcotest.(check int) "sequence continues" (List.length wal_events + 1) seq;
      Wal.close wal2)

let test_wal_reset () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "wal.log" in
      let wal, _, _ = Wal.open_ ~path ~fsync:false in
      append_all wal;
      Wal.reset wal ~next_seq:11;
      Alcotest.(check int) "log truncated" 0 (Wal.size wal);
      ignore (Wal.append wal ~tag:5 "after");
      Wal.close wal;
      let wal2, events, dropped = Wal.open_ ~path ~fsync:false in
      Wal.close wal2;
      Alcotest.(check bool) "clean" false dropped;
      Alcotest.(check (list (triple int int string)))
        "only post-reset records, renumbered"
        [ (11, 5, "after") ]
        (List.map (fun e -> (e.Wal.ev_seq, e.Wal.ev_tag, e.Wal.ev_payload)) events))

let test_wal_group_commit () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "wal.log" in
      let wal, _, _ = Wal.open_ ~path ~fsync:true in
      let threads = 4 and per_thread = 20 in
      let errors = Array.make threads None in
      let worker i () =
        try
          for j = 0 to per_thread - 1 do
            ignore (Wal.append wal ~tag:1 (Printf.sprintf "t%d-%d" i j));
            Wal.sync wal
          done
        with exn -> errors.(i) <- Some (Printexc.to_string exn)
      in
      let ts = List.init threads (fun i -> Thread.create (worker i) ()) in
      List.iter Thread.join ts;
      Array.iteri
        (fun i e -> Option.iter (Alcotest.failf "thread %d: %s" i) e)
        errors;
      Alcotest.(check int) "every returned sync covered its bytes" (Wal.size wal)
        (Wal.last_synced wal);
      Wal.close wal;
      let wal2, events, dropped = Wal.open_ ~path ~fsync:true in
      Wal.close wal2;
      Alcotest.(check bool) "clean" false dropped;
      Alcotest.(check int) "all records present" (threads * per_thread) (List.length events);
      List.iteri
        (fun i e -> Alcotest.(check int) "gapless sequence" (i + 1) e.Wal.ev_seq)
        events)

let wal_corruption_props =
  let build dir =
    Unix.mkdir dir 0o755;
    let path = Filename.concat dir "wal.log" in
    let wal, _, _ = Wal.open_ ~path ~fsync:false in
    append_all wal;
    Wal.close wal;
    path
  in
  let is_prefix events =
    (* Recovered records must be the first k appended, in order. *)
    List.for_all2
      (fun e (tag, p) -> e.Wal.ev_tag = tag && e.Wal.ev_payload = p)
      events
      (List.filteri (fun i _ -> i < List.length events) wal_events)
    && List.for_all (fun e -> e.Wal.ev_seq <= List.length wal_events) events
  in
  [ prop "truncation at any byte yields a clean prefix" ~count:60 QCheck2.Gen.nat
      (fun cut ->
        with_dir (fun dir ->
            let path = build dir in
            let size = file_size path in
            let cut = cut mod (size + 1) in
            truncate_file path cut;
            let wal, events, dropped = Wal.open_ ~path ~fsync:false in
            Wal.close wal;
            is_prefix events
            && (cut = size || List.length events < List.length wal_events || not dropped)
            (* the torn tail is physically gone: reopening again is clean *)
            &&
            let wal2, events2, dropped2 = Wal.open_ ~path ~fsync:false in
            Wal.close wal2;
            events2 = events && not dropped2));
    prop "a flipped byte never parses past the damage" ~count:60 QCheck2.Gen.nat
      (fun off ->
        with_dir (fun dir ->
            let path = build dir in
            flip_byte path off;
            match Wal.open_ ~path ~fsync:false with
            | wal, events, _ ->
              Wal.close wal;
              is_prefix events && List.length events < List.length wal_events
            | exception exn ->
              QCheck2.Test.fail_reportf "open raised %s" (Printexc.to_string exn))) ]

(* --- snapfile ---------------------------------------------------------------- *)

let test_snapfile_generations () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      Alcotest.(check bool) "empty dir" true (Snapfile.load_newest ~dir = None);
      Snapfile.write ~dir ~seq:3 ~fsync:true "state at 3";
      Snapfile.write ~dir ~seq:7 ~fsync:true "state at 7";
      Snapfile.write ~dir ~seq:12 ~fsync:true "state at 12";
      Alcotest.(check (option (pair int string)))
        "newest wins" (Some (12, "state at 12")) (Snapfile.load_newest ~dir);
      (* Only two generations survive the prune. *)
      let snaps =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".bin")
      in
      Alcotest.(check int) "pruned to two generations" 2 (List.length snaps);
      (* A corrupt newest generation falls back to the previous one. *)
      (match newest_snap dir with
       | Some path -> flip_byte path 9
       | None -> Alcotest.fail "no snapshot on disk");
      Alcotest.(check (option (pair int string)))
        "fallback to the older generation" (Some (7, "state at 7"))
        (Snapfile.load_newest ~dir);
      Snapfile.wipe ~dir;
      Alcotest.(check bool) "wiped" true (Snapfile.load_newest ~dir = None))

(* --- store: recovery semantics ----------------------------------------------- *)

let ev_payload i = Printf.sprintf "ev:%d" i
let state_payload seq = Printf.sprintf "state:%d" seq

let store_cfg ?(snapshot_bytes = max_int) dir = { Store.dir; fsync = false; snapshot_bytes }

(* Apply [n] events, checkpointing after those listed in [checkpoints].
   Event seq [i] carries payload "ev:i"; a checkpoint at seq [s] carries
   "state:s" — so any recovered (snapshot, events) pair self-describes
   which prefix of history it represents. *)
let apply_script dir n checkpoints =
  let store, _ = Store.open_ (store_cfg dir) in
  for i = 1 to n do
    ignore (Store.append store ~tag:1 (ev_payload i));
    if List.mem i checkpoints then Store.checkpoint store (state_payload (Store.last_seq store))
  done;
  Store.sync store;
  Store.close store

(* The crash-consistency invariant: whatever recovery returns must be
   the state after the first [k] events, for some k ≤ applied. *)
let check_prefix ~applied (rc : Store.recovery) =
  let base =
    match rc.Store.rc_snapshot with
    | None -> 0
    | Some (seq, payload) ->
      if payload <> state_payload seq then
        QCheck2.Test.fail_reportf "snapshot %d carries %S" seq payload;
      if seq > applied then QCheck2.Test.fail_reportf "snapshot %d beyond history" seq;
      seq
  in
  List.iteri
    (fun i e ->
      if e.Store.ev_seq <> base + i + 1 then
        QCheck2.Test.fail_reportf "gap: event %d after base %d" e.Store.ev_seq base;
      if e.Store.ev_payload <> ev_payload e.Store.ev_seq then
        QCheck2.Test.fail_reportf "event %d carries %S" e.Store.ev_seq e.Store.ev_payload)
    rc.Store.rc_events;
  let recovered =
    match List.rev rc.Store.rc_events with e :: _ -> e.Store.ev_seq | [] -> base
  in
  if recovered > applied then
    QCheck2.Test.fail_reportf "recovered %d of %d applied" recovered applied;
  recovered

let test_store_roundtrip () =
  with_dir (fun dir ->
      let store, rc = Store.open_ (store_cfg dir) in
      Alcotest.(check bool) "fresh dir is empty" true (Store.is_empty store);
      Alcotest.(check bool) "no snapshot" true (rc.Store.rc_snapshot = None);
      Store.close store;
      apply_script dir 5 [ 3 ];
      let store, rc = Store.open_ (store_cfg dir) in
      Alcotest.(check bool) "not empty now" false (Store.is_empty store);
      Alcotest.(check (option (pair int string)))
        "snapshot at the checkpoint" (Some (3, state_payload 3)) rc.Store.rc_snapshot;
      Alcotest.(check (list int)) "tail above the snapshot" [ 4; 5 ]
        (List.map (fun e -> e.Store.ev_seq) rc.Store.rc_events);
      Alcotest.(check bool) "nothing dropped" false rc.Store.rc_dropped_tail;
      Alcotest.(check int) "last_seq" 5 (Store.last_seq store);
      (* Appends after recovery continue the history. *)
      Alcotest.(check int) "next seq continues" 6 (Store.append store ~tag:1 (ev_payload 6));
      Store.close store)

let test_store_snapshot_threshold () =
  with_dir (fun dir ->
      let store, _ = Store.open_ (store_cfg ~snapshot_bytes:64 dir) in
      Alcotest.(check bool) "empty log below threshold" false (Store.should_snapshot store);
      while not (Store.should_snapshot store) do
        ignore (Store.append store ~tag:1 "0123456789abcdef")
      done;
      Alcotest.(check bool) "threshold reached" true (Store.wal_bytes store >= 64);
      Store.checkpoint store "state";
      Alcotest.(check int) "checkpoint drains the log" 0 (Store.wal_bytes store);
      Alcotest.(check bool) "below threshold again" false (Store.should_snapshot store);
      Store.close store)

let test_store_crash_between_snapshot_and_truncate () =
  (* The dangerous window in [checkpoint]: snapshot published, WAL not
     yet reset. Recovery must skip the already-materialized records. *)
  with_dir (fun dir ->
      apply_script dir 5 [];
      Snapfile.write ~dir ~seq:3 ~fsync:false (state_payload 3);
      let store, rc = Store.open_ (store_cfg dir) in
      Store.close store;
      Alcotest.(check (option (pair int string)))
        "snapshot loaded" (Some (3, state_payload 3)) rc.Store.rc_snapshot;
      Alcotest.(check (list int)) "only the uncovered tail replays" [ 4; 5 ]
        (List.map (fun e -> e.Store.ev_seq) rc.Store.rc_events))

let test_store_corrupt_snapshot_falls_back () =
  (* Newest snapshot rots: recovery falls back a generation — and must
     then drop the WAL tail wholesale, because those records extend the
     *corrupt* snapshot's epoch, not the older base. *)
  with_dir (fun dir ->
      apply_script dir 7 [ 3; 5 ];
      (match newest_snap dir with
       | Some path -> flip_byte path 11
       | None -> Alcotest.fail "no snapshot written");
      let store, rc = Store.open_ (store_cfg dir) in
      Alcotest.(check (option (pair int string)))
        "older generation restored" (Some (3, state_payload 3)) rc.Store.rc_snapshot;
      Alcotest.(check (list int)) "out-of-epoch tail dropped, not misapplied" []
        (List.map (fun e -> e.Store.ev_seq) rc.Store.rc_events);
      Alcotest.(check bool) "drop was reported" true rc.Store.rc_dropped_tail;
      Alcotest.(check int) "history resumes after the snapshot" 3 (Store.last_seq store);
      Store.close store)

let store_crash_props =
  let gen =
    QCheck2.Gen.(
      pair
        (pair (int_range 1 25) (list_size (int_range 0 3) (int_range 1 25)))
        (pair (int_range 0 3) nat))
  in
  [ prop "recovery after arbitrary corruption is a prefix, never an exception" ~count:80 gen
      (fun ((n, checkpoints), (mode, off)) ->
        with_dir (fun dir ->
            apply_script dir n (List.filter (fun c -> c <= n) checkpoints);
            let wal = Filename.concat dir "wal.log" in
            (match mode with
             | 0 -> truncate_file wal (off mod (file_size wal + 1))
             | 1 -> flip_byte wal off
             | 2 -> Option.iter (fun p -> flip_byte p off) (newest_snap dir)
             | _ -> (* clean restart *) ());
            match Store.open_ (store_cfg dir) with
            | store, rc ->
              Store.close store;
              let recovered = check_prefix ~applied:n rc in
              (* A clean restart loses nothing at all. *)
              mode <> 3 || recovered = n
            | exception exn ->
              QCheck2.Test.fail_reportf "recovery raised %s" (Printexc.to_string exn)));
    prop "recovery is idempotent: a second open recovers the same state" ~count:40
      (QCheck2.Gen.pair (QCheck2.Gen.int_range 1 15) QCheck2.Gen.nat)
      (fun (n, off) ->
        with_dir (fun dir ->
            apply_script dir n [];
            let wal = Filename.concat dir "wal.log" in
            truncate_file wal (off mod (file_size wal + 1));
            let store1, rc1 = Store.open_ (store_cfg dir) in
            Store.close store1;
            let store2, rc2 = Store.open_ (store_cfg dir) in
            Store.close store2;
            rc1.Store.rc_events = rc2.Store.rc_events
            && rc1.Store.rc_snapshot = rc2.Store.rc_snapshot
            && not rc2.Store.rc_dropped_tail)) ]

let () =
  Alcotest.run "store"
    [ ("crc32", Alcotest.test_case "check value" `Quick test_crc_check_value :: crc_props);
      ( "wal",
        [ Alcotest.test_case "append, sync, reopen" `Quick test_wal_roundtrip;
          Alcotest.test_case "reset renumbers" `Quick test_wal_reset;
          Alcotest.test_case "group commit under contention" `Quick test_wal_group_commit ]
        @ wal_corruption_props );
      ("snapshots", [ Alcotest.test_case "generations and fallback" `Quick test_snapfile_generations ]);
      ( "recovery",
        [ Alcotest.test_case "snapshot + tail roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "snapshot threshold" `Quick test_store_snapshot_threshold;
          Alcotest.test_case "crash between snapshot and truncate" `Quick
            test_store_crash_between_snapshot_and_truncate;
          Alcotest.test_case "corrupt snapshot falls back a generation" `Quick
            test_store_corrupt_snapshot_falls_back ]
        @ store_crash_props ) ]
