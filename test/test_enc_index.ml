(* The compact open-addressing encrypted index: exact lookup semantics,
   collision-free insertion, growth across the load-factor boundary, and
   honest size accounting. *)

let label i = String.sub (Sha256.digest (Printf.sprintf "label-%d" i)) 0 16
let payload i = String.sub (Sha256.digest (Printf.sprintf "payload-%d" i)) 0 16

let test_put_find () =
  let t = Enc_index.create () in
  Alcotest.(check (option string)) "empty" None (Enc_index.find t (label 0));
  Enc_index.put t ~l:(label 0) ~d:(payload 0);
  Enc_index.put t ~l:(label 1) ~d:(payload 1);
  Alcotest.(check (option string)) "hit 0" (Some (payload 0)) (Enc_index.find t (label 0));
  Alcotest.(check (option string)) "hit 1" (Some (payload 1)) (Enc_index.find t (label 1));
  Alcotest.(check (option string)) "miss" None (Enc_index.find t (label 2));
  Alcotest.(check int) "count" 2 (Enc_index.entry_count t)

let test_duplicate_raises () =
  let t = Enc_index.create () in
  Enc_index.put t ~l:(label 7) ~d:(payload 7);
  Alcotest.check_raises "occupied" (Invalid_argument "Enc_index.put: position already occupied")
    (fun () -> Enc_index.put t ~l:(label 7) ~d:(payload 8))

let test_size_checks () =
  let t = Enc_index.create () in
  Alcotest.check_raises "short label" (Invalid_argument "Enc_index.put: position must be 16 bytes")
    (fun () -> Enc_index.put t ~l:"short" ~d:(payload 0));
  Alcotest.check_raises "long payload" (Invalid_argument "Enc_index.put: payload must be 16 bytes")
    (fun () -> Enc_index.put t ~l:(label 0) ~d:(String.make 17 'x'));
  Alcotest.(check (option string)) "odd-length find is a miss" None (Enc_index.find t "x")

(* 5000 entries forces several doublings past the initial 1024-slot
   arena; every key must survive each rehash. *)
let test_growth () =
  let t = Enc_index.create () in
  let n = 5000 in
  for i = 0 to n - 1 do
    Enc_index.put t ~l:(label i) ~d:(payload i)
  done;
  Alcotest.(check int) "count" n (Enc_index.entry_count t);
  for i = 0 to n - 1 do
    match Enc_index.find t (label i) with
    | Some d when String.equal d (payload i) -> ()
    | Some _ -> Alcotest.fail (Printf.sprintf "wrong payload for %d" i)
    | None -> Alcotest.fail (Printf.sprintf "lost entry %d after growth" i)
  done;
  Alcotest.(check (option string)) "still miss" None (Enc_index.find t (label n))

let test_size_bytes () =
  let t = Enc_index.create () in
  Alcotest.(check int) "empty" 0 (Enc_index.size_bytes t);
  for i = 0 to 99 do
    Enc_index.put t ~l:(label i) ~d:(payload i)
  done;
  (* Exact stored bytes: 16-byte label + 16-byte payload per entry. *)
  Alcotest.(check int) "stored" (100 * 32) (Enc_index.size_bytes t);
  Alcotest.(check bool) "arena covers stored bytes" true
    (Enc_index.capacity_bytes t >= Enc_index.size_bytes t)

let test_iter () =
  let t = Enc_index.create () in
  let n = 300 in
  for i = 0 to n - 1 do
    Enc_index.put t ~l:(label i) ~d:(payload i)
  done;
  let seen = Hashtbl.create n in
  Enc_index.iter
    (fun l d ->
      Alcotest.(check int) "label len" 16 (String.length l);
      Alcotest.(check int) "payload len" 16 (String.length d);
      if Hashtbl.mem seen l then Alcotest.fail "iter visited a label twice";
      Hashtbl.replace seen l d)
    t;
  Alcotest.(check int) "iter visits every entry" n (Hashtbl.length seen);
  for i = 0 to n - 1 do
    match Hashtbl.find_opt seen (label i) with
    | Some d when String.equal d (payload i) -> ()
    | _ -> Alcotest.fail "iter payload mismatch"
  done

let () =
  Alcotest.run "enc_index"
    [ ( "enc_index",
        [ Alcotest.test_case "put/find" `Quick test_put_find;
          Alcotest.test_case "duplicate raises" `Quick test_duplicate_raises;
          Alcotest.test_case "size checks" `Quick test_size_checks;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "size_bytes" `Quick test_size_bytes;
          Alcotest.test_case "iter" `Quick test_iter ] ) ]
