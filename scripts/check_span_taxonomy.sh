#!/usr/bin/env bash
# Every span name that can appear in a trace tree must be documented in
# DESIGN.md's taxonomy (backticked, so prose mentions don't count by
# accident). The name universe is extracted from lib/ and bin/ sources:
#
#   - Trace.root / Trace.child call sites (literal span names),
#   - Obs.span call sites (timed spans join a live trace via the
#     trace_enter hook, so they show up as tree nodes too),
#   - the traced_as request->name tables (`-> Some "layer.name"`),
#
# taking every "seg.seg" string literal on those lines. bench/ is
# deliberately out of scope: its bench.* spans are harness-local and
# never ship. Run via `dune build @trace` or directly from the repo
# root.
set -u

cd "$(dirname "$0")/.." || exit 1

design=DESIGN.md
[ -f "$design" ] || { echo "check_span_taxonomy: $design not found" >&2; exit 1; }

# grep exits 1 on zero matches; that just means an empty universe.
names=$(grep -rhE 'Trace\.(root|child)|Obs\.span|-> Some "[a-z_]+\.' \
          lib bin --include='*.ml' 2>/dev/null \
        | grep -oE '"[a-z_]+(\.[a-z_0-9]+)+"' \
        | tr -d '"' | sort -u) || true

if [ -z "$names" ]; then
  echo "check_span_taxonomy: no span names found under lib/ or bin/ — extraction broke?" >&2
  exit 1
fi

missing=0
for name in $names; do
  if ! grep -qF "\`$name\`" "$design"; then
    echo "span \`$name\` is not documented in $design's taxonomy" >&2
    missing=1
  fi
done

# Reverse direction: every span the taxonomy table documents must still
# exist in the sources — a renamed or deleted span otherwise leaves a
# ghost row that readers will grep for in vain. Taxonomy rows are the
# table lines whose first cell is a backticked dotted name (the §2
# component table backticks plain module names, so it doesn't match).
documented=$(grep -E '^\| `[a-z_]+\.' "$design" \
             | grep -oE '`[a-z_]+(\.[a-z_0-9]+)+`' \
             | tr -d '`' | sort -u) || true

stale=0
for name in $documented; do
  if ! echo "$names" | grep -qxF "$name"; then
    echo "span \`$name\` is documented in $design but no longer exists in lib/ or bin/" >&2
    stale=1
  fi
done

count=$(echo "$names" | wc -l)
if [ "$missing" -ne 0 ]; then
  echo "check_span_taxonomy: add the spans above to $design (section 7 / section 12)" >&2
  exit 1
fi
if [ "$stale" -ne 0 ]; then
  echo "check_span_taxonomy: remove or rename the ghost rows above in $design" >&2
  exit 1
fi
echo "check_span_taxonomy: all $count span names documented in $design (and no ghost rows)"
