(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial 0xEDB88320).

    Guards every WAL record and snapshot payload against torn writes
    and bit rot: a record whose stored CRC disagrees with its bytes is
    treated as end-of-log, never parsed. Not a cryptographic MAC — the
    store trusts its own disk, not an adversary. *)

val string : string -> int
(** CRC-32 of a whole string, in [0, 2{^32}). ["123456789"] →
    [0xCBF43926] (the standard check value). *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a previous {!string}/[update]
    result over [s.[pos .. pos+len-1]], so large payloads can be
    checksummed in chunks. [update 0 s 0 (String.length s) =
    string s]. *)
