(** Durable state for a Slicer service: WAL + snapshots + recovery.

    The contract with the caller (the networked [Service]):

    - Every {e effectful} event — client registration, Build shipment,
      Insert delta, settled Search receipt — is {!append}ed and
      {!sync}ed {e before} its reply leaves the process. The caller's
      state machine must be deterministic: replaying the payloads in
      sequence order reproduces the state, including the idempotency
      cache.
    - Every {!Wal.size} bytes ≥ [snapshot_bytes], the caller serializes
      its full state and calls {!checkpoint}, which atomically
      publishes the snapshot ({!Snapfile}) and then truncates the WAL.
    - On startup, {!open_} returns a {!recovery}: the newest valid
      snapshot plus the contiguous WAL tail to replay on top of it.
      After rebuilding state, the caller {e must} call {!checkpoint}
      before appending — recovery always re-anchors on a fresh
      snapshot, so a crash during recovery replays the same inputs.

    Recovery discards, in order: a torn/corrupt WAL tail (truncated on
    open), WAL records at or below the snapshot's sequence (already
    materialized), and any records after a sequence gap (they belong
    to a newer, corrupt snapshot's epoch — replaying them over an
    older base would skip the middle). The result is always {e some
    prefix} of the events ever applied — never a reordering, never an
    exception. *)

type config = {
  dir : string;  (** state directory, created if missing *)
  fsync : bool;  (** [false] = bench mode: no durability barriers *)
  snapshot_bytes : int;  (** WAL size that makes {!should_snapshot} true *)
}

type event = Wal.event = { ev_seq : int; ev_tag : int; ev_payload : string }

type recovery = {
  rc_snapshot : (int * string) option;  (** newest valid [(seq, payload)] *)
  rc_events : event list;  (** contiguous tail strictly above the snapshot *)
  rc_dropped_tail : bool;  (** torn bytes or out-of-epoch records discarded *)
}

type t

val open_ : config -> t * recovery
val append : t -> tag:int -> string -> int
val sync : t -> unit

val checkpoint : t -> string -> unit
(** Publish [payload] as a snapshot at the current last sequence and
    truncate the WAL. Crash-ordered: the snapshot is durable before a
    single WAL byte disappears. *)

val last_seq : t -> int
(** Highest sequence number materialized or appended; 0 when empty. *)

val wal_bytes : t -> int
val should_snapshot : t -> bool
val is_empty : t -> bool
(** True when the directory held neither snapshot nor events. *)

val close : t -> unit
