let magic = "SLSN1"
let keep_generations = 2

let path_of ~dir ~seq = Filename.concat dir (Printf.sprintf "snap-%d.bin" seq)

let seq_of_name name =
  match String.length name with
  | n when n > 9 && String.sub name 0 5 = "snap-" && String.sub name (n - 4) 4 = ".bin"
    ->
    int_of_string_opt (String.sub name 5 (n - 9))
  | _ -> None

let get_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let write_fully fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | dfd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let listing dir =
  match Sys.readdir dir with
  | names ->
    Array.to_list names
    |> List.filter_map (fun n ->
           match seq_of_name n with Some seq -> Some (seq, n) | None -> None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  | exception Sys_error _ -> []

let prune ~dir =
  (* Stale .tmp files are debris from a crash mid-write: always gone. *)
  (match Sys.readdir dir with
  | names ->
    Array.iter
      (fun n ->
        if Filename.check_suffix n ".tmp" then
          try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      names
  | exception Sys_error _ -> ());
  List.iteri
    (fun i (_, name) ->
      if i >= keep_generations then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (listing dir)

let write ~dir ~seq ~fsync payload =
  let final = path_of ~dir ~seq in
  let tmp = final ^ ".tmp" in
  let body =
    String.concat ""
      [
        magic;
        Bytesutil.be64 seq;
        Bytesutil.be32 (String.length payload);
        Bytesutil.be32 (Crc32.string (Bytesutil.be64 seq ^ payload));
        payload;
      ]
  in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_fully fd body;
      if fsync then Unix.fsync fd);
  Unix.rename tmp final;
  if fsync then fsync_dir dir;
  prune ~dir

let load_one path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception (Sys_error _ | End_of_file) -> None
  | body ->
    let hdr = 5 + 8 + 4 + 4 in
    if String.length body < hdr || String.sub body 0 5 <> magic then None
    else begin
      let seq =
        let hi = get_be32 body 5 and lo = get_be32 body 9 in
        (hi lsl 32) lor lo
      in
      let len = get_be32 body 13 in
      let crc = get_be32 body 17 in
      if String.length body <> hdr + len then None
      else
        let payload = String.sub body hdr len in
        if Crc32.string (Bytesutil.be64 seq ^ payload) <> crc then None
        else Some (seq, payload)
    end

let load_newest ~dir =
  let rec first = function
    | [] -> None
    | (_, name) :: rest -> (
      match load_one (Filename.concat dir name) with
      | Some r -> Some r
      | None -> first rest)
  in
  first (listing dir)

let wipe ~dir =
  List.iter
    (fun (_, name) -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (listing dir)
