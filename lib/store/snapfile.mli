(** Atomic, CRC-guarded state snapshots.

    One snapshot = one file [snap-<seq>.bin] in the state directory:

    {v
      "SLSN1" [seq : be64] [len : be32] [crc : be32] [payload : len bytes]
    v}

    with [crc] = {!Crc32.string} over [be64 seq ^ payload], so a file
    renamed or truncated by the filesystem is rejected, not loaded.

    {!write} is crash-atomic the POSIX way: payload goes to
    [snap-<seq>.bin.tmp], the fd is fsynced, the file renamed into
    place, and the {e directory} fsynced so the rename itself is
    durable. A crash at any byte offset leaves either the old
    generation or the new one — never a half file under the real name.
    The previous generation is kept (two on disk) so a snapshot that
    lands corrupt — media error, not crash — still leaves a valid
    restore point. *)

val write : dir:string -> seq:int -> fsync:bool -> string -> unit
(** Atomically publish [payload] as generation [seq] and prune all but
    the newest two generations (plus any stale [.tmp] debris). *)

val load_newest : dir:string -> (int * string) option
(** The newest snapshot that passes magic + CRC validation, as
    [(seq, payload)] — corrupt newer generations are skipped, not
    fatal. [None] when the directory holds no valid snapshot. *)

val wipe : dir:string -> unit
(** Remove every snapshot (tests). *)
