(** Append-only write-ahead log of effectful events.

    On-disk format — a flat sequence of records:

    {v
      [len : be32] [crc : be32] [seq : be64] [tag : u8] [payload : len-9 bytes]
    v}

    [len] counts the bytes after the two header words (so [len =
    9 + payload length]); [crc] is {!Crc32.string} over exactly those
    bytes. Sequence numbers are assigned by the log, start at 1 and
    increase by 1 per append — gaps only ever appear through snapshot
    truncation, never inside one log file.

    Durability is group-commit: {!append} only writes; {!sync} blocks
    until every byte appended before the call is fsynced. Concurrent
    syncers elect one leader whose single [fsync] covers everyone who
    was already written when it started — followers just wait, so N
    threads settling concurrently cost ~1 fsync, not N.

    {!open_} scans the existing file and {e truncates} the torn tail:
    the scan stops at the first record whose length field overruns the
    file, whose CRC disagrees, or whose seq breaks the +1 chain, and
    [ftruncate]s there. A crash mid-append therefore costs at most the
    record being appended — never a parse error, never a misparse. *)

type t

type event = { ev_seq : int; ev_tag : int; ev_payload : string }

val open_ : path:string -> fsync:bool -> t * event list * bool
(** Open (creating if absent) and scan. Returns the log positioned for
    appending, the valid records found, and whether a torn/corrupt
    tail was discarded. With [fsync:false], {!sync} is a no-op —
    bench/test mode only. *)

val append : t -> tag:int -> string -> int
(** Append one record ([tag] in [0, 255]) and return its sequence
    number. Thread-safe; does {e not} sync. *)

val sync : t -> unit
(** Block until everything appended before this call is on disk. *)

val reset : t -> next_seq:int -> unit
(** Truncate the log to empty (post-snapshot) and continue numbering
    from [next_seq]. The caller must have made the state covering the
    discarded records durable first. *)

val set_next_seq : t -> int -> unit
(** Override the next sequence number (recovery: the snapshot may be
    newer than the log). Only valid on an empty or freshly-opened log. *)

val size : t -> int
(** Current log size in bytes. *)

val last_synced : t -> int
(** Bytes known durable (= {!size} after a {!sync}; 0 relevance with
    [fsync:false]). Exposed for tests. *)

val close : t -> unit
