type event = { ev_seq : int; ev_tag : int; ev_payload : string }

type t = {
  fd : Unix.file_descr;
  fsync : bool;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable next_seq : int;
  mutable written : int; (* bytes handed to write(2) *)
  mutable synced : int; (* bytes covered by a completed fsync *)
  mutable leader : bool; (* an fsync is in flight *)
  mutable epoch : int; (* bumped by [reset]: waiters whose bytes were
                          truncated away must stop waiting for them *)
  mutable closed : bool;
}

let get_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let get_be64 s pos =
  let hi = get_be32 s pos and lo = get_be32 s (pos + 4) in
  (hi lsl 32) lor lo

let header_bytes = 8 (* len + crc *)
let body_overhead = 9 (* seq + tag *)

let encode ~seq ~tag payload =
  if tag < 0 || tag > 0xFF then invalid_arg "Wal.append: tag out of range";
  let body =
    String.concat "" [ Bytesutil.be64 seq; String.make 1 (Char.chr tag); payload ]
  in
  String.concat ""
    [ Bytesutil.be32 (String.length body); Bytesutil.be32 (Crc32.string body); body ]

(* Scan a raw log image. Stops — and reports the stop offset — at the
   first record that is torn (length overruns the file), corrupt (CRC
   mismatch, impossible length) or out of order (seq breaks the +1
   chain). Everything before the stop offset is a valid prefix. *)
let scan contents =
  let len = String.length contents in
  let events = ref [] in
  let pos = ref 0 in
  let prev_seq = ref None in
  let stop = ref false in
  while (not !stop) && !pos + header_bytes <= len do
    let body_len = get_be32 contents !pos in
    if body_len < body_overhead || !pos + header_bytes + body_len > len then
      stop := true
    else begin
      let crc = get_be32 contents (!pos + 4) in
      let body_pos = !pos + header_bytes in
      if Crc32.update 0 contents body_pos body_len <> crc then stop := true
      else begin
        let seq = get_be64 contents body_pos in
        let chained =
          match !prev_seq with None -> true | Some p -> seq = p + 1
        in
        if not chained then stop := true
        else begin
          let tag = Char.code contents.[body_pos + 8] in
          let payload =
            String.sub contents (body_pos + body_overhead)
              (body_len - body_overhead)
          in
          events := { ev_seq = seq; ev_tag = tag; ev_payload = payload } :: !events;
          prev_seq := Some seq;
          pos := !pos + header_bytes + body_len
        end
      end
    end
  done;
  (List.rev !events, !pos, !pos < len)

let read_all fd =
  let len = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create len in
  let off = ref 0 in
  (try
     while !off < len do
       let n = Unix.read fd buf !off (len - !off) in
       if n = 0 then raise Exit;
       off := !off + n
     done
   with Exit -> ());
  Bytes.sub_string buf 0 !off

let open_ ~path ~fsync =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  let contents = read_all fd in
  let events, valid_len, dropped = scan contents in
  if dropped then begin
    Unix.ftruncate fd valid_len;
    if fsync then Unix.fsync fd
  end;
  ignore (Unix.lseek fd valid_len Unix.SEEK_SET);
  let next_seq =
    match List.rev events with [] -> 1 | last :: _ -> last.ev_seq + 1
  in
  let t =
    {
      fd;
      fsync;
      mutex = Mutex.create ();
      cond = Condition.create ();
      next_seq;
      written = valid_len;
      synced = (if fsync then 0 else valid_len);
      leader = false;
      epoch = 0;
      closed = false;
    }
  in
  (t, events, dropped)

let write_fully fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let append t ~tag payload =
  locked t (fun () ->
      if t.closed then invalid_arg "Wal.append: closed";
      let seq = t.next_seq in
      let record = encode ~seq ~tag payload in
      write_fully t.fd record;
      t.next_seq <- seq + 1;
      t.written <- t.written + String.length record;
      seq)

let sync t =
  if t.fsync then begin
    Mutex.lock t.mutex;
    let target = t.written and epoch0 = t.epoch in
    (* A [reset] (snapshot truncation) bumps the epoch: the bytes we
       were waiting on are covered by a durable snapshot instead, so
       waiting for them to hit the log would hang forever. *)
    while t.synced < target && t.epoch = epoch0 do
      if t.leader then Condition.wait t.cond t.mutex
      else begin
        (* Become the leader: one fsync covers every byte written
           before it started, so followers piling up behind us ride
           the same barrier. *)
        t.leader <- true;
        let upto = t.written and e = t.epoch in
        Mutex.unlock t.mutex;
        let result = try Ok (Unix.fsync t.fd) with exn -> Error exn in
        Mutex.lock t.mutex;
        t.leader <- false;
        (match result with
        | Ok () -> if t.epoch = e && upto > t.synced then t.synced <- upto
        | Error _ -> ());
        Condition.broadcast t.cond;
        match result with
        | Ok () -> ()
        | Error exn ->
          Mutex.unlock t.mutex;
          raise exn
      end
    done;
    Mutex.unlock t.mutex
  end

let reset t ~next_seq =
  locked t (fun () ->
      Unix.ftruncate t.fd 0;
      ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
      if t.fsync then Unix.fsync t.fd;
      t.written <- 0;
      t.synced <- 0;
      t.epoch <- t.epoch + 1;
      t.next_seq <- next_seq;
      Condition.broadcast t.cond)

let set_next_seq t seq = locked t (fun () -> t.next_seq <- seq)

let size t = locked t (fun () -> t.written)

let last_synced t = locked t (fun () -> t.synced)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Unix.close t.fd
      end)
