type config = { dir : string; fsync : bool; snapshot_bytes : int }

type event = Wal.event = { ev_seq : int; ev_tag : int; ev_payload : string }

type recovery = {
  rc_snapshot : (int * string) option;
  rc_events : event list;
  rc_dropped_tail : bool;
}

type t = {
  cfg : config;
  wal : Wal.t;
  mutable last : int; (* highest seq materialized or appended *)
  mutable empty : bool;
}

let append_h = Obs.histogram ~help:"WAL append (write only)" "slicer_store_wal_append_seconds"
let fsync_h = Obs.histogram ~help:"WAL group-commit sync" "slicer_store_wal_fsync_seconds"
let records_c = Obs.counter ~help:"WAL records appended" "slicer_store_wal_records_total"
let bytes_c = Obs.counter ~help:"WAL payload bytes appended" "slicer_store_wal_bytes_total"
let snapshots_c = Obs.counter ~help:"Snapshots published" "slicer_store_snapshots_total"
let recoveries_c = Obs.counter ~help:"Recovery scans run" "slicer_store_recoveries_total"
let recovered_c =
  Obs.counter ~help:"WAL events replayed at recovery" "slicer_store_recovered_events_total"
let torn_c =
  Obs.counter ~help:"Recoveries that discarded torn/stale bytes" "slicer_store_torn_tails_total"
let wal_size_g = Obs.gauge ~help:"Current WAL size" "slicer_store_wal_size_bytes"

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Keep only the tail that extends the snapshot: drop records already
   materialized (seq ≤ base), then insist on a gapless +1 chain from
   base+1 — a gap means the records come from a newer epoch whose
   snapshot failed validation, and replaying them over this base would
   silently skip the middle of history. *)
let contiguous_tail ~base events =
  let rec skip = function
    | e :: rest when e.ev_seq <= base -> skip rest
    | rest -> rest
  in
  let rec take expected acc = function
    | e :: rest when e.ev_seq = expected -> take (expected + 1) (e :: acc) rest
    | rest -> (List.rev acc, rest <> [])
  in
  let kept, cut = take (base + 1) [] (skip events) in
  (kept, cut)

let open_ cfg =
  mkdir_p cfg.dir;
  let wal, events, torn =
    Wal.open_ ~path:(Filename.concat cfg.dir "wal.log") ~fsync:cfg.fsync
  in
  let rc_snapshot = Snapfile.load_newest ~dir:cfg.dir in
  let base = match rc_snapshot with Some (seq, _) -> seq | None -> 0 in
  let rc_events, cut = contiguous_tail ~base events in
  let dropped = torn || cut || List.length rc_events < List.length events in
  let last =
    match List.rev rc_events with e :: _ -> e.ev_seq | [] -> base
  in
  Wal.set_next_seq wal (last + 1);
  Obs.Counter.incr recoveries_c;
  Obs.Counter.add recovered_c (List.length rc_events);
  if dropped then Obs.Counter.incr torn_c;
  Obs.Gauge.set wal_size_g (Wal.size wal);
  let t =
    { cfg; wal; last; empty = rc_snapshot = None && rc_events = [] }
  in
  (t, { rc_snapshot; rc_events; rc_dropped_tail = dropped })

let append t ~tag payload =
  let t0 = Obs.Clock.now_ns () in
  let seq = Wal.append t.wal ~tag payload in
  Obs.Histogram.record append_h (Obs.Clock.now_ns () - t0);
  Obs.Counter.incr records_c;
  Obs.Counter.add bytes_c (String.length payload);
  Obs.Gauge.set wal_size_g (Wal.size t.wal);
  t.last <- max t.last seq;
  t.empty <- false;
  seq

let sync t =
  let t0 = Obs.Clock.now_ns () in
  Wal.sync t.wal;
  Obs.Histogram.record fsync_h (Obs.Clock.now_ns () - t0)

let checkpoint t payload =
  (* Order matters: records covering the snapshot must not vanish
     until the snapshot itself is durable. [Snapfile.write] renames +
     fsyncs before we touch the WAL, so a crash anywhere in between
     recovers from either (old snapshot + full WAL) or (new snapshot +
     stale WAL records that contiguity filtering discards). *)
  Wal.sync t.wal;
  Snapfile.write ~dir:t.cfg.dir ~seq:t.last ~fsync:t.cfg.fsync payload;
  Wal.reset t.wal ~next_seq:(t.last + 1);
  t.empty <- false;
  Obs.Counter.incr snapshots_c;
  Obs.Gauge.set wal_size_g 0

let last_seq t = t.last
let wal_bytes t = Wal.size t.wal
let should_snapshot t = Wal.size t.wal >= t.cfg.snapshot_bytes
let is_empty t = t.empty
let close t = Wal.close t.wal
