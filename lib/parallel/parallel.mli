(** Work-sharing domain pool for the accumulator/ADS hot path.

    Built only on the stdlib ([Domain], [Mutex], [Condition]): a pool of
    [domains - 1] worker domains pulls fork-join tasks from a shared
    queue while the calling domain participates as the remaining worker.
    A waiter whose sibling task was claimed by another domain {e helps}
    by executing queued tasks instead of blocking, so nested fork-join
    (e.g. the recursive halves of [Rsa_acc.all_witnesses] spawning their
    own halves) cannot deadlock.

    Determinism: every combinator has a recursion structure that depends
    only on the input size — never on the number of domains or on
    scheduling — so results are identical (bit-for-bit for [Bigint]
    values) whatever [domains] is. Parallelism only decides {e where}
    each subtree runs. *)

module Pool : sig
  type t

  val create : ?domains:int -> unit -> t
  (** A pool with total parallelism [domains] (default [1]). [domains <= 1]
      spawns no workers: every combinator degenerates to the sequential
      algorithm in the calling domain. *)

  val size : t -> int
  (** Total parallelism, including the calling domain. *)

  val shutdown : t -> unit
  (** Signals the workers to exit and joins them. Idempotent. Tasks
      already queued are drained before workers exit. *)

  val both : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
  (** [both p f g] evaluates [f ()] and [g ()], potentially in parallel,
      and returns both results. Exceptions from either side are
      re-raised after both have settled. *)

  val map : t -> ('a -> 'b) -> 'a array -> 'b array
  (** Parallel [Array.map] by divide-and-conquer over index ranges. *)

  val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
  (** {!map} over a list, preserving order. *)

  val reduce : t -> ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a
  (** [reduce p f id arr] combines [arr] with the associative operation
      [f] by a balanced binary tree ([id] must be an identity for [f]).
      The bracketing depends only on [Array.length arr], so for exact
      types (e.g. [Bigint.mul]) the result is identical at every pool
      size. This is the product-tree primitive of the accumulator. *)

  val run_all : t -> (unit -> 'a) array -> 'a array
  (** [run_all p thunks] evaluates every thunk (potentially in parallel)
      and returns the results in order — the hook shape
      [Bigint.Fixed_base.pow] expects for its chunk exponentiations. *)
end

(** {1 Process-wide pool}

    The CLI and bench wire [--domains N] here once at startup; every
    library layer (accumulator, prime representatives, core protocol)
    then shares one pool without threading it through interfaces. *)

val set_domains : int -> unit
(** Sets the parallelism of the shared pool (clamped to [>= 1]). The
    default is [1] — fully sequential — so all previously recorded
    results stay reproducible unless parallelism is requested. An
    existing pool of a different size is shut down and replaced. *)

val domains : unit -> int
(** Currently configured parallelism. *)

val pool : unit -> Pool.t
(** The shared pool (created lazily at the configured size). *)
