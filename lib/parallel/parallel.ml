(* Fork-join domain pool on a shared task queue.

   The pool owns [size - 1] worker domains; the caller of a combinator is
   the remaining worker. [both] is the primitive: it queues the right
   branch, runs the left branch itself, then — if the right branch was
   claimed by another domain — helps with other queued tasks until its
   sibling settles. Helping keeps every domain busy and makes nested
   fork-join deadlock-free: a domain only blocks when the queue is empty
   and its sibling is actively running elsewhere.

   All combinators fix their recursion structure from the input size
   alone, so results never depend on scheduling or pool size. *)

module Pool = struct
  type t = {
    size : int;
    lock : Mutex.t;
    nonempty : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable closed : bool;
    mutable workers : unit Domain.t list;
  }

  let worker pool () =
    let rec loop () =
      Mutex.lock pool.lock;
      let rec next () =
        match Queue.take_opt pool.queue with
        | Some task -> Some task
        | None ->
          if pool.closed then None
          else begin
            Condition.wait pool.nonempty pool.lock;
            next ()
          end
      in
      let task = next () in
      Mutex.unlock pool.lock;
      match task with
      | None -> ()
      | Some task ->
        (* Tasks carry their own exception capture; this is a backstop. *)
        (try task () with _ -> ());
        loop ()
    in
    loop ()

  let create ?(domains = 1) () =
    let size = Stdlib.max 1 domains in
    let pool =
      { size;
        lock = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        closed = false;
        workers = [] }
    in
    if size > 1 then
      pool.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker pool));
    pool

  let size pool = pool.size

  let shutdown pool =
    Mutex.lock pool.lock;
    pool.closed <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    List.iter Domain.join pool.workers;
    pool.workers <- []

  let push pool task =
    Mutex.lock pool.lock;
    Queue.add task pool.queue;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.lock

  (* Pop and run one queued task, if any. *)
  let try_help pool =
    Mutex.lock pool.lock;
    let task = Queue.take_opt pool.queue in
    Mutex.unlock pool.lock;
    match task with
    | None -> false
    | Some task ->
      task ();
      true

  let both pool fa fb =
    if pool.size <= 1 then begin
      let a = fa () in
      let b = fb () in
      (a, b)
    end
    else begin
      let m = Mutex.create () and settled = Condition.create () in
      let result = ref None in
      let task () =
        let r = try Ok (fb ()) with e -> Error e in
        Mutex.lock m;
        result := Some r;
        Condition.signal settled;
        Mutex.unlock m
      in
      push pool task;
      let ra = try Ok (fa ()) with e -> Error e in
      (* Wait for the sibling, helping with other queued work meanwhile.
         If the queue is empty and the sibling is unsettled, it has been
         claimed by another domain: block until it signals. *)
      let rec wait () =
        Mutex.lock m;
        let done_ = !result <> None in
        Mutex.unlock m;
        if not done_ then
          if try_help pool then wait ()
          else begin
            Mutex.lock m;
            while !result = None do
              Condition.wait settled m
            done;
            Mutex.unlock m
          end
      in
      wait ();
      let rb = match !result with Some r -> r | None -> assert false in
      match (ra, rb) with
      | Ok a, Ok b -> (a, b)
      | Error e, _ | _, Error e -> raise e
    end

  (* Spawn tasks down the top levels only: ~4 leaf tasks per domain is
     enough for load balance; below the cutoff the same recursion runs
     inline, so the shape of the computation is unchanged. *)
  let spawn_depth pool =
    let rec log2up n = if n <= 1 then 0 else 1 + log2up ((n + 1) / 2) in
    log2up pool.size + 2

  let map pool f arr =
    let n = Array.length arr in
    if n = 0 then [||]
    else if pool.size <= 1 then Array.map f arr
    else begin
      let out = Array.make n None in
      let rec go lo hi depth =
        if hi - lo = 1 then out.(lo) <- Some (f arr.(lo))
        else begin
          let mid = (lo + hi) / 2 in
          if depth > 0 then
            ignore
              (both pool
                 (fun () -> go lo mid (depth - 1))
                 (fun () -> go mid hi (depth - 1)))
          else begin
            go lo mid 0;
            go mid hi 0
          end
        end
      in
      go 0 n (spawn_depth pool);
      Array.map (function Some v -> v | None -> assert false) out
    end

  let map_list pool f l = Array.to_list (map pool f (Array.of_list l))

  let reduce pool f id arr =
    let n = Array.length arr in
    if n = 0 then id
    else begin
      (* Balanced tree with a bracketing fixed by [n]: identical results
         at every pool size for associative [f]. *)
      let rec go lo hi depth =
        if hi - lo = 1 then arr.(lo)
        else begin
          let mid = (lo + hi) / 2 in
          if depth > 0 && pool.size > 1 then begin
            let a, b =
              both pool
                (fun () -> go lo mid (depth - 1))
                (fun () -> go mid hi (depth - 1))
            in
            f a b
          end
          else f (go lo mid 0) (go mid hi 0)
        end
      in
      go 0 n (spawn_depth pool)
    end

  let run_all pool thunks = map pool (fun f -> f ()) thunks
end

(* --- process-wide pool ------------------------------------------------- *)

let config_lock = Mutex.create ()
let configured = ref 1
let current : Pool.t option ref = ref None

let set_domains n =
  let n = Stdlib.max 1 n in
  Mutex.lock config_lock;
  let stale =
    match !current with
    | Some p when Pool.size p <> n ->
      current := None;
      Some p
    | _ -> None
  in
  configured := n;
  Mutex.unlock config_lock;
  (* Join outside the config lock: workers never touch it, but keep the
     critical section minimal anyway. *)
  match stale with Some p -> Pool.shutdown p | None -> ()

let domains () =
  Mutex.lock config_lock;
  let n = !configured in
  Mutex.unlock config_lock;
  n

let pool () =
  Mutex.lock config_lock;
  let p =
    match !current with
    | Some p -> p
    | None ->
      let p = Pool.create ~domains:!configured () in
      current := Some p;
      p
  in
  Mutex.unlock config_lock;
  p
