type key = { sk_label : string; sk_label_kd : Hmac.keyed; sk_enc : Aes128.key }

let keygen ~rng =
  let sk_label = Drbg.generate rng 16 in
  { sk_label;
    sk_label_kd = Hmac.create ~key:sk_label;
    sk_enc = Aes128.expand (Drbg.generate rng 16) }

(* A leaf is (tag, encrypted IDs); leaves are sorted by tag so absence
   is provable by adjacency. *)
type server = {
  leaves : (string * string list) array; (* sorted by tag *)
  tree : Merkle.t;
  plain : (string * int) list;           (* server-side ciphertext store stand-in *)
}

type leaf_evidence = { ev_tag : string; ev_ids : string list; ev_proof : Merkle.proof }

type response = {
  rsp_present : leaf_evidence list;
  rsp_absent : (string * leaf_evidence option * leaf_evidence option) list;
}

let tag key ~width seg = Hmac.prf128_keyed key.sk_label_kd (Bytesutil.concat [ "sdb"; Dyadic.label ~width seg ])

let leaf_payload (t, ids) = Bytesutil.concat (t :: ids)

let build key ~width records =
  let by_tag : (string, string list ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (id, v) ->
      let enc_id = Aes128.encrypt_string key.sk_enc id in
      List.iter
        (fun seg ->
          let t = tag key ~width seg in
          match Hashtbl.find_opt by_tag t with
          | Some ids -> ids := enc_id :: !ids
          | None -> Hashtbl.replace by_tag t (ref [ enc_id ]))
        (Dyadic.segments_of_value ~width v))
    records;
  let leaves =
    Hashtbl.fold (fun t ids acc -> (t, List.rev !ids) :: acc) by_tag []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> Array.of_list
  in
  { leaves; tree = Merkle.build (List.map leaf_payload (Array.to_list leaves)); plain = records }

let insert key server ~width records = build key ~width (server.plain @ records)

let root server =
  Bytesutil.concat [ Merkle.root server.tree; Bytesutil.be32 (Array.length server.leaves) ]

(* Binary search for a tag; Ok index if present, Error insertion-point
   otherwise. *)
let locate server t =
  let n = Array.length server.leaves in
  let rec go lo hi =
    if lo >= hi then Error lo
    else begin
      let mid = (lo + hi) / 2 in
      let c = String.compare (fst server.leaves.(mid)) t in
      if c = 0 then Ok mid else if c < 0 then go (mid + 1) hi else go lo mid
    end
  in
  go 0 n

let evidence server i =
  let t, ids = server.leaves.(i) in
  { ev_tag = t; ev_ids = ids; ev_proof = Merkle.prove server.tree i }

let search key server ~width ~lo ~hi =
  let segs = Dyadic.cover ~width ~lo ~hi in
  List.fold_left
    (fun rsp seg ->
      let t = tag key ~width seg in
      match locate server t with
      | Ok i -> { rsp with rsp_present = evidence server i :: rsp.rsp_present }
      | Error insertion ->
        let pred = if insertion > 0 then Some (evidence server (insertion - 1)) else None in
        let succ =
          if insertion < Array.length server.leaves then Some (evidence server insertion) else None
        in
        { rsp with rsp_absent = (t, pred, succ) :: rsp.rsp_absent })
    { rsp_present = []; rsp_absent = [] }
    segs

let verify_and_decrypt key ~root:committed ~width ~lo ~hi response =
  let ( let* ) = Option.bind in
  let* pieces = Bytesutil.split committed in
  let* mk_root, leaf_count =
    match pieces with
    | [ r; c ] when String.length c = 4 ->
      let count =
        (Char.code c.[0] lsl 24) lor (Char.code c.[1] lsl 16) lor (Char.code c.[2] lsl 8)
        lor Char.code c.[3]
      in
      Some (r, count)
    | _ -> None
  in
  let check_leaf ev =
    Merkle.verify ~root:mk_root ~leaf:(leaf_payload (ev.ev_tag, ev.ev_ids)) ev.ev_proof
  in
  let segs = Dyadic.cover ~width ~lo ~hi in
  let expected_tags = List.map (fun seg -> tag key ~width seg) segs in
  let present = List.map (fun ev -> (ev.ev_tag, ev)) response.rsp_present in
  let absent = List.map (fun (t, p, s) -> (t, (p, s))) response.rsp_absent in
  let check_tag t =
    match List.assoc_opt t present with
    | Some ev -> if check_leaf ev then Some ev.ev_ids else None
    | None ->
      let* pred, succ = List.assoc_opt t absent in
      (* Adjacency: predecessor and successor are consecutive leaves
         bracketing the missing tag; boundary cases use the committed
         leaf count. *)
      let pred_ok, pred_index =
        match pred with
        | Some ev -> (check_leaf ev && String.compare ev.ev_tag t < 0, Some ev.ev_proof.Merkle.index)
        | None -> (true, None)
      in
      let succ_ok, succ_index =
        match succ with
        | Some ev -> (check_leaf ev && String.compare ev.ev_tag t > 0, Some ev.ev_proof.Merkle.index)
        | None -> (true, None)
      in
      let adjacency =
        match (pred_index, succ_index) with
        | Some p, Some s -> s = p + 1
        | None, Some s -> s = 0
        | Some p, None -> p = leaf_count - 1
        | None, None -> leaf_count = 0
      in
      if pred_ok && succ_ok && adjacency then Some [] else None
  in
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | t :: rest ->
      let* ids = check_tag t in
      gather (List.rev_append ids acc) rest
  in
  let* encrypted = gather [] expected_tags in
  (* Decryption is part of verification here — the private-verifiability
     limitation the paper calls out. *)
  let rec decrypt acc = function
    | [] -> Some (List.rev acc)
    | ct :: rest ->
      (match Aes128.decrypt_string key.sk_enc ct with
       | id -> decrypt (id :: acc) rest
       | exception Invalid_argument _ -> None)
  in
  decrypt [] encrypted

let index_bytes server =
  Array.fold_left
    (fun n (t, ids) -> n + String.length t + List.fold_left (fun m r -> m + String.length r) 0 ids)
    0 server.leaves

let proof_bytes response =
  let leaf_bytes ev =
    String.length ev.ev_tag
    + List.fold_left (fun n r -> n + String.length r) 0 ev.ev_ids
    + Merkle.proof_size_bytes ev.ev_proof
  in
  List.fold_left (fun n ev -> n + leaf_bytes ev) 0 response.rsp_present
  + List.fold_left
      (fun n (_, p, s) ->
        n + 16
        + (match p with Some ev -> leaf_bytes ev | None -> 0)
        + match s with Some ev -> leaf_bytes ev | None -> 0)
      0 response.rsp_absent
