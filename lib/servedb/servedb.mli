(** A ServeDB-style baseline (Wu et al., ICDE 2019, simplified to one
    dimension): verifiable range queries over encrypted values using a
    hierarchical (dyadic) encoding and a Merkle tree over the encrypted
    index.

    This is the comparison system the paper positions itself against:
    ranges need only O(2·width) tokens (vs Slicer's per-slice tokens),
    but verification is {e private} — checking a response needs the
    secret keys (labels are keyed PRFs and result consistency is judged
    after decryption), so it cannot be delegated to a smart contract,
    and nothing here is forward-secure (an insert rebuilds the tree and
    links new entries to past labels). The ablation bench quantifies
    both sides of that trade. *)

type key

val keygen : rng:Drbg.t -> key

type server
(** The untrusted server's state: encrypted label index + Merkle tree
    over the sorted (label tag, encrypted IDs) leaves. *)

type leaf_evidence = {
  ev_tag : string;            (** the leaf's label tag *)
  ev_ids : string list;       (** encrypted record IDs under that tag *)
  ev_proof : Merkle.proof;    (** inclusion proof against the root *)
}

type response = {
  rsp_present : leaf_evidence list;
      (** evidence for every covering label that has data *)
  rsp_absent : (string * leaf_evidence option * leaf_evidence option) list;
      (** covering labels with no data: (tag, predecessor, successor)
          adjacency evidence in the sorted leaf order *)
}

val build : key -> width:int -> (string * int) list -> server
(** Indexes (record ID, value) pairs; IDs at most 15 bytes. *)

val insert : key -> server -> width:int -> (string * int) list -> server
(** Rebuilds the index over the union — ServeDB-style dynamics, with no
    forward security. *)

val root : server -> string
(** The digest the owner certifies: Merkle root plus committed leaf
    count (needed for sound absence proofs at the boundaries). *)

val search : key -> server -> width:int -> lo:int -> hi:int -> response
(** Range query [lo, hi] (inclusive): the server resolves the label
    tags of the dyadic cover. *)

val verify_and_decrypt :
  key -> root:string -> width:int -> lo:int -> hi:int -> response -> string list option
(** Client-side verification — note the key argument: this is exactly
    the private verifiability the paper contrasts with Slicer. Checks
    every covering label is accounted for (inclusion proof, or
    adjacent-pair absence proof), then decrypts and returns the IDs.
    [None] on any inconsistency. *)

val index_bytes : server -> int
val proof_bytes : response -> int
