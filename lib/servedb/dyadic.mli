(** Dyadic (segment-tree) decomposition of ranges — the 1-D analogue of
    ServeDB's hierarchical cube encoding. A [width]-bit domain is cut
    into levels of aligned power-of-two segments; every value sits in
    one segment per level, and any range splits into O(2·width)
    canonical segments. *)

type segment = { seg_lo : int; seg_level : int }
(** The segment [seg_lo, seg_lo + 2^(width - seg_level))]; [seg_level]
    is the prefix length, so level 0 is the whole domain and level
    [width] a single value. [seg_lo] is aligned to the segment size. *)

val segments_of_value : width:int -> int -> segment list
(** The [width + 1] segments containing a value, level 0 first. *)

val cover : width:int -> lo:int -> hi:int -> segment list
(** Canonical disjoint cover of the inclusive range [lo, hi], in
    ascending order. @raise Invalid_argument on an invalid range. *)

val label : width:int -> segment -> string
(** Stable label (the bit-prefix string) for keying an index. *)

val mem : width:int -> segment -> int -> bool
(** Is a value inside the segment? *)
