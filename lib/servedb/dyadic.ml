type segment = { seg_lo : int; seg_level : int }

let check_width width =
  if width < 1 || width > Bitvec.max_width then invalid_arg "Dyadic: width out of range"

let size ~width seg = 1 lsl (width - seg.seg_level)

let segments_of_value ~width v =
  Bitvec.check_value ~width v;
  List.init (width + 1) (fun level -> { seg_lo = v land lnot ((1 lsl (width - level)) - 1); seg_level = level })

let cover ~width ~lo ~hi =
  check_width width;
  if lo < 0 || hi >= 1 lsl width || lo > hi then invalid_arg "Dyadic.cover: invalid range";
  (* Greedy canonical cover: at each step take the largest aligned
     power-of-two block that starts at [lo] and fits within [hi]. *)
  let rec go lo acc =
    if lo > hi then List.rev acc
    else begin
      let align = if lo = 0 then 1 lsl width else lo land -lo in
      let rec fit s = if lo + s - 1 <= hi then s else fit (s / 2) in
      let s = fit (Stdlib.min align (1 lsl width)) in
      let level = width - (let rec log2 n = if n = 1 then 0 else 1 + log2 (n / 2) in log2 s) in
      go (lo + s) ({ seg_lo = lo; seg_level = level } :: acc)
    end
  in
  go lo []

let label ~width seg = Bitvec.prefix ~width seg.seg_lo seg.seg_level

let mem ~width seg v = v land lnot (size ~width seg - 1) = seg.seg_lo
