(* MSet-Mu-Hash over GF(q)* with q the secp256k1 base-field prime. *)

let field_order =
  Bigint.of_hex "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"

type t = Bigint.t

let empty = Bigint.one

(* Map an element into GF(q)*: hash with a counter until the value lands
   in [1, q-1]. SHA-256 output is below 2^256 and q is extremely close to
   2^256, so the first draw almost always succeeds. *)
let to_field b =
  let rec go ctr =
    let digest = Sha256.digest (Bytesutil.concat [ "mset-mu-hash"; string_of_int ctr; b ]) in
    let v = Bigint.of_bytes_be digest in
    if Bigint.compare v field_order < 0 && not (Bigint.is_zero v) then v else go (ctr + 1)
  in
  go 0

let add h b = Bigint.mod_mul h (to_field b) field_order

let remove h b =
  match Bigint.mod_inv (to_field b) field_order with
  | Some inv -> Bigint.mod_mul h inv field_order
  | None -> assert false (* q prime and to_field never returns 0 *)

let of_list bs = List.fold_left add empty bs
let combine = fun a b -> Bigint.mod_mul a b field_order
let equal = Bigint.equal
let to_bytes h = Bigint.to_bytes_be ~len:32 h

let of_bytes s =
  if String.length s <> 32 then invalid_arg "Mset_hash.of_bytes: need 32 bytes";
  let v = Bigint.of_bytes_be s in
  if Bigint.compare v field_order >= 0 then invalid_arg "Mset_hash.of_bytes: out of field";
  v
