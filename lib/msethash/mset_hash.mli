(** Incremental multiset hash — the MSet-Mu-Hash construction of Clarke
    et al. (ASIACRYPT 2003) used by the paper:

    [H(M) = Π_{b ∈ B} H(b)^{M_b}] over the multiplicative group of
    [GF(q)], where [M_b] is the multiplicity of element [b]. Multiset
    collision resistance reduces to discrete log in [GF(q)].

    Key properties (tested):
    - order-independence: hashing a multiset in any order agrees;
    - homomorphism: [H(M ∪ N) = H(M) +_H H(N)] ({!combine});
    - incrementality: elements can be folded in one at a time ({!add}). *)

type t
(** A multiset hash value (an element of [GF(q)*]). *)

val empty : t
(** Hash of the empty multiset (the group identity). *)

val add : t -> string -> t
(** [add h b] is [h +_H H({b})]: folds one more element occurrence in. *)

val remove : t -> string -> t
(** [remove h b] cancels one occurrence of [b] (multiplies by
    [H(b)^-1]); supports the deletion extension's bookkeeping. *)

val of_list : string list -> t
(** Hash of the multiset given as a list. *)

val combine : t -> t -> t
(** The [+_H] operation: hash of the multiset union. *)

val equal : t -> t -> bool
(** The [≡_H] comparison. *)

val to_bytes : t -> string
(** Canonical 32-byte encoding (for inclusion in prime representatives). *)

val of_bytes : string -> t
(** Inverse of {!to_bytes}. @raise Invalid_argument if not a valid
    encoding. *)

val field_order : Bigint.t
(** The prime [q] (the secp256k1 base-field prime). *)
