let mr_rounds = 16

(* Decompose n-1 = 2^s * d with d odd. *)
let decompose n_minus_1 =
  let rec go d s = if Bigint.is_even d then go (Bigint.shift_right d 1) (s + 1) else (d, s) in
  go n_minus_1 0

let miller_rabin_base n ~base =
  let n_minus_1 = Bigint.pred n in
  let d, s = decompose n_minus_1 in
  let x = Bigint.mod_pow base d n in
  if Bigint.equal x Bigint.one || Bigint.equal x n_minus_1 then true
  else begin
    let rec squares x i =
      if i >= s - 1 then false
      else begin
        let x = Bigint.mod_mul x x n in
        if Bigint.equal x n_minus_1 then true else squares x (i + 1)
      end
    in
    squares x 0
  end

let trial_division n =
  (* Returns [Some verdict] when trial division is conclusive. *)
  let len = Array.length Sieve.small_primes in
  let rec go i =
    if i >= len then None
    else begin
      let p = Sieve.small_primes.(i) in
      match Bigint.to_int_opt n with
      | Some v when v = p -> Some true
      | _ ->
        let _, r = Bigint.divmod_int n p in
        if r = 0 then Some false else go (i + 1)
    end
  in
  go 0

let is_probable_prime ?(rounds = mr_rounds) ~rng n =
  if Bigint.compare n Bigint.two < 0 then false
  else if Bigint.equal n Bigint.two then true
  else if Bigint.is_even n then false
  else begin
    match trial_division n with
    | Some verdict -> verdict
    | None ->
      (* Composite inputs are overwhelmingly killed by the base-2 round,
         so run it first, then random bases. *)
      miller_rabin_base n ~base:Bigint.two
      && begin
        let n_minus_3 = Bigint.sub n (Bigint.of_int 3) in
        let rec go i =
          if i >= rounds then true
          else begin
            let base = Bigint.add Bigint.two (Drbg.uniform_bigint rng n_minus_3) in
            miller_rabin_base n ~base && go (i + 1)
          end
        in
        go 0
      end
  end
