(* Deterministic bases: exact below 3.3e24 (Sorenson & Webster), and a
   2^-80-class heuristic beyond. All parties computing prime
   representatives must agree, hence no randomized bases here. *)
let det_bases = List.map Bigint.of_int [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41 ]

let miller_rabin_det n =
  List.for_all
    (fun base ->
      Bigint.compare base (Bigint.pred n) >= 0 || Primality.miller_rabin_base n ~base)
    det_bases

let is_prime_det n =
  if Bigint.compare n Bigint.two < 0 then false
  else begin
    match Bigint.to_int_opt n with
    | Some v when v < 8192 -> Sieve.is_small_prime v
    | _ ->
      Bigint.is_odd n
      && begin
        let len = Array.length Sieve.small_primes in
        let rec trial i =
          if i >= len then true
          else begin
            let _, r = Bigint.divmod_int n Sieve.small_primes.(i) in
            r <> 0 && trial (i + 1)
          end
        in
        trial 0
      end
      && miller_rabin_det n
  end

let next_prime n =
  if Bigint.compare n Bigint.two <= 0 then Bigint.two
  else begin
    let start = if Bigint.is_even n then Bigint.succ n else n in
    let rec walk c = if is_prime_det c then c else walk (Bigint.add c Bigint.two) in
    walk start
  end

let random_prime ~rng ~bits =
  if bits < 2 then invalid_arg "Primegen.random_prime: need bits >= 2";
  let rec draw () =
    let candidate = Drbg.bits rng bits in
    let candidate = if Bigint.is_even candidate then Bigint.succ candidate else candidate in
    if Bigint.num_bits candidate = bits && Primality.is_probable_prime ~rng candidate then candidate
    else draw ()
  in
  draw ()

let random_safe_prime ~rng ~bits =
  if bits < 3 then invalid_arg "Primegen.random_safe_prime: need bits >= 3";
  let rec draw () =
    (* Build p = 2q+1 from a candidate q, sieving p cheaply before the
       expensive tests. *)
    let q = Drbg.bits rng (bits - 1) in
    let q = if Bigint.is_even q then Bigint.succ q else q in
    let p = Bigint.succ (Bigint.shift_left q 1) in
    if Bigint.num_bits p = bits
       && Primality.is_probable_prime ~rounds:4 ~rng p
       && Primality.is_probable_prime ~rounds:4 ~rng q
       && Primality.is_probable_prime ~rng p
       && Primality.is_probable_prime ~rng q
    then p
    else draw ()
  in
  draw ()

type rsa_modulus = { n : Bigint.t; p : Bigint.t; q : Bigint.t; phi : Bigint.t }

let random_rsa_modulus ?(safe = false) ~rng ~bits () =
  if bits < 16 then invalid_arg "Primegen.random_rsa_modulus: need bits >= 16";
  let half = bits / 2 in
  let gen () = if safe then random_safe_prime ~rng ~bits:half else random_prime ~rng ~bits:half in
  let p = gen () in
  let rec distinct () =
    let q = gen () in
    if Bigint.equal p q then distinct () else q
  in
  let q = distinct () in
  let n = Bigint.mul p q in
  let phi = Bigint.mul (Bigint.pred p) (Bigint.pred q) in
  { n; p; q; phi }
