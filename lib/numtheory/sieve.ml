let bound = 8192

let sieve n =
  let composite = Array.make n false in
  let primes = ref [] in
  for i = 2 to n - 1 do
    if not composite.(i) then begin
      primes := i :: !primes;
      let j = ref (i * i) in
      while !j < n do
        composite.(!j) <- true;
        j := !j + i
      done
    end
  done;
  (List.rev !primes, composite)

let primes_below n =
  if n <= 2 then [] else fst (sieve n)

let table = sieve bound
let small_primes = Array.of_list (fst table)

let is_small_prime n =
  if n < 0 || n >= bound then invalid_arg "Sieve.is_small_prime: out of range";
  n >= 2 && not (snd table).(n)
