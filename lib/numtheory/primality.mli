(** Miller-Rabin probabilistic primality testing. *)

val mr_rounds : int
(** Default number of witness rounds (16): error probability below
    4^-16 per composite, ample for prime representatives. *)

val is_probable_prime : ?rounds:int -> rng:Drbg.t -> Bigint.t -> bool
(** Trial division by the small-prime table followed by [rounds]
    Miller-Rabin rounds with bases drawn from [rng]. Exact for inputs
    below the small-prime table bound. *)

val miller_rabin_base : Bigint.t -> base:Bigint.t -> bool
(** One Miller-Rabin round with an explicit base; [true] means
    "probably prime with respect to this base". Exposed for tests. *)
