(** Small primes for trial division during primality testing and prime
    search. *)

val primes_below : int -> int list
(** Primes [< n] by Eratosthenes. *)

val small_primes : int array
(** All primes below 8192, precomputed once. *)

val is_small_prime : int -> bool
(** Membership test for [n] below the table bound (8192).
    @raise Invalid_argument above the bound. *)
