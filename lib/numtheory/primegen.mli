(** Prime generation: random primes, deterministic next-prime search and
    RSA modulus generation for the accumulator and trapdoor permutation. *)

val is_prime_det : Bigint.t -> bool
(** Deterministic Miller-Rabin with the first 13 prime bases. Proven
    exact below 3.3e24; used where all parties must agree on a verdict
    (prime representatives), where negligible heuristic error above the
    proven bound is acceptable. *)

val miller_rabin_det : Bigint.t -> bool
(** The Miller-Rabin rounds of {!is_prime_det} alone, without the
    small-prime trial division. For callers (prime representatives)
    that already sieved their candidates incrementally. The input must
    be odd and coprime to the small-prime table for the verdict to be
    meaningful. *)

val next_prime : Bigint.t -> Bigint.t
(** Smallest prime [>= n] (by {!is_prime_det}), via an odd-candidate walk
    with small-prime trial division. *)

val random_prime : rng:Drbg.t -> bits:int -> Bigint.t
(** Uniform [bits]-bit probable prime (top bit set). Requires
    [bits >= 2]. *)

val random_safe_prime : rng:Drbg.t -> bits:int -> Bigint.t
(** Prime [p] with [(p-1)/2] also prime. Noticeably slower; provided for
    faithfulness to the paper's accumulator setup. *)

type rsa_modulus = {
  n : Bigint.t;   (** [p * q] *)
  p : Bigint.t;
  q : Bigint.t;
  phi : Bigint.t; (** [(p-1) * (q-1)] *)
}

val random_rsa_modulus : ?safe:bool -> rng:Drbg.t -> bits:int -> unit -> rsa_modulus
(** Generates a [bits]-bit RSA modulus from two random primes of
    [bits/2] bits each. [~safe:true] uses safe primes (slow). *)
