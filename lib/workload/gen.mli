(** Workload generation for tests, examples and the figure benches.

    The paper evaluates "randomly simulated key-value records, where the
    value has 8, 16 and 24 bit settings" — {!uniform_records} is that
    generator. Zipf and multi-attribute variants cover the motivating
    scenarios (medical records, business transactions). *)

val uniform_records : rng:Drbg.t -> width:int -> int -> Slicer_types.record list
(** [n] records with IDs ["R<i>"] and values uniform in [\[0, 2^width)]. *)

val zipf_records : rng:Drbg.t -> width:int -> ?exponent:float -> int -> Slicer_types.record list
(** Values drawn Zipf-distributed over the value space (rank 1 = value
    0), exponent default 1.0 — skewed workloads stress the equality-
    search path where many records share one value. *)

val multiattr_records :
  rng:Drbg.t -> width:int -> attrs:string list -> int -> Slicer_types.record list
(** Records with one uniform value per named attribute. *)

val random_query : rng:Drbg.t -> width:int -> ?attr:string -> unit -> Slicer_types.query
(** Uniform value and uniformly chosen condition. *)

val random_order_query : rng:Drbg.t -> width:int -> ?attr:string -> unit -> Slicer_types.query
val random_equality_query : rng:Drbg.t -> width:int -> ?attr:string -> unit -> Slicer_types.query
