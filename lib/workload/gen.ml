let uniform_value ~rng ~width = Drbg.uniform_int rng (1 lsl width)

let uniform_records ~rng ~width n =
  List.init n (fun i ->
      Slicer_types.record_of_value (Printf.sprintf "R%d" i) (uniform_value ~rng ~width))

(* Zipf via the classical inverse-CDF over precomputed harmonic weights.
   The value space is capped at 2^16 ranks for table size; wider widths
   still produce valid (small) values. *)
let zipf_records ~rng ~width ?(exponent = 1.0) n =
  let ranks = Stdlib.min (1 lsl width) 65536 in
  let cdf = Array.make ranks 0.0 in
  let total = ref 0.0 in
  for r = 0 to ranks - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) exponent);
    cdf.(r) <- !total
  done;
  let draw () =
    let u = float_of_int (Drbg.uniform_int rng 1_000_000) /. 1_000_000.0 *. !total in
    (* Binary search for the first rank whose cumulative weight covers u. *)
    let rec bsearch lo hi = if lo >= hi then lo else begin
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then bsearch (mid + 1) hi else bsearch lo mid
      end
    in
    bsearch 0 (ranks - 1)
  in
  List.init n (fun i -> Slicer_types.record_of_value (Printf.sprintf "R%d" i) (draw ()))

let multiattr_records ~rng ~width ~attrs n =
  if attrs = [] then invalid_arg "Gen.multiattr_records: need at least one attribute";
  List.init n (fun i ->
      { Slicer_types.id = Printf.sprintf "R%d" i;
        fields = List.map (fun a -> (a, uniform_value ~rng ~width)) attrs })

let random_equality_query ~rng ~width ?(attr = "") () =
  Slicer_types.query ~attr (uniform_value ~rng ~width) Slicer_types.Eq

let random_order_query ~rng ~width ?(attr = "") () =
  let cond = if Drbg.uniform_int rng 2 = 0 then Slicer_types.Gt else Slicer_types.Lt in
  Slicer_types.query ~attr (uniform_value ~rng ~width) cond

let random_query ~rng ~width ?(attr = "") () =
  match Drbg.uniform_int rng 3 with
  | 0 -> random_equality_query ~rng ~width ~attr ()
  | 1 -> Slicer_types.query ~attr (uniform_value ~rng ~width) Slicer_types.Gt
  | _ -> Slicer_types.query ~attr (uniform_value ~rng ~width) Slicer_types.Lt
