type header = {
  parent : string;
  number : int;
  timestamp : int;
  tx_root : string;
  sealer : Vm.address;
  seal : string;
}

type t = { header : header; txns : Vm.txn list; receipts : Vm.receipt list }

let tx_root txns = Merkle.root (Merkle.build (List.map Vm.txn_bytes txns))

let header_preimage h =
  Bytesutil.concat
    [ h.parent; string_of_int h.number; string_of_int h.timestamp; h.tx_root; h.sealer ]

let hash b = Sha256.digest (Bytesutil.concat [ header_preimage b.header; b.header.seal ])

let make ~parent ~number ~timestamp ~sealer ~seal txns receipts =
  let unsealed = { parent; number; timestamp; tx_root = tx_root txns; sealer; seal = "" } in
  { header = { unsealed with seal = seal (header_preimage unsealed) }; txns; receipts }

let prove_inclusion b i = Merkle.prove (Merkle.build (List.map Vm.txn_bytes b.txns)) i

let verify_inclusion b txn proof =
  Merkle.verify ~root:b.header.tx_root ~leaf:(Vm.txn_bytes txn) proof
