type t = { mutable total : int; limit : int; labels : (string, int) Hashtbl.t }

exception Out_of_gas of { used : int; limit : int }

let create ?(limit = 30_000_000) () = { total = 0; limit; labels = Hashtbl.create 8 }

let charge t ~label amount =
  if amount < 0 then invalid_arg "Gasmeter.charge: negative amount";
  t.total <- t.total + amount;
  Hashtbl.replace t.labels label (amount + Option.value ~default:0 (Hashtbl.find_opt t.labels label));
  if t.total > t.limit then raise (Out_of_gas { used = t.total; limit = t.limit })

let used t = t.total

let breakdown t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.labels []
  |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)
