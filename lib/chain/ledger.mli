(** The blockchain: a proof-of-authority ledger over {!Vm} state.

    Validators take turns sealing blocks (clique-style round-robin);
    seals are HMAC tags under per-validator secrets held in a shared
    registry — a stand-in for ECDSA signatures, which the environment's
    crypto substrate does not include (documented substitution: the
    authentication structure and validation flow are identical). *)

type t

val create : validators:string list -> t
(** Fresh chain with a genesis block and named validators.
    @raise Invalid_argument when no validators are given. *)

val state : t -> Vm.state
(** The world state (read side; mutate only through transactions). *)

val validator_names : t -> string list
(** The validator names passed to {!create}, in sealing order — what a
    state snapshot records so recovery rebuilds an identical sealer
    rotation. *)

val submit : t -> Vm.txn -> unit
(** Queues a transaction in the mempool. *)

val seal_block : t -> Block.t
(** Executes all pending transactions in order, seals a block with the
    next round-robin validator, and appends it. Returns the new block
    (possibly containing zero transactions). *)

val submit_and_seal : t -> Vm.txn -> Vm.receipt
(** Convenience: submit one transaction, seal, return its receipt. *)

val uid : t -> int
(** Process-local identity of this chain instance. Off-chain indexers
    use it to key incremental per-ledger caches; it has no on-chain
    meaning and is not stable across restarts. *)

val head : t -> Block.t
val height : t -> int
val blocks : t -> Block.t list
(** Oldest first, including genesis. *)

val blocks_above : t -> height:int -> Block.t list
(** Blocks with number strictly greater than [height], oldest first.
    Costs O(returned blocks), not O(chain length) — the primitive an
    incremental event indexer tails the chain with. *)

val receipt_of : t -> string -> Vm.receipt option
(** Look up a receipt by transaction hash. *)

val validate : t -> (unit, string) result
(** Full-chain validation: parent links, block numbers, Merkle roots,
    sealer rotation and seal tags. *)

val tamper_check_demo : t -> block_index:int -> bool
(** Returns [true] iff corrupting a transaction in the given block is
    detected by {!validate} on a copied chain — used by tests and the
    quickstart example to show immutability. *)
