(** Blocks: header with parent link and transaction Merkle root, sealed
    by a proof-of-authority validator. *)

type header = {
  parent : string;    (** hash of the previous block's header *)
  number : int;
  timestamp : int;    (** logical clock — deterministic runs *)
  tx_root : string;   (** Merkle root over transaction bytes *)
  sealer : Vm.address;
  seal : string;      (** validator authentication tag over the header *)
}

type t = { header : header; txns : Vm.txn list; receipts : Vm.receipt list }

val tx_root : Vm.txn list -> string

val header_preimage : header -> string
(** Header serialization {e without} the seal (what gets sealed). *)

val hash : t -> string
(** Hash of the full (sealed) header. *)

val make :
  parent:string ->
  number:int ->
  timestamp:int ->
  sealer:Vm.address ->
  seal:(string -> string) ->
  Vm.txn list ->
  Vm.receipt list ->
  t
(** Assembles and seals a block; [seal] maps the header preimage to the
    authentication tag. *)

val prove_inclusion : t -> int -> Merkle.proof
(** Merkle proof that the i-th transaction is in the block. *)

val verify_inclusion : t -> Vm.txn -> Merkle.proof -> bool
