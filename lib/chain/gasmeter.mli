(** Mutable gas meter threaded through contract execution. Records a
    breakdown by label so the Table II bench can report where the gas
    went. *)

type t

exception Out_of_gas of { used : int; limit : int }

val create : ?limit:int -> unit -> t
(** A fresh meter; [limit] defaults to 30 million (a block's worth). *)

val charge : t -> label:string -> int -> unit
(** Adds to the total. @raise Out_of_gas when the limit is exceeded. *)

val used : t -> int

val breakdown : t -> (string * int) list
(** Per-label totals, largest first. *)
