(** EVM-style gas schedule.

    Constants follow the Ethereum yellow paper / Berlin-era EIPs so the
    simulated chain charges the same costs the paper's Rinkeby contract
    paid: intrinsic transaction gas, calldata bytes, storage writes and
    reads, hashing, logs, contract creation, and the EIP-2565 modexp
    precompile the RSA verification rides on. Table II of the paper is
    regenerated against this schedule. *)

val tx_base : int
(** 21000 — intrinsic cost of any transaction. *)

val tx_create : int
(** 32000 — additional cost of a contract-creating transaction. *)

val code_deposit_per_byte : int
(** 200 — charged per byte of deployed code. *)

val calldata_zero_byte : int
(** 4 *)

val calldata_nonzero_byte : int
(** 16 *)

val calldata : string -> int
(** Cost of a calldata payload (per-byte zero/nonzero rule). *)

val sstore_set : int
(** 20000 — storage write, zero to non-zero. *)

val sstore_reset : int
(** 5000 — storage write, non-zero slot updated. *)

val sload : int
(** 2100 — cold storage read. *)

val hash_base : int
(** 30 — base cost of a hashing opcode. *)

val hash_per_word : int
(** 6 — per 32-byte word hashed. *)

val hash : int -> int
(** Hashing cost for a payload of the given byte length. *)

val mulmod : int
(** 8 — one 256-bit modular multiplication opcode. *)

val log_base : int
(** 375 — LOG0 base cost. *)

val log_per_byte : int
(** 8 *)

val call_value_transfer : int
(** 9000 — surcharge for a value-bearing internal call (settlement). *)

val modexp : base_len:int -> exp:Bigint.t -> mod_len:int -> int
(** EIP-2565 cost of the MODEXP precompile for a [base_len]-byte base,
    exponent [exp] and [mod_len]-byte modulus. *)

val h_prime : input_len:int -> int
(** Modeled cost of reproducing a prime representative on-chain: one
    hash of the input plus the expected candidate walk (trial divisions
    as mulmod batches, surviving candidates as 272-bit modexp rounds,
    and the deterministic confirmation rounds). Documented in
    DESIGN.md §5. *)
