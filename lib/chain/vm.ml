type address = string

let address_of_name name = String.sub (Sha256.digest ("addr:" ^ name)) 0 20

let pp_address fmt a = Format.fprintf fmt "0x%s…" (Bytesutil.to_hex (String.sub a 0 6))

type state = {
  balances : (address, int) Hashtbl.t;
  nonces : (address, int) Hashtbl.t;
  storage : (address, (string, string) Hashtbl.t) Hashtbl.t;
  deployed : (address, contract_def) Hashtbl.t;
  mutable journal : (unit -> unit) list option;
      (* [Some undos] while a transaction runs; mutations push undo
         thunks, replayed in order on revert. *)
  mutable events : string list; (* collected during the current txn *)
}

and ctx = {
  state : state;
  meter : Gasmeter.t;
  sender : address;
  self : address;
  value : int;
  height : int;
}

and method_impl = ctx -> string list -> (string list, string) result

and contract_def = { cd_name : string; cd_code : string; cd_methods : (string * method_impl) list }

let create_state () =
  { balances = Hashtbl.create 16;
    nonces = Hashtbl.create 16;
    storage = Hashtbl.create 4;
    deployed = Hashtbl.create 4;
    journal = None;
    events = [] }

let record state undo =
  match state.journal with
  | Some undos -> state.journal <- Some (undo :: undos)
  | None -> ()

let balance state addr = Option.value ~default:0 (Hashtbl.find_opt state.balances addr)
let nonce state addr = Option.value ~default:0 (Hashtbl.find_opt state.nonces addr)
let contract_at state addr = Hashtbl.find_opt state.deployed addr

let set_balance state addr v =
  let old = balance state addr in
  record state (fun () -> Hashtbl.replace state.balances addr old);
  Hashtbl.replace state.balances addr v

let fund state addr amount =
  if amount < 0 then invalid_arg "Vm.fund: negative amount";
  set_balance state addr (balance state addr + amount)

let move_value state ~from ~to_ amount =
  if amount < 0 then Error "negative transfer"
  else if balance state from < amount then Error "insufficient balance"
  else begin
    set_balance state from (balance state from - amount);
    set_balance state to_ (balance state to_ + amount);
    Ok ()
  end

(* --- snapshot export / import ----------------------------------------- *)

(* The durable store can't serialize [contract_def] (it holds
   closures), so a snapshot carries the *materialized* world state —
   accounts, storage cells — and the restorer re-installs each
   contract's definition from code. These bypass the journal and gas:
   they are only legal outside any transaction. *)

let accounts state =
  let addrs = Hashtbl.create 16 in
  Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) state.balances;
  Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) state.nonces;
  Hashtbl.fold (fun a () acc -> (a, balance state a, nonce state a) :: acc) addrs []
  |> List.sort compare

let restore_account state addr ~balance ~nonce =
  if state.journal <> None then invalid_arg "Vm.restore_account: inside a transaction";
  Hashtbl.replace state.balances addr balance;
  Hashtbl.replace state.nonces addr nonce

let install_contract state addr def =
  if state.journal <> None then invalid_arg "Vm.install_contract: inside a transaction";
  Hashtbl.replace state.deployed addr def

let storage_entries state addr =
  match Hashtbl.find_opt state.storage addr with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let restore_storage state addr entries =
  if state.journal <> None then invalid_arg "Vm.restore_storage: inside a transaction";
  let tbl =
    match Hashtbl.find_opt state.storage addr with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace state.storage addr tbl;
      tbl
  in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) entries

(* --- contract-side operations ---------------------------------------- *)

let storage_of state addr =
  match Hashtbl.find_opt state.storage addr with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    Hashtbl.replace state.storage addr tbl;
    tbl

let sload ctx key =
  Gasmeter.charge ctx.meter ~label:"sload" Gas.sload;
  Hashtbl.find_opt (storage_of ctx.state ctx.self) key

let sstore ctx key value =
  let tbl = storage_of ctx.state ctx.self in
  let old = Hashtbl.find_opt tbl key in
  let cost = match old with None -> Gas.sstore_set | Some _ -> Gas.sstore_reset in
  Gasmeter.charge ctx.meter ~label:"sstore" cost;
  record ctx.state (fun () ->
      match old with None -> Hashtbl.remove tbl key | Some v -> Hashtbl.replace tbl key v);
  Hashtbl.replace tbl key value

let emit ctx event =
  Gasmeter.charge ctx.meter ~label:"log" (Gas.log_base + (Gas.log_per_byte * String.length event));
  let old = ctx.state.events in
  record ctx.state (fun () -> ctx.state.events <- old);
  ctx.state.events <- event :: ctx.state.events

let send ctx ~to_ amount =
  Gasmeter.charge ctx.meter ~label:"call" Gas.call_value_transfer;
  move_value ctx.state ~from:ctx.self ~to_ amount

let require _ctx cond reason = if cond then Ok () else Error reason

(* --- transactions ------------------------------------------------------ *)

type payload =
  | Transfer
  | Deploy of { def : contract_def; init_args : string list }
  | Call of { method_ : string; args : string list }

type txn = { tx_sender : address; tx_to : address; tx_value : int; tx_nonce : int; tx_payload : payload }

let deploy_address ~sender ~nonce = String.sub (Sha256.digest (Bytesutil.concat [ "create"; sender; string_of_int nonce ])) 0 20

let make_transfer state ~sender ~to_ ~value =
  { tx_sender = sender; tx_to = to_; tx_value = value; tx_nonce = nonce state sender; tx_payload = Transfer }

let make_deploy state ~sender ?(value = 0) def init_args =
  let n = nonce state sender in
  { tx_sender = sender;
    tx_to = deploy_address ~sender ~nonce:n;
    tx_value = value;
    tx_nonce = n;
    tx_payload = Deploy { def; init_args } }

let make_call state ~sender ~to_ ?(value = 0) method_ args =
  { tx_sender = sender; tx_to = to_; tx_value = value; tx_nonce = nonce state sender; tx_payload = Call { method_; args } }

let payload_bytes = function
  | Transfer -> "" (* a plain value transfer carries no calldata *)
  | Deploy { def; init_args } -> Bytesutil.concat ("deploy" :: def.cd_name :: def.cd_code :: init_args)
  | Call { method_; args } -> Bytesutil.concat ("call" :: method_ :: args)

let txn_bytes t =
  Bytesutil.concat
    [ t.tx_sender; t.tx_to; string_of_int t.tx_value; string_of_int t.tx_nonce; payload_bytes t.tx_payload ]

let txn_hash t = Sha256.digest (txn_bytes t)

type receipt = {
  r_txn_hash : string;
  r_gas_used : int;
  r_events : string list;
  r_output : (string list, string) result;
}

(* Calldata gas is charged on the serialized payload — the closest
   analogue of ABI-encoded calldata. *)
let intrinsic_gas t =
  Gas.tx_base
  + Gas.calldata (payload_bytes t.tx_payload)
  + match t.tx_payload with
    | Deploy { def; _ } -> Gas.tx_create + (Gas.code_deposit_per_byte * String.length def.cd_code)
    | Transfer | Call _ -> 0

let run_payload state meter ~height t =
  match t.tx_payload with
  | Transfer -> Ok []
  | Deploy { def; init_args } ->
    if Hashtbl.mem state.deployed t.tx_to then Error "address already occupied"
    else begin
      Hashtbl.replace state.deployed t.tx_to def;
      record state (fun () -> Hashtbl.remove state.deployed t.tx_to);
      (match List.assoc_opt "constructor" def.cd_methods with
       | None -> Ok []
       | Some ctor ->
         ctor { state; meter; sender = t.tx_sender; self = t.tx_to; value = t.tx_value; height }
           init_args)
    end
  | Call { method_; args } ->
    (match contract_at state t.tx_to with
     | None -> Error "no contract at address"
     | Some def ->
       (match List.assoc_opt method_ def.cd_methods with
        | None -> Error (Printf.sprintf "unknown method %s" method_)
        | Some impl ->
          impl { state; meter; sender = t.tx_sender; self = t.tx_to; value = t.tx_value; height }
            args))

let execute ?(height = 0) state t =
  if state.journal <> None then invalid_arg "Vm.execute: reentrant execution";
  state.events <- [];
  let meter = Gasmeter.create () in
  let finish output =
    { r_txn_hash = txn_hash t;
      r_gas_used = Gasmeter.used meter;
      r_events = List.rev state.events;
      r_output = output }
  in
  if t.tx_nonce <> nonce state t.tx_sender then finish (Error "bad nonce")
  else begin
    Hashtbl.replace state.nonces t.tx_sender (t.tx_nonce + 1);
    Gasmeter.charge meter ~label:"intrinsic" (intrinsic_gas t);
    state.journal <- Some [];
    let output =
      match move_value state ~from:t.tx_sender ~to_:t.tx_to t.tx_value with
      | Error _ as e -> e |> Result.map (fun () -> [])
      | Ok () -> (
        try run_payload state meter ~height t with Gasmeter.Out_of_gas _ -> Error "out of gas" )
    in
    (match output with
     | Ok _ -> ()
     | Error _ ->
       (* Revert: replay undo thunks, newest first. *)
       (match state.journal with
        | Some undos -> List.iter (fun undo -> undo ()) undos
        | None -> ()));
    state.journal <- None;
    finish output
  end
