(** The Slicer verification smart contract (Algorithm 5 + the fairness
    escrow of Section IV-A).

    Life cycle:
    + the data owner deploys the contract with the accumulator public
      parameters and initial accumulation value [Ac];
    + [updateAc] — the owner refreshes [Ac] after every Insert (the
      cheap "Data insertion" row of Table II);
    + [requestSearch] — a data user posts search tokens and locks the
      search fee in escrow;
    + [submitResult] — the cloud posts results and witnesses; the
      contract recomputes each claim's multiset hash and prime
      representative, checks the RSA witnesses against [Ac], and either
      pays the cloud or refunds the user.

    Neither plaintext values nor decryption keys ever reach the chain:
    verification works entirely on PRF tokens, encrypted record IDs and
    group elements (the "public verification without privacy leakage"
    requirement). *)

val log_src : Logs.Src.t
(** [slicer.chain.contract] — per-transaction gas and settlement
    outcomes at debug level. *)

type claim = {
  token_bytes : string;   (** [t_j ‖ j ‖ G1 ‖ G2] — the search token *)
  results : string list;  (** encrypted matched records [er] *)
  witness : Bigint.t;     (** the verification object [vo] *)
}

val encode_claims : claim list -> string
val decode_claims : string -> claim list option

val contract :
  modulus:Bigint.t -> generator:Bigint.t -> initial_ac:Bigint.t -> shard:int * int ->
  Vm.contract_def
(** Contract definition; deploy with {!Vm.make_deploy} (no init args —
    parameters are baked into the constructor closure, standing in for
    constructor calldata which is charged separately). [shard = (i, n)]
    records which slice of the keyword space this contract's [Ac]
    covers; a lone server uses [(0, 1)]. *)

(** Client-side transaction builders. *)

val restore :
  Ledger.t -> contract:Vm.address -> modulus:Bigint.t -> generator:Bigint.t -> unit
(** Recovery support: re-install the contract definition at its
    snapshotted address via {!Vm.install_contract} — no transaction,
    no constructor run. The caller must restore the contract's storage
    (including the [ac] cell) separately; the live accumulation value
    comes from storage, never from the closure. *)

val deploy :
  ?shard:int * int ->
  Ledger.t -> owner:Vm.address -> modulus:Bigint.t -> generator:Bigint.t -> initial_ac:Bigint.t ->
  Vm.address * Vm.receipt
(** Deploys and seals a block; returns the contract address.
    [shard] defaults to [(0, 1)] (a lone server). *)

val update_ac : Ledger.t -> owner:Vm.address -> contract:Vm.address -> Bigint.t -> Vm.receipt

val request_search :
  Ledger.t -> user:Vm.address -> contract:Vm.address -> request_id:string ->
  tokens:string list -> payment:int -> Vm.receipt
(** Posts the search tokens (as opaque byte strings) with the fee in
    escrow. *)

val submit_result :
  Ledger.t -> cloud:Vm.address -> contract:Vm.address -> request_id:string ->
  claim list -> Vm.receipt
(** Triggers on-chain verification and settlement. The receipt's output
    is [["paid"]] or [["refunded"]]. *)

val submit_result_batched :
  Ledger.t -> cloud:Vm.address -> contract:Vm.address -> request_id:string ->
  claim list -> witness:Bigint.t -> Vm.receipt
(** Settlement with one batched membership witness covering every claim
    (the per-claim [witness] fields are ignored); saves [(k-1) * 64]
    bytes of verification objects for a [k]-token order search. *)

val request_status : Ledger.t -> contract:Vm.address -> request_id:string -> string option
(** ["pending"], ["paid"] or ["refunded"]. *)

val stored_ac : Ledger.t -> contract:Vm.address -> Bigint.t option
(** The accumulation value currently on chain (freshness anchor). *)

val stored_shard : Ledger.t -> contract:Vm.address -> (int * int) option
(** The shard identity [(i, n)] stamped at deploy time; [None] when the
    storage cells are missing (contracts restored from pre-cluster
    snapshots). *)

val stored_tokens : Ledger.t -> contract:Vm.address -> request_id:string -> string list option
(** The tokens the cloud retrieves from the chain for a request. *)
