(** The Slicer verification smart contract (Algorithm 5 + the fairness
    escrow of Section IV-A).

    Life cycle:
    + the data owner deploys the contract with the accumulator public
      parameters and initial accumulation value [Ac];
    + [updateAc] — the owner refreshes [Ac] after every Insert (the
      cheap "Data insertion" row of Table II);
    + [requestSearch] — a data user posts search tokens and locks the
      search fee in escrow;
    + [submitResult] — the cloud posts results and witnesses; the
      contract recomputes each claim's multiset hash and prime
      representative, checks the RSA witnesses against [Ac], and either
      pays the cloud or refunds the user.

    Neither plaintext values nor decryption keys ever reach the chain:
    verification works entirely on PRF tokens, encrypted record IDs and
    group elements (the "public verification without privacy leakage"
    requirement). *)

val log_src : Logs.Src.t
(** [slicer.chain.contract] — per-transaction gas and settlement
    outcomes at debug level. *)

type claim = {
  token_bytes : string;   (** [t_j ‖ j ‖ G1 ‖ G2] — the search token *)
  results : string list;  (** encrypted matched records [er] *)
  witness : Bigint.t;     (** the verification object [vo] *)
}

val encode_claims : claim list -> string
val decode_claims : string -> claim list option

type receipt_leaf = {
  rl_client : string;         (** the registered client name *)
  rl_request : string;        (** the on-chain (composite) request id *)
  rl_claim_hash : string;     (** SHA-256 of the served claims blob *)
  rl_witness_digest : string; (** digest of the verification objects *)
}
(** One settled-search receipt as committed under a batch's Merkle
    root (the optimistic settlement path). *)

val encode_leaf : receipt_leaf -> string
val decode_leaf : string -> receipt_leaf option

val witness_digest :
  claims:claim list -> batch_witness:Bigint.t option -> string
(** The [rl_witness_digest] binding: the batch witness when one covers
    every claim, the concatenated per-claim VOs otherwise. *)

val contract :
  modulus:Bigint.t -> generator:Bigint.t -> initial_ac:Bigint.t -> shard:int * int ->
  dispute_window:int ->
  Vm.contract_def
(** Contract definition; deploy with {!Vm.make_deploy} (no init args —
    parameters are baked into the constructor closure, standing in for
    constructor calldata which is charged separately). [shard = (i, n)]
    records which slice of the keyword space this contract's [Ac]
    covers; a lone server uses [(0, 1)]. [dispute_window] is the number
    of blocks after a [commitBatch] during which any leaf may be
    disputed; [finalize] only succeeds once it has passed. *)

(** Client-side transaction builders. *)

val restore :
  Ledger.t -> contract:Vm.address -> modulus:Bigint.t -> generator:Bigint.t -> unit
(** Recovery support: re-install the contract definition at its
    snapshotted address via {!Vm.install_contract} — no transaction,
    no constructor run. The caller must restore the contract's storage
    (including the [ac] cell) separately; the live accumulation value
    comes from storage, never from the closure. *)

val deploy :
  ?shard:int * int -> ?dispute_window:int ->
  Ledger.t -> owner:Vm.address -> modulus:Bigint.t -> generator:Bigint.t -> initial_ac:Bigint.t ->
  Vm.address * Vm.receipt
(** Deploys and seals a block; returns the contract address.
    [shard] defaults to [(0, 1)] (a lone server); [dispute_window]
    defaults to 4 blocks. *)

val update_ac : Ledger.t -> owner:Vm.address -> contract:Vm.address -> Bigint.t -> Vm.receipt

val request_search :
  Ledger.t -> user:Vm.address -> contract:Vm.address -> request_id:string ->
  tokens:string list -> payment:int -> Vm.receipt
(** Posts the search tokens (as opaque byte strings) with the fee in
    escrow. *)

val submit_result :
  Ledger.t -> cloud:Vm.address -> contract:Vm.address -> request_id:string ->
  claim list -> Vm.receipt
(** Triggers on-chain verification and settlement. The receipt's output
    is [["paid"]] or [["refunded"]]. *)

val submit_result_batched :
  Ledger.t -> cloud:Vm.address -> contract:Vm.address -> request_id:string ->
  claim list -> witness:Bigint.t -> Vm.receipt
(** Settlement with one batched membership witness covering every claim
    (the per-claim [witness] fields are ignored); saves [(k-1) * 64]
    bytes of verification objects for a [k]-token order search. *)

val request_status : Ledger.t -> contract:Vm.address -> request_id:string -> string option
(** ["pending"], ["batched"] (committed under an open batch), ["paid"]
    or ["refunded"]. *)

(** {1 Batched optimistic settlement}

    The cloud posts a slashable [deposit], accumulates settled-Search
    receipts off-chain, and commits one Merkle root per batch
    ([commitBatch]); anyone may [dispute] a single leaf during the
    dispute window — the contract re-runs Algorithm 5 for that leaf
    against the batch's committed [Ac] via a Merkle inclusion proof, a
    proven-bad leaf pays the whole deposit to the disputer and refunds
    every escrow in the batch — and an undisputed batch settles
    wholesale with [finalize] once the window has passed. *)

val post_deposit :
  Ledger.t -> cloud:Vm.address -> contract:Vm.address -> amount:int -> Vm.receipt

val commit_batch :
  Ledger.t -> cloud:Vm.address -> contract:Vm.address -> batch_id:string -> root:string ->
  requests:string list -> Vm.receipt
(** Commits a Merkle [root] over the batch's receipt leaves; every
    member request must be an escrowed ["pending"] search. The output
    is [["committed"]]. *)

val dispute_leaf :
  Ledger.t -> disputer:Vm.address -> contract:Vm.address -> batch_id:string -> index:int ->
  leaf:string -> proof:Merkle.proof -> claims_blob:string -> batch_witness:Bigint.t option ->
  Vm.receipt
(** Opens a dispute on one committed leaf. A bad leaf yields
    [["slashed"]]; a leaf that verifies reverts with
    ["dispute rejected…"] (the disputer pays the verification gas). *)

val finalize_batch :
  Ledger.t -> cloud:Vm.address -> contract:Vm.address -> batch_id:string -> Vm.receipt
(** Wholesale settlement after the window; output
    [["finalized"; total]]. *)

val batch_status : Ledger.t -> contract:Vm.address -> batch_id:string -> string option
(** ["committed"], ["final"] or ["slashed"]. *)

val stored_deposit : Ledger.t -> contract:Vm.address -> who:Vm.address -> int

val stored_dispute_window : Ledger.t -> contract:Vm.address -> int option

val stored_ac : Ledger.t -> contract:Vm.address -> Bigint.t option
(** The accumulation value currently on chain (freshness anchor). *)

val stored_shard : Ledger.t -> contract:Vm.address -> (int * int) option
(** The shard identity [(i, n)] stamped at deploy time; [None] when the
    storage cells are missing (contracts restored from pre-cluster
    snapshots). *)

val stored_tokens : Ledger.t -> contract:Vm.address -> request_id:string -> string list option
(** The tokens the cloud retrieves from the chain for a request. *)
