(** The cloud-side batch manager for optimistic settlement.

    Settled-Search receipts [(client, request_id, claim_hash,
    witness_digest)] accumulate in an open batch; one [commitBatch]
    transaction posts a Merkle root over the whole batch (flushed on a
    size bound or a wall-clock window), and undisputed batches settle
    wholesale with [finalize] after the dispute cutoff — amortizing
    Table-II settlement gas by the batch size. A dispute on a single
    proven-bad leaf slashes the cloud's deposit and refunds the batch
    (see {!Slicer_contract}).

    Not thread-safe: the owning service drives it under its own lock,
    and journals every add/flush/finalize/dispute in the WAL so the
    sequence replays deterministically on recovery. *)

val log_src : Logs.Src.t

type config = {
  sb_size : int;        (** commit after this many receipts (>= 1) *)
  sb_window_ms : float; (** ... or once the open batch is this old *)
  sb_deposit : int;     (** slashable stake the cloud posts up front *)
  sb_dispute_blocks : int;
      (** dispute window the service stamps into freshly deployed
          contracts; already-deployed contracts keep their own *)
}

val default_config : config
(** 64 receipts / 1 s window / 10,000,000 wei deposit / 4 blocks. *)

type status =
  | Pending of { batch : string; index : int }
      (** in the open batch, not yet committed on-chain *)
  | Committed of { batch : string; index : int; leaf : string; root : string;
                   proof : Merkle.proof }
      (** committed; disputable until the window passes *)
  | Final of { batch : string }    (** batch finalized, escrow paid to the cloud *)
  | Refunded of { batch : string } (** batch slashed, escrow refunded *)

type t

val create :
  config:config -> ledger:Ledger.t -> contract:Vm.address -> cloud:Vm.address -> t

val config : t -> config

val ensure_deposit : t -> Vm.receipt option
(** Post the slashable deposit unless one is already on the contract
    (recovery re-enables batching over restored chain state). *)

val open_id : t -> string
(** The open batch's id ([b0], [b1], …) — deterministic, so a restart
    replaying the WAL re-derives the same ids. *)

val open_count : t -> int

val add : t -> Slicer_contract.receipt_leaf -> string * int
(** Append a receipt to the open batch; returns its [(batch, index)]
    coordinates. Never flushes — the caller checks {!should_flush}
    after journaling the event that caused the add. *)

val should_flush : t -> bool
(** The open batch has reached [sb_size]. *)

val window_expired : t -> bool
(** The open batch is non-empty and older than [sb_window_ms] — the
    service's tick journals an explicit flush event when this fires
    (wall-clock decisions cannot be replayed, their effects can). *)

val flush : t -> (string * Vm.receipt) option
(** Commit the open batch on-chain; [None] when it is empty. A
    reverted commit leaves the batch open for a retry. *)

val dispute_window : t -> int
(** The contract's window, in blocks. *)

val finalize_due : t -> (string * Vm.receipt) list
(** Finalize every committed batch whose dispute window has passed,
    oldest first. *)

val dispute :
  t -> disputer:Vm.address -> request:string -> claims_blob:string ->
  batch_witness:Bigint.t option -> (bool * Vm.receipt, string) result
(** Open a dispute on the committed leaf of [request]. [Ok (slashed,
    receipt)]: a rejected dispute (the leaf verifies) is not an error,
    it returns [(false, receipt)] with the revert reason inside.
    [Error _] when the request has no committed, still-open leaf. *)

val status : t -> request:string -> status option

val export : t -> string
(** Snapshot blob (batch ids, states, leaf bytes, open tail). *)

val restore :
  config:config -> ledger:Ledger.t -> contract:Vm.address -> cloud:Vm.address -> string ->
  t option
(** Rebuild from {!export} output over recovered chain state. *)
