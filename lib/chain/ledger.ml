type validator = {
  v_name : string;
  v_addr : Vm.address;
  v_secret : string;
  v_prf : Hmac.keyed; (* sealing PRF context, keyed once per validator *)
}

type t = {
  uid : int; (* process-local identity, for off-chain indexer caches *)
  vm_state : Vm.state;
  validators : validator array;
  mutable chain : Block.t list; (* newest first; last element is genesis *)
  mutable mempool : Vm.txn list; (* newest first *)
  receipts : (string, Vm.receipt) Hashtbl.t;
}

let uid_counter = ref 0

let genesis_parent = Sha256.digest "slicer-genesis"

let make_validator name =
  let secret = Sha256.digest ("validator-secret:" ^ name) in
  { v_name = name;
    v_addr = Vm.address_of_name name;
    v_secret = secret;
    v_prf = Hmac.create ~key:secret }

let seal_with v preimage = Hmac.sha256_keyed v.v_prf preimage

let create ~validators =
  if validators = [] then invalid_arg "Ledger.create: need at least one validator";
  let validators = Array.of_list (List.map make_validator validators) in
  let genesis =
    Block.make ~parent:genesis_parent ~number:0 ~timestamp:0 ~sealer:validators.(0).v_addr
      ~seal:(seal_with validators.(0)) [] []
  in
  incr uid_counter;
  { uid = !uid_counter;
    vm_state = Vm.create_state ();
    validators;
    chain = [ genesis ];
    mempool = [];
    receipts = Hashtbl.create 64 }

let state t = t.vm_state

let validator_names t =
  Array.to_list (Array.map (fun v -> v.v_name) t.validators)

let submit t txn = t.mempool <- txn :: t.mempool

let uid t = t.uid
let head t = List.hd t.chain
let height t = (head t).Block.header.Block.number
let blocks t = List.rev t.chain

let blocks_above t ~height =
  (* Walk the newest-first spine only until it drops to [height]:
     O(new blocks), which is what keeps incremental indexers cheap. *)
  let rec take acc = function
    | b :: rest when b.Block.header.Block.number > height -> take (b :: acc) rest
    | _ -> acc
  in
  take [] t.chain

let sealer_for t number = t.validators.(number mod Array.length t.validators)

let seal_block t =
  let txns = List.rev t.mempool in
  t.mempool <- [];
  let receipts = List.map (Vm.execute ~height:(height t + 1) t.vm_state) txns in
  List.iter (fun (r : Vm.receipt) -> Hashtbl.replace t.receipts r.Vm.r_txn_hash r) receipts;
  let number = height t + 1 in
  let v = sealer_for t number in
  let block =
    Block.make ~parent:(Block.hash (head t)) ~number ~timestamp:number ~sealer:v.v_addr
      ~seal:(seal_with v) txns receipts
  in
  t.chain <- block :: t.chain;
  block

let submit_and_seal t txn =
  submit t txn;
  let block = seal_block t in
  match block.Block.receipts with
  | [ r ] -> r
  | rs -> List.nth rs (List.length rs - 1)

let receipt_of t hash = Hashtbl.find_opt t.receipts hash

let validate t =
  let rec go = function
    | [] -> Error "empty chain"
    | [ genesis ] ->
      if genesis.Block.header.Block.number <> 0 then Error "genesis number"
      else if not (String.equal genesis.Block.header.Block.parent genesis_parent) then Error "genesis parent"
      else Ok ()
    | block :: (parent :: _ as rest) ->
      let h = block.Block.header in
      if h.Block.number <> parent.Block.header.Block.number + 1 then Error "non-consecutive number"
      else if not (String.equal h.Block.parent (Block.hash parent)) then Error "broken parent link"
      else if not (String.equal h.Block.tx_root (Block.tx_root block.Block.txns)) then Error "tx root mismatch"
      else begin
        let v = sealer_for t h.Block.number in
        if not (String.equal h.Block.sealer v.v_addr) then Error "wrong sealer"
        else begin
          let expected = seal_with v (Block.header_preimage { h with Block.seal = "" }) in
          if not (Bytesutil.const_equal expected h.Block.seal) then Error "bad seal" else go rest
        end
      end
  in
  go t.chain

let tamper_check_demo t ~block_index =
  match List.nth_opt (blocks t) block_index with
  | None | Some { Block.txns = []; _ } -> false
  | Some block ->
    (* Forge a copy of the block with one transaction's value bumped. *)
    let forged_txns =
      match block.Block.txns with
      | first :: rest ->
        let bumped =
          Vm.make_transfer t.vm_state ~sender:first.Vm.tx_sender ~to_:first.Vm.tx_to
            ~value:(first.Vm.tx_value + 1)
        in
        bumped :: rest
      | [] -> []
    in
    (* The original header's tx_root no longer matches the forged body. *)
    let forged = { block with Block.txns = forged_txns } in
    let chain' =
      List.map (fun b -> if b == block then forged else b) t.chain
    in
    (match validate { t with chain = chain' } with Error _ -> true | Ok () -> false)
