let tx_base = 21_000
let tx_create = 32_000
let code_deposit_per_byte = 200
let calldata_zero_byte = 4
let calldata_nonzero_byte = 16

let calldata payload =
  String.fold_left
    (fun acc c -> acc + if c = '\000' then calldata_zero_byte else calldata_nonzero_byte)
    0 payload

let sstore_set = 20_000
let sstore_reset = 5_000
let sload = 2_100
let hash_base = 30
let hash_per_word = 6
let hash len = hash_base + (hash_per_word * ((len + 31) / 32))
let mulmod = 8
let log_base = 375
let log_per_byte = 8
let call_value_transfer = 9_000

(* EIP-2565. *)
let modexp ~base_len ~exp ~mod_len =
  let words = (Stdlib.max base_len mod_len + 7) / 8 in
  let mult_complexity = words * words in
  let exp_bits = Bigint.num_bits exp in
  let exp_len_bytes = (exp_bits + 7) / 8 in
  let iteration_count =
    if exp_len_bytes <= 32 then Stdlib.max 1 (exp_bits - 1)
    else (8 * (exp_len_bytes - 32)) + Stdlib.max 1 (Stdlib.min exp_bits 256 - 1)
  in
  Stdlib.max 200 (mult_complexity * iteration_count / 3)

(* Prime-representative reproduction (Prime_rep construction):
   candidates are 272-bit; the expected prime gap near 2^272 is
   ln(2^272) ~ 189, i.e. ~94 odd candidates. Trial division by the small
   prime table is modeled as one mulmod batch per candidate; roughly one
   candidate in ten survives to a base-2 Miller-Rabin modexp, and the
   found prime pays the 13 deterministic confirmation rounds. *)
let h_prime ~input_len =
  let candidates = 94 in
  let trial_division = candidates * 5 * mulmod in
  let survivors = 1 + (candidates / 10) in
  let mr_round = modexp ~base_len:34 ~exp:(Bigint.shift_left Bigint.one 271) ~mod_len:34 in
  hash input_len + trial_division + ((survivors + 13) * mr_round)
