(** Account state, contracts and metered transaction execution — the
    simulated chain's execution engine.

    Contracts are OCaml closures registered under an address; their
    storage reads/writes and value transfers are gas-metered against
    {!Gas} and journaled, so a reverting call rolls back every state
    change exactly as the EVM would. *)

type address = string
(** 20-byte account identifier. *)

val address_of_name : string -> address
(** Deterministic address from a human-readable name (hash-derived). *)

val pp_address : Format.formatter -> address -> unit
(** Short hex rendering. *)

type state

type ctx = {
  state : state;
  meter : Gasmeter.t;
  sender : address; (** [msg.sender] *)
  self : address;   (** the executing contract's address *)
  value : int;      (** [msg.value], already credited to [self] *)
  height : int;     (** [block.number] of the sealing block (0 off-chain) *)
}

type method_impl = ctx -> string list -> (string list, string) result
(** A contract method: returns output words, or [Error reason] which
    reverts the call's state changes. *)

type contract_def = {
  cd_name : string;
  cd_code : string;     (** pseudo-bytecode; its length drives deploy gas *)
  cd_methods : (string * method_impl) list;
}

(** {1 State} *)

val create_state : unit -> state
val fund : state -> address -> int -> unit
val balance : state -> address -> int
val nonce : state -> address -> int
val contract_at : state -> address -> contract_def option

(** {1 Snapshot export / import}

    For the durable store: a snapshot carries the {e materialized}
    world state — [contract_def] closures cannot be serialized, so the
    restorer re-installs each contract's definition from code via
    {!install_contract}. The restore functions bypass the journal and
    gas metering and raise [Invalid_argument] inside a transaction. *)

val accounts : state -> (address * int * int) list
(** Every address with a balance or a nonce, as
    [(address, balance, nonce)], deterministically sorted. *)

val restore_account : state -> address -> balance:int -> nonce:int -> unit

val install_contract : state -> address -> contract_def -> unit
(** Place a contract definition at an address without running its
    constructor (the snapshotted storage {e is} the constructor's plus
    all later effects). *)

val storage_entries : state -> address -> (string * string) list
(** A contract's storage cells, deterministically sorted. *)

val restore_storage : state -> address -> (string * string) list -> unit

(** {1 Contract-side operations (metered, journaled)} *)

val sload : ctx -> string -> string option
val sstore : ctx -> string -> string -> unit
val emit : ctx -> string -> unit
(** Emits a log event (gas only; events are recorded in the receipt). *)

val send : ctx -> to_:address -> int -> (unit, string) result
(** Value transfer out of the executing contract. *)

val require : ctx -> bool -> string -> (unit, string) result
(** [require ctx cond reason] is [Error reason] when the condition
    fails — the Solidity idiom. *)

(** {1 Transactions} *)

type payload =
  | Transfer
  | Deploy of { def : contract_def; init_args : string list }
  | Call of { method_ : string; args : string list }

type txn = private {
  tx_sender : address;
  tx_to : address; (** for [Deploy], the created contract's address *)
  tx_value : int;
  tx_nonce : int;
  tx_payload : payload;
}

val make_transfer : state -> sender:address -> to_:address -> value:int -> txn
val make_deploy : state -> sender:address -> ?value:int -> contract_def -> string list -> txn
val make_call : state -> sender:address -> to_:address -> ?value:int -> string -> string list -> txn

val txn_bytes : txn -> string
(** Canonical serialization (closures are represented by the contract
    name and code, which is what an on-chain deployment carries). *)

val txn_hash : txn -> string

type receipt = {
  r_txn_hash : string;
  r_gas_used : int;
  r_events : string list;
  r_output : (string list, string) result;
}

val execute : ?height:int -> state -> txn -> receipt
(** Applies the transaction: checks nonce and balance, charges intrinsic
    and execution gas, runs the payload, and rolls back on revert. A
    failed transaction still consumes its gas and bumps the nonce.
    [height] is exposed to contracts as [ctx.height] ([block.number]);
    the ledger passes the sealing block's number. *)
