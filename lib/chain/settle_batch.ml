let log_src = Logs.Src.create "slicer.chain.settle" ~doc:"Batched optimistic settlement"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_commits =
  Obs.counter ~help:"batch commitments posted" "slicer_settle_batch_commits_total"

let c_finalized =
  Obs.counter ~help:"batches finalized after the dispute window" "slicer_settle_batch_finalized_total"

let c_disputes = Obs.counter ~help:"disputes opened" "slicer_settle_batch_disputes_total"

let c_slashes =
  Obs.counter ~help:"batches slashed from a proven-bad leaf" "slicer_settle_batch_slashed_total"

let h_size =
  Obs.histogram ~units:Obs.Histogram.Raw ~help:"receipts per committed batch"
    "slicer_settle_batch_size"

let h_commit_gas =
  Obs.histogram ~units:Obs.Histogram.Raw ~help:"gas per commitBatch transaction"
    "slicer_settle_batch_commit_gas"

let h_finalize_gas =
  Obs.histogram ~units:Obs.Histogram.Raw ~help:"gas per finalize transaction"
    "slicer_settle_batch_finalize_gas"

let g_pending = Obs.gauge ~help:"receipts awaiting commitment" "slicer_settle_batch_pending"

type config = {
  sb_size : int;        (* commit after this many receipts *)
  sb_window_ms : float; (* ... or once the open batch is this old *)
  sb_deposit : int;     (* slashable stake the cloud posts up front *)
  sb_dispute_blocks : int; (* contract-side window, for fresh deploys *)
}

let default_config =
  { sb_size = 64; sb_window_ms = 1_000.; sb_deposit = 10_000_000; sb_dispute_blocks = 4 }

type status =
  | Pending of { batch : string; index : int }
  | Committed of { batch : string; index : int; leaf : string; root : string;
                   proof : Merkle.proof }
  | Final of { batch : string }
  | Refunded of { batch : string }

type batch_state = Open | Posted of int (* commit height *) | Finalized | Slashed

type batch = {
  b_id : string;
  b_leaves : string list; (* encoded, oldest first — the Merkle leaf order *)
  mutable b_state : batch_state;
  b_tree : Merkle.t;
}

type t = {
  ledger : Ledger.t;
  contract : Vm.address;
  cloud : Vm.address;
  cfg : config;
  mutable seq : int;                  (* number of the open batch *)
  mutable open_rev : (string * Slicer_contract.receipt_leaf) list; (* newest first *)
  mutable opened_ns : int;            (* clock at the open batch's first leaf *)
  batches : (string, batch) Hashtbl.t;
  mutable order : string list;        (* committed batch ids, newest first *)
  by_request : (string, string * int) Hashtbl.t; (* request -> (batch, index) *)
}

let batch_name seq = Printf.sprintf "b%d" seq

let create ~config ~ledger ~contract ~cloud =
  { ledger; contract; cloud; cfg = config; seq = 0; open_rev = []; opened_ns = 0;
    batches = Hashtbl.create 16; order = []; by_request = Hashtbl.create 256 }

let config t = t.cfg
let open_id t = batch_name t.seq
let open_count t = List.length t.open_rev

(* Idempotent: recovery re-enables batching over restored chain state
   in which the deposit already sits in the contract. *)
let ensure_deposit t =
  if Slicer_contract.stored_deposit t.ledger ~contract:t.contract ~who:t.cloud > 0 then None
  else
    Some
      (Slicer_contract.post_deposit t.ledger ~cloud:t.cloud ~contract:t.contract
         ~amount:t.cfg.sb_deposit)

let add t leaf =
  let index = List.length t.open_rev in
  if index = 0 then t.opened_ns <- Obs.Clock.now_ns ();
  t.open_rev <- (Slicer_contract.encode_leaf leaf, leaf) :: t.open_rev;
  Obs.Gauge.add g_pending 1;
  Hashtbl.replace t.by_request leaf.Slicer_contract.rl_request (open_id t, index);
  (open_id t, index)

let should_flush t = open_count t >= t.cfg.sb_size

let window_expired t =
  t.open_rev <> []
  && float_of_int (Obs.Clock.now_ns () - t.opened_ns) /. 1e6 >= t.cfg.sb_window_ms

(* Commit the open batch: one Merkle root, one transaction. Determinism
   matters — recovery replays the same add/flush sequence from the WAL
   and must reproduce batch ids, leaf order and the commit height. *)
let flush t =
  match t.open_rev with
  | [] -> None
  | rev ->
    Obs.span "settle.commit" @@ fun () ->
    let id = open_id t in
    let pairs = List.rev rev in
    let leaves = List.map fst pairs in
    let tree = Merkle.build leaves in
    let requests = List.map (fun (_, l) -> l.Slicer_contract.rl_request) pairs in
    let receipt =
      Slicer_contract.commit_batch t.ledger ~cloud:t.cloud ~contract:t.contract ~batch_id:id
        ~root:(Merkle.root tree) ~requests
    in
    (match receipt.Vm.r_output with
     | Ok _ ->
       let height = Ledger.height t.ledger in
       Hashtbl.replace t.batches id
         { b_id = id; b_leaves = leaves; b_state = Posted height; b_tree = tree };
       t.order <- id :: t.order;
       t.seq <- t.seq + 1;
       t.open_rev <- [];
       Obs.Counter.incr c_commits;
       Obs.Histogram.record h_size (List.length leaves);
       Obs.Histogram.record h_commit_gas receipt.Vm.r_gas_used;
       Obs.Gauge.add g_pending (-List.length leaves);
       Log.debug (fun m ->
           m "committed %s: %d receipts, gas %d" id (List.length leaves) receipt.Vm.r_gas_used)
     | Error e ->
       (* A reverted commit leaves the batch open; the next flush (or
          tick) retries. Seen only under contract misconfiguration. *)
       Log.err (fun m -> m "commitBatch %s reverted: %s" id e));
    Some (id, receipt)

let dispute_window t =
  Option.value ~default:1 (Slicer_contract.stored_dispute_window t.ledger ~contract:t.contract)

(* Finalize every committed batch whose dispute window has passed,
   oldest first (deterministic order for WAL replay). *)
let finalize_due t =
  let w = dispute_window t in
  let height = Ledger.height t.ledger in
  let due =
    List.rev t.order
    |> List.filter_map (fun id ->
           match Hashtbl.find_opt t.batches id with
           | Some ({ b_state = Posted h; _ } as b) when height >= h + w -> Some b
           | _ -> None)
  in
  List.map
    (fun b ->
      Obs.span "settle.finalize" @@ fun () ->
      let receipt =
        Slicer_contract.finalize_batch t.ledger ~cloud:t.cloud ~contract:t.contract
          ~batch_id:b.b_id
      in
      (match receipt.Vm.r_output with
       | Ok _ ->
         b.b_state <- Finalized;
         Obs.Counter.incr c_finalized;
         Obs.Histogram.record h_finalize_gas receipt.Vm.r_gas_used
       | Error e -> Log.err (fun m -> m "finalize %s reverted: %s" b.b_id e));
      (b.b_id, receipt))
    due

(* Open a dispute on the committed leaf of [request]. The claims blob
   is the one the cloud served (its hash is committed in the leaf);
   [Ok (slashed, receipt)] — a rejected dispute is not an error, it
   comes back as [(false, receipt)] with the revert reason inside. *)
let dispute t ~disputer ~request ~claims_blob ~batch_witness =
  match Hashtbl.find_opt t.by_request request with
  | None -> Error "unknown request"
  | Some (batch_id, index) ->
    (match Hashtbl.find_opt t.batches batch_id with
     | None -> Error "receipt not committed yet"
     | Some b ->
       (match b.b_state with
        | Open -> Error "receipt not committed yet"
        | Finalized -> Error "batch already finalized"
        | Slashed -> Error "batch already slashed"
        | Posted _ ->
          Obs.span "settle.dispute" @@ fun () ->
          Obs.Counter.incr c_disputes;
          let leaf = List.nth b.b_leaves index in
          let proof = Merkle.prove b.b_tree index in
          let receipt =
            Slicer_contract.dispute_leaf t.ledger ~disputer ~contract:t.contract ~batch_id
              ~index ~leaf ~proof ~claims_blob ~batch_witness
          in
          let slashed = receipt.Vm.r_output = Ok [ "slashed" ] in
          if slashed then begin
            b.b_state <- Slashed;
            Obs.Counter.incr c_slashes;
            Log.warn (fun m -> m "batch %s slashed by dispute on %s" batch_id request)
          end;
          Ok (slashed, receipt)))

let status t ~request =
  match Hashtbl.find_opt t.by_request request with
  | None -> None
  | Some (batch_id, index) ->
    (match Hashtbl.find_opt t.batches batch_id with
     | None -> Some (Pending { batch = batch_id; index })
     | Some b ->
       (match b.b_state with
        | Open -> Some (Pending { batch = batch_id; index })
        | Posted _ ->
          Some
            (Committed
               { batch = batch_id; index; leaf = List.nth b.b_leaves index;
                 root = Merkle.root b.b_tree; proof = Merkle.prove b.b_tree index })
        | Finalized -> Some (Final { batch = batch_id })
        | Slashed -> Some (Refunded { batch = batch_id })))

(* --- snapshot export / restore ----------------------------------------- *)

(* The manager's state rides in the service snapshot (WAL events since
   the snapshot replay deterministically on top). Receipts and the
   wall clock are not persisted: a recovered open batch restarts its
   window from the restore instant. *)
let magic = "slicer-settle-batch-v1"

let state_tag = function Open -> "o" | Posted h -> "p" ^ string_of_int h | Finalized -> "f" | Slashed -> "s"

let state_of_tag = function
  | "o" -> Some Open
  | "f" -> Some Finalized
  | "s" -> Some Slashed
  | tag when String.length tag > 1 && tag.[0] = 'p' ->
    Option.map (fun h -> Posted h) (int_of_string_opt (String.sub tag 1 (String.length tag - 1)))
  | _ -> None

let export t =
  let batch b =
    Bytesutil.concat [ b.b_id; state_tag b.b_state; Bytesutil.concat b.b_leaves ]
  in
  let batches = List.rev_map (fun id -> batch (Hashtbl.find t.batches id)) t.order in
  Bytesutil.concat
    (magic
     :: string_of_int t.seq
     :: Bytesutil.concat (List.rev_map fst t.open_rev)
     :: batches)

let restore ~config ~ledger ~contract ~cloud bytes =
  match Bytesutil.split bytes with
  | Some (m :: seq_s :: open_blob :: batch_blobs) when m = magic -> (
    match (int_of_string_opt seq_s, Bytesutil.split open_blob) with
    | Some seq, Some open_leaves -> (
      let t = create ~config ~ledger ~contract ~cloud in
      t.seq <- seq;
      let decode_batch blob =
        match Bytesutil.split blob with
        | Some [ id; tag; leaves_blob ] -> (
          match (state_of_tag tag, Bytesutil.split leaves_blob) with
          | Some state, Some leaves ->
            Some { b_id = id; b_state = state; b_leaves = leaves; b_tree = Merkle.build leaves }
          | _ -> None)
        | Some _ | None -> None
      in
      let rec go = function
        | [] -> true
        | blob :: rest -> (
          match decode_batch blob with
          | Some b ->
            Hashtbl.replace t.batches b.b_id b;
            t.order <- b.b_id :: t.order;
            List.iteri
              (fun i leaf ->
                match Slicer_contract.decode_leaf leaf with
                | Some l -> Hashtbl.replace t.by_request l.Slicer_contract.rl_request (b.b_id, i)
                | None -> ())
              b.b_leaves;
            go rest
          | None -> false)
      in
      (* order: oldest batch first in the export. *)
      if not (go batch_blobs) then None
      else begin
        let decoded_open =
          List.filter_map
            (fun bytes ->
              Option.map (fun l -> (bytes, l)) (Slicer_contract.decode_leaf bytes))
            open_leaves
        in
        if List.length decoded_open <> List.length open_leaves then None
        else begin
          List.iteri
            (fun i (_, l) ->
              Hashtbl.replace t.by_request l.Slicer_contract.rl_request (open_id t, i))
            decoded_open;
          t.open_rev <- List.rev decoded_open;
          if t.open_rev <> [] then t.opened_ns <- Obs.Clock.now_ns ();
          Obs.Gauge.add g_pending (List.length decoded_open);
          Some t
        end
      end)
    | _ -> None)
  | Some _ | None -> None
