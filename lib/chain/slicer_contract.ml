let log_src = Logs.Src.create "slicer.chain.contract" ~doc:"Slicer settlement contract"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Where the money and the gas go: every transaction submitted through
   the client-side helpers lands in these. Settlements additionally
   split by escrow outcome, the paper's fairness measure. *)
let c_gas = Obs.counter ~help:"gas across all submitted transactions" "slicer_chain_gas_total"

let h_settle_gas =
  Obs.histogram ~units:Obs.Histogram.Raw ~help:"gas per settlement transaction"
    "slicer_chain_settle_gas"

let c_paid = Obs.counter ~help:"settlements paid to the cloud" "slicer_chain_settle_paid_total"

let c_refunded =
  Obs.counter ~help:"settlements refunded to the user" "slicer_chain_settle_refunded_total"

let observe_txn ~label (receipt : Vm.receipt) =
  Obs.Counter.add c_gas receipt.Vm.r_gas_used;
  Log.debug (fun m ->
      m "%s: gas %d, %s" label receipt.Vm.r_gas_used
        (match receipt.Vm.r_output with Ok _ -> "ok" | Error e -> "reverted: " ^ e));
  receipt

let observe_settlement (receipt : Vm.receipt) =
  Obs.Histogram.record h_settle_gas receipt.Vm.r_gas_used;
  (match receipt.Vm.r_output with
   | Ok [ "paid" ] -> Obs.Counter.incr c_paid
   | Ok [ "refunded" ] -> Obs.Counter.incr c_refunded
   | Ok _ | Error _ -> ());
  receipt

type claim = { token_bytes : string; results : string list; witness : Bigint.t }

let encode_claim c =
  Bytesutil.concat [ c.token_bytes; Bytesutil.concat c.results; Bigint.to_bytes_be c.witness ]

let encode_claims cs = Bytesutil.concat (List.map encode_claim cs)

let decode_claim s =
  match Bytesutil.split s with
  | Some [ token_bytes; results_blob; witness_bytes ] ->
    (match Bytesutil.split results_blob with
     | Some results -> Some { token_bytes; results; witness = Bigint.of_bytes_be witness_bytes }
     | None -> None)
  | Some _ | None -> None

let decode_claims s =
  match Bytesutil.split s with
  | None -> None
  | Some pieces ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> ( match decode_claim p with Some c -> go (c :: acc) rest | None -> None )
    in
    go [] pieces

(* Pseudo-bytecode: hash-expanded filler standing in for the compiled
   Solidity artifact. 2800 bytes is a typical size for a verification
   contract of this shape; deployment gas is dominated by this constant
   (see EXPERIMENTS.md, Table II discussion). *)
let code_size = 2_800

let pseudo_code =
  let buf = Buffer.create code_size in
  let rec fill seed =
    if Buffer.length buf < code_size then begin
      let d = Sha256.digest seed in
      Buffer.add_string buf d;
      fill d
    end
  in
  fill "slicer-contract-bytecode-v1";
  Buffer.sub buf 0 code_size

(* Storage layout. *)
let key_owner = "owner"
let key_modulus = "modulus"
let key_ac = "ac"
let key_shard_id = "shard_id"
let key_shard_count = "shard_count"
let key_window = "dispute_window"
let key_user id = "req:" ^ id ^ ":user"
let key_amount id = "req:" ^ id ^ ":amount"
let key_digest id = "req:" ^ id ^ ":digest"
let key_status id = "req:" ^ id ^ ":status"
let key_deposit who = "deposit:" ^ who

(* Batched-settlement cells: one commitment record per batch. Requests
   are stored as one concatenated blob (a single cell), not one cell
   per member — the whole point of the batch is that per-receipt
   on-chain cost collapses to a status flip. *)
let bkey_status id = "batch:" ^ id ^ ":status"
let bkey_root id = "batch:" ^ id ^ ":root"
let bkey_height id = "batch:" ^ id ^ ":height"
let bkey_count id = "batch:" ^ id ^ ":count"
let bkey_requests id = "batch:" ^ id ^ ":requests"
let bkey_ac id = "batch:" ^ id ^ ":ac"
let bkey_cloud id = "batch:" ^ id ^ ":cloud"

(* One settled-search receipt, as committed under a batch's Merkle
   root. [rl_claim_hash] binds the exact claims blob the cloud served;
   [rl_witness_digest] additionally pins the verification objects so a
   dispute cannot substitute fresh witnesses for the committed ones. *)
type receipt_leaf = {
  rl_client : string;
  rl_request : string;
  rl_claim_hash : string;
  rl_witness_digest : string;
}

let encode_leaf l =
  Bytesutil.concat [ l.rl_client; l.rl_request; l.rl_claim_hash; l.rl_witness_digest ]

let decode_leaf s =
  match Bytesutil.split s with
  | Some [ rl_client; rl_request; rl_claim_hash; rl_witness_digest ] ->
    Some { rl_client; rl_request; rl_claim_hash; rl_witness_digest }
  | Some _ | None -> None

let witness_digest ~claims ~batch_witness =
  match batch_witness with
  | Some w -> Sha256.digest (Bytesutil.concat [ "batch-vo"; Bigint.to_bytes_be w ])
  | None ->
    Sha256.digest
      (Bytesutil.concat ("per-claim-vo" :: List.map (fun c -> Bigint.to_bytes_be c.witness) claims))

let ( let* ) = Result.bind

(* Algorithm 5, one claim: h <- H(er); x <- H_prime(token ‖ h);
   VerifyMem(x, vo). All arithmetic is charged to the meter as the
   corresponding EVM precompile / opcode costs. *)
(* Verdicts are memoized per (params, Ac, claim): a node re-executing
   the same settlement serves the result from its cache, exactly like a
   production client re-validating a seen transaction. Gas is what a
   fresh node would burn — the memo stores the original charge sequence
   and replays it, so receipts are byte-identical either way. *)
let verify_memo_limit = 65_536
let verify_memo : (string, bool * (string * int) list) Hashtbl.t = Hashtbl.create 256

let verify_claim ctx ~params ~ac c =
  let meter = ctx.Vm.meter in
  let key =
    Sha256.digest
      (Bytesutil.concat
         [ "verify"; Bigint.to_bytes_be params.Rsa_acc.modulus; Bigint.to_bytes_be ac;
           c.token_bytes; Bigint.to_bytes_be c.witness; Bytesutil.concat c.results ])
  in
  match Hashtbl.find_opt verify_memo key with
  | Some (ok, charges) ->
    List.iter (fun (label, amount) -> Gasmeter.charge meter ~label amount) charges;
    ok
  | None ->
    let charges = ref [] in
    let charge ~label amount =
      charges := (label, amount) :: !charges;
      Gasmeter.charge meter ~label amount
    in
    List.iter
      (fun er -> charge ~label:"mset-hash" (Gas.hash (String.length er) + Gas.mulmod))
      c.results;
    let h = Mset_hash.of_list c.results in
    let preimage = Bytesutil.concat [ c.token_bytes; Mset_hash.to_bytes h ] in
    charge ~label:"h-prime" (Gas.h_prime ~input_len:(String.length preimage));
    let x = Prime_rep.to_prime preimage in
    let modulus = params.Rsa_acc.modulus in
    let mod_len = (Bigint.num_bits modulus + 7) / 8 in
    charge ~label:"modexp" (Gas.modexp ~base_len:mod_len ~exp:x ~mod_len);
    let ok = Rsa_acc.verify_mem params ~ac ~x ~witness:c.witness in
    if Hashtbl.length verify_memo < verify_memo_limit then
      Hashtbl.replace verify_memo key (ok, List.rev !charges);
    ok

let contract ~modulus ~generator ~initial_ac ~shard ~dispute_window =
  let constructor ctx _args =
    (* generator is part of the public parameters; persisted for
       completeness even though VerifyMem itself only needs n and Ac. *)
    Vm.sstore ctx key_owner ctx.Vm.sender;
    Vm.sstore ctx key_modulus (Bigint.to_bytes_be modulus);
    Vm.sstore ctx "generator" (Bigint.to_bytes_be generator);
    Vm.sstore ctx key_ac (Bigint.to_bytes_be initial_ac);
    (* Cluster identity: which slice of the keyword space this
       contract's Ac covers. A lone server deploys as (0, 1). Stored so
       an auditor (or a recovering shard) can check it is verifying
       against the accumulator it thinks it is. *)
    let shard_id, shard_count = shard in
    Vm.sstore ctx key_shard_id (string_of_int shard_id);
    Vm.sstore ctx key_shard_count (string_of_int shard_count);
    Vm.sstore ctx key_window (string_of_int (max 1 dispute_window));
    Ok []
  in
  let update_ac ctx args =
    match args with
    | [ new_ac ] ->
      let* () = Vm.require ctx (Vm.sload ctx key_owner = Some ctx.Vm.sender) "only owner" in
      Vm.sstore ctx key_ac new_ac;
      Vm.emit ctx (Bytesutil.concat [ "AcUpdated"; new_ac ]);
      Ok []
    | _ -> Error "updateAc: expected [new_ac]"
  in
  let request_search ctx args =
    match args with
    | [ request_id; tokens_blob ] ->
      let* () = Vm.require ctx (Vm.sload ctx (key_status request_id) = None) "duplicate request id" in
      let* () = Vm.require ctx (ctx.Vm.value > 0) "payment required" in
      Vm.sstore ctx (key_user request_id) ctx.Vm.sender;
      Vm.sstore ctx (key_amount request_id) (string_of_int ctx.Vm.value);
      Vm.sstore ctx (key_digest request_id) (Sha256.digest tokens_blob);
      Vm.sstore ctx (key_status request_id) "pending";
      (* Tokens travel to the cloud through the event log, not contract
         storage (storing large blobs on-chain is what the paper's
         related work gets criticised for). *)
      Vm.emit ctx (Bytesutil.concat [ "SearchRequested"; request_id; tokens_blob ]);
      Ok []
    | _ -> Error "requestSearch: expected [request_id; tokens]"
  in
  (* Shared prelude of both settlement paths: load the escrowed request
     and check the cloud answered exactly the requested token sequence. *)
  let load_request ctx request_id claims_blob =
    let* () = Vm.require ctx (Vm.sload ctx (key_status request_id) = Some "pending") "no pending request" in
    let* user = Option.to_result ~none:"missing user" (Vm.sload ctx (key_user request_id)) in
    let* amount_s = Option.to_result ~none:"missing amount" (Vm.sload ctx (key_amount request_id)) in
    let amount = int_of_string amount_s in
    let* digest = Option.to_result ~none:"missing digest" (Vm.sload ctx (key_digest request_id)) in
    let* claims = Option.to_result ~none:"malformed claims" (decode_claims claims_blob) in
    let tokens_blob = Bytesutil.concat (List.map (fun c -> c.token_bytes) claims) in
    Gasmeter.charge ctx.Vm.meter ~label:"hash" (Gas.hash (String.length tokens_blob));
    let* () = Vm.require ctx (Bytesutil.const_equal (Sha256.digest tokens_blob) digest) "token set mismatch" in
    let* modulus_b = Option.to_result ~none:"missing modulus" (Vm.sload ctx key_modulus) in
    let* ac_b = Option.to_result ~none:"missing ac" (Vm.sload ctx key_ac) in
    Ok (user, amount, claims, Bigint.of_bytes_be modulus_b, Bigint.of_bytes_be ac_b)
  in
  let settle ctx request_id ~user ~amount ~ok =
    if ok then begin
      let* () = Vm.send ctx ~to_:ctx.Vm.sender amount in
      Vm.sstore ctx (key_status request_id) "paid";
      Vm.emit ctx (Bytesutil.concat [ "ResultAccepted"; request_id ]);
      Ok [ "paid" ]
    end
    else begin
      let* () = Vm.send ctx ~to_:user amount in
      Vm.sstore ctx (key_status request_id) "refunded";
      Vm.emit ctx (Bytesutil.concat [ "ResultRejected"; request_id ]);
      Ok [ "refunded" ]
    end
  in
  let submit_result ctx args =
    match args with
    | [ request_id; claims_blob ] ->
      let* user, amount, claims, modulus, ac = load_request ctx request_id claims_blob in
      let params = { Rsa_acc.modulus; generator } in
      let ok = List.for_all (verify_claim ctx ~params ~ac) claims in
      settle ctx request_id ~user ~amount ~ok
    | _ -> Error "submitResult: expected [request_id; claims]"
  in
  let submit_result_batched ctx args =
    match args with
    | [ request_id; claims_blob; witness_bytes ] ->
      let* user, amount, claims, modulus, ac = load_request ctx request_id claims_blob in
      (* One witness covers every claim: lift it through each claim's
         prime representative and compare against Ac. *)
      let params = { Rsa_acc.modulus; generator } in
      let meter = ctx.Vm.meter in
      let mod_len = (Bigint.num_bits modulus + 7) / 8 in
      let xs =
        List.map
          (fun c ->
            List.iter
              (fun er -> Gasmeter.charge meter ~label:"mset-hash" (Gas.hash (String.length er) + Gas.mulmod))
              c.results;
            let h = Mset_hash.of_list c.results in
            let preimage = Bytesutil.concat [ c.token_bytes; Mset_hash.to_bytes h ] in
            Gasmeter.charge meter ~label:"h-prime" (Gas.h_prime ~input_len:(String.length preimage));
            Prime_rep.to_prime preimage)
          claims
      in
      List.iter
        (fun x ->
          Gasmeter.charge meter ~label:"modexp" (Gas.modexp ~base_len:mod_len ~exp:x ~mod_len))
        xs;
      let ok = Rsa_acc.verify_mem_batch params ~ac ~xs ~witness:(Bigint.of_bytes_be witness_bytes) in
      settle ctx request_id ~user ~amount ~ok
    | _ -> Error "submitResultBatched: expected [request_id; claims; witness]"
  in
  (* --- optimistic batched settlement ----------------------------------- *)
  let int_at ctx key = Option.bind (Vm.sload ctx key) int_of_string_opt in
  let deposit_of ctx who = Option.value ~default:0 (int_at ctx (key_deposit who)) in
  let window_of ctx = Option.value ~default:1 (int_at ctx key_window) in
  let deposit ctx args =
    match args with
    | [] ->
      let* () = Vm.require ctx (ctx.Vm.value > 0) "deposit: value required" in
      let total = deposit_of ctx ctx.Vm.sender + ctx.Vm.value in
      Vm.sstore ctx (key_deposit ctx.Vm.sender) (string_of_int total);
      Vm.emit ctx (Bytesutil.concat [ "DepositPosted"; ctx.Vm.sender; string_of_int total ]);
      Ok [ string_of_int total ]
    | _ -> Error "deposit: expected no arguments"
  in
  (* commitBatch: the cloud posts one Merkle root over a batch of
     settled-search receipt leaves. Escrows stay locked; each member
     request merely flips "pending" -> "batched" (a reset-priced
     sstore), which is what amortizes Table-II settlement gas by the
     batch size. Verification is deferred to [dispute]. *)
  let commit_batch ctx args =
    match args with
    | [ batch_id; root; requests_blob ] ->
      let* () = Vm.require ctx (batch_id <> "") "commitBatch: empty batch id" in
      let* () = Vm.require ctx (Vm.sload ctx (bkey_status batch_id) = None) "duplicate batch id" in
      let* () =
        Vm.require ctx (deposit_of ctx ctx.Vm.sender > 0) "commitBatch: deposit required"
      in
      let* requests =
        Option.to_result ~none:"commitBatch: malformed request list" (Bytesutil.split requests_blob)
      in
      let* () = Vm.require ctx (requests <> []) "commitBatch: empty batch" in
      let rec mark = function
        | [] -> Ok ()
        | id :: rest ->
          let* () =
            Vm.require ctx
              (Vm.sload ctx (key_status id) = Some "pending")
              "commitBatch: request not pending"
          in
          Vm.sstore ctx (key_status id) "batched";
          mark rest
      in
      let* () = mark requests in
      let* ac = Option.to_result ~none:"missing ac" (Vm.sload ctx key_ac) in
      Vm.sstore ctx (bkey_root batch_id) root;
      (* Snapshot Ac at commit time: later Inserts move [key_ac], and a
         dispute must re-verify against the value the claims settled
         under, not whatever is current when the dispute lands. *)
      Vm.sstore ctx (bkey_ac batch_id) ac;
      Vm.sstore ctx (bkey_count batch_id) (string_of_int (List.length requests));
      Vm.sstore ctx (bkey_height batch_id) (string_of_int ctx.Vm.height);
      Vm.sstore ctx (bkey_cloud batch_id) ctx.Vm.sender;
      Vm.sstore ctx (bkey_requests batch_id) requests_blob;
      Vm.sstore ctx (bkey_status batch_id) "committed";
      Vm.emit ctx (Bytesutil.concat [ "BatchCommitted"; batch_id; root ]);
      Ok [ "committed" ]
    | _ -> Error "commitBatch: expected [batch_id; root; requests]"
  in
  (* dispute: anyone re-runs Algorithm 5 for ONE leaf, on-chain, against
     the batch's committed Ac. The disputer supplies the leaf bytes, a
     Merkle inclusion proof, and the claims blob the cloud served (its
     hash is committed in the leaf, so nothing can be substituted). A
     leaf that fails verification slashes the cloud's whole deposit to
     the disputer and refunds every escrow in the batch. *)
  let dispute ctx args =
    match args with
    | [ batch_id; index_s; leaf_bytes; proof_bytes; claims_blob; batch_witness ] ->
      let* () =
        Vm.require ctx
          (Vm.sload ctx (bkey_status batch_id) = Some "committed")
          "dispute: batch not committed"
      in
      let* committed_h = Option.to_result ~none:"missing height" (int_at ctx (bkey_height batch_id)) in
      let* () =
        Vm.require ctx
          (ctx.Vm.height < committed_h + window_of ctx)
          "dispute: window closed"
      in
      let* root = Option.to_result ~none:"missing root" (Vm.sload ctx (bkey_root batch_id)) in
      let* count = Option.to_result ~none:"missing count" (int_at ctx (bkey_count batch_id)) in
      let* index = Option.to_result ~none:"dispute: bad index" (int_of_string_opt index_s) in
      let* () = Vm.require ctx (index >= 0 && index < count) "dispute: index out of range" in
      let* proof =
        Option.to_result ~none:"dispute: malformed proof" (Merkle.proof_of_bytes proof_bytes)
      in
      let* () = Vm.require ctx (proof.Merkle.index = index) "dispute: proof index mismatch" in
      Gasmeter.charge ctx.Vm.meter ~label:"merkle"
        ((List.length proof.Merkle.path + 1) * Gas.hash 65);
      let* () =
        Vm.require ctx (Merkle.verify ~root ~leaf:leaf_bytes proof) "dispute: inclusion proof rejected"
      in
      let* leaf = Option.to_result ~none:"dispute: malformed leaf" (decode_leaf leaf_bytes) in
      let* members =
        Option.to_result ~none:"missing requests"
          (Option.bind (Vm.sload ctx (bkey_requests batch_id)) Bytesutil.split)
      in
      let* () = Vm.require ctx (List.mem leaf.rl_request members) "dispute: leaf not in batch" in
      Gasmeter.charge ctx.Vm.meter ~label:"hash" (Gas.hash (String.length claims_blob));
      let* () =
        Vm.require ctx
          (Bytesutil.const_equal (Sha256.digest claims_blob) leaf.rl_claim_hash)
          "dispute: claims do not match committed hash"
      in
      let* claims = Option.to_result ~none:"malformed claims" (decode_claims claims_blob) in
      let bw = if batch_witness = "" then None else Some (Bigint.of_bytes_be batch_witness) in
      Gasmeter.charge ctx.Vm.meter ~label:"hash" (Gas.hash 64);
      let* () =
        Vm.require ctx
          (Bytesutil.const_equal (witness_digest ~claims ~batch_witness:bw) leaf.rl_witness_digest)
          "dispute: witnesses do not match committed digest"
      in
      (* The claims must answer the escrowed token set of the leaf's
         request — same binding as the eager settlement path. *)
      let* digest =
        Option.to_result ~none:"missing digest" (Vm.sload ctx (key_digest leaf.rl_request))
      in
      let tokens_blob = Bytesutil.concat (List.map (fun c -> c.token_bytes) claims) in
      Gasmeter.charge ctx.Vm.meter ~label:"hash" (Gas.hash (String.length tokens_blob));
      let* () =
        Vm.require ctx
          (Bytesutil.const_equal (Sha256.digest tokens_blob) digest)
          "dispute: token set mismatch"
      in
      let* modulus_b = Option.to_result ~none:"missing modulus" (Vm.sload ctx key_modulus) in
      let* ac_b = Option.to_result ~none:"missing batch ac" (Vm.sload ctx (bkey_ac batch_id)) in
      let params = { Rsa_acc.modulus = Bigint.of_bytes_be modulus_b; generator } in
      let ac = Bigint.of_bytes_be ac_b in
      let ok =
        match bw with
        | None -> List.for_all (verify_claim ctx ~params ~ac) claims
        | Some witness ->
          let meter = ctx.Vm.meter in
          let mod_len = (Bigint.num_bits params.Rsa_acc.modulus + 7) / 8 in
          let xs =
            List.map
              (fun c ->
                List.iter
                  (fun er ->
                    Gasmeter.charge meter ~label:"mset-hash"
                      (Gas.hash (String.length er) + Gas.mulmod))
                  c.results;
                let h = Mset_hash.of_list c.results in
                let preimage = Bytesutil.concat [ c.token_bytes; Mset_hash.to_bytes h ] in
                Gasmeter.charge meter ~label:"h-prime" (Gas.h_prime ~input_len:(String.length preimage));
                Prime_rep.to_prime preimage)
              claims
          in
          List.iter
            (fun x ->
              Gasmeter.charge meter ~label:"modexp" (Gas.modexp ~base_len:mod_len ~exp:x ~mod_len))
            xs;
          Rsa_acc.verify_mem_batch params ~ac ~xs ~witness
      in
      if ok then Error "dispute rejected: leaf verifies against Ac"
      else begin
        (* Proven-bad leaf: bounty the disputer with the cloud's whole
           deposit and refund every escrow in the batch. *)
        let* cloud = Option.to_result ~none:"missing cloud" (Vm.sload ctx (bkey_cloud batch_id)) in
        let bounty = deposit_of ctx cloud in
        Vm.sstore ctx (key_deposit cloud) "0";
        let* () = if bounty > 0 then Vm.send ctx ~to_:ctx.Vm.sender bounty else Ok () in
        let rec refund = function
          | [] -> Ok ()
          | id :: rest ->
            let* user = Option.to_result ~none:"missing user" (Vm.sload ctx (key_user id)) in
            let* amount = Option.to_result ~none:"missing amount" (int_at ctx (key_amount id)) in
            let* () = Vm.send ctx ~to_:user amount in
            Vm.sstore ctx (key_status id) "refunded";
            refund rest
        in
        let* () = refund members in
        Vm.sstore ctx (bkey_status batch_id) "slashed";
        Vm.emit ctx (Bytesutil.concat [ "BatchSlashed"; batch_id; leaf.rl_request ]);
        Ok [ "slashed" ]
      end
    | _ -> Error "dispute: expected [batch_id; index; leaf; proof; claims; batch_witness]"
  in
  (* finalize: after the dispute cutoff an undisputed batch settles
     wholesale — every member escrow pays out to the committing cloud. *)
  let finalize ctx args =
    match args with
    | [ batch_id ] ->
      let* () =
        Vm.require ctx
          (Vm.sload ctx (bkey_status batch_id) = Some "committed")
          "finalize: batch not committed"
      in
      let* committed_h = Option.to_result ~none:"missing height" (int_at ctx (bkey_height batch_id)) in
      let* () =
        Vm.require ctx
          (ctx.Vm.height >= committed_h + window_of ctx)
          "finalize: dispute window still open"
      in
      let* cloud = Option.to_result ~none:"missing cloud" (Vm.sload ctx (bkey_cloud batch_id)) in
      let* members =
        Option.to_result ~none:"missing requests"
          (Option.bind (Vm.sload ctx (bkey_requests batch_id)) Bytesutil.split)
      in
      let rec payout total = function
        | [] -> Ok total
        | id :: rest ->
          let* amount = Option.to_result ~none:"missing amount" (int_at ctx (key_amount id)) in
          let* () = Vm.send ctx ~to_:cloud amount in
          Vm.sstore ctx (key_status id) "paid";
          payout (total + amount) rest
      in
      let* total = payout 0 members in
      Vm.sstore ctx (bkey_status batch_id) "final";
      Vm.emit ctx (Bytesutil.concat [ "BatchFinalized"; batch_id; string_of_int total ]);
      Ok [ "finalized"; string_of_int total ]
    | _ -> Error "finalize: expected [batch_id]"
  in
  { Vm.cd_name = "slicer-verifier";
    cd_code = pseudo_code;
    cd_methods =
      [ ("constructor", constructor);
        ("updateAc", update_ac);
        ("requestSearch", request_search);
        ("submitResult", submit_result);
        ("submitResultBatched", submit_result_batched);
        ("deposit", deposit);
        ("commitBatch", commit_batch);
        ("dispute", dispute);
        ("finalize", finalize) ] }

(* --- client-side helpers ---------------------------------------------- *)

let restore ledger ~contract:addr ~modulus ~generator =
  (* Recovery: put the contract definition back at its snapshotted
     address without executing anything. The constructor closure never
     runs — the restored storage already holds its effects — so the
     [initial_ac] baked into it is irrelevant; the live [Ac] is the
     [key_ac] storage cell. *)
  let def = contract ~modulus ~generator ~initial_ac:Bigint.one ~shard:(0, 1) ~dispute_window:1 in
  Vm.install_contract (Ledger.state ledger) addr def

let deploy ?(shard = (0, 1)) ?(dispute_window = 4) ledger ~owner ~modulus ~generator ~initial_ac =
  let def = contract ~modulus ~generator ~initial_ac ~shard ~dispute_window in
  let txn = Vm.make_deploy (Ledger.state ledger) ~sender:owner def [] in
  let receipt = observe_txn ~label:"deploy" (Ledger.submit_and_seal ledger txn) in
  (txn.Vm.tx_to, receipt)

let update_ac ledger ~owner ~contract ac =
  let txn =
    Vm.make_call (Ledger.state ledger) ~sender:owner ~to_:contract "updateAc"
      [ Bigint.to_bytes_be ac ]
  in
  observe_txn ~label:"updateAc" (Ledger.submit_and_seal ledger txn)

let request_search ledger ~user ~contract ~request_id ~tokens ~payment =
  let txn =
    Vm.make_call (Ledger.state ledger) ~sender:user ~to_:contract ~value:payment "requestSearch"
      [ request_id; Bytesutil.concat tokens ]
  in
  observe_txn ~label:"requestSearch" (Ledger.submit_and_seal ledger txn)

let submit_result ledger ~cloud ~contract ~request_id claims =
  let txn =
    Vm.make_call (Ledger.state ledger) ~sender:cloud ~to_:contract "submitResult"
      [ request_id; encode_claims claims ]
  in
  observe_settlement (observe_txn ~label:"submitResult" (Ledger.submit_and_seal ledger txn))

let submit_result_batched ledger ~cloud ~contract ~request_id claims ~witness =
  let txn =
    Vm.make_call (Ledger.state ledger) ~sender:cloud ~to_:contract "submitResultBatched"
      [ request_id; encode_claims claims; Bigint.to_bytes_be witness ]
  in
  observe_settlement
    (observe_txn ~label:"submitResultBatched" (Ledger.submit_and_seal ledger txn))

let storage_get ledger ~contract key =
  (* Read-only view (no gas): inspecting state through a local node. *)
  let state = Ledger.state ledger in
  match Vm.contract_at state contract with
  | None -> None
  | Some _ ->
    let ctx =
      { Vm.state; meter = Gasmeter.create (); sender = contract; self = contract; value = 0;
        height = 0 }
    in
    Vm.sload ctx key

let request_status ledger ~contract ~request_id = storage_get ledger ~contract (key_status request_id)

let stored_ac ledger ~contract =
  Option.map Bigint.of_bytes_be (storage_get ledger ~contract key_ac)

let stored_shard ledger ~contract =
  match
    ( Option.bind (storage_get ledger ~contract key_shard_id) int_of_string_opt,
      Option.bind (storage_get ledger ~contract key_shard_count) int_of_string_opt )
  with
  | Some i, Some n -> Some (i, n)
  | _ -> None

(* Tokens travel to the cloud through the event log, and an off-chain
   indexer recovers them — but a real indexer tails the chain rather
   than replaying it per lookup. Each ledger gets an incremental index
   of SearchRequested events that only absorbs blocks sealed since its
   previous call, so a lookup costs amortized O(new blocks) instead of
   O(chain length). When the bounded table fills, the index resets and
   rebuilds on the next lookup, so eviction can never turn a stored
   request into a miss. *)
type token_index = {
  mutable ti_height : int; (* highest block number absorbed so far *)
  ti_tokens : (string, string list) Hashtbl.t; (* request_id -> tokens *)
}

let token_index_limit = 65_536
let token_indexes : (int, token_index) Hashtbl.t = Hashtbl.create 4
let token_indexes_lock = Mutex.create ()

let token_index_for ledger =
  let uid = Ledger.uid ledger in
  match Hashtbl.find_opt token_indexes uid with
  | Some idx -> idx
  | None ->
    (* Indexes for dead ledgers linger; cap how many before restarting. *)
    if Hashtbl.length token_indexes >= 16 then Hashtbl.reset token_indexes;
    let idx = { ti_height = -1; ti_tokens = Hashtbl.create 256 } in
    Hashtbl.replace token_indexes uid idx;
    idx

let absorb_block idx (block : Block.t) =
  List.iter
    (fun (r : Vm.receipt) ->
      List.iter
        (fun ev ->
          match Bytesutil.split ev with
          | Some [ "SearchRequested"; id; blob ] -> (
            match Bytesutil.split blob with
            | Some tokens -> Hashtbl.replace idx.ti_tokens id tokens
            | None -> ())
          | Some _ | None -> ())
        r.Vm.r_events)
    block.Block.receipts;
  idx.ti_height <- block.Block.header.Block.number

(* --- batched-settlement client helpers --------------------------------- *)

let post_deposit ledger ~cloud ~contract ~amount =
  let txn =
    Vm.make_call (Ledger.state ledger) ~sender:cloud ~to_:contract ~value:amount "deposit" []
  in
  observe_txn ~label:"deposit" (Ledger.submit_and_seal ledger txn)

let commit_batch ledger ~cloud ~contract ~batch_id ~root ~requests =
  let txn =
    Vm.make_call (Ledger.state ledger) ~sender:cloud ~to_:contract "commitBatch"
      [ batch_id; root; Bytesutil.concat requests ]
  in
  observe_txn ~label:"commitBatch" (Ledger.submit_and_seal ledger txn)

let dispute_leaf ledger ~disputer ~contract ~batch_id ~index ~leaf ~proof ~claims_blob
    ~batch_witness =
  let bw = match batch_witness with None -> "" | Some w -> Bigint.to_bytes_be w in
  let txn =
    Vm.make_call (Ledger.state ledger) ~sender:disputer ~to_:contract "dispute"
      [ batch_id; string_of_int index; leaf; Merkle.proof_to_bytes proof; claims_blob; bw ]
  in
  observe_txn ~label:"dispute" (Ledger.submit_and_seal ledger txn)

let finalize_batch ledger ~cloud ~contract ~batch_id =
  let txn =
    Vm.make_call (Ledger.state ledger) ~sender:cloud ~to_:contract "finalize" [ batch_id ]
  in
  observe_txn ~label:"finalize" (Ledger.submit_and_seal ledger txn)

let batch_status ledger ~contract ~batch_id = storage_get ledger ~contract (bkey_status batch_id)

let stored_deposit ledger ~contract ~who =
  match storage_get ledger ~contract (key_deposit who) with
  | Some s -> Option.value ~default:0 (int_of_string_opt s)
  | None -> 0

let stored_dispute_window ledger ~contract =
  Option.bind (storage_get ledger ~contract key_window) int_of_string_opt

let stored_tokens ledger ~contract ~request_id =
  ignore contract;
  Mutex.lock token_indexes_lock;
  let idx = token_index_for ledger in
  if Hashtbl.length idx.ti_tokens >= token_index_limit || Ledger.height ledger < idx.ti_height
  then begin
    Hashtbl.reset idx.ti_tokens;
    idx.ti_height <- -1
  end;
  List.iter (absorb_block idx) (Ledger.blocks_above ledger ~height:idx.ti_height);
  let found = Hashtbl.find_opt idx.ti_tokens request_id in
  Mutex.unlock token_indexes_lock;
  found
