(** RSA accumulator (Li, Li & Xue, ACNS 2007 flavour) — the paper's ADS.

    The accumulation value of a set of primes [X] is
    [Ac = g^(Π_{x∈X} x) mod n]; the membership witness for [x] is
    [mw = g^(Π X \ {x}) mod n] and verification checks
    [mw^x = Ac (mod n)]. Witnesses are constant-size (one group
    element), which is what makes on-chain verification cheap.

    {2 Cost model}

    Let [n] be the set size, [b] the prime-representative bit width
    (272) and [B = n·b] the total exponent bits. All generation-side
    operations are batched: prime exponents are combined by a balanced
    {e product tree} (Karatsuba multiplication underneath) and the
    single resulting exponent is applied in one exponentiation. When the
    process-wide pool is parallel ([--domains N] > 1), it goes through
    the {e fixed-base} anchor chain of [g] ({!Bigint.Fixed_base}), whose
    chunked exponentiations fan out across the domains; sequentially it
    takes the sliding-window ladder directly (the anchor chain costs a
    full exponentiation to build, which only concurrency recoups). The
    value is identical on both paths.

    - {!accumulate}: one product tree + one [B]-bit fixed-base
      exponentiation — [B] modular squarings total, spread over the
      pool, instead of [n] separate [mod_pow] calls.
    - {!mem_witness}: one exact division of the cached-able product plus
      a [(B - b)]-bit fixed-base exponentiation — {e not} [n-1]
      exponentiations. Via {!context} the product is computed once and
      shared across every witness for the same set.
    - {!all_witnesses}: root splitting over the product tree —
      [O(B log n)] squaring work, with the two halves of every split
      running on separate domains.
    - Verification ({!verify_mem}, {!verify_mem_batch},
      {!verify_non_mem}) is untouched: the contract-side shape and cost
      are part of the protocol being reproduced.

    Results are bit-identical at every pool size: batching only
    regroups exponent arithmetic ([g^x^y = g^(xy)]), and the pool's
    combinators fix their bracketing from the input size alone. *)

type params = {
  modulus : Bigint.t;   (** RSA modulus [n = p*q]; factors are discarded. *)
  generator : Bigint.t; (** A quadratic residue [g ∈ QR_n \ {1}]. *)
}

val setup : ?safe:bool -> rng:Drbg.t -> bits:int -> unit -> params
(** Generates fresh parameters; the factorisation (the trapdoor) is
    dropped, making the accumulator trustless for the cloud. [~safe]
    requests safe primes as in the paper (slower). *)

val default_params : unit -> params
(** Fixed 1024-bit parameters generated once per process by {!setup}
    with a public seed ("nothing up my sleeve"), for benches and the
    contract demo where per-run setup time is noise. *)

val accumulate : params -> Bigint.t list -> Bigint.t
(** [Ac] for the given prime list (order-independent). The empty list
    accumulates to [g]. *)

val add : params -> Bigint.t -> Bigint.t -> Bigint.t
(** [add params ac x] is the incremental update [ac^x mod n] — used by
    Insert so the owner need not re-accumulate from scratch. *)

val add_batch : params -> Bigint.t -> Bigint.t list -> Bigint.t
(** [add_batch params ac xs] folds a whole shipment in as {e one}
    exponentiation [ac^(Π xs) mod n] — identical to iterating {!add}
    ([g^x^y = g^(xy)]), minus [|xs| - 1] Montgomery setups and ladders. *)

val mem_witness : params -> Bigint.t list -> Bigint.t -> Bigint.t
(** [mem_witness params xs x] is the witness for [x] against
    [accumulate params xs]. [x] must occur in [xs]; exactly one
    occurrence is excluded (computed as the exact division [Π xs / x] of
    the product tree followed by one fixed-base exponentiation — see the
    cost model above). For a set queried repeatedly, build a {!context}
    once instead.
    @raise Invalid_argument when [x] does not occur. *)

val all_witnesses : params -> Bigint.t list -> (Bigint.t * Bigint.t) list
(** Witnesses for every element by divide-and-conquer root splitting
    over the product tree — [O(B log n)] squarings ([B] = total exponent
    bits) with one exponentiation per tree node instead of one per
    prime per node, and the two halves of every split on separate
    domains. Returns [(x, witness)] pairs in input order. *)

val verify_mem : params -> ac:Bigint.t -> x:Bigint.t -> witness:Bigint.t -> bool
(** The contract-side check [witness^x mod n = ac]. *)

(** {1 Batched membership}

    A single witness can cover a whole set of member primes:
    [w = g^(Π X \ S)] verifies via [w^(Π S) = Ac]. The cloud uses this
    to answer an order search (up to [b] claims) with {e one}
    accumulator pass and one 64-byte object instead of [b]. *)

val batch_witness : params -> Bigint.t list -> Bigint.t list -> Bigint.t
(** [batch_witness params xs subset] excludes one occurrence of each
    subset element. @raise Invalid_argument when some element does not
    occur. *)

val verify_mem_batch : params -> ac:Bigint.t -> xs:Bigint.t list -> witness:Bigint.t -> bool
(** [witness^(Π xs) = Ac], computed as iterated exponentiation (the
    same shape the metered contract charges). The empty list verifies
    iff [witness = ac]. *)

(** {1 Shared-product context}

    The cloud answers many queries against one prime set: a [ctx]
    computes the product tree once, after which each witness is an
    exact division plus one exponentiation. This is what turns
    per-query VO generation from [O(n)] exponentiations into
    effectively one. Each ctx exponentiation goes through the shared
    fixed-base anchor chain: extension (batched Montgomery squarings)
    costs barely more than one plain ladder even when cold, and every
    later witness over the same parameters drops to ~[bits/8]
    multiplies. Values are identical on every path. Invalidate
    (rebuild) the context whenever the prime set changes. Elements are assumed to be
    {!Prime_rep} primes, for which divisibility of the product is
    exactly multiset membership. *)

type ctx

val context : params -> Bigint.t list -> ctx
(** Builds the shared product ([O(M(B) log n)] bigint work, no
    exponentiations). *)

val ctx_extend : ctx -> Bigint.t list -> ctx
(** [ctx_extend c xs] is the context for the multiset extended by [xs]:
    one product-tree multiply, no exponentiations — so Insert extends a
    long-lived context instead of forcing a from-scratch rebuild on the
    next query. Equivalent to [context params (old_set @ xs)]. *)

val pow_mod : params -> Bigint.t -> Bigint.t -> Bigint.t
(** [pow_mod params b e = Bigint.mod_pow b e params.modulus], routed
    through a process-wide per-modulus {!Bigint.Mont} context so
    repeated exponentiations stop re-deriving Montgomery state. Safe
    across domains; values are identical to [mod_pow]. *)

val g_pow_cached : params -> Bigint.t -> Bigint.t
(** [g^e mod n] through the process-wide fixed-base anchor chain of the
    generator (always invests in the chain — see the cost model above).
    This is the exponentiation reuse-heavy callers ({!ctx_witness},
    {!all_witnesses}, the witness index) sit on. *)

val ctx_params : ctx -> params
val ctx_count : ctx -> int

val ctx_ac : ctx -> Bigint.t
(** [accumulate] of the context's set. *)

val ctx_witness : ctx -> Bigint.t -> Bigint.t
(** As {!mem_witness} against the context's set.
    @raise Invalid_argument when the element does not divide the
    product (i.e. is not a member). *)

val ctx_batch_witness : ctx -> Bigint.t list -> Bigint.t
(** As {!batch_witness} against the context's set.
    @raise Invalid_argument when some element does not occur (with its
    multiplicity). *)

(** {1 Non-membership (universal accumulator)}

    The Li-Li-Xue construction the paper builds on is {e universal}:
    for a prime [x] outside the set, Bézout coefficients of
    [(x, Π X)] yield a constant-size proof of absence. *)

type non_mem_witness = { nw_a : Bigint.t; nw_d : Bigint.t }

val non_mem_witness : params -> Bigint.t list -> Bigint.t -> non_mem_witness
(** @raise Invalid_argument when [x] divides the set product (i.e. is a
    member). *)

val verify_non_mem : params -> ac:Bigint.t -> x:Bigint.t -> witness:non_mem_witness -> bool
(** Checks [ac^a = g * d^x (mod n)]. *)
