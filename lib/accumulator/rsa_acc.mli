(** RSA accumulator (Li, Li & Xue, ACNS 2007 flavour) — the paper's ADS.

    The accumulation value of a set of primes [X] is
    [Ac = g^(Π_{x∈X} x) mod n]; the membership witness for [x] is
    [mw = g^(Π X \ {x}) mod n] and verification checks
    [mw^x = Ac (mod n)]. Witnesses are constant-size (one group
    element), which is what makes on-chain verification cheap. *)

type params = {
  modulus : Bigint.t;   (** RSA modulus [n = p*q]; factors are discarded. *)
  generator : Bigint.t; (** A quadratic residue [g ∈ QR_n \ {1}]. *)
}

val setup : ?safe:bool -> rng:Drbg.t -> bits:int -> unit -> params
(** Generates fresh parameters; the factorisation (the trapdoor) is
    dropped, making the accumulator trustless for the cloud. [~safe]
    requests safe primes as in the paper (slower). *)

val default_params : unit -> params
(** Fixed 1024-bit parameters generated once per process by {!setup}
    with a public seed ("nothing up my sleeve"), for benches and the
    contract demo where per-run setup time is noise. *)

val accumulate : params -> Bigint.t list -> Bigint.t
(** [Ac] for the given prime list (order-independent). The empty list
    accumulates to [g]. *)

val add : params -> Bigint.t -> Bigint.t -> Bigint.t
(** [add params ac x] is the incremental update [ac^x mod n] — used by
    Insert so the owner need not re-accumulate from scratch. *)

val mem_witness : params -> Bigint.t list -> Bigint.t -> Bigint.t
(** [mem_witness params xs x] is the witness for [x] against
    [accumulate params xs]. [x] must occur in [xs]; exactly one
    occurrence is excluded.
    @raise Invalid_argument when [x] does not occur. *)

val all_witnesses : params -> Bigint.t list -> (Bigint.t * Bigint.t) list
(** Witnesses for every element by divide-and-conquer root splitting —
    [O(n log n)] exponentiations instead of the naive [O(n^2)]. Returns
    [(x, witness)] pairs in input order. *)

val verify_mem : params -> ac:Bigint.t -> x:Bigint.t -> witness:Bigint.t -> bool
(** The contract-side check [witness^x mod n = ac]. *)

(** {1 Batched membership}

    A single witness can cover a whole set of member primes:
    [w = g^(Π X \ S)] verifies via [w^(Π S) = Ac]. The cloud uses this
    to answer an order search (up to [b] claims) with {e one}
    accumulator pass and one 64-byte object instead of [b]. *)

val batch_witness : params -> Bigint.t list -> Bigint.t list -> Bigint.t
(** [batch_witness params xs subset] excludes one occurrence of each
    subset element. @raise Invalid_argument when some element does not
    occur. *)

val verify_mem_batch : params -> ac:Bigint.t -> xs:Bigint.t list -> witness:Bigint.t -> bool
(** [witness^(Π xs) = Ac], computed as iterated exponentiation (the
    same shape the metered contract charges). The empty list verifies
    iff [witness = ac]. *)

(** {1 Non-membership (universal accumulator)}

    The Li-Li-Xue construction the paper builds on is {e universal}:
    for a prime [x] outside the set, Bézout coefficients of
    [(x, Π X)] yield a constant-size proof of absence. *)

type non_mem_witness = { nw_a : Bigint.t; nw_d : Bigint.t }

val non_mem_witness : params -> Bigint.t list -> Bigint.t -> non_mem_witness
(** @raise Invalid_argument when [x] divides the set product (i.e. is a
    member). *)

val verify_non_mem : params -> ac:Bigint.t -> x:Bigint.t -> witness:non_mem_witness -> bool
(** Checks [ac^a = g * d^x (mod n)]. *)
