(** Persistent, incrementally maintained witness index.

    Keeps {!Rsa_acc}'s product/root-split tree alive across operations:
    a product segment tree over the accumulator's append-only prime
    multiset in which every node also carries a lazily maintained
    {e base} — the generator raised to the product of all leaves
    outside the node's range. A leaf's base is exactly its membership
    witness, so the per-query witness cost drops from one full-size
    exponentiation to a table lookup once a leaf is warm.

    Maintenance is generation-stamped: {!append} only recomputes the
    O(log n) product spine above the new leaves (bigint multiplies, no
    exponentiations), and a stale cached base is brought current by ONE
    exponentiation with the product of the leaves appended outside its
    range since its stamp. Cold bases are computed by a single descent
    step from their (recursively refreshed) parent.

    Every value served is identical — byte for byte — to what the
    from-scratch paths ({!Rsa_acc.ctx_witness},
    {!Rsa_acc.ctx_batch_witness}, {!Rsa_acc.all_witnesses}) compute, at
    every pool size. Operations are mutex-guarded; internal pool
    fan-out writes disjoint slots only. *)

type t

val create : Rsa_acc.params -> t

val params : t -> Rsa_acc.params

val leaf_count : t -> int
(** Number of accumulated primes (the tree's current generation). *)

val append : t -> Bigint.t list -> unit
(** Append a shipment's primes: O(log n) spine products recomputed (one
    multiply per level, wide levels pool-parallel), no witness work. *)

val witness : t -> Bigint.t -> Bigint.t option
(** Membership witness for a prime, or [None] when it was never
    appended. Warm: a lookup. Stale: one delta exponentiation.
    Cold: one root-split descent (the [ctx_witness] cost), after which
    the whole path stays warm. *)

val ac : t -> Bigint.t
(** The accumulation value of the maintained multiset (cached per
    generation). Empty tree: the generator. *)

val batch_witness : t -> Bigint.t list -> Bigint.t
(** Batched witness [g^(P / Π subset)] for distinct member primes,
    combined from the per-leaf witnesses by balanced Shamir pairing —
    exponent work independent of the multiset size. Duplicate subset
    elements fall back to the exact-division path over the maintained
    root product (multiset semantics preserved). The empty subset
    yields {!ac}.
    @raise Invalid_argument when some element is not a member (same
    contract as {!Rsa_acc.ctx_batch_witness}). *)

val warm_all : t -> unit
(** Compute every base in one pool-parallel root-splitting descent over
    the maintained products — the persistent-index analogue of
    {!Rsa_acc.all_witnesses}. *)

type stats = {
  ws_leaves : int;
  ws_cached : int;      (** leaves holding a cached witness (any stamp) *)
  ws_fresh : int;       (** leaves whose cached witness is current *)
  ws_hits : int;
  ws_refreshes : int;
  ws_cold : int;
  ws_misses : int;
}

val stats : t -> stats
(** Per-tree effectiveness counters; the process-wide aggregates are the
    [slicer_witness_index_*] {!Obs} series. *)

val size_bytes : t -> int
(** Approximate heap footprint of the maintained products and bases. *)

val export : t -> string
(** Compact serialized form: the leaf witnesses with their generation
    stamps (products rebuild from the prime multiset already carried by
    the service snapshot). *)

val absorb : t -> string -> int option
(** Graft an {!export} blob onto a tree rebuilt over the same leaf
    sequence: restored leaves serve witnesses again without any
    recomputation. Entries that do not fit the current tree are
    skipped; returns the number absorbed, or [None] when the blob is
    not a witness-tree export. *)
