type params = { modulus : Bigint.t; generator : Bigint.t }

let setup ?(safe = false) ~rng ~bits () =
  let m = Primegen.random_rsa_modulus ~safe ~rng ~bits () in
  (* Random quadratic residue != 1: square a random unit. *)
  let rec gen () =
    let a = Bigint.add Bigint.two (Drbg.uniform_bigint rng (Bigint.sub m.Primegen.n (Bigint.of_int 3))) in
    if not (Bigint.equal (Bigint.gcd a m.Primegen.n) Bigint.one) then gen ()
    else begin
      let g = Bigint.mod_mul a a m.Primegen.n in
      if Bigint.equal g Bigint.one then gen () else g
    end
  in
  { modulus = m.Primegen.n; generator = gen () }

let default_params =
  let memo =
    lazy (setup ~rng:(Drbg.create ~seed:"slicer-rsa-accumulator-public-params-v1") ~bits:1024 ())
  in
  fun () -> Lazy.force memo

(* --- the batched/parallel substrate ------------------------------------ *)

(* Every chunked exponentiation fans out on the process-wide pool;
   sequential (domains=1) is the default, so the fan-out degenerates to
   an in-order loop and results are identical either way. *)
let run_chunks thunks = Parallel.Pool.run_all (Parallel.pool ()) thunks

(* Π xs by a balanced product tree (Pool.reduce): with Karatsuba
   multiplication underneath this is O(M(B) log n) for B total exponent
   bits, versus O(B²/n) for the naive left fold. *)
let product xs = Parallel.Pool.reduce (Parallel.pool ()) Bigint.mul Bigint.one (Array.of_list xs)

(* Fixed-base anchor chains for (modulus, generator), shared process-wide
   so every accumulate/witness over the same public parameters reuses the
   same precomputed squarings. *)
let fixed_lock = Mutex.create ()
let fixed_cache : (string, Bigint.Fixed_base.powers) Hashtbl.t = Hashtbl.create 4

let fixed_of params =
  let key = Bigint.to_hex params.modulus ^ "|" ^ Bigint.to_hex params.generator in
  Mutex.lock fixed_lock;
  let fb =
    match Hashtbl.find_opt fixed_cache key with
    | Some fb -> fb
    | None ->
      let fb = Bigint.Fixed_base.create ~modulus:params.modulus params.generator in
      Hashtbl.replace fixed_cache key fb;
      fb
  in
  Mutex.unlock fixed_lock;
  fb

(* Per-modulus Montgomery contexts (limb inverse, R mod m, R² mod m),
   shared process-wide: every exponentiation with a varying base —
   incremental adds, witness-tree refreshes, contract-side verification
   — reuses one immutable context instead of re-deriving the state per
   call. Contexts are safe to share across domains. *)
let mont_lock = Mutex.create ()
let mont_cache : (string, Bigint.Mont.ctx) Hashtbl.t = Hashtbl.create 4

let mont_of params =
  let key = Bigint.to_hex params.modulus in
  Mutex.lock mont_lock;
  let mc =
    match Hashtbl.find_opt mont_cache key with
    | Some mc -> mc
    | None ->
      let mc = Bigint.Mont.create params.modulus in
      Hashtbl.replace mont_cache key mc;
      mc
  in
  Mutex.unlock mont_lock;
  mc

(* [b^e mod modulus] through the shared context; the even-modulus
   fallback keeps degenerate test parameters working. *)
let pow_mod params b e =
  if Bigint.is_even params.modulus then Bigint.mod_pow b e params.modulus
  else Bigint.Mont.pow (mont_of params) b e

(* The anchor chain costs one squaring per bit of coverage — a full
   direct exponentiation — so one-shot callers ([accumulate],
   [non_mem_witness]) only use it when it is already built or a parallel
   pool can recoup the investment; otherwise they take the plain
   sliding-window ladder. Reuse-heavy callers ([ctx_*], [all_witnesses])
   call [g_pow_cached], which always invests: every subsequent witness
   then costs ~bits/8 multiplies instead of [bits] squarings. The value
   is identical on every path. *)
let g_pow_cached params e = Bigint.Fixed_base.pow ~run:run_chunks (fixed_of params) e

let g_pow params e =
  let fb = fixed_of params in
  if Parallel.Pool.size (Parallel.pool ()) > 1 || Bigint.Fixed_base.ready fb e then
    Bigint.Fixed_base.pow ~run:run_chunks fb e
  else Bigint.mod_pow params.generator e params.modulus

(* --- accumulation ------------------------------------------------------ *)

let accumulate params xs =
  match xs with
  | [] -> params.generator
  | [ x ] -> Obs.span "acc.fold" (fun () -> Bigint.mod_pow params.generator x params.modulus)
  | _ -> Obs.span "acc.fold" (fun () -> g_pow params (product xs))

let add params ac x = pow_mod params ac x

let add_batch params ac xs =
  match xs with
  | [] -> ac
  | [ x ] -> Obs.span "acc.fold" (fun () -> add params ac x)
  | _ -> Obs.span "acc.fold" (fun () -> pow_mod params ac (product xs))

(* --- membership witnesses ---------------------------------------------- *)

let mem_witness params xs x =
  if not (List.exists (fun y -> Bigint.equal y x) xs) then
    invalid_arg "Rsa_acc.mem_witness: element not in set";
  (* One occurrence divides out of the product exactly. *)
  Obs.span "acc.witness" (fun () -> g_pow params (Bigint.div (product xs) x))

(* Product segment tree: each node carries Π of its range so the witness
   descent raises a node's base by the sibling product in one
   exponentiation (instead of one mod_pow per prime). *)
type ptree =
  | Pleaf of Bigint.t * int
  | Pnode of Bigint.t * ptree * ptree

let tree_product = function Pleaf (x, _) -> x | Pnode (p, _, _) -> p

let spawn_depth pool =
  let rec log2up n = if n <= 1 then 0 else 1 + log2up ((n + 1) / 2) in
  log2up (Parallel.Pool.size pool) + 2

let build_tree pool arr =
  let rec go lo hi depth =
    if hi - lo = 1 then Pleaf (arr.(lo), lo)
    else begin
      let mid = (lo + hi) / 2 in
      let l, r =
        if depth > 0 then
          Parallel.Pool.both pool (fun () -> go lo mid (depth - 1)) (fun () -> go mid hi (depth - 1))
        else (go lo mid 0, go mid hi 0)
      in
      Pnode (Bigint.mul (tree_product l) (tree_product r), l, r)
    end
  in
  go 0 (Array.length arr) (spawn_depth pool)

let all_witnesses params xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let pool = Parallel.pool () in
    let out = Array.make n Bigint.zero in
    (* Root splitting: witness(x) = g^(Π xs \ x). Each node's base is g
       raised to everything outside its range; descending multiplies in
       the sibling's product. The two halves are independent, so they
       run on separate domains down to the spawn cutoff. *)
    let rec descend base tree depth =
      match tree with
      | Pleaf (_, i) -> out.(i) <- base
      | Pnode (_, l, r) ->
        let bl () = pow_mod params base (tree_product r) in
        let br () = pow_mod params base (tree_product l) in
        if depth > 0 then
          ignore
            (Parallel.Pool.both pool
               (fun () -> descend (bl ()) l (depth - 1))
               (fun () -> descend (br ()) r (depth - 1)))
        else begin
          descend (bl ()) l 0;
          descend (br ()) r 0
        end
    in
    (match build_tree pool arr with
     | Pleaf (_, i) -> out.(i) <- params.generator
     | Pnode (_, l, r) ->
       (* The root's two bases come off the fixed-base chain of g, whose
          digit segments are themselves pool-parallel. *)
       let bl = g_pow_cached params (tree_product r) in
       let br = g_pow_cached params (tree_product l) in
       let depth = spawn_depth pool in
       ignore
         (Parallel.Pool.both pool
            (fun () -> descend bl l (depth - 1))
            (fun () -> descend br r (depth - 1))));
    Array.to_list (Array.mapi (fun i w -> (arr.(i), w)) out)
  end

(* Membership verification is a pure function of (modulus, witness,
   exponents, Ac); verifiers re-check the same claim every time a query
   repeats, so a bounded process-wide memo turns the steady state into
   a hash lookup. Misbehaviour cannot alias into a stale entry: any
   tampered witness, claim prime or accumulator value changes the key. *)
let verify_limit = 65_536
let verify_memo : (string, bool) Hashtbl.t = Hashtbl.create 1024
let verify_lock = Mutex.create ()

let c_verify_hits =
  Obs.counter ~help:"membership-verification memo hits" "slicer_acc_verify_cache_hits_total"

let c_verify_misses =
  Obs.counter ~help:"membership-verification memo misses" "slicer_acc_verify_cache_misses_total"

let verify_memoized params ~ac ~xs ~witness =
  let key =
    String.concat "|"
      (Bigint.to_hex params.modulus :: Bigint.to_hex witness :: Bigint.to_hex ac
      :: List.map Bigint.to_hex xs)
  in
  Mutex.lock verify_lock;
  let cached = Hashtbl.find_opt verify_memo key in
  Mutex.unlock verify_lock;
  match cached with
  | Some v ->
    Obs.Counter.incr c_verify_hits;
    v
  | None ->
    Obs.Counter.incr c_verify_misses;
    let lifted = List.fold_left (fun w x -> pow_mod params w x) witness xs in
    let v = Bigint.equal lifted ac in
    Mutex.lock verify_lock;
    if Hashtbl.length verify_memo < verify_limit then Hashtbl.replace verify_memo key v;
    Mutex.unlock verify_lock;
    v

let verify_mem params ~ac ~x ~witness = verify_memoized params ~ac ~xs:[ x ] ~witness

(* --- batched membership ------------------------------------------------ *)

let batch_witness params xs subset =
  (* Dividing one subset occurrence at a time out of Π xs mirrors the
     multiset semantics: a non-member (or an over-counted duplicate)
     leaves a non-zero remainder at its own step. *)
  let remaining =
    List.fold_left
      (fun p x ->
        let q, r = Bigint.divmod p x in
        if not (Bigint.is_zero r) then invalid_arg "Rsa_acc.batch_witness: element not in set";
        q)
      (product xs) subset
  in
  Obs.span "acc.witness" (fun () -> g_pow params remaining)

let verify_mem_batch params ~ac ~xs ~witness = verify_memoized params ~ac ~xs ~witness

(* --- shared-product context (the cloud's per-query hot path) ----------- *)

type ctx = { ctx_params : params; ctx_product : Bigint.t; ctx_count : int }

let context params xs =
  { ctx_params = params; ctx_product = product xs; ctx_count = List.length xs }

(* Appending to the accumulated multiset multiplies the shared product
   by the new primes' product — O(M(B)) bigint work, no exponentiation —
   so a long-lived ctx survives Insert instead of being rebuilt from
   scratch on the next query. *)
let ctx_extend c xs =
  match xs with
  | [] -> c
  | _ ->
    { c with
      ctx_product = Bigint.mul c.ctx_product (product xs);
      ctx_count = c.ctx_count + List.length xs }

(* A ctx is a repeat customer: more queries over the same set are
   coming, so it always invests in the fixed-base chain. Batched chain
   extension costs barely more than one ladder even cold, and every
   witness after it is ~bits/8 multiplies instead of [bits] squarings. *)
let ctx_pow c e = g_pow_cached c.ctx_params e

let ctx_params c = c.ctx_params
let ctx_count c = c.ctx_count

let ctx_ac c =
  if c.ctx_count = 0 then c.ctx_params.generator else ctx_pow c c.ctx_product

let ctx_witness c x =
  let q, r = Bigint.divmod c.ctx_product x in
  if not (Bigint.is_zero r) then invalid_arg "Rsa_acc.ctx_witness: element not in set";
  Obs.span "acc.witness" (fun () -> ctx_pow c q)

let ctx_batch_witness c subset =
  let remaining =
    List.fold_left
      (fun p x ->
        let q, r = Bigint.divmod p x in
        if not (Bigint.is_zero r) then invalid_arg "Rsa_acc.batch_witness: element not in set";
        q)
      c.ctx_product subset
  in
  Obs.span "acc.witness" (fun () -> ctx_pow c remaining)

(* --- non-membership (universal accumulator, LLX '07) ------------------- *)

type non_mem_witness = { nw_a : Bigint.t; nw_d : Bigint.t }

let non_mem_witness params xs x =
  let u = product xs in
  let g, a, b = Bigint.egcd u x in
  if not (Bigint.equal g Bigint.one) then
    invalid_arg "Rsa_acc.non_mem_witness: element is (a factor of) the set product";
  (* Shift the Bézout pair so the exponent on Ac is positive:
     a' = a + kx, b' = b - ku still satisfy a'u + b'x = 1, and for
     a' >= 1 we have b' <= 0, so d = g^(-b') needs no inversion. *)
  let k =
    if Bigint.sign a > 0 then Bigint.zero
    else Bigint.succ (Bigint.div (Bigint.neg a) x)
  in
  let a' = Bigint.add a (Bigint.mul k x) in
  let b' = Bigint.sub b (Bigint.mul k u) in
  assert (Bigint.sign a' > 0);
  { nw_a = a'; nw_d = g_pow params (Bigint.neg b') }

let verify_non_mem params ~ac ~x ~witness =
  (* Ac^a = g^(a'u) = g^(1 - b'x) = g * d^x. *)
  let lhs = pow_mod params ac witness.nw_a in
  let rhs =
    Bigint.mod_mul params.generator (pow_mod params witness.nw_d x) params.modulus
  in
  Bigint.equal lhs rhs
