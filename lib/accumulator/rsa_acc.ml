type params = { modulus : Bigint.t; generator : Bigint.t }

let setup ?(safe = false) ~rng ~bits () =
  let m = Primegen.random_rsa_modulus ~safe ~rng ~bits () in
  (* Random quadratic residue != 1: square a random unit. *)
  let rec gen () =
    let a = Bigint.add Bigint.two (Drbg.uniform_bigint rng (Bigint.sub m.Primegen.n (Bigint.of_int 3))) in
    if not (Bigint.equal (Bigint.gcd a m.Primegen.n) Bigint.one) then gen ()
    else begin
      let g = Bigint.mod_mul a a m.Primegen.n in
      if Bigint.equal g Bigint.one then gen () else g
    end
  in
  { modulus = m.Primegen.n; generator = gen () }

let default_params =
  let memo =
    lazy (setup ~rng:(Drbg.create ~seed:"slicer-rsa-accumulator-public-params-v1") ~bits:1024 ())
  in
  fun () -> Lazy.force memo

let accumulate params xs =
  List.fold_left (fun ac x -> Bigint.mod_pow ac x params.modulus) params.generator xs

let add params ac x = Bigint.mod_pow ac x params.modulus

let mem_witness params xs x =
  let rec drop_one seen = function
    | [] -> invalid_arg "Rsa_acc.mem_witness: element not in set"
    | y :: rest -> if Bigint.equal y x then List.rev_append seen rest else drop_one (y :: seen) rest
  in
  accumulate params (drop_one [] xs)

let all_witnesses params xs =
  (* Root splitting: witness(x in xs) = g^(Π xs \ x). Recursively raise
     the running base to the product of the *other* half's primes. *)
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let out = Array.make n Bigint.zero in
    let rec go base lo hi =
      if hi - lo = 1 then out.(lo) <- base
      else begin
        let mid = (lo + hi) / 2 in
        let raise_range b l h =
          let acc = ref b in
          for i = l to h - 1 do
            acc := Bigint.mod_pow !acc arr.(i) params.modulus
          done;
          !acc
        in
        go (raise_range base mid hi) lo mid;
        go (raise_range base lo mid) mid hi
      end
    in
    go params.generator 0 n;
    Array.to_list (Array.mapi (fun i w -> (arr.(i), w)) out)
  end

let verify_mem params ~ac ~x ~witness =
  Bigint.equal (Bigint.mod_pow witness x params.modulus) ac

(* --- batched membership ------------------------------------------------ *)

let batch_witness params xs subset =
  let remaining =
    List.fold_left
      (fun remaining x ->
        let rec drop_one seen = function
          | [] -> invalid_arg "Rsa_acc.batch_witness: element not in set"
          | y :: rest -> if Bigint.equal y x then List.rev_append seen rest else drop_one (y :: seen) rest
        in
        drop_one [] remaining)
      xs subset
  in
  accumulate params remaining

let verify_mem_batch params ~ac ~xs ~witness =
  let lifted = List.fold_left (fun w x -> Bigint.mod_pow w x params.modulus) witness xs in
  Bigint.equal lifted ac

(* --- non-membership (universal accumulator, LLX '07) ------------------- *)

type non_mem_witness = { nw_a : Bigint.t; nw_d : Bigint.t }

let non_mem_witness params xs x =
  let u = List.fold_left Bigint.mul Bigint.one xs in
  let g, a, b = Bigint.egcd u x in
  if not (Bigint.equal g Bigint.one) then
    invalid_arg "Rsa_acc.non_mem_witness: element is (a factor of) the set product";
  (* Shift the Bézout pair so the exponent on Ac is positive:
     a' = a + kx, b' = b - ku still satisfy a'u + b'x = 1, and for
     a' >= 1 we have b' <= 0, so d = g^(-b') needs no inversion. *)
  let k =
    if Bigint.sign a > 0 then Bigint.zero
    else Bigint.succ (Bigint.div (Bigint.neg a) x)
  in
  let a' = Bigint.add a (Bigint.mul k x) in
  let b' = Bigint.sub b (Bigint.mul k u) in
  assert (Bigint.sign a' > 0);
  { nw_a = a'; nw_d = Bigint.mod_pow params.generator (Bigint.neg b') params.modulus }

let verify_non_mem params ~ac ~x ~witness =
  (* Ac^a = g^(a'u) = g^(1 - b'x) = g * d^x. *)
  let lhs = Bigint.mod_pow ac witness.nw_a params.modulus in
  let rhs =
    Bigint.mod_mul params.generator
      (Bigint.mod_pow witness.nw_d x params.modulus)
      params.modulus
  in
  Bigint.equal lhs rhs
