(* Persistent, incrementally maintained witness index over the
   accumulator's prime multiset.

   The transient product/root-split tree [Rsa_acc.all_witnesses] builds
   per call is kept alive here instead: a heap-layout product segment
   tree over an append-only leaf array, where every node additionally
   carries a lazily maintained *base* — [g] raised to the product of all
   leaves OUTSIDE the node's range. A leaf's base is exactly its
   membership witness.

   Maintenance contract:
   - [append] writes the new leaves and recomputes the O(log n) spine of
     products above them (one bigint multiply per level). No witness is
     touched eagerly.
   - Every cached base carries a generation stamp: the leaf count at the
     time it was computed. Appends never remove leaves, so a base stamped
     at generation [gen] is refreshed to the current generation [count]
     by ONE exponentiation with the product of the appended leaves that
     fall outside the node's range — amortized lazy refresh instead of
     eager all-witness recompute.
   - A node with no cached base is computed cold by one descent step from
     its (recursively refreshed) parent: [parent_base ^ sibling_product],
     the same root-splitting identity [all_witnesses] uses — so a cold
     single witness costs the same O(B) squarings a from-scratch
     [ctx_witness] would, and everything after it is warm.

   Values are position-independent: a leaf's witness is
   [g^(Π multiset \ x)] no matter how the tree is shaped, so incremental
   maintenance, [warm_all], cold descents and the from-scratch rebuild
   all agree byte-for-byte, at every pool size (the pool's combinators
   fix their bracketing from input sizes alone, and every combination
   step is exact arithmetic).

   All public operations take the tree's mutex; internal helpers assume
   it is held. Pool fan-out inside [append]/[warm_all] writes disjoint
   array slots and never touches the lock, so it cannot deadlock. *)

let c_hits =
  Obs.counter ~help:"witness-index lookups served from a fresh cached base"
    "slicer_witness_index_hits_total"

let c_refreshes =
  Obs.counter ~help:"witness-index stale bases refreshed by one delta exponentiation"
    "slicer_witness_index_refreshes_total"

let c_cold =
  Obs.counter ~help:"witness-index bases computed cold (descent from parent)"
    "slicer_witness_index_cold_total"

let c_misses =
  Obs.counter ~help:"witness-index lookups for primes not in the index"
    "slicer_witness_index_misses_total"

let g_leaves = Obs.gauge ~help:"witness-index leaf count" "slicer_witness_index_leaves"

type t = {
  wt_params : Rsa_acc.params;
  lock : Mutex.t;
  mutable cap : int;                       (* leaf capacity, power of two *)
  mutable count : int;                     (* leaves in use = current generation *)
  (* Heap layout over [2*cap] slots, root at 1, leaf [p] at [cap + p].
     [prod.(i)] is the product of the leaves in node [i]'s range (one
     for empty slots); [base.(i)]/[bgen.(i)] the lazily maintained
     outside-product exponentiation and its generation stamp. *)
  mutable prod : Bigint.t array;
  mutable base : Bigint.t option array;
  mutable bgen : int array;
  (* Prime (big-endian bytes) -> first leaf position holding it. *)
  index : (string, int) Hashtbl.t;
  mutable cached_ac : (Bigint.t * int) option;
  (* Per-tree counters (the Obs counters aggregate across trees). *)
  mutable n_hits : int;
  mutable n_refreshes : int;
  mutable n_cold : int;
  mutable n_misses : int;
}

type stats = {
  ws_leaves : int;
  ws_cached : int;        (* leaves with a cached witness, any generation *)
  ws_fresh : int;         (* leaves whose cached witness is current *)
  ws_hits : int;
  ws_refreshes : int;
  ws_cold : int;
  ws_misses : int;
}

let create params =
  { wt_params = params;
    lock = Mutex.create ();
    cap = 1;
    count = 0;
    prod = Array.make 2 Bigint.one;
    base = Array.make 2 None;
    bgen = Array.make 2 0;
    index = Hashtbl.create 64;
    cached_ac = None;
    n_hits = 0;
    n_refreshes = 0;
    n_cold = 0;
    n_misses = 0 }

let params t = t.wt_params
let leaf_count t = t.count

let key x = Bigint.to_bytes_be x

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Range [lo, hi) of node [i] in the current layout. *)
let node_range t i =
  let rec level n = if n <= 1 then 0 else 1 + level (n lsr 1) in
  let lvl = level i in
  let span = t.cap lsr lvl in
  let lo = (i - (1 lsl lvl)) * span in
  (lo, lo + span)

(* Π leaves[a, b): balanced reduce over the leaf slots, bracketing fixed
   by the range length. *)
let leaf_product t a b =
  if b <= a then Bigint.one
  else
    Parallel.Pool.reduce (Parallel.pool ()) Bigint.mul Bigint.one
      (Array.init (b - a) (fun j -> t.prod.(t.cap + a + j)))

(* Recompute the product spine above the changed leaf range [lo, hi):
   level by level, each parent is one multiply of its children. Parents
   at one level are disjoint writes, so wide levels fan out on the pool;
   the computed values are schedule-independent. *)
let recompute_spine t lo hi =
  if hi > lo then begin
    let pool = Parallel.pool () in
    let rec up l h =
      if l > 1 then begin
        let pl = l lsr 1 and ph = ((h - 1) lsr 1) + 1 in
        let recompute p = t.prod.(p) <- Bigint.mul t.prod.(2 * p) t.prod.((2 * p) + 1) in
        if ph - pl >= 4 && Parallel.Pool.size pool > 1 then
          ignore
            (Parallel.Pool.map pool
               (fun p -> recompute p)
               (Array.init (ph - pl) (fun j -> pl + j)))
        else
          for p = pl to ph - 1 do
            recompute p
          done;
        up pl ph
      end
    in
    up (t.cap + lo) (t.cap + hi)
  end

(* Double the capacity until [need] leaves fit. Leaf values and leaf
   bases survive verbatim (a witness does not depend on tree shape);
   interior products are rebuilt, interior bases are dropped and
   recomputed lazily. *)
let grow t need =
  let rec cap_for c = if c >= need then c else cap_for (2 * c) in
  let ncap = cap_for (Stdlib.max 1 t.cap) in
  if ncap > t.cap then begin
    let nprod = Array.make (2 * ncap) Bigint.one in
    let nbase = Array.make (2 * ncap) None in
    let nbgen = Array.make (2 * ncap) 0 in
    for p = 0 to t.count - 1 do
      nprod.(ncap + p) <- t.prod.(t.cap + p);
      nbase.(ncap + p) <- t.base.(t.cap + p);
      nbgen.(ncap + p) <- t.bgen.(t.cap + p)
    done;
    t.cap <- ncap;
    t.prod <- nprod;
    t.base <- nbase;
    t.bgen <- nbgen;
    recompute_spine t 0 t.count
  end

let append_locked t xs =
  match xs with
  | [] -> ()
  | _ ->
    let n = List.length xs in
    grow t (t.count + n);
    List.iteri
      (fun j x ->
        let p = t.count + j in
        t.prod.(t.cap + p) <- x;
        let k = key x in
        if not (Hashtbl.mem t.index k) then Hashtbl.add t.index k p)
      xs;
    recompute_spine t t.count (t.count + n);
    t.count <- t.count + n;
    t.cached_ac <- None;
    Obs.Gauge.set g_leaves t.count

let append t xs = with_lock t (fun () -> Obs.span "acc.windex_append" (fun () -> append_locked t xs))

(* Fresh base for node [i]: [g] to the product of every current leaf
   outside [i]'s range. Refresh = one exponentiation by the product of
   the leaves appended outside the range since the stamp; cold = one
   descent step from the refreshed parent. *)
let rec fresh_base t i =
  if i = 1 then t.wt_params.Rsa_acc.generator
  else
    let lo, hi = node_range t i in
    match t.base.(i) with
    | Some b when t.bgen.(i) >= t.count ->
      t.n_hits <- t.n_hits + 1;
      Obs.Counter.incr c_hits;
      b
    | Some b ->
      let gen = t.bgen.(i) in
      (* Appends since [gen] land at positions [gen, count); those
         outside [lo, hi) split into a left part (only when the base
         predates the node's own range filling) and the tail. *)
      let left = leaf_product t gen (Stdlib.min lo t.count) in
      let right = leaf_product t (Stdlib.max gen hi) t.count in
      let delta = Bigint.mul left right in
      let b' =
        if Bigint.equal delta Bigint.one then b
        else begin
          t.n_refreshes <- t.n_refreshes + 1;
          Obs.Counter.incr c_refreshes;
          Rsa_acc.pow_mod t.wt_params b delta
        end
      in
      t.base.(i) <- Some b';
      t.bgen.(i) <- t.count;
      if Bigint.equal delta Bigint.one then begin
        t.n_hits <- t.n_hits + 1;
        Obs.Counter.incr c_hits
      end;
      b'
    | None ->
      t.n_cold <- t.n_cold + 1;
      Obs.Counter.incr c_cold;
      let sibling = t.prod.(i lxor 1) in
      let b =
        if i lsr 1 = 1 then
          (* Parent is the root (base [g]): the fixed-base anchor chain
             of [g] beats a plain ladder for this large exponent. *)
          if Bigint.equal sibling Bigint.one then t.wt_params.Rsa_acc.generator
          else Rsa_acc.g_pow_cached t.wt_params sibling
        else begin
          let pb = fresh_base t (i lsr 1) in
          if Bigint.equal sibling Bigint.one then pb
          else Rsa_acc.pow_mod t.wt_params pb sibling
        end
      in
      t.base.(i) <- Some b;
      t.bgen.(i) <- t.count;
      b

let witness_locked t x =
  match Hashtbl.find_opt t.index (key x) with
  | None ->
    t.n_misses <- t.n_misses + 1;
    Obs.Counter.incr c_misses;
    None
  | Some p -> Some (Obs.span "acc.witness" (fun () -> fresh_base t (t.cap + p)))

let witness t x = with_lock t (fun () -> witness_locked t x)

let ac_locked t =
  if t.count = 0 then t.wt_params.Rsa_acc.generator
  else
    match t.cached_ac with
    | Some (v, gen) when gen = t.count -> v
    | _ ->
      let v = Rsa_acc.g_pow_cached t.wt_params t.prod.(1) in
      t.cached_ac <- Some (v, t.count);
      v

let ac t = with_lock t (fun () -> ac_locked t)

(* --- batched witnesses -------------------------------------------------- *)

exception Fallback

(* Shamir's trick (Boneh–Bünz–Fisch): from [wa = g^(P/pa)] and
   [wb = g^(P/pb)] with coprime [pa], [pb] and Bézout
   [u'·pa + v'·pb = 1], the combined witness is
   [wb^u' · wa^v' = g^(P/(pa·pb))] — exponents bounded by the sibling
   products, independent of the accumulated multiset size. [u'] is
   normalized into [0, pb); the matching [v'] is exact and may be
   negative, in which case [wa] is inverted modulo [n] first. *)
let shamir params (wa, pa) (wb, pb) =
  let g, u, _ = Bigint.egcd pa pb in
  if not (Bigint.equal g Bigint.one) then raise Fallback;
  let u' = Bigint.erem u pb in
  let v' = Bigint.div (Bigint.sub Bigint.one (Bigint.mul u' pa)) pb in
  let m = params.Rsa_acc.modulus in
  let part_b = Rsa_acc.pow_mod params wb u' in
  let part_a =
    if Bigint.sign v' >= 0 then Rsa_acc.pow_mod params wa v'
    else
      match Bigint.mod_inv wa m with
      | Some inv -> Rsa_acc.pow_mod params inv (Bigint.neg v')
      | None -> raise Fallback
  in
  (Bigint.mod_mul part_a part_b m, Bigint.mul pa pb)

let batch_witness_locked t subset =
  match subset with
  | [] -> ac_locked t
  | _ ->
    let resolved =
      List.map
        (fun x ->
          match Hashtbl.find_opt t.index (key x) with
          | Some p -> (x, p)
          | None ->
            t.n_misses <- t.n_misses + 1;
            Obs.Counter.incr c_misses;
            invalid_arg "Rsa_acc.batch_witness: element not in set")
        subset
    in
    (* The exact-division path over the maintained root product: handles
       duplicate subset elements (multiset semantics) and any combine
       bail-out, at the cost of one full-size exponentiation. *)
    let division_fallback () =
      let remaining =
        List.fold_left
          (fun p x ->
            let q, r = Bigint.divmod p x in
            if not (Bigint.is_zero r) then
              invalid_arg "Rsa_acc.batch_witness: element not in set";
            q)
          t.prod.(1) subset
      in
      Rsa_acc.g_pow_cached t.wt_params remaining
    in
    let seen = Hashtbl.create (List.length resolved) in
    let distinct =
      List.for_all
        (fun (_, p) ->
          if Hashtbl.mem seen p then false
          else begin
            Hashtbl.add seen p ();
            true
          end)
        resolved
    in
    if not distinct then Obs.span "acc.witness" division_fallback
    else begin
      (* Distinct member primes: every pairwise product is coprime, so
         the balanced Shamir combine applies. Each combine's exponents
         are bounded by the side products — O(k log k) prime-size bits
         of exponentiation in total, independent of the multiset size. *)
      let leaves =
        Array.of_list
          (List.map (fun (x, p) -> (fresh_base t (t.cap + p), x)) resolved)
      in
      Obs.span "acc.witness" (fun () ->
          match
            Parallel.Pool.reduce (Parallel.pool ()) (shamir t.wt_params)
              (t.wt_params.Rsa_acc.generator, Bigint.one)
              leaves
          with
          | w, _ -> w
          | exception Fallback -> division_fallback ())
    end

let batch_witness t subset = with_lock t (fun () -> batch_witness_locked t subset)

(* --- bulk warm-up ------------------------------------------------------- *)

(* Compute every base in one pool-parallel root-splitting descent over
   the maintained products — the persistent-index version of
   [Rsa_acc.all_witnesses]. Subtrees are disjoint writes; the shape is
   fixed by the leaf count, so results are identical at every pool
   size. *)
let warm_all t =
  with_lock t (fun () ->
      if t.count > 0 then begin
        let pool = Parallel.pool () in
        let spawn_depth =
          let rec log2up n = if n <= 1 then 0 else 1 + log2up ((n + 1) / 2) in
          log2up (Parallel.Pool.size pool) + 2
        in
        let gen = t.count in
        let set i b =
          if t.base.(i) = None then begin
            t.n_cold <- t.n_cold + 1;
            Obs.Counter.incr c_cold
          end;
          t.base.(i) <- Some b;
          t.bgen.(i) <- gen
        in
        let rec descend i b depth =
          set i b;
          if i < t.cap then begin
            let l = 2 * i and r = (2 * i) + 1 in
            let llo, _ = node_range t l in
            let rlo, _ = node_range t r in
            let bl () =
              if Bigint.equal t.prod.(r) Bigint.one then b
              else Rsa_acc.pow_mod t.wt_params b t.prod.(r)
            in
            let br () =
              if Bigint.equal t.prod.(l) Bigint.one then b
              else Rsa_acc.pow_mod t.wt_params b t.prod.(l)
            in
            let go_l () = if llo < t.count then descend l (bl ()) (depth - 1) in
            let go_r () = if rlo < t.count then descend r (br ()) (depth - 1) in
            if depth > 0 then ignore (Parallel.Pool.both pool go_l go_r)
            else begin
              go_l ();
              go_r ()
            end
          end
        in
        (* The root's children come off the fixed-base chain of [g]. *)
        set 1 t.wt_params.Rsa_acc.generator;
        if t.cap = 1 then ()
        else begin
          let bl () =
            if Bigint.equal t.prod.(3) Bigint.one then t.wt_params.Rsa_acc.generator
            else Rsa_acc.g_pow_cached t.wt_params t.prod.(3)
          in
          let br () =
            if Bigint.equal t.prod.(2) Bigint.one then t.wt_params.Rsa_acc.generator
            else Rsa_acc.g_pow_cached t.wt_params t.prod.(2)
          in
          let llo, _ = node_range t 2 in
          let rlo, _ = node_range t 3 in
          ignore
            (Parallel.Pool.both pool
               (fun () -> if llo < t.count then descend 2 (bl ()) (spawn_depth - 1))
               (fun () -> if rlo < t.count then descend 3 (br ()) (spawn_depth - 1)))
        end
      end)

(* --- introspection ------------------------------------------------------ *)

let stats t =
  with_lock t (fun () ->
      let cached = ref 0 and fresh = ref 0 in
      for p = 0 to t.count - 1 do
        match t.base.(t.cap + p) with
        | Some _ ->
          incr cached;
          if t.bgen.(t.cap + p) >= t.count then incr fresh
        | None -> ()
      done;
      { ws_leaves = t.count;
        ws_cached = !cached;
        ws_fresh = !fresh;
        ws_hits = t.n_hits;
        ws_refreshes = t.n_refreshes;
        ws_cold = t.n_cold;
        ws_misses = t.n_misses })

let size_bytes t =
  with_lock t (fun () ->
      let big b = ((Bigint.num_bits b + 7) / 8) + 16 in
      let total = ref 0 in
      for i = 1 to (2 * t.cap) - 1 do
        if not (Bigint.equal t.prod.(i) Bigint.one) then total := !total + big t.prod.(i);
        match t.base.(i) with Some b -> total := !total + big b | None -> ()
      done;
      !total + (16 * 2 * t.cap))

(* --- snapshot codec ----------------------------------------------------- *)

(* Only leaf witnesses travel: products rebuild from the prime multiset
   (already in the service snapshot) in O(n) multiplies, while each leaf
   witness would cost an exponentiation to recompute. Interior bases are
   cheap consequences of warm leaves and are left to lazy recompute.
   Trusted input, like the rest of the snapshot: the service's recovery
   invariant re-checks the accumulator value, and any witness this tree
   serves is verified on chain before payment. *)
let export_magic = "slicer-witness-tree-v1"

let export t =
  with_lock t (fun () ->
      let entries = ref [] in
      for p = t.count - 1 downto 0 do
        match t.base.(t.cap + p) with
        | Some w ->
          entries :=
            Bytesutil.concat
              [ string_of_int p; string_of_int t.bgen.(t.cap + p); Bigint.to_bytes_be w ]
            :: !entries
        | None -> ()
      done;
      Bytesutil.concat (export_magic :: string_of_int t.count :: !entries))

(* Graft exported leaf witnesses onto a tree already holding the same
   leaf sequence (e.g. rebuilt from a snapshot's primes). Entries whose
   position or stamp does not fit the current tree are skipped. Returns
   the number absorbed, or [None] when the blob is not a witness-tree
   export. *)
let absorb t blob =
  match Bytesutil.split blob with
  | Some (magic :: exported_count :: entries) when String.equal magic export_magic ->
    (match int_of_string_opt exported_count with
     | None -> None
     | Some _ ->
       with_lock t (fun () ->
           let absorbed = ref 0 in
           List.iter
             (fun entry ->
               match Bytesutil.split entry with
               | Some [ p; gen; w ] ->
                 (match (int_of_string_opt p, int_of_string_opt gen) with
                  | Some p, Some gen when p >= 0 && p < t.count && gen > p && gen <= t.count ->
                    t.base.(t.cap + p) <- Some (Bigint.of_bytes_be w);
                    t.bgen.(t.cap + p) <- gen;
                    incr absorbed
                  | _ -> ())
               | _ -> ())
             entries;
           Some !absorbed))
  | _ -> None
