(** Prime representatives — the random-oracle-style map [H_prime] of the
    paper (after Barić & Pfitzmann) from byte strings to primes.

    Construction: the SHA-256 digest of the input forms the high 256 bits
    of the candidate and a 16-bit counter the low bits; the counter is
    walked upward until a (deterministic Miller-Rabin) prime appears.
    Distinct digests occupy disjoint candidate intervals, so collision
    resistance reduces to that of SHA-256. *)

val counter_bits : int
(** Width of the low counter field (16). *)

val to_prime : string -> Bigint.t
(** [to_prime s] is the deterministic 272-bit prime representative of
    [s]. All honest parties (owner, cloud, contract) compute the same
    prime for the same token-and-hash string. Results are memoized in a
    bounded, mutex-guarded process-wide table, so Build/Insert/Search/
    Verify evaluating the same [token‖hash] pay the Miller-Rabin walk
    once.
    @raise Failure in the cryptographically negligible event that no
    prime lies in the candidate interval. *)

val to_primes : string list -> Bigint.t list
(** Batch {!to_prime}, preserving order. Uncached inputs are
    deduplicated and their prime walks fanned out across the shared
    domain pool ({!Parallel.pool}) — the walk is a pure function of its
    input, so every returned representative is identical to the
    sequential [List.map to_prime]. This is the owner's per-keyword ADS
    hot path during Build/Insert. *)

val warm : string list -> unit
(** Speculative batch warm-up: {!to_primes} for the side effect of
    populating the memo. Driven from the query stream so the
    latency-critical search path finds its claim primes already
    derived; warming [k] fresh inputs costs about one prime walk of
    wall clock on a parallel pool. *)

type cache_stats = { cs_entries : int; cs_hits : int; cs_misses : int; cs_limit : int }

val cache_stats : unit -> cache_stats
(** Occupancy and hit counters of the memo table (the table stops
    inserting, but stays correct, at [cs_limit] entries). *)

val is_representative_of : Bigint.t -> string -> bool
(** Checks that a claimed prime is exactly [to_prime s]. *)
