let counter_bits = 16

(* H_prime is a pure function each party (owner, cloud, contract)
   evaluates on the same inputs; a process-wide memo table removes the
   repeated prime walks. *)
let cache : (string, Bigint.t) Hashtbl.t = Hashtbl.create 4096

(* The candidate walk sieves incrementally: the residue of [base] modulo
   each small prime is computed once with bigint division, after which
   every candidate [base + j] is screened with native-int arithmetic
   only. Survivors get the deterministic Miller-Rabin battery. *)
let to_prime_uncached s =
  let digest = Sha256.digest (Bytesutil.concat [ "h-prime"; s ]) in
  (* high = digest with the top bit forced so every representative has
     exactly 256 + counter_bits significant bits. *)
  let high = Bigint.of_bytes_be digest in
  let high = Bigint.add (Bigint.shift_left Bigint.one 255) (Bigint.erem high (Bigint.shift_left Bigint.one 255)) in
  let base = Bigint.shift_left high counter_bits in
  let nprimes = Array.length Sieve.small_primes in
  let residues = Array.make nprimes 0 in
  for i = 0 to nprimes - 1 do
    residues.(i) <- snd (Bigint.divmod_int base Sieve.small_primes.(i))
  done;
  let survives_sieve j =
    let rec go i =
      i >= nprimes
      || ((residues.(i) + j) mod Sieve.small_primes.(i) <> 0 && go (i + 1))
    in
    (* Skip index 0 (p = 2): odd offsets on an even base are never even. *)
    go 1
  in
  let rec walk j =
    if j >= 1 lsl counter_bits then failwith "Prime_rep.to_prime: no prime in interval"
    else if survives_sieve j && Primegen.miller_rabin_det (Bigint.add_int base j) then
      Bigint.add_int base j
    else walk (j + 2)
  in
  walk 1 (* odd offsets only *)

let to_prime s =
  match Hashtbl.find_opt cache s with
  | Some x -> x
  | None ->
    let x = to_prime_uncached s in
    if Hashtbl.length cache < 1_000_000 then Hashtbl.replace cache s x;
    x

let is_representative_of x s = Bigint.equal x (to_prime s)
