let counter_bits = 16

(* H_prime is a pure function each party (owner, cloud, contract)
   evaluates on the same inputs; a process-wide memo table removes the
   repeated prime walks. The table is mutex-guarded so batched
   generation can fan the (pure) prime walks out across domains, and
   bounded so a long-lived server cannot grow it without limit. *)
let cache_limit = 1_000_000
let cache : (string, Bigint.t) Hashtbl.t = Hashtbl.create 4096
let cache_lock = Mutex.create ()
let hits = ref 0
let misses = ref 0

let c_hits = Obs.counter ~help:"prime-representative memo hits" "slicer_acc_prime_cache_hits_total"

let c_misses =
  Obs.counter ~help:"prime-representative memo misses" "slicer_acc_prime_cache_misses_total"

let g_entries = Obs.gauge ~help:"prime-representative memo entries" "slicer_acc_prime_cache_entries"

type cache_stats = { cs_entries : int; cs_hits : int; cs_misses : int; cs_limit : int }

let cache_stats () =
  Mutex.lock cache_lock;
  let s =
    { cs_entries = Hashtbl.length cache; cs_hits = !hits; cs_misses = !misses; cs_limit = cache_limit }
  in
  Mutex.unlock cache_lock;
  s

(* The candidate walk sieves incrementally: the residue of [base] modulo
   each small prime is computed once with bigint division, after which
   every candidate [base + j] is screened with native-int arithmetic
   only. Survivors get the deterministic Miller-Rabin battery. *)
let prime_walk s =
  let digest = Sha256.digest (Bytesutil.concat [ "h-prime"; s ]) in
  (* high = digest with the top bit forced so every representative has
     exactly 256 + counter_bits significant bits. *)
  let high = Bigint.of_bytes_be digest in
  let high = Bigint.add (Bigint.shift_left Bigint.one 255) (Bigint.erem high (Bigint.shift_left Bigint.one 255)) in
  let base = Bigint.shift_left high counter_bits in
  let nprimes = Array.length Sieve.small_primes in
  let residues = Array.make nprimes 0 in
  for i = 0 to nprimes - 1 do
    residues.(i) <- snd (Bigint.divmod_int base Sieve.small_primes.(i))
  done;
  let survives_sieve j =
    let rec go i =
      i >= nprimes
      || ((residues.(i) + j) mod Sieve.small_primes.(i) <> 0 && go (i + 1))
    in
    (* Skip index 0 (p = 2): odd offsets on an even base are never even. *)
    go 1
  in
  let rec walk j =
    if j >= 1 lsl counter_bits then failwith "Prime_rep.to_prime: no prime in interval"
    else if survives_sieve j && Primegen.miller_rabin_det (Bigint.add_int base j) then
      Bigint.add_int base j
    else walk (j + 2)
  in
  walk 1 (* odd offsets only *)

(* Span per walk, not per batch: [to_primes] runs the walks on pool
   domains, so the histogram attributes time to the domain doing it. *)
let to_prime_uncached s = Obs.span "acc.prime_derive" (fun () -> prime_walk s)

let lookup s =
  Mutex.lock cache_lock;
  let r = Hashtbl.find_opt cache s in
  (match r with Some _ -> incr hits | None -> incr misses);
  Mutex.unlock cache_lock;
  (match r with Some _ -> Obs.Counter.incr c_hits | None -> Obs.Counter.incr c_misses);
  r

let store s x =
  Mutex.lock cache_lock;
  if Hashtbl.length cache < cache_limit then Hashtbl.replace cache s x;
  let n = Hashtbl.length cache in
  Mutex.unlock cache_lock;
  Obs.Gauge.set g_entries n

let to_prime s =
  match lookup s with
  | Some x -> x
  | None ->
    let x = to_prime_uncached s in
    store s x;
    x

let to_primes ss =
  (* One pass partitions hits from misses; the misses (deduplicated, so
     a repeated token costs one walk) fan out across the pool. The prime
     walk is a pure function of the input string, so parallel order
     cannot change any representative. *)
  let cached = List.map (fun s -> (s, lookup s)) ss in
  let fresh = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s, r) ->
      if r = None && not (Hashtbl.mem fresh s) then begin
        Hashtbl.replace fresh s None;
        order := s :: !order
      end)
    cached;
  let todo = Array.of_list (List.rev !order) in
  if Array.length todo > 0 then begin
    let found = Parallel.Pool.map (Parallel.pool ()) to_prime_uncached todo in
    Array.iteri
      (fun i s ->
        Hashtbl.replace fresh s (Some found.(i));
        store s found.(i))
      todo
  end;
  List.map
    (fun (s, r) ->
      match r with
      | Some x -> x
      | None -> ( match Hashtbl.find fresh s with Some x -> x | None -> assert false ))
    cached

(* Speculative batch warm-up: derive-and-cache without needing the
   representatives back. Misses fan over the pool, so warming k fresh
   inputs costs ~one walk of wall clock on a parallel pool. *)
let warm ss = ignore (to_primes ss : Bigint.t list)

let is_representative_of x s = Bigint.equal x (to_prime s)
