(* Merging admin scrapes from many cluster members into one valid JSON
   document. Pure string-level work — the CLI calls this so the output
   shape is testable without sockets. *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [Obs.Export.to_json] puts the ["instance"] field first when the
   process has one; a router's merged reply has no top-level instance.
   Only the leading bytes are searched, so a metric named "instance"
   deeper in the document can never be mistaken for the field. *)
let instance_of_stats_json j =
  let key = "\"instance\": \"" in
  let klen = String.length key in
  let limit = min (String.length j) 64 in
  let rec find i =
    if i + klen > limit then None
    else if String.sub j i klen = key then Some (i + klen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= String.length j then None
      else
        match j.[i] with
        | '"' -> Some (Buffer.contents buf)
        | '\\' when i + 1 < String.length j ->
          Buffer.add_char buf j.[i + 1];
          go (i + 2)
        | c ->
          Buffer.add_char buf c;
          go (i + 1)
    in
    go start

let merged_stats_json members =
  let member (addr, r) =
    match r with
    | Ok st_json ->
      let instance =
        match instance_of_stats_json st_json with Some i -> i | None -> addr
      in
      Printf.sprintf "{\"addr\":\"%s\",\"instance\":\"%s\",\"stats\":%s}"
        (json_escape addr) (json_escape instance) st_json
    | Error e ->
      Printf.sprintf "{\"addr\":\"%s\",\"instance\":\"%s\",\"error\":\"%s\"}"
        (json_escape addr) (json_escape addr) (json_escape e)
  in
  "[" ^ String.concat "," (List.map member members) ^ "]"
