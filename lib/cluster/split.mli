(** Splitting owner shipments across shards.

    A grouped {!Owner.shipment} partitions cleanly: each keyword group
    (entries + prime) goes to {!Shard_key.of_group}'s shard, and shard
    [i]'s new accumulation value is its {e own} base [Ac_i] lifted by
    its own primes — per-shard accumulators never see another shard's
    primes, which is what keeps Algorithm-5 verification per-shard and
    constant-size. *)

val shipment :
  params:Rsa_acc.params ->
  base_acs:Bigint.t array ->
  Owner.shipment ->
  (Owner.shipment array, string) result
(** [shipment ~params ~base_acs sh] splits [sh] into
    [Array.length base_acs] per-shard shipments. [base_acs.(i)] is
    shard [i]'s current accumulation value — the params' generator for
    a Build, the shard's live on-chain [Ac_i] for an Insert. Every
    shard gets a shipment (possibly with no entries: its [Ac_i] is then
    unchanged), so Build/Insert fan-outs keep all generations aligned.
    [Error] when [sh] carries entries but no per-keyword groups (a
    pre-cluster archive shipment cannot be split faithfully). *)
