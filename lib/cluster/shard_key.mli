(** The cluster's partition function: keyword → shard.

    Slicer shards by {e keyword}, never by individual [(l, d)] index
    entry. Algorithm 4 terminates its per-generation scan at the first
    missing counter, so splitting one keyword's counter chain across
    shards would silently truncate results; keeping the whole chain on
    one shard preserves every per-shard claim byte-identical to what a
    lone server would produce for the same tokens.

    The key material is the keyword's G1 PRF key: it is uniform (PRF
    output), stable across generations and trapdoor rotations, present
    in every search token ([st_g1]) and in every shipment group
    ([kg_g1]) — so data and queries route identically with no shared
    state, and the function is a pure fold over bytes, stable across
    process restarts. The fold uses the same leading 56 bits
    {!Enc_index} hashes on. *)

val of_g1 : shards:int -> string -> int
(** [of_g1 ~shards g1] is the owning shard in [0 .. shards-1].
    @raise Invalid_argument when [shards < 1] or [g1] is shorter than
    7 bytes (G1 keys are 16). *)

val of_token : shards:int -> Slicer_types.search_token -> int
(** Routes a search token by its [st_g1]. *)

val of_group : shards:int -> Owner.keyword_group -> int
(** Routes a shipment group by its [kg_g1]. *)
