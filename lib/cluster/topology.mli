(** The router-side cluster map: which shard lives where.

    A topology is an ordered list of shard endpoints; a shard's index
    in the list {e is} its shard id, so the file must list shards in
    the same order across router restarts (routing is a pure function
    of the G1 key and the shard {e count}, but replies name shards by
    index). The router persists the map under its state dir and reloads
    it when restarted without [--shard] flags. *)

type t

val create : Net.Server.endpoint list -> t
(** @raise Invalid_argument on an empty list. *)

val shards : t -> int
val endpoint : t -> int -> Net.Server.endpoint
val endpoints : t -> Net.Server.endpoint list

val endpoint_of_string : string -> (Net.Server.endpoint, string) result
(** ["HOST:PORT"] or ["unix:PATH"]. *)

val endpoint_to_string : Net.Server.endpoint -> string

val save : path:string -> t -> unit
(** Atomic + durable write (via {!Persist.save}). *)

val load : path:string -> (t, string) result
