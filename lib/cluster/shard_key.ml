(* 56 bits of the (uniform) G1 key — the same prefix fold Enc_index
   hashes labels with, wide enough that [mod shards] is unbiased for
   any realistic shard count (bias < 2^-40 at 1024 shards). *)
let prefix56 s =
  let b i = Char.code (String.unsafe_get s i) in
  (b 0 lsl 48) lor (b 1 lsl 40) lor (b 2 lsl 32) lor (b 3 lsl 24)
  lor (b 4 lsl 16) lor (b 5 lsl 8) lor b 6

let of_g1 ~shards g1 =
  if shards < 1 then invalid_arg "Shard_key.of_g1: shards must be >= 1";
  if String.length g1 < 7 then invalid_arg "Shard_key.of_g1: key shorter than 7 bytes";
  prefix56 g1 mod shards

let of_token ~shards (t : Slicer_types.search_token) = of_g1 ~shards t.Slicer_types.st_g1

let of_group ~shards (g : Owner.keyword_group) = of_g1 ~shards g.Owner.kg_g1
