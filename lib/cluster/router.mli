(** The stateless cluster front end.

    A router owns no index, no accumulator and no chain — only pooled
    keep-alive {!Net.Client} connections to each shard. It splits
    Build/Insert shipments by {!Shard_key}, fans Search token sets to
    the owning shards in parallel, and merges the per-shard claims,
    accumulators and receipts into one reply whose [sr_parts] carry
    each shard's constant-size verification material.

    {b Idempotency end-to-end.} Every fan-out derives shard-level
    request ids deterministically from the client's id
    ([id ^ "/s" ^ shard]), so a retried request — whether the client
    retried against the router, or the router's own per-shard
    retry/backoff re-sent a sub-request — replays the shard's cached
    settlement instead of touching its escrow again. The router itself
    keeps no reply cache: the shards' caches {e are} the cache.

    {b Failure semantics.} A search is answered only when {e every}
    involved shard settled; any shard failure yields
    [Refused {code = Busy}] naming the failing shard, so clients back
    off and retry the whole request — shards that already settled
    replay from cache and the late shard settles once, never twice.
    There is no half-settled reply. *)

type config = {
  client : Net.Client.config;  (** per-sub-request retry/backoff budget *)
  pool : int;                  (** max idle pooled connections per shard *)
}

val default_config : config
(** 3 attempts per sub-request with the client's default backoff,
    32 pooled connections per shard. *)

type t

val create : ?config:config -> ?instance:string -> Topology.t -> t
(** [instance] (default ["router"]) is echoed as [pv_instance] in
    merged Welcome frames. No connection is opened until the first
    request needs it. *)

val topology : t -> Topology.t

val handle : t -> Net.Wire.request -> Net.Wire.response
(** The dispatcher to plug into {!Net.Server.start}. Thread-safe;
    never raises. *)

val close : t -> unit
(** Drop every pooled connection. *)

val sub_id : string -> int -> string
(** The deterministic shard-level request id derivation (exposed for
    tests asserting no-double-settlement). *)
