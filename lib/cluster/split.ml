let shipment ~params ~base_acs (sh : Owner.shipment) =
  let shards = Array.length base_acs in
  if shards < 1 then invalid_arg "Split.shipment: base_acs must be non-empty";
  if sh.Owner.sh_groups = [] && sh.Owner.sh_entries <> [] then
    Error "shipment carries entries but no per-keyword groups; cannot split by shard key"
  else begin
    (* Collect each shard's groups in shipment order, so per-shard
       flat views keep the owner's keyword order. *)
    let buckets = Array.make shards [] in
    List.iter
      (fun g ->
        let s = Shard_key.of_group ~shards g in
        buckets.(s) <- g :: buckets.(s))
      sh.Owner.sh_groups;
    Ok
      (Array.mapi
         (fun i bucket ->
           let groups = List.rev bucket in
           let entries = List.concat_map (fun g -> g.Owner.kg_entries) groups in
           let primes = List.map (fun g -> g.Owner.kg_prime) groups in
           (* Ac_i' = Ac_i ^ (prod primes_i): shard i's accumulator is
              lifted only by its own keywords' primes. An empty slice
              leaves Ac_i unchanged (empty product). *)
           let ac = Rsa_acc.add_batch params base_acs.(i) primes in
           { Owner.sh_entries = entries; sh_primes = primes; sh_ac = ac; sh_groups = groups })
         buckets)
  end
