let log_src = Logs.Src.create "slicer.cluster.router" ~doc:"Slicer cluster router"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_requests = Obs.counter ~help:"requests routed" "slicer_router_requests_total"

let c_fanouts =
  Obs.counter ~help:"sub-requests fanned out to shards" "slicer_router_fanout_total"

let c_shard_errors =
  Obs.counter ~help:"sub-requests that failed (transport or refusal)"
    "slicer_router_shard_errors_total"

let h_fan =
  Obs.histogram ~help:"wall time of one full fan-out (all shards)"
    "slicer_router_fan_seconds"

type config = {
  client : Net.Client.config;
  pool : int;
}

let default_config =
  { client = { Net.Client.default_config with Net.Client.max_attempts = 3 }; pool = 32 }

type pool = {
  p_lock : Mutex.t;
  p_conns : Net.Client.t Stack.t;
}

type t = {
  cfg : config;
  topo : Topology.t;
  instance : string;
  pools : pool array;
  (* Serializes owner traffic (Build/Insert): an Insert reads every
     shard's live Ac_i before splitting, so two interleaved shipments
     could otherwise compute stale accumulators. Searches never take
     this. *)
  owner_lock : Mutex.t;
}

let create ?(config = default_config) ?(instance = "router") topo =
  { cfg = config;
    topo;
    instance;
    pools =
      Array.init (Topology.shards topo) (fun _ ->
          { p_lock = Mutex.create (); p_conns = Stack.create () });
    owner_lock = Mutex.create () }

let topology t = t.topo

(* Deterministic shard-level id: the appended "/s<i>" starts with a
   character no decimal digit contains, so distinct (id, shard) pairs
   can never alias — and a retry (client- or router-initiated) re-sends
   the identical sub-id, which is what lets the shard's idempotency
   cache absorb it. *)
let sub_id request_id shard = Printf.sprintf "%s/s%d" request_id shard

(* --- connection pooling ------------------------------------------------- *)

let borrow t i =
  let p = t.pools.(i) in
  Mutex.lock p.p_lock;
  let c = if Stack.is_empty p.p_conns then None else Some (Stack.pop p.p_conns) in
  Mutex.unlock p.p_lock;
  match c with
  | Some c -> Ok c
  | None ->
    Net.Client.connect ~config:t.cfg.client
      ~name:(Printf.sprintf "%s->s%d" t.instance i)
      ~provision:false (Topology.endpoint t.topo i)

let give_back t i c =
  let p = t.pools.(i) in
  Mutex.lock p.p_lock;
  let keep = Stack.length p.p_conns < t.cfg.pool in
  if keep then Stack.push c p.p_conns;
  Mutex.unlock p.p_lock;
  if not keep then Net.Client.close c

let close t =
  Array.iter
    (fun p ->
      Mutex.lock p.p_lock;
      while not (Stack.is_empty p.p_conns) do
        Net.Client.close (Stack.pop p.p_conns)
      done;
      Mutex.unlock p.p_lock)
    t.pools

(* One sub-request on a pooled connection. The client layer already
   retries transport failures with backoff; a connection that still
   errored is dropped, not pooled (its socket state is unknown). *)
let call t i req =
  Obs.Counter.incr c_fanouts;
  match borrow t i with
  | Error e -> Error e
  | Ok c ->
    let r = Net.Client.rpc c req in
    (match r with
     | Ok _ -> give_back t i c
     | Error _ -> Net.Client.close c);
    r

(* One sub-request under its own [router.shard] span: the span carries
   the shard number, and its id becomes the remote parent stamped onto
   the wire — so the shard's tree hangs exactly under the fan-out arm
   that caused it. No-ops entirely when the request is untraced. *)
let shard_call t i req =
  let tags = [ ("shard", string_of_int i) ] in
  Trace.child ~tags "router.shard" (fun () ->
      call t i (Net.Wire.with_trace (Trace.current ()) req))

(* Parallel fan-out: one thread per target shard (cheap systhreads —
   each blocks on its own socket, so N shards' work overlaps and the
   request's latency is max, not sum, of the shard latencies). Results
   come back in the order of [targets]. The trace context is captured
   once and resumed on each fan thread; every thread is joined before
   the capture's root can close, as {!Trace.resume} requires. *)
let fan t targets =
  let t0 = Obs.Clock.now_ns () in
  Fun.protect
    ~finally:(fun () -> Obs.Histogram.record_s h_fan (Obs.Clock.elapsed_s t0))
    (fun () ->
      match targets with
      | [ (i, req) ] -> [ (i, shard_call t i req) ]
      | _ ->
        let carrier = Trace.capture () in
        let arr = Array.of_list targets in
        let results = Array.make (Array.length arr) None in
        let threads =
          Array.mapi
            (fun k (i, req) ->
              Thread.create
                (fun () ->
                  let r =
                    try Trace.resume carrier (fun () -> shard_call t i req)
                    with exn ->
                      Error (Net.Client.Transport (Printexc.to_string exn))
                  in
                  results.(k) <- Some (i, r))
                ())
            arr
        in
        Array.iter Thread.join threads;
        Array.to_list
          (Array.map (function Some r -> r | None -> assert false) results))

let refused code detail = Net.Wire.Refused { code; detail }

(* Collapse a fan-out into Ok (per-shard responses) or the first
   failure, mapped to a refusal that names the shard. Transport-level
   failures come back [Busy] — the one code clients retry — because
   the shard may be seconds from recovering; structured shard refusals
   keep their code so e.g. [Unknown_user] still tells the client to
   re-hello. *)
let all_ok t results =
  ignore t;
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (i, Ok resp) :: rest ->
      (match resp with
       | Net.Wire.Refused { code; detail } ->
         Obs.Counter.incr c_shard_errors;
         Error (refused code (Printf.sprintf "shard %d: %s" i detail))
       | resp -> go ((i, resp) :: acc) rest)
    | (i, Error e) :: rest ->
      ignore rest;
      Obs.Counter.incr c_shard_errors;
      let detail =
        Printf.sprintf "shard %d unavailable: %s" i (Net.Client.error_to_string e)
      in
      Log.warn (fun m -> m "%s" detail);
      (match e with
       | Net.Client.Refused (code, _) -> Error (refused code detail)
       | _ -> Error (refused Net.Wire.Busy detail))
  in
  go [] results

(* --- Hello: provision from every shard ---------------------------------- *)

(* Fan a Hello to all shards and return their provisions (shard order).
   Used both to answer a client's Hello and as the Ac_i probe before an
   Insert split. *)
let fan_welcomes t ~client =
  let n = Topology.shards t.topo in
  let req = Net.Wire.Hello { client; proto = Net.Wire.proto_version } in
  match all_ok t (fan t (List.init n (fun i -> (i, req)))) with
  | Error resp -> Error resp
  | Ok resps ->
    let rec provisions acc = function
      | [] -> Ok (List.rev acc)
      | (_, Net.Wire.Welcome p) :: rest -> provisions (p :: acc) rest
      | (i, _) :: _ ->
        Error (refused Net.Wire.Internal (Printf.sprintf "shard %d: expected a welcome" i))
    in
    provisions [] resps

let do_hello t ~client =
  match fan_welcomes t ~client with
  | Error resp -> resp
  | Ok [] -> refused Net.Wire.Internal "empty topology"
  | Ok (p0 :: rest as all) ->
    (* The shards must agree on the public parameters and generation,
       or the cluster is mid-shipment / mis-deployed; refuse loudly
       rather than provision a client that would fail verification. *)
    let consistent (p : Net.Wire.provision) =
      p.Net.Wire.pv_width = p0.Net.Wire.pv_width
      && p.Net.Wire.pv_payment = p0.Net.Wire.pv_payment
      && p.Net.Wire.pv_generation = p0.Net.Wire.pv_generation
    in
    if not (List.for_all consistent rest) then
      refused Net.Wire.Internal
        (Printf.sprintf "shards out of sync (generations %s)"
           (String.concat ","
              (List.map (fun p -> string_of_int p.Net.Wire.pv_generation) all)))
    else
      Net.Wire.Welcome
        { p0 with
          Net.Wire.pv_shards = Topology.shards t.topo;
          pv_instance = t.instance }

(* --- Search: split tokens, merge claims --------------------------------- *)

let merge_receipts parts =
  let paid =
    List.for_all
      (fun (p : Net.Wire.shard_part) ->
        match p.Net.Wire.shp_receipt.Vm.r_output with
        | Ok [ "paid" ] -> true
        | Ok _ | Error _ -> false)
      parts
  in
  { Vm.r_txn_hash =
      Sha256.digest
        (Bytesutil.concat
           (List.map (fun (p : Net.Wire.shard_part) -> p.Net.Wire.shp_receipt.Vm.r_txn_hash) parts));
    r_gas_used =
      List.fold_left
        (fun n (p : Net.Wire.shard_part) -> n + p.Net.Wire.shp_receipt.Vm.r_gas_used)
        0 parts;
    r_events = [];
    r_output = Ok [ (if paid then "paid" else "refunded") ] }

let do_search t ~client ~request_id ~batched ~tokens =
  let n = Topology.shards t.topo in
  (* Partition tokens by owning shard, remembering each token's
     position so the merged claim list restores the request's order —
     byte-for-byte what a lone server would answer for these tokens. *)
  let buckets = Array.make n [] in
  List.iteri
    (fun pos tok ->
      let s = Shard_key.of_token ~shards:n tok in
      buckets.(s) <- (pos, tok) :: buckets.(s))
    tokens;
  let involved =
    let some =
      List.filter (fun i -> buckets.(i) <> []) (List.init n (fun i -> i))
    in
    if some = [] then [ 0 ] else some
  in
  let targets =
    List.map
      (fun i ->
        let toks = List.rev_map snd buckets.(i) |> List.rev in
        ( i,
          Net.Wire.Search
            { client; request_id = sub_id request_id i; batched; tokens = toks;
              trace = None } ))
      involved
  in
  match all_ok t (fan t targets) with
  | Error resp -> resp
  | Ok resps ->
    let rec founds acc = function
      | [] -> Ok (List.rev acc)
      | (i, Net.Wire.Found r) :: rest -> founds ((i, r) :: acc) rest
      | (i, _) :: _ ->
        Error
          (refused Net.Wire.Internal (Printf.sprintf "shard %d: expected a search result" i))
    in
    (match founds [] resps with
     | Error resp -> resp
     | Ok found ->
       Trace.child "router.merge" @@ fun () ->
       let merged = Array.make (List.length tokens) None in
       let arity_ok =
         List.for_all
           (fun (i, (r : Net.Wire.search_reply)) ->
             let positions = List.rev_map fst buckets.(i) in
             let claims = r.Net.Wire.sr_claims in
             List.length positions = List.length claims
             && begin
               List.iter2 (fun pos c -> merged.(pos) <- Some c) positions claims;
               true
             end)
           found
       in
       if (not arity_ok) || Array.exists Option.is_none merged then
         refused Net.Wire.Internal "shard claim count does not match its token count"
       else begin
         let parts =
           List.map
             (fun (i, (r : Net.Wire.search_reply)) ->
               { Net.Wire.shp_shard = i;
                 shp_claims = r.Net.Wire.sr_claims;
                 shp_batch_witness = r.Net.Wire.sr_batch_witness;
                 shp_ac = r.Net.Wire.sr_ac;
                 shp_receipt = r.Net.Wire.sr_receipt;
                 shp_settle = r.Net.Wire.sr_settle })
             found
         in
         let generation =
           List.fold_left
             (fun g (_, (r : Net.Wire.search_reply)) -> max g r.Net.Wire.sr_generation)
             0 found
         in
         Net.Wire.Found
           { Net.Wire.sr_request_id = request_id;
             sr_generation = generation;
             sr_claims =
               Array.to_list merged |> List.map (function Some c -> c | None -> assert false);
             sr_batch_witness = None;
             sr_receipt = merge_receipts parts;
             sr_ac = (List.hd parts).Net.Wire.shp_ac;
             sr_parts = parts;
             (* Per-shard settlement coordinates live in the parts: a
                merged reply has no single (batch, leaf) identity. *)
             sr_settle = None }
       end)

(* --- Build / Insert: split shipments ------------------------------------ *)

let accepted_max resps =
  let rec go g = function
    | [] -> Ok g
    | (_, Net.Wire.Accepted { generation }) :: rest -> go (max g generation) rest
    | (i, _) :: _ ->
      Error (refused Net.Wire.Internal (Printf.sprintf "shard %d: expected an accept" i))
  in
  go 0 resps

let do_build t ~client ~request_id ~width ~payment ~acc ~tdp_n ~tdp_e ~user_k ~user_k_r
    ~shipment ~trapdoor =
  let n = Topology.shards t.topo in
  let base = Array.make n acc.Rsa_acc.generator in
  match Split.shipment ~params:acc ~base_acs:base shipment with
  | Error e -> refused Net.Wire.Bad_request e
  | Ok subs ->
    let targets =
      List.init n (fun i ->
          ( i,
            Net.Wire.Build
              { client; request_id = sub_id request_id i; width; payment; acc; tdp_n;
                tdp_e; user_k; user_k_r; shipment = subs.(i);
                trapdoor; trace = None } ))
    in
    (match all_ok t (fan t targets) with
     | Error resp -> resp
     | Ok resps ->
       (match accepted_max resps with
        | Error resp -> resp
        | Ok generation ->
          Log.info (fun m ->
              m "build split across %d shards (%d entries)" n
                (List.length shipment.Owner.sh_entries));
          Net.Wire.Accepted { generation }))

let do_insert t ~client ~request_id ~shipment ~trapdoor =
  (* Each shard's new Ac_i folds onto its *live* accumulation value, so
     probe every shard first. A retried Insert recomputes these splits
     from possibly-moved Ac_i values, but shards that already applied
     the original replay their cached accept without looking at the
     payload — convergence comes from the idempotency key, not from the
     bytes being identical. *)
  match fan_welcomes t ~client:(t.instance ^ ":ac-probe") with
  | Error resp -> resp
  | Ok provisions ->
    let params =
      match provisions with
      | p :: _ -> p.Net.Wire.pv_acc
      | [] -> assert false
    in
    let base = Array.of_list (List.map (fun p -> p.Net.Wire.pv_ac) provisions) in
    (match Split.shipment ~params ~base_acs:base shipment with
     | Error e -> refused Net.Wire.Bad_request e
     | Ok subs ->
       let targets =
         List.init (Array.length base) (fun i ->
             ( i,
               Net.Wire.Insert
                 { client; request_id = sub_id request_id i; shipment = subs.(i); trapdoor;
                   trace = None } ))
       in
       (match all_ok t (fan t targets) with
        | Error resp -> resp
        | Ok resps ->
          (match accepted_max resps with
           | Error resp -> resp
           | Ok generation -> Net.Wire.Accepted { generation })))

(* --- Receipt / Dispute: settlement finality across shards ---------------- *)

(* A routed search settles independently on every involved shard, so
   its finality is the *least* settled sub-receipt: pending < committed
   < refunded < final. The poll fans to all shards (the router does not
   remember which shards a past search touched) and merges to the
   minimum; shards that never saw the sub-request answer Rcp_unknown
   and are skipped — all-unknown merges to unknown. *)
let status_rank = function
  | Net.Wire.Rcp_pending _ -> 0
  | Net.Wire.Rcp_committed _ -> 1
  | Net.Wire.Rcp_refunded _ -> 2
  | Net.Wire.Rcp_final _ -> 3
  | Net.Wire.Rcp_unknown -> 4

let do_receipt t ~client ~request_id =
  let n = Topology.shards t.topo in
  let targets =
    List.init n (fun i ->
        (i, Net.Wire.Receipt { client; request_id = sub_id request_id i }))
  in
  match all_ok t (fan t targets) with
  | Error resp -> resp
  | Ok resps ->
    let rec statuses acc = function
      | [] -> Ok (List.rev acc)
      | (_, Net.Wire.Receipt_reply st) :: rest -> statuses (st :: acc) rest
      | (i, _) :: _ ->
        Error
          (refused Net.Wire.Internal (Printf.sprintf "shard %d: expected a receipt" i))
    in
    (match statuses [] resps with
     | Error resp -> resp
     | Ok sts ->
       let known = List.filter (fun st -> st <> Net.Wire.Rcp_unknown) sts in
       let least =
         List.fold_left
           (fun best st -> if status_rank st < status_rank best then st else best)
           Net.Wire.Rcp_unknown known
       in
       Net.Wire.Receipt_reply least)

(* A dispute names the shard whose part carried the bad claims (the
   client learned it from [shp_shard]); route it there alone, with the
   request id rewritten to that shard's sub-id. *)
let do_dispute t ~client ~request_id ~shard ~claims_blob ~batch_witness =
  let n = Topology.shards t.topo in
  if shard < 0 || shard >= n then
    refused Net.Wire.Bad_request
      (Printf.sprintf "shard %d out of range (cluster has %d)" shard n)
  else
    let req =
      Net.Wire.Dispute
        { client; request_id = sub_id request_id shard; shard = 0; claims_blob;
          batch_witness }
    in
    (match all_ok t (fan t [ (shard, req) ]) with
     | Error resp -> resp
     | Ok [ (_, (Net.Wire.Disputed _ as resp)) ] -> resp
     | Ok _ ->
       refused Net.Wire.Internal
         (Printf.sprintf "shard %d: expected a dispute verdict" shard))

(* --- Stats: shard-aware aggregate ---------------------------------------- *)

(* Read-only, so unlike searches it degrades partially: a dead shard
   contributes an error marker instead of failing the whole scrape. *)
let do_stats t =
  let n = Topology.shards t.topo in
  let results = fan t (List.init n (fun i -> (i, Net.Wire.Stats))) in
  let shard_texts, shard_jsons =
    List.split
      (List.map
         (fun (i, r) ->
           match r with
           | Ok (Net.Wire.Stats_reply { st_json; st_text }) -> (st_text, st_json)
           | Ok _ | Error _ ->
             Obs.Counter.incr c_shard_errors;
             ( Printf.sprintf "# shard %d: scrape failed\n" i,
               Printf.sprintf "{\"error\":\"shard %d unreachable\"}" i ))
         results)
  in
  let own_json = Obs.Export.to_json () and own_text = Obs.Export.to_prometheus () in
  Net.Wire.Stats_reply
    { st_json =
        Printf.sprintf "{\"router\":%s,\"shards\":[%s]}" own_json
          (String.concat "," shard_jsons);
      st_text = String.concat "" (own_text :: shard_texts) }

(* --- Traces: cluster-wide drain ------------------------------------------ *)

(* Like Stats, read-only and partially degrading: a dead shard loses
   its spans from this scrape, it does not fail it. The reply holds the
   router's own spans plus every shard's — one scrape, whole cluster. *)
let do_traces t =
  let n = Topology.shards t.topo in
  let results = fan t (List.init n (fun i -> (i, Net.Wire.Traces))) in
  let shard_spans =
    List.concat_map
      (fun (i, r) ->
        match r with
        | Ok (Net.Wire.Traces_reply { tr_spans }) -> tr_spans
        | Ok _ | Error _ ->
          Obs.Counter.incr c_shard_errors;
          Log.warn (fun m -> m "shard %d: trace drain failed" i);
          [])
      results
  in
  Net.Wire.Traces_reply { tr_spans = Trace.drain () @ shard_spans }

let dispatch t req =
  match req with
  | Net.Wire.Ping -> Net.Wire.Pong
  | Net.Wire.Stats -> do_stats t
  | Net.Wire.Traces -> do_traces t
  | Net.Wire.Hello { proto; _ } when not (Net.Wire.proto_accepted proto) ->
    refused Net.Wire.Version_mismatch
      (Printf.sprintf "client speaks protocol revision %d, this router speaks %d..%d" proto
         Net.Wire.min_proto_version Net.Wire.proto_version)
  | Net.Wire.Hello { client; _ } -> do_hello t ~client
  | Net.Wire.Search { client; request_id; batched; tokens; _ } ->
    do_search t ~client ~request_id ~batched ~tokens
  | Net.Wire.Receipt { client; request_id } -> do_receipt t ~client ~request_id
  | Net.Wire.Dispute { client; request_id; shard; claims_blob; batch_witness } ->
    do_dispute t ~client ~request_id ~shard ~claims_blob ~batch_witness
  | Net.Wire.Build
      { client; request_id; width; payment; acc; tdp_n; tdp_e; user_k; user_k_r;
        shipment; trapdoor; trace = _ } ->
    Mutex.lock t.owner_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.owner_lock)
      (fun () ->
        do_build t ~client ~request_id ~width ~payment ~acc ~tdp_n ~tdp_e ~user_k
          ~user_k_r ~shipment ~trapdoor)
  | Net.Wire.Insert { client; request_id; shipment; trapdoor; _ } ->
    Mutex.lock t.owner_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.owner_lock)
      (fun () -> do_insert t ~client ~request_id ~shipment ~trapdoor)

(* Span taxonomy name for the routed requests worth tracing. *)
let traced_as = function
  | Net.Wire.Search _ -> Some "router.search"
  | Net.Wire.Build _ -> Some "router.build"
  | Net.Wire.Insert _ -> Some "router.insert"
  | Net.Wire.Dispute _ -> Some "router.search"
  | Net.Wire.Hello _ | Net.Wire.Ping | Net.Wire.Stats | Net.Wire.Traces
  | Net.Wire.Receipt _ -> None

let handle t req =
  Obs.Counter.incr c_requests;
  try
    match traced_as req with
    | None -> dispatch t req
    | Some name ->
      (* The router is where a client-unsampled request gets its
         sampling decision; a trace id minted here follows the request
         through every shard and back. *)
      Trace.root ?remote:(Net.Wire.request_trace req) name (fun () -> dispatch t req)
  with exn ->
    Log.err (fun m -> m "router dispatch raised: %s" (Printexc.to_string exn));
    refused Net.Wire.Internal (Printexc.to_string exn)
