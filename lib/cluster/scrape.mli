(** Merging per-member admin scrapes into one valid JSON document —
    the pure half of [slicer stats --json] with repeated [--addr]. *)

val json_escape : string -> string
(** JSON string-content escaping (quotes, backslashes, control
    characters). *)

val instance_of_stats_json : string -> string option
(** The ["instance"] field of one {!Obs.Export.to_json} snapshot, when
    the scraped process had one (only the document head is examined). *)

val merged_stats_json : (string * (string, string) result) list -> string
(** [merged_stats_json [(addr, Ok stats_json | Error msg); ...]] — one
    JSON array, a member object per scrape target:
    [{"addr":..., "instance":..., "stats":{...}}] on success,
    [{"addr":..., "instance":..., "error":"..."}] on failure (the
    instance falls back to the address when the member did not answer
    or reports none). Always valid JSON: addresses and error strings
    are escaped, member stats embed verbatim (already JSON). *)
