type t = { eps : Net.Server.endpoint array }

let create = function
  | [] -> invalid_arg "Topology.create: a cluster needs at least one shard"
  | eps -> { eps = Array.of_list eps }

let shards t = Array.length t.eps
let endpoint t i = t.eps.(i)
let endpoints t = Array.to_list t.eps

let endpoint_to_string = function
  | Net.Server.Tcp (host, port) ->
    (* Bracket hosts containing ':' (IPv6 literals) so the PORT
       separator stays unambiguous and the string round-trips. *)
    if String.contains host ':' then Printf.sprintf "[%s]:%d" host port
    else Printf.sprintf "%s:%d" host port
  | Net.Server.Unix_socket path -> "unix:" ^ path

let endpoint_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT or unix:PATH" s)
  | Some _ when String.length s >= 5 && String.sub s 0 5 = "unix:" ->
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error (Printf.sprintf "%S: empty unix socket path" s)
    else Ok (Net.Server.Unix_socket path)
  | Some _ ->
    (* The port is after the last colon, so IPv6 literals work too. *)
    let i = String.rindex s ':' in
    let host = String.sub s 0 i and port = String.sub s (i + 1) (String.length s - i - 1) in
    let host =
      (* [::1]:8080 — strip the RFC 3986 brackets around an IPv6 host. *)
      let n = String.length host in
      if n >= 2 && host.[0] = '[' && host.[n - 1] = ']' then String.sub host 1 (n - 2)
      else host
    in
    if host = "" then Error (Printf.sprintf "%S: empty host" s)
    else if String.contains host '[' || String.contains host ']' then
      Error (Printf.sprintf "%S: mismatched brackets in host" s)
    else begin
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Net.Server.Tcp (host, p))
      | _ -> Error (Printf.sprintf "%S: bad port" s)
    end

let magic = "slicer-topology-v1"

let to_bytes t =
  Bytesutil.concat (magic :: List.map endpoint_to_string (endpoints t))

let of_bytes bytes =
  match Bytesutil.split bytes with
  | Some (m :: eps) when String.equal m magic && eps <> [] ->
    let rec go acc = function
      | [] -> Ok (create (List.rev acc))
      | e :: rest ->
        (match endpoint_of_string e with
         | Ok ep -> go (ep :: acc) rest
         | Error _ as err -> err)
    in
    go [] eps
  | Some _ | None -> Error "not a topology file"

let save ~path t = Persist.save ~path (to_bytes t)

let load ~path =
  match Persist.load ~path with
  | None -> Error (path ^ ": unreadable or missing")
  | Some bytes -> of_bytes bytes
