(* Arbitrary-precision integers on 31-bit limbs.

   Representation: sign-magnitude. [mag] is a little-endian array of limbs
   in base 2^31 with no leading (high-order) zero limb; [sign] is -1, 0 or
   1, and [sign = 0] iff [mag] is empty. 31-bit limbs keep every
   intermediate product of two limbs plus two limb-sized carries strictly
   below 2^62, so all inner loops stay within OCaml's 63-bit native int. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude (natural number) primitives.                              *)
(* ------------------------------------------------------------------ *)

(* Drop high-order zero limbs so magnitudes are canonical. *)
let nat_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let nat_is_zero a = Array.length a = 0

let nat_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let nat_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(lr - 1) <- !carry;
  nat_normalize r

(* Requires a >= b. *)
let nat_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  nat_normalize r

let nat_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          (* ai*b.(j) <= (2^31-1)^2; + r + carry stays < 2^63. *)
          let p = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- p land mask;
          carry := p lsr limb_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    nat_normalize r
  end

(* Karatsuba above this limb count: the accumulator's product trees
   multiply multi-megabit prime products, where schoolbook O(n²) costs
   more than the modular exponentiation it feeds. *)
let karatsuba_threshold = 32

let nat_low a k = nat_normalize (Array.sub a 0 (Stdlib.min k (Array.length a)))

let nat_high a k =
  let la = Array.length a in
  if la <= k then [||] else Array.sub a k (la - k)

let nat_shift_limbs a k = if nat_is_zero a then a else Array.append (Array.make k 0) a

let rec nat_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then nat_mul_school a b
  else begin
    (* z1 = (a0+a1)(b0+b1) - z0 - z2 = a0*b1 + a1*b0 >= 0, so the two
       nat_subs never borrow past zero. *)
    let m = (Stdlib.max la lb + 1) / 2 in
    let a0 = nat_low a m and a1 = nat_high a m in
    let b0 = nat_low b m and b1 = nat_high b m in
    let z0 = nat_mul a0 b0 in
    let z2 = nat_mul a1 b1 in
    let t = nat_mul (nat_add a0 a1) (nat_add b0 b1) in
    let z1 = nat_sub (nat_sub t z0) z2 in
    nat_add (nat_add (nat_shift_limbs z2 (2 * m)) (nat_shift_limbs z1 m)) z0
  end

(* m must satisfy 0 <= m < base. *)
let nat_mul_small a m =
  if m = 0 || nat_is_zero a then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * m) + !carry in
      r.(i) <- p land mask;
      carry := p lsr limb_bits
    done;
    r.(la) <- !carry;
    nat_normalize r
  end

let nat_add_small a m =
  if m = 0 then a
  else if nat_is_zero a then [| m |]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    Array.blit a 0 r 0 la;
    let carry = ref m in
    let i = ref 0 in
    while !carry <> 0 && !i < la do
      let s = r.(!i) + !carry in
      r.(!i) <- s land mask;
      carry := s lsr limb_bits;
      incr i
    done;
    r.(la) <- !carry;
    nat_normalize r
  end

let nat_shift_left a k =
  if nat_is_zero a || k = 0 then Array.copy a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bits) lor !carry in
        r.(i + limbs) <- v land mask;
        carry := v lsr limb_bits
      done;
      r.(la + limbs) <- !carry
    end;
    nat_normalize r
  end

let nat_shift_right a k =
  if nat_is_zero a || k = 0 then Array.copy a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then [||]
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      if bits = 0 then Array.blit a limbs r 0 lr
      else begin
        for i = 0 to lr - 1 do
          let lo = a.(i + limbs) lsr bits in
          let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land mask else 0 in
          r.(i) <- lo lor hi
        done
      end;
      nat_normalize r
    end
  end

let nat_num_bits a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n = if n = 0 then 0 else 1 + width (n lsr 1) in
    ((la - 1) * limb_bits) + width top
  end

(* Divisor d must satisfy 0 < d < base. Returns (quotient, remainder). *)
let nat_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    (* r < d <= 2^31-1, so r*base + limb < 2^62. *)
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (nat_normalize q, !r)

(* Knuth Algorithm D. Requires Array.length v >= 2 and v normalized
   (no leading zero limb). Returns (quotient, remainder). *)
let nat_divmod_knuth u v =
  let n = Array.length v in
  let m = Array.length u - n in
  if m < 0 then ([||], Array.copy u)
  else begin
    (* Normalize so the top divisor limb has its high bit set. *)
    let rec lead_zeros w acc = if w land (1 lsl (limb_bits - 1)) <> 0 then acc else lead_zeros (w lsl 1) (acc + 1) in
    let s = lead_zeros v.(n - 1) 0 in
    let vn = nat_shift_left v s in
    let vn = if Array.length vn < n then Array.append vn (Array.make (n - Array.length vn) 0) else vn in
    let un = Array.make (m + n + 1) 0 in
    let shifted = nat_shift_left u s in
    Array.blit shifted 0 un 0 (Array.length shifted);
    let q = Array.make (m + 1) 0 in
    let vh = vn.(n - 1) and vl = vn.(n - 2) in
    for j = m downto 0 do
      let num = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
      let qhat = ref (num / vh) and rhat = ref (num mod vh) in
      let continue = ref true in
      while !continue do
        if !qhat >= base then begin
          decr qhat;
          rhat := !rhat + vh
        end
        else if !rhat < base && (!qhat * vl) > ((!rhat lsl limb_bits) lor un.(j + n - 2)) then begin
          decr qhat;
          rhat := !rhat + vh
        end
        else continue := false
      done;
      (* Multiply and subtract qhat * vn from un[j .. j+n]. *)
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * vn.(i)) + !borrow in
        let sub = un.(j + i) - (p land mask) in
        if sub < 0 then begin
          un.(j + i) <- sub + base;
          borrow := (p lsr limb_bits) + 1
        end
        else begin
          un.(j + i) <- sub;
          borrow := p lsr limb_bits
        end
      done;
      let sub = un.(j + n) - !borrow in
      if sub < 0 then begin
        (* qhat was one too large: add the divisor back. *)
        un.(j + n) <- sub + base;
        q.(j) <- !qhat - 1;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s2 = un.(j + i) + vn.(i) + !carry in
          un.(j + i) <- s2 land mask;
          carry := s2 lsr limb_bits
        done;
        un.(j + n) <- (un.(j + n) + !carry) land mask
      end
      else begin
        un.(j + n) <- sub;
        q.(j) <- !qhat
      end
    done;
    let r = nat_shift_right (nat_normalize (Array.sub un 0 n)) s in
    (nat_normalize q, r)
  end

let nat_divmod a b =
  match Array.length b with
  | 0 -> raise Division_by_zero
  | 1 ->
    let q, r = nat_divmod_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ -> if nat_compare a b < 0 then ([||], Array.copy a) else nat_divmod_knuth a b

(* ------------------------------------------------------------------ *)
(* Signed layer.                                                       *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = nat_normalize mag in
  if nat_is_zero mag then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    let rec limbs n acc = if n = 0 then List.rev acc else limbs (n lsr limb_bits) ((n land mask) :: acc) in
    (* |min_int| overflows native negation: build |min_int + 1| then add 1. *)
    let mag =
      if n = Stdlib.min_int then nat_add_small (Array.of_list (limbs Stdlib.max_int [])) 1
      else Array.of_list (limbs (Stdlib.abs n) [])
    in
    { sign; mag }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then nat_compare a.mag b.mag
  else nat_compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg x = if is_zero x then zero else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else if a.sign = b.sign then make a.sign (nat_add a.mag b.mag)
  else begin
    let c = nat_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (nat_sub a.mag b.mag)
    else make b.sign (nat_sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ x = add x one
let pred x = sub x one

let mul a b =
  if is_zero a || is_zero b then zero else make (a.sign * b.sign) (nat_mul a.mag b.mag)

let add_int a n = add a (of_int n)

let mul_int a n =
  if n = 0 || is_zero a then zero
  else if n > 0 && n < base then make a.sign (nat_mul_small a.mag n)
  else mul a (of_int n)

(* Euclidean division: remainder is always in [0, |b|). *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  let q, r = nat_divmod a.mag b.mag in
  let q = make (a.sign * b.sign) q and r = make 1 r in
  if a.sign >= 0 || is_zero r then (q, r)
  else begin
    (* Negative dividend: shift the truncated result to Euclidean form. *)
    let babs = abs b in
    (sub q (if b.sign > 0 then one else minus_one), sub babs r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let divmod_int a d =
  if d <= 0 || d >= base then invalid_arg "Bigint.divmod_int: divisor out of range";
  let q, r = nat_divmod_small a.mag d in
  let q = make a.sign q in
  if a.sign >= 0 || r = 0 then (q, r) else (pred q, d - r)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n = if n = 0 then acc else go (if n land 1 = 1 then mul acc b else acc) (mul b b) (n lsr 1) in
  go one x n

let shift_left x k =
  if k < 0 then invalid_arg "Bigint.shift_left";
  if is_zero x then zero else make x.sign (nat_shift_left x.mag k)

let shift_right x k =
  if k < 0 then invalid_arg "Bigint.shift_right";
  if is_zero x then zero else make x.sign (nat_shift_right x.mag k)

let num_bits x = nat_num_bits x.mag

let testbit x i =
  if i < 0 then invalid_arg "Bigint.testbit";
  let limb = i / limb_bits and bit = i mod limb_bits in
  limb < Array.length x.mag && (x.mag.(limb) lsr bit) land 1 = 1

let is_even x = not (testbit x 0)
let is_odd x = testbit x 0

let to_int_opt x =
  (* Fits when at most 62 significant bits (conservative for both signs). *)
  if num_bits x > 62 then None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc lsl limb_bits) lor limb) x.mag 0 in
    Some (if x.sign < 0 then -v else v)
  end

let to_int_exn x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: does not fit in int"

(* ------------------------------------------------------------------ *)
(* Radix conversion.                                                   *)
(* ------------------------------------------------------------------ *)

let decimal_chunk = 1_000_000_000 (* 10^9 < 2^31 *)

let to_string x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks mag acc =
      if nat_is_zero mag then acc
      else begin
        let q, r = nat_divmod_small mag decimal_chunk in
        chunks q (r :: acc)
      end
    in
    (match chunks x.mag [] with
     | [] -> assert false
     | first :: rest ->
       if x.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    chunk := (!chunk * 10) + (Char.code c - Char.code '0');
    incr chunk_len;
    if !chunk_len = 9 then begin
      acc := add_int (mul_int !acc decimal_chunk) !chunk;
      chunk := 0;
      chunk_len := 0
    end
  done;
  if !chunk_len > 0 then begin
    let scale = int_of_float (10. ** float_of_int !chunk_len) in
    acc := add_int (mul_int !acc scale) !chunk
  end;
  if negative then neg !acc else !acc

let of_hex s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_hex: empty string";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bigint.of_hex: bad digit"
  in
  let acc = ref zero in
  String.iter (fun c -> acc := add_int (mul_int !acc 16) (digit c)) s;
  !acc

let to_hex x =
  if is_zero x then "0"
  else begin
    let nibbles = (num_bits x + 3) / 4 in
    let buf = Buffer.create nibbles in
    for i = nibbles - 1 downto 0 do
      let limb = (i * 4) / limb_bits and off = (i * 4) mod limb_bits in
      let v =
        if limb >= Array.length x.mag then 0
        else begin
          let lo = x.mag.(limb) lsr off in
          let hi = if off > limb_bits - 4 && limb + 1 < Array.length x.mag then x.mag.(limb + 1) lsl (limb_bits - off) else 0 in
          (lo lor hi) land 0xf
        end
      in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    (* Drop any leading zero nibble produced by rounding. *)
    let s = Buffer.contents buf in
    let i = ref 0 in
    while !i < String.length s - 1 && s.[!i] = '0' do incr i done;
    String.sub s !i (String.length s - !i)
  end

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add_int (mul_int !acc 256) (Char.code c)) s;
  !acc

let to_bytes_be ?len x =
  let nbytes = Stdlib.max 1 ((num_bits x + 7) / 8) in
  let nbytes =
    match len with
    | None -> nbytes
    | Some l ->
      if l < nbytes then invalid_arg "Bigint.to_bytes_be: value too large for len";
      l
  in
  let b = Bytes.make nbytes '\000' in
  (* Stream bits out of the 31-bit limbs directly (O(n)); dividing by
     256 per byte would be quadratic in the operand size. *)
  let acc = ref 0 and accbits = ref 0 and i = ref (nbytes - 1) in
  let flush () =
    while !accbits >= 8 && !i >= 0 do
      Bytes.set b !i (Char.unsafe_chr (!acc land 0xff));
      acc := !acc lsr 8;
      accbits := !accbits - 8;
      decr i
    done
  in
  Array.iter
    (fun limb ->
      acc := !acc lor (limb lsl !accbits);
      accbits := !accbits + limb_bits;
      flush ())
    x.mag;
  while !accbits > 0 && !i >= 0 do
    Bytes.set b !i (Char.chr (!acc land 0xff));
    acc := !acc lsr 8;
    accbits := !accbits - 8;
    decr i
  done;
  Bytes.to_string b

let pp fmt x = Format.pp_print_string fmt (to_string x)

(* ------------------------------------------------------------------ *)
(* Modular arithmetic.                                                 *)
(* ------------------------------------------------------------------ *)

let erem a m =
  if is_zero m then raise Division_by_zero;
  snd (divmod a (abs m))

let mod_add a b m = erem (add a b) m
let mod_sub a b m = erem (sub a b) m
let mod_mul a b m = erem (mul a b) m

let gcd a b =
  let rec go a b = if is_zero b then a else go b (erem a b) in
  go (abs a) (abs b)

let egcd a b =
  (* Iterative extended Euclid on signed values. *)
  let rec go old_r r old_s s old_t t =
    if is_zero r then (old_r, old_s, old_t)
    else begin
      let q = div old_r r in
      go r (sub old_r (mul q r)) s (sub old_s (mul q s)) t (sub old_t (mul q t))
    end
  in
  let g, x, y = go a b one zero zero one in
  if sign g < 0 then (neg g, neg x, neg y) else (g, x, y)

let mod_inv a m =
  let m = abs m in
  if compare m two < 0 then None
  else begin
    let g, x, _ = egcd (erem a m) m in
    if equal g one then Some (erem x m) else None
  end

(* --- Montgomery exponentiation (odd modulus) ----------------------- *)

(* Inverse of an odd limb modulo 2^31 by Newton iteration. *)
let limb_inv n0 =
  let x = ref n0 in
  for _ = 1 to 5 do
    x := (!x * (2 - (n0 * !x))) land mask
  done;
  !x land mask

(* Precomputed per-modulus Montgomery state. Everything [mod_pow]
   re-derives on every call — the limb inverse, [R mod m], and the
   conversion of the base into Montgomery form by a general division —
   is either stored here or replaced by one Montgomery multiplication
   against [R² mod m]. A context is immutable after [create], so one
   context per modulus serves any number of domains concurrently. *)
module Mont = struct
  type ctx = {
    ctx_modulus : t;
    mmag : int array;
    k : int;
    m0' : int;
    r1 : int array;  (* R mod m, R = 2^(k·limb_bits) *)
    r2 : int array;  (* R² mod m: one mont_mul against it converts into the domain *)
  }

  let create m =
    if compare m two < 0 then invalid_arg "Bigint.Mont.create: modulus <= 1";
    if is_even m then invalid_arg "Bigint.Mont.create: even modulus";
    let m = abs m in
    let mmag = m.mag in
    let k = Array.length mmag in
    let r = shift_left one (k * limb_bits) in
    { ctx_modulus = m;
      mmag;
      k;
      m0' = (base - limb_inv mmag.(0)) land mask;
      r1 = (erem r m).mag;
      r2 = (erem (mul r r) m).mag }

  let modulus c = c.ctx_modulus

  let pow c b e =
    if sign e < 0 then invalid_arg "Bigint.mod_pow: negative exponent";
    if is_zero e then erem one c.ctx_modulus
    else begin
    (* Allocation-free Montgomery ladder: operands live in fixed (k+1)-limb
       buffers (top limb zero between operations since values stay < m),
       products and REDC run in one shared scratch buffer. *)
    let { mmag; k; m0'; _ } = c in
    let t = Array.make ((2 * k) + 2) 0 in
    (* REDC t in place, write the (< m) result into dst (k+1 limbs). *)
    let redc_into dst =
      for i = 0 to k - 1 do
        let u = (t.(i) * m0') land mask in
        if u <> 0 then begin
          let carry = ref 0 in
          for j = 0 to k - 1 do
            let p = (u * mmag.(j)) + t.(i + j) + !carry in
            t.(i + j) <- p land mask;
            carry := p lsr limb_bits
          done;
          let j = ref (i + k) in
          while !carry <> 0 do
            let s2 = t.(!j) + !carry in
            t.(!j) <- s2 land mask;
            carry := s2 lsr limb_bits;
            incr j
          done
        end
      done;
      Array.blit t k dst 0 (k + 1);
      (* Result is < 2m: one conditional subtraction normalises it. *)
      let ge =
        dst.(k) <> 0
        ||
        let rec cmp i = if i < 0 then true else if dst.(i) <> mmag.(i) then dst.(i) > mmag.(i) else cmp (i - 1) in
        cmp (k - 1)
      in
      if ge then begin
        let borrow = ref 0 in
        for i = 0 to k - 1 do
          let d = dst.(i) - mmag.(i) - !borrow in
          if d < 0 then begin
            dst.(i) <- d + base;
            borrow := 1
          end
          else begin
            dst.(i) <- d;
            borrow := 0
          end
        done;
        dst.(k) <- dst.(k) - !borrow
      end
    in
    let mont_mul_into dst a bm =
      Array.fill t 0 ((2 * k) + 2) 0;
      for i = 0 to k do
        let ai = a.(i) in
        if ai <> 0 then begin
          let carry = ref 0 in
          for j = 0 to k do
            let p = (ai * bm.(j)) + t.(i + j) + !carry in
            t.(i + j) <- p land mask;
            carry := p lsr limb_bits
          done;
          (* i + k + 1 <= 2k + 1: inside the scratch buffer. *)
          if !carry <> 0 then t.(i + k + 1) <- t.(i + k + 1) + !carry
        end
      done;
      redc_into dst
    in
    (* Dedicated squaring: each cross product a_i·a_j (i < j) is
       accumulated once and the whole buffer doubled afterwards —
       doubling p in place could overflow 63-bit ints at 31-bit limbs,
       the separate pass cannot. Halves the product-phase multiplies;
       squarings are ~80% of a big-exponent ladder. *)
    let mont_sqr_into dst a =
      Array.fill t 0 ((2 * k) + 2) 0;
      for i = 0 to k do
        let ai = a.(i) in
        if ai <> 0 then begin
          let carry = ref 0 in
          for j = i + 1 to k do
            let p = (ai * a.(j)) + t.(i + j) + !carry in
            t.(i + j) <- p land mask;
            carry := p lsr limb_bits
          done;
          if !carry <> 0 then t.(i + k + 1) <- t.(i + k + 1) + !carry
        end
      done;
      let carry = ref 0 in
      for idx = 0 to (2 * k) + 1 do
        let v = (t.(idx) lsl 1) + !carry in
        t.(idx) <- v land mask;
        carry := v lsr limb_bits
      done;
      let carry = ref 0 in
      for i = 0 to k do
        let p = a.(i) * a.(i) in
        let s = t.(2 * i) + (p land mask) + !carry in
        t.(2 * i) <- s land mask;
        let s2 = t.((2 * i) + 1) + (p lsr limb_bits) + (s lsr limb_bits) in
        t.((2 * i) + 1) <- s2 land mask;
        carry := s2 lsr limb_bits
      done;
      redc_into dst
    in
    let to_buf mag =
      let buf = Array.make (k + 1) 0 in
      Array.blit mag 0 buf 0 (Array.length mag);
      buf
    in
    (* Into Montgomery form by one multiplication against the cached R²:
       REDC(b · R²) = b·R mod m — no general division on this path. *)
    let b_mont = Array.make (k + 1) 0 in
    mont_mul_into b_mont (to_buf (erem b c.ctx_modulus).mag) (to_buf c.r2);
    if Array.for_all (fun l -> l = 0) b_mont then zero
    else begin
      let acc = ref (to_buf c.r1) and tmp = ref (Array.make (k + 1) 0) in
      let bits = num_bits e in
      (* Sliding-window: precompute the odd powers b^1, b^3, …,
         b^(2^w - 1) in Montgomery form, then consume the exponent in
         windows that end on a set bit — bits/(w+1) multiplies instead
         of bits/2, with the squaring count unchanged. *)
      let w =
        if bits <= 32 then 1
        else if bits <= 160 then 3
        else if bits <= 768 then 4
        else if bits <= 3072 then 5
        else if bits <= 12288 then 6
        else 7
      in
      let tbl = Array.make (1 lsl (w - 1)) [||] in
      tbl.(0) <- b_mont;
      if w > 1 then begin
        let bsq = Array.make (k + 1) 0 in
        mont_sqr_into bsq tbl.(0);
        for i = 1 to Array.length tbl - 1 do
          let d = Array.make (k + 1) 0 in
          mont_mul_into d tbl.(i - 1) bsq;
          tbl.(i) <- d
        done
      end;
      let advance src =
        mont_mul_into !tmp !acc src;
        let swap = !acc in
        acc := !tmp;
        tmp := swap
      in
      let advance_sq () =
        mont_sqr_into !tmp !acc;
        let swap = !acc in
        acc := !tmp;
        tmp := swap
      in
      let i = ref (bits - 1) in
      while !i >= 0 do
        if not (testbit e !i) then begin
          advance_sq ();
          decr i
        end
        else begin
          (* Largest window [j, i] of width <= w whose low bit is set. *)
          let j = ref (Stdlib.max 0 (!i - w + 1)) in
          while not (testbit e !j) do
            incr j
          done;
          for _ = 1 to !i - !j + 1 do
            advance_sq ()
          done;
          let v = ref 0 in
          for bi = !i downto !j do
            v := (!v lsl 1) lor (if testbit e bi then 1 else 0)
          done;
          advance tbl.(!v lsr 1);
          i := !j - 1
        end
      done;
      (* Convert out of Montgomery form: REDC(acc * 1). *)
      Array.fill t 0 ((2 * k) + 2) 0;
      Array.blit !acc 0 t 0 (k + 1);
      redc_into !tmp;
      make 1 (nat_normalize (Array.copy !tmp))
    end
    end
end

let mod_pow b e m =
  if sign e < 0 then invalid_arg "Bigint.mod_pow: negative exponent";
  if compare m two < 0 then invalid_arg "Bigint.mod_pow: modulus <= 1";
  if is_zero e then erem one m
  else if is_even m then begin
    (* Rare path: plain square-and-multiply with division-based reduction. *)
    let b = erem b m in
    let bits = num_bits e in
    let acc = ref (erem one m) in
    for i = bits - 1 downto 0 do
      acc := mod_mul !acc !acc m;
      if testbit e i then acc := mod_mul !acc b m
    done;
    !acc
  end
  else Mont.pow (Mont.create m) b e

(* Repeated squaring for anchor-chain extension: for odd [m], returns
   [| x^(2^w); x^(2^(2w)); ...; x^(2^(count*w)) |] mod m with ONE
   Montgomery setup for the whole batch. Calling [mod_pow] per step
   would pay the setup division and the two domain conversions every
   [w] bits, roughly doubling the per-bit cost of the chain. *)
let mont_square_chain x w count m =
  let mmag = (abs m).mag in
  let k = Array.length mmag in
  let m0' = (base - limb_inv mmag.(0)) land mask in
  let t = Array.make ((2 * k) + 2) 0 in
  let redc_into dst =
    for i = 0 to k - 1 do
      let u = (t.(i) * m0') land mask in
      if u <> 0 then begin
        let carry = ref 0 in
        for j = 0 to k - 1 do
          let p = (u * mmag.(j)) + t.(i + j) + !carry in
          t.(i + j) <- p land mask;
          carry := p lsr limb_bits
        done;
        let j = ref (i + k) in
        while !carry <> 0 do
          let s2 = t.(!j) + !carry in
          t.(!j) <- s2 land mask;
          carry := s2 lsr limb_bits;
          incr j
        done
      end
    done;
    Array.blit t k dst 0 (k + 1);
    let ge =
      dst.(k) <> 0
      ||
      let rec cmp i = if i < 0 then true else if dst.(i) <> mmag.(i) then dst.(i) > mmag.(i) else cmp (i - 1) in
      cmp (k - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to k - 1 do
        let d = dst.(i) - mmag.(i) - !borrow in
        if d < 0 then begin
          dst.(i) <- d + base;
          borrow := 1
        end
        else begin
          dst.(i) <- d;
          borrow := 0
        end
      done;
      dst.(k) <- dst.(k) - !borrow
    end
  in
  let mont_mul_into dst a bm =
    Array.fill t 0 ((2 * k) + 2) 0;
    for i = 0 to k do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to k do
          let p = (ai * bm.(j)) + t.(i + j) + !carry in
          t.(i + j) <- p land mask;
          carry := p lsr limb_bits
        done;
        if !carry <> 0 then t.(i + k + 1) <- t.(i + k + 1) + !carry
      end
    done;
    redc_into dst
  in
  let xm = (erem (shift_left (erem x m) (k * limb_bits)) m).mag in
  let to_buf mag =
    let buf = Array.make (k + 1) 0 in
    Array.blit mag 0 buf 0 (Array.length mag);
    buf
  in
  let acc = ref (to_buf xm) and tmp = ref (Array.make (k + 1) 0) in
  let conv = Array.make (k + 1) 0 in
  let out = Array.make count zero in
  for i = 0 to count - 1 do
    for _ = 1 to w do
      mont_mul_into !tmp !acc !acc;
      let s = !acc in
      acc := !tmp;
      tmp := s
    done;
    (* Out of Montgomery form: REDC(acc · 1) — one half-pass, the only
       per-anchor overhead beyond the [w] squarings themselves. *)
    Array.fill t 0 ((2 * k) + 2) 0;
    Array.blit !acc 0 t 0 (k + 1);
    redc_into conv;
    out.(i) <- make 1 (nat_normalize (Array.copy conv))
  done;
  out

(* ------------------------------------------------------------------ *)
(* Fixed-base exponentiation.                                          *)
(* ------------------------------------------------------------------ *)

module Fixed_base = struct
  (* Fixed-base windowed exponentiation (Brickell-Gordon-McCurley-Wilson
     with 8-bit windows). anchors.(i) = base^(2^(8*i)) mod modulus, so an
     exponent's byte digits select anchors directly:

       base^e = Π_i anchors.(i)^(digit_i e)
              = Π_{d=255..1} (Π_{i : digit_i = d} anchors.(i))^d

     The bucket products cost one multiply per nonzero digit, and the
     outer Π c_d^d telescopes with a running product — ~B/8 + 510
     multiplies for a B-bit exponent, versus B squarings for a ladder.
     The anchor chain (B squarings) is computed once per base and
     amortized over every later call.

     Digits are processed in fixed-size segments of [chunk_bits]; each
     segment's partial product is an independent task a domain pool can
     run in parallel, and the combine order (ascending segment) is fixed
     by the exponent size alone, so results never depend on scheduling. *)

  let window = 8 (* bits per anchor: digits are exponent bytes *)

  type powers = {
    fb_modulus : t;
    fb_base : t;
    fb_chunk : int; (* segment granularity in exponent bits *)
    fb_seg_digits : int; (* = fb_chunk / window *)
    fb_lock : Mutex.t;
    mutable fb_anchors : t array;
    mutable fb_count : int;
  }

  let create ?(chunk_bits = 32768) ~modulus base =
    if chunk_bits < window then invalid_arg "Bigint.Fixed_base.create: chunk_bits < 8";
    if compare modulus two < 0 then invalid_arg "Bigint.Fixed_base.create: modulus <= 1";
    let b0 = erem base modulus in
    { fb_modulus = modulus;
      fb_base = b0;
      fb_chunk = chunk_bits;
      fb_seg_digits = Stdlib.max 1 (chunk_bits / window);
      fb_lock = Mutex.create ();
      fb_anchors = Array.make 8 b0;
      fb_count = 1 }

  let base fb = fb.fb_base
  let modulus fb = fb.fb_modulus
  let chunk_bits fb = fb.fb_chunk

  (* Growing the chain costs one squaring per bit of coverage — as much
     as a whole direct exponentiation — so callers without reuse or
     parallelism to recoup the investment check [ready] first. *)
  let ready fb e =
    let digits = (num_bits e + window - 1) / window in
    Mutex.lock fb.fb_lock;
    let n = fb.fb_count in
    Mutex.unlock fb.fb_lock;
    digits <= n

  (* Extend the anchor chain through index k and return an immutable
     snapshot, so concurrent [pow] calls never observe a resize. *)
  let anchors_through fb k =
    Mutex.lock fb.fb_lock;
    let snapshot =
      try
        if k >= fb.fb_count then begin
          if k >= Array.length fb.fb_anchors then begin
            let bigger = Array.make (Stdlib.max (k + 1) (2 * Array.length fb.fb_anchors)) zero in
            Array.blit fb.fb_anchors 0 bigger 0 fb.fb_count;
            fb.fb_anchors <- bigger
          end;
          let need = k + 1 - fb.fb_count in
          if is_odd fb.fb_modulus then begin
            let sq = mont_square_chain fb.fb_anchors.(fb.fb_count - 1) window need fb.fb_modulus in
            Array.blit sq 0 fb.fb_anchors fb.fb_count need
          end
          else begin
            let step = shift_left one window in
            for j = fb.fb_count to k do
              fb.fb_anchors.(j) <- mod_pow fb.fb_anchors.(j - 1) step fb.fb_modulus
            done
          end;
          fb.fb_count <- k + 1
        end;
        Array.sub fb.fb_anchors 0 (k + 1)
      with e ->
        Mutex.unlock fb.fb_lock;
        raise e
    in
    Mutex.unlock fb.fb_lock;
    snapshot

  (* BGMW aggregation of one digit segment [lo, hi): bucket the anchors
     by digit value, then Π_{d} c_d^d via the telescoping double fold. *)
  let segment fb (digits : string) anchors lo hi =
    let m = fb.fb_modulus in
    let buckets = Array.make 256 None in
    for i = lo to hi - 1 do
      let d = Char.code digits.[i] in
      if d > 0 then
        buckets.(d) <-
          (match buckets.(d) with
           | None -> Some anchors.(i)
           | Some c -> Some (mod_mul c anchors.(i) m))
    done;
    let acc = ref None and running = ref None in
    for d = 255 downto 1 do
      (match buckets.(d) with
       | None -> ()
       | Some c ->
         running := Some (match !running with None -> c | Some r -> mod_mul r c m));
      match !running with
      | None -> ()
      | Some r -> acc := Some (match !acc with None -> r | Some a -> mod_mul a r m)
    done;
    !acc

  let pow ?run fb e =
    if sign e < 0 then invalid_arg "Bigint.Fixed_base.pow: negative exponent";
    let one_m = erem one fb.fb_modulus in
    if is_zero e then one_m
    else begin
      (* Little-endian byte digits of the exponent. *)
      let be = to_bytes_be e in
      let nd = String.length be in
      let digits = String.init nd (fun i -> be.[nd - 1 - i]) in
      let anchors = anchors_through fb (nd - 1) in
      let nseg = (nd + fb.fb_seg_digits - 1) / fb.fb_seg_digits in
      let thunks =
        Array.init nseg (fun s ->
            fun () ->
              let lo = s * fb.fb_seg_digits in
              let hi = Stdlib.min nd (lo + fb.fb_seg_digits) in
              match segment fb digits anchors lo hi with
              | Some v -> v
              | None -> one)
      in
      let parts =
        match run with
        | Some run -> run thunks
        | None -> Array.map (fun f -> f ()) thunks
      in
      (* Deterministic combine order: ascending segment index. *)
      Array.fold_left (fun acc p -> mod_mul acc p fb.fb_modulus) one_m parts
    end
end
