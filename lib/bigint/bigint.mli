(** Arbitrary-precision signed integers.

    The sealed build environment has no [zarith], so every cryptographic
    substrate in this repository (RSA accumulator, trapdoor permutation,
    multiset hash over a prime field, primality testing) rests on this
    module. Magnitudes are little-endian arrays of 31-bit limbs; division
    is Knuth's Algorithm D; modular exponentiation uses Montgomery
    multiplication for odd moduli. *)

type t
(** An immutable arbitrary-precision integer. *)

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Construction and conversion} *)

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optionally sign-prefixed decimal string.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering, e.g. ["-12345"]. *)

val of_hex : string -> t
(** Parses an unsigned hexadecimal string (no ["0x"] prefix).
    @raise Invalid_argument on malformed input. *)

val to_hex : t -> string
(** Lowercase hexadecimal rendering of the absolute value. *)

val of_bytes_be : string -> t
(** Interprets a byte string as an unsigned big-endian integer. *)

val to_bytes_be : ?len:int -> t -> string
(** Big-endian byte rendering of the absolute value. With [~len] the
    result is left-padded with zero bytes to exactly [len] bytes.
    @raise Invalid_argument if the value needs more than [len] bytes. *)

val pp : Format.formatter -> t -> unit

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val add_int : t -> int -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= r < |b|]
    (Euclidean division). @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val divmod_int : t -> int -> t * int
(** Euclidean division by a positive native int [< 2^31].
    @raise Invalid_argument when the divisor is out of range. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. *)

(** {1 Bit operations} *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude (sign preserved). *)

val num_bits : t -> int
(** Bit length of the absolute value; [num_bits zero = 0]. *)

val testbit : t -> int -> bool
(** [testbit x i] is bit [i] of the absolute value. *)

val is_even : t -> bool
val is_odd : t -> bool

(** {1 Modular arithmetic} *)

val erem : t -> t -> t
(** [erem a m] is the least non-negative residue of [a] modulo [|m|]. *)

val mod_add : t -> t -> t -> t
val mod_sub : t -> t -> t -> t
val mod_mul : t -> t -> t -> t

val mod_pow : t -> t -> t -> t
(** [mod_pow b e m] is [b^e mod m] for [e >= 0], [m > 1]. Uses Montgomery
    multiplication when [m] is odd. @raise Invalid_argument on negative
    exponent or modulus [<= 1]. *)

(** Precomputed per-modulus Montgomery state for repeated
    exponentiation with {e varying} bases modulo one odd modulus
    (complementing {!Fixed_base}, which fixes the base). [create]
    derives once what {!mod_pow} re-derives per call — the limb
    inverse, [R mod m] and [R² mod m] — and converts bases into the
    Montgomery domain with one multiplication instead of a general
    division. A context is immutable after [create] and safe to share
    across domains. *)
module Mont : sig
  type ctx

  val create : t -> ctx
  (** @raise Invalid_argument when the modulus is even or [<= 1]. *)

  val modulus : ctx -> t

  val pow : ctx -> t -> t -> t
  (** [pow c b e] is exactly [mod_pow b e (modulus c)] for [e >= 0].
      @raise Invalid_argument on a negative exponent. *)
end

val gcd : t -> t -> t

val egcd : t -> t -> t * t * t
(** [egcd a b] is [(g, x, y)] with [a*x + b*y = g = gcd a b], [g >= 0]. *)

val mod_inv : t -> t -> t option
(** [mod_inv a m] is the inverse of [a] modulo [m], when it exists. *)

(** {1 Fixed-base exponentiation}

    Repeated exponentiation of one base (the accumulator generator [g],
    or an accumulation value [Ac]) modulo one modulus, by fixed-base
    windowing (Brickell-Gordon-McCurley-Wilson, 8-bit windows). A chain
    of anchors [base^(2^(8·i))] is grown lazily and cached; an
    exponent's byte digits then select anchors whose bucketed products
    give the answer in roughly [bits/8] multiplications — versus [bits]
    squarings for a ladder — once the chain exists. Digit segments are
    independent tasks a domain pool can run in parallel. Thread-safe;
    results are exactly [mod_pow base e modulus] regardless of
    segmentation or the [run] hook. *)
module Fixed_base : sig
  type powers
  (** Cached anchor chain for one (base, modulus) pair. Memory is one
      group element per 8 exponent bits covered. *)

  val create : ?chunk_bits:int -> modulus:t -> t -> powers
  (** [create ~modulus base]. [chunk_bits] (default 32768) sets the
      segment granularity handed to the pool, not the window. The chain
      extends itself on demand; extension cost is one squaring per bit,
      paid once and amortized over all later {!pow} calls. *)

  val base : powers -> t
  val modulus : powers -> t
  val chunk_bits : powers -> int

  val ready : powers -> t -> bool
  (** Whether the anchor chain already covers exponent [e], i.e. {!pow}
      would pay no extension cost. Growing the chain costs one squaring
      per bit of new coverage — as much as one direct exponentiation —
      so sequential callers consult this before investing. *)

  val pow : ?run:((unit -> t) array -> t array) -> powers -> t -> t
  (** [pow fb e] is [mod_pow (base fb) e (modulus fb)] for [e >= 0],
      computed as independent digit-segment aggregations of
      [chunk_bits] exponent bits each. [~run] evaluates the segment
      thunks — pass [Parallel.Pool.run_all pool] to spread them across
      domains; the default evaluates sequentially. The combine order is
      fixed (ascending segment index), so the result is identical
      either way.
      @raise Invalid_argument on a negative exponent. *)
end
