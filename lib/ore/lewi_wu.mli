(** Baseline ORE: Lewi-Wu (CCS 2016) small-domain left/right scheme,
    one block over the whole domain. Ablation comparator for SORE:
    constant-time comparison but O(2^width) right-ciphertexts. *)

type key

val max_width : int
(** Hard cap (12 bits) — the right ciphertext is domain-sized. *)

val keygen : rng:Drbg.t -> key

type left
type right

val encrypt_left : key -> width:int -> int -> left
val encrypt_right : rng:Drbg.t -> key -> width:int -> int -> right

val compare_ct : left -> right -> int
(** [-1], [0] or [1] for [x < y], [x = y], [x > y]. *)

val left_bytes : left -> int
val right_bytes : right -> int
