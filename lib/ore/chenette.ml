(* Baseline: the practical ORE of Chenette, Lewi, Weis & Wu (FSE 2016).

   Each bit i contributes u_i = F(k, i ‖ prefix) + v_i (mod 3). Comparing
   two ciphertexts scans for the first differing position m; there the
   prefixes agree, so u_m(x) - u_m(y) = x_m - y_m (mod 3) reveals the
   order. Leaks the index of the first differing bit — strictly more than
   SORE inside the SSE protocol, and the comparison is positional rather
   than a keyword match, which is why the paper could not use it
   directly. *)

type key = string

let keygen ~rng = Drbg.generate rng 16

type ciphertext = { u : int array; width : int }

let encrypt key ~width v =
  Bitvec.check_value ~width v;
  let kd = Hmac.create ~key in
  let u =
    Array.init width (fun k ->
        let i = k + 1 in
        let pfx = Bitvec.prefix ~width v (i - 1) in
        let f = Hmac.prf128_keyed kd (Bytesutil.concat [ "clww"; string_of_int i; pfx ]) in
        let r = Char.code f.[0] mod 3 in
        (r + Bitvec.bit ~width v i) mod 3)
  in
  { u; width }

(* Returns -1, 0 or 1 for x < y, x = y, x > y. *)
let compare_ct x y =
  if x.width <> y.width then invalid_arg "Chenette: width mismatch";
  let rec scan i =
    if i >= x.width then 0
    else if x.u.(i) = y.u.(i) then scan (i + 1)
    else if (x.u.(i) - y.u.(i) + 3) mod 3 = 1 then 1
    else -1
  in
  scan 0

let ciphertext_bytes ct =
  (* Two bits per mod-3 symbol, packed: ceil(width / 4) bytes. *)
  (ct.width + 3) / 4

let first_diff_index x y =
  (* The scheme's characteristic leakage, exposed for tests/benches. *)
  let rec scan i = if i >= x.width then None else if x.u.(i) <> y.u.(i) then Some (i + 1) else scan (i + 1) in
  scan 0
