(** Bit-level codec for SORE tuples.

    The paper indexes bits of a [b]-bit value from 1 (most significant)
    to [b] (least significant); [v_(i-1)] is the prefix of bits
    [1..i-1]. A tuple is the triple (prefix, bit, order condition),
    optionally prefixed by an attribute name for multi-attribute data. *)

type order = Gt | Lt
(** The order conditions ">" and "<". *)

val order_to_string : order -> string
val pp_order : Format.formatter -> order -> unit

val max_width : int
(** Largest supported value width in bits (30, so native ints hold every
    value comfortably; the paper evaluates 8/16/24). *)

val check_value : width:int -> int -> unit
(** @raise Invalid_argument unless [0 <= v < 2^width] and
    [1 <= width <= max_width]. *)

val bit : width:int -> int -> int -> int
(** [bit ~width v i] is bit [i] of [v] in the paper's 1-based MSB-first
    numbering, as 0 or 1. *)

val prefix : width:int -> int -> int -> string
(** [prefix ~width v i] is [v_(i)]: the first [i] bits as a string of
    ['0']/['1'] characters ([i = 0] gives [""]). *)

val token_tuple : ?attr:string -> width:int -> int -> order -> int -> string
(** [token_tuple ~attr ~width v oc i] is the i-th query tuple
    [a ‖ v_(i-1) ‖ v_i ‖ oc], encoded unambiguously. *)

val cipher_tuple : ?attr:string -> width:int -> int -> int -> string
(** [cipher_tuple ~attr ~width v i] is the i-th ciphertext tuple
    [a ‖ v_(i-1) ‖ ¬v_i ‖ cmp(¬v_i, v_i)]. *)

val token_tuples : ?attr:string -> width:int -> int -> order -> string list
(** All [b] query tuples for a value, in bit order (callers shuffle). *)

val cipher_tuples : ?attr:string -> width:int -> int -> string list
(** All [b] ciphertext tuples for a value, in bit order. *)

val equality_keyword : ?attr:string -> width:int -> int -> string
(** The keyword under which the value itself is indexed for equality
    search (the [w = v] case of the Build protocol). *)
