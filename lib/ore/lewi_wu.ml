(* Baseline: the small-domain left/right ORE of Lewi & Wu (CCS 2016),
   specialised to one block covering the whole domain.

   A left encryption of x is (F(k,x), its permuted slot); a right
   encryption of y is a nonce plus, for every domain element x', the
   value cmp(x', y) blinded by H(F(k,x'), nonce). Comparison needs one
   slot lookup — but the right ciphertext is O(2^width), which is exactly
   the succinctness gap the SORE ablation bench quantifies. Practical
   only for small widths (the constructors enforce width <= 12). *)

type key = {
  prf_key : string;
  perm_key : string;
  prf_kd : Hmac.keyed;  (* keyed contexts: every slot evaluation shares them *)
  perm_kd : Hmac.keyed;
}

let max_width = 12

let keygen ~rng =
  let prf_key = Drbg.generate rng 16 and perm_key = Drbg.generate rng 16 in
  { prf_key;
    perm_key;
    prf_kd = Hmac.create ~key:prf_key;
    perm_kd = Hmac.create ~key:perm_key }

type left = { lx : string; lpos : int; lwidth : int }
type right = { nonce : string; slots : int array; rwidth : int }

let check_width width =
  if width < 1 || width > max_width then invalid_arg "Lewi_wu: width must be in [1, 12]"

(* Pseudorandom permutation of the domain: sort domain elements by a
   keyed hash. Memoized per (key, width) — the sort is O(d log d). *)
let perm_cache : (string * int, int array) Hashtbl.t = Hashtbl.create 8

let permutation key ~width =
  match Hashtbl.find_opt perm_cache (key.perm_key, width) with
  | Some p -> p
  | None ->
    let domain = 1 lsl width in
    let ranked =
      Array.init domain (fun v ->
          (Hmac.prf128_keyed key.perm_kd (Bytesutil.concat [ "pos"; string_of_int v ]), v))
    in
    Array.sort compare ranked;
    (* p.(v) = permuted position of domain element v. *)
    let p = Array.make domain 0 in
    Array.iteri (fun pos (_, v) -> p.(v) <- pos) ranked;
    Hashtbl.replace perm_cache (key.perm_key, width) p;
    p

let hash_cmp fk nonce = Char.code (Hmac.prf128 ~key:fk nonce).[0] mod 3

let encrypt_left key ~width x =
  check_width width;
  Bitvec.check_value ~width x;
  { lx = Hmac.prf128_keyed key.prf_kd (Bytesutil.concat [ "lw"; string_of_int x ]);
    lpos = (permutation key ~width).(x);
    lwidth = width }

let encrypt_right ~rng key ~width y =
  check_width width;
  Bitvec.check_value ~width y;
  let domain = 1 lsl width in
  let nonce = Drbg.generate rng 16 in
  let perm = permutation key ~width in
  (* cmp codes: 0 equal, 1 greater (x' > y), 2 less. *)
  let slots = Array.make domain 0 in
  for x' = 0 to domain - 1 do
    let cmp = if x' = y then 0 else if x' > y then 1 else 2 in
    let fk = Hmac.prf128_keyed key.prf_kd (Bytesutil.concat [ "lw"; string_of_int x' ]) in
    slots.(perm.(x')) <- (cmp + hash_cmp fk nonce) mod 3
  done;
  { nonce; slots; rwidth = width }

(* Returns -1, 0, 1 for x < y, x = y, x > y. *)
let compare_ct (l : left) (r : right) =
  if l.lwidth <> r.rwidth then invalid_arg "Lewi_wu: width mismatch";
  match (r.slots.(l.lpos) - hash_cmp l.lx r.nonce + 3) mod 3 with
  | 0 -> 0
  | 1 -> 1
  | _ -> -1

let right_bytes (r : right) = 16 + ((Array.length r.slots + 3) / 4)
let left_bytes (_ : left) = 16 + 4
