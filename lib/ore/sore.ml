type key = string

let keygen ~rng = Drbg.generate rng 16

let key_of_bytes s =
  if String.length s <> 16 then invalid_arg "Sore.key_of_bytes: need 16 bytes";
  s

type ciphertext = { ct_slices : string list; ct_width : int }
type token = { tk_slices : string list; tk_width : int }

let shuffle ~rng xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Drbg.uniform_int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* All b slices of one ciphertext/token share the key: one keyed context
   per call halves the per-slice hashing. *)
let encrypt ?attr ~rng key ~width v =
  let kd = Hmac.create ~key in
  let slices = List.map (Hmac.prf128_keyed kd) (Bitvec.cipher_tuples ?attr ~width v) in
  { ct_slices = shuffle ~rng slices; ct_width = width }

let token ?attr ~rng key ~width v oc =
  let kd = Hmac.create ~key in
  let slices = List.map (Hmac.prf128_keyed kd) (Bitvec.token_tuples ?attr ~width v oc) in
  { tk_slices = shuffle ~rng slices; tk_width = width }

let common_slices ct tk =
  if ct.ct_width <> tk.tk_width then invalid_arg "Sore: width mismatch";
  let set = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace set s ()) ct.ct_slices;
  List.fold_left (fun n s -> if Hashtbl.mem set s then n + 1 else n) 0 tk.tk_slices

let compare_ct ct tk = common_slices ct tk = 1

let ciphertext_bytes ct = List.fold_left (fun n s -> n + String.length s) 0 ct.ct_slices
