(** SORE — the paper's Succinct Order-Revealing Encryption (Section V-B).

    A [b]-bit value is encrypted into exactly [b] PRF values ("slices"),
    one per bit; a query [(v, oc)] likewise produces [b] slices. Theorem 1:
    [x oc y] holds iff the token slices of [(x, oc)] and the ciphertext
    slices of [y] share {e exactly one} element. Order comparison thus
    reduces to set intersection — and, inside the SSE protocol, to exact
    keyword match.

    Slices are shuffled so a single comparison does not reveal {e which}
    bit index matched. *)

type key
(** Secret PRF key. *)

val keygen : rng:Drbg.t -> key
(** Fresh 16-byte PRF key. *)

val key_of_bytes : string -> key
(** Wraps an existing 16-byte secret. @raise Invalid_argument on wrong
    length. *)

type ciphertext = private { ct_slices : string list; ct_width : int }
type token = private { tk_slices : string list; tk_width : int }

val encrypt : ?attr:string -> rng:Drbg.t -> key -> width:int -> int -> ciphertext
(** [SORE.Encrypt(k, v)]: [b] shuffled PRF slices. *)

val token : ?attr:string -> rng:Drbg.t -> key -> width:int -> int -> Bitvec.order -> token
(** [SORE.Token(k, v, oc)]: [b] shuffled PRF query slices. *)

val compare_ct : ciphertext -> token -> bool
(** [SORE.Compare(ct, tk)]: true iff exactly one slice is shared.
    @raise Invalid_argument on width mismatch. *)

val common_slices : ciphertext -> token -> int
(** Number of shared slices — 0 or 1 for honestly generated inputs
    (tested as an invariant); exposed for the leakage analysis. *)

val ciphertext_bytes : ciphertext -> int
(** Serialized ciphertext size, for the succinctness ablation. *)

val shuffle : rng:Drbg.t -> 'a list -> 'a list
(** Fisher-Yates shuffle driven by the DRBG (shared with the protocol
    layer, which shuffles search tokens the same way). *)
