(** Baseline: a simplified Boldyreva-style order-preserving encryption.

    Deterministic, stateless, range-splitting OPE: the ciphertext space
    is [2^(width + expansion)] wide and a keyed PRF recursively picks the
    split point. Strictly weaker security than any ORE (ciphertexts are
    directly comparable numbers, exposing order and approximate
    magnitude to everyone) — it is the "what CryptDB did" baseline in
    the ablation bench. *)

type key

val keygen : rng:Drbg.t -> key

val expansion : int
(** Extra ciphertext bits beyond the plaintext width (16). *)

val encrypt : key -> width:int -> int -> int
(** Deterministic order-preserving ciphertext in
    [\[0, 2^(width+expansion))]. *)

val compare_ct : int -> int -> int
(** Plain integer comparison of ciphertexts. *)
