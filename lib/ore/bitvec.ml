type order = Gt | Lt

let order_to_string = function Gt -> ">" | Lt -> "<"
let pp_order fmt oc = Format.pp_print_string fmt (order_to_string oc)

let max_width = 30

let check_value ~width v =
  if width < 1 || width > max_width then invalid_arg "Bitvec: width out of range";
  if v < 0 || v >= 1 lsl width then invalid_arg "Bitvec: value out of range"

let bit ~width v i =
  if i < 1 || i > width then invalid_arg "Bitvec.bit: index out of range";
  (v lsr (width - i)) land 1

let prefix ~width v i =
  if i < 0 || i > width then invalid_arg "Bitvec.prefix: index out of range";
  String.init i (fun k -> if bit ~width v (k + 1) = 1 then '1' else '0')

let encode ~attr ~pfx ~b ~oc =
  Bytesutil.concat [ attr; pfx; string_of_int b; order_to_string oc ]

let token_tuple ?(attr = "") ~width v oc i =
  check_value ~width v;
  encode ~attr ~pfx:(prefix ~width v (i - 1)) ~b:(bit ~width v i) ~oc

let cipher_tuple ?(attr = "") ~width v i =
  check_value ~width v;
  let vi = bit ~width v i in
  let flipped = 1 - vi in
  (* cmp(¬v_i, v_i): ¬v_i = 1 > v_i = 0 gives ">", otherwise "<". *)
  let oc = if flipped > vi then Gt else Lt in
  encode ~attr ~pfx:(prefix ~width v (i - 1)) ~b:flipped ~oc

let token_tuples ?attr ~width v oc = List.init width (fun k -> token_tuple ?attr ~width v oc (k + 1))

let cipher_tuples ?attr ~width v = List.init width (fun k -> cipher_tuple ?attr ~width v (k + 1))

let equality_keyword ?(attr = "") ~width v =
  check_value ~width v;
  Bytesutil.concat [ "eq"; attr; string_of_int width; string_of_int v ]
