type key = string

let keygen ~rng = Drbg.generate rng 16

let expansion = 16

(* PRF-driven split point: uniform in [lo, hi] derived from the current
   domain interval, so both encryptor and any other key holder agree. *)
let split kd ~dlo ~dhi ~lo ~hi =
  let tag = Bytesutil.concat [ "ope"; string_of_int dlo; string_of_int dhi ] in
  let f = Hmac.prf128_keyed kd tag in
  let raw = String.fold_left (fun acc c -> ((acc lsl 8) lor Char.code c) land max_int) 0 (String.sub f 0 7) in
  lo + (raw mod (hi - lo + 1))

let encrypt key ~width v =
  Bitvec.check_value ~width v;
  (* One keyed context serves the whole recursion (width splits + leaf). *)
  let kd = Hmac.create ~key in
  (* Invariant: the domain slice [dlo, dhi) maps into the range slice
     [rlo, rhi) with rhi - rlo >= dhi - dlo, preserving order across
     recursive splits. *)
  let rec go dlo dhi rlo rhi =
    if dhi - dlo = 1 then begin
      let tag = Bytesutil.concat [ "leaf"; string_of_int dlo ] in
      let f = Hmac.prf128_keyed kd tag in
      let raw = String.fold_left (fun acc c -> ((acc lsl 8) lor Char.code c) land max_int) 0 (String.sub f 0 7) in
      rlo + (raw mod (rhi - rlo))
    end
    else begin
      let dmid = (dlo + dhi) / 2 in
      (* Each side keeps at least as many range points as domain points. *)
      let rmid = split kd ~dlo ~dhi ~lo:(rlo + (dmid - dlo)) ~hi:(rhi - (dhi - dmid)) in
      if v < dmid then go dlo dmid rlo rmid else go dmid dhi rmid rhi
    end
  in
  go 0 (1 lsl width) 0 (1 lsl (width + expansion))

let compare_ct = Stdlib.compare
