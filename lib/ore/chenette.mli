(** Baseline ORE: Chenette-Lewi-Weis-Wu (FSE 2016) bitwise scheme.
    Ciphertexts are [width] symbols of Z_3; comparison scans for the
    first differing symbol (that index is the scheme's leakage). *)

type key

val keygen : rng:Drbg.t -> key

type ciphertext

val encrypt : key -> width:int -> int -> ciphertext

val compare_ct : ciphertext -> ciphertext -> int
(** [-1], [0] or [1] for [x < y], [x = y], [x > y]. *)

val ciphertext_bytes : ciphertext -> int

val first_diff_index : ciphertext -> ciphertext -> int option
(** 1-based index of the first differing symbol — the characteristic
    leakage of the scheme, exposed for tests and benches. *)
