(** Metrics, phase tracing and exposition for the Slicer pipeline.

    One process-global registry of named instruments — counters, gauges
    and HDR-style latency histograms — all backed by per-domain sharded
    [Atomic.t] cells so the fork-join pool and the thread-per-connection
    server record without contention, and all totals stay {e exact}.

    Phase timing uses {!span}: [span "core.build" f] runs [f] and
    records its wall time into the histogram
    ["slicer_core_build_seconds"] (dots map to underscores, a
    [slicer_] prefix and [_seconds] suffix are added). Recording costs
    O(100 ns); with {!set_enabled}[ false] the whole layer collapses to
    a load-and-branch.

    Snapshots export as Prometheus text or JSON via {!Export}. *)

val set_enabled : bool -> unit
(** Globally enable/disable all recording (default: enabled). Disabled
    instruments still expose their last totals. *)

val enabled : unit -> bool

val set_instance : string -> unit
(** Name this process in exposition: when non-empty, every exported
    series carries an [instance="..."] label (and the JSON snapshot an
    ["instance"] field), so merged cluster scrapes — router text
    concatenated with shard texts — keep the members apart. The default
    [""] leaves the exposition format exactly as before. *)

val instance : unit -> string

module Clock : sig
  (** The process's monotonic clock ([CLOCK_MONOTONIC]). Every
      deadline, timeout and interval in the pipeline must be computed
      against this clock, never [Unix.gettimeofday]: an NTP step moves
      the wall clock and would fire every in-flight timeout early — or
      never. The epoch is arbitrary (boot-relative); only differences
      are meaningful. *)

  val now : unit -> float
  (** Monotonic seconds. *)

  val now_ns : unit -> int
  (** Monotonic nanoseconds (cheap: one [@@noalloc] C call). *)

  val elapsed_s : int -> float
  (** [elapsed_s t0] — seconds since an earlier {!now_ns} reading. *)
end

module Counter : sig
  type t

  val add : t -> int -> unit
  val incr : t -> unit

  val value : t -> int
  (** Exact sum over all shards. *)
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Summary : sig
  val percentile : float array -> float -> float
  (** [percentile sorted p] — nearest-rank percentile ([p] in percent,
      e.g. [95.]) over an already-sorted array; [nan] when empty. The
      exact formula the load driver reports. *)
end

module Histogram : sig
  type t

  (** What the recorded ints denote, and hence the export scale:
      [Seconds] histograms record nanoseconds and export seconds;
      [Raw] histograms export values unscaled (e.g. gas). *)
  type units = Seconds | Raw

  val units : t -> units

  val record : t -> int -> unit
  (** Record one non-negative observation (ns or raw units); negative
      values clamp to 0. Lock-free, allocation-free. *)

  val record_s : t -> float -> unit
  (** Record a duration given in seconds (stored as ns). *)

  val merge_into : src:t -> dst:t -> unit
  (** Fold [src]'s observations into [dst] — snapshot-equivalent to
      having recorded everything into [dst] directly. Raises
      [Invalid_argument] on a units mismatch. *)

  type snapshot = {
    sn_units : units;
    sn_count : int;
    sn_sum : int;                   (** raw units: ns or gas *)
    sn_buckets : (int * int) array; (** (inclusive upper bound, count), non-empty only *)
  }

  val snapshot : t -> snapshot

  val quantile : snapshot -> float -> float
  (** Nearest-rank quantile ([q] in [0, 1]) in raw units: the upper
      bound of the bucket holding that rank (≤ ~6% relative error);
      [nan] when empty. *)

  val bucket_of : int -> int
  (** Bucket index for a value (log-linear, 16 sub-buckets/octave). *)

  val bucket_bound : int -> int
  (** Inclusive upper bound of a bucket index. *)

  val set_exemplar : t -> value:int -> trace:int64 -> unit
  (** Remember [trace] as the most recent published trace id for the
      bucket [value] lands in (last-writer-wins; [0L] is ignored).
      Storage is allocated lazily on first use, so untraced processes
      pay nothing. *)

  val exemplars : t -> (int * int64) list
  (** [(inclusive bucket upper bound, trace id)] for every bucket that
      holds an exemplar, ascending; [[]] until {!set_exemplar} runs. *)
end

module Registry : sig
  type t

  val create : unit -> t
  (** A fresh, empty registry (for tests). *)

  val default : t
  (** The process-global registry every instrument lands in unless told
      otherwise. *)
end

val counter : ?registry:Registry.t -> ?help:string -> string -> Counter.t
(** Get-or-create: the first registration under a name wins; later
    calls return the same instrument, so independent modules can share
    a counter by name. Raises [Invalid_argument] if the name is
    registered as a different kind. *)

val gauge : ?registry:Registry.t -> ?help:string -> string -> Gauge.t

val histogram :
  ?registry:Registry.t -> ?help:string -> ?units:Histogram.units -> string -> Histogram.t

val counter_value : ?registry:Registry.t -> string -> int
(** Current value of a registered counter, 0 if absent. *)

val metric_of_span : string -> string
(** ["core.build"] → ["slicer_core_build_seconds"]. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] (exceptions included) into the histogram
    {!metric_of_span}[ name] in the default registry. When disabled,
    runs [f] directly. When the calling thread carries a live [Trace]
    context, the same interval is also recorded as a child span of the
    surrounding trace (see {!trace_enter}). *)

val find_span_histogram : string -> Histogram.t option
(** The histogram behind a span name, if that span has ever been
    recorded in this process — a cache-only lookup that never creates
    registry entries (unlike {!span} itself). *)

(** {2 Trace integration (internal)}

    Hook cells wired up by the [Trace] module at init time so {!span}
    can report finished intervals into the surrounding request trace
    without [Obs] depending on [Trace]. Not for application use. *)

val trace_live : int Atomic.t
(** Number of threads currently carrying a trace context; {!span}
    skips the hooks entirely while it reads 0. *)

val trace_enter : (string -> int) ref
(** Opens a child span on the calling thread's trace context; returns
    a non-zero token when it did. *)

val trace_exit : (unit -> unit) ref
(** Closes the innermost open span on the calling thread. *)

module Export : sig
  val to_prometheus : ?registry:Registry.t -> unit -> string
  (** Prometheus text exposition: entries sorted by name; histograms as
      cumulative [_bucket{le="..."}] lines (non-empty buckets plus
      [+Inf]) with [_sum]/[_count]. Deterministic for a given state. *)

  val to_json : ?registry:Registry.t -> unit -> string
  (** JSON snapshot: [{"counters": {...}, "gauges": {...},
      "histograms": {name: {count, sum, p50, p95, p99, buckets}}}]. *)

  val ensure_parent : string -> unit
  (** Create the parent directories of a path if missing. *)

  val write_file : string -> string -> unit
  (** Write [content] to [path], creating parent directories first. *)
end
