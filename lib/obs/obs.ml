(* Metrics, phase tracing and exposition for the whole Slicer pipeline.

   Design constraints, in order:

   1. Recording on the hot path must stay O(ns) and allocation-free:
      every instrument is an array of [int Atomic.t] cells sharded by
      the recording domain's id, so the PR-1 fork-join pool and the
      thread-per-connection server never contend on a cache line.
      Totals are exact — shards are summed at snapshot time, never
      sampled.

   2. Histograms are HDR-style log-linear over non-negative ints
      (nanoseconds for latency, raw units for gas): values below 16
      get exact buckets, larger values get 16 sub-buckets per octave,
      bounding the relative quantile error at ~6% with ~900 buckets
      total. Two histograms recorded on different domains merge into
      the same totals as one histogram recording everything.

   3. The registry is process-global by default (the service, the
      bench driver and the CLI all read the same truth), but tests can
      build isolated registries.

   Everything is guarded by one [enabled] flag; when cleared, [span]
   runs its thunk directly and recording is a single load-and-branch. *)

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* Which process this registry describes — "" for a standalone server
   (exposition format unchanged), "shard-0" / "router" in a cluster so
   one merged scrape can tell the members apart. *)
let instance_ref = ref ""
let set_instance name = instance_ref := name
let instance () = !instance_ref

module Clock = struct
  (* CLOCK_MONOTONIC via the bechamel stub (OCaml 5.1's [Unix] has no
     [clock_gettime]). Wall-clock deadlines computed from
     [Unix.gettimeofday] fire early or never when NTP steps the clock;
     everything interval-shaped must come through here. *)
  let now_ns () = Int64.to_int (Monotonic_clock.now ())

  let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

  let elapsed_s t0_ns = float_of_int (now_ns () - t0_ns) /. 1e9
end

(* Shards: a power of two comfortably above the pool sizes we run
   (domains are numbered densely from 0). Collisions just mean two
   domains share an atomic — correctness is unaffected. *)
let n_shards = 16

let shard () = (Domain.self () :> int) land (n_shards - 1)

let make_cells () = Array.init n_shards (fun _ -> Atomic.make 0)

let sum_cells cells = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells

module Counter = struct
  type t = { cells : int Atomic.t array }

  let create () = { cells = make_cells () }

  let add t n =
    if !enabled_flag then ignore (Atomic.fetch_and_add t.cells.(shard ()) n)

  let incr t = add t 1

  let value t = sum_cells t.cells
end

module Gauge = struct
  type t = { cell : int Atomic.t }

  let create () = { cell = Atomic.make 0 }

  let set t v = if !enabled_flag then Atomic.set t.cell v
  let add t n = if !enabled_flag then ignore (Atomic.fetch_and_add t.cell n)
  let value t = Atomic.get t.cell
end

module Summary = struct
  (* Nearest-rank percentile on an already sorted array — the exact
     formula the load driver has always reported, shared so bench and
     exposition agree. [p] is in percent (50., 95., ...). *)
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then Float.nan
    else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))
end

module Histogram = struct
  type units = Seconds | Raw

  (* Log-linear bucketing: [sub] linear sub-buckets per octave. *)
  let sub_bits = 4
  let sub = 1 lsl sub_bits
  let max_log2 = 59 (* values clamp at 2^60 - 1; ns up to ~36 years *)
  let n_buckets = ((max_log2 - sub_bits + 1) lsl sub_bits) + sub

  let log2i v =
    let r = ref 0 and v = ref v in
    if !v lsr 32 <> 0 then (r := !r + 32; v := !v lsr 32);
    if !v lsr 16 <> 0 then (r := !r + 16; v := !v lsr 16);
    if !v lsr 8 <> 0 then (r := !r + 8; v := !v lsr 8);
    if !v lsr 4 <> 0 then (r := !r + 4; v := !v lsr 4);
    if !v lsr 2 <> 0 then (r := !r + 2; v := !v lsr 2);
    if !v lsr 1 <> 0 then incr r;
    !r

  let bucket_of v =
    let v = if v < 0 then 0 else v in
    if v < sub then v
    else begin
      let v = if log2i v > max_log2 then (1 lsl (max_log2 + 1)) - 1 else v in
      let m = log2i v in
      ((m - sub_bits + 1) lsl sub_bits) lor ((v lsr (m - sub_bits)) land (sub - 1))
    end

  (* Largest value that lands in bucket [i] (inclusive upper bound). *)
  let bucket_bound i =
    if i < sub then i
    else begin
      let m = (i lsr sub_bits) + sub_bits - 1 in
      let s = i land (sub - 1) in
      ((sub + s + 1) lsl (m - sub_bits)) - 1
    end

  type t = {
    units : units;
    counts : int Atomic.t array array; (* shard -> bucket *)
    sums : int Atomic.t array;         (* shard *)
    (* Exemplars: the most recent published trace id per bucket, so a
       p99 bucket in the exposition links to a dumpable trace. Lazily
       allocated — only traced processes pay — and written plainly:
       last-writer-wins is exactly the wanted semantics, and 0L marks
       an empty cell (trace ids are minted non-zero). *)
    exemplar_cells : int64 array option Atomic.t;
  }

  let create ?(units = Seconds) () =
    { units;
      counts = Array.init n_shards (fun _ -> Array.init n_buckets (fun _ -> Atomic.make 0));
      sums = make_cells ();
      exemplar_cells = Atomic.make None }

  let units t = t.units

  let record t v =
    if !enabled_flag then begin
      let v = if v < 0 then 0 else v in
      let s = shard () in
      ignore (Atomic.fetch_and_add t.counts.(s).(bucket_of v) 1);
      ignore (Atomic.fetch_and_add t.sums.(s) v)
    end

  (* Latency entry point: seconds in, nanoseconds recorded. Durations
     (not absolute times) keep the float mantissa honest. *)
  let record_s t seconds = record t (int_of_float ((seconds *. 1e9) +. 0.5))

  (* Fold [src]'s cells into [dst]. Snapshot-equivalent to having
     recorded every [src] observation into [dst] directly. *)
  let merge_into ~src ~dst =
    if src.units <> dst.units then invalid_arg "Obs.Histogram.merge_into: unit mismatch";
    for s = 0 to n_shards - 1 do
      for b = 0 to n_buckets - 1 do
        let n = Atomic.get src.counts.(s).(b) in
        if n <> 0 then ignore (Atomic.fetch_and_add dst.counts.(s).(b) n)
      done;
      let v = Atomic.get src.sums.(s) in
      if v <> 0 then ignore (Atomic.fetch_and_add dst.sums.(s) v)
    done

  type snapshot = {
    sn_units : units;
    sn_count : int;
    sn_sum : int;                   (* raw units: ns or gas *)
    sn_buckets : (int * int) array; (* (inclusive upper bound, count), non-empty only *)
  }

  let snapshot t =
    let count = ref 0 in
    let buckets = ref [] in
    for b = n_buckets - 1 downto 0 do
      let n = ref 0 in
      for s = 0 to n_shards - 1 do
        n := !n + Atomic.get t.counts.(s).(b)
      done;
      if !n <> 0 then begin
        count := !count + !n;
        buckets := (bucket_bound b, !n) :: !buckets
      end
    done;
    { sn_units = t.units;
      sn_count = !count;
      sn_sum = sum_cells t.sums;
      sn_buckets = Array.of_list !buckets }

  (* Nearest-rank quantile over the bucketed counts; returns the
     inclusive upper bound of the bucket holding that rank, in raw
     units. [q] in [0, 1]. *)
  let quantile sn q =
    if sn.sn_count = 0 then Float.nan
    else begin
      let rank = max 1 (int_of_float (ceil (q *. float_of_int sn.sn_count))) in
      let rec walk i seen =
        if i >= Array.length sn.sn_buckets then Float.nan
        else begin
          let bound, n = sn.sn_buckets.(i) in
          if seen + n >= rank then float_of_int bound else walk (i + 1) (seen + n)
        end
      in
      walk 0 0
    end

  let set_exemplar t ~value ~trace =
    if trace <> 0L then begin
      let cells =
        match Atomic.get t.exemplar_cells with
        | Some a -> a
        | None ->
          let a = Array.make n_buckets 0L in
          if Atomic.compare_and_set t.exemplar_cells None (Some a) then a
          else (match Atomic.get t.exemplar_cells with Some a -> a | None -> a)
      in
      cells.(bucket_of value) <- trace
    end

  let exemplars t =
    match Atomic.get t.exemplar_cells with
    | None -> []
    | Some a ->
      let out = ref [] in
      for b = n_buckets - 1 downto 0 do
        if a.(b) <> 0L then out := (bucket_bound b, a.(b)) :: !out
      done;
      !out

  (* Display scale: raw units -> exported units. *)
  let scale t = match t with Seconds -> 1e-9 | Raw -> 1.
end

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

module Registry = struct
  type entry = { e_name : string; e_help : string; e_metric : metric }

  type t = { lock : Mutex.t; mutable entries : entry list }

  let create () = { lock = Mutex.create (); entries = [] }

  let default = create ()

  (* Registration is idempotent: the first registration under a name
     wins and later ones get the same instrument back, so a module can
     name a shared counter without owning it. A kind clash is a
     programming error. *)
  let register t name help make =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        match List.find_opt (fun e -> e.e_name = name) t.entries with
        | Some e -> e.e_metric
        | None ->
          let m = make () in
          t.entries <- { e_name = name; e_help = help; e_metric = m } :: t.entries;
          m)

  let entries t =
    Mutex.lock t.lock;
    let es = t.entries in
    Mutex.unlock t.lock;
    List.sort (fun a b -> compare a.e_name b.e_name) es
end

let counter ?(registry = Registry.default) ?(help = "") name =
  match Registry.register registry name help (fun () -> Counter (Counter.create ())) with
  | Counter c -> c
  | _ -> invalid_arg ("Obs.counter: " ^ name ^ " is registered as another kind")

let gauge ?(registry = Registry.default) ?(help = "") name =
  match Registry.register registry name help (fun () -> Gauge (Gauge.create ())) with
  | Gauge g -> g
  | _ -> invalid_arg ("Obs.gauge: " ^ name ^ " is registered as another kind")

let histogram ?(registry = Registry.default) ?(help = "") ?(units = Histogram.Seconds) name =
  match
    Registry.register registry name help (fun () -> Histogram (Histogram.create ~units ()))
  with
  | Histogram h -> h
  | _ -> invalid_arg ("Obs.histogram: " ^ name ^ " is registered as another kind")

let counter_value ?(registry = Registry.default) name =
  match List.find_opt (fun e -> e.Registry.e_name = name) (Registry.entries registry) with
  | Some { Registry.e_metric = Counter c; _ } -> Counter.value c
  | _ -> 0

(* --- spans ------------------------------------------------------------- *)

(* "core.build" -> "slicer_core_build_seconds". *)
let metric_of_span name =
  let mapped = String.map (fun c -> if c = '.' || c = '-' then '_' else c) name in
  "slicer_" ^ mapped ^ "_seconds"

module Smap = Map.Make (String)

(* Lock-free lookup on the hot path: an immutable map behind an atomic,
   CAS-published on the (rare) first use of a span name. Registration
   idempotency guarantees racers resolve to the same histogram. *)
let span_cache : Histogram.t Smap.t Atomic.t = Atomic.make Smap.empty

let span_histogram name =
  match Smap.find_opt name (Atomic.get span_cache) with
  | Some h -> h
  | None ->
    let h = histogram ~help:("time in span " ^ name) (metric_of_span name) in
    let rec publish () =
      let old = Atomic.get span_cache in
      if not (Smap.mem name old)
         && not (Atomic.compare_and_set span_cache old (Smap.add name h old))
      then publish ()
    in
    publish ();
    h

(* Cache-only lookup: a histogram for a span name that has actually
   been recorded, never creating one (Trace uses it to attach
   exemplars without polluting the registry with empty series). *)
let find_span_histogram name = Smap.find_opt name (Atomic.get span_cache)

(* --- trace integration -------------------------------------------------- *)

(* Hook cells installed by [Trace] at module-init time (identity when
   tracing never links). [span] consults them only when [trace_live]
   says some thread currently carries a trace context, so the untraced
   hot path pays one atomic load and a branch. [trace_enter] returns a
   non-zero token when a span was opened; [trace_exit] closes the
   innermost open span on the calling thread. *)
let trace_live : int Atomic.t = Atomic.make 0
let trace_enter : (string -> int) ref = ref (fun _ -> 0)
let trace_exit : (unit -> unit) ref = ref (fun () -> ())

let span name f =
  if not !enabled_flag then f ()
  else begin
    let h = span_histogram name in
    let tok = if Atomic.get trace_live > 0 then !trace_enter name else 0 in
    let t0 = Clock.now_ns () in
    match f () with
    | r ->
      Histogram.record h (Clock.now_ns () - t0);
      if tok <> 0 then !trace_exit ();
      r
    | exception exn ->
      Histogram.record h (Clock.now_ns () - t0);
      if tok <> 0 then !trace_exit ();
      raise exn
  end

(* --- exposition -------------------------------------------------------- *)

module Export = struct
  (* %.9g: enough digits to round-trip every bucket bound and count we
     emit, few enough to stay deterministic across platforms. *)
  let fmt_float x =
    if Float.is_nan x then "NaN" else Printf.sprintf "%.9g" x

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_prometheus ?(registry = Registry.default) () =
    let buf = Buffer.create 4096 in
    (* The instance label, when set, rides on every series so a merged
       cluster scrape (router text ^ shard texts) stays well-formed:
       same metric name, distinct label sets. Empty instance emits the
       exact pre-cluster format. *)
    let inst = !instance_ref in
    let plain = if inst = "" then "" else Printf.sprintf "{instance=\"%s\"}" inst in
    let with_le le =
      if inst = "" then Printf.sprintf "{le=\"%s\"}" le
      else Printf.sprintf "{le=\"%s\",instance=\"%s\"}" le inst
    in
    let header name help kind =
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    in
    List.iter
      (fun { Registry.e_name = name; e_help = help; e_metric } ->
        match e_metric with
        | Counter c ->
          header name help "counter";
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name plain (Counter.value c))
        | Gauge g ->
          header name help "gauge";
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name plain (Gauge.value g))
        | Histogram h ->
          let sn = Histogram.snapshot h in
          let scale = Histogram.scale sn.Histogram.sn_units in
          header name help "histogram";
          let cum = ref 0 in
          Array.iter
            (fun (bound, n) ->
              cum := !cum + n;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (with_le (fmt_float (float_of_int bound *. scale)))
                   !cum))
            sn.Histogram.sn_buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name (with_le "+Inf") sn.Histogram.sn_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name plain
               (fmt_float (float_of_int sn.Histogram.sn_sum *. scale)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name plain sn.Histogram.sn_count))
      (Registry.entries registry);
    Buffer.contents buf

  let to_json ?(registry = Registry.default) () =
    let buf = Buffer.create 4096 in
    let entries = Registry.entries registry in
    let pick f = List.filter_map f entries in
    let counters =
      pick (fun e -> match e.Registry.e_metric with
        | Counter c -> Some (e.Registry.e_name, Counter.value c)
        | _ -> None)
    in
    let gauges =
      pick (fun e -> match e.Registry.e_metric with
        | Gauge g -> Some (e.Registry.e_name, Gauge.value g)
        | _ -> None)
    in
    let hists =
      pick (fun e -> match e.Registry.e_metric with
        | Histogram h -> Some (e.Registry.e_name, h, Histogram.snapshot h)
        | _ -> None)
    in
    let scalar_obj kvs =
      String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v) kvs)
    in
    Buffer.add_string buf "{\n";
    if !instance_ref <> "" then
      Buffer.add_string buf
        (Printf.sprintf "  \"instance\": \"%s\",\n" (json_escape !instance_ref));
    Buffer.add_string buf (Printf.sprintf "  \"counters\": {%s},\n" (scalar_obj counters));
    Buffer.add_string buf (Printf.sprintf "  \"gauges\": {%s},\n" (scalar_obj gauges));
    Buffer.add_string buf "  \"histograms\": {";
    List.iteri
      (fun i (name, h, sn) ->
        let scale = Histogram.scale sn.Histogram.sn_units in
        if i > 0 then Buffer.add_string buf ",";
        let q p = fmt_float (Histogram.quantile sn p *. scale) in
        let buckets =
          String.concat ", "
            (Array.to_list
               (Array.map
                  (fun (bound, n) ->
                    Printf.sprintf "[%s, %d]" (fmt_float (float_of_int bound *. scale)) n)
                  sn.Histogram.sn_buckets))
        in
        (* Exemplars only appear once a trace has been published into
           this histogram, so untraced processes keep the exact
           pre-tracing snapshot format. *)
        let exemplars =
          match Histogram.exemplars h with
          | [] -> ""
          | exs ->
            Printf.sprintf ", \"exemplars\": [%s]"
              (String.concat ", "
                 (List.map
                    (fun (bound, trace) ->
                      Printf.sprintf "[%s, \"%016Lx\"]"
                        (fmt_float (float_of_int bound *. scale)) trace)
                    exs))
        in
        Buffer.add_string buf
          (Printf.sprintf
             "\n    \"%s\": {\"count\": %d, \"sum\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \"buckets\": [%s]%s}"
             (json_escape name) sn.Histogram.sn_count
             (fmt_float (float_of_int sn.Histogram.sn_sum *. scale))
             (q 0.5) (q 0.95) (q 0.99) buckets exemplars))
      hists;
    if hists <> [] then Buffer.add_string buf "\n  ";
    Buffer.add_string buf "}\n}\n";
    Buffer.contents buf

  let rec ensure_dir dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      ensure_dir (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let ensure_parent path = ensure_dir (Filename.dirname path)

  let write_file path content =
    ensure_parent path;
    let oc = open_out path in
    output_string oc content;
    close_out oc
end
