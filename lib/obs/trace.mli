(** Distributed per-request tracing: structured span trees with ids.

    A {e trace} is one client-visible request followed across every
    process it touches: the router mints a 64-bit trace id, stamps it
    (plus the id of the span doing the fan-out) onto each sub-request,
    and every shard's spans inherit it — so a cross-process scrape can
    reassemble the whole tree and say where a p99 outlier spent its
    time.

    Life cycle of a traced request inside one process:

    - {!root} makes the sampling decision (or adopts the upstream
      context carried on the wire) and opens the top span;
    - {!child} / {!Obs.span} open nested spans on the same thread;
      {!capture}/{!resume} carry the context onto helper threads
      (the router's fan-out);
    - finished spans accumulate in the context, and when the root
      completes the whole tree is published into a lock-free,
      per-domain, drop-oldest ring buffer (overwritten-before-drained
      spans count into ["slicer_trace_spans_dropped_total"]);
    - a [Wire.Traces] admin RPC drains the rings ({!drain}) and the
      scraper reassembles trees with {!Tree.assemble}.

    Everything is off by default: with a zero sample rate and no slow
    threshold, {!root} is a few loads and a branch (< 150 ns) and
    nothing downstream runs. *)

(** {1 Configuration} *)

val set_sample_rate : float -> unit
(** Probability in [[0, 1]] that {!root} (with no upstream context)
    starts a published trace. Clamped; default [0.]. *)

val sample_rate : unit -> float

val set_slow_ms : float option -> unit
(** Slow-query threshold: when set, {e every} request is recorded
    locally and force-published (plus logged at [warning] level on the
    [slicer.trace] source, with its phase breakdown) if the root span
    runs at least this many milliseconds. [Some 0.] publishes
    everything. Default [None]. *)

val slow_ms : unit -> float option

val log_src : Logs.src
(** The [slicer.trace] log source carrying slow-query breakdowns. *)

(** {1 Id-generator seeding} *)

val urandom64 : unit -> int64 option
(** Eight bytes of [/dev/urandom]; [None] when the device is
    unreadable (the seed then degrades to clock-and-pid mixing). *)

val seed_of : now_ns:int -> pid:int -> entropy:int64 option -> int64
(** The id generator's initial state. Pure, exposed for the collision
    regression test: two processes sharing [now_ns] {e and} [pid]
    (fork in the same scheduler tick) must still obtain distinct
    streams whenever their [entropy] words differ. *)

(** {1 Spans} *)

type span = {
  sp_trace : int64;  (** the trace this span belongs to (never 0) *)
  sp_id : int;       (** process-independent random span id (never 0) *)
  sp_parent : int;   (** parent span id; 0 = no parent known *)
  sp_name : string;  (** taxonomy name, e.g. ["router.shard"] *)
  sp_instance : string;  (** {!Obs.instance} of the recording process *)
  sp_start_ns : int; (** {!Obs.Clock.now_ns} at open *)
  sp_end_ns : int;   (** {!Obs.Clock.now_ns} at close *)
  sp_tags : (string * string) list;  (** annotations, e.g. [shard=2] *)
}

(** The trace context carried on the wire: the trace id plus the span
    to parent remote work under. Presence implies "publish". *)
type wire_ctx = { w_trace : int64; w_parent : int }

val id_to_string : int64 -> string
(** 16-char lower-case hex, e.g. ["00c0ffee00c0ffee"]. *)

val id_of_string : string -> int64 option

val root : ?remote:wire_ctx -> string -> (unit -> 'a) -> 'a
(** [root name f]: if this thread is already inside a trace, behave
    like {!child}. Otherwise adopt [remote] when present, else decide
    by sampling / slow-query config; when the decision is "no trace",
    run [f] directly. The span tree publishes when the root span
    closes (exceptions included). *)

val child : ?tags:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Record a nested span on the current thread's context; runs [f]
    directly when there is none. *)

val tag : string -> string -> unit
(** Annotate the innermost open span on this thread ([key=value]);
    no-op outside a trace. *)

val current : unit -> wire_ctx option
(** The context to stamp on an outgoing sub-request: the trace id plus
    the innermost open span as the remote parent. *)

type carrier
(** A captured context that a helper thread can {!resume}. *)

val capture : unit -> carrier option

val resume : carrier option -> (unit -> 'a) -> 'a
(** Run [f] with the captured context installed on the calling thread
    (no-op when [None] or when the thread already traces). The caller
    must ensure the originating {!root} outlives [f] — e.g. by joining
    the helper thread before returning, as the router's fan-out does. *)

(** {1 Draining and assembly} *)

val drain : unit -> span list
(** Atomically take every published-but-undrained span out of the
    rings (all domains). Spans overwritten before a drain are counted
    into ["slicer_trace_spans_dropped_total"]. *)

module Tree : sig
  type node = { n_span : span; n_children : node list }

  type t = {
    t_trace : int64;
    t_roots : node list;  (** parentless spans, ordered by start *)
    t_start_ns : int;
    t_end_ns : int;
    t_spans : int;
  }

  val assemble : span list -> t list
  (** Group by trace id and link parent pointers; spans whose parent
      was not drained become additional roots. Trees are ordered by
      start time, children within a node by start time. *)

  val duration_ms : t -> float

  val render : t -> string
  (** Indented timeline: per span the offset from the tree start, the
      duration, name, instance and tags. *)

  val to_chrome : t list -> string
  (** Chrome [trace_event] JSON (an object with a ["traceEvents"]
      array of complete events) loadable in [about:tracing] and
      Perfetto. Instances map to pids; overlapping sibling spans are
      spread across tids so every track stays properly nested. *)
end
