(* Per-request span trees. See trace.mli for the model; the notes here
   are about the concurrency discipline.

   One traced request owns a [ctx]; every thread working on it holds a
   [tstate] (its view: innermost open span + open-frame stack) in a
   CAS-published immutable map keyed by thread id. Finished spans are
   appended to the ctx under its mutex (cheap: only at span close, and
   only for the ~1% of requests that trace at all). When the root span
   closes the whole tree moves into the per-domain rings in one pass —
   the rings only ever hold spans of {e completed} trees, so a drain
   never observes a half-built trace.

   Rings are single-writer-free: writers claim a slot with
   [fetch_and_add] and store with a plain write (drop-oldest by
   construction — the array is a power-of-two window over an
   ever-growing cursor). The drain counts the cursor distance it could
   not cover as dropped spans. Racy slot reads during a concurrent
   publish can at worst surface a span twice or miss a just-written
   one — both harmless for an admin scrape, and the OCaml memory model
   keeps them memory-safe. *)

let log_src = Logs.Src.create "slicer.trace" ~doc:"Slow-query traces"

module Log = (val Logs.src_log log_src : Logs.LOG)

type span = {
  sp_trace : int64;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_instance : string;
  sp_start_ns : int;
  sp_end_ns : int;
  sp_tags : (string * string) list;
}

type wire_ctx = { w_trace : int64; w_parent : int }

let id_to_string id = Printf.sprintf "%016Lx" id

let id_of_string s =
  let ok =
    String.length s > 0 && String.length s <= 16
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
         s
  in
  if ok then Int64.of_string_opt ("0x" ^ s) else None

(* --- configuration ------------------------------------------------------ *)

let sample_rate_ref = ref 0.

let set_sample_rate p = sample_rate_ref := Float.max 0. (Float.min 1. p)

let sample_rate () = !sample_rate_ref

(* Slow threshold in ns; -1 = off. An atomic int so the per-request
   read is one load. *)
let slow_ns = Atomic.make (-1)

let set_slow_ms = function
  | None -> Atomic.set slow_ns (-1)
  | Some ms -> Atomic.set slow_ns (int_of_float (Float.max 0. ms *. 1e6))

let slow_ms () =
  match Atomic.get slow_ns with
  | n when n < 0 -> None
  | n -> Some (float_of_int n /. 1e6)

(* --- id minting and sampling (splitmix64 behind a CAS) ------------------ *)

(* Seed material beyond clock xor pid: a router and a shard forked in
   the same scheduler tick share both, and colliding streams make
   [Tree.assemble] merge two processes' spans into one bogus tree. Mix
   in /dev/urandom (finalized through splitmix64 so even a correlated
   fallback decorrelates the stream). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let urandom64 () =
  try
    let ic = open_in_bin "/dev/urandom" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let b = really_input_string ic 8 in
        let acc = ref 0L in
        String.iter
          (fun c -> acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code c)))
          b;
        Some !acc)
  with _ -> None

let seed_of ~now_ns ~pid ~entropy =
  let base =
    Int64.logxor (Int64.of_int now_ns) (Int64.mul (Int64.of_int pid) 0x9E3779B97F4A7C15L)
  in
  let base = match entropy with None -> base | Some e -> Int64.logxor (mix64 e) base in
  mix64 base

let rng =
  Atomic.make
    (seed_of ~now_ns:(Obs.Clock.now_ns ()) ~pid:(Unix.getpid ()) ~entropy:(urandom64 ()))

let next64 () =
  let rec claim () =
    let s = Atomic.get rng in
    let s' = Int64.add s 0x9E3779B97F4A7C15L in
    if Atomic.compare_and_set rng s s' then s' else claim ()
  in
  let z = claim () in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rec fresh_trace () =
  let z = next64 () in
  if z = 0L then fresh_trace () else z

let rec fresh_id () =
  let i = Int64.to_int (next64 ()) land max_int in
  if i = 0 then fresh_id () else i

(* 53-bit uniform draw in [0, 1). *)
let uniform () = Int64.to_float (Int64.shift_right_logical (next64 ()) 11) *. 0x1p-53

(* --- contexts and thread state ------------------------------------------ *)

(* Defensive cap on spans buffered per request: a runaway loop of
   [Obs.span] calls inside one traced request degrades to counting
   instead of allocating without bound. *)
let max_ctx_spans = 512

type ctx = {
  c_trace : int64;
  c_sampled : bool; (* publish unconditionally at root close *)
  c_lock : Mutex.t;
  mutable c_spans : span list; (* finished spans, root recorded last *)
  mutable c_count : int;
  mutable c_lost : int;
}

type frame = { f_id : int; f_name : string; f_t0 : int; f_saved : int }

type tstate = {
  ts_ctx : ctx;
  mutable ts_parent : int; (* innermost open span id (or remote parent) *)
  mutable ts_stack : frame list;
  mutable ts_tags : (int * (string * string)) list; (* pending, per span id *)
}

type carrier = { cr_ctx : ctx; cr_parent : int }

module Imap = Map.Make (Int)

let tls : tstate Imap.t Atomic.t = Atomic.make Imap.empty

let self_id () = Thread.id (Thread.self ())

let rec tls_update f =
  let old = Atomic.get tls in
  if not (Atomic.compare_and_set tls old (f old)) then tls_update f

let register ts =
  tls_update (Imap.add (self_id ()) ts);
  Atomic.incr Obs.trace_live

let unregister () =
  tls_update (Imap.remove (self_id ()));
  Atomic.decr Obs.trace_live

let current_ts () =
  if Atomic.get Obs.trace_live = 0 then None
  else Imap.find_opt (self_id ()) (Atomic.get tls)

(* --- the per-domain completed-span rings -------------------------------- *)

let ring_bits = 11 (* 2048 spans per ring, 16 rings *)
let ring_cap = 1 lsl ring_bits
let n_rings = 16

type ring = { r_slots : span option array; r_cursor : int Atomic.t; mutable r_read : int }

let rings =
  Array.init n_rings (fun _ ->
      { r_slots = Array.make ring_cap None; r_cursor = Atomic.make 0; r_read = 0 })

(* Metrics register lazily so merely linking [Trace] leaves the default
   registry (and its golden expositions) untouched. *)
let c_dropped =
  lazy (Obs.counter ~help:"trace spans overwritten or shed before a drain"
          "slicer_trace_spans_dropped_total")

let c_published =
  lazy (Obs.counter ~help:"trace trees published to the rings"
          "slicer_trace_trees_published_total")

let push_span sp =
  let r = rings.((Domain.self () :> int) land (n_rings - 1)) in
  let i = Atomic.fetch_and_add r.r_cursor 1 in
  r.r_slots.(i land (ring_cap - 1)) <- Some sp

let drain_lock = Mutex.create ()

let drain () =
  Mutex.lock drain_lock;
  let out = ref [] in
  let lost = ref 0 in
  Array.iter
    (fun r ->
      let c = Atomic.get r.r_cursor in
      let unread = c - r.r_read in
      let take = if unread > ring_cap then ring_cap else unread in
      for i = c - take to c - 1 do
        match r.r_slots.(i land (ring_cap - 1)) with
        | Some sp -> out := sp :: !out
        | None -> ()
      done;
      lost := !lost + (unread - take);
      r.r_read <- c)
    rings;
  Mutex.unlock drain_lock;
  if !lost > 0 then Obs.Counter.add (Lazy.force c_dropped) !lost;
  !out

(* --- recording ---------------------------------------------------------- *)

let add_span ctx sp =
  Mutex.lock ctx.c_lock;
  if ctx.c_count >= max_ctx_spans then ctx.c_lost <- ctx.c_lost + 1
  else begin
    ctx.c_spans <- sp :: ctx.c_spans;
    ctx.c_count <- ctx.c_count + 1
  end;
  Mutex.unlock ctx.c_lock

let enter ts name =
  let id = fresh_id () in
  ts.ts_stack <-
    { f_id = id; f_name = name; f_t0 = Obs.Clock.now_ns (); f_saved = ts.ts_parent }
    :: ts.ts_stack;
  ts.ts_parent <- id;
  id

let exit_frame ts extra_tags =
  match ts.ts_stack with
  | [] -> ()
  | fr :: rest ->
    ts.ts_stack <- rest;
    ts.ts_parent <- fr.f_saved;
    let mine, pending = List.partition (fun (id, _) -> id = fr.f_id) ts.ts_tags in
    ts.ts_tags <- pending;
    add_span ts.ts_ctx
      { sp_trace = ts.ts_ctx.c_trace;
        sp_id = fr.f_id;
        sp_parent = fr.f_saved;
        sp_name = fr.f_name;
        sp_instance = Obs.instance ();
        sp_start_ns = fr.f_t0;
        sp_end_ns = Obs.Clock.now_ns ();
        sp_tags = List.rev_map snd mine @ extra_tags }

(* Obs.span reports its intervals through these hooks, so every
   existing deep span (acc.fold, chain.settle, ...) lands in the tree
   without its call site changing. *)
let () =
  Obs.trace_enter :=
    (fun name -> match current_ts () with None -> 0 | Some ts -> enter ts name);
  Obs.trace_exit :=
    (fun () -> match current_ts () with None -> () | Some ts -> exit_frame ts [])

let tag k v =
  match current_ts () with
  | None -> ()
  | Some ts -> ts.ts_tags <- (ts.ts_parent, (k, v)) :: ts.ts_tags

let current () =
  match current_ts () with
  | None -> None
  | Some ts -> Some { w_trace = ts.ts_ctx.c_trace; w_parent = ts.ts_parent }

let child ?(tags = []) name f =
  match current_ts () with
  | None -> f ()
  | Some ts ->
    ignore (enter ts name : int);
    (match f () with
     | r -> exit_frame ts tags; r
     | exception exn -> exit_frame ts tags; raise exn)

let capture () =
  match current_ts () with
  | None -> None
  | Some ts -> Some { cr_ctx = ts.ts_ctx; cr_parent = ts.ts_parent }

let resume car f =
  match car with
  | None -> f ()
  | Some { cr_ctx; cr_parent } ->
    (match current_ts () with
     | Some _ -> f () (* this thread already traces; don't stomp it *)
     | None ->
       let ts = { ts_ctx = cr_ctx; ts_parent = cr_parent; ts_stack = []; ts_tags = [] } in
       register ts;
       Fun.protect ~finally:unregister f)

(* --- roots: sampling, publication, the slow-query log ------------------- *)

let make_ctx ~trace ~sampled =
  { c_trace = trace;
    c_sampled = sampled;
    c_lock = Mutex.create ();
    c_spans = [];
    c_count = 0;
    c_lost = 0 }

(* No upstream context: trace when the sampler fires, and also record
   (without committing to publish) whenever a slow threshold is armed,
   so any request can be force-published after the fact. *)
let decide remote =
  match remote with
  | Some w when w.w_trace <> 0L -> Some (make_ctx ~trace:w.w_trace ~sampled:true, w.w_parent)
  | _ ->
    let p = !sample_rate_ref in
    let sampled = p > 0. && uniform () < p in
    if sampled || Atomic.get slow_ns >= 0 then
      Some (make_ctx ~trace:(fresh_trace ()) ~sampled, 0)
    else None

let publish ctx =
  List.iter
    (fun sp ->
      (match Obs.find_span_histogram sp.sp_name with
       | Some h -> Obs.Histogram.set_exemplar h ~value:(sp.sp_end_ns - sp.sp_start_ns) ~trace:sp.sp_trace
       | None -> ());
      push_span sp)
    ctx.c_spans;
  if ctx.c_lost > 0 then Obs.Counter.add (Lazy.force c_dropped) ctx.c_lost;
  Obs.Counter.incr (Lazy.force c_published)

let rec render_breakdown buf ~t0 ~depth spans parent =
  List.iter
    (fun sp ->
      if sp.sp_parent = parent then begin
        Buffer.add_string buf
          (Printf.sprintf "\n%s%s %.3f ms (+%.3f)" (String.make (2 * depth) ' ')
             sp.sp_name
             (float_of_int (sp.sp_end_ns - sp.sp_start_ns) /. 1e6)
             (float_of_int (sp.sp_start_ns - t0) /. 1e6));
        render_breakdown buf ~t0 ~depth:(depth + 1) spans sp.sp_id
      end)
    spans

let log_slow ctx root_sp dur_ns =
  let spans = List.sort (fun a b -> compare a.sp_start_ns b.sp_start_ns) ctx.c_spans in
  let buf = Buffer.create 256 in
  render_breakdown buf ~t0:root_sp.sp_start_ns ~depth:1 spans root_sp.sp_id;
  Log.warn (fun m ->
      m "slow request: trace %s %s took %.3f ms%s"
        (id_to_string ctx.c_trace) root_sp.sp_name
        (float_of_int dur_ns /. 1e6) (Buffer.contents buf))

let complete ctx =
  match ctx.c_spans with
  | [] -> ()
  | root_sp :: _ ->
    (* the root is recorded last, hence first on the list *)
    let dur = root_sp.sp_end_ns - root_sp.sp_start_ns in
    let slow = Atomic.get slow_ns in
    let slow_hit = slow >= 0 && dur >= slow in
    if ctx.c_sampled || slow_hit then begin
      publish ctx;
      if slow_hit then log_slow ctx root_sp dur
    end

let root ?remote name f =
  if not (Obs.enabled ()) then f ()
  else
    match current_ts () with
    | Some ts ->
      (* nested root (e.g. service behind an already-rooted server
         worker): just a child span *)
      ignore (enter ts name : int);
      (match f () with
       | r -> exit_frame ts []; r
       | exception exn -> exit_frame ts []; raise exn)
    | None ->
      (match decide remote with
       | None -> f ()
       | Some (ctx, parent0) ->
         let ts = { ts_ctx = ctx; ts_parent = parent0; ts_stack = []; ts_tags = [] } in
         register ts;
         ignore (enter ts name : int);
         let finish () =
           exit_frame ts [];
           unregister ();
           complete ctx
         in
         (match f () with
          | r -> finish (); r
          | exception exn -> finish (); raise exn))

(* --- assembly and rendering --------------------------------------------- *)

module Tree = struct
  type node = { n_span : span; n_children : node list }

  type t = {
    t_trace : int64;
    t_roots : node list;
    t_start_ns : int;
    t_end_ns : int;
    t_spans : int;
  }

  let assemble spans =
    let by_trace : (int64, span list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun sp ->
        match Hashtbl.find_opt by_trace sp.sp_trace with
        | Some l -> l := sp :: !l
        | None -> Hashtbl.add by_trace sp.sp_trace (ref [ sp ]))
      spans;
    let tree_of trace group =
      (* dedup by span id (racy ring reads can double-report) *)
      let ids : (int, span) Hashtbl.t = Hashtbl.create 64 in
      List.iter (fun sp -> Hashtbl.replace ids sp.sp_id sp) group;
      let kids : (int, span list ref) Hashtbl.t = Hashtbl.create 64 in
      let roots = ref [] in
      Hashtbl.iter
        (fun _ sp ->
          if sp.sp_parent <> 0 && Hashtbl.mem ids sp.sp_parent && sp.sp_parent <> sp.sp_id
          then
            match Hashtbl.find_opt kids sp.sp_parent with
            | Some l -> l := sp :: !l
            | None -> Hashtbl.add kids sp.sp_parent (ref [ sp ])
          else roots := sp :: !roots)
        ids;
      let by_start a b =
        match compare a.sp_start_ns b.sp_start_ns with 0 -> compare a.sp_id b.sp_id | c -> c
      in
      let rec node_of sp =
        let children =
          match Hashtbl.find_opt kids sp.sp_id with
          | None -> []
          | Some l -> List.map node_of (List.sort by_start !l)
        in
        { n_span = sp; n_children = children }
      in
      let lo = ref max_int and hi = ref min_int in
      Hashtbl.iter
        (fun _ sp ->
          if sp.sp_start_ns < !lo then lo := sp.sp_start_ns;
          if sp.sp_end_ns > !hi then hi := sp.sp_end_ns)
        ids;
      { t_trace = trace;
        t_roots = List.map node_of (List.sort by_start !roots);
        t_start_ns = !lo;
        t_end_ns = !hi;
        t_spans = Hashtbl.length ids }
    in
    Hashtbl.fold (fun trace group acc -> tree_of trace !group :: acc) by_trace []
    |> List.sort (fun a b ->
           match compare a.t_start_ns b.t_start_ns with
           | 0 -> compare a.t_trace b.t_trace
           | c -> c)

  let duration_ms t = float_of_int (t.t_end_ns - t.t_start_ns) /. 1e6

  let render t =
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "trace %s — %.3f ms, %d spans\n" (id_to_string t.t_trace)
         (duration_ms t) t.t_spans);
    let rec go depth node =
      let sp = node.n_span in
      let off = float_of_int (sp.sp_start_ns - t.t_start_ns) /. 1e6 in
      let dur = float_of_int (sp.sp_end_ns - sp.sp_start_ns) /. 1e6 in
      let inst = if sp.sp_instance = "" then "" else Printf.sprintf " [%s]" sp.sp_instance in
      let tags =
        String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) sp.sp_tags)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%8.3f %+10.3f  %s%s%s\n"
           (String.make ((2 * depth) + 2) ' ')
           off dur sp.sp_name inst tags);
      List.iter (go (depth + 1)) node.n_children
    in
    List.iter (go 0) t.t_roots;
    Buffer.contents buf

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Complete ("X") events on one Chrome track must nest properly, but
     sibling spans of a fanned-out request genuinely overlap. Greedy
     lane assignment: each lane keeps its stack of open intervals; a
     span goes to the first lane where it either nests inside the open
     top or starts after everything closed, else opens a new lane. *)
  let assign_lanes spans =
    let lanes : int list ref list ref = ref [] in
    List.map
      (fun sp ->
        let rec place i = function
          | [] ->
            lanes := !lanes @ [ ref [ sp.sp_end_ns ] ];
            i
          | lane :: rest ->
            lane := List.filter (fun e -> e > sp.sp_start_ns) !lane;
            (match !lane with
             | [] ->
               lane := [ sp.sp_end_ns ];
               i
             | top :: _ when sp.sp_end_ns <= top ->
               lane := sp.sp_end_ns :: !lane;
               i
             | _ -> place (i + 1) rest)
        in
        (sp, place 0 !lanes))
      spans

  let to_chrome trees =
    let spans =
      List.concat_map
        (fun t ->
          let rec flat acc node = List.fold_left flat (node.n_span :: acc) node.n_children in
          List.fold_left flat [] t.t_roots)
        trees
    in
    let instances =
      List.sort_uniq compare (List.map (fun sp -> sp.sp_instance) spans)
    in
    let pid_of inst =
      let rec ix i = function
        | [] -> 0
        | x :: _ when x = inst -> i
        | _ :: rest -> ix (i + 1) rest
      in
      1 + ix 0 instances
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\": [";
    let first = ref true in
    let emit s =
      if not !first then Buffer.add_string buf ",";
      first := false;
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf s
    in
    List.iter
      (fun inst ->
        emit
          (Printf.sprintf
             "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 0, \"args\": {\"name\": \"%s\"}}"
             (pid_of inst)
             (json_escape (if inst = "" then "local" else inst))))
      instances;
    List.iter
      (fun inst ->
        let mine =
          List.filter (fun sp -> sp.sp_instance = inst) spans
          |> List.sort (fun a b ->
                 match compare a.sp_start_ns b.sp_start_ns with
                 | 0 -> compare b.sp_end_ns a.sp_end_ns
                 | c -> c)
        in
        List.iter
          (fun (sp, lane) ->
            let args =
              ( "trace", id_to_string sp.sp_trace )
              :: ( "span", string_of_int sp.sp_id )
              :: sp.sp_tags
            in
            let args_s =
              String.concat ", "
                (List.map
                   (fun (k, v) ->
                     Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
                   args)
            in
            emit
              (Printf.sprintf
                 "{\"name\": \"%s\", \"cat\": \"slicer\", \"ph\": \"X\", \"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {%s}}"
                 (json_escape sp.sp_name) (pid_of inst) lane
                 (float_of_int sp.sp_start_ns /. 1e3)
                 (float_of_int (sp.sp_end_ns - sp.sp_start_ns) /. 1e3)
                 args_s))
          (assign_lanes mine))
      instances;
    Buffer.add_string buf "\n]}\n";
    Buffer.contents buf
end
