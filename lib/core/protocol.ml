let log_src = Logs.Src.create "slicer.protocol" ~doc:"Slicer protocol orchestration"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  p_owner : Owner.t;
  p_cloud : Cloud.t;
  p_user : User.t;
  p_ledger : Ledger.t;
  p_contract : Vm.address;
  p_owner_addr : Vm.address;
  p_user_addr : Vm.address;
  p_cloud_addr : Vm.address;
  p_rng : Drbg.t;
  p_payment : int;
  mutable p_request_counter : int;
}

type search_outcome = {
  so_ids : string list;
  so_verified : bool;
  so_token_count : int;
  so_result_bytes : int;
  so_vo_bytes : int;
  so_gas_used : int;
}

let setup ?(width = 16) ?(tdp_bits = 512) ?(acc_bits = 512) ?(payment = 1000) ~seed records =
  let rng = Drbg.create ~seed in
  let keys = Keys.generate ~tdp_bits ~rng () in
  let acc_params = Rsa_acc.setup ~rng ~bits:acc_bits () in
  let owner = Owner.create ~width ~rng ~acc_params ~keys () in
  let shipment = Owner.build owner records in
  let cloud = Cloud.create ~acc_params ~tdp_public:keys.Keys.tdp_public () in
  Cloud.install cloud shipment;
  let user = User.create ~keys:(Keys.for_user keys) ~width (Owner.export_trapdoor_state owner) in
  let ledger = Ledger.create ~validators:[ "validator-1"; "validator-2"; "validator-3" ] in
  let owner_addr = Vm.address_of_name (seed ^ ":owner") in
  let user_addr = Vm.address_of_name (seed ^ ":user") in
  let cloud_addr = Vm.address_of_name (seed ^ ":cloud") in
  Vm.fund (Ledger.state ledger) owner_addr 100_000_000;
  Vm.fund (Ledger.state ledger) user_addr 100_000_000;
  let contract, receipt =
    Slicer_contract.deploy ledger ~owner:owner_addr ~modulus:acc_params.Rsa_acc.modulus
      ~generator:acc_params.Rsa_acc.generator ~initial_ac:shipment.Owner.sh_ac
  in
  (match receipt.Vm.r_output with
   | Ok _ -> ()
   | Error e -> failwith ("Protocol.setup: contract deployment failed: " ^ e));
  Log.info (fun m ->
      m "setup: %d records, width %d, %d index entries, %d keywords, deploy gas %d"
        (List.length records) width
        (Cloud.index_entries cloud) (Owner.keyword_count owner) receipt.Vm.r_gas_used);
  { p_owner = owner;
    p_cloud = cloud;
    p_user = user;
    p_ledger = ledger;
    p_contract = contract;
    p_owner_addr = owner_addr;
    p_user_addr = user_addr;
    p_cloud_addr = cloud_addr;
    p_rng = rng;
    p_payment = payment;
    p_request_counter = 0 }

let insert t records =
  let shipment = Owner.insert t.p_owner records in
  Cloud.install t.p_cloud shipment;
  User.update_state t.p_user (Owner.export_trapdoor_state t.p_owner);
  let receipt =
    Slicer_contract.update_ac t.p_ledger ~owner:t.p_owner_addr ~contract:t.p_contract
      shipment.Owner.sh_ac
  in
  match receipt.Vm.r_output with
  | Ok _ ->
    Log.info (fun m ->
        m "insert: %d records, %d new index entries, %d new primes, updateAc gas %d"
          (List.length records)
          (List.length shipment.Owner.sh_entries)
          (List.length shipment.Owner.sh_primes)
          receipt.Vm.r_gas_used)
  | Error e -> failwith ("Protocol.insert: on-chain Ac update failed: " ^ e)

let claim_sizes claims =
  List.fold_left
    (fun (rb, vb) (c : Slicer_contract.claim) ->
      ( rb + List.fold_left (fun n r -> n + String.length r) 0 c.Slicer_contract.results,
        vb + String.length (Bigint.to_bytes_be c.Slicer_contract.witness) ))
    (0, 0) claims

(* Factor of [search] and [search_batched]: request on chain, let the
   cloud answer, settle with the given submission function. *)
let search_with t query ~submit =
  let tokens = User.gen_tokens ~rng:t.p_rng t.p_user query in
  t.p_request_counter <- t.p_request_counter + 1;
  let request_id = Printf.sprintf "req-%d" t.p_request_counter in
  let rr =
    Slicer_contract.request_search t.p_ledger ~user:t.p_user_addr ~contract:t.p_contract
      ~request_id
      ~tokens:(List.map Slicer_types.token_bytes tokens)
      ~payment:t.p_payment
  in
  (match rr.Vm.r_output with
   | Ok _ -> ()
   | Error e -> failwith ("Protocol.search: request failed: " ^ e));
  (* The cloud retrieves the tokens from the chain's event log (it never
     talks to the user directly) and reconstructs their structure. *)
  let onchain_tokens =
    match Slicer_contract.stored_tokens t.p_ledger ~contract:t.p_contract ~request_id with
    | Some blobs -> List.filter_map Slicer_types.token_of_bytes blobs
    | None -> []
  in
  assert (List.length onchain_tokens = List.length tokens);
  Log.debug (fun m ->
      m "search %s: value %d cond %s, %d tokens posted" request_id query.Slicer_types.q_value
        (Format.asprintf "%a" Slicer_types.pp_condition query.Slicer_types.q_cond)
        (List.length tokens));
  submit ~request_id onchain_tokens

let outcome_of_claims t claims ~vo_bytes ~receipt:(sr : Vm.receipt) ~token_count =
  let verified = match sr.Vm.r_output with Ok [ "paid" ] -> true | Ok _ | Error _ -> false in
  let ids =
    List.filter_map
      (fun er ->
        match User.decrypt_results t.p_user [ er ] with
        | [ id ] -> Some id
        | _ | (exception Invalid_argument _) -> None)
      (List.concat_map (fun (c : Slicer_contract.claim) -> c.Slicer_contract.results) claims)
  in
  let result_bytes, _ = claim_sizes claims in
  { so_ids = ids;
    so_verified = verified;
    so_token_count = token_count;
    so_result_bytes = result_bytes;
    so_vo_bytes = vo_bytes;
    so_gas_used = sr.Vm.r_gas_used }

let search_batched t query =
  search_with t query ~submit:(fun ~request_id tokens ->
      let claims, witness = Cloud.search_batched t.p_cloud tokens in
      let sr =
        Slicer_contract.submit_result_batched t.p_ledger ~cloud:t.p_cloud_addr
          ~contract:t.p_contract ~request_id claims ~witness
      in
      outcome_of_claims t claims
        ~vo_bytes:(String.length (Bigint.to_bytes_be witness))
        ~receipt:sr ~token_count:(List.length tokens))

let search t query =
  search_with t query ~submit:(fun ~request_id tokens ->
      let claims = Cloud.search t.p_cloud tokens in
      let sr =
        Slicer_contract.submit_result t.p_ledger ~cloud:t.p_cloud_addr ~contract:t.p_contract
          ~request_id claims
      in
      let _, vo_bytes = claim_sizes claims in
      outcome_of_claims t claims ~vo_bytes ~receipt:sr ~token_count:(List.length tokens))

let search_between t ?(attr = "") ~lo ~hi () =
  let above = search t (Slicer_types.query ~attr lo Slicer_types.Lt) in
  let below = search t (Slicer_types.query ~attr hi Slicer_types.Gt) in
  let in_below = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_below id ()) below.so_ids;
  { so_ids = List.filter (Hashtbl.mem in_below) above.so_ids;
    so_verified = above.so_verified && below.so_verified;
    so_token_count = above.so_token_count + below.so_token_count;
    so_result_bytes = above.so_result_bytes + below.so_result_bytes;
    so_vo_bytes = above.so_vo_bytes + below.so_vo_bytes;
    so_gas_used = above.so_gas_used + below.so_gas_used }


let search_conj t queries =
  if queries = [] then invalid_arg "Protocol.search_conj: empty conjunction";
  let outcomes = List.map (search t) queries in
  let combine a b =
    let keep = Hashtbl.create 64 in
    List.iter (fun id -> Hashtbl.replace keep id ()) b.so_ids;
    { so_ids = List.filter (Hashtbl.mem keep) a.so_ids;
      so_verified = a.so_verified && b.so_verified;
      so_token_count = a.so_token_count + b.so_token_count;
      so_result_bytes = a.so_result_bytes + b.so_result_bytes;
      so_vo_bytes = a.so_vo_bytes + b.so_vo_bytes;
      so_gas_used = a.so_gas_used + b.so_gas_used }
  in
  (match outcomes with o :: rest -> List.fold_left combine o rest | [] -> assert false)

let search_offchain t query =
  let tokens = User.gen_tokens ~rng:t.p_rng t.p_user query in
  let claims = Cloud.search t.p_cloud tokens in
  let ok =
    Verifier.verify_claims (Owner.acc_params t.p_owner) ~ac:(Owner.current_ac t.p_owner) claims
  in
  (claims, ok)

let set_cloud_behavior t m = Cloud.set_behavior t.p_cloud m

let owner t = t.p_owner
let cloud t = t.p_cloud
let user t = t.p_user
let ledger t = t.p_ledger
let contract_address t = t.p_contract
let user_address t = t.p_user_addr
let cloud_address t = t.p_cloud_addr
let user_balance t = Vm.balance (Ledger.state t.p_ledger) t.p_user_addr
let cloud_balance t = Vm.balance (Ledger.state t.p_ledger) t.p_cloud_addr
let onchain_ac t = Slicer_contract.stored_ac t.p_ledger ~contract:t.p_contract
let rng t = t.p_rng
