let log_src = Logs.Src.create "slicer.protocol" ~doc:"Slicer protocol orchestration"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  p_owner : Owner.t;
  p_user : User.t;
  p_station : Station.t;
  p_owner_addr : Vm.address;
  p_user_addr : Vm.address;
  p_rng : Drbg.t;
  p_payment : int;
  mutable p_request_counter : int;
}

type search_outcome = {
  so_ids : string list;
  so_verified : bool;
  so_token_count : int;
  so_result_bytes : int;
  so_vo_bytes : int;
  so_gas_used : int;
}

let setup ?(width = 16) ?(tdp_bits = 512) ?(acc_bits = 512) ?(payment = 1000)
    ?(witness_index = true) ~seed records =
  let rng = Drbg.create ~seed in
  let keys = Keys.generate ~tdp_bits ~rng () in
  let acc_params = Rsa_acc.setup ~rng ~bits:acc_bits () in
  let owner = Owner.create ~width ~rng ~acc_params ~keys () in
  let shipment = Owner.build owner records in
  let cloud = Cloud.create ~witness_index ~acc_params ~tdp_public:keys.Keys.tdp_public () in
  Cloud.install cloud shipment;
  let user = User.create ~keys:(Keys.for_user keys) ~width (Owner.export_trapdoor_state owner) in
  let ledger = Ledger.create ~validators:[ "validator-1"; "validator-2"; "validator-3" ] in
  let owner_addr = Vm.address_of_name (seed ^ ":owner") in
  let user_addr = Vm.address_of_name (seed ^ ":user") in
  let cloud_addr = Vm.address_of_name (seed ^ ":cloud") in
  Vm.fund (Ledger.state ledger) owner_addr 100_000_000;
  Vm.fund (Ledger.state ledger) user_addr 100_000_000;
  let contract, receipt =
    Slicer_contract.deploy ledger ~owner:owner_addr ~modulus:acc_params.Rsa_acc.modulus
      ~generator:acc_params.Rsa_acc.generator ~initial_ac:shipment.Owner.sh_ac
  in
  (match receipt.Vm.r_output with
   | Ok _ -> ()
   | Error e -> failwith ("Protocol.setup: contract deployment failed: " ^ e));
  Log.info (fun m ->
      m "setup: %d records, width %d, %d index entries, %d keywords, deploy gas %d"
        (List.length records) width
        (Cloud.index_entries cloud) (Owner.keyword_count owner) receipt.Vm.r_gas_used);
  { p_owner = owner;
    p_user = user;
    p_station = Station.create ~cloud ~ledger ~contract ~cloud_addr;
    p_owner_addr = owner_addr;
    p_user_addr = user_addr;
    p_rng = rng;
    p_payment = payment;
    p_request_counter = 0 }

let insert t records =
  let shipment = Owner.insert t.p_owner records in
  User.update_state t.p_user (Owner.export_trapdoor_state t.p_owner);
  match Station.install t.p_station ~owner:t.p_owner_addr shipment with
  | Ok receipt ->
    Log.info (fun m ->
        m "insert: %d records, %d new index entries, %d new primes, updateAc gas %d"
          (List.length records)
          (List.length shipment.Owner.sh_entries)
          (List.length shipment.Owner.sh_primes)
          receipt.Vm.r_gas_used)
  | Error e -> failwith ("Protocol.insert: on-chain Ac update failed: " ^ e)

let claim_sizes claims =
  List.fold_left
    (fun (rb, vb) (c : Slicer_contract.claim) ->
      ( rb + List.fold_left (fun n r -> n + String.length r) 0 c.Slicer_contract.results,
        vb + String.length (Bigint.to_bytes_be c.Slicer_contract.witness) ))
    (0, 0) claims

let fresh_request_id t =
  t.p_request_counter <- t.p_request_counter + 1;
  Printf.sprintf "req-%d" t.p_request_counter

let outcome_of_claims t claims ~vo_bytes ~receipt:(sr : Vm.receipt) ~token_count =
  let verified = match sr.Vm.r_output with Ok [ "paid" ] -> true | Ok _ | Error _ -> false in
  let ids =
    List.filter_map
      (fun er ->
        match User.decrypt_results t.p_user [ er ] with
        | [ id ] -> Some id
        | _ | (exception Invalid_argument _) -> None)
      (List.concat_map (fun (c : Slicer_contract.claim) -> c.Slicer_contract.results) claims)
  in
  let result_bytes, _ = claim_sizes claims in
  { so_ids = ids;
    so_verified = verified;
    so_token_count = token_count;
    so_result_bytes = result_bytes;
    so_vo_bytes = vo_bytes;
    so_gas_used = sr.Vm.r_gas_used }

(* Factor of [search] and [search_batched]: generate tokens, run the
   station's request/settle round trip, fold the settlement into an
   outcome. *)
let search_with t query ~batched =
  let tokens = User.gen_tokens ~rng:t.p_rng t.p_user query in
  let request_id = fresh_request_id t in
  Log.debug (fun m ->
      m "search %s: value %d cond %s, %d tokens posted" request_id query.Slicer_types.q_value
        (Format.asprintf "%a" Slicer_types.pp_condition query.Slicer_types.q_cond)
        (List.length tokens));
  match
    Station.settle t.p_station ~client:"protocol" ~user:t.p_user_addr ~request_id
      ~payment:t.p_payment ~token_blobs:(List.map Slicer_types.token_bytes tokens) ~batched
  with
  | Error e -> failwith ("Protocol.search: request failed: " ^ e)
  | Ok { Station.se_claims = claims; se_batch_witness; se_receipt; se_outcome = _ } ->
    let vo_bytes =
      match se_batch_witness with
      | Some w -> String.length (Bigint.to_bytes_be w)
      | None -> snd (claim_sizes claims)
    in
    outcome_of_claims t claims ~vo_bytes ~receipt:se_receipt ~token_count:(List.length tokens)

let search t query = search_with t query ~batched:false
let search_batched t query = search_with t query ~batched:true

let search_between t ?(attr = "") ~lo ~hi () =
  let above = search t (Slicer_types.query ~attr lo Slicer_types.Lt) in
  let below = search t (Slicer_types.query ~attr hi Slicer_types.Gt) in
  let in_below = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_below id ()) below.so_ids;
  { so_ids = List.filter (Hashtbl.mem in_below) above.so_ids;
    so_verified = above.so_verified && below.so_verified;
    so_token_count = above.so_token_count + below.so_token_count;
    so_result_bytes = above.so_result_bytes + below.so_result_bytes;
    so_vo_bytes = above.so_vo_bytes + below.so_vo_bytes;
    so_gas_used = above.so_gas_used + below.so_gas_used }


let search_conj t queries =
  if queries = [] then invalid_arg "Protocol.search_conj: empty conjunction";
  let outcomes = List.map (search t) queries in
  let combine a b =
    let keep = Hashtbl.create 64 in
    List.iter (fun id -> Hashtbl.replace keep id ()) b.so_ids;
    { so_ids = List.filter (Hashtbl.mem keep) a.so_ids;
      so_verified = a.so_verified && b.so_verified;
      so_token_count = a.so_token_count + b.so_token_count;
      so_result_bytes = a.so_result_bytes + b.so_result_bytes;
      so_vo_bytes = a.so_vo_bytes + b.so_vo_bytes;
      so_gas_used = a.so_gas_used + b.so_gas_used }
  in
  (match outcomes with o :: rest -> List.fold_left combine o rest | [] -> assert false)

let search_offchain t query =
  let tokens = User.gen_tokens ~rng:t.p_rng t.p_user query in
  let claims = Cloud.search (Station.cloud t.p_station) tokens in
  let ok =
    Verifier.verify_claims (Owner.acc_params t.p_owner) ~ac:(Owner.current_ac t.p_owner) claims
  in
  (claims, ok)

let set_cloud_behavior t m = Cloud.set_behavior (Station.cloud t.p_station) m

let owner t = t.p_owner
let cloud t = Station.cloud t.p_station
let user t = t.p_user
let ledger t = Station.ledger t.p_station
let station t = t.p_station
let payment t = t.p_payment
let contract_address t = Station.contract t.p_station
let owner_address t = t.p_owner_addr
let user_address t = t.p_user_addr
let cloud_address t = Station.cloud_addr t.p_station
let user_balance t = Vm.balance (Ledger.state (ledger t)) t.p_user_addr
let cloud_balance t = Vm.balance (Ledger.state (ledger t)) (cloud_address t)
let onchain_ac t = Station.onchain_ac t.p_station
let rng t = t.p_rng
