type master = {
  k : string;
  k_r : string;
  tdp_public : Rsa_tdp.public;
  tdp_secret : Rsa_tdp.secret;
}

type user_keys = { u_k : string; u_k_r : string; u_tdp_public : Rsa_tdp.public }

let generate ?(tdp_bits = 512) ~rng () =
  let tdp_public, tdp_secret = Rsa_tdp.keygen ~bits:tdp_bits ~rng () in
  { k = Drbg.generate rng 16; k_r = Drbg.generate rng 16; tdp_public; tdp_secret }

let for_user m = { u_k = m.k; u_k_r = m.k_r; u_tdp_public = m.tdp_public }

type prf = Hmac.keyed

let prf_of_key key = Hmac.create ~key

let g1_keyed kp w = Hmac.prf128_keyed kp (Bytesutil.concat [ w; "1" ])
let g2_keyed kp w = Hmac.prf128_keyed kp (Bytesutil.concat [ w; "2" ])

let f_keyed kp ~trapdoor ~counter =
  Hmac.prf128_keyed kp (Bytesutil.concat [ trapdoor; string_of_int counter ])

(* Position and mask share the [t ‖ c] message encoding; build it once. *)
let f_pair kp1 kp2 ~trapdoor ~counter =
  let msg = Bytesutil.concat [ trapdoor; string_of_int counter ] in
  (Hmac.prf128_keyed kp1 msg, Hmac.prf128_keyed kp2 msg)

let g1 ~k w = g1_keyed (Hmac.create ~key:k) w
let g2 ~k w = g2_keyed (Hmac.create ~key:k) w

let f ~key ~trapdoor ~counter = f_keyed (Hmac.create ~key) ~trapdoor ~counter

(* AES key schedules are cached: record encryption happens once per
   index entry and the expansion would otherwise dominate. *)
let schedule_cache : (string, Aes128.key) Hashtbl.t = Hashtbl.create 4

let schedule k_r =
  match Hashtbl.find_opt schedule_cache k_r with
  | Some s -> s
  | None ->
    let s = Aes128.expand k_r in
    Hashtbl.replace schedule_cache k_r s;
    s

let encrypt_record_id ~k_r id = Aes128.encrypt_string (schedule k_r) id

(* Decryptions are memoized: a user replays the same encrypted ids on
   every repeated query, and softcore AES dominates the otherwise-warm
   read path. Bounded like every other long-lived memo. *)
let decrypt_memo_limit = 65_536
let decrypt_memo : (string, string) Hashtbl.t = Hashtbl.create 256

let decrypt_record_id ~k_r ct =
  let key = Bytesutil.concat [ k_r; ct ] in
  match Hashtbl.find_opt decrypt_memo key with
  | Some id -> id
  | None ->
    let id = Aes128.decrypt_string (schedule k_r) ct in
    if Hashtbl.length decrypt_memo < decrypt_memo_limit then Hashtbl.replace decrypt_memo key id;
    id
