(** End-to-end orchestration of the four parties (the workflow of the
    paper's Fig. 1): data owner, data user, cloud and blockchain.

    {!setup} builds the encrypted index and ADS, deploys the
    verification contract with the initial accumulation value, and wires
    the parties together. {!search} then runs the full fair-exchange
    round trip: token generation → on-chain request with escrowed
    payment → cloud search → on-chain verification → settlement →
    client-side decryption. *)

type t

type search_outcome = {
  so_ids : string list;        (** decrypted matching record IDs *)
  so_verified : bool;          (** did on-chain verification pass (cloud paid)? *)
  so_token_count : int;
  so_result_bytes : int;       (** total encrypted-result payload *)
  so_vo_bytes : int;           (** total verification-object payload *)
  so_gas_used : int;           (** gas of the settlement transaction *)
}

val setup :
  ?width:int ->
  ?tdp_bits:int ->
  ?acc_bits:int ->
  ?payment:int ->
  ?witness_index:bool ->
  seed:string ->
  Slicer_types.record list ->
  t
(** Builds the whole system over the initial database. [seed] makes the
    run reproducible. [payment] is the per-search fee (default 1000
    wei). Defaults: [width] 16, [tdp_bits] 512, [acc_bits] 512.
    [witness_index] (default [true]) is passed to {!Cloud.create}. *)

val insert : t -> Slicer_types.record list -> unit
(** Forward-secure insertion: updates cloud index, prime list, on-chain
    [Ac], and the user's trapdoor state. *)

val search : t -> Slicer_types.query -> search_outcome
(** The full verifiable search round trip. *)

val search_batched : t -> Slicer_types.query -> search_outcome
(** {!search} settled through the batched-witness contract path: one
    64-byte verification object for the whole query instead of one per
    token. *)

val search_between : t -> ?attr:string -> lo:int -> hi:int -> unit -> search_outcome
(** Interval query [lo < a < hi]: the composition of the two order
    searches the paper's range semantics induce, with results
    intersected client-side. Verification must pass for both halves. *)

val search_conj : t -> Slicer_types.query list -> search_outcome
(** Conjunctive query across (possibly different) attributes: one
    verified search per predicate, results intersected client-side.
    The empty conjunction is rejected. @raise Invalid_argument on []. *)

val log_src : Logs.src
(** The protocol's log source ("slicer.protocol"); enable with
    [Logs.Src.set_level]. *)

val search_offchain : t -> Slicer_types.query -> Slicer_contract.claim list * bool
(** Tokens → cloud → local Algorithm 5, skipping the ledger (for
    benches isolating protocol cost from chain bookkeeping). *)

val set_cloud_behavior : t -> Cloud.misbehavior -> unit
(** Configure the threat-model misbehaviours for the next searches. *)

val station : t -> Station.t
(** The cloud+chain settlement endpoint this system drives. The
    networked deployment ([Net.Service]) serves exactly this station
    over framed RPC, so in-process and over-the-wire searches settle
    through the same code path. *)

val payment : t -> int
(** The per-search fee locked in escrow. *)

(** Accessors used by benches, examples and tests. *)

val owner : t -> Owner.t
val cloud : t -> Cloud.t
val user : t -> User.t
val ledger : t -> Ledger.t
val owner_address : t -> Vm.address
val contract_address : t -> Vm.address
val user_address : t -> Vm.address
val cloud_address : t -> Vm.address
val user_balance : t -> int
val cloud_balance : t -> int
val onchain_ac : t -> Bigint.t option
val rng : t -> Drbg.t
