(** The data user: search-token generation (Algorithm 3) and result
    decryption.

    Users hold the secret keys [K], [K_R], the trapdoor {e public} key
    and a copy of the trapdoor state [T]. They are quasi-honest: token
    generation is faithful, but result acceptance is not trusted — which
    is exactly why settlement is decided on chain, not by the user. *)

type t

val create : keys:Keys.user_keys -> width:int -> Owner.trapdoor_state -> t

val update_state : t -> Owner.trapdoor_state -> unit
(** Receive a fresh [T] from the owner after an insert. *)

val gen_tokens : rng:Drbg.t -> t -> Slicer_types.query -> Slicer_types.search_token list
(** Algorithm 3: the equality keyword or the [b] shuffled SORE query
    tuples, mapped through [T] — tuples with no indexed data yield no
    token. *)

val decrypt_results : t -> string list -> string list
(** Decrypts encrypted record IDs with [K_R]. *)

val known_keywords : t -> int
(** Size of the user's current [T] copy. *)
