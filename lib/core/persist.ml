let ( let* ) = Option.bind

(* --- records ----------------------------------------------------------- *)

let record_to_bytes (r : Slicer_types.record) =
  Bytesutil.concat
    (r.Slicer_types.id
     :: List.concat_map (fun (a, v) -> [ a; string_of_int v ]) r.Slicer_types.fields)

let record_of_bytes s =
  let* pieces = Bytesutil.split s in
  match pieces with
  | id :: rest ->
    let rec fields acc = function
      | [] -> Some (List.rev acc)
      | a :: v :: more ->
        let* v = int_of_string_opt v in
        fields ((a, v) :: acc) more
      | [ _ ] -> None
    in
    let* fields = fields [] rest in
    if fields = [] then None else Some { Slicer_types.id; fields }
  | [] -> None

let records_to_bytes rs = Bytesutil.concat (List.map record_to_bytes rs)

let records_of_bytes s =
  let* pieces = Bytesutil.split s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest ->
      let* r = record_of_bytes p in
      go (r :: acc) rest
  in
  go [] pieces

(* --- shipments ----------------------------------------------------------- *)

(* Three-piece form [entries; primes; ac] is the pre-cluster archive
   shape and still decodes (with no groups). Grouped shipments append a
   fourth piece holding the per-keyword breakdown so a router replaying
   a WAL can still split by shard key. *)
let entries_to_blob entries =
  Bytesutil.concat (List.concat_map (fun (l, d) -> [ l; d ]) entries)

let entries_of_blob blob =
  let* pieces = Bytesutil.split blob in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | l :: d :: rest -> go ((l, d) :: acc) rest
    | [ _ ] -> None
  in
  go [] pieces

let group_to_bytes (g : Owner.keyword_group) =
  Bytesutil.concat
    [ g.Owner.kg_g1; Bigint.to_bytes_be g.Owner.kg_prime; entries_to_blob g.Owner.kg_entries ]

let group_of_bytes s =
  let* pieces = Bytesutil.split s in
  match pieces with
  | [ kg_g1; prime; entries_blob ] ->
    let* kg_entries = entries_of_blob entries_blob in
    Some { Owner.kg_g1; kg_entries; kg_prime = Bigint.of_bytes_be prime }
  | _ -> None

let shipment_to_bytes (sh : Owner.shipment) =
  let base =
    [ entries_to_blob sh.Owner.sh_entries;
      Bytesutil.concat (List.map Bigint.to_bytes_be sh.Owner.sh_primes);
      Bigint.to_bytes_be sh.Owner.sh_ac ]
  in
  match sh.Owner.sh_groups with
  | [] -> Bytesutil.concat base
  | groups -> Bytesutil.concat (base @ [ Bytesutil.concat (List.map group_to_bytes groups) ])

let shipment_of_bytes s =
  let* pieces = Bytesutil.split s in
  let decode entries_blob primes_blob ac groups_blob =
    let* sh_entries = entries_of_blob entries_blob in
    let* prime_pieces = Bytesutil.split primes_blob in
    let* sh_groups =
      match groups_blob with
      | None -> Some []
      | Some blob ->
        let* group_pieces = Bytesutil.split blob in
        let rec go acc = function
          | [] -> Some (List.rev acc)
          | p :: rest ->
            let* g = group_of_bytes p in
            go (g :: acc) rest
        in
        go [] group_pieces
    in
    Some
      { Owner.sh_entries;
        sh_primes = List.map Bigint.of_bytes_be prime_pieces;
        sh_ac = Bigint.of_bytes_be ac;
        sh_groups }
  in
  match pieces with
  | [ entries_blob; primes_blob; ac ] -> decode entries_blob primes_blob ac None
  | [ entries_blob; primes_blob; ac; groups_blob ] ->
    decode entries_blob primes_blob ac (Some groups_blob)
  | _ -> None

(* --- trapdoor state -------------------------------------------------------- *)

let trapdoor_state_to_bytes (st : Owner.trapdoor_state) =
  let bindings =
    Hashtbl.fold (fun w (trapdoor, j) acc -> (w, trapdoor, j) :: acc) st []
    |> List.sort compare
  in
  Bytesutil.concat
    (List.concat_map (fun (w, trapdoor, j) -> [ w; trapdoor; string_of_int j ]) bindings)

let trapdoor_state_of_bytes s =
  let* pieces = Bytesutil.split s in
  let st : Owner.trapdoor_state = Hashtbl.create (List.length pieces / 3) in
  let rec go = function
    | [] -> Some st
    | w :: trapdoor :: j :: rest ->
      let* j = int_of_string_opt j in
      if j < 0 then None
      else begin
        Hashtbl.replace st w (trapdoor, j);
        go rest
      end
    | _ -> None
  in
  go pieces

(* --- queries and search tokens --------------------------------------------- *)

let condition_tag = function Slicer_types.Eq -> "=" | Slicer_types.Gt -> ">" | Slicer_types.Lt -> "<"

let condition_of_tag = function
  | "=" -> Some Slicer_types.Eq
  | ">" -> Some Slicer_types.Gt
  | "<" -> Some Slicer_types.Lt
  | _ -> None

let query_to_bytes (q : Slicer_types.query) =
  Bytesutil.concat [ q.Slicer_types.q_attr; string_of_int q.Slicer_types.q_value; condition_tag q.Slicer_types.q_cond ]

let query_of_bytes s =
  let* pieces = Bytesutil.split s in
  match pieces with
  | [ q_attr; v; c ] ->
    let* q_value = int_of_string_opt v in
    let* q_cond = condition_of_tag c in
    Some { Slicer_types.q_attr; q_value; q_cond }
  | _ -> None

let tokens_to_bytes ts = Bytesutil.concat (List.map Slicer_types.token_bytes ts)

let tokens_of_bytes s =
  let* pieces = Bytesutil.split s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest ->
      let* t = Slicer_types.token_of_bytes p in
      go (t :: acc) rest
  in
  go [] pieces

(* --- claims (encrypted results + VO) ---------------------------------------- *)

(* The chain-side codec is the canonical one: the cloud → user payload
   is byte-identical to what [submitResult] carries. *)
let claims_to_bytes = Slicer_contract.encode_claims
let claims_of_bytes = Slicer_contract.decode_claims

(* --- settlement receipts ----------------------------------------------------- *)

let receipt_to_bytes (r : Vm.receipt) =
  let output =
    match r.Vm.r_output with
    | Ok words -> Bytesutil.concat ("ok" :: words)
    | Error e -> Bytesutil.concat [ "error"; e ]
  in
  Bytesutil.concat
    [ r.Vm.r_txn_hash; string_of_int r.Vm.r_gas_used; Bytesutil.concat r.Vm.r_events; output ]

let receipt_of_bytes s =
  let* pieces = Bytesutil.split s in
  match pieces with
  | [ r_txn_hash; gas; events_blob; output_blob ] ->
    let* r_gas_used = int_of_string_opt gas in
    if r_gas_used < 0 then None
    else
      let* r_events = Bytesutil.split events_blob in
      let* output_pieces = Bytesutil.split output_blob in
      let* r_output =
        match output_pieces with
        | "ok" :: words -> Some (Ok words)
        | [ "error"; e ] -> Some (Error e)
        | _ -> None
      in
      Some { Vm.r_txn_hash; r_gas_used; r_events; r_output }
  | _ -> None

(* --- files ------------------------------------------------------------------ *)

(* Atomic + durable: bytes land in [path ^ ".tmp"], get fsynced, and
   only then rename over [path]; the parent directory is fsynced so
   the rename itself survives a crash. A reader therefore sees either
   the old file or the new one — never a half-written hybrid, which is
   exactly what the in-place [open_out_bin] this replaces produced
   when the process died mid-write. *)
let save ~path bytes =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = String.length bytes in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring fd bytes !off (len - !off)
      done;
      Unix.fsync fd);
  Unix.rename tmp path;
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | dfd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let load ~path =
  (* [None] on *any* read failure: [Sys_error] on open/read, but also
     [End_of_file] when the file shrinks between [in_channel_length]
     and the read — a window the old code let escape as an exception. *)
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | bytes -> Some bytes
  | exception (Sys_error _ | End_of_file) -> None
