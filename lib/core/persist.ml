let ( let* ) = Option.bind

(* --- records ----------------------------------------------------------- *)

let record_to_bytes (r : Slicer_types.record) =
  Bytesutil.concat
    (r.Slicer_types.id
     :: List.concat_map (fun (a, v) -> [ a; string_of_int v ]) r.Slicer_types.fields)

let record_of_bytes s =
  let* pieces = Bytesutil.split s in
  match pieces with
  | id :: rest ->
    let rec fields acc = function
      | [] -> Some (List.rev acc)
      | a :: v :: more ->
        let* v = int_of_string_opt v in
        fields ((a, v) :: acc) more
      | [ _ ] -> None
    in
    let* fields = fields [] rest in
    if fields = [] then None else Some { Slicer_types.id; fields }
  | [] -> None

let records_to_bytes rs = Bytesutil.concat (List.map record_to_bytes rs)

let records_of_bytes s =
  let* pieces = Bytesutil.split s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest ->
      let* r = record_of_bytes p in
      go (r :: acc) rest
  in
  go [] pieces

(* --- shipments ----------------------------------------------------------- *)

let shipment_to_bytes (sh : Owner.shipment) =
  Bytesutil.concat
    [ Bytesutil.concat (List.concat_map (fun (l, d) -> [ l; d ]) sh.Owner.sh_entries);
      Bytesutil.concat (List.map Bigint.to_bytes_be sh.Owner.sh_primes);
      Bigint.to_bytes_be sh.Owner.sh_ac ]

let shipment_of_bytes s =
  let* pieces = Bytesutil.split s in
  match pieces with
  | [ entries_blob; primes_blob; ac ] ->
    let* entry_pieces = Bytesutil.split entries_blob in
    let rec entries acc = function
      | [] -> Some (List.rev acc)
      | l :: d :: rest -> entries ((l, d) :: acc) rest
      | [ _ ] -> None
    in
    let* sh_entries = entries [] entry_pieces in
    let* prime_pieces = Bytesutil.split primes_blob in
    Some
      { Owner.sh_entries;
        sh_primes = List.map Bigint.of_bytes_be prime_pieces;
        sh_ac = Bigint.of_bytes_be ac }
  | _ -> None

(* --- trapdoor state -------------------------------------------------------- *)

let trapdoor_state_to_bytes (st : Owner.trapdoor_state) =
  let bindings =
    Hashtbl.fold (fun w (trapdoor, j) acc -> (w, trapdoor, j) :: acc) st []
    |> List.sort compare
  in
  Bytesutil.concat
    (List.concat_map (fun (w, trapdoor, j) -> [ w; trapdoor; string_of_int j ]) bindings)

let trapdoor_state_of_bytes s =
  let* pieces = Bytesutil.split s in
  let st : Owner.trapdoor_state = Hashtbl.create (List.length pieces / 3) in
  let rec go = function
    | [] -> Some st
    | w :: trapdoor :: j :: rest ->
      let* j = int_of_string_opt j in
      if j < 0 then None
      else begin
        Hashtbl.replace st w (trapdoor, j);
        go rest
      end
    | _ -> None
  in
  go pieces

(* --- files ------------------------------------------------------------------ *)

let save ~path bytes =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc bytes)

let load ~path =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None
