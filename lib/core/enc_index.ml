(* Open-addressing hash table specialised to the index's fixed shape:
   16-byte PRF positions mapped to 16-byte masked payloads. Entries live
   inline in one contiguous arena (32 bytes per slot, label then
   payload) with a one-byte-per-slot occupancy vector — no per-entry
   boxing, no string headers, and the slot hash is just the label's own
   leading bytes (positions are PRF outputs, already uniform). *)

let label_len = 16
let payload_len = 16
let slot_len = label_len + payload_len

type t = {
  mutable slots : Bytes.t; (* capacity * slot_len arena *)
  mutable used : Bytes.t;  (* capacity occupancy bytes: '\000' free *)
  mutable mask : int;      (* capacity - 1; capacity is a power of two *)
  mutable count : int;
}

let initial_capacity = 1024

let create () =
  { slots = Bytes.create (initial_capacity * slot_len);
    used = Bytes.make initial_capacity '\000';
    mask = initial_capacity - 1;
    count = 0 }

(* 56 bits of the (uniform) label — enough for any realistic capacity. *)
let slot_hash l =
  let b i = Char.code (String.unsafe_get l i) in
  (b 0 lsl 48) lor (b 1 lsl 40) lor (b 2 lsl 32) lor (b 3 lsl 24)
  lor (b 4 lsl 16) lor (b 5 lsl 8) lor b 6

let label_matches t slot l =
  let base = slot * slot_len in
  let rec go i =
    i = label_len
    || (Char.equal (Bytes.unsafe_get t.slots (base + i)) (String.unsafe_get l i) && go (i + 1))
  in
  go 0

(* First slot in l's probe sequence that is free or already holds l. *)
let probe t l =
  let rec go i =
    if Bytes.unsafe_get t.used i = '\000' || label_matches t i l then i
    else go ((i + 1) land t.mask)
  in
  go (slot_hash l land t.mask)

let set_slot t slot ~l ~d =
  let base = slot * slot_len in
  Bytes.blit_string l 0 t.slots base label_len;
  Bytes.blit_string d 0 t.slots (base + label_len) payload_len;
  Bytes.unsafe_set t.used slot '\001'

let grow t =
  let old_slots = t.slots and old_used = t.used and old_cap = t.mask + 1 in
  let cap = old_cap * 2 in
  t.slots <- Bytes.create (cap * slot_len);
  t.used <- Bytes.make cap '\000';
  t.mask <- cap - 1;
  for i = 0 to old_cap - 1 do
    if Bytes.unsafe_get old_used i = '\001' then begin
      let base = i * slot_len in
      let l = Bytes.sub_string old_slots base label_len in
      let d = Bytes.sub_string old_slots (base + label_len) payload_len in
      set_slot t (probe t l) ~l ~d
    end
  done

let put t ~l ~d =
  if String.length l <> label_len then invalid_arg "Enc_index.put: position must be 16 bytes";
  if String.length d <> payload_len then invalid_arg "Enc_index.put: payload must be 16 bytes";
  (* Keep load factor under 3/4 so probe chains stay short. *)
  if 4 * (t.count + 1) > 3 * (t.mask + 1) then grow t;
  let slot = probe t l in
  if Bytes.unsafe_get t.used slot <> '\000' then
    invalid_arg "Enc_index.put: position already occupied";
  set_slot t slot ~l ~d;
  t.count <- t.count + 1

let find t l =
  if String.length l <> label_len then None
  else begin
    let slot = probe t l in
    if Bytes.unsafe_get t.used slot = '\000' then None
    else Some (Bytes.sub_string t.slots ((slot * slot_len) + label_len) payload_len)
  end

let entry_count t = t.count

let size_bytes t = t.count * slot_len

let capacity_bytes t = Bytes.length t.slots + Bytes.length t.used

let iter f t =
  for i = 0 to t.mask do
    if Bytes.unsafe_get t.used i = '\001' then begin
      let base = i * slot_len in
      f (Bytes.sub_string t.slots base label_len)
        (Bytes.sub_string t.slots (base + label_len) payload_len)
    end
  done
