type t = (string, string) Hashtbl.t

let create () = Hashtbl.create 1024

let put t ~l ~d =
  if Hashtbl.mem t l then invalid_arg "Enc_index.put: position already occupied";
  Hashtbl.replace t l d

let find t l = Hashtbl.find_opt t l

let entry_count = Hashtbl.length

let size_bytes t = 32 * Hashtbl.length t
