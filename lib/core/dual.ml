type t = {
  ins : Protocol.t;
  del : Protocol.t;
  inserted : (string, Slicer_types.record) Hashtbl.t;
  deleted : (string, unit) Hashtbl.t;
}

type search_outcome = { ids : string list; verified : bool; gas_used : int }

let setup ?width ?tdp_bits ?acc_bits ~seed records =
  let t =
    { ins = Protocol.setup ?width ?tdp_bits ?acc_bits ~seed:(seed ^ ":ins") records;
      del = Protocol.setup ?width ?tdp_bits ?acc_bits ~seed:(seed ^ ":del") [];
      inserted = Hashtbl.create 256;
      deleted = Hashtbl.create 64 }
  in
  List.iter (fun r -> Hashtbl.replace t.inserted r.Slicer_types.id r) records;
  t

let insert t records =
  List.iter
    (fun r ->
      if Hashtbl.mem t.inserted r.Slicer_types.id || Hashtbl.mem t.deleted r.Slicer_types.id then
        invalid_arg (Printf.sprintf "Dual.insert: id %S already used" r.Slicer_types.id))
    records;
  Protocol.insert t.ins records;
  List.iter (fun r -> Hashtbl.replace t.inserted r.Slicer_types.id r) records

let delete t records =
  List.iter
    (fun r ->
      match Hashtbl.find_opt t.inserted r.Slicer_types.id with
      | None -> invalid_arg (Printf.sprintf "Dual.delete: id %S was never inserted" r.Slicer_types.id)
      | Some original ->
        if original <> r then
          invalid_arg (Printf.sprintf "Dual.delete: id %S fields differ from inserted record" r.Slicer_types.id);
        if Hashtbl.mem t.deleted r.Slicer_types.id then
          invalid_arg (Printf.sprintf "Dual.delete: id %S already deleted" r.Slicer_types.id))
    records;
  Protocol.insert t.del records;
  List.iter (fun r -> Hashtbl.replace t.deleted r.Slicer_types.id ()) records

let update t ~old_record record =
  (* Validate *before* touching either instance: once [delete] has fed
     the deletion index, a failing [insert] would leave the update
     half-applied (old record gone, new one absent). With these checks
     up front, [insert] can no longer fail after [delete] succeeds, so
     an update is all-or-nothing. In particular a replayed old ID —
     the natural "overwrite in place" mistake — is rejected here: the
     paper forbids repeated IDs, so an update must carry a fresh one. *)
  let old_id = old_record.Slicer_types.id and new_id = record.Slicer_types.id in
  if String.equal new_id old_id then
    invalid_arg
      (Printf.sprintf "Dual.update: id %S replays the old record's ID — an update needs a fresh ID" new_id);
  if Hashtbl.mem t.inserted new_id || Hashtbl.mem t.deleted new_id then
    invalid_arg (Printf.sprintf "Dual.update: id %S already used" new_id);
  delete t [ old_record ];
  insert t [ record ]

let search t query =
  let ins_out = Protocol.search t.ins query in
  let del_out = Protocol.search t.del query in
  let removed = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace removed id ()) del_out.Protocol.so_ids;
  { ids = List.filter (fun id -> not (Hashtbl.mem removed id)) ins_out.Protocol.so_ids;
    verified = ins_out.Protocol.so_verified && del_out.Protocol.so_verified;
    gas_used = ins_out.Protocol.so_gas_used + del_out.Protocol.so_gas_used }

let live_count t = Hashtbl.length t.inserted - Hashtbl.length t.deleted
