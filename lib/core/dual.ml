type t = {
  ins : Protocol.t;
  del : Protocol.t;
  inserted : (string, Slicer_types.record) Hashtbl.t;
  deleted : (string, unit) Hashtbl.t;
}

type search_outcome = { ids : string list; verified : bool; gas_used : int }

let setup ?width ?tdp_bits ?acc_bits ~seed records =
  let t =
    { ins = Protocol.setup ?width ?tdp_bits ?acc_bits ~seed:(seed ^ ":ins") records;
      del = Protocol.setup ?width ?tdp_bits ?acc_bits ~seed:(seed ^ ":del") [];
      inserted = Hashtbl.create 256;
      deleted = Hashtbl.create 64 }
  in
  List.iter (fun r -> Hashtbl.replace t.inserted r.Slicer_types.id r) records;
  t

let insert t records =
  List.iter
    (fun r ->
      if Hashtbl.mem t.inserted r.Slicer_types.id || Hashtbl.mem t.deleted r.Slicer_types.id then
        invalid_arg (Printf.sprintf "Dual.insert: id %S already used" r.Slicer_types.id))
    records;
  Protocol.insert t.ins records;
  List.iter (fun r -> Hashtbl.replace t.inserted r.Slicer_types.id r) records

let delete t records =
  List.iter
    (fun r ->
      match Hashtbl.find_opt t.inserted r.Slicer_types.id with
      | None -> invalid_arg (Printf.sprintf "Dual.delete: id %S was never inserted" r.Slicer_types.id)
      | Some original ->
        if original <> r then
          invalid_arg (Printf.sprintf "Dual.delete: id %S fields differ from inserted record" r.Slicer_types.id);
        if Hashtbl.mem t.deleted r.Slicer_types.id then
          invalid_arg (Printf.sprintf "Dual.delete: id %S already deleted" r.Slicer_types.id))
    records;
  Protocol.insert t.del records;
  List.iter (fun r -> Hashtbl.replace t.deleted r.Slicer_types.id ()) records

let update t ~old_record record =
  delete t [ old_record ];
  insert t [ record ]

let search t query =
  let ins_out = Protocol.search t.ins query in
  let del_out = Protocol.search t.del query in
  let removed = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace removed id ()) del_out.Protocol.so_ids;
  { ids = List.filter (fun id -> not (Hashtbl.mem removed id)) ins_out.Protocol.so_ids;
    verified = ins_out.Protocol.so_verified && del_out.Protocol.so_verified;
    gas_used = ins_out.Protocol.so_gas_used + del_out.Protocol.so_gas_used }

let live_count t = Hashtbl.length t.inserted - Hashtbl.length t.deleted
