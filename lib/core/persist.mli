(** Wire codecs and file persistence for the artifacts that cross party
    boundaries: plaintext record batches (owner-side staging), Build and
    Insert shipments (owner → cloud), and the trapdoor state (owner →
    user). Everything round-trips through the same length-prefixed
    framing the protocol already uses, so malformed input is rejected
    rather than misparsed. *)

val records_to_bytes : Slicer_types.record list -> string
val records_of_bytes : string -> Slicer_types.record list option

val shipment_to_bytes : Owner.shipment -> string
val shipment_of_bytes : string -> Owner.shipment option

val trapdoor_state_to_bytes : Owner.trapdoor_state -> string
val trapdoor_state_of_bytes : string -> Owner.trapdoor_state option

val save : path:string -> string -> unit
(** Writes bytes to a file (truncating). *)

val load : path:string -> string option
(** Reads a whole file; [None] when unreadable. *)
