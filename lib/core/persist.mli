(** Wire codecs and file persistence for the artifacts that cross party
    boundaries: plaintext record batches (owner-side staging), Build and
    Insert shipments (owner → cloud), and the trapdoor state (owner →
    user). Everything round-trips through the same length-prefixed
    framing the protocol already uses, so malformed input is rejected
    rather than misparsed. *)

val records_to_bytes : Slicer_types.record list -> string
val records_of_bytes : string -> Slicer_types.record list option

val shipment_to_bytes : Owner.shipment -> string
val shipment_of_bytes : string -> Owner.shipment option

val trapdoor_state_to_bytes : Owner.trapdoor_state -> string
val trapdoor_state_of_bytes : string -> Owner.trapdoor_state option

(** {1 User ↔ cloud and chain messages}

    The artifacts the networked deployment ({!Station} behind
    [Net]) moves between mutually-distrustful endpoints: queries and
    search-token sets (user → cloud), result claims — encrypted records
    plus verification objects (cloud → user) — and settlement receipts
    (chain → everyone). *)

val query_to_bytes : Slicer_types.query -> string
val query_of_bytes : string -> Slicer_types.query option

val tokens_to_bytes : Slicer_types.search_token list -> string
val tokens_of_bytes : string -> Slicer_types.search_token list option

val claims_to_bytes : Slicer_contract.claim list -> string
val claims_of_bytes : string -> Slicer_contract.claim list option
(** Byte-identical to the chain-side [submitResult] payload
    ({!Slicer_contract.encode_claims}). *)

val receipt_to_bytes : Vm.receipt -> string
val receipt_of_bytes : string -> Vm.receipt option

val save : path:string -> string -> unit
(** Atomically and durably replaces the file at [path]: bytes are
    written to [path ^ ".tmp"], fsynced, renamed into place, and the
    parent directory fsynced. A crash at any point leaves the previous
    contents (or the previous absence) intact — never a torn file. *)

val load : path:string -> string option
(** Reads a whole file; [None] on {e any} read failure — missing file,
    permission error, or the file shrinking mid-read. *)
