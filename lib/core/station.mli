(** The cloud-side service endpoint: the half of the search round trip
    that runs {e at the cloud}, wired to the chain — receive a token
    set for an escrowed request, answer it from the encrypted index,
    and settle on chain.

    This is the seam the networked deployment cuts along: {!Protocol}
    drives a station in-process, while [Net.Service] drives the same
    station behind a framed-RPC transport. Either way the settlement
    logic (escrow, Algorithm 5 verification, payment/refund) is
    identical because it {e is} the same code. *)

type t

val create :
  cloud:Cloud.t -> ledger:Ledger.t -> contract:Vm.address -> cloud_addr:Vm.address -> t

val cloud : t -> Cloud.t
val ledger : t -> Ledger.t
val contract : t -> Vm.address
val cloud_addr : t -> Vm.address

val batcher : t -> Settle_batch.t option
(** The batched-settlement manager, when optimistic settlement is on. *)

val enable_batching :
  ?state:string -> t -> config:Settle_batch.config -> (unit, string) result
(** Switch {!settle} to optimistic batched settlement: receipts join an
    open batch instead of settling eagerly, and the cloud's slashable
    deposit is posted unless already on the contract (so the call is
    idempotent across recovery). [state] is a {!Settle_batch.export}
    blob from a snapshot. The cloud address must hold [sb_deposit]. *)

type deferral = {
  sd_batch : string;          (** the open batch the receipt joined *)
  sd_index : int;             (** its leaf index *)
  sd_leaf : string;           (** encoded {!Slicer_contract.receipt_leaf} bytes *)
}

type outcome =
  | Settled of Vm.receipt     (** eager: the settlement transaction's receipt *)
  | Deferred of deferral      (** optimistic: committed later in a batch *)

type settlement = {
  se_claims : Slicer_contract.claim list;  (** encrypted results + per-claim VOs *)
  se_batch_witness : Bigint.t option;      (** the one shared VO on the batched path *)
  se_receipt : Vm.receipt;                 (** settlement receipt (eager) or the
                                               escrow receipt (deferred) *)
  se_outcome : outcome;
}

val settle :
  t ->
  client:string ->
  user:Vm.address ->
  request_id:string ->
  payment:int ->
  token_blobs:string list ->
  batched:bool ->
  (settlement, string) result
(** The full cloud+chain half of one search: post the request with the
    fee escrowed from [user], let the cloud retrieve the tokens from
    the chain's event log and search, then either submit results +
    witnesses for eager on-chain verification, or (with batching
    enabled) append the receipt to the open settlement batch. [client]
    is the registered client name committed into the receipt leaf.
    [Error] is returned when the request transaction itself reverts
    (bad escrow, duplicate id …); a failed {e verification} is not an
    error — it surfaces as the receipt's ["refunded"] output. *)

val onchain_ac : t -> Bigint.t option
(** The accumulation value currently on chain (freshness anchor). *)

val install : t -> owner:Vm.address -> Owner.shipment -> (Vm.receipt, string) result
(** Apply a Build/Insert shipment at the cloud and refresh the on-chain
    [Ac] (sender must be the contract owner). *)
