type t = {
  u_keys : Keys.user_keys;
  u_kprf : Keys.prf; (* keyed context for K: one key block per user, not per token *)
  u_width : int;
  mutable trapdoors : Owner.trapdoor_state;
}

let create ~keys ~width state =
  { u_keys = keys; u_kprf = Keys.prf_of_key keys.Keys.u_k; u_width = width; trapdoors = state }

let update_state t state = t.trapdoors <- state

let gen_tokens ~rng t q =
  let keywords =
    match q.Slicer_types.q_cond with
    | Slicer_types.Eq ->
      [ Bitvec.equality_keyword ~attr:q.Slicer_types.q_attr ~width:t.u_width q.Slicer_types.q_value ]
    | Slicer_types.Gt ->
      Sore.shuffle ~rng
        (Bitvec.token_tuples ~attr:q.Slicer_types.q_attr ~width:t.u_width q.Slicer_types.q_value Bitvec.Gt)
    | Slicer_types.Lt ->
      Sore.shuffle ~rng
        (Bitvec.token_tuples ~attr:q.Slicer_types.q_attr ~width:t.u_width q.Slicer_types.q_value Bitvec.Lt)
  in
  List.filter_map
    (fun w ->
      match Hashtbl.find_opt t.trapdoors w with
      | None -> None
      | Some (trapdoor, j) ->
        Some
          { Slicer_types.st_trapdoor = trapdoor;
            st_updates = j;
            st_g1 = Keys.g1_keyed t.u_kprf w;
            st_g2 = Keys.g2_keyed t.u_kprf w })
    keywords

let decrypt_results t ers =
  List.map (Keys.decrypt_record_id ~k_r:t.u_keys.Keys.u_k_r) ers

let known_keywords t = Hashtbl.length t.trapdoors
