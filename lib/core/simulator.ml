let random_prime_of_bits ~rng bits =
  (* A uniform prime of exactly [bits] bits, like the leaked |x|. *)
  Primegen.next_prime (Drbg.bits rng bits)

let simulate_build ~rng (leak : Leakage.build_leakage) =
  let bytes_of_bits b = (b + 7) / 8 in
  let entries =
    List.init leak.Leakage.bl_entry_count (fun _ ->
        ( Drbg.generate rng (bytes_of_bits leak.Leakage.bl_position_bits),
          Drbg.generate rng (bytes_of_bits leak.Leakage.bl_payload_bits) ))
  in
  let primes =
    List.init leak.Leakage.bl_prime_count (fun _ ->
        random_prime_of_bits ~rng leak.Leakage.bl_prime_bits)
  in
  let ac = Bigint.succ (Drbg.bits rng 511) in
  { Owner.sh_entries = entries; sh_primes = primes; sh_ac = ac; sh_groups = [] }

let simulate_search ~rng (leak : Leakage.search_leakage) =
  let result_bytes = (leak.Leakage.sl_result_bits + 7) / 8 in
  let tokens =
    List.map
      (fun j ->
        { Slicer_types.st_trapdoor = Drbg.generate rng 64;
          st_updates = j;
          st_g1 = Drbg.generate rng 16;
          st_g2 = Drbg.generate rng 16 })
      leak.Leakage.sl_generations
  in
  (* Pad or trim the per-token counts to the token list (honest runs
     have equal lengths; the simulator just follows the leakage). *)
  let counts = leak.Leakage.sl_result_counts in
  let claims =
    List.mapi
      (fun i st ->
        let count = match List.nth_opt counts i with Some c -> c | None -> 0 in
        { Slicer_contract.token_bytes = Slicer_types.token_bytes st;
          results = List.init count (fun _ -> Drbg.generate rng result_bytes);
          witness = Bigint.succ (Drbg.bits rng 511) })
      tokens
  in
  (tokens, claims)
