(** The feature matrix of Table I: a machine-checked registry of the
    state-of-the-art verifiable-searchable-encryption schemes the paper
    compares against, rendered by the [table1] bench target. *)

type support = Yes | No | Na

type scheme = {
  label : string;          (** citation label as printed in the paper *)
  group : string;          (** "Traditional" or "Blockchain-based" *)
  dynamics : support;
  numerical : support;
  freshness : support;
  forward_security : support;
  public_verifiability : support;
}

val all : scheme list
(** All rows of Table I, paper order, ending with Slicer ("Ours"). *)

val slicer : scheme
(** The "Ours" row — asserted against the implementation by tests
    (e.g. [numerical = Yes] is backed by the SORE tests, [freshness]
    by the on-chain [Ac] test). *)

val render : unit -> string
(** The formatted table. *)
