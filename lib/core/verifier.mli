(** Local (off-chain) result verification — the pure Algorithm 5 logic.

    The production settlement path runs on chain through
    {!Slicer_contract}; this module exposes the same checks as a pure
    function, used by benches that measure verification cost without
    chain overhead, and by tests that assert the two implementations
    agree claim-for-claim. *)

val verify_claim : Rsa_acc.params -> ac:Bigint.t -> Slicer_contract.claim -> bool
(** [h ← H(er); x ← H_prime(token ‖ h); VerifyMem(x, vo)]. *)

val verify_claims : Rsa_acc.params -> ac:Bigint.t -> Slicer_contract.claim list -> bool
(** Conjunction over all claims (empty list verifies). *)

val verify_claims_batched :
  Rsa_acc.params -> ac:Bigint.t -> Slicer_contract.claim list -> witness:Bigint.t -> bool
(** The one-shared-witness variant ([Rsa_acc.verify_mem_batch]): the
    claims' own [witness] fields are ignored, exactly as the batched
    contract path ignores them. *)
