(** The cloud: index storage and the Search protocol (Algorithm 4).

    The cloud walks each search token's trapdoor chain backwards with
    the public permutation, collects every masked index entry, computes
    the multiset hash and prime representative of the result set, and
    produces the RSA membership witness (the verification object).

    The threat model's dishonest behaviours are built in as
    {!misbehavior} modes so tests, examples and benches can demonstrate
    that every deviation is caught on chain and punished via refund. *)

type t

type misbehavior =
  | Honest
  | Drop_result     (** omit one matched record from each claim *)
  | Inject_result   (** add a bogus encrypted record to each claim *)
  | Tamper_result   (** flip a bit in one returned record *)
  | Forge_witness   (** return a perturbed verification object *)
  | Stale_results   (** answer from a pre-insert snapshot of the index *)

val create :
  ?witness_index:bool -> acc_params:Rsa_acc.params -> tdp_public:Rsa_tdp.public -> unit -> t
(** [~witness_index] (default [true]) maintains a persistent
    {!Witness_tree} over the accumulated primes: Insert only recomputes
    the O(log n) product spine, and a warm witness query is a table
    lookup instead of a full-size exponentiation. [false] falls back to
    the shared-product context for every VO. *)

val install : t -> Owner.shipment -> unit
(** Apply a Build/Insert shipment: add index entries and primes, adopt
    the new [Ac]. [Stale_results] mode answers from the state before
    the most recent shipment. *)

val set_behavior : t -> misbehavior -> unit
val behavior : t -> misbehavior

(** {2 Snapshot export}

    The merged view of every shipment installed so far — feeding these
    back through {!install} as one synthetic shipment on a fresh cloud
    reproduces the same index, prime multiset and [Ac]. *)

val entries : t -> (string * string) list
(** All index entries [(l, d)], deterministically sorted. *)

val primes : t -> Bigint.t list
(** The accumulated prime multiset, in installation order. *)

val current_ac : t -> Bigint.t
(** The accumulation value the cloud currently answers under. *)

val search_one : t -> Slicer_types.search_token -> Slicer_contract.claim
(** Algorithm 4 for a single token (with any configured misbehaviour
    applied). *)

val search : t -> Slicer_types.search_token list -> Slicer_contract.claim list

val search_batched :
  t -> Slicer_types.search_token list -> Slicer_contract.claim list * Bigint.t
(** Like {!search}, but all claims share one batched membership witness
    ([Rsa_acc.batch_witness]): one accumulator pass and a single
    64-byte object for a whole order search, instead of one per slice.
    The per-claim [witness] fields are placeholders; the second
    component is the batch object for
    [Slicer_contract.submit_result_batched]. *)

type search_timings = { result_seconds : float; vo_seconds : float }

val search_instrumented :
  t -> Slicer_types.search_token list -> Slicer_contract.claim list * search_timings
(** {!search} with the wall-clock split the paper's Fig. 5 reports:
    result generation (index traversal and unmasking) versus
    verification-object generation (multiset hash, prime representative
    and RSA witness). *)

val precompute_witnesses : t -> unit
(** Warm every witness at once: with the index enabled this is
    [Witness_tree.warm_all] (and the warmth {e survives} later
    {!install}s — only the stale leaves are lazily re-based); without
    it, the legacy one-shot table from [Rsa_acc.all_witnesses],
    invalidated by the next {!install}. *)

val warm_tokens : t -> Slicer_types.search_token list -> unit
(** Speculative warmer driven from the query stream: batch-derive (and
    cache) the claim primes these tokens will need and touch their
    witness-index leaves, so the subsequent {!search} serves VOs from
    warm state. No-op for a misbehaving cloud (perturbed results make
    speculation useless). *)

(** {2 Witness-index introspection and snapshotting} *)

val witness_index_stats : t -> Witness_tree.stats option
(** [None] when the index is disabled (or not yet built). *)

val witness_index_bytes : t -> int
(** Approximate heap footprint of the maintained index (0 if disabled). *)

val export_witness_index : t -> string
(** Compact serialized warm state (leaf witnesses + generation stamps)
    for the service snapshot; [""] when the index is disabled. *)

val restore_witness_index : t -> string -> int option
(** Graft an exported blob onto the index rebuilt by {!install} replay:
    restored leaves serve identical witnesses without recomputation.
    Returns the number of leaves absorbed; [None] for an empty/foreign
    blob or when the index is disabled. *)

val index_entries : t -> int
val index_bytes : t -> int
(** Fig. 4a metric. *)

val ads_bytes : t -> int
(** Fig. 4b metric: the prime list (34 bytes per 272-bit prime). *)

val prime_count : t -> int
