type build_leakage = {
  bl_entry_count : int;
  bl_position_bits : int;
  bl_payload_bits : int;
  bl_prime_count : int;
  bl_prime_bits : int;
}

let of_shipment (sh : Owner.shipment) =
  let position_bits, payload_bits =
    match sh.Owner.sh_entries with
    | (l, d) :: _ -> (8 * String.length l, 8 * String.length d)
    | [] -> (0, 0)
  in
  let prime_bits = match sh.Owner.sh_primes with x :: _ -> Bigint.num_bits x | [] -> 0 in
  { bl_entry_count = List.length sh.Owner.sh_entries;
    bl_position_bits = position_bits;
    bl_payload_bits = payload_bits;
    bl_prime_count = List.length sh.Owner.sh_primes;
    bl_prime_bits = prime_bits }

let equal_build a b = a = b

type search_leakage = {
  sl_token_count : int;
  sl_generations : int list;
  sl_result_counts : int list;
  sl_result_bits : int;
}

let of_search tokens claims =
  let result_bits =
    List.concat_map (fun (c : Slicer_contract.claim) -> c.Slicer_contract.results) claims
    |> function
    | r :: _ -> 8 * String.length r
    | [] -> 0
  in
  { sl_token_count = List.length tokens;
    sl_generations = List.map (fun t -> t.Slicer_types.st_updates) tokens;
    sl_result_counts =
      List.map (fun (c : Slicer_contract.claim) -> List.length c.Slicer_contract.results) claims;
    sl_result_bits = result_bits }

let repeat_matrix history =
  let arr = Array.of_list (List.map Slicer_types.token_bytes history) in
  let n = Array.length arr in
  Array.init n (fun i -> Array.init n (fun j -> String.equal arr.(i) arr.(j)))
