type support = Yes | No | Na

type scheme = {
  label : string;
  group : string;
  dynamics : support;
  numerical : support;
  freshness : support;
  forward_security : support;
  public_verifiability : support;
}

let traditional = "Traditional"
let blockchain = "Blockchain-based"

let row group label dynamics numerical freshness forward_security public_verifiability =
  { label; group; dynamics; numerical; freshness; forward_security; public_verifiability }

let slicer = row blockchain "Ours (Slicer)" Yes Yes Yes Yes Yes

let all =
  [ row traditional "[3] Chai-Gong PPTrie" No No Na Na No;
    row traditional "[11],[6] Stefanov / Bost" Yes No Na Yes No;
    row traditional "[12] ServeDB" Yes Yes No No No;
    row traditional "[9] Ge et al." Yes No No No No;
    row traditional "[7] GSSE" Yes No Yes No No;
    row traditional "[8] Liu et al." Yes No No No No;
    row traditional "[10] Soleimanian-Khazaei" No No Na Na Yes;
    row traditional "[4] VABKS" No No Na Na No;
    row traditional "[5] VCKS" Yes No No No Yes;
    row blockchain "[13],[14],[15] Hu / Guo / Li" Yes No Yes Yes Yes;
    row blockchain "[19] Cai et al." No No Yes Yes Yes;
    slicer ]

let mark = function Yes -> "yes" | No -> "no " | Na -> "n/a"

let render () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-30s %-16s %-8s %-9s %-9s %-8s %-6s\n" "Design" "Group" "Dynamics"
       "Numerical" "Freshness" "FwdSec" "PubVer");
  Buffer.add_string buf (String.make 92 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-30s %-16s %-8s %-9s %-9s %-8s %-6s\n" s.label s.group (mark s.dynamics)
           (mark s.numerical) (mark s.freshness) (mark s.forward_security)
           (mark s.public_verifiability)))
    all;
  Buffer.contents buf
