(** An executable sketch of the Theorem 2 simulator.

    The security proof argues a PPT simulator given only the leakage
    functions produces transcripts indistinguishable from real protocol
    runs. This module is that simulator, made concrete: it fabricates
    Build shipments and Search transcripts from {!Leakage} profiles
    alone — uniformly random strings and primes of the right counts and
    sizes, with repeat structure honoured — and the test suite checks
    the fabricated transcripts are {e shape-identical} to real ones
    (the efficiently-checkable part of indistinguishability; the
    remaining distance is exactly the PRF/encryption security the
    theorem assumes). *)

val simulate_build : rng:Drbg.t -> Leakage.build_leakage -> Owner.shipment
(** A fake shipment with [p] random (l, d) pairs of the leaked widths
    and [q] random primes of the leaked width — what [S] sends the
    adversary in the Ideal game's build phase. *)

val simulate_search :
  rng:Drbg.t -> Leakage.search_leakage -> Slicer_types.search_token list * Slicer_contract.claim list
(** Fake tokens and claims realising the leaked token count,
    generations and per-token result counts. *)
