(** Key material and the PRFs F and G of the paper.

    [K] keys the keyword-derivation PRF [G]; [K_R] is the record
    encryption key; the trapdoor permutation key pair drives forward
    security. The data owner holds everything; authorized data users
    receive [K], [K_R], the trapdoor {e public} key and the trapdoor
    state [T]. *)

type master = {
  k : string;                 (** PRF key K (16 bytes) *)
  k_r : string;               (** record encryption key K_R (16 bytes) *)
  tdp_public : Rsa_tdp.public;
  tdp_secret : Rsa_tdp.secret;
}

type user_keys = {
  u_k : string;
  u_k_r : string;
  u_tdp_public : Rsa_tdp.public;
}

val generate : ?tdp_bits:int -> rng:Drbg.t -> unit -> master
(** Fresh master keys; [tdp_bits] defaults to 512 (the trapdoor chain is
    exercised constantly, and 512 keeps experiments brisk — pass 1024+
    for deployment-grade parameters). *)

val for_user : master -> user_keys
(** What the owner hands to an authorized data user (no trapdoor secret:
    users cannot forge future insertions). *)

type prf
(** A keyed PRF context ({!Hmac.keyed} under the hood): the ipad/opad
    key blocks are compressed once at construction, halving the SHA-256
    work of every subsequent evaluation. Immutable — safe to share
    across the domain pool. *)

val prf_of_key : string -> prf

val g1_keyed : prf -> string -> string
(** [G(K, w ‖ 1)] under a prepared context for [K]. *)

val g2_keyed : prf -> string -> string
(** [G(K, w ‖ 2)] under a prepared context for [K]. *)

val f_keyed : prf -> trapdoor:string -> counter:int -> string
(** The PRF [F] applied to [t ‖ c] under a prepared context. *)

val f_pair : prf -> prf -> trapdoor:string -> counter:int -> string * string
(** [f_pair g1 g2 ~trapdoor ~counter] evaluates [F] under both
    per-keyword contexts on a single shared [t ‖ c] encoding — the
    position/mask pair of one index entry. *)

val g1 : k:string -> string -> string
(** [G(K, w ‖ 1)] — the per-keyword index PRF key. *)

val g2 : k:string -> string -> string
(** [G(K, w ‖ 2)] — the per-keyword payload PRF key. *)

val f : key:string -> trapdoor:string -> counter:int -> string
(** The PRF [F] applied to [t ‖ c]: derives index positions (under
    [G1]) and payload masks (under [G2]). 16-byte output. *)

val encrypt_record_id : k_r:string -> string -> string
(** Deterministic one-block [Enc(K_R, R)]. *)

val decrypt_record_id : k_r:string -> string -> string
(** Inverse of {!encrypt_record_id}. *)
