(** Deletion and update support (Section V-F): two Slicer instances,
    one accumulating insertions and one accumulating deletions; a search
    answers with the difference of the two verified result sets.

    Record IDs are unique across the system's lifetime: a deleted ID
    cannot be re-inserted (the paper forbids repeated IDs — an update
    uses a fresh version of the payload under the same logical key is
    out of scope; {!update} models it as delete + insert of a record
    whose ID gains a version suffix handled by the caller). *)

type t

type search_outcome = {
  ids : string list;        (** surviving record IDs (inserted minus deleted) *)
  verified : bool;          (** both instances' on-chain verification passed *)
  gas_used : int;           (** combined settlement gas *)
}

val setup :
  ?width:int -> ?tdp_bits:int -> ?acc_bits:int -> seed:string -> Slicer_types.record list -> t

val insert : t -> Slicer_types.record list -> unit
(** @raise Invalid_argument on an ID already inserted or deleted. *)

val delete : t -> Slicer_types.record list -> unit
(** Deletes records (the full original record is required so the
    deletion instance can index the same keywords).
    @raise Invalid_argument when the record was never inserted, the
    fields differ from the inserted version, or it is already deleted. *)

val update : t -> old_record:Slicer_types.record -> Slicer_types.record -> unit
(** Delete + insert, atomically: the new ID is validated {e before}
    either instance is touched, so a rejected update leaves no trace.
    @raise Invalid_argument when the new record replays the old
    record's ID or any already-used ID — updates must carry a fresh
    ID (the paper forbids repeated IDs). *)

val search : t -> Slicer_types.query -> search_outcome

val live_count : t -> int
(** Inserted minus deleted records. *)
