type record = { id : string; fields : (string * int) list }

let record_of_value id v = { id; fields = [ ("", v) ] }

let check_record ~width r =
  if String.length r.id > 15 then invalid_arg "Slicer_types: record id exceeds 15 bytes";
  if r.fields = [] then invalid_arg "Slicer_types: record has no fields";
  List.iter (fun (_, v) -> Bitvec.check_value ~width v) r.fields

type matching_condition = Eq | Gt | Lt

let pp_condition fmt c =
  Format.pp_print_string fmt (match c with Eq -> "=" | Gt -> ">" | Lt -> "<")

type query = { q_attr : string; q_value : int; q_cond : matching_condition }

let query ?(attr = "") v cond = { q_attr = attr; q_value = v; q_cond = cond }

type search_token = { st_trapdoor : string; st_updates : int; st_g1 : string; st_g2 : string }

let token_bytes st =
  Bytesutil.concat [ st.st_trapdoor; string_of_int st.st_updates; st.st_g1; st.st_g2 ]

let token_of_bytes s =
  match Bytesutil.split s with
  | Some [ st_trapdoor; j; st_g1; st_g2 ] ->
    (match int_of_string_opt j with
     | Some st_updates when st_updates >= 0 -> Some { st_trapdoor; st_updates; st_g1; st_g2 }
     | Some _ | None -> None)
  | Some _ | None -> None

let matches q v =
  match q.q_cond with Eq -> q.q_value = v | Gt -> q.q_value > v | Lt -> q.q_value < v

let reference_search records q =
  List.filter_map
    (fun r ->
      match List.assoc_opt q.q_attr r.fields with
      | Some v when matches q v -> Some r.id
      | Some _ | None -> None)
    records
