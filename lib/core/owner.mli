(** The data owner: Build (Algorithm 1) and forward-secure Insert
    (Algorithm 2).

    The owner maintains the trapdoor state [T] (keyword → newest
    trapdoor and generation count) and the set-hash state [S] (token →
    multiset hash of every encrypted result under that keyword so far).
    Each Build/Insert produces a shipment of fresh index entries and
    prime representatives for the cloud plus the new accumulation value
    for the blockchain. *)

type t

type trapdoor_state = (string, string * int) Hashtbl.t
(** The [T] dictionary the owner shares with authorized users. *)

type keyword_group = {
  kg_g1 : string;             (** the keyword's G1 PRF key — the shard key *)
  kg_entries : (string * string) list; (** this keyword's [(l, d)] entries *)
  kg_prime : Bigint.t;        (** this keyword's fresh prime representative *)
}
(** One keyword's slice of a shipment. A keyword's whole counter chain
    must live on one cloud shard (Algorithm 4 scans counters until the
    first miss), so a cluster router splits shipments by group — never
    by individual entry. [kg_g1] equals [st_g1] of every search token
    for the keyword, so tokens route to the same shard as the data. *)

type shipment = {
  sh_entries : (string * string) list; (** new [(l, d)] index entries *)
  sh_primes : Bigint.t list;           (** new prime representatives [X⁺] *)
  sh_ac : Bigint.t;                    (** accumulation value after the update *)
  sh_groups : keyword_group list;
  (** per-keyword breakdown; [sh_entries]/[sh_primes] are the
      concatenation of the groups in keyword order. Empty only for
      shipments decoded from pre-cluster archives. *)
}

val create :
  ?width:int -> rng:Drbg.t -> acc_params:Rsa_acc.params -> keys:Keys.master -> unit -> t
(** Fresh owner state. [width] is the value bit-count [b]
    (default 16; the paper evaluates 8, 16 and 24). *)

val width : t -> int
val keys : t -> Keys.master
val acc_params : t -> Rsa_acc.params
val current_ac : t -> Bigint.t
val all_primes : t -> Bigint.t list
(** The full prime list [X] (what the cloud holds after all shipments). *)

val build : t -> Slicer_types.record list -> shipment
(** Algorithm 1. May only be called once, on a fresh state.
    @raise Invalid_argument on duplicate record IDs or reuse. *)

val insert : t -> Slicer_types.record list -> shipment
(** Algorithm 2: touched keywords advance their trapdoor chain with
    [π_sk⁻¹]; new keywords start one. @raise Invalid_argument on
    duplicate record IDs. *)

val export_trapdoor_state : t -> trapdoor_state
(** Snapshot of [T] for the data user (the owner→user channel of the
    paper's Fig. 1; re-export after every insert). *)

val keyword_count : t -> int
(** Number of distinct keywords — the ADS size driver (Fig. 3b/4b). *)

type timings = { index_seconds : float; ads_seconds : float }

val last_timings : t -> timings
(** Wall-clock split of the most recent {!build}/{!insert}: time spent
    producing index entries (PRFs, record encryption, multiset hashes)
    versus time spent on the ADS (prime representatives and
    accumulation) — the two series of Fig. 3 and Fig. 7. *)
