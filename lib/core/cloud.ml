type misbehavior =
  | Honest
  | Drop_result
  | Inject_result
  | Tamper_result
  | Forge_witness
  | Stale_results

type t = {
  c_params : Rsa_acc.params;
  c_tdp : Rsa_tdp.public;
  index : Enc_index.t;
  mutable primes : Bigint.t list;
  mutable ac : Bigint.t;
  mutable mode : misbehavior;
  (* Snapshot support for Stale_results: positions added by the most
     recent shipment, and the prime list before it. *)
  mutable last_shipment : (string, unit) Hashtbl.t;
  mutable prev_primes : Bigint.t list;
  mutable witness_cache : (string, Bigint.t) Hashtbl.t option;
  (* Shared product tree over [primes]: built lazily on first witness,
     after which every VO is one exact division + one fixed-base
     exponentiation instead of an O(n) re-accumulation. Extended in
     place by [install] (one multiply), never rebuilt. *)
  mutable acc_ctx : Rsa_acc.ctx option;
  (* Persistent witness index: keeps the product/root-split tree alive
     across operations so a warm witness is a table lookup. [None]
     when disabled ([~witness_index:false]) — the ctx path then serves
     every VO. *)
  use_index : bool;
  mutable windex : Witness_tree.t option;
  (* Served-claim cache: an honest repeated token costs one lookup
     instead of an index walk + multiset hash + witness. Reset whenever
     the index state or the behaviour mode changes. *)
  claim_cache : (string, Slicer_contract.claim) Hashtbl.t;
  (* Batched replies cache under the whole token sequence: the combined
     witness is a per-query Shamir recombination, so a repeat served
     from the table saves the exponentiations, not just the walk. *)
  batch_cache : (string, Slicer_contract.claim list * Bigint.t) Hashtbl.t;
}

let claim_cache_limit = 65_536

let c_claim_hits =
  Obs.counter ~help:"served-claim cache hits" "slicer_cloud_claim_cache_hits_total"

let c_claim_misses =
  Obs.counter ~help:"served-claim cache misses" "slicer_cloud_claim_cache_misses_total"

let create ?(witness_index = true) ~acc_params ~tdp_public () =
  { c_params = acc_params;
    c_tdp = tdp_public;
    index = Enc_index.create ();
    primes = [];
    ac = acc_params.Rsa_acc.generator;
    mode = Honest;
    last_shipment = Hashtbl.create 1;
    prev_primes = [];
    witness_cache = None;
    acc_ctx = None;
    use_index = witness_index;
    windex = None;
    claim_cache = Hashtbl.create 256;
    batch_cache = Hashtbl.create 64 }

let windex_of t =
  match t.windex with
  | Some wt -> Some wt
  | None ->
    if not t.use_index then None
    else begin
      let wt = Witness_tree.create t.c_params in
      Witness_tree.append wt t.primes;
      t.windex <- Some wt;
      Some wt
    end

let install t (sh : Owner.shipment) =
  Hashtbl.reset t.claim_cache;
  Hashtbl.reset t.batch_cache;
  t.prev_primes <- t.primes;
  t.last_shipment <- Hashtbl.create (List.length sh.Owner.sh_entries);
  List.iter
    (fun (l, d) ->
      Enc_index.put t.index ~l ~d;
      Hashtbl.replace t.last_shipment l ())
    sh.Owner.sh_entries;
  t.primes <- t.primes @ sh.Owner.sh_primes;
  t.ac <- sh.Owner.sh_ac;
  t.witness_cache <- None;
  (* Insert extends the long-lived structures instead of discarding
     them: the shared product gains one multiply, the witness index
     recomputes only its O(log n) spine. Warm witnesses survive and
     are lazily re-based on the next lookup. *)
  (match t.acc_ctx with
   | Some c -> t.acc_ctx <- Some (Rsa_acc.ctx_extend c sh.Owner.sh_primes)
   | None -> ());
  match t.windex with
  | Some wt -> Witness_tree.append wt sh.Owner.sh_primes
  | None -> ignore (windex_of t)

let set_behavior t m =
  if m <> t.mode then begin
    Hashtbl.reset t.claim_cache;
    Hashtbl.reset t.batch_cache
  end;
  t.mode <- m
let behavior t = t.mode

(* Snapshot export: the merged view of every shipment installed so
   far. [install]ing these as one synthetic shipment on a fresh cloud
   reproduces the same index/primes/ac (snapshot-only granularity:
   Stale_results' one-shipment lookback resets, which only affects the
   misbehaviour demo, never honest state). *)
let entries t =
  let acc = ref [] in
  Enc_index.iter (fun l d -> acc := (l, d) :: !acc) t.index;
  List.sort compare !acc

let primes t = t.primes
let current_ac t = t.ac

let precompute_witnesses t =
  match windex_of t with
  | Some wt -> Witness_tree.warm_all wt
  | None ->
    let cache = Hashtbl.create (List.length t.primes) in
    List.iter
      (fun (x, w) -> Hashtbl.replace cache (Bigint.to_string x) w)
      (Rsa_acc.all_witnesses t.c_params t.primes);
    t.witness_cache <- Some cache

let ctx_of t =
  match t.acc_ctx with
  | Some c -> c
  | None ->
    let c = Rsa_acc.context t.c_params t.primes in
    t.acc_ctx <- Some c;
    c

let witness_for t ~primes x =
  let cached =
    match t.witness_cache with
    | Some cache when t.mode <> Stale_results -> Hashtbl.find_opt cache (Bigint.to_string x)
    | Some _ | None -> None
  in
  match cached with
  | Some w -> w
  | None ->
    if primes == t.primes then begin
      match (if t.mode = Stale_results then None else windex_of t) with
      | Some wt ->
        (* The maintained index serves (or lazily re-bases) the leaf;
           a miss is a non-member claim, same as the ctx fallback. *)
        ( match Witness_tree.witness wt x with Some w -> w | None -> Bigint.one )
      | None ->
        ( try Rsa_acc.ctx_witness (ctx_of t) x with Invalid_argument _ -> Bigint.one )
    end
    else
      (* Snapshot prime lists (Stale_results) don't get a context: the
         misbehaving path need not be fast. *)
      ( try Rsa_acc.mem_witness t.c_params primes x with Invalid_argument _ -> Bigint.one )

let c_tokens = Obs.counter ~help:"search tokens served" "slicer_cloud_tokens_total"

(* Algorithm 4 traversal: walk generations j..0, scanning counters under
   each trapdoor until the first miss. *)
let collect_results_untimed t (st : Slicer_types.search_token) =
  let stale = t.mode = Stale_results in
  let find l =
    if stale && Hashtbl.mem t.last_shipment l then None else Enc_index.find t.index l
  in
  let results = ref [] in
  let trapdoor = ref st.Slicer_types.st_trapdoor in
  (* Keyed PRF contexts amortize the G1/G2 key blocks across the whole
     counter scan of every generation. *)
  let g1k = Keys.prf_of_key st.Slicer_types.st_g1 in
  let g2k = Keys.prf_of_key st.Slicer_types.st_g2 in
  for i = st.Slicer_types.st_updates downto 0 do
    let rec scan c =
      let l = Keys.f_keyed g1k ~trapdoor:!trapdoor ~counter:c in
      match find l with
      | None -> ()
      | Some d ->
        let r = Bytesutil.xor (Keys.f_keyed g2k ~trapdoor:!trapdoor ~counter:c) d in
        results := r :: !results;
        scan (c + 1)
    in
    scan 0;
    if i > 0 then trapdoor := Rsa_tdp.forward_bytes t.c_tdp !trapdoor
  done;
  List.rev !results

let collect_results t st = Obs.span "cloud.collect" (fun () -> collect_results_untimed t st)

let flip_bit s =
  if String.length s = 0 then s
  else String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s

(* Results after the configured misbehaviour is applied. *)
let delivered_results t st =
  let honest_results = collect_results t st in
  match t.mode with
  | Honest | Forge_witness | Stale_results -> honest_results
  | Drop_result -> ( match honest_results with [] -> [] | _ :: rest -> rest )
  | Inject_result -> honest_results @ [ Sha256.digest "bogus" |> fun d -> String.sub d 0 16 ]
  | Tamper_result -> ( match honest_results with [] -> [] | r :: rest -> flip_bit r :: rest )

let claim_input ~token_bytes results =
  let h = Mset_hash.of_list results in
  Bytesutil.concat [ token_bytes; Mset_hash.to_bytes h ]

let claim_prime ~token_bytes results = Prime_rep.to_prime (claim_input ~token_bytes results)

let search_one_uncached t st =
  let results = delivered_results t st in
  let token_bytes = Slicer_types.token_bytes st in
  let x = claim_prime ~token_bytes results in
  let primes = if t.mode = Stale_results then t.prev_primes else t.primes in
  let witness = witness_for t ~primes x in
  let witness = if t.mode = Forge_witness then Bigint.succ witness else witness in
  { Slicer_contract.token_bytes; results; witness }

let search_one t st =
  if t.mode <> Honest then search_one_uncached t st
  else begin
    let token_bytes = Slicer_types.token_bytes st in
    match Hashtbl.find_opt t.claim_cache token_bytes with
    | Some c ->
      Obs.Counter.incr c_claim_hits;
      c
    | None ->
      Obs.Counter.incr c_claim_misses;
      let c = search_one_uncached t st in
      if Hashtbl.length t.claim_cache < claim_cache_limit then
        Hashtbl.replace t.claim_cache token_bytes c;
      c
  end

let search_batched_uncached t sts =
  Obs.span "cloud.search" @@ fun () ->
  let partial =
    List.map
      (fun st ->
        let results = delivered_results t st in
        let token_bytes = Slicer_types.token_bytes st in
        (token_bytes, results, claim_input ~token_bytes results))
      sts
  in
  (* One batched derivation: cache hits are free, misses fan their
     prime search over the pool instead of running one by one. *)
  let xs = Prime_rep.to_primes (List.map (fun (_, _, input) -> input) partial) in
  let witness =
    if t.mode = Stale_results then
      try Rsa_acc.batch_witness t.c_params t.prev_primes xs with Invalid_argument _ -> Bigint.one
    else
      match windex_of t with
      | Some wt -> ( try Witness_tree.batch_witness wt xs with Invalid_argument _ -> Bigint.one )
      | None ->
        ( try Rsa_acc.ctx_batch_witness (ctx_of t) xs with Invalid_argument _ -> Bigint.one )
  in
  let witness = if t.mode = Forge_witness then Bigint.succ witness else witness in
  let claims =
    List.map
      (fun (token_bytes, results, _) ->
        (* Per-claim witnesses are replaced by the one batch object. *)
        { Slicer_contract.token_bytes; results; witness = Bigint.one })
      partial
  in
  (claims, witness)

let search_batched t sts =
  Obs.Counter.add c_tokens (List.length sts);
  if t.mode <> Honest then search_batched_uncached t sts
  else begin
    let key = Bytesutil.concat (List.map Slicer_types.token_bytes sts) in
    match Hashtbl.find_opt t.batch_cache key with
    | Some r ->
      Obs.Counter.incr c_claim_hits;
      r
    | None ->
      Obs.Counter.incr c_claim_misses;
      let r = search_batched_uncached t sts in
      if Hashtbl.length t.batch_cache < claim_cache_limit then Hashtbl.replace t.batch_cache key r;
      r
  end

let search t sts =
  Obs.Counter.add c_tokens (List.length sts);
  Obs.span "cloud.search" (fun () -> List.map (search_one t) sts)

type search_timings = { result_seconds : float; vo_seconds : float }

let search_instrumented t sts =
  let result_time = ref 0. and vo_time = ref 0. in
  let claims =
    List.map
      (fun st ->
        let t0 = Unix.gettimeofday () in
        let results = collect_results t st in
        let t1 = Unix.gettimeofday () in
        let h = Mset_hash.of_list results in
        let token_bytes = Slicer_types.token_bytes st in
        let x = Prime_rep.to_prime (Bytesutil.concat [ token_bytes; Mset_hash.to_bytes h ]) in
        let witness = witness_for t ~primes:t.primes x in
        let t2 = Unix.gettimeofday () in
        result_time := !result_time +. (t1 -. t0);
        vo_time := !vo_time +. (t2 -. t1);
        { Slicer_contract.token_bytes; results; witness })
      sts
  in
  (claims, { result_seconds = !result_time; vo_seconds = !vo_time })

(* Speculative warm-up driven from the query stream: derive (and cache)
   the claim primes a token batch will need, and touch their leaves so
   the witness index re-bases them off the hot path. Misbehaving modes
   perturb the delivered results, so only the honest cloud warms. *)
let warm_tokens t sts =
  (* Tokens whose claims are already cached have nothing left to warm:
     speculation only pays for genuinely fresh queries. *)
  let fresh =
    List.filter
      (fun st -> not (Hashtbl.mem t.claim_cache (Slicer_types.token_bytes st)))
      sts
  in
  if t.mode = Honest && fresh <> [] then
    Obs.span "cloud.warm" @@ fun () ->
    let inputs =
      List.map
        (fun st ->
          let results = collect_results_untimed t st in
          claim_input ~token_bytes:(Slicer_types.token_bytes st) results)
        fresh
    in
    let xs = Prime_rep.to_primes inputs in
    match windex_of t with
    | Some wt -> List.iter (fun x -> ignore (Witness_tree.witness wt x)) xs
    | None -> ()

let witness_index_stats t = Option.map Witness_tree.stats t.windex
let witness_index_bytes t = match t.windex with Some wt -> Witness_tree.size_bytes wt | None -> 0

let export_witness_index t =
  match t.windex with Some wt -> Witness_tree.export wt | None -> ""

let restore_witness_index t blob =
  if String.length blob = 0 then None
  else match windex_of t with Some wt -> Witness_tree.absorb wt blob | None -> None

let index_entries t = Enc_index.entry_count t.index
let index_bytes t = Enc_index.size_bytes t.index
let prime_count t = List.length t.primes
let ads_bytes t = 34 * List.length t.primes
