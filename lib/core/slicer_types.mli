(** Shared protocol types for the Slicer verifiable SSE scheme. *)

type record = { id : string; fields : (string * int) list }
(** A database record: a unique ID (at most 15 bytes, so it encrypts
    into one AES block) and named numerical attributes. The paper's
    single-value records are the special case of one field named [""]
    (see {!record_of_value}). *)

val record_of_value : string -> int -> record
(** [(R, v)] as a record with the anonymous attribute. *)

val check_record : width:int -> record -> unit
(** @raise Invalid_argument on over-long IDs or out-of-range values. *)

type matching_condition = Eq | Gt | Lt
(** The query conditions "=", ">" and "<". *)

val pp_condition : Format.formatter -> matching_condition -> unit

type query = { q_attr : string; q_value : int; q_cond : matching_condition }

val query : ?attr:string -> int -> matching_condition -> query

type search_token = {
  st_trapdoor : string; (** the newest trapdoor [t_j] *)
  st_updates : int;     (** the generation counter [j] *)
  st_g1 : string;       (** index-position PRF key [G1] *)
  st_g2 : string;       (** payload-mask PRF key [G2] *)
}
(** One entry of the [sts] list of Algorithm 3. *)

val token_bytes : search_token -> string
(** Canonical [t_j ‖ j ‖ G1 ‖ G2] serialization — the string both the
    cloud and the contract feed into the prime representative. *)

val token_of_bytes : string -> search_token option
(** Inverse of {!token_bytes} — how the cloud reconstructs tokens it
    retrieved from the chain's event log. *)

val reference_search : record list -> query -> string list
(** Plaintext reference semantics: IDs of records matching the query,
    in insertion order. The oracle tests compare against this. *)
