(** The leakage functions of Section VI-B, made executable.

    Each function computes exactly what the corresponding party observes
    — never plaintexts, keys or keyword identities — so tests can assert
    the implementation leaks no more than the paper's
    [(L_build, L_search, L_insert, L_repeat)] profile. The forward-
    security test is the sharpest use: two same-shape batches of
    {e different} records must produce identical insert leakage. *)

type build_leakage = {
  bl_entry_count : int;          (** [p]: number of index entries *)
  bl_position_bits : int;        (** [|l|] *)
  bl_payload_bits : int;         (** [|d|] *)
  bl_prime_count : int;          (** [q]: size of the prime list *)
  bl_prime_bits : int;           (** [|x|] *)
}
(** [L_build(DB) = (<|l|,|d|>_p, |x|_q)] — what the cloud sees in a
    Build shipment. The same shape describes [L_insert(DB+)]. *)

val of_shipment : Owner.shipment -> build_leakage

val equal_build : build_leakage -> build_leakage -> bool

type search_leakage = {
  sl_token_count : int;             (** [n] *)
  sl_generations : int list;        (** each token's [j] *)
  sl_result_counts : int list;      (** matched entries per token *)
  sl_result_bits : int;             (** [|er|] element width *)
}
(** The observable part of [L_search(v, mc)]: token count, trapdoor
    generations and per-token match counts — never the queried value. *)

val of_search : Slicer_types.search_token list -> Slicer_contract.claim list -> search_leakage

val repeat_matrix : Slicer_types.search_token list -> bool array array
(** [L_repeat]'s matrix [M]: [M.(i).(j)] iff tokens [i] and [j] of the
    query history are identical (the search-pattern leakage). *)
