type trapdoor_state = (string, string * int) Hashtbl.t

type t = {
  o_width : int;
  o_rng : Drbg.t;
  o_params : Rsa_acc.params;
  o_keys : Keys.master;
  o_kprf : Keys.prf; (* keyed context for K, shared by every G1/G2 derivation *)
  trapdoors : trapdoor_state;                   (* T *)
  set_hashes : (string, Mset_hash.t) Hashtbl.t; (* S, keyed by token bytes *)
  seen_ids : (string, unit) Hashtbl.t;
  mutable primes : Bigint.t list; (* X, newest first *)
  mutable ac : Bigint.t;
  mutable built : bool;
  mutable t_index : float;
  mutable t_ads : float;
}

type timings = { index_seconds : float; ads_seconds : float }

type keyword_group = {
  kg_g1 : string;
  kg_entries : (string * string) list;
  kg_prime : Bigint.t;
}

type shipment = {
  sh_entries : (string * string) list;
  sh_primes : Bigint.t list;
  sh_ac : Bigint.t;
  sh_groups : keyword_group list;
}

let create ?(width = 16) ~rng ~acc_params ~keys () =
  { o_width = width;
    o_rng = rng;
    o_params = acc_params;
    o_keys = keys;
    o_kprf = Keys.prf_of_key keys.Keys.k;
    trapdoors = Hashtbl.create 256;
    set_hashes = Hashtbl.create 256;
    seen_ids = Hashtbl.create 256;
    primes = [];
    ac = acc_params.Rsa_acc.generator;
    built = false;
    t_index = 0.;
    t_ads = 0. }

let width t = t.o_width
let keys t = t.o_keys
let acc_params t = t.o_params
let current_ac t = t.ac
let all_primes t = List.rev t.primes
let keyword_count t = Hashtbl.length t.trapdoors

(* Keywords of one record: per field, the equality keyword plus the b
   SORE ciphertext tuples. *)
let keywords_of t record =
  List.concat_map
    (fun (attr, v) ->
      Bitvec.equality_keyword ~attr ~width:t.o_width v :: Bitvec.cipher_tuples ~attr ~width:t.o_width v)
    record.Slicer_types.fields

let token_key ~trapdoor ~j ~g1 ~g2 =
  Slicer_types.token_bytes
    { Slicer_types.st_trapdoor = trapdoor; st_updates = j; st_g1 = g1; st_g2 = g2 }

(* One keyword's slice of an update, after the sequential trapdoor
   bookkeeping: everything needed to derive its index entries and
   set-hash without touching shared state. *)
type keyword_job = {
  kj_trapdoor : string;
  kj_j : int;
  kj_h0 : Mset_hash.t;
  kj_g1 : string;
  kj_g2 : string;
  kj_enc_ids : string array; (* Enc(K_R, id), in record order *)
}

(* Entry derivation for one keyword: the trapdoor chain of counters is
   inherently sequential within the keyword, so keywords are the
   parallel shards. Pure — safe on any domain. *)
let run_job job =
  let g1k = Keys.prf_of_key job.kj_g1 and g2k = Keys.prf_of_key job.kj_g2 in
  let h = ref job.kj_h0 in
  let entries =
    Array.mapi
      (fun c enc_id ->
        let l, mask = Keys.f_pair g1k g2k ~trapdoor:job.kj_trapdoor ~counter:c in
        h := Mset_hash.add !h enc_id;
        (l, Bytesutil.xor mask enc_id))
      job.kj_enc_ids
  in
  let tk = token_key ~trapdoor:job.kj_trapdoor ~j:job.kj_j ~g1:job.kj_g1 ~g2:job.kj_g2 in
  (entries, !h, tk, Bytesutil.concat [ tk; Mset_hash.to_bytes !h ])

(* Core of Algorithms 1 and 2: fold a batch of records into the state,
   returning the shipment for the cloud and chain.

   Pipeline: (1) slice records into keywords across the domain pool;
   (2) sequentially group by keyword, encrypt each record id once, and
   advance trapdoor chains in first-seen keyword order (the only RNG
   consumer, so the draw order is pool-size independent); (3) fan the
   per-keyword entry/set-hash derivation across the pool; (4) batch the
   prime walks and the Ac fold (pool-parallel inside the accumulator).
   Every phase either preserves input order or is keyed by it, so the
   shipment is byte-identical at every pool size. *)
let add_records t records =
  let started = Unix.gettimeofday () in
  let ads_time = ref 0. in
  let timed_ads f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    ads_time := !ads_time +. (Unix.gettimeofday () -. t0);
    r
  in
  List.iter (Slicer_types.check_record ~width:t.o_width) records;
  List.iter
    (fun r ->
      if Hashtbl.mem t.seen_ids r.Slicer_types.id then
        invalid_arg (Printf.sprintf "Owner: duplicate record id %S" r.Slicer_types.id);
      Hashtbl.replace t.seen_ids r.Slicer_types.id ())
    records;
  let pool = Parallel.pool () in
  let record_arr = Array.of_list records in
  (* Phase 1: record -> keyword/tuple slicing, fanned across the pool. *)
  let keyword_slices =
    Obs.span "core.slice" (fun () -> Parallel.Pool.map pool (keywords_of t) record_arr)
  in
  (* Each record id is encrypted exactly once, not once per keyword.
     Sequential: it warms the AES schedule cache, which must not be
     mutated concurrently. *)
  let enc_ids = Array.map (fun r -> Keys.encrypt_record_id ~k_r:t.o_keys.Keys.k_r r.Slicer_types.id) record_arr in
  (* Phase 2: group encrypted ids by keyword, preserving record order. *)
  let by_keyword : (string, string list ref) Hashtbl.t = Hashtbl.create 1024 in
  let keyword_order = ref [] in
  Array.iteri
    (fun i ws ->
      let enc_id = enc_ids.(i) in
      List.iter
        (fun w ->
          match Hashtbl.find_opt by_keyword w with
          | Some ids -> ids := enc_id :: !ids
          | None ->
            Hashtbl.replace by_keyword w (ref [ enc_id ]);
            keyword_order := w :: !keyword_order)
        ws)
    keyword_slices;
  let keywords = Array.of_list (List.rev !keyword_order) in
  (* Per-keyword G1/G2 derivation is independent of the trapdoor state:
     fan it out too. *)
  let gpairs =
    Parallel.Pool.map pool (fun w -> (Keys.g1_keyed t.o_kprf w, Keys.g2_keyed t.o_kprf w)) keywords
  in
  (* Trapdoor bookkeeping: fresh chain for a new keyword, or advance the
     chain with the inverse permutation (forward security). Sequential
     in first-seen order — this is where the RNG is consumed. *)
  let jobs =
    Array.mapi
      (fun i w ->
        let g1, g2 = gpairs.(i) in
        let trapdoor, j, h0 =
          match Hashtbl.find_opt t.trapdoors w with
          | None -> (Rsa_tdp.random_element ~rng:t.o_rng t.o_keys.Keys.tdp_public, 0, Mset_hash.empty)
          | Some (told, jold) ->
            let old_tk = token_key ~trapdoor:told ~j:jold ~g1 ~g2 in
            let h0 =
              match Hashtbl.find_opt t.set_hashes old_tk with
              | Some h ->
                Hashtbl.remove t.set_hashes old_tk;
                h
              | None -> Mset_hash.empty
            in
            (Rsa_tdp.inverse_bytes t.o_keys.Keys.tdp_secret t.o_keys.Keys.tdp_public told, jold + 1, h0)
        in
        Hashtbl.replace t.trapdoors w (trapdoor, j);
        { kj_trapdoor = trapdoor;
          kj_j = j;
          kj_h0 = h0;
          kj_g1 = g1;
          kj_g2 = g2;
          kj_enc_ids = Array.of_list (List.rev !(Hashtbl.find by_keyword w)) })
      keywords
  in
  (* Phase 3: per-entry (l, d) derivation and set-hash folds, sharded by
     keyword across the pool. *)
  let results = Obs.span "core.derive" (fun () -> Parallel.Pool.map pool run_job jobs) in
  let entries = ref [] and prime_inputs = ref [] in
  Array.iter
    (fun (job_entries, h, tk, prime_input) ->
      Array.iter (fun e -> entries := e :: !entries) job_entries;
      Hashtbl.replace t.set_hashes tk h;
      prime_inputs := prime_input :: !prime_inputs)
    results;
  (* The prime walks dominate ADS build; one batched call fans them out
     across the domain pool. A single product-tree exponentiation then
     folds the whole batch into Ac (equal to the per-prime fold, since
     g^x^y = g^(xy)). *)
  let new_primes = timed_ads (fun () -> Prime_rep.to_primes (List.rev !prime_inputs)) in
  let fresh = t.primes = [] in
  t.primes <- List.rev_append new_primes t.primes;
  timed_ads (fun () ->
      t.ac <-
        (if fresh then Rsa_acc.accumulate t.o_params new_primes
         else Rsa_acc.add_batch t.o_params t.ac new_primes));
  t.t_ads <- !ads_time;
  t.t_index <- Unix.gettimeofday () -. started -. !ads_time;
  (* Per-keyword groups, aligned with [results]/[gpairs]/[new_primes]:
     each keyword's entries and prime travel together so a router can
     split the shipment by shard key (a prefix of the keyword's G1 key)
     without re-deriving anything. The flat views above are exactly the
     concatenation of the groups. *)
  let prime_arr = Array.of_list new_primes in
  let groups =
    Array.to_list
      (Array.mapi
         (fun i (job_entries, _, _, _) ->
           { kg_g1 = fst gpairs.(i);
             kg_entries = Array.to_list job_entries;
             kg_prime = prime_arr.(i) })
         results)
  in
  { sh_entries = List.rev !entries; sh_primes = new_primes; sh_ac = t.ac; sh_groups = groups }

let build t records =
  if t.built then invalid_arg "Owner.build: already built (use insert)";
  t.built <- true;
  Obs.span "core.build" (fun () -> add_records t records)

let insert t records =
  if not t.built then invalid_arg "Owner.insert: call build first";
  Obs.span "core.insert" (fun () -> add_records t records)

let export_trapdoor_state t = Hashtbl.copy t.trapdoors

let last_timings t = { index_seconds = t.t_index; ads_seconds = t.t_ads }
