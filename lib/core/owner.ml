type trapdoor_state = (string, string * int) Hashtbl.t

type t = {
  o_width : int;
  o_rng : Drbg.t;
  o_params : Rsa_acc.params;
  o_keys : Keys.master;
  trapdoors : trapdoor_state;                   (* T *)
  set_hashes : (string, Mset_hash.t) Hashtbl.t; (* S, keyed by token bytes *)
  seen_ids : (string, unit) Hashtbl.t;
  mutable primes : Bigint.t list; (* X, newest first *)
  mutable ac : Bigint.t;
  mutable built : bool;
  mutable t_index : float;
  mutable t_ads : float;
}

type timings = { index_seconds : float; ads_seconds : float }

type shipment = {
  sh_entries : (string * string) list;
  sh_primes : Bigint.t list;
  sh_ac : Bigint.t;
}

let create ?(width = 16) ~rng ~acc_params ~keys () =
  { o_width = width;
    o_rng = rng;
    o_params = acc_params;
    o_keys = keys;
    trapdoors = Hashtbl.create 256;
    set_hashes = Hashtbl.create 256;
    seen_ids = Hashtbl.create 256;
    primes = [];
    ac = acc_params.Rsa_acc.generator;
    built = false;
    t_index = 0.;
    t_ads = 0. }

let width t = t.o_width
let keys t = t.o_keys
let acc_params t = t.o_params
let current_ac t = t.ac
let all_primes t = List.rev t.primes
let keyword_count t = Hashtbl.length t.trapdoors

(* Keywords of one record: per field, the equality keyword plus the b
   SORE ciphertext tuples. *)
let keywords_of t record =
  List.concat_map
    (fun (attr, v) ->
      Bitvec.equality_keyword ~attr ~width:t.o_width v :: Bitvec.cipher_tuples ~attr ~width:t.o_width v)
    record.Slicer_types.fields

let token_key ~trapdoor ~j ~g1 ~g2 =
  Slicer_types.token_bytes
    { Slicer_types.st_trapdoor = trapdoor; st_updates = j; st_g1 = g1; st_g2 = g2 }

(* Core of Algorithms 1 and 2: fold a batch of records into the state,
   returning the shipment for the cloud and chain. *)
let add_records t records =
  let started = Unix.gettimeofday () in
  let ads_time = ref 0. in
  let timed_ads f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    ads_time := !ads_time +. (Unix.gettimeofday () -. t0);
    r
  in
  List.iter (Slicer_types.check_record ~width:t.o_width) records;
  List.iter
    (fun r ->
      if Hashtbl.mem t.seen_ids r.Slicer_types.id then
        invalid_arg (Printf.sprintf "Owner: duplicate record id %S" r.Slicer_types.id);
      Hashtbl.replace t.seen_ids r.Slicer_types.id ())
    records;
  (* Group record IDs by keyword, preserving record order. *)
  let by_keyword : (string, string list ref) Hashtbl.t = Hashtbl.create 1024 in
  let keyword_order = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun w ->
          match Hashtbl.find_opt by_keyword w with
          | Some ids -> ids := r.Slicer_types.id :: !ids
          | None ->
            Hashtbl.replace by_keyword w (ref [ r.Slicer_types.id ]);
            keyword_order := w :: !keyword_order)
        (keywords_of t r))
    records;
  let entries = ref [] and prime_inputs = ref [] in
  let k = t.o_keys.Keys.k and k_r = t.o_keys.Keys.k_r in
  List.iter
    (fun w ->
      let ids = List.rev !(Hashtbl.find by_keyword w) in
      let g1 = Keys.g1 ~k w and g2 = Keys.g2 ~k w in
      (* Trapdoor bookkeeping: fresh chain for a new keyword, or advance
         the chain with the inverse permutation (forward security). *)
      let trapdoor, j, h0 =
        match Hashtbl.find_opt t.trapdoors w with
        | None -> (Rsa_tdp.random_element ~rng:t.o_rng t.o_keys.Keys.tdp_public, 0, Mset_hash.empty)
        | Some (told, jold) ->
          let h0 =
            match Hashtbl.find_opt t.set_hashes (token_key ~trapdoor:told ~j:jold ~g1 ~g2) with
            | Some h ->
              Hashtbl.remove t.set_hashes (token_key ~trapdoor:told ~j:jold ~g1 ~g2);
              h
            | None -> Mset_hash.empty
          in
          (Rsa_tdp.inverse_bytes t.o_keys.Keys.tdp_secret t.o_keys.Keys.tdp_public told, jold + 1, h0)
      in
      Hashtbl.replace t.trapdoors w (trapdoor, j);
      let h = ref h0 in
      List.iteri
        (fun c id ->
          let l = Keys.f ~key:g1 ~trapdoor ~counter:c in
          let enc_id = Keys.encrypt_record_id ~k_r id in
          let d = Bytesutil.xor (Keys.f ~key:g2 ~trapdoor ~counter:c) enc_id in
          entries := (l, d) :: !entries;
          h := Mset_hash.add !h enc_id)
        ids;
      let tk = token_key ~trapdoor ~j ~g1 ~g2 in
      Hashtbl.replace t.set_hashes tk !h;
      prime_inputs := Bytesutil.concat [ tk; Mset_hash.to_bytes !h ] :: !prime_inputs)
    (List.rev !keyword_order);
  (* The prime walks dominate ADS build; one batched call fans them out
     across the domain pool. A single product-tree exponentiation then
     folds the whole batch into Ac (equal to the per-prime fold, since
     g^x^y = g^(xy)). *)
  let new_primes = timed_ads (fun () -> Prime_rep.to_primes (List.rev !prime_inputs)) in
  let fresh = t.primes = [] in
  t.primes <- List.rev_append new_primes t.primes;
  timed_ads (fun () ->
      t.ac <-
        (if fresh then Rsa_acc.accumulate t.o_params new_primes
         else Rsa_acc.add_batch t.o_params t.ac new_primes));
  t.t_ads <- !ads_time;
  t.t_index <- Unix.gettimeofday () -. started -. !ads_time;
  { sh_entries = List.rev !entries; sh_primes = new_primes; sh_ac = t.ac }

let build t records =
  if t.built then invalid_arg "Owner.build: already built (use insert)";
  t.built <- true;
  add_records t records

let insert t records =
  if not t.built then invalid_arg "Owner.insert: call build first";
  add_records t records

let export_trapdoor_state t = Hashtbl.copy t.trapdoors

let last_timings t = { index_seconds = t.t_index; ads_seconds = t.t_ads }
