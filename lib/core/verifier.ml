(* Claim verification is a pure function of (params, Ac, claim), and a
   user re-checks the same VO every time a query repeats — so verdicts
   are memoized under a digest of every verification input. Tampering
   with any field changes the key, never aliases into a stale verdict. *)
let memo_limit = 65_536
let memo : (string, bool) Hashtbl.t = Hashtbl.create 256

let memoized key compute =
  match Hashtbl.find_opt memo key with
  | Some v -> v
  | None ->
    let v = compute () in
    if Hashtbl.length memo < memo_limit then Hashtbl.replace memo key v;
    v

let claim_bytes (c : Slicer_contract.claim) =
  Bytesutil.concat
    [ c.Slicer_contract.token_bytes;
      Bigint.to_bytes_be c.Slicer_contract.witness;
      Bytesutil.concat c.Slicer_contract.results ]

let verify_claim params ~ac (c : Slicer_contract.claim) =
  let key =
    Sha256.digest
      (Bytesutil.concat
         [ "claim"; Bigint.to_bytes_be params.Rsa_acc.modulus; Bigint.to_bytes_be ac;
           claim_bytes c ])
  in
  memoized key @@ fun () ->
  let h = Mset_hash.of_list c.Slicer_contract.results in
  let x =
    Prime_rep.to_prime (Bytesutil.concat [ c.Slicer_contract.token_bytes; Mset_hash.to_bytes h ])
  in
  Rsa_acc.verify_mem params ~ac ~x ~witness:c.Slicer_contract.witness

let verify_claims params ~ac claims =
  Obs.span "core.verify" (fun () -> List.for_all (verify_claim params ~ac) claims)

let claim_prime (c : Slicer_contract.claim) =
  let h = Mset_hash.of_list c.Slicer_contract.results in
  Prime_rep.to_prime (Bytesutil.concat [ c.Slicer_contract.token_bytes; Mset_hash.to_bytes h ])

let verify_claims_batched params ~ac claims ~witness =
  Obs.span "core.verify" @@ fun () ->
  let key =
    Sha256.digest
      (Bytesutil.concat
         [ "batch"; Bigint.to_bytes_be params.Rsa_acc.modulus; Bigint.to_bytes_be ac;
           Bigint.to_bytes_be witness; Bytesutil.concat (List.map claim_bytes claims) ])
  in
  memoized key @@ fun () ->
  Rsa_acc.verify_mem_batch params ~ac ~xs:(List.map claim_prime claims) ~witness
