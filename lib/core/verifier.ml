let verify_claim params ~ac (c : Slicer_contract.claim) =
  let h = Mset_hash.of_list c.Slicer_contract.results in
  let x =
    Prime_rep.to_prime (Bytesutil.concat [ c.Slicer_contract.token_bytes; Mset_hash.to_bytes h ])
  in
  Rsa_acc.verify_mem params ~ac ~x ~witness:c.Slicer_contract.witness

let verify_claims params ~ac claims =
  Obs.span "core.verify" (fun () -> List.for_all (verify_claim params ~ac) claims)

let claim_prime (c : Slicer_contract.claim) =
  let h = Mset_hash.of_list c.Slicer_contract.results in
  Prime_rep.to_prime (Bytesutil.concat [ c.Slicer_contract.token_bytes; Mset_hash.to_bytes h ])

let verify_claims_batched params ~ac claims ~witness =
  Obs.span "core.verify" (fun () ->
      Rsa_acc.verify_mem_batch params ~ac ~xs:(List.map claim_prime claims) ~witness)
