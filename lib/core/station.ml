type t = {
  s_cloud : Cloud.t;
  s_ledger : Ledger.t;
  s_contract : Vm.address;
  s_cloud_addr : Vm.address;
  mutable s_batcher : Settle_batch.t option;
}

let create ~cloud ~ledger ~contract ~cloud_addr =
  { s_cloud = cloud; s_ledger = ledger; s_contract = contract; s_cloud_addr = cloud_addr;
    s_batcher = None }

let cloud t = t.s_cloud
let ledger t = t.s_ledger
let contract t = t.s_contract
let cloud_addr t = t.s_cloud_addr
let batcher t = t.s_batcher

let enable_batching ?state t ~config =
  let b =
    match state with
    | None ->
      Some
        (Settle_batch.create ~config ~ledger:t.s_ledger ~contract:t.s_contract
           ~cloud:t.s_cloud_addr)
    | Some bytes ->
      Settle_batch.restore ~config ~ledger:t.s_ledger ~contract:t.s_contract
        ~cloud:t.s_cloud_addr bytes
  in
  match b with
  | None -> Error "corrupt settle-batch snapshot"
  | Some b ->
    (* The deposit needs funds at the cloud's address; the service
       faucets it before calling. Idempotent across recovery. *)
    (match Settle_batch.ensure_deposit b with
     | Some r when Result.is_error r.Vm.r_output ->
       Error
         (Printf.sprintf "deposit reverted: %s"
            (match r.Vm.r_output with Error e -> e | Ok _ -> ""))
     | Some _ | None ->
       t.s_batcher <- Some b;
       Ok ())

type deferral = {
  sd_batch : string;          (* the open batch the receipt joined *)
  sd_index : int;             (* its leaf index *)
  sd_leaf : string;           (* encoded leaf bytes *)
}

type outcome =
  | Settled of Vm.receipt     (* eager: the settlement transaction's receipt *)
  | Deferred of deferral      (* optimistic: committed later in a batch *)

type settlement = {
  se_claims : Slicer_contract.claim list;
  se_batch_witness : Bigint.t option;
  se_receipt : Vm.receipt;
  se_outcome : outcome;
}

let settle t ~client ~user ~request_id ~payment ~token_blobs ~batched =
  Obs.span "chain.settle" @@ fun () ->
  let rr =
    Slicer_contract.request_search t.s_ledger ~user ~contract:t.s_contract ~request_id
      ~tokens:token_blobs ~payment
  in
  match rr.Vm.r_output with
  | Error e -> Error e
  | Ok _ ->
    (* The cloud retrieves the tokens from the chain's event log (it
       never talks to the user directly) and reconstructs their
       structure. *)
    let tokens =
      match Slicer_contract.stored_tokens t.s_ledger ~contract:t.s_contract ~request_id with
      | Some blobs -> List.filter_map Slicer_types.token_of_bytes blobs
      | None -> []
    in
    let claims, batch_witness =
      if batched then
        let claims, witness = Cloud.search_batched t.s_cloud tokens in
        (claims, Some witness)
      else (Cloud.search t.s_cloud tokens, None)
    in
    (match t.s_batcher with
     | None ->
       (* Eager settlement: verify and pay/refund in one transaction. *)
       let sr =
         match batch_witness with
         | Some witness ->
           Slicer_contract.submit_result_batched t.s_ledger ~cloud:t.s_cloud_addr
             ~contract:t.s_contract ~request_id claims ~witness
         | None ->
           Slicer_contract.submit_result t.s_ledger ~cloud:t.s_cloud_addr
             ~contract:t.s_contract ~request_id claims
       in
       Ok { se_claims = claims; se_batch_witness = batch_witness; se_receipt = sr;
            se_outcome = Settled sr }
     | Some b ->
       (* Optimistic settlement: no on-chain verification now — append
          the receipt leaf to the open batch. The escrow stays locked
          until the batch finalizes (or a dispute refunds it); the
          reply carries the escrow receipt. *)
       let leaf =
         { Slicer_contract.rl_client = client;
           rl_request = request_id;
           rl_claim_hash = Sha256.digest (Slicer_contract.encode_claims claims);
           rl_witness_digest = Slicer_contract.witness_digest ~claims ~batch_witness }
       in
       let batch, index = Settle_batch.add b leaf in
       Ok { se_claims = claims; se_batch_witness = batch_witness; se_receipt = rr;
            se_outcome =
              Deferred { sd_batch = batch; sd_index = index;
                         sd_leaf = Slicer_contract.encode_leaf leaf } })

let onchain_ac t = Slicer_contract.stored_ac t.s_ledger ~contract:t.s_contract

let install t ~owner (sh : Owner.shipment) =
  Obs.span "chain.install" @@ fun () ->
  Cloud.install t.s_cloud sh;
  let receipt =
    Slicer_contract.update_ac t.s_ledger ~owner ~contract:t.s_contract sh.Owner.sh_ac
  in
  match receipt.Vm.r_output with Ok _ -> Ok receipt | Error e -> Error e
