type t = {
  s_cloud : Cloud.t;
  s_ledger : Ledger.t;
  s_contract : Vm.address;
  s_cloud_addr : Vm.address;
}

let create ~cloud ~ledger ~contract ~cloud_addr =
  { s_cloud = cloud; s_ledger = ledger; s_contract = contract; s_cloud_addr = cloud_addr }

let cloud t = t.s_cloud
let ledger t = t.s_ledger
let contract t = t.s_contract
let cloud_addr t = t.s_cloud_addr

type settlement = {
  se_claims : Slicer_contract.claim list;
  se_batch_witness : Bigint.t option;
  se_receipt : Vm.receipt;
}

let settle t ~user ~request_id ~payment ~token_blobs ~batched =
  Obs.span "chain.settle" @@ fun () ->
  let rr =
    Slicer_contract.request_search t.s_ledger ~user ~contract:t.s_contract ~request_id
      ~tokens:token_blobs ~payment
  in
  match rr.Vm.r_output with
  | Error e -> Error e
  | Ok _ ->
    (* The cloud retrieves the tokens from the chain's event log (it
       never talks to the user directly) and reconstructs their
       structure. *)
    let tokens =
      match Slicer_contract.stored_tokens t.s_ledger ~contract:t.s_contract ~request_id with
      | Some blobs -> List.filter_map Slicer_types.token_of_bytes blobs
      | None -> []
    in
    if batched then begin
      let claims, witness = Cloud.search_batched t.s_cloud tokens in
      let sr =
        Slicer_contract.submit_result_batched t.s_ledger ~cloud:t.s_cloud_addr
          ~contract:t.s_contract ~request_id claims ~witness
      in
      Ok { se_claims = claims; se_batch_witness = Some witness; se_receipt = sr }
    end
    else begin
      let claims = Cloud.search t.s_cloud tokens in
      let sr =
        Slicer_contract.submit_result t.s_ledger ~cloud:t.s_cloud_addr ~contract:t.s_contract
          ~request_id claims
      in
      Ok { se_claims = claims; se_batch_witness = None; se_receipt = sr }
    end

let onchain_ac t = Slicer_contract.stored_ac t.s_ledger ~contract:t.s_contract

let install t ~owner (sh : Owner.shipment) =
  Obs.span "chain.install" @@ fun () ->
  Cloud.install t.s_cloud sh;
  let receipt =
    Slicer_contract.update_ac t.s_ledger ~owner ~contract:t.s_contract sh.Owner.sh_ac
  in
  match receipt.Vm.r_output with Ok _ -> Ok receipt | Error e -> Error e
