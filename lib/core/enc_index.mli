(** The encrypted index [I]: a history-independent dictionary from
    16-byte positions [l] to 16-byte masked payloads [d]. The cloud
    stores and queries it; nothing about keyword grouping or insertion
    order is recoverable from it (positions are PRF outputs). *)

type t

val create : unit -> t

val put : t -> l:string -> d:string -> unit
(** @raise Invalid_argument if the position is already occupied — PRF
    collisions at 128 bits indicate a protocol bug, not bad luck. *)

val find : t -> string -> string option

val entry_count : t -> int

val size_bytes : t -> int
(** Storage footprint: 32 bytes per entry (16-byte key + 16-byte
    payload) — the Fig. 4a metric. *)
