(** The encrypted index [I]: a history-independent dictionary from
    16-byte positions [l] to 16-byte masked payloads [d]. The cloud
    stores and queries it; nothing about keyword grouping or insertion
    order is recoverable from it (positions are PRF outputs).

    Entries are stored inline in a contiguous open-addressing arena —
    32 bytes per entry, no per-entry boxing — and the slot hash reuses
    the label's own leading bytes, so lookups cost one probe chain over
    flat memory. *)

type t

val create : unit -> t

val put : t -> l:string -> d:string -> unit
(** @raise Invalid_argument if the position is already occupied — PRF
    collisions at 128 bits indicate a protocol bug, not bad luck — or
    if [l] or [d] is not exactly 16 bytes. *)

val find : t -> string -> string option

val entry_count : t -> int

val size_bytes : t -> int
(** Exact stored label+payload bytes (32 per entry under the fixed
    16+16 layout) — the Fig. 4a metric. *)

val capacity_bytes : t -> int
(** Allocated arena footprint (slots plus occupancy vector), including
    the open-addressing slack. *)

val iter : (string -> string -> unit) -> t -> unit
(** [iter f t] applies [f l d] to every entry, in arena (i.e. hash)
    order — history-independent by construction. *)
