(** RSA trapdoor permutation — the forward-security engine of the
    protocol (after Bost's Σoφoς).

    The data owner advances a keyword's trapdoor with the *inverse*
    direction [π_sk^{-1}] on every insertion; the cloud walks the chain
    *backwards* with the public direction [π_pk]. A cloud holding only
    [pk] cannot compute future trapdoors, so an insertion reveals nothing
    about whether the new entry matches past queries. *)

type public = private { pn : Bigint.t; e : Bigint.t }
type secret = private { sn : Bigint.t; d : Bigint.t }

val keygen : ?bits:int -> rng:Drbg.t -> unit -> public * secret
(** Fresh key pair; default 1024-bit modulus, [e = 65537]. *)

val public_of_parts : n:Bigint.t -> e:Bigint.t -> public
(** Reassembles a public key received over the wire (the owner → user
    provisioning channel). @raise Invalid_argument on degenerate
    parameters. *)

val forward : public -> Bigint.t -> Bigint.t
(** [π_pk(x) = x^e mod n]. *)

val inverse : secret -> Bigint.t -> Bigint.t
(** [π_sk^{-1}(x) = x^d mod n]. *)

val element_bytes : public -> int
(** Fixed serialization width for domain elements of this key. *)

val random_element : rng:Drbg.t -> public -> string
(** A fresh random trapdoor, serialized. *)

val forward_bytes : public -> string -> string
(** {!forward} on a serialized element. @raise Invalid_argument on a
    string that does not decode into the domain. *)

val inverse_bytes : secret -> public -> string -> string
(** {!inverse} on a serialized element. *)
