type public = { pn : Bigint.t; e : Bigint.t }
type secret = { sn : Bigint.t; d : Bigint.t }

let public_exponent = Bigint.of_int 65537

let public_of_parts ~n ~e =
  if Bigint.compare n (Bigint.of_int 3) <= 0 then invalid_arg "Rsa_tdp.public_of_parts: modulus too small";
  if Bigint.compare e Bigint.one <= 0 then invalid_arg "Rsa_tdp.public_of_parts: exponent too small";
  { pn = n; e }

let keygen ?(bits = 1024) ~rng () =
  let rec gen () =
    let m = Primegen.random_rsa_modulus ~rng ~bits () in
    match Bigint.mod_inv public_exponent m.Primegen.phi with
    | Some d -> ({ pn = m.Primegen.n; e = public_exponent }, { sn = m.Primegen.n; d })
    | None -> gen () (* gcd(e, phi) <> 1: rare, redraw *)
  in
  gen ()

let forward pk x = Bigint.mod_pow x pk.e pk.pn
let inverse sk x = Bigint.mod_pow x sk.d sk.sn

let element_bytes pk = (Bigint.num_bits pk.pn + 7) / 8

let decode pk s =
  if String.length s <> element_bytes pk then invalid_arg "Rsa_tdp: bad element length";
  let x = Bigint.of_bytes_be s in
  if Bigint.compare x pk.pn >= 0 then invalid_arg "Rsa_tdp: element out of domain";
  x

let encode pk x = Bigint.to_bytes_be ~len:(element_bytes pk) x

let random_element ~rng pk = encode pk (Drbg.uniform_bigint rng pk.pn)

let forward_bytes pk s = encode pk (forward pk (decode pk s))

let inverse_bytes sk pk s = encode pk (inverse sk (decode pk s))
