(** Binary Merkle hash tree over SHA-256.

    Two roles in this repository: the transaction tree inside blockchain
    blocks, and the ablation baseline against the RSA accumulator (the
    paper argues RSA witnesses are constant-size where Merkle proofs are
    logarithmic and position-revealing — the benches quantify that). *)

type t
(** A Merkle tree built over a fixed list of leaf payloads. *)

type proof = { index : int; path : (string * [ `Left | `Right ]) list }
(** An inclusion proof: sibling digests from leaf to root, each tagged
    with the side on which the sibling sits. *)

val build : string list -> t
(** Builds a tree over the given leaves. Leaves are hashed with a
    domain-separated prefix, as are interior nodes (no second-preimage
    ambiguity between leaf and node layers). The empty list yields a
    well-defined sentinel root. *)

val root : t -> string
(** 32-byte root digest. *)

val leaf_count : t -> int

val prove : t -> int -> proof
(** Inclusion proof for the leaf at the given index.
    @raise Invalid_argument when out of bounds. *)

val verify : root:string -> leaf:string -> proof -> bool
(** Checks an inclusion proof against a root and the claimed payload.
    The claimed [index] must agree with the path's side sequence (the
    sides re-encode the index bit by bit), so a proof cannot be
    re-attached to a different position. Never raises. *)

val index_consistent : proof -> bool
(** Whether [proof.index] matches the path's side sequence. *)

val proof_to_bytes : proof -> string

val proof_of_bytes : string -> proof option
(** All-or-nothing decode of {!proof_to_bytes} output. *)

val proof_size_bytes : proof -> int
(** Serialized size of a proof (32 bytes per level plus one side bit
    packed into a byte), for the ablation bench. *)
