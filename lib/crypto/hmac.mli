(** HMAC-SHA256 (RFC 2104) and the truncated-to-128-bit variant the paper
    calls "HMAC-128", used as the secure PRFs [F] and [G].

    For hot paths that evaluate many messages under one key, build a
    {!keyed} context once: it absorbs the ipad/opad key blocks a single
    time, removing two of the four SHA-256 compressions (and every
    intermediate concatenation allocation) from each subsequent call. *)

type keyed
(** A PRF context bound to one key. Immutable after {!create} — safe to
    share across domains; each evaluation clones the underlying hash
    states. *)

val create : key:string -> keyed

val sha256_keyed : keyed -> string -> string
(** 32-byte HMAC-SHA256 tag under the context's key. *)

val prf128_keyed : keyed -> string -> string
(** {!sha256_keyed} truncated to 16 bytes. *)

val sha256 : key:string -> string -> string
(** One-shot 32-byte HMAC-SHA256 tag (thin wrapper over a throwaway
    {!keyed} context). *)

val sha256_hex : key:string -> string -> string

val prf128 : key:string -> string -> string
(** HMAC-SHA256 truncated to 16 bytes — the PRF
    [F : {0,1}^λ × {0,1}^* → {0,1}^128] of the paper. *)
