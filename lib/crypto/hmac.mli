(** HMAC-SHA256 (RFC 2104) and the truncated-to-128-bit variant the paper
    calls "HMAC-128", used as the secure PRFs [F] and [G]. *)

val sha256 : key:string -> string -> string
(** 32-byte HMAC-SHA256 tag. *)

val sha256_hex : key:string -> string -> string

val prf128 : key:string -> string -> string
(** HMAC-SHA256 truncated to 16 bytes — the PRF
    [F : {0,1}^λ × {0,1}^* → {0,1}^128] of the paper. *)
