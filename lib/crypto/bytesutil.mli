(** Byte-string helpers shared by the crypto substrate. *)

val to_hex : string -> string
(** Lowercase hexadecimal rendering of a byte string. *)

val of_hex : string -> string
(** Inverse of {!to_hex}. @raise Invalid_argument on malformed input. *)

val xor : string -> string -> string
(** Bytewise XOR. @raise Invalid_argument on length mismatch. *)

val const_equal : string -> string -> bool
(** Constant-time equality for equal-length strings (also compares
    lengths, returning [false] on mismatch without early exit). *)

val be32 : int -> string
(** 4-byte big-endian encoding of the low 32 bits. *)

val be64 : int -> string
(** 8-byte big-endian encoding. *)

val concat : string list -> string
(** Length-prefixed concatenation: each piece is preceded by its 4-byte
    big-endian length, so distinct piece lists never collide. Used for
    every [a||b] concatenation in the protocol. *)

val split : string -> string list option
(** Inverse of {!concat}; [None] when the input is not a valid
    encoding. *)
