(** AES-128 (FIPS 197) block cipher with ECB single-block and CTR modes.

    The Slicer index stores [d = F(G2, t‖c) ⊕ Enc(K_R, R)], which requires
    [Enc(K_R, R)] to be exactly one 16-byte block; {!encrypt_block} /
    {!decrypt_block} provide that deterministic encryption of (padded)
    record IDs. {!ctr_encrypt} serves general variable-length payloads. *)

type key
(** Expanded key schedule. *)

val expand : string -> key
(** Expands a 16-byte key. @raise Invalid_argument on wrong length. *)

val encrypt_block : key -> string -> string
(** Encrypts one 16-byte block. @raise Invalid_argument on wrong length. *)

val decrypt_block : key -> string -> string
(** Inverts {!encrypt_block}. *)

val encrypt_string : key -> string -> string
(** Deterministically encrypts a string of at most 15 bytes into one
    block using ISO/IEC 7816-4 padding (0x80 then zeros).
    @raise Invalid_argument when the input exceeds 15 bytes. *)

val decrypt_string : key -> string -> string
(** Inverts {!encrypt_string}. @raise Invalid_argument on bad padding. *)

val ctr_encrypt : key -> nonce:string -> string -> string
(** CTR-mode keystream XOR with a 16-byte IV/nonce; its own inverse. *)
