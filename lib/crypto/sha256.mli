(** SHA-256 (FIPS 180-4), implemented from scratch on 32-bit words held
    in native ints. Used for HMAC, the multiset hash base map, prime
    representatives and the blockchain's hashing.

    The compress kernel consumes whole blocks directly from the input
    string; only stream boundaries and the padded final block go through
    the context's 64-byte buffer. Contexts are cheap to {!copy}, so a
    partially-absorbed state (e.g. an HMAC key block) can be cloned per
    message instead of being recomputed. *)

type ctx
(** Streaming hash context (mutable). Not shared between domains; clone
    with {!copy} instead. *)

val init : unit -> ctx
val update : ctx -> string -> unit

val update_sub : ctx -> Bytes.t -> int -> int -> unit
(** [update_sub ctx b off len] absorbs [len] bytes of [b] starting at
    [off] without copying them out first — the zero-copy checksum path
    for framing buffers. @raise Invalid_argument on out-of-range
    slices. *)

val copy : ctx -> ctx
(** An independent snapshot of the state absorbed so far: updating or
    finalizing either context leaves the other untouched. *)

val finalize : ctx -> string
(** Returns the 32-byte digest. The context must not be reused. *)

val finalize_trunc : ctx -> int -> string
(** [finalize_trunc ctx n] returns the first [n] bytes (1..32) of the
    digest without allocating the full 32 bytes — the HMAC-128 path.
    The context must not be reused. *)

val digest : string -> string
(** One-shot 32-byte digest. *)

val digest_hex : string -> string
(** One-shot digest rendered as 64 lowercase hex characters. *)
