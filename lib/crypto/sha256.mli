(** SHA-256 (FIPS 180-4), implemented from scratch on 32-bit words held
    in native ints. Used for HMAC, the multiset hash base map, prime
    representatives and the blockchain's hashing. *)

type ctx
(** Streaming hash context (mutable). *)

val init : unit -> ctx
val update : ctx -> string -> unit

val finalize : ctx -> string
(** Returns the 32-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot 32-byte digest. *)

val digest_hex : string -> string
(** One-shot digest rendered as 64 lowercase hex characters. *)
