(** Deterministic random bit generator in the style of NIST SP 800-90A
    HMAC-DRBG. Every random choice in the library (trapdoors, keys, RSA
    prime search, workload generation) draws from a [Drbg.t] so that runs
    are reproducible when seeded and properly random otherwise. *)

type t

val create : seed:string -> t
(** Deterministic instance from an arbitrary seed string. *)

val create_system : unit -> t
(** Instance seeded from [/dev/urandom] (falls back to time-derived
    entropy when unavailable). *)

val generate : t -> int -> string
(** [generate t n] produces [n] fresh pseudo-random bytes. *)

val reseed : t -> string -> unit
(** Mixes additional input into the state. *)

val uniform_int : t -> int -> int
(** [uniform_int t bound] is uniform in [\[0, bound)] via rejection
    sampling. @raise Invalid_argument when [bound <= 0]. *)

val uniform_bigint : t -> Bigint.t -> Bigint.t
(** Uniform in [\[0, bound)] for a positive bigint bound. *)

val bits : t -> int -> Bigint.t
(** [bits t n] is a uniform [n]-bit integer with the top bit set
    (so exactly [n] significant bits), for [n >= 1]. *)
