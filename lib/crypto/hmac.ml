let block_size = 64

let sha256 ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let key = key ^ String.make (block_size - String.length key) '\000' in
  let ipad = String.map (fun c -> Char.chr (Char.code c lxor 0x36)) key in
  let opad = String.map (fun c -> Char.chr (Char.code c lxor 0x5c)) key in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ msg))

let sha256_hex ~key msg = Bytesutil.to_hex (sha256 ~key msg)

let prf128 ~key msg = String.sub (sha256 ~key msg) 0 16
