let block_size = 64

(* A keyed context pre-absorbs the ipad/opad key blocks once; each
   message then costs two context clones instead of re-deriving the pads
   and re-compressing the 64-byte key block twice. The two contexts are
   never mutated after [create], so a [keyed] value can be shared across
   domains — every use clones before updating. *)
type keyed = { inner : Sha256.ctx; outer : Sha256.ctx }

let create ~key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let block = Bytes.make block_size '\x36' in
  String.iteri
    (fun i c -> Bytes.unsafe_set block i (Char.unsafe_chr (Char.code c lxor 0x36)))
    key;
  let inner = Sha256.init () in
  Sha256.update inner (Bytes.to_string block);
  (* Flip ipad to opad in place: 0x36 lxor 0x5c = 0x6a. *)
  for i = 0 to block_size - 1 do
    Bytes.unsafe_set block i (Char.unsafe_chr (Char.code (Bytes.unsafe_get block i) lxor 0x6a))
  done;
  let outer = Sha256.init () in
  Sha256.update outer (Bytes.to_string block);
  { inner; outer }

let outer_ctx kd msg =
  let c = Sha256.copy kd.inner in
  Sha256.update c msg;
  let d = Sha256.finalize c in
  let o = Sha256.copy kd.outer in
  Sha256.update o d;
  o

let sha256_keyed kd msg = Sha256.finalize (outer_ctx kd msg)
let prf128_keyed kd msg = Sha256.finalize_trunc (outer_ctx kd msg) 16

(* One-shot paths are thin wrappers: a throwaway keyed context is still
   cheaper than the old concatenate-and-rehash formulation (no key
   padding copies, no ipad^msg / opad^digest string builds). *)
let sha256 ~key msg = sha256_keyed (create ~key) msg

let sha256_hex ~key msg = Bytesutil.to_hex (sha256 ~key msg)

let prf128 ~key msg = prf128_keyed (create ~key) msg
