let to_hex s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex s =
  let len = String.length s in
  if len mod 2 <> 0 then invalid_arg "Bytesutil.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytesutil.of_hex: bad digit"
  in
  String.init (len / 2) (fun i -> Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let xor a b =
  if String.length a <> String.length b then invalid_arg "Bytesutil.xor: length mismatch";
  String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let const_equal a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
    !acc = 0
  end

let be32 n =
  String.init 4 (fun i -> Char.chr ((n lsr ((3 - i) * 8)) land 0xff))

let be64 n =
  String.init 8 (fun i -> Char.chr ((n lsr ((7 - i) * 8)) land 0xff))

let concat pieces =
  let buf = Buffer.create 64 in
  List.iter
    (fun p ->
      Buffer.add_string buf (be32 (String.length p));
      Buffer.add_string buf p)
    pieces;
  Buffer.contents buf

let split s =
  let len = String.length s in
  let read32 i =
    (Char.code s.[i] lsl 24) lor (Char.code s.[i + 1] lsl 16) lor (Char.code s.[i + 2] lsl 8)
    lor Char.code s.[i + 3]
  in
  let rec go i acc =
    if i = len then Some (List.rev acc)
    else if i + 4 > len then None
    else begin
      let n = read32 i in
      if i + 4 + n > len then None else go (i + 4 + n) (String.sub s (i + 4) n :: acc)
    end
  in
  go 0 []
