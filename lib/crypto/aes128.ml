(* FIPS 197 AES-128. The S-box and GF(2^8) tables are derived at module
   initialisation from the field generator, which avoids transcription
   errors in 256-entry literals; the FIPS-197 known-answer tests pin the
   result. *)

(* --- GF(2^8) arithmetic, modulus x^8+x^4+x^3+x+1 -------------------- *)

let gf_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else begin
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x100 <> 0 then a lxor 0x11b else a in
      go a (b lsr 1) acc
    end
  in
  go a b 0

(* Multiplicative inverse via log tables on generator 3. *)
let log_table = Array.make 256 0
let exp_table = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := gf_mul !x 3
  done;
  exp_table.(255) <- 1

let gf_inv a = if a = 0 then 0 else exp_table.(255 - log_table.(a))

let sbox = Array.make 256 0
let inv_sbox = Array.make 256 0

let () =
  let rotl8 x n = ((x lsl n) lor (x lsr (8 - n))) land 0xff in
  for i = 0 to 255 do
    let q = gf_inv i in
    let s = q lxor rotl8 q 1 lxor rotl8 q 2 lxor rotl8 q 3 lxor rotl8 q 4 lxor 0x63 in
    sbox.(i) <- s;
    inv_sbox.(s) <- i
  done

(* --- key schedule ---------------------------------------------------- *)

type key = { rk : int array (* 44 words, 11 round keys *) }

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let expand key_bytes =
  if String.length key_bytes <> 16 then invalid_arg "Aes128.expand: key must be 16 bytes";
  let rk = Array.make 44 0 in
  for i = 0 to 3 do
    rk.(i) <-
      (Char.code key_bytes.[4 * i] lsl 24)
      lor (Char.code key_bytes.[(4 * i) + 1] lsl 16)
      lor (Char.code key_bytes.[(4 * i) + 2] lsl 8)
      lor Char.code key_bytes.[(4 * i) + 3]
  done;
  for i = 4 to 43 do
    let temp = rk.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        let rot = ((temp lsl 8) lor (temp lsr 24)) land 0xffffffff in
        let sub =
          (sbox.((rot lsr 24) land 0xff) lsl 24)
          lor (sbox.((rot lsr 16) land 0xff) lsl 16)
          lor (sbox.((rot lsr 8) land 0xff) lsl 8)
          lor sbox.(rot land 0xff)
        in
        sub lxor (rcon.((i / 4) - 1) lsl 24)
      end
      else temp
    in
    rk.(i) <- rk.(i - 4) lxor temp
  done;
  { rk }

(* --- round functions on a 16-byte state (column-major, FIPS order) --- *)

let add_round_key st rk round =
  for c = 0 to 3 do
    let w = rk.((round * 4) + c) in
    st.((4 * c) + 0) <- st.((4 * c) + 0) lxor ((w lsr 24) land 0xff);
    st.((4 * c) + 1) <- st.((4 * c) + 1) lxor ((w lsr 16) land 0xff);
    st.((4 * c) + 2) <- st.((4 * c) + 2) lxor ((w lsr 8) land 0xff);
    st.((4 * c) + 3) <- st.((4 * c) + 3) lxor (w land 0xff)
  done

let sub_bytes st box = for i = 0 to 15 do st.(i) <- box.(st.(i)) done

(* State layout: st.(4*c + r) is row r, column c. *)
let shift_rows st =
  for r = 1 to 3 do
    let row = Array.init 4 (fun c -> st.((4 * c) + r)) in
    for c = 0 to 3 do
      st.((4 * c) + r) <- row.((c + r) mod 4)
    done
  done

let inv_shift_rows st =
  for r = 1 to 3 do
    let row = Array.init 4 (fun c -> st.((4 * c) + r)) in
    for c = 0 to 3 do
      st.((4 * c) + r) <- row.(((c - r) + 4) mod 4)
    done
  done

let mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) and a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gf_mul a0 2 lxor gf_mul a1 3 lxor a2 lxor a3;
    st.((4 * c) + 1) <- a0 lxor gf_mul a1 2 lxor gf_mul a2 3 lxor a3;
    st.((4 * c) + 2) <- a0 lxor a1 lxor gf_mul a2 2 lxor gf_mul a3 3;
    st.((4 * c) + 3) <- gf_mul a0 3 lxor a1 lxor a2 lxor gf_mul a3 2
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) and a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gf_mul a0 14 lxor gf_mul a1 11 lxor gf_mul a2 13 lxor gf_mul a3 9;
    st.((4 * c) + 1) <- gf_mul a0 9 lxor gf_mul a1 14 lxor gf_mul a2 11 lxor gf_mul a3 13;
    st.((4 * c) + 2) <- gf_mul a0 13 lxor gf_mul a1 9 lxor gf_mul a2 14 lxor gf_mul a3 11;
    st.((4 * c) + 3) <- gf_mul a0 11 lxor gf_mul a1 13 lxor gf_mul a2 9 lxor gf_mul a3 14
  done

let state_of_string s = Array.init 16 (fun i -> Char.code s.[i])
let string_of_state st = String.init 16 (fun i -> Char.chr st.(i))

let encrypt_block { rk } block =
  if String.length block <> 16 then invalid_arg "Aes128.encrypt_block: block must be 16 bytes";
  let st = state_of_string block in
  add_round_key st rk 0;
  for round = 1 to 9 do
    sub_bytes st sbox;
    shift_rows st;
    mix_columns st;
    add_round_key st rk round
  done;
  sub_bytes st sbox;
  shift_rows st;
  add_round_key st rk 10;
  string_of_state st

let decrypt_block { rk } block =
  if String.length block <> 16 then invalid_arg "Aes128.decrypt_block: block must be 16 bytes";
  let st = state_of_string block in
  add_round_key st rk 10;
  for round = 9 downto 1 do
    inv_shift_rows st;
    sub_bytes st inv_sbox;
    add_round_key st rk round;
    inv_mix_columns st
  done;
  inv_shift_rows st;
  sub_bytes st inv_sbox;
  add_round_key st rk 0;
  string_of_state st

let encrypt_string key s =
  if String.length s > 15 then invalid_arg "Aes128.encrypt_string: at most 15 bytes";
  let padded = s ^ "\x80" ^ String.make (15 - String.length s) '\000' in
  encrypt_block key padded

let decrypt_string key block =
  let padded = decrypt_block key block in
  let rec find i =
    if i < 0 then invalid_arg "Aes128.decrypt_string: bad padding"
    else if padded.[i] = '\x80' then i
    else if padded.[i] = '\000' then find (i - 1)
    else invalid_arg "Aes128.decrypt_string: bad padding"
  in
  String.sub padded 0 (find 15)

let ctr_encrypt key ~nonce msg =
  if String.length nonce <> 16 then invalid_arg "Aes128.ctr_encrypt: nonce must be 16 bytes";
  let len = String.length msg in
  let out = Bytes.create len in
  let counter = Bytes.of_string nonce in
  let incr_counter () =
    let rec go i =
      if i >= 0 then begin
        let v = (Char.code (Bytes.get counter i) + 1) land 0xff in
        Bytes.set counter i (Char.chr v);
        if v = 0 then go (i - 1)
      end
    in
    go 15
  in
  let pos = ref 0 in
  while !pos < len do
    let ks = encrypt_block key (Bytes.to_string counter) in
    let n = Stdlib.min 16 (len - !pos) in
    for i = 0 to n - 1 do
      Bytes.set out (!pos + i) (Char.chr (Char.code msg.[!pos + i] lxor Char.code ks.[i]))
    done;
    incr_counter ();
    pos := !pos + 16
  done;
  Bytes.to_string out
