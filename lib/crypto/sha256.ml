(* FIPS 180-4 SHA-256. Words are kept in native ints masked to 32 bits.

   The compress kernel comes in two flavours: one consuming whole blocks
   straight out of the input string (no per-block blit through the
   context buffer) and one reading the context's own partial-block
   buffer (used for stream boundaries and the padded final block).
   Contexts are cheap to [copy], which the HMAC keyed contexts exploit
   to amortize the ipad/opad key-block compressions across messages. *)

let word_mask = 0xffffffff

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1; 0x923f82a4; 0xab1c5ed5;
     0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174;
     0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967;
     0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
     0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208; 0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array; (* 8 working-state words *)
  buf : Bytes.t; (* 64-byte partial-block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total message bytes so far *)
  w : int array; (* message schedule scratch; never shared across contexts *)
}

let init () =
  { h = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0 }

let copy ctx =
  { h = Array.copy ctx.h;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
    w = Array.make 64 0 }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land word_mask

(* 64 rounds over the schedule already loaded into ctx.w.(0..15). *)
let rounds ctx =
  let w = ctx.w in
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1) land word_mask)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t) land word_mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land word_mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land word_mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land word_mask
  done;
  h.(0) <- (h.(0) + !a) land word_mask;
  h.(1) <- (h.(1) + !b) land word_mask;
  h.(2) <- (h.(2) + !c) land word_mask;
  h.(3) <- (h.(3) + !d) land word_mask;
  h.(4) <- (h.(4) + !e) land word_mask;
  h.(5) <- (h.(5) + !f) land word_mask;
  h.(6) <- (h.(6) + !g) land word_mask;
  h.(7) <- (h.(7) + !hh) land word_mask

(* Bounds are checked by the callers: [off + 64 <= length s]. *)
let compress_string ctx s off =
  let w = ctx.w in
  for t = 0 to 15 do
    let i = off + (t * 4) in
    Array.unsafe_set w t
      ((Char.code (String.unsafe_get s i) lsl 24)
       lor (Char.code (String.unsafe_get s (i + 1)) lsl 16)
       lor (Char.code (String.unsafe_get s (i + 2)) lsl 8)
       lor Char.code (String.unsafe_get s (i + 3)));
  done;
  rounds ctx

let compress_bytes ctx b off =
  let w = ctx.w in
  for t = 0 to 15 do
    let i = off + (t * 4) in
    Array.unsafe_set w t
      ((Char.code (Bytes.unsafe_get b i) lsl 24)
       lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 16)
       lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 8)
       lor Char.code (Bytes.unsafe_get b (i + 3)));
  done;
  rounds ctx

let compress_buf ctx =
  let w = ctx.w and b = ctx.buf in
  for t = 0 to 15 do
    let i = t * 4 in
    Array.unsafe_set w t
      ((Char.code (Bytes.unsafe_get b i) lsl 24)
       lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 16)
       lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 8)
       lor Char.code (Bytes.unsafe_get b (i + 3)));
  done;
  rounds ctx

let update ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = Stdlib.min (64 - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress_buf ctx;
      ctx.buf_len <- 0
    end
  end;
  (* Whole blocks straight from the input. *)
  while len - !pos >= 64 do
    compress_string ctx s !pos;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let update_sub ctx b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.update_sub";
  ctx.total <- ctx.total + len;
  let pos = ref off in
  let stop = off + len in
  if ctx.buf_len > 0 then begin
    let take = Stdlib.min (64 - ctx.buf_len) len in
    Bytes.blit b off ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := off + take;
    if ctx.buf_len = 64 then begin
      compress_buf ctx;
      ctx.buf_len <- 0
    end
  end;
  while stop - !pos >= 64 do
    compress_bytes ctx b !pos;
    pos := !pos + 64
  done;
  if !pos < stop then begin
    Bytes.blit b !pos ctx.buf 0 (stop - !pos);
    ctx.buf_len <- stop - !pos
  end

(* Padding and the final one or two blocks are assembled in place in
   ctx.buf — no intermediate string allocations. *)
let finalize_rounds ctx =
  let bit_len = ctx.total * 8 in
  let n = ctx.buf_len in
  Bytes.unsafe_set ctx.buf n '\x80';
  if n + 1 > 56 then begin
    Bytes.fill ctx.buf (n + 1) (63 - n) '\000';
    compress_buf ctx;
    Bytes.fill ctx.buf 0 56 '\000'
  end
  else Bytes.fill ctx.buf (n + 1) (55 - n) '\000';
  for i = 0 to 7 do
    Bytes.unsafe_set ctx.buf (56 + i) (Char.unsafe_chr ((bit_len lsr ((7 - i) * 8)) land 0xff))
  done;
  compress_buf ctx;
  ctx.buf_len <- 0

let finalize_trunc ctx n =
  if n < 1 || n > 32 then invalid_arg "Sha256.finalize_trunc: need 1 <= n <= 32";
  finalize_rounds ctx;
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    let word = Array.unsafe_get ctx.h (i / 4) in
    Bytes.unsafe_set out i (Char.unsafe_chr ((word lsr ((3 - (i mod 4)) * 8)) land 0xff))
  done;
  Bytes.unsafe_to_string out

let finalize ctx = finalize_trunc ctx 32

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let digest_hex s = Bytesutil.to_hex (digest s)
