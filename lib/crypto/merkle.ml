type t = { levels : string array array (* levels.(0) = leaf digests *) }

type proof = { index : int; path : (string * [ `Left | `Right ]) list }

let hash_leaf payload = Sha256.digest ("\x00" ^ payload)
let hash_node l r = Sha256.digest ("\x01" ^ l ^ r)
let empty_root = Sha256.digest "\x02merkle-empty"

let build leaves =
  match leaves with
  | [] -> { levels = [||] }
  | _ ->
    let level0 = Array.of_list (List.map hash_leaf leaves) in
    let rec up acc level =
      if Array.length level = 1 then List.rev (level :: acc)
      else begin
        let n = Array.length level in
        let parent =
          Array.init ((n + 1) / 2) (fun i ->
              let l = level.(2 * i) in
              (* Odd tail: promote by pairing the node with itself. *)
              let r = if (2 * i) + 1 < n then level.((2 * i) + 1) else level.(2 * i) in
              hash_node l r)
        in
        up (level :: acc) parent
      end
    in
    { levels = Array.of_list (up [] level0) }

let leaf_count t = if Array.length t.levels = 0 then 0 else Array.length t.levels.(0)

let root t =
  if Array.length t.levels = 0 then empty_root
  else t.levels.(Array.length t.levels - 1).(0)

let prove t index =
  let n = leaf_count t in
  if index < 0 || index >= n then invalid_arg "Merkle.prove: index out of bounds";
  let rec go level i acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let nodes = t.levels.(level) in
      let sibling_index = if i land 1 = 0 then i + 1 else i - 1 in
      let sibling =
        if sibling_index < Array.length nodes then nodes.(sibling_index) else nodes.(i)
      in
      let side = if i land 1 = 0 then `Right else `Left in
      go (level + 1) (i / 2) ((sibling, side) :: acc)
    end
  in
  { index; path = go 0 index [] }

(* The side sequence re-encodes the leaf index bit by bit (a node is a
   left child — sibling on the `Right — exactly when its level index
   is even, including the self-paired odd tail). A proof whose claimed
   index disagrees with its path proves membership of a different
   position, so verification rejects it. *)
let index_consistent proof =
  let depth = List.length proof.path in
  proof.index >= 0
  && (depth >= Sys.int_size - 2 || proof.index < 1 lsl depth)
  && fst
       (List.fold_left
          (fun (ok, i) (_, side) ->
            let expect = if i land 1 = 0 then `Right else `Left in
            (ok && side = expect, i / 2))
          (true, proof.index) proof.path)

let verify ~root:expected ~leaf proof =
  index_consistent proof
  &&
  let digest =
    List.fold_left
      (fun acc (sibling, side) ->
        match side with
        | `Left -> hash_node sibling acc
        | `Right -> hash_node acc sibling)
      (hash_leaf leaf) proof.path
  in
  Bytesutil.const_equal digest expected

let proof_size_bytes proof = (List.length proof.path * 33) + 4

let proof_to_bytes proof =
  let sides =
    String.concat ""
      (List.map (fun (_, side) -> match side with `Left -> "L" | `Right -> "R") proof.path)
  in
  Bytesutil.concat (Bytesutil.be32 proof.index :: sides :: List.map fst proof.path)

let proof_of_bytes bytes =
  match Bytesutil.split bytes with
  | Some (idx :: sides :: sibs)
    when String.length idx = 4
         && String.length sides = List.length sibs
         && String.for_all (fun c -> c = 'L' || c = 'R') sides ->
    let index =
      (Char.code idx.[0] lsl 24) lor (Char.code idx.[1] lsl 16) lor (Char.code idx.[2] lsl 8)
      lor Char.code idx.[3]
    in
    let path = List.mapi (fun i sib -> (sib, if sides.[i] = 'L' then `Left else `Right)) sibs in
    Some { index; path }
  | Some _ | None -> None
