type t = { mutable k : string; mutable v : string; mutable kd : Hmac.keyed }

(* Every HMAC in the generator runs under the current K; the keyed
   context is rebuilt only when K rotates (twice per update), so the
   per-block cost of [generate] is two compressions, not four. *)
let set_key t k =
  t.k <- k;
  t.kd <- Hmac.create ~key:k

(* HMAC-DRBG update step (SP 800-90A §10.1.2.2). *)
let update t provided =
  set_key t (Hmac.sha256_keyed t.kd (t.v ^ "\x00" ^ provided));
  t.v <- Hmac.sha256_keyed t.kd t.v;
  if provided <> "" then begin
    set_key t (Hmac.sha256_keyed t.kd (t.v ^ "\x01" ^ provided));
    t.v <- Hmac.sha256_keyed t.kd t.v
  end

let create ~seed =
  let k0 = String.make 32 '\000' in
  let t = { k = k0; v = String.make 32 '\x01'; kd = Hmac.create ~key:k0 } in
  update t seed;
  t

let create_system () =
  let entropy =
    try
      let ic = open_in_bin "/dev/urandom" in
      let buf = really_input_string ic 48 in
      close_in ic;
      buf
    with Sys_error _ | End_of_file ->
      (* Sealed-container fallback: clock + pid derived. *)
      Printf.sprintf "%f-%d-%f" (Unix.gettimeofday ()) (Unix.getpid ()) (Sys.time ())
  in
  create ~seed:entropy

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.sha256_keyed t.kd t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  Buffer.sub buf 0 n

let reseed t input = update t input

let uniform_int t bound =
  if bound <= 0 then invalid_arg "Drbg.uniform_int: bound must be positive";
  if bound = 1 then 0
  else begin
    (* Rejection sampling over 62-bit draws. *)
    let limit = max_int - (max_int mod bound) in
    let rec draw () =
      let b = generate t 8 in
      let v =
        String.fold_left (fun acc c -> ((acc lsl 8) lor Char.code c) land max_int) 0 b
      in
      if v >= limit then draw () else v mod bound
    in
    draw ()
  end

let uniform_bigint t bound =
  if Bigint.sign bound <= 0 then invalid_arg "Drbg.uniform_bigint: bound must be positive";
  let nbits = Bigint.num_bits bound in
  let nbytes = (nbits + 7) / 8 in
  let excess_bits = (nbytes * 8) - nbits in
  let rec draw () =
    let raw = generate t nbytes in
    (* Mask the excess high bits so the draw is in [0, 2^nbits). *)
    let raw =
      if excess_bits = 0 then raw
      else String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c land (0xff lsr excess_bits)) else c) raw
    in
    let v = Bigint.of_bytes_be raw in
    if Bigint.compare v bound < 0 then v else draw ()
  in
  draw ()

let bits t n =
  if n < 1 then invalid_arg "Drbg.bits: need n >= 1";
  let below = uniform_bigint t (Bigint.shift_left Bigint.one (n - 1)) in
  if n = 1 then Bigint.one else Bigint.add (Bigint.shift_left Bigint.one (n - 1)) below
