(** The transport-independent Slicer service: a {!Station} (cloud +
    chain) plus the provisioning state a multi-client deployment needs
    — user registry and faucet, the owner → user key channel, and the
    idempotency cache that makes every retried effectful request —
    Search, Build, Insert — apply exactly once. The cache is keyed by
    [(client, request_id)] and, for searches, consulted only after the
    client's registration is checked, so a reply can only ever be
    replayed to the client that originally settled it.

    {!handle} is a pure request → response dispatcher guarded by one
    lock, so any transport (the socket server, a loopback test, a
    pipe) can drive it concurrently. It never raises: failures come
    back as [Wire.Refused] frames. *)

val log_src : Logs.src

type t

val create :
  ?max_cached_replies:int -> ?faucet:int -> ?witness_index:bool ->
  ?settle:Settle_batch.config -> ?instance:string -> ?shard:int * int -> unit -> t
(** An empty service awaiting a [Wire.Build] shipment from the data
    owner. [faucet] is the balance granted to each newly registered
    user (default 100,000,000 wei). [witness_index] (default [true])
    controls whether Build creates the cloud with the persistent
    witness index ({!Cloud.create}); [false] is the
    [--no-witness-index] escape hatch. [settle] switches settlement to
    the optimistic batched mode as soon as a database exists (see
    {!section-settlement}). [instance] (default [""]) names
    this process in Welcome frames; [shard = (i, n)] (default [(0, 1)])
    is the cluster slice this service owns — stamped into the contract
    at Build and echoed as [pv_shards] so clients know the topology. *)

val of_protocol :
  ?max_cached_replies:int -> ?faucet:int -> ?witness_index:bool ->
  ?settle:Settle_batch.config -> ?instance:string -> ?shard:int * int -> Protocol.t -> t
(** Serve an in-process system (e.g. one the server built from
    [--records N] at startup): the service drives the {e same} station,
    so wire searches and [Protocol.search] settle identically. *)

val handle : t -> Wire.request -> Wire.response
(** Thread-safe dispatch of one request. *)

val built : t -> bool
val generation : t -> int
(** 0 before Build, then 1 + the number of Inserts applied. *)

val searches_settled : t -> int
(** Searches that actually reached the chain (cache hits excluded). *)

val station : t -> Station.t option
(** The underlying settlement endpoint (for tests: e.g. configuring
    cloud misbehaviour or inspecting balances). [None] before Build. *)

(** {1:settlement Batched settlement}

    With a [settle] config, a settled Search defers on-chain
    verification: its receipt leaf joins the open batch and the Found
    reply carries [sr_settle] coordinates instead of a payment
    receipt. Size-triggered commits happen inline in the search path
    (deterministic, replayed from the WAL's search events); the
    wall-clock window and dispute-cutoff decisions live in
    {!settle_tick}, which journals what it did. *)

val settle_tick : t -> bool * int
(** Drive the settlement timer once: commit the open batch if its
    window expired, finalize every batch whose dispute window passed.
    Returns [(flushed, finalized_count)]; journals + syncs only when
    something happened. The server's poll loop calls this between
    rounds; a no-batching service returns [(false, 0)]. *)

val settle_flush : t -> unit
(** Force-commit the open batch now (and finalize anything due) —
    measurement boundaries in benches and tests. *)

(** {1 Durability}

    With a {!Store} attached, every effectful event — client
    registration, Build, Insert, settled Search — is journaled under
    the service lock {e before} its reply leaves {!handle}, and
    group-commit fsynced after it; past [snapshot_bytes] of WAL the
    full state is snapshotted atomically and the log truncated. The
    service's dispatch is deterministic, so replaying the journaled
    request bytes over the newest snapshot reproduces the state —
    including the idempotency cache, which is how a retried
    [(client, request_id)] still replays its cached reply across a
    [kill -9]. *)

val attach_store : t -> Store.t -> unit
(** Start journaling into [store]. Immediately checkpoints the current
    in-memory state as the durable base (so a service built from
    [--records N] or an applied Build survives from this moment on). *)

val store : t -> Store.t option
(** The attached store, if any — e.g. to hand a freshly-recovered empty
    store to a self-seeded replacement service. *)

type recovery_stats = {
  rs_snapshot : bool;      (** a valid snapshot was loaded *)
  rs_replayed : int;       (** WAL events replayed on top of it *)
  rs_dropped_tail : bool;  (** torn/stale bytes were discarded *)
}

val recover :
  ?max_cached_replies:int -> ?faucet:int -> ?witness_index:bool ->
  ?settle:Settle_batch.config -> ?instance:string -> ?shard:int * int -> Store.config ->
  (t * recovery_stats, string) result
(** Open (or create) the durable state at [cfg.dir], rebuild the
    service from the newest valid snapshot plus the contiguous WAL
    tail, verify the recovered prime multiset re-accumulates to both
    the cloud's and the on-chain [Ac], re-anchor on a fresh checkpoint
    and attach the store. [Error] — and no serving — when replay or
    the accumulator check fails. *)
