(** The transport-independent Slicer service: a {!Station} (cloud +
    chain) plus the provisioning state a multi-client deployment needs
    — user registry and faucet, the owner → user key channel, and the
    idempotency cache that makes every retried effectful request —
    Search, Build, Insert — apply exactly once. The cache is keyed by
    [(client, request_id)] and, for searches, consulted only after the
    client's registration is checked, so a reply can only ever be
    replayed to the client that originally settled it.

    {!handle} is a pure request → response dispatcher guarded by one
    lock, so any transport (the socket server, a loopback test, a
    pipe) can drive it concurrently. It never raises: failures come
    back as [Wire.Refused] frames. *)

val log_src : Logs.src

type t

val create : ?max_cached_replies:int -> ?faucet:int -> unit -> t
(** An empty service awaiting a [Wire.Build] shipment from the data
    owner. [faucet] is the balance granted to each newly registered
    user (default 100,000,000 wei). *)

val of_protocol : ?max_cached_replies:int -> ?faucet:int -> Protocol.t -> t
(** Serve an in-process system (e.g. one the server built from
    [--records N] at startup): the service drives the {e same} station,
    so wire searches and [Protocol.search] settle identically. *)

val handle : t -> Wire.request -> Wire.response
(** Thread-safe dispatch of one request. *)

val built : t -> bool
val generation : t -> int
(** 0 before Build, then 1 + the number of Inserts applied. *)

val searches_settled : t -> int
(** Searches that actually reached the chain (cache hits excluded). *)

val station : t -> Station.t option
(** The underlying settlement endpoint (for tests: e.g. configuring
    cloud misbehaviour or inspecting balances). [None] before Build. *)
