(** Thin poll(2) binding: the readiness primitive under the event-loop
    server, the client swarm and every frame-read deadline.

    [Unix.select] cannot watch descriptors numbered at or above
    FD_SETSIZE (1024), so a process holding a thousand sockets cannot
    use it even for a single high-numbered fd. Everything in lib/net
    waits through this module instead.

    A {!t} is a reusable interest set: [clear] it, [add] each fd with
    the events of interest, then [wait]. Results are read back by slot
    index, in the same order the fds were added. *)

type t

val create : unit -> t
(** An empty interest set (grows on demand, never shrinks). *)

val clear : t -> unit
val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
val length : t -> int

val wait : t -> timeout_ms:int -> int
(** Blocks until an fd is ready or the timeout (milliseconds; negative
    = forever) expires. Returns the number of ready fds, [0] on
    timeout, or [-1] when interrupted by a signal (retry). *)

val fd_at : t -> int -> Unix.file_descr
(** The fd added at slot [i]. *)

val revents : t -> int -> int
(** The readiness mask of slot [i] after {!wait}: test with
    {!is_readable} / {!is_writable} / {!is_error}. *)

val is_readable : int -> bool
val is_writable : int -> bool

val is_error : int -> bool
(** POLLERR, POLLHUP or POLLNVAL — the fd needs attention (a read will
    surface the EOF or error) even when neither data bit is set. *)

val wait_fd : Unix.file_descr -> read:bool -> write:bool -> timeout_ms:int -> int
(** One-shot single-fd wait. Returns the revents mask ([0] = timeout,
    [-1] = interrupted). *)

val ms_of_span : float -> int
(** Seconds to a poll timeout: rounds {e up} to whole milliseconds so a
    deadline re-checked after the wait has always truly passed. *)
