(** Typed request/response messages of the Slicer service, with
    all-or-nothing byte codecs layered on {!Persist} and the core
    serializers. One {!Frame.msg} carries exactly one message; the
    frame tag distinguishes requests from responses so a stray reply
    can never be parsed as a command. *)

val request_tag : int
val response_tag : int

type request =
  | Hello of { client : string }
      (** Register and provision: the owner → user authorization channel
          (keys, trapdoor state) plus a funded chain address. *)
  | Search of { client : string; request_id : string; batched : bool;
                tokens : Slicer_types.search_token list }
      (** The user → cloud search message. [(client, request_id)] is the
          idempotency key: a retry with the same pair returns the cached
          settlement instead of touching escrow again. The pair is only
          honoured for the registered [client] that settled it — another
          client re-using the id gets its own fresh settlement. *)
  | Build of { client : string; request_id : string;
               width : int; payment : int; acc : Rsa_acc.params;
               tdp_n : Bigint.t; tdp_e : Bigint.t;
               user_k : string; user_k_r : string;
               shipment : Owner.shipment; trapdoor : Owner.trapdoor_state }
      (** The owner → cloud bootstrap shipment: public parameters, user
          key material to provision with, and the Build artifacts.
          [(client, request_id)] is the idempotency key — a retry after a
          lost reply replays the original accept instead of refusing
          [Already_built]. *)
  | Insert of { client : string; request_id : string;
                shipment : Owner.shipment; trapdoor : Owner.trapdoor_state }
      (** A forward-secure Insert shipment (owner → cloud).
          [(client, request_id)] is the idempotency key — a retry after a
          lost reply must {e not} re-append the shipment's primes or bump
          the generation a second time. *)
  | Ping
  | Stats
      (** Admin: a snapshot of the server's {!Obs} registry. Served even
          before a Build, and without a Hello — it reads state only. *)

type provision = {
  pv_width : int;
  pv_payment : int;
  pv_generation : int;              (** bumped by every Insert *)
  pv_acc : Rsa_acc.params;
  pv_user_keys : Keys.user_keys;
  pv_trapdoor : Owner.trapdoor_state;
  pv_user_addr : Vm.address;
  pv_ac : Bigint.t;                 (** on-chain accumulation value *)
}

type search_reply = {
  sr_request_id : string;
  sr_generation : int;
  sr_claims : Slicer_contract.claim list;
  sr_batch_witness : Bigint.t option;
  sr_receipt : Vm.receipt;          (** the chain's settlement receipt *)
  sr_ac : Bigint.t;                 (** on-chain [Ac] to verify against *)
}

type err_code = Busy | Bad_request | Not_ready | Already_built | Unknown_user | Internal

val err_code_to_string : err_code -> string

type response =
  | Welcome of provision
  | Found of search_reply
  | Accepted of { generation : int }   (** Build/Insert acknowledged *)
  | Pong
  | Stats_reply of { st_json : string; st_text : string }
      (** The same registry snapshot rendered twice: [st_json] for
          programs, [st_text] in Prometheus text exposition format. *)
  | Refused of { code : err_code; detail : string }
      (** Structured error frame — the server's graceful degradation
          path; it never answers bad input with silence or a crash. *)

val encode_request : request -> string
val decode_request : string -> request option

val encode_response : response -> string
val decode_response : string -> response option

val retryable : response -> bool
(** [true] only for [Refused {code = Busy; _}] — the one server error a
    client should retry (with backoff) rather than surface. *)
