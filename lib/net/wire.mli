(** Typed request/response messages of the Slicer service, with
    all-or-nothing byte codecs layered on {!Persist} and the core
    serializers. One {!Frame.msg} carries exactly one message; the
    frame tag distinguishes requests from responses so a stray reply
    can never be parsed as a command. *)

val request_tag : int
val response_tag : int

val proto_version : int
(** The protocol feature revision this build speaks (4). Revision 4
    adds batched optimistic settlement: an optional settlement piece on
    Found (absent, the bytes are identical to revision 3), the
    {!request-Receipt} finality poll, and the {!request-Dispute}
    challenge. Revision 1 is
    Revision 1 is
    the pre-cluster protocol: its Hello carries no proto field and its
    Found replies can never carry per-shard parts. Revision 3 adds an
    optional trace-context piece to Search/Build/Insert — absent, the
    bytes are identical to revision 2 — plus the {!Traces} admin drain.
    A server accepts any revision in [{!min_proto_version},
    {!proto_version}] and refuses older Hellos with
    [Refused Version_mismatch], so pre-cluster clients fail loudly at
    the handshake instead of mis-framing later replies. *)

val min_proto_version : int
(** Oldest revision a server still accepts (2). *)

val proto_accepted : int -> bool
(** Whether a Hello's revision falls in the accepted window. *)

type request =
  | Hello of { client : string; proto : int }
      (** Register and provision: the owner → user authorization channel
          (keys, trapdoor state) plus a funded chain address. [proto] is
          the client's {!proto_version}; legacy two-piece hellos decode
          as [proto = 1]. *)
  | Search of { client : string; request_id : string; batched : bool;
                tokens : Slicer_types.search_token list;
                trace : Trace.wire_ctx option }
      (** The user → cloud search message. [(client, request_id)] is the
          idempotency key: a retry with the same pair returns the cached
          settlement instead of touching escrow again. The pair is only
          honoured for the registered [client] that settled it — another
          client re-using the id gets its own fresh settlement. [trace]
          carries the sampled upstream trace context, if any; it is not
          part of the idempotency key. *)
  | Build of { client : string; request_id : string;
               width : int; payment : int; acc : Rsa_acc.params;
               tdp_n : Bigint.t; tdp_e : Bigint.t;
               user_k : string; user_k_r : string;
               shipment : Owner.shipment; trapdoor : Owner.trapdoor_state;
               trace : Trace.wire_ctx option }
      (** The owner → cloud bootstrap shipment: public parameters, user
          key material to provision with, and the Build artifacts.
          [(client, request_id)] is the idempotency key — a retry after a
          lost reply replays the original accept instead of refusing
          [Already_built]. *)
  | Insert of { client : string; request_id : string;
                shipment : Owner.shipment; trapdoor : Owner.trapdoor_state;
                trace : Trace.wire_ctx option }
      (** A forward-secure Insert shipment (owner → cloud).
          [(client, request_id)] is the idempotency key — a retry after a
          lost reply must {e not} re-append the shipment's primes or bump
          the generation a second time. *)
  | Receipt of { client : string; request_id : string }
      (** Poll the settlement status of a deferred receipt (revision 4).
          Read-only: served from the batch manager's view, no chain
          transaction. *)
  | Dispute of { client : string; request_id : string; shard : int;
                 claims_blob : string; batch_witness : Bigint.t option }
      (** Challenge a committed batch leaf (revision 4): the client
          replays the claims bytes it received ([claims_blob], a
          {!Slicer_contract.encode_claims} blob) and the shared VO if
          the search was batched, and the server relays an on-chain
          [dispute] with the Merkle inclusion proof. [shard] routes the
          challenge in a cluster (0 for a single server). *)
  | Ping
  | Stats
      (** Admin: a snapshot of the server's {!Obs} registry. Served even
          before a Build, and without a Hello — it reads state only. *)
  | Traces
      (** Admin: drain the process's completed trace spans
          ({!Trace.drain}); a router additionally drains every shard and
          merges, so one scrape sees the whole cluster. Like [Stats],
          served before a Build and without a Hello. *)

val request_trace : request -> Trace.wire_ctx option

val with_trace : Trace.wire_ctx option -> request -> request
(** Stamp a trace context onto a Search/Build/Insert (identity for
    other requests or a [None] context). *)

type provision = {
  pv_width : int;
  pv_payment : int;
  pv_generation : int;              (** bumped by every Insert *)
  pv_acc : Rsa_acc.params;
  pv_user_keys : Keys.user_keys;
  pv_trapdoor : Owner.trapdoor_state;
  pv_user_addr : Vm.address;
  pv_ac : Bigint.t;                 (** on-chain accumulation value *)
  pv_shards : int;                  (** cluster width; 1 for a single server *)
  pv_instance : string;             (** responder identity (shard id / router) *)
}

type settle_info = {
  si_batch : string;             (** the batch the receipt joined *)
  si_index : int;                (** its leaf index in the batch *)
  si_leaf : string;              (** encoded {!Slicer_contract.receipt_leaf} —
                                     the client recomputes and compares *)
  si_root : string option;       (** Merkle root, once committed on-chain *)
  si_proof : Merkle.proof option;(** inclusion proof, once committed *)
}
(** Settlement coordinates of a deferred (optimistically batched)
    receipt. Until the batch is committed only the coordinates are
    known; after commit the root and proof let the client verify
    membership with {!Merkle.verify}. *)

type receipt_status =
  | Rcp_unknown                        (** no such deferred receipt *)
  | Rcp_pending of settle_info         (** in the open batch *)
  | Rcp_committed of settle_info       (** root posted; window running.
                                           [si_root]/[si_proof] are [Some]. *)
  | Rcp_final of { batch : string }    (** finalized — cloud paid *)
  | Rcp_refunded of { batch : string } (** batch slashed — escrow refunded *)

type shard_part = {
  shp_shard : int;                      (** which shard produced this section *)
  shp_claims : Slicer_contract.claim list;
  shp_batch_witness : Bigint.t option;
  shp_ac : Bigint.t;                    (** that shard's on-chain [Ac_i] *)
  shp_receipt : Vm.receipt;             (** that shard's settlement receipt *)
  shp_settle : settle_info option;      (** that shard's deferred coordinates *)
}
(** One shard's section of a routed search reply. Algorithm-5
    verification stays per-shard and constant-size: each part's claims
    verify against its own [shp_ac], never against a global product. *)

type search_reply = {
  sr_request_id : string;
  sr_generation : int;
  sr_claims : Slicer_contract.claim list;
      (** merged claims, in the request's token order *)
  sr_batch_witness : Bigint.t option;
  sr_receipt : Vm.receipt;          (** the chain's settlement receipt
                                        (router replies: synthesized merge) *)
  sr_ac : Bigint.t;                 (** on-chain [Ac] to verify against *)
  sr_parts : shard_part list;
      (** empty for a single server; non-empty means the reply was
          merged by a router and each part must verify separately *)
  sr_settle : settle_info option;
      (** present when settlement was deferred into a batch (single
          server); routed replies carry per-part coordinates instead *)
}

type err_code =
  | Busy | Bad_request | Not_ready | Already_built | Unknown_user | Internal
  | Version_mismatch

val err_code_to_string : err_code -> string

type response =
  | Welcome of provision
  | Found of search_reply
  | Accepted of { generation : int }   (** Build/Insert acknowledged *)
  | Receipt_reply of receipt_status    (** answer to {!request-Receipt} *)
  | Disputed of { dp_slashed : bool; dp_receipt : Vm.receipt }
      (** answer to {!request-Dispute}: whether the leaf was proven bad
          (deposit slashed, batch refunded) plus the chain receipt — a
          rejected dispute carries the revert reason inside. *)
  | Pong
  | Stats_reply of { st_json : string; st_text : string }
      (** The same registry snapshot rendered twice: [st_json] for
          programs, [st_text] in Prometheus text exposition format. *)
  | Traces_reply of { tr_spans : Trace.span list }
      (** Flat list of completed spans (whole trees only); the scraper
          reassembles them with {!Trace.Tree.assemble}. *)
  | Refused of { code : err_code; detail : string }
      (** Structured error frame — the server's graceful degradation
          path; it never answers bad input with silence or a crash. *)

val encode_request : request -> string
val decode_request : string -> request option

val encode_response : response -> string
val decode_response : string -> response option

val settle_to_bytes : settle_info -> string
val settle_of_bytes : string -> settle_info option
(** Standalone codec for {!settle_info} (also used by the service WAL). *)

val retryable : response -> bool
(** [true] only for [Refused {code = Busy; _}] — the one server error a
    client should retry (with backoff) rather than surface. *)
