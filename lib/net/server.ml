let log_src = Logs.Src.create "slicer.net.server" ~doc:"Slicer network server"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_busy = Obs.counter ~help:"requests refused Busy at admission" "slicer_net_busy_refusals_total"
let c_conns = Obs.counter ~help:"connections accepted" "slicer_net_connections_total"
let g_inflight = Obs.gauge ~help:"requests queued or executing on the pool" "slicer_net_inflight"
let g_open = Obs.gauge ~help:"sockets currently owned by the event loop" "slicer_net_open_connections"

let g_qwrite =
  Obs.gauge ~help:"reply bytes queued across all connections" "slicer_net_queued_write_bytes"

let h_qdepth =
  Obs.histogram ~help:"dispatch-pool queue depth at admission" ~units:Obs.Histogram.Raw
    "slicer_net_worker_queue_depth"

let c_handshake_drops =
  Obs.counter ~help:"connections dropped before a first valid frame"
    "slicer_net_handshake_drops_total"

let c_throttles =
  Obs.counter ~help:"connections read-throttled on outbound backpressure"
    "slicer_net_backpressure_throttles_total"

let c_idle_kicks = Obs.counter ~help:"connections swept for idleness" "slicer_net_idle_kicks_total"

let c_conn_overflow =
  Obs.counter ~help:"accepts closed at the max-conns cap" "slicer_net_conn_limit_drops_total"

(* Shared by name with [Frame]'s live-transport counters and the
   unparseable-request reject path. *)
let c_rejects = Obs.counter "slicer_net_decode_rejects_total"
let c_frames_in = Obs.counter "slicer_net_frames_in_total"
let c_bytes_in = Obs.counter "slicer_net_bytes_in_total"
let c_frames_out = Obs.counter "slicer_net_frames_out_total"
let c_bytes_out = Obs.counter "slicer_net_bytes_out_total"

type endpoint = Tcp of string * int | Unix_socket of string

type config = {
  endpoint : endpoint;
  read_timeout : float;
  max_payload : int;
  max_inflight : int;
  backlog : int;
  max_conns : int;
  workers : int;
  max_queued_write : int;
}

let default_config =
  { endpoint = Tcp ("127.0.0.1", 0);
    read_timeout = 30.;
    max_payload = Frame.default_max_payload;
    max_inflight = 64;
    backlog = 512;
    max_conns = 4096;
    workers = 4;
    max_queued_write = 4 * 1024 * 1024 }

(* Per-connection pipelining depth: requests admitted but not yet
   flushed. Past this the connection stops being read, like the write
   cap — bounded state per peer no matter how fast it pipelines. *)
let max_pipeline = 256

(* All [conn] state belongs to the loop thread exclusively. *)
type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_dec : Frame.Decoder.t;
  mutable c_established : bool; (* one valid frame seen *)
  mutable c_closing : bool;     (* flush queued replies, then close *)
  mutable c_closed : bool;
  mutable c_throttled : bool;
  mutable c_last : float;       (* monotonic: last complete frame / flush progress *)
  mutable c_next_seq : int;     (* next request slot *)
  mutable c_next_send : int;    (* next slot to flush, in order *)
  c_done : (int, string) Hashtbl.t; (* completed slot -> framed reply *)
  mutable c_inflight : int;     (* slots assigned, not yet moved to the write queue *)
  c_wq : string Queue.t;
  mutable c_woff : int;         (* write offset into the head of c_wq *)
  mutable c_wbytes : int;
}

type job = { j_conn : int; j_seq : int; j_payload : string }

type t = {
  config : config;
  (* What to do with one decoded request. Usually [Service.handle svc],
     but the router front end plugs its fan-out dispatcher in here and
     reuses the whole event loop unchanged. *)
  handler : Wire.request -> Wire.response;
  listener : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  (* Guards everything workers touch: the job queue, completions, the
     shared counters. The loop holds it only for short transfers. *)
  lock : Mutex.t;
  job_cond : Condition.t;
  jobs : job Queue.t;
  mutable jobs_active : int; (* queued + executing *)
  mutable completions : (int * int * string) list; (* conn, seq, framed reply *)
  mutable running : bool;
  mutable served_conns : int;
  mutable served_reqs : int;
  (* Loop-thread-only state. *)
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable loop_thread : Thread.t option;
  mutable workers : Thread.t list;
  mutable stopped : bool;
}

(* IPv4/IPv6-capable resolution through getaddrinfo. Called once per
   bind or connect, before any socket exists — the accept path never
   resolves anything. *)
let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ ->
    let hints = [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] in
    let rec pick = function
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
      | _ :: rest -> pick rest
      | [] -> failwith ("cannot resolve host " ^ host)
    in
    (match Unix.getaddrinfo host "" hints with
     | [] -> failwith ("cannot resolve host " ^ host)
     | infos -> pick infos)

let sockaddr_of_endpoint = function
  | Tcp (host, port) -> Unix.ADDR_INET (resolve_host host, port)
  | Unix_socket path -> Unix.ADDR_UNIX path

let bind_endpoint ep =
  let addr = sockaddr_of_endpoint ep in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (match ep with
   | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
   | Unix_socket path -> (try Unix.unlink path with Unix.Unix_error _ -> ()));
  (try
     Unix.bind fd addr;
     Unix.listen fd default_config.backlog
   with e -> Unix.close fd; raise e);
  fd

let bound_port fd =
  match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> 0

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let now () = Obs.Clock.now ()

(* --- loop-side connection plumbing ------------------------------------- *)

let close_conn t conn =
  if not conn.c_closed then begin
    conn.c_closed <- true;
    conn.c_closing <- true;
    Hashtbl.remove t.conns conn.c_id;
    Obs.Gauge.add g_open (-1);
    if conn.c_wbytes > 0 then Obs.Gauge.add g_qwrite (-conn.c_wbytes);
    close_quietly conn.c_fd
  end

(* Write until the kernel buffer fills or the queue drains. Never
   parses — the read side re-engages from the loop once capacity
   frees. *)
let flush_writes t conn =
  if not conn.c_closed then begin
    let progress = ref false in
    let rec go () =
      if not (Queue.is_empty conn.c_wq) then begin
        let head = Queue.peek conn.c_wq in
        let len = String.length head - conn.c_woff in
        match Unix.write_substring conn.c_fd head conn.c_woff len with
        | n ->
          progress := true;
          conn.c_wbytes <- conn.c_wbytes - n;
          Obs.Gauge.add g_qwrite (-n);
          Obs.Counter.add c_bytes_out n;
          if n = len then begin
            ignore (Queue.pop conn.c_wq);
            conn.c_woff <- 0;
            go ()
          end
          else conn.c_woff <- conn.c_woff + n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> close_conn t conn
      end
    in
    go ();
    if !progress then conn.c_last <- now ();
    if conn.c_closing && conn.c_inflight = 0 && Queue.is_empty conn.c_wq then close_conn t conn
  end

(* Move every completed reply that is next in request order onto the
   write queue — pipelined responses leave in the order the requests
   arrived, however the pool finished them. *)
let flush_ready t conn =
  if not conn.c_closed then begin
    let moved = ref false in
    let rec go () =
      match Hashtbl.find_opt conn.c_done conn.c_next_send with
      | Some framed ->
        Hashtbl.remove conn.c_done conn.c_next_send;
        conn.c_next_send <- conn.c_next_send + 1;
        conn.c_inflight <- conn.c_inflight - 1;
        Queue.push framed conn.c_wq;
        conn.c_wbytes <- conn.c_wbytes + String.length framed;
        Obs.Gauge.add g_qwrite (String.length framed);
        Obs.Counter.incr c_frames_out;
        moved := true;
        go ()
      | None -> ()
    in
    go ();
    if !moved then flush_writes t conn
  end

let complete_local t conn seq resp =
  let framed = Frame.encode ~tag:Wire.response_tag (Wire.encode_response resp) in
  Hashtbl.replace conn.c_done seq framed;
  flush_ready t conn

let refusal code detail = Wire.Refused { code; detail }

(* One parsed frame: allocate its reply slot and either hand it to the
   pool or refuse it inline (admission, bad tag). *)
let dispatch t conn (view : Frame.Decoder.view) =
  let seq = conn.c_next_seq in
  conn.c_next_seq <- seq + 1;
  conn.c_inflight <- conn.c_inflight + 1;
  if view.Frame.Decoder.v_tag <> Wire.request_tag then begin
    complete_local t conn seq (refusal Wire.Bad_request "unexpected frame tag");
    conn.c_closing <- true
  end
  else begin
    let payload = Frame.Decoder.payload_string conn.c_dec view in
    let admitted =
      Mutex.lock t.lock;
      let ok = t.jobs_active < t.config.max_inflight in
      if ok then begin
        t.jobs_active <- t.jobs_active + 1;
        Obs.Gauge.set g_inflight t.jobs_active;
        Obs.Histogram.record h_qdepth (Queue.length t.jobs);
        Queue.push { j_conn = conn.c_id; j_seq = seq; j_payload = payload } t.jobs;
        Condition.signal t.job_cond
      end;
      Mutex.unlock t.lock;
      ok
    in
    if not admitted then begin
      Obs.Counter.incr c_busy;
      complete_local t conn seq
        (refusal Wire.Busy
           (Printf.sprintf "over %d requests in flight" t.config.max_inflight))
    end
  end

let below_caps t conn =
  conn.c_wbytes < t.config.max_queued_write && conn.c_inflight < max_pipeline

(* Parse every complete frame buffered in the arena, stopping at the
   backpressure caps (the unparsed bytes just wait). This is the
   pre-handshake state machine: before the first valid frame, any
   framing violation drops the socket silently; after it, the stream
   gets a structured refusal and then a close. *)
let process_buffered t conn =
  let rec go () =
    if (not conn.c_closed) && (not conn.c_closing) && below_caps t conn then begin
      match Frame.Decoder.next conn.c_dec with
      | Ok None -> ()
      | Ok (Some view) ->
        conn.c_established <- true;
        conn.c_last <- now ();
        Obs.Counter.incr c_frames_in;
        dispatch t conn view;
        go ()
      | Error e ->
        if conn.c_established then begin
          Obs.Counter.incr c_rejects;
          Log.debug (fun m -> m "conn %d: %s" conn.c_id (Frame.error_to_string e));
          let seq = conn.c_next_seq in
          conn.c_next_seq <- seq + 1;
          conn.c_inflight <- conn.c_inflight + 1;
          conn.c_closing <- true;
          complete_local t conn seq (refusal Wire.Bad_request (Frame.error_to_string e))
        end
        else begin
          (* Protocol violator that never spoke a valid frame: no
             oracle, no reply — just drop it. *)
          Obs.Counter.incr c_handshake_drops;
          close_conn t conn
        end
    end
  in
  go ()

(* Per readable event: read straight into the decoder arena until the
   socket drains (or a fairness budget runs out), parsing as we go. *)
let read_input t conn =
  let budget = ref (256 * 1024) in
  let rec go () =
    if (not conn.c_closed) && !budget > 0 && (not conn.c_closing) && below_caps t conn
    then begin
      let buf, off = Frame.Decoder.space conn.c_dec 4096 in
      let room = Frame.Decoder.room conn.c_dec in
      match Unix.read conn.c_fd buf off room with
      | 0 ->
        (* Peer sent FIN. Anything already pipelined still gets its
           replies; then the socket closes. *)
        conn.c_closing <- true;
        if conn.c_inflight = 0 && Queue.is_empty conn.c_wq then close_conn t conn
      | n ->
        Frame.Decoder.commit conn.c_dec n;
        Obs.Counter.add c_bytes_in n;
        budget := !budget - n;
        process_buffered t conn;
        if n = room then go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> close_conn t conn
    end
  in
  go ()

(* Accept in batches until the listener drains; past [max_conns] the
   socket is closed immediately (the cap is on loop-owned state, not
   the SYN backlog). *)
let accept_batch t =
  let rec go budget =
    if budget > 0 then
      match Unix.accept t.listener with
      | fd, _ ->
        if Hashtbl.length t.conns >= t.config.max_conns then begin
          Obs.Counter.incr c_conn_overflow;
          close_quietly fd
        end
        else begin
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
          let id = t.next_conn in
          t.next_conn <- id + 1;
          t.served_conns <- t.served_conns + 1;
          Obs.Counter.incr c_conns;
          Obs.Gauge.add g_open 1;
          let conn =
            { c_id = id;
              c_fd = fd;
              c_dec = Frame.Decoder.create ~max_payload:t.config.max_payload ();
              c_established = false;
              c_closing = false;
              c_closed = false;
              c_throttled = false;
              c_last = now ();
              c_next_seq = 0;
              c_next_send = 0;
              c_done = Hashtbl.create 8;
              c_inflight = 0;
              c_wq = Queue.create ();
              c_woff = 0;
              c_wbytes = 0 }
          in
          Hashtbl.replace t.conns id conn
        end;
        go (budget - 1)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error (e, _, _) ->
        if t.running then Log.err (fun m -> m "accept failed: %s" (Unix.error_message e))
  in
  go 128

(* Pool completions: order replies per connection, then re-parse any
   bytes that were waiting on the pipeline cap. *)
let handle_completions t =
  Mutex.lock t.lock;
  let done_ = t.completions in
  t.completions <- [];
  Mutex.unlock t.lock;
  List.iter
    (fun (conn_id, seq, framed) ->
      match Hashtbl.find_opt t.conns conn_id with
      | None -> () (* connection died while the request executed *)
      | Some conn ->
        Hashtbl.replace conn.c_done seq framed;
        flush_ready t conn;
        if (not conn.c_closing) && below_caps t conn then process_buffered t conn)
    (List.rev done_)

(* The idle sweep doubles as the slowloris kill: [c_last] only advances
   on complete frames and on write progress, so a byte-trickler times
   out exactly like a silent peer. Connections with replies pending are
   never swept — the peer is waiting on us. *)
let sweep t t_now =
  let victims = ref [] in
  Hashtbl.iter
    (fun _ conn ->
      if conn.c_inflight = 0 && Queue.is_empty conn.c_wq
         && t_now -. conn.c_last > t.config.read_timeout
      then victims := conn :: !victims)
    t.conns;
  List.iter
    (fun conn ->
      Obs.Counter.incr c_idle_kicks;
      Log.debug (fun m -> m "conn %d: idle for %.1fs, kicked" conn.c_id t.config.read_timeout);
      close_conn t conn)
    !victims

let drain_wake t =
  let scratch = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r scratch 0 (Bytes.length scratch) with
    | n when n = Bytes.length scratch -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

let wake t =
  let b = Bytes.make 1 '!' in
  try ignore (Unix.write t.wake_w b 0 1)
  with Unix.Unix_error _ -> () (* full pipe already wakes the loop *)

(* --- the event loop ----------------------------------------------------- *)

let event_loop t =
  let pset = Poll.create () in
  let order = ref [] in
  while t.running do
    Poll.clear pset;
    Poll.add pset t.wake_r ~read:true ~write:false;
    Poll.add pset t.listener ~read:true ~write:false;
    order := [];
    Hashtbl.iter
      (fun _ conn ->
        let want_read = (not conn.c_closing) && below_caps t conn in
        if (not want_read) && (not conn.c_throttled) && not conn.c_closing then begin
          conn.c_throttled <- true;
          Obs.Counter.incr c_throttles
        end
        else if want_read then conn.c_throttled <- false;
        Poll.add pset conn.c_fd ~read:want_read ~write:(conn.c_wbytes > 0);
        order := conn :: !order)
      t.conns;
    let conns_in_order = Array.of_list (List.rev !order) in
    (match Poll.wait pset ~timeout_ms:200 with
     | -1 | 0 -> ()
     | _ ->
       if Poll.is_readable (Poll.revents pset 0) then drain_wake t;
       if t.running && Poll.is_readable (Poll.revents pset 1) then accept_batch t;
       Array.iteri
         (fun i conn ->
           let r = Poll.revents pset (i + 2) in
           if not conn.c_closed then begin
             if Poll.is_writable r then flush_writes t conn;
             if (not conn.c_closed) && Poll.is_readable r then read_input t conn;
             if (not conn.c_closed) && Poll.is_error r && not (Poll.is_readable r) then
               (* Hard error with nothing to read: the peer is gone. *)
               close_conn t conn
           end)
         conns_in_order);
    handle_completions t;
    sweep t (now ())
  done;
  (* Teardown on the loop thread: every socket belongs to it. *)
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (fun c -> close_conn t c) all;
  close_quietly t.listener

(* --- the worker pool ----------------------------------------------------- *)

let worker_loop t =
  let rec go () =
    Mutex.lock t.lock;
    while t.running && Queue.is_empty t.jobs do
      Condition.wait t.job_cond t.lock
    done;
    if Queue.is_empty t.jobs then Mutex.unlock t.lock (* stopping *)
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.lock;
      let resp =
        match Wire.decode_request job.j_payload with
        | None ->
          (* Frame checksum passed: a peer speaking a different dialect,
             not line noise. Refuse, keep the connection. *)
          Obs.Counter.incr c_rejects;
          refusal Wire.Bad_request "unparseable request"
        | Some req ->
          let dispatch () =
            try t.handler req
            with exn ->
              Log.err (fun m -> m "handler raised: %s" (Printexc.to_string exn));
              refusal Wire.Internal (Printexc.to_string exn)
          in
          (* The worker span roots the request's trace in this process
             (joining an upstream context carried on the wire), so the
             handoff from the event loop is visible in timelines. Admin
             and handshake frames stay untraced. *)
          (match req with
           | Wire.Search _ | Wire.Build _ | Wire.Insert _ ->
             Trace.root ?remote:(Wire.request_trace req) "net.worker" dispatch
           | _ -> dispatch ())
      in
      let framed = Frame.encode ~tag:Wire.response_tag (Wire.encode_response resp) in
      Mutex.lock t.lock;
      t.jobs_active <- t.jobs_active - 1;
      t.served_reqs <- t.served_reqs + 1;
      Obs.Gauge.set g_inflight t.jobs_active;
      t.completions <- (job.j_conn, job.j_seq, framed) :: t.completions;
      Mutex.unlock t.lock;
      wake t;
      go ()
    end
  in
  go ()

(* --- lifecycle ----------------------------------------------------------- *)

let start ?(config = default_config) ?listener handler =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listener = match listener with Some fd -> fd | None -> bind_endpoint config.endpoint in
  Unix.set_nonblock listener;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    { config;
      handler;
      listener;
      wake_r;
      wake_w;
      lock = Mutex.create ();
      job_cond = Condition.create ();
      jobs = Queue.create ();
      jobs_active = 0;
      completions = [];
      running = true;
      served_conns = 0;
      served_reqs = 0;
      conns = Hashtbl.create 1024;
      next_conn = 0;
      loop_thread = None;
      workers = [];
      stopped = false }
  in
  t.workers <- List.init (max 1 config.workers) (fun _ -> Thread.create (fun () -> worker_loop t) ());
  t.loop_thread <- Some (Thread.create (fun () -> event_loop t) ());
  Log.info (fun m ->
      m "listening (%s), %d workers"
        (match config.endpoint with
         | Tcp (h, _) -> Printf.sprintf "%s:%d" h (bound_port listener)
         | Unix_socket p -> p)
        (max 1 config.workers));
  t

let port t = bound_port t.listener

let endpoint t =
  match t.config.endpoint with
  | Tcp (h, _) -> Tcp (h, port t)
  | Unix_socket p -> Unix_socket p

let connections_served t = t.served_conns
let requests_served t = t.served_reqs
let open_connections t = Hashtbl.length t.conns

let stop t =
  let first =
    Mutex.lock t.lock;
    let first = not t.stopped in
    if first then begin
      t.stopped <- true;
      t.running <- false;
      Condition.broadcast t.job_cond
    end;
    Mutex.unlock t.lock;
    first
  in
  if first then begin
    wake t;
    (match t.loop_thread with Some th -> Thread.join th | None -> ());
    (* Workers drain any queued jobs (their completions are dropped —
       the sockets are gone), then exit on the cleared flag. *)
    Mutex.lock t.lock;
    Condition.broadcast t.job_cond;
    Mutex.unlock t.lock;
    List.iter Thread.join t.workers;
    (* Only now is nobody left to write the wake pipe — closing earlier
       would race a worker's wake against fd-number reuse. *)
    close_quietly t.wake_r;
    close_quietly t.wake_w;
    (match t.config.endpoint with
     | Unix_socket path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
     | Tcp _ -> ())
  end
