let log_src = Logs.Src.create "slicer.net.server" ~doc:"Slicer network server"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_busy = Obs.counter ~help:"requests refused Busy at admission" "slicer_net_busy_refusals_total"
let c_conns = Obs.counter ~help:"connections accepted" "slicer_net_connections_total"
let g_inflight = Obs.gauge ~help:"requests currently executing" "slicer_net_inflight"

(* Same instrument [Frame.read] uses for malformed frames: a request
   whose frame verified but whose payload doesn't parse is a decode
   reject too. *)
let c_rejects = Obs.counter "slicer_net_decode_rejects_total"

type endpoint = Tcp of string * int | Unix_socket of string

type config = {
  endpoint : endpoint;
  read_timeout : float;
  max_payload : int;
  max_inflight : int;
  backlog : int;
}

let default_config =
  { endpoint = Tcp ("127.0.0.1", 0);
    read_timeout = 30.;
    max_payload = Frame.default_max_payload;
    max_inflight = 64;
    backlog = 64 }

type t = {
  config : config;
  service : Service.t;
  listener : Unix.file_descr;
  lock : Mutex.t;
  mutable running : bool;
  mutable conns : (int * Unix.file_descr) list; (* id, fd *)
  mutable threads : Thread.t list;
  mutable next_conn : int;
  mutable inflight : int;
  mutable served_conns : int;
  mutable served_reqs : int;
  accept_thread : Thread.t option ref;
}

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ ->
    (match (Unix.gethostbyname host).Unix.h_addr_list with
     | [||] -> failwith ("cannot resolve host " ^ host)
     | addrs -> addrs.(0)
     | exception Not_found -> failwith ("cannot resolve host " ^ host))

let sockaddr_of_endpoint = function
  | Tcp (host, port) -> Unix.ADDR_INET (resolve_host host, port)
  | Unix_socket path -> Unix.ADDR_UNIX path

let bind_endpoint ep =
  let domain = match ep with Tcp _ -> Unix.PF_INET | Unix_socket _ -> Unix.PF_UNIX in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match ep with
   | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
   | Unix_socket path -> (try Unix.unlink path with Unix.Unix_error _ -> ()));
  (try
     Unix.bind fd (sockaddr_of_endpoint ep);
     Unix.listen fd default_config.backlog
   with e -> Unix.close fd; raise e);
  fd

let bound_port fd =
  match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> 0

(* One request/response exchange. Returns [false] when the connection
   should be dropped. *)
let serve_request t fd (frame : Frame.msg) =
  let respond resp = Frame.write fd ~tag:Wire.response_tag (Wire.encode_response resp) in
  if frame.Frame.tag <> Wire.request_tag then begin
    respond (Wire.Refused { code = Wire.Bad_request; detail = "unexpected frame tag" });
    false
  end
  else
    match Wire.decode_request frame.Frame.payload with
    | None ->
      (* The frame checksum passed, so this is a peer speaking a
         different dialect, not line noise; refuse and keep the
         connection (framing is still synchronized). *)
      Obs.Counter.incr c_rejects;
      respond (Wire.Refused { code = Wire.Bad_request; detail = "unparseable request" });
      true
    | Some req ->
      let admitted =
        Mutex.lock t.lock;
        let ok = t.inflight < t.config.max_inflight in
        if ok then t.inflight <- t.inflight + 1;
        Obs.Gauge.set g_inflight t.inflight;
        Mutex.unlock t.lock;
        ok
      in
      if not admitted then begin
        Obs.Counter.incr c_busy;
        respond
          (Wire.Refused
             { code = Wire.Busy;
               detail = Printf.sprintf "over %d requests in flight" t.config.max_inflight });
        true
      end
      else begin
        let resp =
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock t.lock;
              t.inflight <- t.inflight - 1;
              t.served_reqs <- t.served_reqs + 1;
              Obs.Gauge.set g_inflight t.inflight;
              Mutex.unlock t.lock)
            (fun () -> Service.handle t.service req)
        in
        respond resp;
        true
      end

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let connection_loop t conn_id fd =
  let rec loop () =
    if not t.running then ()
    else
      match Frame.read ~max_payload:t.config.max_payload ~timeout:t.config.read_timeout fd with
      | Ok frame ->
        let keep = try serve_request t fd frame with Unix.Unix_error _ -> false in
        if keep then loop ()
      | Error (Frame.Closed | Frame.Timeout) -> ()
      | Error e ->
        (* Malformed framing: answer with a structured error frame, then
           close — after a checksum failure the stream cannot be
           resynchronized safely. *)
        Log.debug (fun m -> m "conn %d: %s" conn_id (Frame.error_to_string e));
        (try
           Frame.write fd ~tag:Wire.response_tag
             (Wire.encode_response
                (Wire.Refused { code = Wire.Bad_request; detail = Frame.error_to_string e }))
         with Unix.Unix_error _ -> ())
  in
  (try loop ()
   with exn -> Log.err (fun m -> m "conn %d crashed: %s" conn_id (Printexc.to_string exn)));
  close_quietly fd;
  (* Drop both registrations, including our own thread handle — the
     accept loop adds it under the same lock it holds while creating
     us, so the entry is always present by the time we get the lock.
     Without this the thread list grows for the server's lifetime. *)
  let self = Thread.id (Thread.self ()) in
  Mutex.lock t.lock;
  t.conns <- List.filter (fun (id, _) -> id <> conn_id) t.conns;
  t.threads <- List.filter (fun th -> Thread.id th <> self) t.threads;
  Mutex.unlock t.lock

(* Poll with a short tick so [stop] can wake the loop just by clearing
   [running] — closing a listener out from under a blocked [accept] is
   not portable. The listener is non-blocking for the same reason. *)
let accept_loop t =
  while t.running do
    match Unix.select [ t.listener ] [] [] 0.2 with
    | [ _ ], _, _ when t.running ->
      (match Unix.accept t.listener with
       | fd, _ ->
         Mutex.lock t.lock;
         let id = t.next_conn in
         t.next_conn <- id + 1;
         t.served_conns <- t.served_conns + 1;
         Obs.Counter.incr c_conns;
         t.conns <- (id, fd) :: t.conns;
         let th = Thread.create (fun () -> connection_loop t id fd) () in
         t.threads <- th :: t.threads;
         Mutex.unlock t.lock
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
       | exception Unix.Unix_error (e, _, _) ->
         if t.running then Log.err (fun m -> m "accept failed: %s" (Unix.error_message e)))
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  done

let start ?(config = default_config) ?listener service =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listener = match listener with Some fd -> fd | None -> bind_endpoint config.endpoint in
  Unix.set_nonblock listener;
  let t =
    { config;
      service;
      listener;
      lock = Mutex.create ();
      running = true;
      conns = [];
      threads = [];
      next_conn = 0;
      inflight = 0;
      served_conns = 0;
      served_reqs = 0;
      accept_thread = ref None }
  in
  t.accept_thread := Some (Thread.create (fun () -> accept_loop t) ());
  Log.info (fun m ->
      m "listening (%s)"
        (match config.endpoint with
         | Tcp (h, _) -> Printf.sprintf "%s:%d" h (bound_port listener)
         | Unix_socket p -> p));
  t

let port t = bound_port t.listener

let endpoint t =
  match t.config.endpoint with
  | Tcp (h, _) -> Tcp (h, port t)
  | Unix_socket p -> Unix_socket p

let connections_served t = t.served_conns
let requests_served t = t.served_reqs

let stop t =
  if t.running then begin
    t.running <- false;
    (* The accept loop notices [running] within one select tick; only
       then is it safe to close the listener and tear down connections. *)
    (match !(t.accept_thread) with Some th -> Thread.join th | None -> ());
    close_quietly t.listener;
    Mutex.lock t.lock;
    let conns = t.conns in
    let threads = t.threads in
    t.conns <- [];
    t.threads <- [];
    Mutex.unlock t.lock;
    (* Shutdown (not close) wakes each blocked connection read with EOF;
       every connection thread closes its own fd, avoiding any reuse
       race with descriptors handed out after this point. *)
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join threads;
    (match t.config.endpoint with
     | Unix_socket path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
     | Tcp _ -> ())
  end
