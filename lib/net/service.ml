let log_src = Logs.Src.create "slicer.net.service" ~doc:"Slicer network service"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_requests = Obs.counter ~help:"requests dispatched" "slicer_net_requests_total"

let c_settled =
  Obs.counter ~help:"searches settled on chain" "slicer_net_searches_settled_total"

let c_replays =
  Obs.counter ~help:"idempotency-cache hits (replayed replies)"
    "slicer_net_idempotent_replays_total"

(* State present once the owner's Build shipment has been applied. *)
type built = {
  b_station : Station.t;
  b_acc : Rsa_acc.params;
  b_user_keys : Keys.user_keys;
  b_width : int;
  b_payment : int;
  b_owner_addr : Vm.address;
  mutable b_trapdoor : Owner.trapdoor_state;
  mutable b_generation : int;
}

type t = {
  lock : Mutex.t;
  mutable state : built option;
  users : (string, Vm.address) Hashtbl.t;
  (* Idempotency cache: (client, request id) -> the reply already
     settled/applied for it, covering Search, Build and Insert — every
     request whose effect must happen at most once. Keyed by the pair so
     one client cannot replay another's settlement; bounded FIFO so a
     hostile client cannot grow it without limit. *)
  replies : (string, Wire.response) Hashtbl.t;
  reply_order : string Queue.t;
  max_cached_replies : int;
  faucet : int;
  mutable settled : int;
}

let create ?(max_cached_replies = 8192) ?(faucet = 100_000_000) () =
  { lock = Mutex.create ();
    state = None;
    users = Hashtbl.create 64;
    replies = Hashtbl.create 256;
    reply_order = Queue.create ();
    max_cached_replies;
    faucet;
    settled = 0 }

let of_protocol ?max_cached_replies ?faucet p =
  let t = create ?max_cached_replies ?faucet () in
  let owner = Protocol.owner p in
  t.state <-
    Some
      { b_station = Protocol.station p;
        b_acc = Owner.acc_params owner;
        b_user_keys = Keys.for_user (Owner.keys owner);
        b_width = Owner.width owner;
        b_payment = Protocol.payment p;
        b_owner_addr = Protocol.owner_address p;
        b_trapdoor = Owner.export_trapdoor_state owner;
        b_generation = 1 };
  t

let built t = t.state <> None

let generation t = match t.state with None -> 0 | Some b -> b.b_generation

let searches_settled t = t.settled

let station t = Option.map (fun b -> b.b_station) t.state

let refused code detail = Wire.Refused { code; detail }

(* Collision-free composite key: [concat] length-prefixes each piece,
   so no (client, id) pair can alias another. *)
let reply_key ~client ~request_id = Bytesutil.concat [ client; request_id ]

let cache_reply t key reply =
  if not (Hashtbl.mem t.replies key) then begin
    if Queue.length t.reply_order >= t.max_cached_replies then begin
      let oldest = Queue.pop t.reply_order in
      Hashtbl.remove t.replies oldest
    end;
    Queue.push key t.reply_order;
    Hashtbl.replace t.replies key reply
  end

let cached_reply t ~client ~request_id =
  Hashtbl.find_opt t.replies (reply_key ~client ~request_id)

let user_address t b client =
  match Hashtbl.find_opt t.users client with
  | Some addr -> addr
  | None ->
    let addr = Vm.address_of_name ("slicer-net:user:" ^ client) in
    Vm.fund (Ledger.state (Station.ledger b.b_station)) addr t.faucet;
    Hashtbl.replace t.users client addr;
    Log.info (fun m -> m "registered user %S (%a)" client Vm.pp_address addr);
    addr

let provision t b client =
  let addr = user_address t b client in
  let ac =
    match Station.onchain_ac b.b_station with
    | Some ac -> ac
    | None -> b.b_acc.Rsa_acc.generator
  in
  Wire.Welcome
    { Wire.pv_width = b.b_width;
      pv_payment = b.b_payment;
      pv_generation = b.b_generation;
      pv_acc = b.b_acc;
      pv_user_keys = b.b_user_keys;
      pv_trapdoor = b.b_trapdoor;
      pv_user_addr = addr;
      pv_ac = ac }

let do_search t b ~client ~request_id ~batched tokens =
  (* Registration first: the cache must be unreachable to un-helloed
     peers, or a stranger could replay someone else's settled reply. *)
  match Hashtbl.find_opt t.users client with
  | None -> refused Wire.Unknown_user (Printf.sprintf "client %S must hello first" client)
  | Some user ->
    (match cached_reply t ~client ~request_id with
     | Some cached ->
       (* Idempotent re-send: the retry observes the original settlement;
          escrow is not touched a second time. Only the client that
          settled can hit this — the key includes its name. *)
       Log.debug (fun m -> m "replaying cached settlement for %S/%S" client request_id);
       Obs.Counter.incr c_replays;
       cached
     | None ->
       (match
          (* The on-chain request id is the same composite key: the
             contract refuses duplicate ids globally, so namespacing by
             client keeps one client's ids from colliding with (or
             squatting on) another's. *)
          Station.settle b.b_station ~user ~request_id:(reply_key ~client ~request_id)
            ~payment:b.b_payment
            ~token_blobs:(List.map Slicer_types.token_bytes tokens) ~batched
        with
        | Error e -> refused Wire.Bad_request ("request rejected on chain: " ^ e)
        | Ok { Station.se_claims; se_batch_witness; se_receipt } ->
          t.settled <- t.settled + 1;
          Obs.Counter.incr c_settled;
          let ac =
            match Station.onchain_ac b.b_station with
            | Some ac -> ac
            | None -> b.b_acc.Rsa_acc.generator
          in
          let reply =
            Wire.Found
              { Wire.sr_request_id = request_id;
                sr_generation = b.b_generation;
                sr_claims = se_claims;
                sr_batch_witness = se_batch_witness;
                sr_receipt = se_receipt;
                sr_ac = ac }
          in
          cache_reply t (reply_key ~client ~request_id) reply;
          reply))

let do_build t req =
  match req with
  | Wire.Build { client; request_id; width; payment; acc; tdp_n; tdp_e; user_k; user_k_r;
                 shipment; trapdoor } ->
    (match cached_reply t ~client ~request_id with
     | Some cached ->
       (* The build was applied but the response frame was lost: the
          retry must see the original accept, not Already_built. *)
       Log.debug (fun m -> m "replaying cached build accept for %S/%S" client request_id);
       Obs.Counter.incr c_replays;
       cached
     | None ->
     match t.state with
     | Some _ -> refused Wire.Already_built "the service already holds a database"
     | None ->
       let tdp_public = Rsa_tdp.public_of_parts ~n:tdp_n ~e:tdp_e in
       let cloud = Cloud.create ~acc_params:acc ~tdp_public () in
       Cloud.install cloud shipment;
       let ledger = Ledger.create ~validators:[ "validator-1"; "validator-2"; "validator-3" ] in
       let owner_addr = Vm.address_of_name "slicer-net:owner" in
       let cloud_addr = Vm.address_of_name "slicer-net:cloud" in
       Vm.fund (Ledger.state ledger) owner_addr t.faucet;
       let contract, receipt =
         Slicer_contract.deploy ledger ~owner:owner_addr ~modulus:acc.Rsa_acc.modulus
           ~generator:acc.Rsa_acc.generator ~initial_ac:shipment.Owner.sh_ac
       in
       (match receipt.Vm.r_output with
        | Error e -> refused Wire.Internal ("contract deployment failed: " ^ e)
        | Ok _ ->
          t.state <-
            Some
              { b_station = Station.create ~cloud ~ledger ~contract ~cloud_addr;
                b_acc = acc;
                b_user_keys =
                  { Keys.u_k = user_k; u_k_r = user_k_r; u_tdp_public = tdp_public };
                b_width = width;
                b_payment = payment;
                b_owner_addr = owner_addr;
                b_trapdoor = trapdoor;
                b_generation = 1 };
          Log.info (fun m ->
              m "built from wire shipment: %d index entries, deploy gas %d"
                (List.length shipment.Owner.sh_entries) receipt.Vm.r_gas_used);
          let reply = Wire.Accepted { generation = 1 } in
          cache_reply t (reply_key ~client ~request_id) reply;
          reply))
  | _ -> assert false

let handle_locked t req =
  match (req, t.state) with
  | (Wire.Ping, _) -> Wire.Pong
  | (Wire.Stats, _) ->
    (* Read-only, served even pre-Build: the registry snapshot covers
       the whole process, not just this service's database. *)
    Wire.Stats_reply
      { st_json = Obs.Export.to_json (); st_text = Obs.Export.to_prometheus () }
  | (Wire.Build _, _) -> do_build t req
  | (_, None) -> refused Wire.Not_ready "no database: awaiting the owner's Build shipment"
  | (Wire.Hello { client }, Some b) -> provision t b client
  | (Wire.Search { client; request_id; batched; tokens }, Some b) ->
    do_search t b ~client ~request_id ~batched tokens
  | (Wire.Insert { client; request_id; shipment; trapdoor }, Some b) ->
    (match cached_reply t ~client ~request_id with
     | Some cached ->
       (* Applied already, response frame lost: replaying the accept is
          mandatory — re-running [install] would append the shipment's
          primes a second time and double-bump the generation, silently
          desynchronizing the cloud from the on-chain [Ac]. *)
       Log.debug (fun m -> m "replaying cached insert accept for %S/%S" client request_id);
       Obs.Counter.incr c_replays;
       cached
     | None ->
       (match Station.install b.b_station ~owner:b.b_owner_addr shipment with
        | Error e -> refused Wire.Internal ("on-chain Ac update failed: " ^ e)
        | Ok receipt ->
          b.b_trapdoor <- trapdoor;
          b.b_generation <- b.b_generation + 1;
          Log.info (fun m ->
              m "insert shipment applied: %d entries, generation %d, gas %d"
                (List.length shipment.Owner.sh_entries) b.b_generation receipt.Vm.r_gas_used);
          let reply = Wire.Accepted { generation = b.b_generation } in
          cache_reply t (reply_key ~client ~request_id) reply;
          reply))

let handle t req =
  Obs.Counter.incr c_requests;
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      try handle_locked t req
      with exn ->
        Log.err (fun m -> m "handler raised: %s" (Printexc.to_string exn));
        refused Wire.Internal (Printexc.to_string exn))
