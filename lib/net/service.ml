let log_src = Logs.Src.create "slicer.net.service" ~doc:"Slicer network service"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_requests = Obs.counter ~help:"requests dispatched" "slicer_net_requests_total"

let c_settled =
  Obs.counter ~help:"searches settled on chain" "slicer_net_searches_settled_total"

let c_replays =
  Obs.counter ~help:"idempotency-cache hits (replayed replies)"
    "slicer_net_idempotent_replays_total"

let c_warms =
  Obs.counter ~help:"background witness warm passes completed"
    "slicer_net_background_warms_total"

(* State present once the owner's Build shipment has been applied. *)
type built = {
  b_station : Station.t;
  b_acc : Rsa_acc.params;
  b_user_keys : Keys.user_keys;
  b_width : int;
  b_payment : int;
  b_owner_addr : Vm.address;
  mutable b_trapdoor : Owner.trapdoor_state;
  mutable b_generation : int;
}

type t = {
  lock : Mutex.t;
  mutable state : built option;
  users : (string, Vm.address) Hashtbl.t;
  (* Idempotency cache: (client, request id) -> the reply already
     settled/applied for it, covering Search, Build and Insert — every
     request whose effect must happen at most once. Keyed by the pair so
     one client cannot replay another's settlement; bounded FIFO so a
     hostile client cannot grow it without limit. *)
  replies : (string, Wire.response) Hashtbl.t;
  reply_order : string Queue.t;
  max_cached_replies : int;
  faucet : int;
  mutable settled : int;
  (* Durable state ([attach_store]/[recover]): while attached, every
     effectful event is journaled under [lock] — so WAL order is
     mutation order — and group-commit synced before the reply leaves
     [handle]. [None] (the default) = the pre-PR-5 in-memory service. *)
  mutable store : Store.t option;
  (* Whether Build creates the cloud with the persistent witness index
     (the [--no-witness-index] server escape hatch sets this false). *)
  witness_index : bool;
  (* Batched optimistic settlement: [Some cfg] switches settlement to
     deferred receipts batched under one Merkle commitment per
     [sb_size] receipts (or [sb_window_ms] of wall clock). Enabled on
     the station as soon as a database exists. *)
  settle : Settle_batch.config option;
  (* Cluster identity: [instance] names this process in Welcome frames
     and metric exposition; [shard = (i, n)] is stamped into the
     contract at deploy time so a shard's chain records which slice of
     the keyword space its Ac_i covers. (0, 1) = a lone server. *)
  instance : string;
  shard : int * int;
  (* Background warmer: after a Build/Insert shipment lands, witness
     precomputation runs on a self-reaping thread off the request path,
     so the first post-shipment Search pays a warm lookup instead of
     cold witness exponentiation. *)
  warm_lock : Mutex.t;
  mutable warm_running : bool;
  mutable warm_again : bool;
}

let create ?(max_cached_replies = 8192) ?(faucet = 100_000_000) ?(witness_index = true)
    ?settle ?(instance = "") ?(shard = (0, 1)) () =
  { lock = Mutex.create ();
    state = None;
    users = Hashtbl.create 64;
    replies = Hashtbl.create 256;
    reply_order = Queue.create ();
    max_cached_replies;
    faucet;
    settled = 0;
    store = None;
    witness_index;
    settle;
    instance;
    shard;
    warm_lock = Mutex.create ();
    warm_running = false;
    warm_again = false }

(* Turn batching on for a freshly built (or recovered) station. The
   cloud's address must hold the slashable deposit, so faucet it first
   when short — conditionally, so a recovery that restored the balance
   from the snapshot does not drift it. [ensure_deposit] (inside
   [Station.enable_batching]) is itself idempotent against recovered
   chain state, making the whole call safe to repeat. *)
let maybe_enable_batching ?state t (b : built) =
  match t.settle with
  | None -> ()
  | Some cfg ->
    if Station.batcher b.b_station = None then begin
      let vmst = Ledger.state (Station.ledger b.b_station) in
      let cloud_addr = Station.cloud_addr b.b_station in
      if Vm.balance vmst cloud_addr < cfg.Settle_batch.sb_deposit then
        Vm.fund vmst cloud_addr (cfg.Settle_batch.sb_deposit + t.faucet);
      match Station.enable_batching ?state b.b_station ~config:cfg with
      | Ok () ->
        Log.info (fun m ->
            m "batched settlement on: size %d, window %.0f ms, deposit %d"
              cfg.Settle_batch.sb_size cfg.Settle_batch.sb_window_ms
              cfg.Settle_batch.sb_deposit)
      | Error e -> Log.err (fun m -> m "enabling batched settlement failed: %s" e)
    end

let of_protocol ?max_cached_replies ?faucet ?witness_index ?settle ?instance ?shard p =
  let t = create ?max_cached_replies ?faucet ?witness_index ?settle ?instance ?shard () in
  let owner = Protocol.owner p in
  let b =
    { b_station = Protocol.station p;
      b_acc = Owner.acc_params owner;
      b_user_keys = Keys.for_user (Owner.keys owner);
      b_width = Owner.width owner;
      b_payment = Protocol.payment p;
      b_owner_addr = Protocol.owner_address p;
      b_trapdoor = Owner.export_trapdoor_state owner;
      b_generation = 1 }
  in
  t.state <- Some b;
  maybe_enable_batching t b;
  t

let built t = t.state <> None

let generation t = match t.state with None -> 0 | Some b -> b.b_generation

let searches_settled t = t.settled

let station t = Option.map (fun b -> b.b_station) t.state

let store t = t.store

let refused code detail = Wire.Refused { code; detail }

(* Collision-free composite key: [concat] length-prefixes each piece,
   so no (client, id) pair can alias another. *)
let reply_key ~client ~request_id = Bytesutil.concat [ client; request_id ]

let cache_reply t key reply =
  if not (Hashtbl.mem t.replies key) then begin
    if Queue.length t.reply_order >= t.max_cached_replies then begin
      let oldest = Queue.pop t.reply_order in
      Hashtbl.remove t.replies oldest
    end;
    Queue.push key t.reply_order;
    Hashtbl.replace t.replies key reply
  end

let cached_reply t ~client ~request_id =
  Hashtbl.find_opt t.replies (reply_key ~client ~request_id)

(* WAL event taxonomy. Payloads are the raw [Wire] request bytes
   (except Register, which carries just the client name): the service
   is deterministic, so replaying the requests that took effect — in
   lock order — reproduces the state, idempotency cache included.
   [tag_delete] is reserved but unreachable: Dual-instance deletion
   exists in lib/core yet has no Wire message (see DESIGN.md §8) —
   the tag names the slot without pretending the path exists. *)
let tag_register = 1
let tag_build = 2
let tag_insert = 3
let tag_search = 4
let tag_delete = 5
(* Wall-clock settlement events. Size-triggered flushes and the
   finalizes that follow deterministic points are *not* journaled —
   they replay as a consequence of the search events themselves. Only
   the timer's decisions need a record: [tag_flush] = the window
   expired and the open batch was committed; [tag_finalize] = the tick
   finalized every due batch. Their payloads are empty — the effect is
   fully determined by the state at that point in the WAL. Disputes
   are journaled as their request bytes under [tag_dispute]. *)
let tag_flush = 6
let tag_finalize = 7
let tag_dispute = 8

let _ = tag_delete

(* Journal one effectful event. Only called on the fresh-effect paths
   — never on a cache replay, or recovery would apply the effect
   twice — and always under [t.lock], so WAL order is effect order.
   During [recover]'s replay the store is not yet attached, hence no
   re-journaling. *)
let journal t ~tag payload =
  match t.store with
  | None -> ()
  | Some store -> ignore (Store.append store ~tag payload)

let user_address t b client =
  match Hashtbl.find_opt t.users client with
  | Some addr -> addr
  | None ->
    let addr = Vm.address_of_name ("slicer-net:user:" ^ client) in
    Vm.fund (Ledger.state (Station.ledger b.b_station)) addr t.faucet;
    Hashtbl.replace t.users client addr;
    journal t ~tag:tag_register client;
    Log.info (fun m -> m "registered user %S (%a)" client Vm.pp_address addr);
    addr

let provision t b client =
  let addr = user_address t b client in
  let ac =
    match Station.onchain_ac b.b_station with
    | Some ac -> ac
    | None -> b.b_acc.Rsa_acc.generator
  in
  Wire.Welcome
    { Wire.pv_width = b.b_width;
      pv_payment = b.b_payment;
      pv_generation = b.b_generation;
      pv_acc = b.b_acc;
      pv_user_keys = b.b_user_keys;
      pv_trapdoor = b.b_trapdoor;
      pv_user_addr = addr;
      pv_ac = ac;
      pv_shards = snd t.shard;
      pv_instance = t.instance }

let do_search t b ~req ~client ~request_id ~batched tokens =
  (* Registration first: the cache must be unreachable to un-helloed
     peers, or a stranger could replay someone else's settled reply. *)
  match Hashtbl.find_opt t.users client with
  | None -> refused Wire.Unknown_user (Printf.sprintf "client %S must hello first" client)
  | Some user ->
    (match cached_reply t ~client ~request_id with
     | Some cached ->
       (* Idempotent re-send: the retry observes the original settlement;
          escrow is not touched a second time. Only the client that
          settled can hit this — the key includes its name. *)
       Log.debug (fun m -> m "replaying cached settlement for %S/%S" client request_id);
       Obs.Counter.incr c_replays;
       Trace.tag "cached" "true";
       cached
     | None ->
       (* Speculative warm-up off the settlement path's caches: derive
          the claim primes this batch will need (pool fan-out) and
          touch their witness-index leaves, so the settle below serves
          its VO from warm state. Pure cache effect — the settled
          bytes are identical with or without it. *)
       Cloud.warm_tokens (Station.cloud b.b_station) tokens;
       (match
          (* The on-chain request id is the same composite key: the
             contract refuses duplicate ids globally, so namespacing by
             client keeps one client's ids from colliding with (or
             squatting on) another's. *)
          Station.settle b.b_station ~client ~user
            ~request_id:(reply_key ~client ~request_id) ~payment:b.b_payment
            ~token_blobs:(List.map Slicer_types.token_bytes tokens) ~batched
        with
        | Error e -> refused Wire.Bad_request ("request rejected on chain: " ^ e)
        | Ok { Station.se_claims; se_batch_witness; se_receipt; se_outcome } ->
          t.settled <- t.settled + 1;
          Obs.Counter.incr c_settled;
          Trace.tag "tokens" (string_of_int (List.length tokens));
          Trace.tag "gas" (string_of_int se_receipt.Vm.r_gas_used);
          (* Deterministic settlement housekeeping, *before* the reply
             is built: a size-triggered commit (and any finalize its
             blocks make due) is a pure function of the search sequence,
             so it is not journaled — replaying the searches replays
             the flush. Doing it here also lets the reply carry the
             inclusion proof when this very search filled the batch. *)
          (match Station.batcher b.b_station with
           | Some sb ->
             if Settle_batch.should_flush sb then ignore (Settle_batch.flush sb);
             ignore (Settle_batch.finalize_due sb)
           | None -> ());
          let settle_info =
            match se_outcome with
            | Station.Settled _ -> None
            | Station.Deferred d ->
              let base =
                { Wire.si_batch = d.Station.sd_batch;
                  si_index = d.Station.sd_index;
                  si_leaf = d.Station.sd_leaf;
                  si_root = None;
                  si_proof = None }
              in
              (match Station.batcher b.b_station with
               | Some sb ->
                 (match
                    Settle_batch.status sb ~request:(reply_key ~client ~request_id)
                  with
                  | Some (Settle_batch.Committed { root; proof; _ }) ->
                    Some { base with Wire.si_root = Some root; si_proof = Some proof }
                  | _ -> Some base)
               | None -> Some base)
          in
          let ac =
            match Station.onchain_ac b.b_station with
            | Some ac -> ac
            | None -> b.b_acc.Rsa_acc.generator
          in
          let reply =
            Wire.Found
              { Wire.sr_request_id = request_id;
                sr_generation = b.b_generation;
                sr_claims = se_claims;
                sr_batch_witness = se_batch_witness;
                sr_receipt = se_receipt;
                sr_ac = ac;
                sr_parts = [];
                sr_settle = settle_info }
          in
          journal t ~tag:tag_search (Wire.encode_request req);
          cache_reply t (reply_key ~client ~request_id) reply;
          reply))

let do_build t req =
  match req with
  | Wire.Build { client; request_id; width; payment; acc; tdp_n; tdp_e; user_k; user_k_r;
                 shipment; trapdoor; trace = _ } ->
    (match cached_reply t ~client ~request_id with
     | Some cached ->
       (* The build was applied but the response frame was lost: the
          retry must see the original accept, not Already_built. *)
       Log.debug (fun m -> m "replaying cached build accept for %S/%S" client request_id);
       Obs.Counter.incr c_replays;
       cached
     | None ->
     match t.state with
     | Some _ -> refused Wire.Already_built "the service already holds a database"
     | None ->
       let tdp_public = Rsa_tdp.public_of_parts ~n:tdp_n ~e:tdp_e in
       let cloud = Cloud.create ~witness_index:t.witness_index ~acc_params:acc ~tdp_public () in
       Cloud.install cloud shipment;
       let ledger = Ledger.create ~validators:[ "validator-1"; "validator-2"; "validator-3" ] in
       let owner_addr = Vm.address_of_name "slicer-net:owner" in
       let cloud_addr = Vm.address_of_name "slicer-net:cloud" in
       Vm.fund (Ledger.state ledger) owner_addr t.faucet;
       let dispute_window =
         match t.settle with
         | Some cfg -> cfg.Settle_batch.sb_dispute_blocks
         | None -> 4
       in
       let contract, receipt =
         Slicer_contract.deploy ~shard:t.shard ~dispute_window ledger ~owner:owner_addr
           ~modulus:acc.Rsa_acc.modulus ~generator:acc.Rsa_acc.generator
           ~initial_ac:shipment.Owner.sh_ac
       in
       (match receipt.Vm.r_output with
        | Error e -> refused Wire.Internal ("contract deployment failed: " ^ e)
        | Ok _ ->
          t.state <-
            Some
              { b_station = Station.create ~cloud ~ledger ~contract ~cloud_addr;
                b_acc = acc;
                b_user_keys =
                  { Keys.u_k = user_k; u_k_r = user_k_r; u_tdp_public = tdp_public };
                b_width = width;
                b_payment = payment;
                b_owner_addr = owner_addr;
                b_trapdoor = trapdoor;
                b_generation = 1 };
          (match t.state with
           | Some b -> maybe_enable_batching t b
           | None -> ());
          Log.info (fun m ->
              m "built from wire shipment: %d index entries, deploy gas %d"
                (List.length shipment.Owner.sh_entries) receipt.Vm.r_gas_used);
          let reply = Wire.Accepted { generation = 1 } in
          journal t ~tag:tag_build (Wire.encode_request req);
          cache_reply t (reply_key ~client ~request_id) reply;
          reply))
  | _ -> assert false

let receipt_status_of sb ~request =
  match Settle_batch.status sb ~request with
  | None -> Wire.Rcp_unknown
  | Some (Settle_batch.Pending { batch; index }) ->
    Wire.Rcp_pending
      { Wire.si_batch = batch; si_index = index; si_leaf = ""; si_root = None;
        si_proof = None }
  | Some (Settle_batch.Committed { batch; index; leaf; root; proof }) ->
    Wire.Rcp_committed
      { Wire.si_batch = batch; si_index = index; si_leaf = leaf; si_root = Some root;
        si_proof = Some proof }
  | Some (Settle_batch.Final { batch }) -> Wire.Rcp_final { batch }
  | Some (Settle_batch.Refunded { batch }) -> Wire.Rcp_refunded { batch }

let do_dispute t b ~req ~client ~request_id ~claims_blob ~batch_witness =
  match Station.batcher b.b_station with
  | None -> refused Wire.Bad_request "batched settlement is not enabled"
  | Some sb ->
    (* The disputer is the client's own funded address: a won dispute
       pays the slashed deposit there as the challenge bounty. *)
    let disputer = user_address t b client in
    (match
       Settle_batch.dispute sb ~disputer ~request:(reply_key ~client ~request_id)
         ~claims_blob ~batch_witness
     with
     | Error e -> refused Wire.Bad_request e
     | Ok (dp_slashed, dp_receipt) ->
       (* Journaled like a search: the chain transaction happened, so
          recovery must replay it. A refused dispute above is never
          journaled — replay cannot hit the determinism check. *)
       journal t ~tag:tag_dispute (Wire.encode_request req);
       Wire.Disputed { dp_slashed; dp_receipt })

let handle_locked t req =
  match (req, t.state) with
  | (Wire.Ping, _) -> Wire.Pong
  | (Wire.Stats, _) ->
    (* Read-only, served even pre-Build: the registry snapshot covers
       the whole process, not just this service's database. *)
    Wire.Stats_reply
      { st_json = Obs.Export.to_json (); st_text = Obs.Export.to_prometheus () }
  | (Wire.Traces, _) ->
    (* Admin drain, like Stats: whole completed span trees only, so a
       scraper never sees a half-built trace. *)
    Wire.Traces_reply { tr_spans = Trace.drain () }
  | (Wire.Hello { proto; _ }, _) when not (Wire.proto_accepted proto) ->
    (* Loud handshake failure for cross-version peers: a revision-1
       client must not receive replies it would mis-frame (sharded
       Found parts, topology Welcome tails). Revision 2 is accepted —
       its frames are a strict subset of revision 3's. *)
    refused Wire.Version_mismatch
      (Printf.sprintf "client speaks protocol revision %d, this server speaks %d..%d" proto
         Wire.min_proto_version Wire.proto_version)
  | (Wire.Build _, _) -> do_build t req
  | (_, None) -> refused Wire.Not_ready "no database: awaiting the owner's Build shipment"
  | (Wire.Hello { client; _ }, Some b) -> provision t b client
  | ((Wire.Search { client; request_id; batched; tokens; _ } as req), Some b) ->
    do_search t b ~req ~client ~request_id ~batched tokens
  | (Wire.Receipt { client; request_id }, Some b) ->
    (* Read-only finality poll — served from the batch manager's view,
       no transaction, nothing journaled. *)
    (match Station.batcher b.b_station with
     | None -> Wire.Receipt_reply Wire.Rcp_unknown
     | Some sb ->
       Wire.Receipt_reply (receipt_status_of sb ~request:(reply_key ~client ~request_id)))
  | ((Wire.Dispute { client; request_id; shard = _; claims_blob; batch_witness } as req),
     Some b) ->
    do_dispute t b ~req ~client ~request_id ~claims_blob ~batch_witness
  | ((Wire.Insert { client; request_id; shipment; trapdoor; _ } as req), Some b) ->
    (match cached_reply t ~client ~request_id with
     | Some cached ->
       (* Applied already, response frame lost: replaying the accept is
          mandatory — re-running [install] would append the shipment's
          primes a second time and double-bump the generation, silently
          desynchronizing the cloud from the on-chain [Ac]. *)
       Log.debug (fun m -> m "replaying cached insert accept for %S/%S" client request_id);
       Obs.Counter.incr c_replays;
       cached
     | None ->
       (match Station.install b.b_station ~owner:b.b_owner_addr shipment with
        | Error e -> refused Wire.Internal ("on-chain Ac update failed: " ^ e)
        | Ok receipt ->
          b.b_trapdoor <- trapdoor;
          b.b_generation <- b.b_generation + 1;
          Log.info (fun m ->
              m "insert shipment applied: %d entries, generation %d, gas %d"
                (List.length shipment.Owner.sh_entries) b.b_generation receipt.Vm.r_gas_used);
          let reply = Wire.Accepted { generation = b.b_generation } in
          journal t ~tag:tag_insert (Wire.encode_request req);
          cache_reply t (reply_key ~client ~request_id) reply;
          reply))

(* --- durable state: snapshot codec, recovery, barriers ----------------- *)

let ( let* ) = Option.bind

let snap_magic_built = "slicer-service-built-v3"
(* Older snapshots decode too: v2 (pre batched settlement) has no
   trailing settle blob, v1 (pre witness-index) neither blob — the
   missing state rebuilds cold (and batching starts a fresh batch). *)
let snap_magic_built_v2 = "slicer-service-built-v2"
let snap_magic_built_v1 = "slicer-service-built-v1"
let snap_magic_empty = "slicer-service-empty-v1"

(* The snapshot is the *materialized* behavioral state, not chain
   history: [Vm.contract_def] holds closures and blocks hold txn
   payloads, neither serializable. Everything observable through the
   wire protocol is covered — provisioning parameters, the merged
   cloud view (index entries, prime multiset, Ac), chain accounts and
   the contract's storage cells, registered users, and the idempotency
   cache in FIFO order. Restoring re-installs the contract definition
   from code at its old address without running the constructor. *)
let encode_snapshot t =
  match t.state with
  | None -> Bytesutil.concat [ snap_magic_empty ]
  | Some b ->
    let st = b.b_station in
    let cloud = Station.cloud st in
    let ledger = Station.ledger st in
    let vmst = Ledger.state ledger in
    let contract = Station.contract st in
    let users =
      Hashtbl.fold (fun name _ acc -> name :: acc) t.users [] |> List.sort compare
    in
    let replies =
      Queue.fold (fun acc key -> key :: acc) [] t.reply_order
      |> List.rev
      |> List.concat_map (fun key ->
             match Hashtbl.find_opt t.replies key with
             | Some resp -> [ key; Wire.encode_response resp ]
             | None -> [])
    in
    Bytesutil.concat
      [ snap_magic_built;
        string_of_int b.b_width;
        string_of_int b.b_payment;
        string_of_int b.b_generation;
        string_of_int t.settled;
        Bigint.to_bytes_be b.b_acc.Rsa_acc.modulus;
        Bigint.to_bytes_be b.b_acc.Rsa_acc.generator;
        Bigint.to_bytes_be b.b_user_keys.Keys.u_tdp_public.Rsa_tdp.pn;
        Bigint.to_bytes_be b.b_user_keys.Keys.u_tdp_public.Rsa_tdp.e;
        b.b_user_keys.Keys.u_k;
        b.b_user_keys.Keys.u_k_r;
        b.b_owner_addr;
        contract;
        Station.cloud_addr st;
        Bytesutil.concat (Ledger.validator_names ledger);
        Persist.trapdoor_state_to_bytes b.b_trapdoor;
        Bytesutil.concat
          (List.concat_map (fun (l, d) -> [ l; d ]) (Cloud.entries cloud));
        Bytesutil.concat (List.map Bigint.to_bytes_be (Cloud.primes cloud));
        Bigint.to_bytes_be (Cloud.current_ac cloud);
        Bytesutil.concat
          (List.concat_map
             (fun (a, bal, n) -> [ a; string_of_int bal; string_of_int n ])
             (Vm.accounts vmst));
        Bytesutil.concat
          (List.concat_map (fun (k, v) -> [ k; v ]) (Vm.storage_entries vmst contract));
        Bytesutil.concat users;
        Bytesutil.concat replies;
        (* Warm witness state: leaf witnesses + generation stamps. The
           products rebuild from [primes] above; grafting this back
           means a restarted server serves witnesses without a single
           recomputation. Empty when the index is disabled. *)
        Cloud.export_witness_index cloud;
        (* Pending settlement batches (open tail + committed-not-final),
           so a SIGKILL between commit and finalize recovers the batch
           and settles it exactly once. Empty when batching is off. *)
        (match Station.batcher st with
         | Some sb -> Settle_batch.export sb
         | None -> "") ]

let rec pairs_of = function
  | [] -> Some []
  | a :: b :: rest ->
    let* tail = pairs_of rest in
    Some ((a, b) :: tail)
  | [ _ ] -> None

let rec account_triples = function
  | [] -> Some []
  | a :: bal :: n :: rest ->
    let* bal = int_of_string_opt bal in
    let* n = int_of_string_opt n in
    let* tail = account_triples rest in
    Some ((a, bal, n) :: tail)
  | _ -> None

let decode_snapshot ?max_cached_replies ?faucet ?witness_index ?settle ?instance ?shard
    bytes =
  let* pieces = Bytesutil.split bytes in
  match pieces with
  | [ m ] when String.equal m snap_magic_empty ->
    Some (create ?max_cached_replies ?faucet ?witness_index ?settle ?instance ?shard ())
  | m :: width :: payment :: generation :: settled :: modulus :: gen :: pn :: e :: u_k
    :: u_k_r :: owner_addr :: contract :: cloud_addr :: validators :: trapdoor :: entries
    :: primes :: ac :: accounts :: storage :: users :: replies :: tail
    when String.equal m snap_magic_built
         || String.equal m snap_magic_built_v2
         || String.equal m snap_magic_built_v1 ->
    let* windex_blob, settle_blob =
      match tail with
      | [ w; sb ] when String.equal m snap_magic_built -> Some (w, sb)
      | [ w ] when String.equal m snap_magic_built_v2 -> Some (w, "")
      | [] when String.equal m snap_magic_built_v1 -> Some ("", "")
      | _ -> None
    in
    let* width = int_of_string_opt width in
    let* payment = int_of_string_opt payment in
    let* generation = int_of_string_opt generation in
    let* settled = int_of_string_opt settled in
    let* validators = Bytesutil.split validators in
    let* () = if validators = [] then None else Some () in
    let* trapdoor = Persist.trapdoor_state_of_bytes trapdoor in
    let* entry_flat = Bytesutil.split entries in
    let* sh_entries = pairs_of entry_flat in
    let* prime_flat = Bytesutil.split primes in
    let* account_flat = Bytesutil.split accounts in
    let* accounts = account_triples account_flat in
    let* storage_flat = Bytesutil.split storage in
    let* storage = pairs_of storage_flat in
    let* user_names = Bytesutil.split users in
    let* reply_flat = Bytesutil.split replies in
    let* reply_pairs = pairs_of reply_flat in
    let* replies =
      List.fold_left
        (fun acc (key, blob) ->
          let* acc = acc in
          let* resp = Wire.decode_response blob in
          Some ((key, resp) :: acc))
        (Some []) reply_pairs
      |> Option.map List.rev
    in
    let acc_params =
      { Rsa_acc.modulus = Bigint.of_bytes_be modulus;
        generator = Bigint.of_bytes_be gen }
    in
    let tdp_public =
      Rsa_tdp.public_of_parts ~n:(Bigint.of_bytes_be pn) ~e:(Bigint.of_bytes_be e)
    in
    let cloud =
      Cloud.create
        ~witness_index:(Option.value witness_index ~default:true)
        ~acc_params ~tdp_public ()
    in
    Cloud.install cloud
      { Owner.sh_entries;
        sh_primes = List.map Bigint.of_bytes_be prime_flat;
        sh_ac = Bigint.of_bytes_be ac;
        sh_groups = [] };
    (* Graft the snapshotted warm witnesses onto the rebuilt index. *)
    if String.length windex_blob > 0 then ignore (Cloud.restore_witness_index cloud windex_blob);
    let ledger = Ledger.create ~validators in
    let vmst = Ledger.state ledger in
    List.iter
      (fun (a, balance, nonce) -> Vm.restore_account vmst a ~balance ~nonce)
      accounts;
    Slicer_contract.restore ledger ~contract ~modulus:acc_params.Rsa_acc.modulus
      ~generator:acc_params.Rsa_acc.generator;
    Vm.restore_storage vmst contract storage;
    let t = create ?max_cached_replies ?faucet ?witness_index ?settle ?instance ?shard () in
    let b =
      { b_station = Station.create ~cloud ~ledger ~contract ~cloud_addr;
        b_acc = acc_params;
        b_user_keys = { Keys.u_k; u_k_r; u_tdp_public = tdp_public };
        b_width = width;
        b_payment = payment;
        b_owner_addr = owner_addr;
        b_trapdoor = trapdoor;
        b_generation = generation }
    in
    t.state <- Some b;
    (* Re-arm batching over the restored chain state: pending batches
       come back from the settle blob; the deposit is already in the
       contract's storage, so [ensure_deposit] is a no-op. *)
    (match settle_blob with
     | "" -> maybe_enable_batching t b
     | blob -> maybe_enable_batching ~state:blob t b);
    t.settled <- settled;
    List.iter
      (fun name ->
        Hashtbl.replace t.users name (Vm.address_of_name ("slicer-net:user:" ^ name)))
      user_names;
    List.iter (fun (key, resp) -> cache_reply t key resp) replies;
    Some t
  | _ -> None

let apply_event t (ev : Store.event) =
  if ev.Store.ev_tag = tag_register then
    match t.state with
    | Some b ->
      ignore (user_address t b ev.Store.ev_payload);
      Ok ()
    | None -> Error (Printf.sprintf "event %d: register before build" ev.Store.ev_seq)
  else if ev.Store.ev_tag = tag_flush || ev.Store.ev_tag = tag_finalize then
    (* Timer decisions, re-applied: the wall clock that fired is gone,
       but the effect is a pure function of the state at this point in
       the WAL — the same open batch commits, the same due batches
       finalize. *)
    match Option.bind t.state (fun b -> Station.batcher b.b_station) with
    | None ->
      Error
        (Printf.sprintf "event %d (tag %d): settlement event without batching"
           ev.Store.ev_seq ev.Store.ev_tag)
    | Some sb ->
      if ev.Store.ev_tag = tag_flush then ignore (Settle_batch.flush sb)
      else ignore (Settle_batch.finalize_due sb);
      Ok ()
  else
    match Wire.decode_request ev.Store.ev_payload with
    | None ->
      Error (Printf.sprintf "event %d (tag %d): undecodable request" ev.Store.ev_seq ev.Store.ev_tag)
    | Some req -> (
      match handle_locked t req with
      | Wire.Refused { code; detail } ->
        (* A journaled event took effect once; a deterministic replay
           cannot refuse it. If it does, the state diverged — refuse
           to serve rather than serve wrong answers. *)
        Error
          (Printf.sprintf "event %d (tag %d) refused on replay (%s): %s" ev.Store.ev_seq
             ev.Store.ev_tag (Wire.err_code_to_string code) detail)
      | _ -> Ok ())

(* The acceptance invariant: the recovered prime multiset must
   re-accumulate to both the cloud's Ac and the on-chain Ac. Anything
   else means the index, the ADS and the chain no longer tell the same
   story, and serving would break verifiability silently. *)
let verify_recovered t =
  match t.state with
  | None -> Ok ()
  | Some b ->
    let cloud = Station.cloud b.b_station in
    let computed = Rsa_acc.accumulate b.b_acc (Cloud.primes cloud) in
    let cloud_ac = Cloud.current_ac cloud in
    (match Station.onchain_ac b.b_station with
     | None -> Error "recovered chain holds no Ac"
     | Some chain_ac ->
       if Bigint.equal computed cloud_ac && Bigint.equal computed chain_ac then Ok ()
       else
         Error
           "recovered accumulator mismatch: primes, cloud Ac and on-chain Ac disagree")

let attach_store t store =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      t.store <- Some store;
      (* Anchor immediately: the current in-memory state becomes the
         durable base, and the WAL only ever extends it. *)
      Store.checkpoint store (encode_snapshot t))

type recovery_stats = {
  rs_snapshot : bool;
  rs_replayed : int;
  rs_dropped_tail : bool;
}

let recover ?max_cached_replies ?faucet ?witness_index ?settle ?instance ?shard cfg =
  Obs.span "store.recover" (fun () ->
      let store, rc = Store.open_ cfg in
      let fail msg =
        Store.close store;
        Error msg
      in
      let base =
        match rc.Store.rc_snapshot with
        | None ->
          Some
            (create ?max_cached_replies ?faucet ?witness_index ?settle ?instance ?shard ())
        | Some (_seq, payload) ->
          decode_snapshot ?max_cached_replies ?faucet ?witness_index ?settle ?instance
            ?shard payload
      in
      match base with
      | None -> fail "snapshot failed to decode (codec mismatch)"
      | Some t ->
        let rec replay = function
          | [] -> Ok ()
          | ev :: rest -> (
            match apply_event t ev with Ok () -> replay rest | Error _ as e -> e)
        in
        (match replay rc.Store.rc_events with
         | Error e -> fail ("WAL replay failed: " ^ e)
         | Ok () ->
           (match verify_recovered t with
            | Error e -> fail e
            | Ok () ->
              attach_store t store;
              Log.info (fun m ->
                  m "recovered: snapshot=%b, %d events replayed, dropped_tail=%b, generation %d"
                    (rc.Store.rc_snapshot <> None)
                    (List.length rc.Store.rc_events) rc.Store.rc_dropped_tail (generation t));
              Ok
                ( t,
                  { rs_snapshot = rc.Store.rc_snapshot <> None;
                    rs_replayed = List.length rc.Store.rc_events;
                    rs_dropped_tail = rc.Store.rc_dropped_tail } ))))

let effectful = function
  | Wire.Search _ | Wire.Build _ | Wire.Insert _ | Wire.Hello _ | Wire.Dispute _ -> true
  | Wire.Ping | Wire.Stats | Wire.Traces | Wire.Receipt _ -> false

(* The durability barrier, outside [t.lock] so concurrent settlements
   group-commit on one fsync. Also where the snapshot cadence lives:
   past [snapshot_bytes] of WAL, re-serialize under the lock and
   truncate. *)
let maybe_persist t req =
  match t.store with
  | None -> ()
  | Some store ->
    if effectful req then begin
      Store.sync store;
      if Store.should_snapshot store then begin
        Mutex.lock t.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.lock)
          (fun () ->
            if Store.should_snapshot store then
              Store.checkpoint store (encode_snapshot t))
      end
    end

(* After a Build/Insert shipment is accepted, precompute every element's
   accumulator witness on a background thread so the next Search hits the
   warm index instead of paying cold exponentiations inline. One warmer
   runs at a time; shipments landing mid-warm set [warm_again] and the
   same thread loops, so bursts coalesce into at most one trailing pass.
   Gated on [witness_index]: the legacy per-search witness cache is not
   safe to touch off the service lock. *)
let rec warm_pass t =
  let cloud =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () -> Option.map (fun b -> Station.cloud b.b_station) t.state)
  in
  (match cloud with
   | None -> ()
   | Some cloud ->
     (try
        Obs.span "service.background_warm" (fun () ->
            Cloud.precompute_witnesses cloud);
        Obs.Counter.incr c_warms
      with exn ->
        Log.warn (fun m ->
            m "background warm failed: %s" (Printexc.to_string exn))));
  let again =
    Mutex.lock t.warm_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.warm_lock)
      (fun () ->
        if t.warm_again then begin
          t.warm_again <- false;
          true
        end
        else begin
          t.warm_running <- false;
          false
        end)
  in
  if again then warm_pass t

let schedule_warm t =
  if t.witness_index then begin
    Mutex.lock t.warm_lock;
    let spawn =
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.warm_lock)
        (fun () ->
          if t.warm_running then begin
            t.warm_again <- true;
            false
          end
          else begin
            t.warm_running <- true;
            true
          end)
    in
    if spawn then ignore (Thread.create warm_pass t)
  end

(* Span taxonomy name for the requests worth tracing; admin and
   handshake frames stay untraced. *)
let traced_as = function
  | Wire.Search _ -> Some "service.search"
  | Wire.Build _ -> Some "service.build"
  | Wire.Insert _ -> Some "service.insert"
  | Wire.Dispute _ -> Some "service.search"
  | Wire.Hello _ | Wire.Ping | Wire.Stats | Wire.Traces | Wire.Receipt _ -> None

let handle_inner t req =
  Obs.Counter.incr c_requests;
  Mutex.lock t.lock;
  let resp =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        try handle_locked t req
        with exn ->
          Log.err (fun m -> m "handler raised: %s" (Printexc.to_string exn));
          refused Wire.Internal (Printexc.to_string exn))
  in
  (* The reply must not leave before its journal record is durable. A
     failed barrier refuses instead of replying: the effect is applied
     in memory but not on disk, and the client's retry replays the
     cached reply through a (hopefully healed) barrier. *)
  match maybe_persist t req with
  | () ->
    (match req, resp with
     | (Wire.Build _ | Wire.Insert _), Wire.Accepted _ -> schedule_warm t
     | _ -> ());
    resp
  | exception exn ->
    Log.err (fun m -> m "durability barrier failed: %s" (Printexc.to_string exn));
    refused Wire.Internal ("durability barrier failed: " ^ Printexc.to_string exn)

let handle t req =
  match traced_as req with
  | None -> handle_inner t req
  | Some name ->
    (* Joins the upstream trace when the request carries one (the
       router's fan-out), otherwise makes its own sampling decision —
       so a directly-addressed server is traceable too. *)
    Trace.root ?remote:(Wire.request_trace req) name (fun () ->
        if snd t.shard > 1 then Trace.tag "shard" (string_of_int (fst t.shard));
        handle_inner t req)


(* --- settlement timer ---------------------------------------------------

   The server's main loop calls [settle_tick] between poll rounds; the
   bench calls [settle_flush] at measurement boundaries. Both journal
   their effects — these are the wall-clock decisions a WAL replay
   cannot re-derive (§8), unlike the size-triggered flush inside
   [do_search]. *)

let settle_tick_locked t =
  match Option.bind t.state (fun b -> Station.batcher b.b_station) with
  | None -> (false, 0)
  | Some sb ->
    let flushed =
      if Settle_batch.window_expired sb then (
        match Settle_batch.flush sb with
        | None -> false
        | Some _ ->
          journal t ~tag:tag_flush "";
          true)
      else false
    in
    let finalized = Settle_batch.finalize_due sb in
    if finalized <> [] then journal t ~tag:tag_finalize "";
    (flushed, List.length finalized)

let settle_sync t ~dirty =
  if dirty then match t.store with None -> () | Some store -> Store.sync store

let settle_tick t =
  Mutex.lock t.lock;
  let flushed, finalized =
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> settle_tick_locked t)
  in
  settle_sync t ~dirty:(flushed || finalized > 0);
  (flushed, finalized)

let settle_flush t =
  Mutex.lock t.lock;
  let dirty =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        match Option.bind t.state (fun b -> Station.batcher b.b_station) with
        | None -> false
        | Some sb ->
          let flushed =
            match Settle_batch.flush sb with
            | None -> false
            | Some _ ->
              journal t ~tag:tag_flush "";
              true
          in
          let finalized = Settle_batch.finalize_due sb in
          if finalized <> [] then journal t ~tag:tag_finalize "";
          flushed || finalized <> [])
  in
  settle_sync t ~dirty
