let ( let* ) = Option.bind

let request_tag = 0x01
let response_tag = 0x02

type request =
  | Hello of { client : string }
  | Search of { client : string; request_id : string; batched : bool;
                tokens : Slicer_types.search_token list }
  | Build of { client : string; request_id : string;
               width : int; payment : int; acc : Rsa_acc.params;
               tdp_n : Bigint.t; tdp_e : Bigint.t;
               user_k : string; user_k_r : string;
               shipment : Owner.shipment; trapdoor : Owner.trapdoor_state }
  | Insert of { client : string; request_id : string;
                shipment : Owner.shipment; trapdoor : Owner.trapdoor_state }
  | Ping
  | Stats

type provision = {
  pv_width : int;
  pv_payment : int;
  pv_generation : int;
  pv_acc : Rsa_acc.params;
  pv_user_keys : Keys.user_keys;
  pv_trapdoor : Owner.trapdoor_state;
  pv_user_addr : Vm.address;
  pv_ac : Bigint.t;
}

type search_reply = {
  sr_request_id : string;
  sr_generation : int;
  sr_claims : Slicer_contract.claim list;
  sr_batch_witness : Bigint.t option;
  sr_receipt : Vm.receipt;
  sr_ac : Bigint.t;
}

type err_code = Busy | Bad_request | Not_ready | Already_built | Unknown_user | Internal

let err_code_to_string = function
  | Busy -> "busy"
  | Bad_request -> "bad_request"
  | Not_ready -> "not_ready"
  | Already_built -> "already_built"
  | Unknown_user -> "unknown_user"
  | Internal -> "internal"

let err_code_of_string = function
  | "busy" -> Some Busy
  | "bad_request" -> Some Bad_request
  | "not_ready" -> Some Not_ready
  | "already_built" -> Some Already_built
  | "unknown_user" -> Some Unknown_user
  | "internal" -> Some Internal
  | _ -> None

type response =
  | Welcome of provision
  | Found of search_reply
  | Accepted of { generation : int }
  | Pong
  | Stats_reply of { st_json : string; st_text : string }
  | Refused of { code : err_code; detail : string }

(* Small helpers: non-negative ints and option-of-bigint pieces. *)

let nat_of_string s =
  let* n = int_of_string_opt s in
  if n < 0 then None else Some n

let bool_tag b = if b then "1" else "0"

let bool_of_tag = function "1" -> Some true | "0" -> Some false | _ -> None

let opt_bigint_to_bytes = function
  | None -> Bytesutil.concat [ "0" ]
  | Some w -> Bytesutil.concat [ "1"; Bigint.to_bytes_be w ]

let opt_bigint_of_bytes s =
  let* pieces = Bytesutil.split s in
  match pieces with
  | [ "0" ] -> Some None
  | [ "1"; w ] -> Some (Some (Bigint.of_bytes_be w))
  | _ -> None

(* --- requests --------------------------------------------------------- *)

let encode_request = function
  | Hello { client } -> Bytesutil.concat [ "hello"; client ]
  | Search { client; request_id; batched; tokens } ->
    Bytesutil.concat
      [ "search"; client; request_id; bool_tag batched; Persist.tokens_to_bytes tokens ]
  | Build { client; request_id; width; payment; acc; tdp_n; tdp_e; user_k; user_k_r;
            shipment; trapdoor } ->
    Bytesutil.concat
      [ "build"; client; request_id; string_of_int width; string_of_int payment;
        Bigint.to_bytes_be acc.Rsa_acc.modulus; Bigint.to_bytes_be acc.Rsa_acc.generator;
        Bigint.to_bytes_be tdp_n; Bigint.to_bytes_be tdp_e;
        user_k; user_k_r;
        Persist.shipment_to_bytes shipment; Persist.trapdoor_state_to_bytes trapdoor ]
  | Insert { client; request_id; shipment; trapdoor } ->
    Bytesutil.concat
      [ "insert"; client; request_id;
        Persist.shipment_to_bytes shipment; Persist.trapdoor_state_to_bytes trapdoor ]
  | Ping -> Bytesutil.concat [ "ping" ]
  | Stats -> Bytesutil.concat [ "stats" ]

let decode_request s =
  let* pieces = Bytesutil.split s in
  match pieces with
  | [ "hello"; client ] -> Some (Hello { client })
  | [ "search"; client; request_id; batched; tokens_blob ] ->
    let* batched = bool_of_tag batched in
    let* tokens = Persist.tokens_of_bytes tokens_blob in
    Some (Search { client; request_id; batched; tokens })
  | [ "build"; client; request_id; width; payment; modulus; generator; tdp_n; tdp_e;
      user_k; user_k_r; shipment_blob; trapdoor_blob ] ->
    let* width = nat_of_string width in
    let* payment = nat_of_string payment in
    let* shipment = Persist.shipment_of_bytes shipment_blob in
    let* trapdoor = Persist.trapdoor_state_of_bytes trapdoor_blob in
    Some
      (Build
         { client; request_id; width; payment;
           acc = { Rsa_acc.modulus = Bigint.of_bytes_be modulus;
                   generator = Bigint.of_bytes_be generator };
           tdp_n = Bigint.of_bytes_be tdp_n; tdp_e = Bigint.of_bytes_be tdp_e;
           user_k; user_k_r; shipment; trapdoor })
  | [ "insert"; client; request_id; shipment_blob; trapdoor_blob ] ->
    let* shipment = Persist.shipment_of_bytes shipment_blob in
    let* trapdoor = Persist.trapdoor_state_of_bytes trapdoor_blob in
    Some (Insert { client; request_id; shipment; trapdoor })
  | [ "ping" ] -> Some Ping
  | [ "stats" ] -> Some Stats
  | _ -> None

(* --- responses -------------------------------------------------------- *)

let encode_response = function
  | Welcome p ->
    Bytesutil.concat
      [ "welcome"; string_of_int p.pv_width; string_of_int p.pv_payment;
        string_of_int p.pv_generation;
        Bigint.to_bytes_be p.pv_acc.Rsa_acc.modulus;
        Bigint.to_bytes_be p.pv_acc.Rsa_acc.generator;
        Bigint.to_bytes_be p.pv_user_keys.Keys.u_tdp_public.Rsa_tdp.pn;
        Bigint.to_bytes_be p.pv_user_keys.Keys.u_tdp_public.Rsa_tdp.e;
        p.pv_user_keys.Keys.u_k; p.pv_user_keys.Keys.u_k_r;
        Persist.trapdoor_state_to_bytes p.pv_trapdoor;
        p.pv_user_addr;
        Bigint.to_bytes_be p.pv_ac ]
  | Found r ->
    Bytesutil.concat
      [ "found"; r.sr_request_id; string_of_int r.sr_generation;
        Persist.claims_to_bytes r.sr_claims;
        opt_bigint_to_bytes r.sr_batch_witness;
        Persist.receipt_to_bytes r.sr_receipt;
        Bigint.to_bytes_be r.sr_ac ]
  | Accepted { generation } -> Bytesutil.concat [ "accepted"; string_of_int generation ]
  | Pong -> Bytesutil.concat [ "pong" ]
  | Stats_reply { st_json; st_text } -> Bytesutil.concat [ "stats"; st_json; st_text ]
  | Refused { code; detail } ->
    Bytesutil.concat [ "refused"; err_code_to_string code; detail ]

let decode_response s =
  let* pieces = Bytesutil.split s in
  match pieces with
  | [ "welcome"; width; payment; generation; modulus; generator; tdp_n; tdp_e;
      u_k; u_k_r; trapdoor_blob; user_addr; ac ] ->
    let* pv_width = nat_of_string width in
    let* pv_payment = nat_of_string payment in
    let* pv_generation = nat_of_string generation in
    let* pv_trapdoor = Persist.trapdoor_state_of_bytes trapdoor_blob in
    let* u_tdp_public =
      match
        Rsa_tdp.public_of_parts ~n:(Bigint.of_bytes_be tdp_n) ~e:(Bigint.of_bytes_be tdp_e)
      with
      | pk -> Some pk
      | exception Invalid_argument _ -> None
    in
    Some
      (Welcome
         { pv_width; pv_payment; pv_generation;
           pv_acc = { Rsa_acc.modulus = Bigint.of_bytes_be modulus;
                      generator = Bigint.of_bytes_be generator };
           pv_user_keys = { Keys.u_k; u_k_r; u_tdp_public };
           pv_trapdoor; pv_user_addr = user_addr; pv_ac = Bigint.of_bytes_be ac })
  | [ "found"; sr_request_id; generation; claims_blob; witness_blob; receipt_blob; ac ] ->
    let* sr_generation = nat_of_string generation in
    let* sr_claims = Persist.claims_of_bytes claims_blob in
    let* sr_batch_witness = opt_bigint_of_bytes witness_blob in
    let* sr_receipt = Persist.receipt_of_bytes receipt_blob in
    Some
      (Found
         { sr_request_id; sr_generation; sr_claims; sr_batch_witness; sr_receipt;
           sr_ac = Bigint.of_bytes_be ac })
  | [ "accepted"; generation ] ->
    let* generation = nat_of_string generation in
    Some (Accepted { generation })
  | [ "pong" ] -> Some Pong
  | [ "stats"; st_json; st_text ] -> Some (Stats_reply { st_json; st_text })
  | [ "refused"; code; detail ] ->
    let* code = err_code_of_string code in
    Some (Refused { code; detail })
  | _ -> None

let retryable = function Refused { code = Busy; _ } -> true | _ -> false
